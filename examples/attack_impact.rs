//! Attack-impact analysis (§7.4): quantify, mechanically, how the
//! ecosystem reacted to each disclosure — slope breaks around the
//! disclosure date and the lag between disclosure and the series'
//! change point.
//!
//! ```sh
//! cargo run --release --example attack_impact
//! ```

use tlscope::analysis::{
    attack, change_point, estimate_impact, figures, Study, StudyConfig, ATTACKS,
};

fn main() {
    eprintln!("running passive study ...");
    let study = Study::new(StudyConfig::quick());
    let agg = study.run_passive();

    let fig1 = figures::fig1(&agg);
    let fig2 = figures::fig2(&agg);
    let fig7 = figures::fig7(&agg);
    let fig8 = figures::fig8(&agg);

    println!("attack timeline (§2.2):");
    for a in ATTACKS {
        println!("  {}  {:14} {}", a.date, a.name, a.description);
    }

    println!("\nslope analysis (pp/month, 12-month windows):");
    let cases = [
        ("RC4", &fig2, "RC4", "RC4 negotiation"),
        ("Snowden", &fig8, "ECDHE", "forward-secret key exchange"),
        ("POODLE", &fig1, "SSLv3", "SSL 3 negotiation"),
        ("FREAK", &fig7, "Export", "export advertising"),
        ("Sweet32", &fig2, "CBC", "CBC negotiation"),
        ("Lucky13", &fig2, "CBC", "CBC negotiation"),
    ];
    for (name, fig, series, what) in cases {
        let ev = attack(name).unwrap();
        let Some(est) = estimate_impact(fig, series, ev, 12) else {
            continue;
        };
        println!(
            "  {:10} on {what:28} slope {:+.2} -> {:+.2}  (change {:+.2})",
            name,
            est.slope_before,
            est.slope_after,
            est.slope_change()
        );
    }

    println!("\nchange points (largest mean shift in each series):");
    for (fig, series) in [
        (&fig2, "RC4"),
        (&fig2, "AEAD"),
        (&fig8, "ECDHE"),
        (&fig7, "Export"),
    ] {
        if let Some((month, shift)) = change_point(fig, series) {
            println!(
                "  {:6} in {}: shifted at {month} (|Δmean| {shift:.1} pp)",
                series, fig.id
            );
        }
    }

    // The paper's §5.3 observation: server-side RC4 retreat led the
    // client-side advertisement drop by ~18 months.
    let fig6 = figures::fig6(&agg);
    let neg = change_point(&fig2, "RC4").map(|(m, _)| m);
    let adv = change_point(&fig6, "RC4").map(|(m, _)| m);
    if let (Some(neg), Some(adv)) = (neg, adv) {
        println!(
            "\nRC4 server-vs-client lag: negotiation shifted {neg}, advertising shifted {adv} \
             ({} months later; paper: ~18 months)",
            adv.months_since(neg)
        );
    }
}
