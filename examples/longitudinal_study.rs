//! The headline reproduction: run the 2012-01 … 2018-04 passive study
//! and print the three headline figures of the paper — negotiated
//! versions (Figure 1), negotiated cipher classes (Figure 2), and key
//! exchange (Figure 8) — as ASCII charts plus the milestone numbers the
//! abstract quotes.
//!
//! ```sh
//! cargo run --release --example longitudinal_study [-- full]
//! ```

use tlscope::analysis::{figures, Study, StudyConfig};
use tlscope::chron::Month;

fn main() {
    let full = std::env::args().any(|a| a == "full");
    let cfg = if full {
        StudyConfig::default()
    } else {
        StudyConfig::quick()
    };
    eprintln!(
        "running passive study: {} months x {} connections/month ...",
        cfg.start.iter_through(cfg.end).count(),
        cfg.connections_per_month
    );
    let study = Study::new(cfg);
    let agg = study.run_passive();
    println!("total connections observed: {}\n", agg.total());

    let fig1 = figures::fig1(&agg);
    let fig2 = figures::fig2(&agg);
    let fig8 = figures::fig8(&agg);
    println!("{}", fig1.to_ascii(76));
    println!("{}", fig2.to_ascii(76));
    println!("{}", fig8.to_ascii(76));

    // The abstract's milestones.
    let m2012 = Month::ym(2012, 3);
    let m2018 = Month::ym(2018, 2);
    println!("paper: \"In 2012, 90% of TLS connections used TLS 1.0\"");
    println!(
        "  measured 2012-03: TLS1.0 {:.1}%",
        fig1.value_at("TLSv10", m2012).unwrap_or(f64::NAN)
    );
    println!("paper: \"today 90% use TLS 1.2\"");
    println!(
        "  measured 2018-02: TLS1.2 {:.1}%",
        fig1.value_at("TLSv12", m2018).unwrap_or(f64::NAN)
    );
    println!("paper: \"RC4 has almost completely disappeared\"");
    println!(
        "  measured 2018-02: RC4 negotiated {:.2}%",
        fig2.value_at("RC4", m2018).unwrap_or(f64::NAN)
    );
    println!("paper: \"CBC-mode accounts for about 10% of traffic\"");
    println!(
        "  measured 2018-02: CBC negotiated {:.1}%",
        fig2.value_at("CBC", m2018).unwrap_or(f64::NAN)
    );
    println!("paper: \"forward-secret cipher suites, now more than 90% of connections\"");
    let fs =
        fig8.value_at("ECDHE", m2018).unwrap_or(0.0) + fig8.value_at("DHE", m2018).unwrap_or(0.0);
    println!("  measured 2018-02: DHE+ECDHE negotiated {fs:.1}%");
}
