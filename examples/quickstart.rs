//! Quickstart: parse a ClientHello, fingerprint it, negotiate against a
//! server profile, and run one month of the synthetic Internet through
//! the passive monitor.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tlscope::chron::Month;
use tlscope::clients::{browsers, HelloEntropy};
use tlscope::fingerprint::{ja3_hash, Fingerprint};
use tlscope::notary::{ingest_serial, ServerOutcome, TappedFlow};
use tlscope::servers::{negotiate, ServerProfile};
use tlscope::traffic::{FaultInjector, Generator, TrafficConfig};
use tlscope::wire::ClientHello;

fn main() {
    // 1. Build the hello Chrome shipped the month Heartbleed dropped,
    //    as real wire bytes, and parse it back like a monitor would.
    let chrome = browsers::chrome();
    let era = chrome
        .era_at(tlscope::chron::Date::ymd(2014, 4, 7))
        .expect("Chrome existed in 2014");
    let hello = era
        .tls
        .build_hello(Some("example.org"), &HelloEntropy::from_seed(42));
    let bytes = hello.to_handshake_bytes();
    let parsed = ClientHello::parse_handshake(&bytes).expect("wire roundtrip");
    println!(
        "Chrome {} ClientHello: {} bytes, {} suites, {} extensions",
        era.versions,
        bytes.len(),
        parsed.cipher_suites.len(),
        parsed.extensions().len()
    );

    // 2. Fingerprint it (the paper's 4-feature fingerprint + JA3).
    let fp = Fingerprint::from_client_hello(&parsed);
    println!("4-feature fingerprint: {}", fp.canonical());
    println!("JA3: {}", ja3_hash(&parsed));

    // 3. Negotiate against a modern server.
    let server = ServerProfile::baseline("demo");
    let outcome = negotiate::respond(&server, &parsed, [1; 32]).expect("handshake");
    println!(
        "negotiated: {} with {} (curve {:?})",
        outcome.version, outcome.cipher, outcome.curve
    );

    // 4. One month of the synthetic Internet through the monitor.
    let generator = Generator::new(TrafficConfig {
        seed: 1,
        connections_per_month: 2_000,
        faults: FaultInjector::tap_defaults(),
    });
    let month = Month::ym(2015, 6);
    let flows = generator.month(month).into_iter().map(TappedFlow::from);
    let agg = ingest_serial(flows);
    let stats = agg.month(month).expect("month present");
    println!(
        "\n{month}: {} connections | {:.1}% AEAD, {:.1}% CBC, {:.1}% RC4 negotiated",
        stats.total,
        stats.pct(stats.neg_aead),
        stats.pct(stats.neg_cbc),
        stats.pct(stats.neg_rc4),
    );
    println!(
        "advertised: RC4 {:.1}%, export {:.1}%, anon {:.1}%, TLS1.3 {:.1}%",
        stats.pct(stats.adv_rc4),
        stats.pct(stats.adv_export),
        stats.pct(stats.adv_anon),
        stats.pct(stats.adv_tls13),
    );

    // 5. And show the monitor is honest about wire damage.
    let rejected: u64 = stats.rejected;
    println!(
        "handshake failures seen on the wire: {} ({:.2}%); unparseable flows: {}",
        rejected,
        stats.pct(rejected),
        agg.garbled_client,
    );
    let _ = ServerOutcome::Missing; // (variants documented in tlscope::notary)
}
