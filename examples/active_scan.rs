//! Censys-style active scanning: run the monthly scan campaign over the
//! paper's window (2015-08-22 … 2018-05-13) and print the §5 scan
//! trends — SSL 3 support, what hosts choose from the 2015-Chrome
//! probe, Heartbeat/Heartbleed, and export support. Also reruns the
//! paper's §5.3 "remove RC4 from the offer" experiment against an
//! RC4-preferring server.
//!
//! ```sh
//! cargo run --release --example active_scan
//! ```

use tlscope::analysis::sections;
use tlscope::scanner::{probe, ScanCampaign};
use tlscope::servers::{negotiate, ServerPopulation};

fn main() {
    let population = ServerPopulation::new();

    eprintln!("running monthly scan campaign (2015-08 .. 2018-05) ...");
    let snaps = ScanCampaign::censys_monthly(3_000, 0xCE9595).run(&population);
    println!("{}", sections::censys_series(&snaps).to_ascii(72));

    let first = snaps.first().unwrap();
    let last = snaps.last().unwrap();
    println!("paper anchors (host-level percentages):");
    for (label, paper, first_v, last_v) in [
        (
            "SSL3 supported",
            "45% -> <25%",
            first.pct(first.ssl3_supported),
            last.pct(last.ssl3_supported),
        ),
        (
            "chose CBC   ",
            "54% -> 35%",
            first.pct(first.chose_cbc),
            last.pct(last.chose_cbc),
        ),
        (
            "chose RC4   ",
            "11.2% -> 3.4%",
            first.pct(first.chose_rc4),
            last.pct(last.chose_rc4),
        ),
        (
            "chose 3DES  ",
            "0.54% -> 0.25%",
            first.pct(first.chose_3des),
            last.pct(last.chose_3des),
        ),
        (
            "heartbeat   ",
            "34% (2018)",
            first.pct(first.heartbeat_supported),
            last.pct(last.heartbeat_supported),
        ),
        (
            "heartbleed  ",
            "0.32% (2018)",
            first.pct(first.heartbleed_vulnerable),
            last.pct(last.heartbleed_vulnerable),
        ),
    ] {
        println!("  {label}  paper {paper:15}  measured {first_v:.2}% -> {last_v:.2}%");
    }

    // §5.3's bankmellat experiment: an RC4-preferring server flips to
    // AEAD the moment RC4 leaves the offer.
    println!("\n§5.3 experiment — RC4-preferring server:");
    let mut rng = {
        use rand::SeedableRng;
        rand::rngs::SmallRng::seed_from_u64(7)
    };
    let bank = ServerPopulation::bank_legacy(tlscope::chron::Date::ymd(2018, 2, 1), &mut rng);
    let with_rc4 = negotiate::respond(&bank, &probe::chrome_2015(), [2; 32]).unwrap();
    let without_rc4 = negotiate::respond(&bank, &probe::chrome_2015_no_rc4(), [2; 32]).unwrap();
    println!("  full 2015-Chrome offer  -> {}", with_rc4.cipher);
    println!("  same offer without RC4  -> {}", without_rc4.cipher);
    assert!(with_rc4.cipher.is_rc4());
    assert!(without_rc4.cipher.is_aead());
    println!("  (matches the paper: \"when removing RC4 from the list, it will switch to a modern AEAD cipher\")");
}
