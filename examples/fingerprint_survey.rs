//! Fingerprint survey: build the labelled fingerprint database from the
//! client catalog, run the fingerprintable era of the passive study,
//! and reproduce Table 2 (coverage by category) plus the §4.1 lifetime
//! statistics.
//!
//! ```sh
//! cargo run --release --example fingerprint_survey
//! ```

use tlscope::analysis::{sections, tables, Study, StudyConfig};
use tlscope::clients::catalog;
use tlscope::fingerprint::CoverageStats;

fn main() {
    // The database is built exactly the way the paper built theirs:
    // emit a hello from every catalogued client configuration and
    // fingerprint the bytes.
    let (db, collisions) = catalog::build_database();
    println!(
        "fingerprint database: {} labelled fingerprints, {} collisions tombstoned",
        db.len(),
        collisions
    );
    println!(
        "paper's 4-feature methodology collision rate on this catalog: {:.2}%\n",
        100.0 * db.collision_rate()
    );

    // Run the passive study (fingerprints are tracked from 2014-02,
    // when the Notary gained the necessary fields).
    let study = Study::new(StudyConfig::quick());
    eprintln!("running passive study ...");
    let agg = study.run_passive();

    // Table 2: coverage by category.
    println!("{}", tables::table2(&agg).to_ascii());
    let mut cov = CoverageStats::new();
    for (fp, count) in agg.iter_fp_counts() {
        cov.observe(&db, fp, count);
    }
    println!(
        "overall attribution: {:.2}% of fingerprinted connections (paper: 69.23%)\n",
        cov.coverage_pct()
    );

    // §4.1: lifetime statistics.
    println!("{}", sections::s4_1(&agg).to_ascii());

    // The ten busiest fingerprints, paper-style ("the 10 most common
    // fingerprints explain 25.9% of the total Notary traffic").
    let mut by_volume: Vec<_> = agg.iter_fp_counts().collect();
    by_volume.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    let total: u64 = by_volume.iter().map(|(_, n)| n).sum();
    let top10: u64 = by_volume.iter().take(10).map(|(_, n)| n).sum();
    println!(
        "top-10 fingerprints carry {:.1}% of fingerprinted traffic:",
        100.0 * top10 as f64 / total.max(1) as f64
    );
    for (fp, count) in by_volume.into_iter().take(10) {
        let label = db
            .lookup(fp)
            .map(|l| format!("{} ({})", l.name, l.versions))
            .unwrap_or_else(|| "(unlabelled)".into());
        println!("  {:>8} conns  {label}", count);
    }
}
