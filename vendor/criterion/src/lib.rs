//! Offline vendored stand-in for the `criterion` crate.
//!
//! Implements the measurement surface this workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! [`Throughput`] and sample-size hints, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], and the `criterion_group!` /
//! `criterion_main!` macros — over a simple wall-clock harness.
//!
//! Behavior: each benchmark is warmed up briefly, then timed for a
//! fixed measurement window, and a one-line summary (mean time per
//! iteration plus derived throughput) is printed. Under `--test`
//! (what `cargo test --benches` passes) every benchmark body runs
//! exactly once so the suite stays fast. Positional CLI arguments act
//! as substring filters on benchmark names, matching the real crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The vendored harness times
/// every routine call individually, so the hint only exists for API
/// compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes handled per iteration.
    Bytes(u64),
    /// Logical elements handled per iteration.
    Elements(u64),
}

/// The per-benchmark measurement driver.
pub struct Bencher<'a> {
    mode: Mode,
    measured: &'a mut Measurement,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Run each body exactly once (`--test`).
    Test,
    /// Warm up, then measure for the configured window.
    Measure,
}

#[derive(Debug, Default, Clone, Copy)]
struct Measurement {
    total: Duration,
    iters: u64,
}

impl Bencher<'_> {
    /// Measure `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        match self.mode {
            Mode::Test => {
                black_box(routine());
                self.measured.iters = 1;
            }
            Mode::Measure => {
                let warm_until = Instant::now() + WARMUP;
                while Instant::now() < warm_until {
                    black_box(routine());
                }
                let start = Instant::now();
                let mut iters = 0u64;
                while iters < MIN_ITERS || start.elapsed() < MEASURE_WINDOW {
                    black_box(routine());
                    iters += 1;
                }
                self.measured.total = start.elapsed();
                self.measured.iters = iters;
            }
        }
    }

    /// Measure `routine` over fresh inputs from `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        match self.mode {
            Mode::Test => {
                black_box(routine(setup()));
                self.measured.iters = 1;
            }
            Mode::Measure => {
                black_box(routine(setup()));
                let mut timed = Duration::ZERO;
                let mut iters = 0u64;
                while iters < MIN_ITERS || timed < MEASURE_WINDOW {
                    let input = setup();
                    let start = Instant::now();
                    black_box(routine(input));
                    timed += start.elapsed();
                    iters += 1;
                }
                self.measured.total = timed;
                self.measured.iters = iters;
            }
        }
    }
}

const WARMUP: Duration = Duration::from_millis(60);
const MEASURE_WINDOW: Duration = Duration::from_millis(400);
const MIN_ITERS: u64 = 3;

/// The benchmark harness entry point.
pub struct Criterion {
    filters: Vec<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filters = Vec::new();
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                a if a.starts_with('-') => {}
                a => filters.push(a.to_string()),
            }
        }
        Criterion { filters, test_mode }
    }
}

impl Criterion {
    fn selected(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }

    fn run_one<F>(&mut self, name: &str, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.selected(name) {
            return;
        }
        let mut measured = Measurement::default();
        let mode = if self.test_mode {
            Mode::Test
        } else {
            Mode::Measure
        };
        f(&mut Bencher {
            mode,
            measured: &mut measured,
        });
        if self.test_mode {
            println!("test {name} ... ok");
            return;
        }
        let per_iter = if measured.iters == 0 {
            Duration::ZERO
        } else {
            measured.total / measured.iters.max(1) as u32
        };
        let mut line = format!("{name:<44} time: {}", fmt_duration(per_iter));
        if let Some(t) = throughput {
            let secs = per_iter.as_secs_f64();
            if secs > 0.0 {
                match t {
                    Throughput::Bytes(n) => {
                        line.push_str(&format!("  thrpt: {}/s", fmt_scaled(n as f64 / secs, "B")));
                    }
                    Throughput::Elements(n) => {
                        line.push_str(&format!(
                            "  thrpt: {}/s",
                            fmt_scaled(n as f64 / secs, "elem")
                        ));
                    }
                }
            }
        }
        println!("{line}");
    }

    /// Benchmark one function.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        self.run_one(&name, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the units-per-iteration used for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accept (and ignore) a sample-size hint; the vendored harness
    /// always times a fixed wall-clock window.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark one function within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        let throughput = self.throughput;
        self.criterion.run_one(&full, throughput, f);
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s/iter", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms/iter", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs/iter", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns/iter")
    }
}

fn fmt_scaled(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.2} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} k{unit}", rate / 1e3)
    } else {
        format!("{rate:.1} {unit}")
    }
}

/// Collect benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion {
            filters: vec![],
            test_mode: true,
        };
        let mut ran = 0;
        c.bench_function("unit/iter", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("unit/group");
        g.throughput(Throughput::Elements(10));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        ran += 1;
        assert_eq!(ran, 1);
    }

    #[test]
    fn filters_select_by_substring() {
        let c = Criterion {
            filters: vec!["ingest".into()],
            test_mode: true,
        };
        assert!(c.selected("pipeline/ingest/serial"));
        assert!(!c.selected("pipeline/generate"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns/iter");
        assert!(fmt_duration(Duration::from_micros(1500)).ends_with("ms/iter"));
        assert!(fmt_scaled(2_500_000.0, "B").starts_with("2.50 M"));
    }
}
