//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no network access and
//! no registry cache, so the handful of `rand` APIs the workspace uses
//! are implemented here as a local path dependency: [`rngs::SmallRng`]
//! (xoshiro256** seeded via SplitMix64), [`SeedableRng::seed_from_u64`],
//! and the [`RngExt`] sampling surface (`random`, `random_range`).
//!
//! Determinism is part of the contract: every draw is a pure function
//! of the seed and the call sequence, on every platform, so the
//! synthetic-traffic studies are exactly reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build from a single `u64`, expanded with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64: the standard seed expander for xoshiro generators.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Small, fast generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256**: 256-bit state, excellent statistical quality, and
    /// the same role `SmallRng` plays in the real crate — a fast
    /// non-cryptographic generator for simulation workloads.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64
            // cannot produce four zero words from any seed, but guard
            // anyway so the invariant is local.
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable uniformly over their whole domain via `random()`.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<T: Standard, const N: usize> Standard for [T; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        core::array::from_fn(|_| T::sample(rng))
    }
}

/// Integer types uniform-samplable over an arbitrary sub-range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw uniformly from `[low, high]` (inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low <= high);
                let span = (high as u64).wrapping_sub(low as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let span = span + 1;
                // Debiased modulo: reject draws from the final partial
                // block so every value is exactly equally likely.
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let draw = rng.next_u64();
                    if draw <= zone {
                        return low.wrapping_add((draw % span) as u64 as $t);
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low <= high);
                // Shift to the unsigned domain, sample there, shift back.
                let ulow = (low as $u).wrapping_add(<$t>::MIN.unsigned_abs() as $u);
                let uhigh = (high as $u).wrapping_add(<$t>::MIN.unsigned_abs() as $u);
                let drawn = <$u>::sample_inclusive(rng, ulow, uhigh);
                drawn.wrapping_sub(<$t>::MIN.unsigned_abs() as $u) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + f64::sample(rng) * (high - low)
    }
}

/// Range forms accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + HasPredecessor> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_inclusive(rng, self.start, self.end.predecessor())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample from an empty range");
        T::sample_inclusive(rng, low, high)
    }
}

/// Types with a largest-value-below operation (half-open range support).
pub trait HasPredecessor: Sized {
    /// The greatest value strictly less than `self`.
    fn predecessor(self) -> Self;
}

macro_rules! impl_predecessor {
    ($($t:ty),*) => {$(
        impl HasPredecessor for $t {
            fn predecessor(self) -> Self { self - 1 }
        }
    )*};
}

impl_predecessor!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl HasPredecessor for f64 {
    fn predecessor(self) -> Self {
        // Half-open float ranges keep the bound exclusive already
        // (sample() < 1.0), so the bound itself is the "predecessor".
        self
    }
}

/// The sampling extension trait: `random()` and `random_range()`.
pub trait RngExt: RngCore {
    /// A uniform draw over the full domain of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from `range` (half-open or inclusive).
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Compatibility alias: the real crate calls this trait `Rng`.
pub use self::RngExt as Rng;

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.random::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.random::<u64>()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.random::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = rng.random_range(3..10u8);
            assert!((3..10).contains(&v));
            let w = rng.random_range(5..=6usize);
            assert!((5..=6).contains(&w));
            let x = rng.random_range(-4i64..=4);
            assert!((-4..=4).contains(&x));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0..8usize)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }
}
