//! Offline vendored stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the subset of the
//! proptest API this workspace uses is implemented locally: the
//! [`strategy::Strategy`] trait with `prop_map`, [`arbitrary::any`],
//! [`collection::vec`], [`option::of`], range strategies, and the
//! `proptest!` / `prop_compose!` / `prop_assert*!` macros.
//!
//! Semantics: each test case draws fresh inputs from a deterministic
//! per-test RNG stream (seeded from the test name and case index), runs
//! the body, and on panic reports the generated inputs before
//! propagating. Shrinking is intentionally not implemented — failures
//! print the exact inputs, which is enough for a deterministic
//! reproduction workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Deterministic case-level RNG plumbing and run configuration.
pub mod test_runner {
    pub use rand::rngs::SmallRng as TestRng;
    use rand::SeedableRng;

    /// Run configuration: how many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// The RNG for one (test, case) pair: FNV-1a over the test name,
    /// mixed with the case index.
    pub fn rng_for(test_name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
    }
}

/// The strategy abstraction: a recipe for generating values.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::{HasPredecessor, RngExt, SampleUniform};
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A value-generation recipe.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy built from a generation closure (used by
    /// `prop_compose!`).
    pub struct ComposeFn<T, F> {
        f: F,
        _marker: PhantomData<fn() -> T>,
    }

    impl<T, F: Fn(&mut TestRng) -> T> ComposeFn<T, F> {
        /// Wrap a closure as a strategy.
        pub fn new(f: F) -> Self {
            ComposeFn {
                f,
                _marker: PhantomData,
            }
        }
    }

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for ComposeFn<T, F> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<T> Strategy for Range<T>
    where
        T: SampleUniform + HasPredecessor + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.random_range(self.clone())
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        T: SampleUniform + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.random_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }

    /// The strategy returned by [`prop_oneof!`](crate::prop_oneof):
    /// one branch picked uniformly per case.
    pub struct Union<T> {
        branches: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// A union over `branches` (at least one).
        pub fn new(branches: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(
                !branches.is_empty(),
                "prop_oneof! needs at least one branch"
            );
            Union { branches }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.random_range(0..self.branches.len());
            self.branches[idx].generate(rng)
        }
    }

    /// Box a strategy for use in a [`Union`] (macro plumbing).
    pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(strategy)
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

/// Whole-domain generation (`any::<T>()`).
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::{RngExt, Standard};
    use std::marker::PhantomData;

    /// Types generatable over their whole domain.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: Standard> Arbitrary for T {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.random()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy for any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// A length range for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `Option` strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// The strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.random::<f64>() < 0.5 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }

    /// `None` or `Some(inner)`, with equal probability.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// The common imports.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// A strategy choosing uniformly among the given strategies (subset of
/// the real macro: no weights; every branch must yield the same type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Define property tests. Each `fn` runs `config.cases` times with
/// freshly generated inputs; a panic reports the inputs that caused it.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@config ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @config ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        );
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::rng_for(stringify!($name), __case);
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )*
                let __inputs: String = String::new()
                    $(+ &format!("  {} = {:?}\n", stringify!($arg), &$arg))*;
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(panic) = __outcome {
                    eprintln!(
                        "proptest: {} failed on case {}/{} with inputs:\n{}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __inputs
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

/// Define a named strategy from component strategies (subset of the
/// real macro: one optional plain-argument list plus the generation
/// list).
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($param:ident: $pty:ty),* $(,)?)
        ($($arg:ident in $strat:expr),* $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::ComposeFn::new(move |__rng: &mut $crate::test_runner::TestRng| {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);
                )*
                $body
            })
        }
    };
}

/// Assert inside a property (reported with the generated inputs).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn pair()(a in any::<u8>(), b in 1u8..=10) -> (u8, u8) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_hold(x in 3u16..100, y in -5i64..=5) {
            prop_assert!((3..100).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn vec_sizes_hold(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn compose_and_map(p in pair(), flag in any::<bool>()) {
            prop_assert!(p.1 >= 1 && p.1 <= 10);
            let _ = flag;
        }

        #[test]
        fn options_mix(o in crate::option::of(0u32..10)) {
            if let Some(v) = o {
                prop_assert!(v < 10);
            }
        }

        #[test]
        fn oneof_draws_from_every_branch(x in prop_oneof![Just(1u8), Just(2), 10u8..20]) {
            prop_assert!(x == 1 || x == 2 || (10..20).contains(&x));
        }
    }

    #[test]
    fn deterministic_streams() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(any::<u64>(), 3..=3);
        let a = s.generate(&mut crate::test_runner::rng_for("t", 0));
        let b = s.generate(&mut crate::test_runner::rng_for("t", 0));
        let c = s.generate(&mut crate::test_runner::rng_for("t", 1));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
