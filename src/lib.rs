//! Umbrella package for the tlscope workspace.
//!
//! This crate exists to host the workspace-level integration tests
//! (`tests/`) and the runnable examples (`examples/`). The actual
//! library lives in the `tlscope` facade crate and its sub-crates.
