//! Cross-crate integration: the full byte-level pipeline from the
//! synthetic Internet through the notary into figures.

use tlscope::analysis::{figures, Study, StudyConfig};
use tlscope::chron::Month;
use tlscope::notary::{ingest_parallel, ingest_serial, TappedFlow};
use tlscope::traffic::{FaultInjector, Generator, TrafficConfig};

fn flows(seed: u64, month: Month, n: u32) -> Vec<TappedFlow> {
    Generator::new(TrafficConfig {
        seed,
        connections_per_month: n,
        faults: FaultInjector::none(),
    })
    .month(month)
    .into_iter()
    .map(TappedFlow::from)
    .collect()
}

#[test]
fn pipeline_is_deterministic() {
    let a = ingest_serial(flows(3, Month::ym(2016, 2), 500));
    let b = ingest_serial(flows(3, Month::ym(2016, 2), 500));
    let (ma, mb) = (
        a.month(Month::ym(2016, 2)).unwrap(),
        b.month(Month::ym(2016, 2)).unwrap(),
    );
    assert_eq!(ma.total, mb.total);
    assert_eq!(ma.neg_aead, mb.neg_aead);
    assert_eq!(ma.adv_rc4, mb.adv_rc4);
    assert_eq!(a, b);
}

#[test]
fn parallel_ingestion_is_exact() {
    let fs = flows(5, Month::ym(2015, 7), 800);
    let serial = ingest_serial(fs.clone());
    for workers in [2, 3, 8] {
        let par = ingest_parallel(fs.clone(), workers);
        // Exact equality: every counter, fingerprint, and sighting.
        assert_eq!(par, serial, "workers={workers}");
    }
}

#[test]
fn monthly_percentages_are_coherent() {
    let agg = ingest_serial(flows(7, Month::ym(2016, 9), 1000));
    let m = agg.month(Month::ym(2016, 9)).unwrap();
    // Outcome partition.
    assert_eq!(
        m.answered + m.rejected + m.missing_server + m.garbled_server,
        m.total - m.sslv2
    );
    // Negotiated classes never exceed answered.
    for count in [m.neg_rc4, m.neg_cbc, m.neg_aead, m.neg_null, m.neg_anon] {
        assert!(count <= m.answered);
    }
    // Cipher classes are mutually exclusive per connection.
    assert!(m.neg_rc4 + m.neg_cbc + m.neg_aead + m.neg_null <= m.answered + m.neg_null_null);
    // Advertised counters never exceed totals.
    for count in [
        m.adv_rc4,
        m.adv_cbc,
        m.adv_aead,
        m.adv_export,
        m.adv_anon,
        m.adv_null,
    ] {
        assert!(count <= m.total);
    }
    // Forward secrecy: every AEAD negotiation in this era is (EC)DHE.
    assert!(m.neg_fs >= m.neg_aead - m.neg_kx.rsa.min(m.neg_aead));
}

#[test]
fn study_over_a_quarter_produces_figures() {
    let mut cfg = StudyConfig::quick();
    cfg.start = Month::ym(2014, 1);
    cfg.end = Month::ym(2014, 6);
    cfg.connections_per_month = 600;
    let agg = Study::new(cfg).run_passive();
    for fig in figures::all_figures(&agg) {
        assert_eq!(fig.months.len(), 6, "{}", fig.id);
        assert!(!fig.series.is_empty(), "{}", fig.id);
        for s in &fig.series {
            for v in &s.values {
                assert!(
                    v.is_nan() || (0.0..=100.0).contains(v),
                    "{} {} out of range: {v}",
                    fig.id,
                    s.label
                );
            }
        }
        // CSV renders one line per month plus header.
        assert_eq!(fig.to_csv().lines().count(), 7, "{}", fig.id);
    }
}

#[test]
fn version_shares_sum_to_answered() {
    let agg = ingest_serial(flows(11, Month::ym(2017, 3), 800));
    let m = agg.month(Month::ym(2017, 3)).unwrap();
    let v = m.neg_version;
    assert_eq!(
        v.ssl3 + v.tls10 + v.tls11 + v.tls12 + v.tls13 + v.other,
        m.answered,
    );
}

#[test]
fn faults_do_not_break_aggregation() {
    let gen = Generator::new(TrafficConfig {
        seed: 13,
        connections_per_month: 800,
        faults: FaultInjector {
            drop_prob: 0.05,
            truncate_prob: 0.05,
            corrupt_prob: 0.05,
            ..FaultInjector::none()
        },
    });
    let month = Month::ym(2015, 3);
    let n_events = gen.month(month).len();
    let agg = ingest_serial(gen.month(month).into_iter().map(TappedFlow::from));
    let ingested = agg.month(month).map(|m| m.total).unwrap_or(0);
    assert_eq!(ingested + agg.garbled_client + agg.not_tls, n_events as u64);
    assert!(
        agg.garbled_client > 0,
        "corruption should damage some flows"
    );
}
