//! Calibration tests: the paper's quantitative anchors, asserted with
//! generous bands against one shared reduced-scale study run.
//!
//! These are the executable version of EXPERIMENTS.md. Bands are wide
//! because the run is reduced-scale (seeded, 1,800 connections/month);
//! the *shape* claims — orderings, crossings, direction of travel — are
//! asserted tightly.

use std::sync::OnceLock;

use tlscope::analysis::{figures, Study, StudyConfig};
use tlscope::chron::Month;
use tlscope::notary::NotaryAggregate;
use tlscope::scanner::ScanSnapshot;

fn study() -> &'static (NotaryAggregate, Vec<ScanSnapshot>) {
    static RUN: OnceLock<(NotaryAggregate, Vec<ScanSnapshot>)> = OnceLock::new();
    RUN.get_or_init(|| {
        let mut cfg = StudyConfig::quick();
        cfg.connections_per_month = 1_800;
        cfg.scan_hosts = 1_500;
        let study = Study::new(cfg);
        (study.run_passive(), study.run_active())
    })
}

fn at(fig: &tlscope::analysis::Figure, label: &str, y: i32, m: u8) -> f64 {
    fig.value_at(label, Month::ym(y, m)).unwrap_or(f64::NAN)
}

#[test]
fn fig1_version_milestones() {
    let fig = figures::fig1(&study().0);
    // "In 2012, 90% of TLS connections used TLS 1.0."
    assert!(at(&fig, "TLSv10", 2012, 3) > 80.0);
    // "today 90% use TLS 1.2" (2018).
    assert!(at(&fig, "TLSv12", 2018, 2) > 85.0);
    // The TLS 1.1 interlude: visible in 2013, gone by 2015.
    assert!(at(&fig, "TLSv11", 2013, 6) > 4.0);
    assert!(at(&fig, "TLSv11", 2016, 6) < 3.0);
    // TLS 1.2 overtakes 1.0 between late 2013 and early 2015.
    assert!(at(&fig, "TLSv10", 2013, 6) > at(&fig, "TLSv12", 2013, 6));
    assert!(at(&fig, "TLSv12", 2015, 3) > at(&fig, "TLSv10", 2015, 3));
    // SSL 3 fades to nothing by mid-2014 (§5.1).
    assert!(at(&fig, "SSLv3", 2012, 6) > 1.0);
    assert!(at(&fig, "SSLv3", 2015, 1) < 0.2);
    // TLS 1.3 appears only at the very end (§6.4).
    assert_eq!(at(&fig, "TLSv13", 2017, 1), 0.0);
    assert!(at(&fig, "TLSv13", 2018, 4) > 0.5);
}

#[test]
fn fig2_cipher_class_evolution() {
    let fig = figures::fig2(&study().0);
    // RC4 peaks near the paper's 60% around August 2013, then collapses.
    let rc4_peak = at(&fig, "RC4", 2013, 8);
    assert!(rc4_peak > 35.0, "peak {rc4_peak}");
    assert!(at(&fig, "RC4", 2018, 2) < 2.0);
    // CBC dominates until AEAD passes it (crossover 2014-2016).
    assert!(at(&fig, "CBC", 2012, 6) > 42.0);
    assert!(at(&fig, "AEAD", 2013, 1) < 2.0);
    let crossed = fig
        .months
        .iter()
        .find(|m| {
            fig.value_at("AEAD", **m).unwrap_or(0.0) > fig.value_at("CBC", **m).unwrap_or(100.0)
        })
        .copied()
        .expect("AEAD must overtake CBC");
    assert!(
        crossed >= Month::ym(2014, 6) && crossed <= Month::ym(2016, 6),
        "crossover at {crossed}"
    );
    // End state: AEAD ~90%, CBC ~10% (abstract).
    assert!(at(&fig, "AEAD", 2018, 2) > 75.0);
    let cbc18 = at(&fig, "CBC", 2018, 2);
    assert!(cbc18 > 5.0 && cbc18 < 20.0, "CBC 2018 {cbc18}");
}

#[test]
fn fig6_fig2_rc4_server_leads_client() {
    // §5.3: the negotiation drop precedes the advertising drop by
    // roughly 18 months.
    let (agg, _) = study();
    let neg = tlscope::analysis::change_point(&figures::fig2(agg), "RC4")
        .map(|(m, _)| m)
        .unwrap();
    let adv = tlscope::analysis::change_point(&figures::fig6(agg), "RC4")
        .map(|(m, _)| m)
        .unwrap();
    let lag = adv.months_since(neg);
    assert!((10..=30).contains(&lag), "lag {lag} months (paper ~18)");
}

#[test]
fn fig7_weak_suite_advertising() {
    let fig = figures::fig7(&study().0);
    // Export: 28.19% (2012) → 1.03% (2018).
    let e2012 = at(&fig, "Export", 2012, 3);
    assert!(e2012 > 15.0 && e2012 < 40.0, "export 2012 {e2012}");
    assert!(at(&fig, "Export", 2018, 2) < 3.0);
    // Anonymous spike in mid-2015 (5.8% → 12.9%).
    let before = at(&fig, "Anonymous", 2015, 4);
    let spike = at(&fig, "Anonymous", 2015, 7);
    assert!(spike > before * 1.4, "spike {before} -> {spike}");
}

#[test]
fn fig8_forward_secrecy_and_snowden() {
    let (agg, _) = study();
    let fig = figures::fig8(agg);
    // 2012: RSA dominates ECDHE.
    assert!(at(&fig, "RSA", 2012, 6) > at(&fig, "ECDHE", 2012, 6));
    // 2018: ECDHE > 90%.
    assert!(at(&fig, "ECDHE", 2018, 2) > 85.0);
    // The big shift is located within a year of Snowden (2013-06).
    let (cp, _) = tlscope::analysis::change_point(&fig, "ECDHE").unwrap();
    let lag = cp.months_since(Month::ym(2013, 6));
    assert!((-6..=18).contains(&lag), "ECDHE change point at {cp}");
    // DHE never found much use: below 25% always, and fading.
    let dhe_max = fig.series("DHE").unwrap().max();
    assert!(dhe_max < 30.0, "DHE max {dhe_max}");
    assert!(at(&fig, "DHE", 2018, 2) < 5.0);
}

#[test]
fn fig9_aead_breakdown() {
    let fig = figures::fig9(&study().0);
    // AES-128-GCM dominates 256 throughout (§6.3.2).
    for (y, m) in [(2015, 6), (2016, 6), (2017, 6), (2018, 2)] {
        assert!(
            at(&fig, "AES128-GCM", y, m) >= at(&fig, "AES256-GCM", y, m),
            "{y}-{m}"
        );
    }
    // ChaCha20 is a small share: ~1.7% in 2018-03.
    let chacha = at(&fig, "ChaCha20-Poly1305", 2018, 3);
    assert!(chacha > 0.2 && chacha < 8.0, "chacha {chacha}");
}

#[test]
fn censys_trends() {
    let (_, scans) = study();
    let first = scans.first().unwrap();
    let last = scans.last().unwrap();
    // SSL 3 support: ~45% → <30%.
    let ssl3_first = first.pct(first.ssl3_supported);
    let ssl3_last = last.pct(last.ssl3_supported);
    assert!(ssl3_first > 35.0 && ssl3_first < 65.0, "{ssl3_first}");
    assert!(ssl3_last < 35.0 && ssl3_last < ssl3_first);
    // RC4 chosen: ~11.2% → ~3.4%.
    let rc4_first = first.pct(first.chose_rc4);
    let rc4_last = last.pct(last.chose_rc4);
    assert!(rc4_first > 6.0 && rc4_first < 22.0, "{rc4_first}");
    assert!(rc4_last < rc4_first);
    // CBC chosen declines; AEAD chosen rises.
    assert!(last.pct(last.chose_cbc) < first.pct(first.chose_cbc));
    assert!(last.pct(last.chose_aead) > first.pct(first.chose_aead));
    // 3DES chosen stays under 1.5% and declines.
    assert!(first.pct(first.chose_3des) < 1.5);
    // Heartbeat support stays high (~34%), vulnerability is a long tail.
    let hb = last.pct(last.heartbeat_supported);
    assert!(hb > 20.0 && hb < 55.0, "heartbeat {hb}");
    assert!(last.pct(last.heartbleed_vulnerable) < 1.5);
}

#[test]
fn censys_weekly_cadence_anchor() {
    // The paper's actual cadence (§3.2): weekly sweeps, 2015-08-22
    // through 2018-05-13 — ~142 of them. A reduced-scale weekly
    // campaign must cover the window at that cadence, show the same
    // trend directions as the monthly runs, and keep the scan ledger
    // balanced with zero loss under the `none` profile.
    use tlscope::scanner::{ScanCampaign, ScanMetrics};
    use tlscope::servers::ServerPopulation;

    let campaign = ScanCampaign::censys_weekly(400, 7);
    assert!(
        campaign.dates.len() >= 140 && campaign.dates.len() <= 145,
        "{}",
        campaign.dates.len()
    );
    let metrics = ScanMetrics::new();
    let snaps = campaign.run_parallel(&ServerPopulation::new(), 4, &metrics);
    assert_eq!(snaps.len(), campaign.dates.len());
    let first = snaps.first().unwrap();
    let last = snaps.last().unwrap();
    // Same §5 anchors as the monthly campaign, at the real cadence.
    let ssl3_first = first.pct(first.ssl3_supported);
    assert!(ssl3_first > 35.0 && ssl3_first < 65.0, "{ssl3_first}");
    assert!(last.pct(last.ssl3_supported) < ssl3_first);
    assert!(last.pct(last.chose_rc4) < first.pct(first.chose_rc4));
    assert!(last.pct(last.chose_aead) > first.pct(first.chose_aead));
    assert!(last.pct(last.heartbleed_vulnerable) < 1.5);
    // Fault-free weekly campaign: every dispatched host probed.
    let s = metrics.snapshot();
    assert!(s.accounting_holds(), "{s:?}");
    assert_eq!(s.hosts_dispatched, 400 * campaign.dates.len() as u64);
    assert_eq!(s.hosts_probed, s.hosts_dispatched);
    assert_eq!(s.hosts_dropped, 0);
    assert_eq!(s.sweeps_completed, campaign.dates.len() as u64);
}

#[test]
fn fingerprint_coverage_near_paper() {
    let (agg, _) = study();
    let (db, _) = tlscope::clients::catalog::build_database();
    let mut cov = tlscope::fingerprint::CoverageStats::new();
    for (fp, n) in agg.iter_fp_counts() {
        cov.observe(&db, fp, n);
    }
    // Paper: 69.23%.
    let pct = cov.coverage_pct();
    assert!(pct > 55.0 && pct < 85.0, "coverage {pct}");
}

#[test]
fn null_and_anon_negotiation_rare_but_present() {
    let (agg, _) = study();
    let total: u64 = agg.iter_months().map(|(_, s)| s.total).sum();
    let null: u64 = agg.iter_months().map(|(_, s)| s.neg_null).sum();
    let anon: u64 = agg.iter_months().map(|(_, s)| s.neg_anon).sum();
    let null_pct = 100.0 * null as f64 / total as f64;
    let anon_pct = 100.0 * anon as f64 / total as f64;
    // Paper: NULL 2.84% lifetime (GRID), anon 0.17%.
    assert!(null_pct > 0.8 && null_pct < 6.0, "null {null_pct}");
    assert!(anon_pct > 0.02 && anon_pct < 1.0, "anon {anon_pct}");
}

#[test]
fn tls13_rollout_shape() {
    let (agg, _) = study();
    let fig1 = figures::fig1(agg);
    let feb = agg.month(Month::ym(2018, 2)).unwrap();
    let apr = agg.month(Month::ym(2018, 4)).unwrap();
    // Advertised 1.3 explodes Feb→Apr 2018 (0.5% → 23.6% in the paper).
    assert!(apr.pct(apr.adv_tls13) > feb.pct(feb.adv_tls13) + 5.0);
    // Negotiated stays a small fraction of advertised (1.3% vs 23.6%).
    let neg = fig1.value_at("TLSv13", Month::ym(2018, 4)).unwrap();
    assert!(neg < apr.pct(apr.adv_tls13) / 3.0, "neg {neg}");
    assert!(neg > 0.2, "neg {neg}");
}
