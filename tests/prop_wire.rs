//! Property-based tests over the wire substrate: parser totality,
//! roundtrips, and the fingerprinting invariants the study relies on.

use proptest::prelude::*;
use tlscope::fingerprint::Fingerprint;
use tlscope::wire::record::Record;
use tlscope::wire::{
    grease, CipherSuite, ClientHello, Extension, NamedGroup, ProtocolVersion, ServerHello,
};

fn arb_version() -> impl Strategy<Value = ProtocolVersion> {
    any::<u16>().prop_map(ProtocolVersion::from_wire)
}

fn arb_extension() -> impl Strategy<Value = Extension> {
    (any::<u16>(), proptest::collection::vec(any::<u8>(), 0..64))
        .prop_map(|(t, body)| Extension::new(t, body))
}

prop_compose! {
    fn arb_client_hello()(
        version in arb_version(),
        random in any::<[u8; 32]>(),
        session_id in proptest::collection::vec(any::<u8>(), 0..=32),
        suites in proptest::collection::vec(any::<u16>(), 1..64),
        compression in proptest::collection::vec(any::<u8>(), 1..4),
        extensions in proptest::option::of(proptest::collection::vec(arb_extension(), 0..12)),
    ) -> ClientHello {
        ClientHello {
            legacy_version: version,
            random,
            session_id,
            cipher_suites: suites.into_iter().map(CipherSuite).collect(),
            compression_methods: compression,
            extensions,
        }
    }
}

proptest! {
    /// Any structurally valid ClientHello survives a wire roundtrip.
    #[test]
    fn client_hello_roundtrip(hello in arb_client_hello()) {
        let bytes = hello.to_handshake_bytes();
        let parsed = ClientHello::parse_handshake(&bytes).unwrap();
        prop_assert_eq!(parsed, hello);
    }

    /// The parser is total: arbitrary bytes never panic, they either
    /// parse or produce an error.
    #[test]
    fn parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = ClientHello::parse_handshake(&bytes);
        let _ = ServerHello::parse_handshake(&bytes);
        let _ = Record::read_all(&bytes);
        let _ = tlscope::wire::Sslv2ClientHello::parse(&bytes);
        let _ = tlscope::wire::sniff(&bytes);
    }

    /// Truncating a valid hello at any point yields an error, never a
    /// wrong-but-successful parse.
    #[test]
    fn truncation_always_errors(hello in arb_client_hello(), frac in 0.0f64..1.0) {
        let bytes = hello.to_handshake_bytes();
        let cut = ((bytes.len() as f64) * frac) as usize;
        if cut < bytes.len() {
            prop_assert!(ClientHello::parse_handshake(&bytes[..cut]).is_err());
        }
    }

    /// Record fragmentation is transparent at any fragment size.
    #[test]
    fn record_fragmentation_roundtrip(
        payload in proptest::collection::vec(any::<u8>(), 1..100_000),
    ) {
        let records = Record::wrap_handshake(ProtocolVersion::Tls12, &payload);
        let bytes: Vec<u8> = records.iter().flat_map(|r| r.to_bytes()).collect();
        let parsed = Record::read_all(&bytes).unwrap();
        prop_assert_eq!(Record::coalesce_handshake(&parsed).unwrap(), payload);
    }

    /// GREASE predicate matches exactly the RFC 8701 value pattern.
    #[test]
    fn grease_pattern(v in any::<u16>()) {
        let expected = (v & 0x0f0f) == 0x0a0a && (v >> 12) == ((v >> 4) & 0xf);
        prop_assert_eq!(grease::is_grease(v), expected);
    }

    /// Fingerprints are invariant under GREASE injection anywhere in
    /// the cipher list or extension list.
    #[test]
    fn fingerprint_grease_invariance(
        hello in arb_client_hello(),
        draw in 0u8..16,
        pos_frac in 0.0f64..1.0,
    ) {
        let base = Fingerprint::from_client_hello(&hello);
        let mut injected = hello.clone();
        let pos = ((injected.cipher_suites.len() as f64) * pos_frac) as usize;
        injected
            .cipher_suites
            .insert(pos.min(injected.cipher_suites.len()), CipherSuite(grease::grease_value(draw)));
        if let Some(exts) = &mut injected.extensions {
            exts.push(Extension::empty(grease::grease_value(draw.wrapping_add(3))));
        }
        prop_assert_eq!(Fingerprint::from_client_hello(&injected), base);
    }

    /// Canonical fingerprint text roundtrips.
    #[test]
    fn fingerprint_canonical_roundtrip(hello in arb_client_hello()) {
        let fp = Fingerprint::from_client_hello(&hello);
        let parsed = Fingerprint::from_canonical(&fp.canonical()).unwrap();
        prop_assert_eq!(parsed, fp);
    }

    /// Negotiation output always parses back and selects either an
    /// offered suite or a documented quirk value.
    #[test]
    fn negotiation_wire_sanity(
        suites in proptest::collection::vec(any::<u16>(), 1..40),
        curves in proptest::collection::vec(any::<u16>(), 0..8),
    ) {
        let hello = ClientHello {
            legacy_version: ProtocolVersion::Tls12,
            random: [1; 32],
            session_id: vec![],
            cipher_suites: suites.into_iter().map(CipherSuite).collect(),
            compression_methods: vec![0],
            extensions: Some(vec![
                Extension::supported_groups(
                    &curves.iter().map(|c| NamedGroup(*c)).collect::<Vec<_>>(),
                ),
                Extension::ec_point_formats(&[0]),
            ]),
        };
        let profile = tlscope::servers::ServerProfile::baseline("prop");
        if let Ok(n) = tlscope::servers::respond(&profile, &hello, [2; 32]) {
            // The selection must be one the client offered.
            prop_assert!(hello.cipher_suites.contains(&n.cipher));
            prop_assert!(!n.cipher.is_signaling());
            prop_assert!(!grease::is_grease(n.cipher.0));
            // And the ServerHello must roundtrip.
            let bytes = n.server_hello.to_handshake_bytes();
            let parsed = ServerHello::parse_handshake(&bytes).unwrap();
            prop_assert_eq!(parsed.cipher_suite, n.cipher);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Date arithmetic roundtrips over the plausible range.
    #[test]
    fn date_epoch_roundtrip(days in -40_000i64..40_000) {
        let d = tlscope::chron::Date::from_epoch_days(days);
        prop_assert_eq!(d.to_epoch_days(), days);
    }

    /// Month add/subtract are inverses.
    #[test]
    fn month_arithmetic_inverse(y in 1990i32..2100, m in 1u8..=12, n in -500i32..500) {
        let month = tlscope::chron::Month::new(y, m).unwrap();
        prop_assert_eq!(month.add_months(n).add_months(-n), month);
        prop_assert_eq!(month.add_months(n).months_since(month), n);
    }
}
