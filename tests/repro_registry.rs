//! Every experiment id in the registry must run end-to-end on a small
//! window and produce a non-empty rendering in both output formats.

use tlscope::analysis::StudyConfig;
use tlscope::chron::Month;
use tlscope::report::{needs, ReportContext, EXPERIMENT_IDS};

#[test]
fn every_experiment_renders() {
    let mut cfg = StudyConfig::quick();
    cfg.start = Month::ym(2017, 10);
    cfg.end = Month::ym(2018, 4);
    cfg.connections_per_month = 400;
    cfg.scan_hosts = 150;
    let mut ctx = ReportContext::new(cfg);
    for id in EXPERIMENT_IDS {
        let artifact = ctx
            .run(id)
            .unwrap_or_else(|e| panic!("experiment {id} failed: {e}"));
        assert_eq!(artifact.id(), *id);
        let ascii = artifact.to_ascii(60);
        assert!(ascii.len() > 20, "{id}: empty ascii");
        let csv = artifact.to_csv();
        assert!(csv.lines().count() >= 1, "{id}: empty csv");
        let _ = needs(id);
    }
}

#[test]
fn needs_classification_is_consistent() {
    // Static tables must not claim to need runs; censys must not need
    // the passive run.
    for id in ["table1", "table3", "table4", "table5", "table6"] {
        assert_eq!(needs(id), (false, false), "{id}");
    }
    assert_eq!(needs("censys"), (false, true));
    assert_eq!(needs("fig1"), (true, false));
    assert_eq!(needs("s5.1"), (true, true));
}
