//! Market-share model: how much of the Notary's monthly traffic each
//! client family originates, 2012–2018.
//!
//! Shares are piecewise-linear between calendar anchors and normalised
//! at sampling time. The anchors are the calibration knobs of the whole
//! reproduction: they are set so that the client-side figures of the
//! paper (advertised cipher classes, export/NULL/anon offers, TLS 1.3
//! advertising, GRID/Nagios volumes) come out with the right shape.
//! Server-side shapes are calibrated separately in `tlscope-servers`.

use tlscope_chron::Date;
use tlscope_clients::Family;

/// One family's share anchors: `(date, weight)` pairs, ascending.
#[derive(Debug, Clone)]
pub struct ShareCurve {
    anchors: Vec<(Date, f64)>,
}

impl ShareCurve {
    /// Interpolated raw weight at `date` (0 before the first anchor's
    /// date only if the first weight is 0; otherwise clamped).
    pub fn weight(&self, date: Date) -> f64 {
        let a = &self.anchors;
        if date <= a[0].0 {
            return a[0].1;
        }
        for w in a.windows(2) {
            let (d0, v0) = w[0];
            let (d1, v1) = w[1];
            if date <= d1 {
                let t = (date - d0) as f64 / (d1 - d0) as f64;
                return v0 + (v1 - v0) * t;
            }
        }
        a[a.len() - 1].1
    }
}

const fn d(y: i32, m: u8) -> Date {
    Date::ymd(y, m, 1)
}

/// Raw share anchors for a family name; families absent here get a tiny
/// default weight so nothing silently vanishes.
pub fn share_anchors(name: &str) -> ShareCurve {
    let anchors: &[(Date, f64)] = match name {
        "Chrome" => &[
            (d(2012, 1), 0.160),
            (d(2014, 1), 0.220),
            (d(2016, 1), 0.270),
            (d(2018, 4), 0.320),
        ],
        "Firefox" => &[
            (d(2012, 1), 0.140),
            (d(2014, 1), 0.120),
            (d(2016, 1), 0.100),
            (d(2018, 4), 0.080),
        ],
        "Firefox (TLS 1.3 flag)" => &[(d(2017, 2), 0.0), (d(2017, 4), 0.006), (d(2018, 4), 0.007)],
        "Chrome (TLS 1.3 experiment)" => &[
            (d(2017, 2), 0.0),
            (d(2017, 4), 0.010),
            (d(2018, 2), 0.010),
            (d(2018, 4), 0.004),
        ],
        "IE/Edge" => &[
            (d(2012, 1), 0.180),
            (d(2014, 1), 0.130),
            (d(2016, 1), 0.070),
            (d(2018, 4), 0.050),
        ],
        "Safari" => &[(d(2012, 1), 0.050), (d(2018, 4), 0.055)],
        "Opera" => &[(d(2012, 1), 0.022), (d(2018, 4), 0.018)],
        "Android SDK" => &[
            (d(2012, 1), 0.060),
            (d(2014, 1), 0.120),
            (d(2016, 1), 0.170),
            (d(2018, 4), 0.200),
        ],
        "Apple SecureTransport" => &[
            (d(2012, 1), 0.080),
            (d(2015, 1), 0.130),
            (d(2018, 4), 0.160),
        ],
        "MS CryptoAPI" => &[(d(2012, 1), 0.050), (d(2018, 4), 0.040)],
        "OpenSSL" => &[(d(2012, 1), 0.070), (d(2018, 4), 0.070)],
        "Java JSSE" => &[(d(2012, 1), 0.042), (d(2018, 4), 0.015)],
        // GRID: 2.84 % of lifetime connections negotiate NULL (§6.1),
        // falling to 0.42 % of 2018 traffic.
        "Globus GridFTP" => &[
            (d(2012, 1), 0.068),
            (d(2014, 1), 0.052),
            (d(2016, 1), 0.024),
            (d(2018, 1), 0.0065),
            (d(2018, 4), 0.0065),
        ],
        // Nagios anon: 0.17 % lifetime, 0.60 % of 2018 (§6.2 — rising).
        "Nagios NRPE" => &[
            (d(2012, 1), 0.0008),
            (d(2016, 1), 0.0018),
            (d(2018, 1), 0.0060),
            (d(2018, 4), 0.0060),
        ],
        "Legacy Nagios probe (SSLv2)" => &[(d(2012, 1), 0.00002), (d(2018, 4), 0.00001)],
        "Thunderbird" => &[(d(2012, 1), 0.012), (d(2018, 4), 0.008)],
        "Apple Mail" => &[(d(2012, 1), 0.015), (d(2018, 4), 0.015)],
        "Apple Spotlight" => &[(d(2014, 10), 0.0), (d(2015, 6), 0.010), (d(2018, 4), 0.012)],
        "git" => &[(d(2012, 1), 0.003), (d(2018, 4), 0.006)],
        "Flux" => &[(d(2013, 7), 0.0), (d(2014, 1), 0.002), (d(2018, 4), 0.002)],
        "Facebook app" => &[(d(2015, 3), 0.0), (d(2016, 1), 0.020), (d(2018, 4), 0.025)],
        "Hola VPN" => &[(d(2014, 1), 0.0), (d(2015, 1), 0.003), (d(2018, 4), 0.002)],
        "Dropbox" => &[(d(2013, 1), 0.0), (d(2014, 1), 0.010), (d(2018, 4), 0.008)],
        "Avast" => &[(d(2014, 10), 0.0), (d(2015, 6), 0.007), (d(2018, 4), 0.007)],
        // Kaspersky and Lookout spike alongside the anon SDK in
        // mid-2015 (§6.2).
        "Kaspersky" => &[
            (d(2014, 8), 0.0),
            (d(2015, 4), 0.005),
            (d(2015, 6), 0.009),
            (d(2015, 10), 0.007),
            (d(2018, 4), 0.005),
        ],
        "Lookout Personal" => &[(d(2013, 5), 0.0), (d(2014, 1), 0.003), (d(2018, 4), 0.003)],
        "Bluecoat Proxy" => &[(d(2013, 1), 0.0), (d(2014, 1), 0.004), (d(2018, 4), 0.003)],
        "Craftar Image Recognition" => {
            &[(d(2014, 3), 0.0), (d(2014, 9), 0.001), (d(2018, 4), 0.001)]
        }
        "Shodan scanner" => &[
            (d(2013, 6), 0.0),
            (d(2014, 1), 0.0005),
            (d(2018, 4), 0.0005),
        ],
        "Zbot" => &[
            (d(2012, 6), 0.0),
            (d(2013, 1), 0.002),
            (d(2016, 1), 0.001),
            (d(2018, 4), 0.0005),
        ],
        "InstallMoney" => &[(d(2014, 9), 0.0), (d(2015, 3), 0.001), (d(2018, 4), 0.0008)],
        "Splunk forwarder" => &[(d(2013, 10), 0.0), (d(2014, 6), 0.003), (d(2018, 4), 0.003)],
        "Interwise" => &[(d(2012, 1), 0.0006), (d(2018, 4), 0.0002)],
        "curl" => &[(d(2012, 1), 0.008), (d(2018, 4), 0.012)],
        "wget" => &[(d(2012, 1), 0.003), (d(2018, 4), 0.004)],
        "Python requests" => &[(d(2013, 1), 0.0), (d(2014, 1), 0.004), (d(2018, 4), 0.010)],
        "Outlook" => &[(d(2012, 1), 0.010), (d(2018, 4), 0.008)],
        "OpenVPN" => &[(d(2013, 1), 0.0), (d(2014, 1), 0.002), (d(2018, 4), 0.003)],
        "Tor" => &[(d(2012, 6), 0.0), (d(2013, 1), 0.001), (d(2018, 4), 0.001)],
        "HP LaserJet firmware" => &[(d(2012, 1), 0.004), (d(2018, 4), 0.002)],
        "SmartHome hub" => &[(d(2014, 3), 0.0), (d(2015, 6), 0.002), (d(2018, 4), 0.003)],
        "SmartTV platform" => &[(d(2014, 5), 0.0), (d(2015, 6), 0.004), (d(2018, 4), 0.006)],
        "GostRAT" => &[
            (d(2015, 2), 0.0),
            (d(2015, 8), 0.0004),
            (d(2018, 4), 0.0002),
        ],
        "Steam" => &[(d(2016, 2), 0.0), (d(2016, 10), 0.004), (d(2018, 4), 0.005)],
        // Unlabelled mass (~30 % of fingerprinted-era traffic, §4).
        "(embedded stack, SSL3)" => &[
            (d(2012, 1), 0.060),
            (d(2013, 6), 0.024),
            (d(2014, 7), 0.002),
            (d(2015, 6), 0.0002),
            (d(2018, 4), 0.00005),
        ],
        "(embedded stack, TLS1.0)" => &[
            (d(2012, 1), 0.240),
            (d(2014, 1), 0.090),
            (d(2016, 1), 0.022),
            (d(2018, 4), 0.007),
        ],
        // The §6.2 spike: 5.8 % → 12.9 % of connections advertising
        // anon within two months of mid-2015.
        "(anon/NULL SDK)" => &[
            (d(2012, 1), 0.050),
            (d(2015, 4), 0.052),
            (d(2015, 6), 0.210),
            (d(2015, 8), 0.170),
            (d(2015, 11), 0.110),
            (d(2016, 6), 0.060),
            (d(2018, 4), 0.045),
        ],
        "(misc A)" => &[(d(2012, 1), 0.105), (d(2018, 4), 0.130)],
        "(misc B)" => &[(d(2012, 1), 0.090), (d(2018, 4), 0.110)],
        "(misc C)" => &[(d(2012, 1), 0.080), (d(2018, 4), 0.100)],
        "(cipher-shuffling client)" => &[
            (d(2014, 6), 0.0),
            (d(2014, 10), 0.0015),
            (d(2018, 4), 0.0015),
        ],
        _ => &[(d(2012, 1), 0.0005), (d(2018, 4), 0.0005)],
    };
    ShareCurve {
        anchors: anchors.to_vec(),
    }
}

/// The normalised market: families paired with weights at a date.
pub struct Market {
    families: Vec<Family>,
    curves: Vec<ShareCurve>,
}

impl Default for Market {
    fn default() -> Self {
        Self::new()
    }
}

impl Market {
    /// Build from the full client catalog.
    pub fn new() -> Self {
        let families = tlscope_clients::catalog::all_families();
        let curves = families.iter().map(|f| share_anchors(f.name)).collect();
        Market { families, curves }
    }

    /// The families, in stable order.
    pub fn families(&self) -> &[Family] {
        &self.families
    }

    /// Normalised shares at a date (aligned with [`Market::families`]).
    /// Families that have not shipped anything yet get zero.
    pub fn shares(&self, date: Date) -> Vec<f64> {
        let mut weights = Vec::with_capacity(self.families.len());
        self.shares_into(date, &mut weights);
        weights
    }

    /// [`Market::shares`], written into a reusable buffer — the
    /// generator hot path calls this once per connection.
    pub fn shares_into(&self, date: Date, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.families.iter().zip(&self.curves).map(|(f, c)| {
            if f.era_index_at(date).is_some() {
                c.weight(date)
            } else {
                0.0
            }
        }));
        let total: f64 = out.iter().sum();
        if total > 0.0 {
            for w in out.iter_mut() {
                *w /= total;
            }
        }
    }

    /// Share of a single family by name (sums over duplicates).
    pub fn share_of(&self, name: &str, date: Date) -> f64 {
        let shares = self.shares(date);
        self.families
            .iter()
            .zip(&shares)
            .filter(|(f, _)| f.name == name)
            .map(|(_, s)| *s)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_normalise() {
        let m = Market::new();
        for date in [
            Date::ymd(2012, 2, 1),
            Date::ymd(2015, 6, 1),
            Date::ymd(2018, 4, 1),
        ] {
            let sum: f64 = m.shares(date).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{date}: {sum}");
        }
    }

    #[test]
    fn browsers_dominate_with_libraries() {
        let m = Market::new();
        let date = Date::ymd(2016, 1, 1);
        let browsers: f64 = ["Chrome", "Firefox", "IE/Edge", "Safari", "Opera"]
            .iter()
            .map(|n| m.share_of(n, date))
            .sum();
        assert!(browsers > 0.30 && browsers < 0.60, "browsers {browsers}");
    }

    #[test]
    fn grid_share_declines() {
        let m = Market::new();
        let early = m.share_of("Globus GridFTP", Date::ymd(2012, 6, 1));
        let late = m.share_of("Globus GridFTP", Date::ymd(2018, 2, 1));
        assert!(early > 0.02, "early {early}");
        assert!(late < 0.006, "late {late}");
    }

    #[test]
    fn anon_sdk_spikes_mid_2015() {
        let m = Market::new();
        let before = m.share_of("(anon/NULL SDK)", Date::ymd(2015, 4, 1));
        let spike = m.share_of("(anon/NULL SDK)", Date::ymd(2015, 6, 15));
        assert!(spike > before * 2.0, "before {before} spike {spike}");
    }

    #[test]
    fn unlabelled_mass_is_about_thirty_percent() {
        let m = Market::new();
        let date = Date::ymd(2016, 6, 1);
        let shares = m.shares(date);
        let unl: f64 = m
            .families()
            .iter()
            .zip(&shares)
            .filter(|(f, _)| !f.labelled)
            .map(|(_, s)| *s)
            .sum();
        assert!(unl > 0.22 && unl < 0.40, "unlabelled {unl}");
    }

    #[test]
    fn weight_interpolation_is_linear() {
        let c = share_anchors("Chrome");
        let w0 = c.weight(Date::ymd(2012, 1, 1));
        let w1 = c.weight(Date::ymd(2014, 1, 1));
        let mid = c.weight(Date::ymd(2013, 1, 1));
        assert!(mid > w0 && mid < w1);
        // Clamped outside.
        assert_eq!(c.weight(Date::ymd(2010, 1, 1)), w0);
        assert_eq!(
            c.weight(Date::ymd(2020, 1, 1)),
            c.weight(Date::ymd(2018, 4, 1))
        );
    }
}
