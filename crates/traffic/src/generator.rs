//! The connection-event generator: the synthetic Internet's tap point.
//!
//! For each simulated connection the generator (1) draws a client
//! family from the market model and a configuration era from the
//! adoption model, (2) draws the destination and a server profile from
//! the population model, (3) emits the actual wire bytes both sides
//! would put on the network (ClientHello records; ServerHello records
//! plus ServerKeyExchange for classic ECDHE, or an alert on failure),
//! and (4) runs the best-effort-tap fault injector over both flows.
//!
//! Everything downstream (the notary) sees only bytes — the ground
//! truth used for generation never crosses this boundary.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use std::time::Instant;
use tlscope_chron::{Date, Month};
use tlscope_clients::{catalog, Family, HelloEntropy, HelloPatches};
use tlscope_notary::{PipelineMetrics, TappedFlow};
use tlscope_servers::{negotiate, Destination, ParamsCache, ServerPopulation};
use tlscope_wire::codec::{patch_bytes, Writer};
use tlscope_wire::exts::ext_type;
use tlscope_wire::grease::grease_value;
use tlscope_wire::handshake::handshake_type;
use tlscope_wire::record::{ContentType, Record, RecordView};
use tlscope_wire::{CipherSuite, NamedGroup, ProtocolVersion, Sslv2ClientHello};

use crate::faults::FaultInjector;
use crate::market::Market;

/// One tapped connection: wire bytes only.
#[derive(Debug, Clone)]
pub struct ConnectionEvent {
    /// Day the connection was seen.
    pub date: Date,
    /// Destination TCP port (the Notary watches all ports).
    pub port: u16,
    /// Client → server bytes (TLS records or an SSLv2 record).
    pub client_flow: Vec<u8>,
    /// Server → client bytes; `None` when the tap missed them.
    pub server_flow: Option<Vec<u8>>,
}

impl ConnectionEvent {
    /// Total wire bytes the tap captured for this connection.
    pub fn wire_bytes(&self) -> u64 {
        self.client_flow.len() as u64 + self.server_flow.as_ref().map_or(0, |s| s.len() as u64)
    }
}

/// The generator→notary boundary: hand the captured byte buffers to
/// the tap without copying them. This is the single definition of the
/// mapping — every pipeline (study runner, benches, tests) goes
/// through it, so a field added to either side cannot silently
/// desynchronise a hand-rolled copy.
impl From<ConnectionEvent> for TappedFlow {
    fn from(ev: ConnectionEvent) -> TappedFlow {
        TappedFlow {
            date: ev.date,
            port: ev.port,
            client: ev.client_flow,
            server: ev.server_flow,
        }
    }
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Master seed; every month derives its own stream from it.
    pub seed: u64,
    /// Connections generated per month.
    pub connections_per_month: u32,
    /// Fault injection for the tap.
    pub faults: FaultInjector,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            seed: 0x715C0,
            connections_per_month: 20_000,
            faults: FaultInjector::tap_defaults(),
        }
    }
}

/// The generator: market + adoption + server population.
pub struct Generator {
    market: Market,
    population: ServerPopulation,
    cfg: TrafficConfig,
}

impl Generator {
    /// Build a generator over the full client catalog.
    pub fn new(cfg: TrafficConfig) -> Self {
        Generator {
            market: Market::new(),
            population: ServerPopulation::new(),
            cfg,
        }
    }

    /// Access the market model (for analyses that need shares).
    pub fn market(&self) -> &Market {
        &self.market
    }

    /// Generate one month of traffic. Deterministic in (seed, month).
    pub fn month(&self, month: Month) -> Vec<ConnectionEvent> {
        let mut out = Vec::with_capacity(self.cfg.connections_per_month as usize);
        out.extend(self.stream_month(month));
        out
    }

    /// Lazily generate one month of traffic, one event at a time.
    ///
    /// Yields exactly the same event sequence as [`Generator::month`]
    /// (same per-month RNG stream, same fault injection) without ever
    /// materializing the month — the streaming study runner aggregates
    /// each event as it is drawn, so peak memory stays at one event
    /// per worker instead of one month per worker.
    pub fn stream_month(&self, month: Month) -> MonthStream<'_> {
        MonthStream {
            generator: self,
            month,
            rng: SmallRng::seed_from_u64(
                self.cfg
                    .seed
                    .wrapping_mul(0x9e3779b97f4a7c15)
                    .wrapping_add(month.index() as u64),
            ),
            remaining: self.cfg.connections_per_month,
            pending: None,
            metrics: None,
            scratch: GenScratch {
                // One (lazily filled) share-vector slot per calendar
                // day; `shares_into` always writes one weight per
                // family, so an empty slot unambiguously means
                // "not yet computed".
                shares_by_day: vec![Vec::new(); month.len_days() as usize],
                ..GenScratch::default()
            },
        }
    }

    /// Generate every month in an inclusive range.
    pub fn months(
        &self,
        start: Month,
        end: Month,
    ) -> impl Iterator<Item = (Month, Vec<ConnectionEvent>)> + '_ {
        start.iter_through(end).map(move |m| (m, self.month(m)))
    }

    /// Generate one connection straight into `scratch`'s flow buffers.
    ///
    /// The returned [`FlowMeta`] describes bytes left in
    /// `scratch.client_buf` / `scratch.server_buf`; nothing is heap-
    /// allocated per call once the scratch buffers have grown to their
    /// working sizes. Draws the identical RNG sequence as the previous
    /// owned implementation, so every pinned event stream is unchanged.
    fn connection_into(
        &self,
        date: Date,
        rng: &mut SmallRng,
        scratch: &mut GenScratch,
    ) -> Option<FlowMeta> {
        // 1. Client family + era. Market shares are a pure function of
        // the calendar date, so within one month they take at most 31
        // distinct values — the scratch caches one share vector per
        // day instead of re-interpolating ~45 anchor curves per
        // connection (which dominated generation cost).
        let day_idx = date.day() as usize - 1;
        if scratch.shares_by_day[day_idx].is_empty() {
            let slot = &mut scratch.shares_by_day[day_idx];
            self.market.shares_into(date, slot);
        }
        let fam_idx = pick_index(rng, &scratch.shares_by_day[day_idx])?;
        let family = &self.market.families()[fam_idx];
        catalog::adoption_for(family).era_shares_into(family, date, &mut scratch.era_shares);
        let era_idx = pick_index(rng, &scratch.era_shares)?;
        let era = &family.eras[era_idx];

        // 2. Destination.
        let (dest, port) = destination_for(family, rng);

        // 3. Client bytes.
        let entropy = HelloEntropy::from_seed(rng.random::<u64>());
        if era.tls.legacy_version == ProtocolVersion::Ssl2 {
            const SSLV2_SPECS: &[u32] = &[
                tlscope_wire::record::sslv2_cipher::RC4_128_WITH_MD5,
                tlscope_wire::record::sslv2_cipher::DES_192_EDE3_CBC_WITH_MD5,
            ];
            let mut challenge = [0u8; 16];
            challenge.copy_from_slice(&entropy.random[..16]);
            scratch.client_buf.clear();
            Sslv2ClientHello::write_parts_into(
                ProtocolVersion::Ssl2,
                SSLV2_SPECS,
                &[],
                &challenge,
                &mut scratch.client_buf,
            );
            if !self.cfg.faults.apply_in_place(&mut scratch.client_buf, rng) {
                return None;
            }
            return Some(FlowMeta {
                date,
                port,
                has_server: false,
            });
        }

        let sni = sni_for(dest, rng);
        let cfg = &era.tls;
        cfg.hello_ciphers_into(&entropy, &mut scratch.ciphers);
        let shuffled = family.name == "(cipher-shuffling client)";
        if shuffled {
            // §4.1: the fingerprint-exploding bug — unstable cipher
            // order per connection.
            shuffle(&mut scratch.ciphers, rng);
        }
        let record_version = if cfg.legacy_version.rank() <= ProtocolVersion::Ssl3.rank() {
            ProtocolVersion::Ssl3
        } else {
            ProtocolVersion::Tls10
        };
        let GenScratch {
            ciphers,
            versions,
            curves,
            handshake,
            client_buf,
            server_buf,
            params_cache,
            templates,
            ..
        } = scratch;
        // Client bytes via the template cache: for a stable-order
        // config the serialised hello is a pure function of
        // (family, era, sni) outside its patch map, so steady state is
        // memcpy + patch. The shuffling client's suite order changes
        // per connection and bypasses the cache, as would a non-empty
        // session id (resumption would move every offset).
        let cacheable = !shuffled && entropy.session_id.is_empty();
        let client_key = (fam_idx, era_idx, sni);
        let mut hit = false;
        if cacheable {
            if let Some(t) = templates.client.get(&client_key) {
                client_buf.clear();
                client_buf.extend_from_slice(&t.bytes);
                t.patches.apply(client_buf, &entropy);
                hit = true;
            }
        }
        if hit {
            templates.hits += 1;
        } else {
            let mut patches = None;
            with_writer(handshake, |w| {
                patches = Some(cfg.write_hello_recording(Some(sni), &entropy, ciphers, w));
            });
            client_buf.clear();
            Record::wrap_handshake_into(record_version, handshake, client_buf);
            let header = client_buf.len() - handshake.len();
            // header == 5 means the hello fits one record — the only
            // shape the patch map's uniform +5 shift describes (real
            // hellos always do; a multi-record monster just stays
            // uncached).
            if cacheable && header == 5 {
                let mut patches = patches.expect("with_writer runs its closure");
                patches.shift(header);
                templates.client.insert(
                    client_key,
                    ClientTemplate {
                        bytes: client_buf.clone(),
                        patches,
                    },
                );
            }
            templates.misses += 1;
        }

        // 4. Server side. Negotiation runs on ClientFacts assembled
        // from the configuration that just emitted the hello — the
        // same information a parse of the client flow would recover,
        // without materialising a ClientHello.
        let profile = self
            .population
            .sample_for_traffic_cached(params_cache, dest, date, rng);
        let mut server_random = [0u8; 32];
        for chunk in server_random.chunks_mut(8) {
            chunk.copy_from_slice(&rng.random::<u64>().to_le_bytes());
        }
        let supported_versions = if cfg.extensions.contains(&ext_type::SUPPORTED_VERSIONS) {
            versions.clear();
            if cfg.grease {
                versions.push(ProtocolVersion::Unknown(grease_value(
                    entropy.grease_draws[0],
                )));
            }
            versions.extend(cfg.supported_versions.iter().copied());
            Some(versions.as_slice())
        } else {
            None
        };
        let groups = if cfg.extensions.contains(&ext_type::SUPPORTED_GROUPS) {
            curves.clear();
            if cfg.grease {
                curves.push(NamedGroup(grease_value(entropy.grease_draws[3])));
            }
            curves.extend(cfg.curves.iter().copied());
            Some(curves.as_slice())
        } else {
            None
        };
        let facts = negotiate::ClientFacts {
            legacy_version: cfg.legacy_version,
            session_id: &entropy.session_id,
            cipher_suites: ciphers,
            supported_versions,
            curves: groups,
            has_renegotiation_info: cfg.extensions.contains(&ext_type::RENEGOTIATION_INFO),
            has_heartbeat: cfg.extensions.contains(&ext_type::HEARTBEAT),
            has_extensions: !cfg.extensions.is_empty() || cfg.grease,
        };
        server_buf.clear();
        match negotiate::decide(&profile, &facts) {
            Ok(d) => {
                // The whole server flight is a pure function of
                // (Decision, echoed facts, server_random) when the
                // session id is empty — so the flight is cached per
                // template key and only the 32 random bytes at the
                // fixed ServerHello offset are rewritten.
                let server_key = d.template_key(&facts);
                if entropy.session_id.is_empty() {
                    if let Some(bytes) = templates.server.get(&server_key) {
                        server_buf.extend_from_slice(bytes);
                        patch_bytes(server_buf, SERVER_RANDOM_OFFSET, &server_random);
                        templates.hits += 1;
                    } else {
                        build_server_flight(&d, &facts, server_random, handshake, server_buf);
                        debug_assert_eq!(
                            &server_buf[SERVER_RANDOM_OFFSET..SERVER_RANDOM_OFFSET + 32],
                            &server_random[..],
                        );
                        templates.server.insert(server_key, server_buf.clone());
                        templates.misses += 1;
                    }
                } else {
                    build_server_flight(&d, &facts, server_random, handshake, server_buf);
                }
            }
            Err(failure) => {
                let alert = match failure {
                    tlscope_servers::HandshakeFailure::VersionMismatch => {
                        tlscope_wire::Alert::protocol_version()
                    }
                    tlscope_servers::HandshakeFailure::NoCommonCipher => {
                        tlscope_wire::Alert::handshake_failure()
                    }
                };
                RecordView {
                    content_type: ContentType::Alert,
                    version: record_version,
                    payload: &[alert.level.to_wire(), alert.description],
                }
                .write_into(server_buf);
            }
        }

        if !self.cfg.faults.apply_in_place(client_buf, rng) {
            return None;
        }
        let has_server = self.cfg.faults.apply_in_place(server_buf, rng);
        Some(FlowMeta {
            date,
            port,
            has_server,
        })
    }
}

/// Where one generated connection's bytes are: the flows live in the
/// stream's [`GenScratch`] buffers, this carries everything else.
#[derive(Debug, Clone, Copy)]
struct FlowMeta {
    date: Date,
    port: u16,
    /// The server flow survived fault injection (when false,
    /// `server_buf` holds meaningless bytes).
    has_server: bool,
}

/// One tapped connection, borrowed from the stream's scratch buffers.
///
/// Valid until the next [`MonthStream::next_flow`] call; the borrow
/// checker enforces exactly that. The borrowed twin of
/// [`ConnectionEvent`].
#[derive(Debug, Clone, Copy)]
pub struct FlowRef<'a> {
    /// Day the connection was seen.
    pub date: Date,
    /// Destination TCP port.
    pub port: u16,
    /// Client → server bytes.
    pub client: &'a [u8],
    /// Server → client bytes; `None` when the tap missed them.
    pub server: Option<&'a [u8]>,
}

/// Per-stream reusable buffers. Every connection draws through these
/// instead of allocating fresh intermediates — including the flow
/// bytes themselves: `client_buf`/`server_buf` hold the current
/// connection's wire bytes, and only callers that need owned flows
/// (the owned iterator, the channel path) copy them out.
#[derive(Default)]
struct GenScratch {
    /// Normalised market shares, cached per day of the month (slot
    /// `day - 1`; empty = not yet computed). Sized by
    /// [`Generator::stream_month`].
    shares_by_day: Vec<Vec<f64>>,
    /// Memoised cohort parameter curves for profile sampling.
    params_cache: ParamsCache,
    era_shares: Vec<f64>,
    ciphers: Vec<CipherSuite>,
    versions: Vec<ProtocolVersion>,
    curves: Vec<NamedGroup>,
    handshake: Vec<u8>,
    client_buf: Vec<u8>,
    server_buf: Vec<u8>,
    /// Serialised-flight templates for both sides of the tap.
    templates: TemplateCache,
}

/// Byte offset of the 32-byte server random inside a record-framed
/// ServerHello: 5 record-header bytes, 1 handshake type, 3 length,
/// 2 legacy version.
const SERVER_RANDOM_OFFSET: usize = 11;

/// A cached record-framed client flow plus the offsets of its volatile
/// ranges.
struct ClientTemplate {
    bytes: Vec<u8>,
    patches: HelloPatches,
}

/// Per-stream cache of serialised wire flights.
///
/// Client flows are keyed by (family, era, sni) — the hello bytes are
/// a pure function of that triple outside the patch map (the calendar
/// day shifts *which* stacks appear, never their bytes, so day is
/// deliberately not part of the key). Server flights are keyed by
/// [`Decision::template_key`](tlscope_servers::Decision::template_key)
/// and re-randomised by patching the server random in place. Both maps
/// are unbounded: the key space is the client catalog × a handful of
/// SNIs, resp. the set of distinct negotiation outcomes — a few
/// hundred entries per stream at most.
#[derive(Default)]
struct TemplateCache {
    client: HashMap<(usize, usize, &'static str), ClientTemplate>,
    server: HashMap<u64, Vec<u8>>,
    hits: u64,
    misses: u64,
    flushed_hits: u64,
    flushed_misses: u64,
}

impl TemplateCache {
    /// Counter deltas since the previous call (the metered stream's
    /// flush point).
    fn unflushed(&mut self) -> (u64, u64) {
        let delta = (
            self.hits - self.flushed_hits,
            self.misses - self.flushed_misses,
        );
        self.flushed_hits = self.hits;
        self.flushed_misses = self.misses;
        delta
    }
}

/// Serialise the server flight for an already-made decision into
/// `server_buf` (which the caller cleared): ServerHello, then for
/// classic TLS the ECDHE ServerKeyExchange (when a curve was selected)
/// and ServerHelloDone — one record per handshake message, the framing
/// real stacks use (which lets a tap that truncated the tail of the
/// flight still keep an intact ServerHello prefix for salvage).
fn build_server_flight(
    d: &negotiate::Decision,
    facts: &negotiate::ClientFacts<'_>,
    server_random: [u8; 32],
    handshake: &mut Vec<u8>,
    server_buf: &mut Vec<u8>,
) {
    let version = if d.version.is_tls13_family() {
        ProtocolVersion::Tls12
    } else {
        d.version
    };
    with_writer(handshake, |w| {
        negotiate::write_decision_into(d, facts, server_random, w);
    });
    Record::wrap_handshake_into(version, handshake, server_buf);
    if !d.version.is_tls13_family() {
        if let Some(curve) = d.curve {
            with_writer(handshake, |w| {
                tlscope_wire::ske::write_ecdhe_ske(w, curve, 65);
            });
            Record::wrap_handshake_into(version, handshake, server_buf);
        }
        Record::wrap_handshake_into(
            version,
            &[handshake_type::SERVER_HELLO_DONE, 0, 0, 0],
            server_buf,
        );
    }
}

/// Run a serialiser over a [`Writer`] that borrows `buf`'s storage,
/// leaving the (possibly grown) storage in `buf` for the next use.
fn with_writer(buf: &mut Vec<u8>, f: impl FnOnce(&mut Writer)) {
    buf.clear();
    let mut w = Writer::from_vec(std::mem::take(buf));
    f(&mut w);
    *buf = w.into_bytes();
}

/// Lazy per-event iterator over one month's traffic.
///
/// Created by [`Generator::stream_month`]. Attach a
/// [`PipelineMetrics`] with [`MonthStream::metered`] to account each
/// drawn event (flow count, wire bytes, generation wall-clock) as it
/// is produced.
pub struct MonthStream<'a> {
    generator: &'a Generator,
    month: Month,
    rng: SmallRng,
    remaining: u32,
    /// Replay token for a tap-duplicated flow: the duplicate's bytes
    /// are still sitting untouched in `scratch`, so the second copy is
    /// re-emitted from there on the next draw — no owned clone of the
    /// event is ever held.
    pending: Option<FlowMeta>,
    metrics: Option<&'a PipelineMetrics>,
    /// Reusable per-connection buffers, including the current flow
    /// bytes.
    scratch: GenScratch,
}

impl<'a> MonthStream<'a> {
    /// Record every drawn event into `metrics` (generation stage).
    pub fn metered(mut self, metrics: &'a PipelineMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Wire bytes of the connection currently in scratch.
    fn scratch_wire_bytes(&self, meta: FlowMeta) -> u64 {
        let server = if meta.has_server {
            self.scratch.server_buf.len() as u64
        } else {
            0
        };
        self.scratch.client_buf.len() as u64 + server
    }

    /// Draw the next connection into scratch: the shared core behind
    /// both the borrowed and the owned interface. Handles duplication
    /// replay, outage windows, and metering.
    fn advance(&mut self) -> Option<FlowMeta> {
        let started = self.metrics.map(|_| Instant::now());
        if let Some(meta) = self.pending.take() {
            // Second copy of a duplicated flow, replayed from scratch.
            if let (Some(m), Some(t0)) = (self.metrics, started) {
                m.record_generated(self.scratch_wire_bytes(meta), t0.elapsed());
            }
            return Some(meta);
        }
        let faults = &self.generator.cfg.faults;
        // Shares drift within a month; sampling per connection-day
        // keeps the curves smooth without recomputing per event.
        while self.remaining > 0 {
            self.remaining -= 1;
            let day = self.rng.random_range(1..=self.month.len_days());
            let date = Date::new(self.month.year(), self.month.month_of_year(), day).unwrap();
            if faults.in_outage(self.generator.cfg.seed, date) {
                // The tap is dark: the connection happened on the wire
                // but was never captured. The check precedes generation
                // — an outage costs no RNG draws, mirroring a capture
                // process that simply is not running.
                if let Some(m) = self.metrics {
                    m.record_outage_dropped(1);
                }
                continue;
            }
            if let Some(meta) =
                self.generator
                    .connection_into(date, &mut self.rng, &mut self.scratch)
            {
                if faults.duplicates(&mut self.rng) {
                    if let Some(m) = self.metrics {
                        m.record_duplicated(1);
                    }
                    self.pending = Some(meta);
                }
                if let (Some(m), Some(t0)) = (self.metrics, started) {
                    m.record_generated(self.scratch_wire_bytes(meta), t0.elapsed());
                }
                self.flush_template_metrics();
                return Some(meta);
            }
        }
        self.flush_template_metrics();
        None
    }

    /// Push template-cache counter deltas into the attached metrics
    /// (no-op on unmetered streams; cumulative totals stay readable
    /// via [`MonthStream::template_cache_stats`] either way).
    fn flush_template_metrics(&mut self) {
        if let Some(m) = self.metrics {
            let (hits, misses) = self.scratch.templates.unflushed();
            if hits | misses != 0 {
                m.record_template(hits, misses);
            }
        }
    }

    /// Cumulative template-cache (hits, misses) for this stream —
    /// client and server flights combined.
    pub fn template_cache_stats(&self) -> (u64, u64) {
        (self.scratch.templates.hits, self.scratch.templates.misses)
    }

    /// Pull the next connection without allocating: the returned
    /// [`FlowRef`] borrows the stream's scratch buffers and is valid
    /// until the next call. Yields exactly the sequence the owned
    /// iterator yields — the fused study runner folds straight from
    /// these borrows into the aggregate.
    pub fn next_flow(&mut self) -> Option<FlowRef<'_>> {
        let meta = self.advance()?;
        Some(FlowRef {
            date: meta.date,
            port: meta.port,
            client: &self.scratch.client_buf,
            server: meta
                .has_server
                .then_some(self.scratch.server_buf.as_slice()),
        })
    }
}

impl Iterator for MonthStream<'_> {
    type Item = ConnectionEvent;

    fn next(&mut self) -> Option<ConnectionEvent> {
        // Same core as next_flow; materialize owned flows for callers
        // that need them to outlive the stream.
        let meta = self.advance()?;
        Some(ConnectionEvent {
            date: meta.date,
            port: meta.port,
            client_flow: self.scratch.client_buf.clone(),
            server_flow: meta.has_server.then(|| self.scratch.server_buf.clone()),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Fault injection can drop any event and duplication can double
        // one, so only the upper bound is known.
        let pending = usize::from(self.pending.is_some());
        (0, Some(self.remaining as usize * 2 + pending))
    }
}

fn pick_index(rng: &mut SmallRng, weights: &[f64]) -> Option<usize> {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return None;
    }
    let mut draw = rng.random::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        if draw < *w {
            return Some(i);
        }
        draw -= w;
    }
    weights.iter().rposition(|w| *w > 0.0)
}

fn destination_for(family: &Family, rng: &mut SmallRng) -> (Destination, u16) {
    match family.name {
        "Globus GridFTP" => (Destination::Grid, 2811),
        "Nagios NRPE" => (Destination::Nagios, 5666),
        "Legacy Nagios probe (SSLv2)" => (Destination::Sslv2Relic, 5666),
        "Thunderbird" | "Apple Mail" => (Destination::Mail, 993),
        "Splunk forwarder" => (Destination::Splunk, 9997),
        "Interwise" => (Destination::Interwise, 443),
        _ => {
            let draw = rng.random::<f64>();
            if draw < 0.9830 {
                (Destination::Web, 443)
            } else if draw < 0.9930 {
                (Destination::Enterprise, 443)
            } else if draw < 0.9970 {
                (Destination::Iot, 8443)
            } else if draw < 0.9986 {
                (Destination::BankLegacy, 443)
            } else if draw < 0.9990 {
                (Destination::Gost, 443)
            } else {
                (Destination::Nagios, 5666)
            }
        }
    }
}

fn sni_for(dest: Destination, rng: &mut SmallRng) -> &'static str {
    const WEB: &[&str] = &[
        "www.example.com",
        "search.example.org",
        "social.example.net",
        "video.example.com",
        "news.example.org",
        "shop.example.net",
    ];
    match dest {
        Destination::Web => WEB[rng.random_range(0..WEB.len())],
        Destination::Mail => "imap.example.org",
        Destination::Grid => "gridftp.example.edu",
        Destination::Nagios => "nagios.example.edu",
        Destination::Interwise => "meet.interwise.example",
        Destination::Gost => "gost.example.ru",
        Destination::BankLegacy => "bankmellat.example.ir",
        Destination::Splunk => "splunk.example.corp",
        _ => "internal.example.corp",
    }
}

fn shuffle<T>(v: &mut [T], rng: &mut SmallRng) {
    for i in (1..v.len()).rev() {
        let j = rng.random_range(0..=i);
        v.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlscope_wire::{sniff, WireFlavor};

    fn small_gen() -> Generator {
        Generator::new(TrafficConfig {
            seed: 42,
            connections_per_month: 500,
            faults: FaultInjector::none(),
        })
    }

    #[test]
    fn month_is_deterministic() {
        let g = small_gen();
        let a = g.month(Month::ym(2015, 6));
        let b = g.month(Month::ym(2015, 6));
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].client_flow, b[0].client_flow);
        assert_eq!(a[10].server_flow, b[10].server_flow);
    }

    #[test]
    fn different_months_differ() {
        let g = small_gen();
        let a = g.month(Month::ym(2015, 6));
        let b = g.month(Month::ym(2015, 7));
        assert_ne!(a[0].client_flow, b[0].client_flow);
    }

    #[test]
    fn flows_are_parseable_tls() {
        let g = small_gen();
        let events = g.month(Month::ym(2016, 3));
        assert_eq!(events.len(), 500);
        let mut tls = 0;
        let mut answered = 0;
        for ev in &events {
            match sniff(&ev.client_flow) {
                WireFlavor::Tls => {
                    tls += 1;
                    let records = Record::read_all(&ev.client_flow).unwrap();
                    let hs = Record::coalesce_handshake(&records).unwrap();
                    tlscope_wire::ClientHello::parse_handshake(&hs).unwrap();
                }
                WireFlavor::Sslv2 => {
                    Sslv2ClientHello::parse(&ev.client_flow).unwrap();
                }
                WireFlavor::Other => panic!("unsniffable flow"),
            }
            if ev.server_flow.is_some() {
                answered += 1;
            }
        }
        assert!(tls > 490);
        assert!(answered > 450);
    }

    #[test]
    fn dates_fall_in_month() {
        let g = small_gen();
        for ev in g.month(Month::ym(2014, 2)) {
            assert_eq!(ev.date.month(), Month::ym(2014, 2));
        }
    }

    #[test]
    fn early_traffic_has_no_aead_negotiation() {
        let g = small_gen();
        for ev in g.month(Month::ym(2012, 3)) {
            let Some(sf) = &ev.server_flow else { continue };
            let records = Record::read_all(sf).unwrap();
            if records[0].content_type != ContentType::Handshake {
                continue;
            }
            let hs = Record::coalesce_handshake(&records).unwrap();
            let mut r = tlscope_wire::codec::Reader::new(&hs);
            let (typ, body) = tlscope_wire::handshake::read_handshake(&mut r).unwrap();
            assert_eq!(typ, 2);
            let sh = tlscope_wire::ServerHello::parse_body(body).unwrap();
            assert!(
                !sh.cipher_suite.is_aead(),
                "AEAD negotiated in 2012: {}",
                sh.cipher_suite
            );
        }
    }

    #[test]
    fn stream_matches_materialized_month() {
        let g = small_gen();
        let streamed: Vec<ConnectionEvent> = g.stream_month(Month::ym(2015, 6)).collect();
        let materialized = g.month(Month::ym(2015, 6));
        assert_eq!(streamed.len(), materialized.len());
        for (a, b) in streamed.iter().zip(&materialized) {
            assert_eq!(a.date, b.date);
            assert_eq!(a.port, b.port);
            assert_eq!(a.client_flow, b.client_flow);
            assert_eq!(a.server_flow, b.server_flow);
        }
    }

    #[test]
    fn metered_stream_accounts_flows_and_bytes() {
        let g = small_gen();
        let metrics = PipelineMetrics::new();
        let total_bytes: u64 = g
            .stream_month(Month::ym(2016, 3))
            .metered(&metrics)
            .map(|ev| ev.wire_bytes())
            .sum();
        let snap = metrics.snapshot();
        assert_eq!(snap.flows_generated, 500);
        assert_eq!(snap.bytes_generated, total_bytes);
        assert!(snap.gen_nanos > 0);
    }

    #[test]
    fn from_connection_event_moves_flows() {
        let g = small_gen();
        let ev = g.month(Month::ym(2016, 3)).remove(0);
        let (date, port) = (ev.date, ev.port);
        let (client, server) = (ev.client_flow.clone(), ev.server_flow.clone());
        let flow = TappedFlow::from(ev);
        assert_eq!(flow.date, date);
        assert_eq!(flow.port, port);
        assert_eq!(flow.client, client);
        assert_eq!(flow.server, server);
    }

    #[test]
    fn fault_injection_reduces_flows() {
        let lossy = Generator::new(TrafficConfig {
            seed: 42,
            connections_per_month: 2000,
            faults: FaultInjector {
                drop_prob: 0.5,
                ..FaultInjector::none()
            },
        });
        let events = lossy.month(Month::ym(2016, 3));
        // Client-side drops remove the whole event.
        assert!(events.len() < 1300, "{}", events.len());
    }

    #[test]
    fn outage_windows_remove_whole_days_deterministically() {
        let cfg = TrafficConfig {
            seed: 42,
            connections_per_month: 1000,
            faults: FaultInjector {
                outage_prob: 0.4,
                ..FaultInjector::none()
            },
        };
        let g = Generator::new(cfg.clone());
        let metrics = PipelineMetrics::new();
        let events: Vec<ConnectionEvent> = g
            .stream_month(Month::ym(2016, 3))
            .metered(&metrics)
            .collect();
        let dropped = metrics.snapshot().flows_outage_dropped;
        assert!(dropped > 0, "expected some outage losses");
        assert_eq!(events.len() as u64 + dropped, 1000);
        // No surviving event is dated inside an outage window.
        for ev in &events {
            assert!(!cfg.faults.in_outage(cfg.seed, ev.date));
        }
        // Deterministic: a second run sees the identical event stream.
        let again: Vec<ConnectionEvent> = g.stream_month(Month::ym(2016, 3)).collect();
        assert_eq!(events.len(), again.len());
        for (a, b) in events.iter().zip(&again) {
            assert_eq!(a.client_flow, b.client_flow);
        }
    }

    #[test]
    fn duplication_emits_adjacent_identical_flows() {
        let g = Generator::new(TrafficConfig {
            seed: 42,
            connections_per_month: 500,
            faults: FaultInjector {
                duplicate_prob: 0.2,
                ..FaultInjector::none()
            },
        });
        let metrics = PipelineMetrics::new();
        let events: Vec<ConnectionEvent> = g
            .stream_month(Month::ym(2016, 3))
            .metered(&metrics)
            .collect();
        let snap = metrics.snapshot();
        assert!(snap.flows_duplicated > 0, "expected some duplicates");
        assert_eq!(events.len() as u64, 500 + snap.flows_duplicated);
        assert_eq!(snap.flows_generated, events.len() as u64);
        // Each duplicate is an exact adjacent copy.
        let adjacent_dups = events
            .windows(2)
            .filter(|w| {
                w[0].client_flow == w[1].client_flow && w[0].server_flow == w[1].server_flow
            })
            .count() as u64;
        assert!(adjacent_dups >= snap.flows_duplicated);
    }
}
