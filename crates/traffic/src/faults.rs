//! Fault injection for the synthetic tap.
//!
//! The paper stresses that the Notary is a best-effort collector
//! running on operational networks: "we must accept occasional outages,
//! packet drops (e.g., due to CPU overload) and misconfigurations"
//! (§3.1). The injector reproduces those artefacts so the measurement
//! pipeline is forced to tolerate them, smoltcp-style: drops, truncated
//! flows, corrupted octets, mid-flow segment gaps, flow duplication,
//! and contiguous outage windows where the tap sees nothing at all.
//!
//! Every fault is seeded and deterministic: per-flow faults draw from
//! the month RNG stream (gated so a zero probability consumes no
//! draws), and outage windows are a pure function of `(seed, date)`,
//! so serial and sharded runs see identical fault patterns.

use rand::rngs::SmallRng;
use rand::RngExt;

use tlscope_chron::Date;

/// Length of one outage window, in days. Outages model the paper's
/// tap-level blackouts (node reboots, capture-process crashes): the
/// tap is dark for a *contiguous* span, not scattered single flows.
pub const OUTAGE_SPAN_DAYS: i64 = 3;

/// A probability field was invalid (checked constructor, see
/// [`FaultInjector::checked`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfigError {
    /// Name of the offending field.
    pub field: &'static str,
}

impl std::fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fault probability `{}` must be a finite value in [0, 1]",
            self.field
        )
    }
}

impl std::error::Error for FaultConfigError {}

/// Probabilities of each tap fault.
///
/// `drop`, `truncate`, `corrupt`, `gap`, and `duplicate` apply per
/// flow; `outage` applies per [`OUTAGE_SPAN_DAYS`]-day window (the
/// whole window goes dark). Construct with [`FaultInjector::checked`]
/// to validate the probabilities; the struct-literal escape hatch
/// remains for tests, and [`FaultInjector::validate`] can be called on
/// any value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjector {
    /// Drop the flow entirely (monitor never sees it).
    pub drop_prob: f64,
    /// Truncate the flow at a random byte (mid-record loss).
    pub truncate_prob: f64,
    /// Flip one random octet (damaged capture).
    pub corrupt_prob: f64,
    /// Excise a contiguous mid-flow span (capture gap: the tap lost a
    /// run of segments but caught the rest of the flow).
    pub gap_prob: f64,
    /// Emit the flow twice (tap-side duplication, e.g. a misconfigured
    /// mirror port seeing both directions of a bonded link).
    pub duplicate_prob: f64,
    /// Probability that any given [`OUTAGE_SPAN_DAYS`]-day window is a
    /// tap outage: every flow dated inside it is lost.
    pub outage_prob: f64,
}

impl FaultInjector {
    /// No faults.
    pub fn none() -> Self {
        FaultInjector {
            drop_prob: 0.0,
            truncate_prob: 0.0,
            corrupt_prob: 0.0,
            gap_prob: 0.0,
            duplicate_prob: 0.0,
            outage_prob: 0.0,
        }
    }

    /// The default best-effort-tap fault mix.
    ///
    /// The extended faults (gap, duplication, outage) default to zero
    /// so the default event stream — which calibration anchors on —
    /// is unchanged; enable them explicitly or via [`stress`].
    ///
    /// [`stress`]: FaultInjector::stress
    pub fn tap_defaults() -> Self {
        FaultInjector {
            drop_prob: 0.002,
            truncate_prob: 0.001,
            corrupt_prob: 0.0005,
            ..FaultInjector::none()
        }
    }

    /// A high-fault profile exercising every recovery path: heavy
    /// drops, truncation, corruption, gaps, duplication, and outages.
    /// Used by the CI fault-matrix job (`TLSCOPE_FAULT_PROFILE=stress`).
    pub fn stress() -> Self {
        FaultInjector {
            drop_prob: 0.05,
            truncate_prob: 0.10,
            corrupt_prob: 0.05,
            gap_prob: 0.10,
            duplicate_prob: 0.05,
            outage_prob: 0.15,
        }
    }

    /// Checked constructor over all six probabilities (in declaration
    /// order): rejects NaN, negative, and >1.0 values instead of
    /// silently misbehaving at sampling time.
    pub fn checked(
        drop_prob: f64,
        truncate_prob: f64,
        corrupt_prob: f64,
        gap_prob: f64,
        duplicate_prob: f64,
        outage_prob: f64,
    ) -> Result<Self, FaultConfigError> {
        let inj = FaultInjector {
            drop_prob,
            truncate_prob,
            corrupt_prob,
            gap_prob,
            duplicate_prob,
            outage_prob,
        };
        inj.validate()?;
        Ok(inj)
    }

    /// Validate every probability field: finite and within `[0, 1]`.
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        for (field, p) in [
            ("drop_prob", self.drop_prob),
            ("truncate_prob", self.truncate_prob),
            ("corrupt_prob", self.corrupt_prob),
            ("gap_prob", self.gap_prob),
            ("duplicate_prob", self.duplicate_prob),
            ("outage_prob", self.outage_prob),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(FaultConfigError { field });
            }
        }
        Ok(())
    }

    /// Resolve a named fault profile: `none`, `defaults` (the tap
    /// mix), or `stress`.
    pub fn profile(name: &str) -> Option<Self> {
        match name {
            "none" => Some(FaultInjector::none()),
            "defaults" | "tap" => Some(FaultInjector::tap_defaults()),
            "stress" => Some(FaultInjector::stress()),
            _ => None,
        }
    }

    /// The profile named by the `TLSCOPE_FAULT_PROFILE` environment
    /// variable, falling back to `fallback` when the variable is unset
    /// or names no known profile. This is how the CI fault-matrix job
    /// re-runs the pipeline tests under `stress` without a code change.
    pub fn from_env(fallback: FaultInjector) -> FaultInjector {
        std::env::var("TLSCOPE_FAULT_PROFILE")
            .ok()
            .as_deref()
            .and_then(FaultInjector::profile)
            .unwrap_or(fallback)
    }

    /// True when `date` falls inside a tap outage window. Pure in
    /// `(seed, date)`: independent of RNG stream position, worker
    /// sharding, and generation order, so outages are contiguous
    /// calendar spans exactly as §3.1 describes.
    pub fn in_outage(&self, seed: u64, date: Date) -> bool {
        if self.outage_prob <= 0.0 {
            return false;
        }
        let window = date.to_epoch_days().div_euclid(OUTAGE_SPAN_DAYS) as u64;
        // SplitMix64 over (seed, window) → uniform in [0, 1).
        let mut z = seed ^ window.wrapping_mul(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        (z >> 11) as f64 / ((1u64 << 53) as f64) < self.outage_prob
    }

    /// Whether the tap duplicates this flow (drawn per flow; gated so
    /// a zero probability consumes no RNG draws).
    pub fn duplicates(&self, rng: &mut SmallRng) -> bool {
        self.duplicate_prob > 0.0 && rng.random::<f64>() < self.duplicate_prob
    }

    /// Apply per-flow byte faults. `None` means the flow was dropped.
    pub fn apply(&self, mut flow: Vec<u8>, rng: &mut SmallRng) -> Option<Vec<u8>> {
        if self.apply_in_place(&mut flow, rng) {
            Some(flow)
        } else {
            None
        }
    }

    /// Apply per-flow byte faults to a borrowed buffer — the same
    /// draws, in the same order, as [`FaultInjector::apply`], so the
    /// owned and in-place paths stay RNG-identical. Returns `false`
    /// when the flow was dropped (the buffer contents are then
    /// meaningless).
    pub fn apply_in_place(&self, flow: &mut Vec<u8>, rng: &mut SmallRng) -> bool {
        if self.drop_prob > 0.0 && rng.random::<f64>() < self.drop_prob {
            return false;
        }
        if self.truncate_prob > 0.0 && rng.random::<f64>() < self.truncate_prob && !flow.is_empty()
        {
            let cut = rng.random_range(0..flow.len());
            flow.truncate(cut);
        }
        if self.gap_prob > 0.0 && rng.random::<f64>() < self.gap_prob && flow.len() >= 2 {
            // Excise a contiguous span strictly inside the flow: the
            // capture resumes after the gap, so bytes remain on both
            // sides of the damage.
            let start = rng.random_range(0..flow.len() - 1);
            let len = rng.random_range(1..=flow.len() - 1 - start).max(1);
            flow.drain(start..start + len);
        }
        if self.corrupt_prob > 0.0 && rng.random::<f64>() < self.corrupt_prob && !flow.is_empty() {
            let idx = rng.random_range(0..flow.len());
            flow[idx] ^= 1 << rng.random_range(0..8u8);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn none_is_identity() {
        let mut rng = SmallRng::seed_from_u64(1);
        let data = vec![1u8, 2, 3, 4];
        assert_eq!(
            FaultInjector::none().apply(data.clone(), &mut rng),
            Some(data)
        );
    }

    #[test]
    fn always_drop() {
        let inj = FaultInjector {
            drop_prob: 1.0,
            ..FaultInjector::none()
        };
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(inj.apply(vec![1, 2, 3], &mut rng), None);
    }

    #[test]
    fn truncation_shortens() {
        let inj = FaultInjector {
            truncate_prob: 1.0,
            ..FaultInjector::none()
        };
        let mut rng = SmallRng::seed_from_u64(7);
        let out = inj.apply(vec![9u8; 100], &mut rng).unwrap();
        assert!(out.len() < 100);
    }

    #[test]
    fn corruption_flips_one_bit() {
        let inj = FaultInjector {
            corrupt_prob: 1.0,
            ..FaultInjector::none()
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let data = vec![0u8; 64];
        let out = inj.apply(data.clone(), &mut rng).unwrap();
        assert_eq!(out.len(), data.len());
        let diff: u32 = out
            .iter()
            .zip(&data)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1);
    }

    #[test]
    fn gap_removes_interior_span() {
        let inj = FaultInjector {
            gap_prob: 1.0,
            ..FaultInjector::none()
        };
        let mut rng = SmallRng::seed_from_u64(5);
        let data: Vec<u8> = (0..200u8).collect();
        let out = inj.apply(data.clone(), &mut rng).unwrap();
        assert!(!out.is_empty(), "gap must never consume the whole flow");
        assert!(out.len() < data.len(), "gap must remove bytes");
        // The surviving bytes are a subsequence of the original flow:
        // a contiguous prefix followed by a contiguous suffix.
        let removed = data.len() - out.len();
        let mut matched = false;
        for start in 0..out.len() + 1 {
            if data[..start] == out[..start] && data[start + removed..] == out[start..] {
                matched = true;
                break;
            }
        }
        assert!(matched, "gap output is not prefix+suffix of the input");
    }

    #[test]
    fn in_place_matches_owned_draw_for_draw() {
        // The borrowed fast path relies on apply_in_place consuming the
        // identical RNG stream as apply; run both over many flows under
        // the stress mix and compare outputs and stream positions.
        let inj = FaultInjector::stress();
        let mut rng_a = SmallRng::seed_from_u64(77);
        let mut rng_b = SmallRng::seed_from_u64(77);
        for i in 0..2_000u32 {
            let data: Vec<u8> = (0..(i % 97) as u8).collect();
            let owned = inj.apply(data.clone(), &mut rng_a);
            let mut buf = data;
            let kept = inj.apply_in_place(&mut buf, &mut rng_b);
            assert_eq!(owned.is_some(), kept, "drop divergence at flow {i}");
            if let Some(owned) = owned {
                assert_eq!(owned, buf, "byte divergence at flow {i}");
            }
        }
        // Streams must end at the same position.
        assert_eq!(rng_a.random::<u64>(), rng_b.random::<u64>());
    }

    #[test]
    fn default_rates_are_rare() {
        let inj = FaultInjector::tap_defaults();
        let mut rng = SmallRng::seed_from_u64(11);
        let survived = (0..10_000)
            .filter(|_| inj.apply(vec![1, 2, 3], &mut rng).is_some())
            .count();
        assert!(survived > 9_900);
    }

    #[test]
    fn checked_rejects_bad_probabilities() {
        assert!(FaultInjector::checked(0.0, 0.0, 0.0, 0.0, 0.0, 0.0).is_ok());
        assert!(FaultInjector::checked(1.0, 1.0, 1.0, 1.0, 1.0, 1.0).is_ok());
        let nan = FaultInjector::checked(f64::NAN, 0.0, 0.0, 0.0, 0.0, 0.0);
        assert_eq!(nan.unwrap_err().field, "drop_prob");
        let neg = FaultInjector::checked(0.0, -0.001, 0.0, 0.0, 0.0, 0.0);
        assert_eq!(neg.unwrap_err().field, "truncate_prob");
        let over = FaultInjector::checked(0.0, 0.0, 1.5, 0.0, 0.0, 0.0);
        assert_eq!(over.unwrap_err().field, "corrupt_prob");
        let inf = FaultInjector::checked(0.0, 0.0, 0.0, f64::INFINITY, 0.0, 0.0);
        assert_eq!(inf.unwrap_err().field, "gap_prob");
        assert!(FaultInjector::checked(0.0, 0.0, 0.0, 0.0, 2.0, 0.0).is_err());
        assert!(FaultInjector::checked(0.0, 0.0, 0.0, 0.0, 0.0, -1.0).is_err());
    }

    #[test]
    fn validate_flags_struct_literals() {
        let bad = FaultInjector {
            outage_prob: f64::NAN,
            ..FaultInjector::none()
        };
        assert_eq!(bad.validate().unwrap_err().field, "outage_prob");
        assert!(FaultInjector::stress().validate().is_ok());
        assert!(FaultInjector::tap_defaults().validate().is_ok());
    }

    #[test]
    fn outage_windows_are_contiguous_and_deterministic() {
        let inj = FaultInjector {
            outage_prob: 0.3,
            ..FaultInjector::none()
        };
        let start = Date::ymd(2015, 1, 1);
        let days: Vec<bool> = (0..365)
            .map(|d| inj.in_outage(9, start.add_days(d)))
            .collect();
        // Deterministic: same answer on re-query.
        let again: Vec<bool> = (0..365)
            .map(|d| inj.in_outage(9, start.add_days(d)))
            .collect();
        assert_eq!(days, again);
        // Some outages, but not everything dark.
        let dark = days.iter().filter(|d| **d).count();
        assert!(dark > 30, "expected some outage days, got {dark}");
        assert!(dark < 300, "expected some light days, got {dark}");
        // Dark days come in runs of OUTAGE_SPAN_DAYS (window-aligned, so
        // any maximal run is a multiple of the span once away from the
        // year boundary).
        let mut run = 0i64;
        for (i, d) in days.iter().enumerate() {
            if *d {
                run += 1;
            } else {
                if run > 0 && i as i64 - run > 0 {
                    assert_eq!(run % OUTAGE_SPAN_DAYS, 0, "run of {run} days");
                }
                run = 0;
            }
        }
        // A different seed produces a different outage calendar.
        let other: Vec<bool> = (0..365)
            .map(|d| inj.in_outage(10, start.add_days(d)))
            .collect();
        assert_ne!(days, other);
    }

    #[test]
    fn zero_probability_outage_never_fires() {
        let inj = FaultInjector::none();
        for d in 0..1000 {
            assert!(!inj.in_outage(1, Date::ymd(2014, 1, 1).add_days(d)));
        }
    }

    #[test]
    fn named_profiles_resolve() {
        assert_eq!(FaultInjector::profile("none"), Some(FaultInjector::none()));
        assert_eq!(
            FaultInjector::profile("defaults"),
            Some(FaultInjector::tap_defaults())
        );
        assert_eq!(
            FaultInjector::profile("stress"),
            Some(FaultInjector::stress())
        );
        assert_eq!(FaultInjector::profile("bogus"), None);
    }
}
