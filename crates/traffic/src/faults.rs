//! Fault injection for the synthetic tap.
//!
//! The paper stresses that the Notary is a best-effort collector
//! running on operational networks: "we must accept occasional outages,
//! packet drops (e.g., due to CPU overload) and misconfigurations"
//! (§3.1). The injector reproduces those artefacts so the measurement
//! pipeline is forced to tolerate them, smoltcp-style: drops, truncated
//! flows, and corrupted octets.

use rand::rngs::SmallRng;
use rand::RngExt;

/// Probabilities of each fault, applied per flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjector {
    /// Drop the flow entirely (monitor never sees it).
    pub drop_prob: f64,
    /// Truncate the flow at a random byte (mid-record loss).
    pub truncate_prob: f64,
    /// Flip one random octet (damaged capture).
    pub corrupt_prob: f64,
}

impl FaultInjector {
    /// No faults.
    pub fn none() -> Self {
        FaultInjector {
            drop_prob: 0.0,
            truncate_prob: 0.0,
            corrupt_prob: 0.0,
        }
    }

    /// The default best-effort-tap fault mix.
    pub fn tap_defaults() -> Self {
        FaultInjector {
            drop_prob: 0.002,
            truncate_prob: 0.001,
            corrupt_prob: 0.0005,
        }
    }

    /// Apply faults to a flow. `None` means the flow was dropped.
    pub fn apply(&self, mut flow: Vec<u8>, rng: &mut SmallRng) -> Option<Vec<u8>> {
        if self.drop_prob > 0.0 && rng.random::<f64>() < self.drop_prob {
            return None;
        }
        if self.truncate_prob > 0.0 && rng.random::<f64>() < self.truncate_prob && !flow.is_empty()
        {
            let cut = rng.random_range(0..flow.len());
            flow.truncate(cut);
        }
        if self.corrupt_prob > 0.0 && rng.random::<f64>() < self.corrupt_prob && !flow.is_empty() {
            let idx = rng.random_range(0..flow.len());
            flow[idx] ^= 1 << rng.random_range(0..8u8);
        }
        Some(flow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn none_is_identity() {
        let mut rng = SmallRng::seed_from_u64(1);
        let data = vec![1u8, 2, 3, 4];
        assert_eq!(
            FaultInjector::none().apply(data.clone(), &mut rng),
            Some(data)
        );
    }

    #[test]
    fn always_drop() {
        let inj = FaultInjector {
            drop_prob: 1.0,
            truncate_prob: 0.0,
            corrupt_prob: 0.0,
        };
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(inj.apply(vec![1, 2, 3], &mut rng), None);
    }

    #[test]
    fn truncation_shortens() {
        let inj = FaultInjector {
            drop_prob: 0.0,
            truncate_prob: 1.0,
            corrupt_prob: 0.0,
        };
        let mut rng = SmallRng::seed_from_u64(7);
        let out = inj.apply(vec![9u8; 100], &mut rng).unwrap();
        assert!(out.len() < 100);
    }

    #[test]
    fn corruption_flips_one_bit() {
        let inj = FaultInjector {
            drop_prob: 0.0,
            truncate_prob: 0.0,
            corrupt_prob: 1.0,
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let data = vec![0u8; 64];
        let out = inj.apply(data.clone(), &mut rng).unwrap();
        assert_eq!(out.len(), data.len());
        let diff: u32 = out
            .iter()
            .zip(&data)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1);
    }

    #[test]
    fn default_rates_are_rare() {
        let inj = FaultInjector::tap_defaults();
        let mut rng = SmallRng::seed_from_u64(11);
        let survived = (0..10_000)
            .filter(|_| inj.apply(vec![1, 2, 3], &mut rng).is_some())
            .count();
        assert!(survived > 9_900);
    }
}
