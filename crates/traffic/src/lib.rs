//! # tlscope-traffic
//!
//! The synthetic Internet: a market-share model over the client catalog,
//! a version-adoption model, the server population, and a deterministic
//! generator that emits the wire bytes a passive tap would capture.
//!
//! This crate is the data substitute for the ICSI SSL Notary's live
//! feed (319.3 B connections): everything downstream consumes only the
//! bytes produced here, so the measurement pipeline stays honest.
//!
//! ```
//! use tlscope_traffic::{Generator, TrafficConfig, FaultInjector};
//! use tlscope_chron::Month;
//!
//! let gen = Generator::new(TrafficConfig {
//!     seed: 1,
//!     connections_per_month: 100,
//!     faults: FaultInjector::none(),
//! });
//! let events = gen.month(Month::ym(2015, 6).into());
//! assert_eq!(events.len(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod generator;
pub mod market;

pub use faults::FaultInjector;
pub use generator::{ConnectionEvent, Generator, MonthStream, TrafficConfig};
pub use market::{Market, ShareCurve};
