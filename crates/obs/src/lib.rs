//! # tlscope-obs
//!
//! Observability primitives for the measurement pipelines. The paper's
//! Notary and Censys campaigns (319.3 B connections, ~142 weekly
//! sweeps) were only operable because per-stage health was
//! continuously observable; the reproduction's counter bags
//! (`PipelineMetrics`, `ScanMetrics`) ride on the four primitives in
//! this crate:
//!
//! * [`hist`] — lock-free, mergeable log2-bucketed latency
//!   [`Histogram`](hist::Histogram)s (atomic buckets, p50/p90/p99/max
//!   readout) for per-batch, per-chunk, per-month, and checkpoint
//!   timing distributions;
//! * [`json`] — a hand-rolled JSON writer and parser (no serde; the
//!   build is fully offline) behind the schema-versioned
//!   `--stats-json` / `--scan-stats-json` exports;
//! * [`progress`] — the opt-in live heartbeat
//!   ([`Progress`](progress::Progress), env `TLSCOPE_PROGRESS`)
//!   printing completed units, item rates, and ETA to stderr while a
//!   long campaign runs;
//! * [`flight`] — the panic flight recorder: a bounded per-worker ring
//!   of recent structured events, dumped into a process-wide black box
//!   by the pipelines' `catch_unwind` boundaries so poison flows and
//!   dead chunks are diagnosable postmortem.
//!
//! Everything here is observational: nothing in this crate
//! participates in aggregate equality or the bit-identity properties
//! of the pipelines it instruments, and every primitive is dependency-
//! free and lock-free (or thread-local) on its hot path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flight;
pub mod hist;
pub mod json;
pub mod progress;

pub use flight::FlightEvent;
pub use hist::{fmt_nanos, Histogram, HistogramSnapshot, BUCKETS};
pub use json::{Json, JsonArr, JsonError, JsonObj};
pub use progress::Progress;
