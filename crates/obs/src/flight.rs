//! The panic flight recorder.
//!
//! The pipelines already survive worker panics (`catch_unwind` around
//! batch ingestion and sweep chunks) but until now a quarantined flow
//! or dropped chunk left no trace of *what the worker was doing*. This
//! module is the black box: each worker thread keeps a bounded,
//! thread-local ring of recent [`FlightEvent`]s ([`record`] is a
//! `VecDeque` push — no locks, no allocation after warm-up), and when
//! a `catch_unwind` boundary trips, [`report`] snapshots that ring
//! into a process-wide, size-capped black box that the `repro` binary
//! drains at exit ([`drain_reports`]).
//!
//! Events are three bare `u64`s plus a static label, deliberately too
//! small to tempt anyone into logging payloads through them. Both the
//! ring and the black box drop oldest-first and count what they
//! dropped, so a poison-storm (thousands of quarantines) costs a few
//! KiB, not unbounded memory.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Events retained per worker thread.
pub const RING_CAPACITY: usize = 64;

/// Panic reports retained process-wide.
pub const BLACK_BOX_CAPACITY: usize = 64;

/// One structured breadcrumb: a static event kind plus three
/// event-specific words (batch id / flow meta / probe index …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Static label naming the event kind (`"flow"`, `"batch"`,
    /// `"host"`, …).
    pub kind: &'static str,
    /// First event word.
    pub a: u64,
    /// Second event word.
    pub b: u64,
    /// Third event word.
    pub c: u64,
}

struct Ring {
    events: VecDeque<FlightEvent>,
    dropped: u64,
}

thread_local! {
    static RING: RefCell<Ring> = RefCell::new(Ring {
        events: VecDeque::with_capacity(RING_CAPACITY),
        dropped: 0,
    });
}

/// The process-wide black box: rendered reports plus a count of
/// reports discarded once the box was full.
static BLACK_BOX: Mutex<(VecDeque<String>, u64)> = Mutex::new((VecDeque::new(), 0));

/// Record one breadcrumb on the calling thread's ring. Constant-time,
/// lock-free, allocation-free once the ring is warm.
pub fn record(kind: &'static str, a: u64, b: u64, c: u64) {
    RING.with(|ring| {
        let mut ring = ring.borrow_mut();
        if ring.events.len() == RING_CAPACITY {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(FlightEvent { kind, a, b, c });
    });
}

/// Clear the calling thread's ring (used by tests and by workers that
/// want a fresh ring per batch).
pub fn clear() {
    RING.with(|ring| {
        let mut ring = ring.borrow_mut();
        ring.events.clear();
        ring.dropped = 0;
    });
}

/// Render the calling thread's ring, oldest event first.
pub fn dump() -> String {
    RING.with(|ring| {
        let ring = ring.borrow();
        let mut out = String::new();
        if ring.dropped > 0 {
            let _ = writeln!(out, "    … {} earlier events dropped", ring.dropped);
        }
        for ev in &ring.events {
            let _ = writeln!(out, "    {} a={} b={} c={}", ev.kind, ev.a, ev.b, ev.c);
        }
        out
    })
}

/// File a panic report: `context` (one line saying what died) plus the
/// calling thread's ring dump, pushed into the process black box.
/// Called from the `catch_unwind` error arms.
pub fn report(context: &str) {
    let ring_dump = dump();
    let mut text = format!("flight report: {context}\n");
    if ring_dump.is_empty() {
        text.push_str("    (flight ring empty)\n");
    } else {
        text.push_str(&ring_dump);
    }
    let mut black_box = match BLACK_BOX.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    if black_box.0.len() == BLACK_BOX_CAPACITY {
        black_box.0.pop_front();
        black_box.1 += 1;
    }
    black_box.0.push_back(text);
}

/// Drain every filed report, oldest first, appending a note when the
/// box overflowed. Empties the black box.
pub fn drain_reports() -> Vec<String> {
    let mut black_box = match BLACK_BOX.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    let mut reports: Vec<String> = black_box.0.drain(..).collect();
    if black_box.1 > 0 {
        reports.push(format!(
            "flight report: … {} earlier reports dropped (black box full)\n",
            black_box.1
        ));
        black_box.1 = 0;
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_oldest_first() {
        clear();
        for i in 0..(RING_CAPACITY as u64 + 10) {
            record("ev", i, 0, 0);
        }
        let dump = dump();
        assert!(dump.contains("… 10 earlier events dropped"));
        assert!(!dump.contains("ev a=9 "), "oldest events evicted");
        assert!(dump.contains(&format!("ev a={} ", RING_CAPACITY as u64 + 9)));
        clear();
        assert!(super::dump().is_empty());
    }

    #[test]
    fn rings_are_per_thread() {
        clear();
        record("mine", 1, 2, 3);
        std::thread::scope(|s| {
            s.spawn(|| {
                assert!(super::dump().is_empty(), "fresh thread, fresh ring");
                record("theirs", 9, 9, 9);
            });
        });
        let dump = dump();
        assert!(dump.contains("mine"));
        assert!(!dump.contains("theirs"));
        clear();
    }

    // One test for all black-box behaviour: the box is process-global,
    // so splitting these across tests would race under the parallel
    // test runner.
    #[test]
    fn black_box_collects_and_bounds_reports() {
        // Run the ring-backed reports on a dedicated thread so this
        // test's ring state can't collide with the other ring tests.
        std::thread::scope(|s| {
            s.spawn(|| {
                drain_reports(); // isolate from anything already filed
                record("flow", 7, 443, 180);
                for i in 0..(BLACK_BOX_CAPACITY + 5) {
                    report(&format!("batch {i} poisoned"));
                }
                let reports = drain_reports();
                // Capacity reports plus the overflow note.
                assert_eq!(reports.len(), BLACK_BOX_CAPACITY + 1);
                assert!(reports[0].contains("flight report:"));
                assert!(reports[0].contains("flow a=7 b=443 c=180"));
                assert!(reports
                    .last()
                    .unwrap()
                    .contains("5 earlier reports dropped"));
                assert!(drain_reports().is_empty(), "drain empties the box");

                // An empty ring still produces a (labelled) report.
                clear();
                report("chunk 0..512 lost");
                let reports = drain_reports();
                assert_eq!(reports.len(), 1);
                assert!(reports[0].contains("(flight ring empty)"));
            });
        });
    }
}
