//! A hand-rolled JSON writer and parser.
//!
//! The build is fully offline (no serde), so the `--stats-json`
//! exports are emitted through the tiny [`JsonObj`]/[`JsonArr`]
//! builders here, and the CLI integration / golden-schema tests read
//! them back through [`Json::parse`]. The writer emits keys in
//! insertion order so exports are byte-stable run to run; the parser
//! is a plain recursive-descent over the full grammar (escapes,
//! `\uXXXX`, nested containers) so it can also read foreign documents
//! such as the committed bench baselines.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; integral values up to 2^53 are
    /// exact, which covers every counter the exports emit in practice).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset and a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                at: pos,
                msg: "trailing characters after document",
            });
        }
        Ok(value)
    }

    /// Object member lookup (first match, like every JSON consumer).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's keys in document order; empty for non-objects.
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(members) => members.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// The value as a `u64`, when it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an `f64`, when it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `&str`, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `bool`, when it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, when it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8, msg: &'static str) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError { at: *pos, msg })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError {
            at: *pos,
            msg: "unexpected end of input",
        }),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &'static str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(JsonError {
            at: *pos,
            msg: "invalid literal",
        })
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| JsonError {
        at: start,
        msg: "invalid number",
    })?;
    text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
        at: start,
        msg: "invalid number",
    })
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"', "expected string")?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => {
                return Err(JsonError {
                    at: *pos,
                    msg: "unterminated string",
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes.get(*pos).ok_or(JsonError {
                    at: *pos,
                    msg: "unterminated escape",
                })?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes.get(*pos..*pos + 4).ok_or(JsonError {
                            at: *pos,
                            msg: "truncated \\u escape",
                        })?;
                        let hex = std::str::from_utf8(hex).map_err(|_| JsonError {
                            at: *pos,
                            msg: "invalid \\u escape",
                        })?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| JsonError {
                            at: *pos,
                            msg: "invalid \\u escape",
                        })?;
                        *pos += 4;
                        // Surrogate pairs and unpaired surrogates both
                        // fold to the replacement character; the
                        // exports never emit non-BMP text.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => {
                        return Err(JsonError {
                            at: *pos - 1,
                            msg: "unknown escape",
                        })
                    }
                }
            }
            Some(_) => {
                // Copy the longest run of plain UTF-8 in one go.
                let start = *pos;
                while *pos < bytes.len() && bytes[*pos] != b'"' && bytes[*pos] != b'\\' {
                    *pos += 1;
                }
                let chunk = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| JsonError {
                    at: start,
                    msg: "invalid utf-8 in string",
                })?;
                out.push_str(chunk);
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{', "expected object")?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':', "expected ':' after key")?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => {
                return Err(JsonError {
                    at: *pos,
                    msg: "expected ',' or '}'",
                })
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[', "expected array")?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => {
                return Err(JsonError {
                    at: *pos,
                    msg: "expected ',' or ']'",
                })
            }
        }
    }
}

fn escape_into(out: &mut String, text: &str) {
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// An insertion-ordered JSON object builder with chained, consuming
/// setters. `finish()` yields the serialized text.
#[derive(Debug, Default)]
pub struct JsonObj {
    body: String,
}

impl JsonObj {
    /// An empty object.
    pub fn new() -> Self {
        JsonObj::default()
    }

    fn key(&mut self, key: &str) {
        if !self.body.is_empty() {
            self.body.push(',');
        }
        self.body.push('"');
        escape_into(&mut self.body, key);
        self.body.push_str("\":");
    }

    /// Add an unsigned integer member.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        let _ = write!(self.body, "{value}");
        self
    }

    /// Add a floating-point member (non-finite values become `null`).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.body, "{value}");
        } else {
            self.body.push_str("null");
        }
        self
    }

    /// Add a string member.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.body.push('"');
        escape_into(&mut self.body, value);
        self.body.push('"');
        self
    }

    /// Add a boolean member.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.body.push_str(if value { "true" } else { "false" });
        self
    }

    /// Add a member whose value is already-serialized JSON (for
    /// nesting objects and arrays).
    pub fn raw(mut self, key: &str, json: &str) -> Self {
        self.key(key);
        self.body.push_str(json);
        self
    }

    /// Serialize.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.body)
    }
}

/// A JSON array builder, mirroring [`JsonObj`].
#[derive(Debug, Default)]
pub struct JsonArr {
    body: String,
}

impl JsonArr {
    /// An empty array.
    pub fn new() -> Self {
        JsonArr::default()
    }

    fn sep(&mut self) {
        if !self.body.is_empty() {
            self.body.push(',');
        }
    }

    /// Append an unsigned integer element.
    pub fn u64(mut self, value: u64) -> Self {
        self.sep();
        let _ = write!(self.body, "{value}");
        self
    }

    /// Append a string element.
    pub fn str(mut self, value: &str) -> Self {
        self.sep();
        self.body.push('"');
        escape_into(&mut self.body, value);
        self.body.push('"');
        self
    }

    /// Append an already-serialized JSON element.
    pub fn raw(mut self, json: &str) -> Self {
        self.sep();
        self.body.push_str(json);
        self
    }

    /// Serialize.
    pub fn finish(self) -> String {
        format!("[{}]", self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_output_parses_back() {
        let text = JsonObj::new()
            .str("schema", "demo-v1")
            .u64("count", 42)
            .f64("rate", 1.5)
            .bool("ok", true)
            .raw("list", &JsonArr::new().u64(1).u64(2).str("x").finish())
            .raw("nested", &JsonObj::new().u64("inner", 7).finish())
            .finish();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(|v| v.as_str()),
            Some("demo-v1")
        );
        assert_eq!(parsed.get("count").and_then(|v| v.as_u64()), Some(42));
        assert_eq!(parsed.get("rate").and_then(|v| v.as_f64()), Some(1.5));
        assert_eq!(parsed.get("ok").and_then(|v| v.as_bool()), Some(true));
        assert_eq!(
            parsed
                .get("list")
                .and_then(|v| v.as_array())
                .map(|a| a.len()),
            Some(3)
        );
        assert_eq!(
            parsed
                .get("nested")
                .and_then(|v| v.get("inner"))
                .and_then(|v| v.as_u64()),
            Some(7)
        );
        assert_eq!(
            parsed.keys(),
            vec!["schema", "count", "rate", "ok", "list", "nested"]
        );
    }

    #[test]
    fn strings_escape_and_unescape() {
        let text = JsonObj::new().str("k", "a\"b\\c\nd\te\u{1}").finish();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("k").and_then(|v| v.as_str()),
            Some("a\"b\\c\nd\te\u{1}")
        );
        // Foreign \u escapes decode too.
        let parsed = Json::parse(r#"{"k":"café"}"#).unwrap();
        assert_eq!(parsed.get("k").and_then(|v| v.as_str()), Some("café"));
    }

    #[test]
    fn full_grammar_round_trip() {
        let doc = r#" { "a": [1, -2.5, 1e3, true, false, null, {"b": []}], "c": "" } "#;
        let parsed = Json::parse(doc).unwrap();
        let arr = parsed.get("a").and_then(|v| v.as_array()).unwrap();
        assert_eq!(arr.len(), 7);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2].as_f64(), Some(1000.0));
        assert_eq!(arr[5], Json::Null);
        assert_eq!(parsed.get("c").and_then(|v| v.as_str()), Some(""));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\"}",
            "{\"a\":1,}",
            "[1 2]",
            "tru",
            "\"unterminated",
            "{\"a\":1} trailing",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn integral_floats_read_as_u64_but_fractions_do_not() {
        let parsed = Json::parse("[7, 7.0, 7.5, -7]").unwrap();
        let arr = parsed.as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(7));
        assert_eq!(arr[1].as_u64(), Some(7));
        assert_eq!(arr[2].as_u64(), None);
        assert_eq!(arr[3].as_u64(), None);
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        let text = JsonObj::new().f64("x", f64::NAN).finish();
        assert_eq!(text, r#"{"x":null}"#);
        assert!(Json::parse(&text).is_ok());
    }
}
