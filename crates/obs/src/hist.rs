//! Lock-free log2-bucketed latency histograms.
//!
//! A [`Histogram`] is a bag of atomic bucket counters: recording a
//! sample is two relaxed `fetch_add`s and a `fetch_max`, so any number
//! of workers can share one instance by reference, exactly like the
//! pipelines' counter bags. Buckets are powers of two of nanoseconds
//! (bucket *i* covers `[2^(i-1), 2^i)`), which keeps the readout
//! within ~2× of the true quantile across twelve decades — plenty for
//! "where did the time go" questions — while the whole structure stays
//! a fixed 67 words.
//!
//! Merging is a per-bucket sum, so it is commutative and associative:
//! any shard order over any worker count reproduces the same bucket
//! totals (property-tested). Histograms are *observational only* —
//! they never participate in snapshot equality or bit-identity
//! properties of the pipelines they instrument.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log2 buckets: one per bit of a nanosecond count, so the
/// range covers 1 ns … ~584 years with no saturation surprises.
pub const BUCKETS: usize = 64;

/// Bucket index for a sample of `nanos`: 0 holds exact zeros, bucket
/// `i >= 1` holds `[2^(i-1), 2^i)`.
fn bucket_index(nanos: u64) -> usize {
    (64 - nanos.leading_zeros() as usize).min(BUCKETS - 1)
}

/// Inclusive `(lo, hi)` nanosecond bounds of bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 0)
    } else if i == BUCKETS - 1 {
        (1u64 << (i - 1), u64::MAX)
    } else {
        (1u64 << (i - 1), (1u64 << i) - 1)
    }
}

/// A lock-free, mergeable latency histogram (see module docs).
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one duration sample.
    pub fn record(&self, elapsed: Duration) {
        self.record_nanos(elapsed.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Record one sample of `nanos` nanoseconds.
    pub fn record_nanos(&self, nanos: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
    }

    /// Fold another histogram's samples into this one. A per-bucket
    /// integer sum: commutative and associative, so shard partials can
    /// merge in any order and reproduce identical bucket totals.
    pub fn merge(&self, other: &Histogram) {
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum_nanos
            .fetch_add(other.sum_nanos.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max_nanos
            .fetch_max(other.max_nanos.load(Ordering::Relaxed), Ordering::Relaxed);
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// A consistent-enough point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
            max_nanos: self.max_nanos.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// A plain-value copy of a [`Histogram`], with quantile readout and a
/// terminal rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples, nanoseconds.
    pub sum_nanos: u64,
    /// Largest sample, nanoseconds (exact, not bucketed).
    pub max_nanos: u64,
    /// Per-bucket sample counts (bucket `i` covers `[2^(i-1), 2^i)`).
    pub buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum_nanos: 0,
            max_nanos: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample, nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> u64 {
        self.sum_nanos.checked_div(self.count).unwrap_or(0)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in nanoseconds: the midpoint
    /// of the bucket holding the rank-`ceil(q·count)` sample, capped
    /// at the exact observed maximum. 0 when empty.
    pub fn quantile_nanos(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(i);
                return (lo + (hi - lo) / 2).min(self.max_nanos);
            }
        }
        self.max_nanos
    }

    /// Median sample, nanoseconds.
    pub fn p50_nanos(&self) -> u64 {
        self.quantile_nanos(0.50)
    }

    /// 90th-percentile sample, nanoseconds.
    pub fn p90_nanos(&self) -> u64 {
        self.quantile_nanos(0.90)
    }

    /// 99th-percentile sample, nanoseconds.
    pub fn p99_nanos(&self) -> u64 {
        self.quantile_nanos(0.99)
    }

    /// One-line human rendering: count, p50/p90/p99, and max.
    pub fn render_line(&self) -> String {
        if self.count == 0 {
            return "n 0".to_string();
        }
        format!(
            "n {:<8} p50 {:>8}  p90 {:>8}  p99 {:>8}  max {:>8}",
            self.count,
            fmt_nanos(self.p50_nanos()),
            fmt_nanos(self.p90_nanos()),
            fmt_nanos(self.p99_nanos()),
            fmt_nanos(self.max_nanos),
        )
    }

    /// JSON object for the stats export: fixed key set (`count`,
    /// `sum_ns`, `mean_ns`, `p50_ns`, `p90_ns`, `p99_ns`, `max_ns`,
    /// `buckets`), with `buckets` a sparse `[index, count]` pair list.
    pub fn to_json(&self) -> String {
        let mut buckets = crate::json::JsonArr::new();
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                buckets = buckets.raw(&format!("[{i},{n}]"));
            }
        }
        crate::json::JsonObj::new()
            .u64("count", self.count)
            .u64("sum_ns", self.sum_nanos)
            .u64("mean_ns", self.mean_nanos())
            .u64("p50_ns", self.p50_nanos())
            .u64("p90_ns", self.p90_nanos())
            .u64("p99_ns", self.p99_nanos())
            .u64("max_ns", self.max_nanos)
            .raw("buckets", &buckets.finish())
            .finish()
    }
}

/// Human-scale rendering of a nanosecond count (`17ns`, `1.2µs`,
/// `34ms`, `2.1s`).
pub fn fmt_nanos(nanos: u64) -> String {
    let n = nanos as f64;
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}µs", n / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.1}ms", n / 1e6)
    } else {
        format!("{:.1}s", n / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_of_nanos() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi);
            assert_eq!(bucket_index(lo), i, "lo of bucket {i}");
            assert_eq!(bucket_index(hi), i, "hi of bucket {i}");
        }
    }

    #[test]
    fn records_and_reads_out_quantiles() {
        let h = Histogram::new();
        for nanos in [100u64, 200, 400, 800, 100_000] {
            h.record_nanos(nanos);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.max_nanos, 100_000);
        assert_eq!(s.sum_nanos, 101_500);
        assert_eq!(s.mean_nanos(), 20_300);
        // p50 lands in the bucket of the 3rd sample (400ns → [256,511]).
        let p50 = s.p50_nanos();
        assert!((256..=511).contains(&p50), "{p50}");
        // p99 lands in the max sample's bucket, capped at the true max.
        assert!(s.p99_nanos() <= s.max_nanos);
        assert!(s.p99_nanos() > 65_000);
        assert!(!s.render_line().is_empty());
    }

    #[test]
    fn empty_histogram_is_calm() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.p50_nanos(), 0);
        assert_eq!(s.p99_nanos(), 0);
        assert_eq!(s.mean_nanos(), 0);
        assert_eq!(s.render_line(), "n 0");
        assert_eq!(s, HistogramSnapshot::default());
    }

    #[test]
    fn duration_samples_and_threads() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..1000u64 {
                        h.record(Duration::from_nanos(i));
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count, 4000);
    }

    #[test]
    fn merge_is_commutative_and_shard_invariant() {
        // The tentpole property: splitting one sample stream across
        // 1..=8 worker-local histograms and merging the shards in any
        // order reproduces the serial bucket counts exactly.
        let samples: Vec<u64> = (0..5000u64)
            .map(|i| i.wrapping_mul(0x9E37).rotate_left(7))
            .collect();
        let serial = Histogram::new();
        for &s in &samples {
            serial.record_nanos(s);
        }
        let expected = serial.snapshot();
        for workers in 1..=8usize {
            let shards: Vec<Histogram> = (0..workers).map(|_| Histogram::new()).collect();
            for (i, &s) in samples.iter().enumerate() {
                shards[i % workers].record_nanos(s);
            }
            // Forward merge order.
            let fwd = Histogram::new();
            for sh in &shards {
                fwd.merge(sh);
            }
            // Reverse merge order.
            let rev = Histogram::new();
            for sh in shards.iter().rev() {
                rev.merge(sh);
            }
            assert_eq!(fwd.snapshot(), expected, "workers = {workers}");
            assert_eq!(rev.snapshot(), expected, "workers = {workers} reversed");
        }
    }

    #[test]
    fn fmt_nanos_scales() {
        assert_eq!(fmt_nanos(17), "17ns");
        assert_eq!(fmt_nanos(1_200), "1.2µs");
        assert_eq!(fmt_nanos(34_000_000), "34.0ms");
        assert_eq!(fmt_nanos(2_100_000_000), "2.1s");
    }

    #[test]
    fn hist_json_round_trips() {
        let h = Histogram::new();
        for nanos in [1u64, 1000, 1_000_000] {
            h.record_nanos(nanos);
        }
        let s = h.snapshot();
        let parsed = crate::json::Json::parse(&s.to_json()).unwrap();
        assert_eq!(parsed.get("count").and_then(|v| v.as_u64()), Some(3));
        assert_eq!(
            parsed.get("max_ns").and_then(|v| v.as_u64()),
            Some(1_000_000)
        );
        assert_eq!(
            parsed
                .get("buckets")
                .and_then(|v| v.as_array())
                .map(|a| a.len()),
            Some(3)
        );
    }
}
