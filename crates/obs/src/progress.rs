//! The live campaign heartbeat.
//!
//! Long campaigns (a 76-month passive window, ~142 weekly sweeps) run
//! silently for minutes; [`Progress`] is the opt-in stderr heartbeat
//! that makes them watchable. It is configured from the
//! `TLSCOPE_PROGRESS` environment variable — unset, empty, `off`, or
//! an unparsable/non-positive value disables it entirely (the default:
//! zero overhead, zero output); any positive number of seconds (`1`,
//! `0.5`, …) enables a tick at that interval.
//!
//! The reporter itself is passive: the campaign runner spawns one
//! extra scoped thread that calls [`Progress::run_ticker`] with a
//! `sample` closure reading the shared metrics bag. The instrumented
//! workers never see it — the heartbeat only loads relaxed atomics, so
//! it cannot perturb ledger accounting or bit-identity.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Environment variable controlling the heartbeat: `off` (or unset)
/// disables, a positive number of seconds sets the tick interval.
pub const PROGRESS_ENV: &str = "TLSCOPE_PROGRESS";

/// Poll granularity of the ticker loop; also bounds how long a
/// finished campaign waits for its heartbeat thread to notice.
const POLL: Duration = Duration::from_millis(50);

/// An opt-in progress reporter for a campaign with a known number of
/// work units (months, sweep dates) and a monotone item counter
/// (flows, hosts).
#[derive(Debug, Clone)]
pub struct Progress {
    interval: Option<Duration>,
    task: String,
    total_units: u64,
    unit: &'static str,
    item_unit: &'static str,
}

impl Progress {
    /// A reporter configured from [`PROGRESS_ENV`]. `task` names the
    /// campaign in each line; `total_units` is the number of `unit`s
    /// (e.g. months) the run will complete; `item_unit` names the
    /// throughput counter (e.g. flows).
    pub fn from_env(
        task: &str,
        total_units: u64,
        unit: &'static str,
        item_unit: &'static str,
    ) -> Self {
        let interval = std::env::var(PROGRESS_ENV)
            .ok()
            .and_then(|raw| parse_interval(&raw));
        Progress {
            interval,
            task: task.to_string(),
            total_units,
            unit,
            item_unit,
        }
    }

    /// A reporter with an explicit interval, independent of the
    /// environment (used by the bench harness).
    pub fn with_interval(
        interval: Duration,
        task: &str,
        total_units: u64,
        unit: &'static str,
        item_unit: &'static str,
    ) -> Self {
        Progress {
            interval: Some(interval.max(Duration::from_millis(10))),
            task: task.to_string(),
            total_units,
            unit,
            item_unit,
        }
    }

    /// Whether the heartbeat will print anything. When false,
    /// `run_ticker` returns immediately — callers skip spawning the
    /// thread.
    pub fn is_enabled(&self) -> bool {
        self.interval.is_some()
    }

    /// Tick until `stop` becomes true, printing one heartbeat line per
    /// interval and a final summary line at the end. `sample` returns
    /// `(units_done, items_done)` from the shared metrics; it is
    /// called at most once per poll. Blocking — run it on a dedicated
    /// (scoped) thread alongside the campaign workers.
    pub fn run_ticker(&self, stop: &AtomicBool, sample: impl Fn() -> (u64, u64)) {
        let Some(interval) = self.interval else {
            return;
        };
        let started = Instant::now();
        let mut last_print = Instant::now();
        let mut last_items = sample().1;
        while !stop.load(Ordering::Acquire) {
            std::thread::sleep(POLL);
            if last_print.elapsed() < interval {
                continue;
            }
            let (units, items) = sample();
            let elapsed = last_print.elapsed().as_secs_f64();
            let delta = items.saturating_sub(last_items);
            let rate = delta as f64 / elapsed.max(1e-9);
            eprintln!(
                "# progress {}: {}/{} {}  {} {} (+{}, {:.0}/s)  eta {}",
                self.task,
                units,
                self.total_units,
                self.unit,
                items,
                self.item_unit,
                delta,
                rate,
                self.eta(units, started.elapsed()),
            );
            last_print = Instant::now();
            last_items = items;
        }
        let (units, items) = sample();
        let total = started.elapsed().as_secs_f64();
        eprintln!(
            "# progress {}: done — {}/{} {}, {} {} in {:.1}s ({:.0}/s)",
            self.task,
            units,
            self.total_units,
            self.unit,
            items,
            self.item_unit,
            total,
            items as f64 / total.max(1e-9),
        );
    }

    /// Remaining-time estimate from linear extrapolation over
    /// completed units; `"?"` until the first unit lands.
    fn eta(&self, units_done: u64, elapsed: Duration) -> String {
        if units_done == 0 || self.total_units == 0 {
            return "?".to_string();
        }
        let remaining = self.total_units.saturating_sub(units_done);
        let secs = elapsed.as_secs_f64() / units_done as f64 * remaining as f64;
        if secs >= 90.0 {
            format!("{:.1}min", secs / 60.0)
        } else {
            format!("{secs:.1}s")
        }
    }
}

/// `TLSCOPE_PROGRESS` value → tick interval; `None` disables.
fn parse_interval(raw: &str) -> Option<Duration> {
    let raw = raw.trim();
    if raw.is_empty() || raw.eq_ignore_ascii_case("off") {
        return None;
    }
    let secs: f64 = raw.parse().ok()?;
    if !secs.is_finite() || secs <= 0.0 {
        return None;
    }
    Some(Duration::from_secs_f64(secs).max(Duration::from_millis(10)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_parsing() {
        assert_eq!(parse_interval(""), None);
        assert_eq!(parse_interval("off"), None);
        assert_eq!(parse_interval("OFF"), None);
        assert_eq!(parse_interval("0"), None);
        assert_eq!(parse_interval("-3"), None);
        assert_eq!(parse_interval("bananas"), None);
        assert_eq!(parse_interval("2"), Some(Duration::from_secs(2)));
        assert_eq!(parse_interval("0.5"), Some(Duration::from_millis(500)));
        // Sub-10ms intervals clamp rather than spin.
        assert_eq!(parse_interval("0.0001"), Some(Duration::from_millis(10)));
    }

    #[test]
    fn disabled_ticker_returns_immediately() {
        let p = Progress {
            interval: None,
            task: "t".into(),
            total_units: 10,
            unit: "months",
            item_unit: "flows",
        };
        assert!(!p.is_enabled());
        let stop = AtomicBool::new(false); // never set — must not block
        p.run_ticker(&stop, || (0, 0));
    }

    #[test]
    fn enabled_ticker_stops_and_summarises() {
        let p = Progress::with_interval(Duration::from_millis(10), "t", 4, "months", "flows");
        assert!(p.is_enabled());
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            let ticker = s.spawn(|| p.run_ticker(&stop, || (2, 1234)));
            std::thread::sleep(Duration::from_millis(30));
            stop.store(true, Ordering::Release);
            ticker.join().unwrap();
        });
    }

    #[test]
    fn eta_extrapolates() {
        let p = Progress::with_interval(Duration::from_secs(1), "t", 10, "months", "flows");
        assert_eq!(p.eta(0, Duration::from_secs(5)), "?");
        assert_eq!(p.eta(5, Duration::from_secs(5)), "5.0s");
        assert_eq!(p.eta(1, Duration::from_secs(30)), "4.5min");
        assert_eq!(p.eta(10, Duration::from_secs(5)), "0.0s");
    }
}
