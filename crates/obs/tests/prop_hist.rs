//! The tentpole histogram property: merging is commutative and
//! shard-count-invariant. Splitting any sample stream across 1–8
//! worker-local histograms and merging the shards in any order must
//! reproduce the serial histogram's bucket counts exactly — the same
//! guarantee the pipelines' counter bags give their ledgers.

use proptest::prelude::*;
use tlscope_obs::Histogram;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn merge_is_commutative_and_shard_count_invariant(
        seed in 0u64..1_000_000,
        n in 1usize..2000,
        workers in 1usize..=8,
        rotate in 0usize..8,
    ) {
        // A deterministic spread of samples across all bucket scales.
        let samples: Vec<u64> = (0..n as u64)
            .map(|i| (i.wrapping_add(seed)).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(11))
            .collect();

        let serial = Histogram::new();
        for &s in &samples {
            serial.record_nanos(s);
        }
        let expected = serial.snapshot();

        // Round-robin sharding, as the worker pools do.
        let shards: Vec<Histogram> = (0..workers).map(|_| Histogram::new()).collect();
        for (i, &s) in samples.iter().enumerate() {
            shards[i % workers].record_nanos(s);
        }

        // Merge in a rotated order (covers forward, reversed-by-
        // rotation, and every interleaving the rotation reaches).
        let merged = Histogram::new();
        for k in 0..workers {
            merged.merge(&shards[(k + rotate) % workers]);
        }
        prop_assert_eq!(merged.snapshot(), expected);

        // And in strictly reversed order.
        let reversed = Histogram::new();
        for shard in shards.iter().rev() {
            reversed.merge(shard);
        }
        prop_assert_eq!(reversed.snapshot(), expected);
    }
}
