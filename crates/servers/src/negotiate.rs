//! The server-side negotiation engine.
//!
//! Given a parsed ClientHello and a [`ServerProfile`], produce the
//! ServerHello (and the ECDHE curve selection that would ride in the
//! ServerKeyExchange) exactly the way the deployed stacks the paper
//! measures do — including the out-of-spec behaviours it documents.

use tlscope_wire::codec::Writer;
use tlscope_wire::exts::{ext_body, ext_type, write_extension};
use tlscope_wire::handshake::handshake_type;
use tlscope_wire::{
    grease::is_grease, CipherSuite, ClientHello, Extension, Kx, NamedGroup, ProtocolVersion,
    ServerHello,
};

use crate::profile::{Quirk, ServerProfile};

/// Why a handshake failed to complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandshakeFailure {
    /// No protocol version acceptable to both sides.
    VersionMismatch,
    /// No cipher suite in common (after version gating).
    NoCommonCipher,
}

/// The result of a successful negotiation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Negotiated {
    /// The ServerHello to put on the wire.
    pub server_hello: ServerHello,
    /// The negotiated protocol version (resolving supported_versions).
    pub version: ProtocolVersion,
    /// The selected cipher suite.
    pub cipher: CipherSuite,
    /// The ECDHE group selected (would appear in ServerKeyExchange /
    /// key_share); `None` for non-(EC)DHE suites.
    pub curve: Option<NamedGroup>,
    /// True when both sides negotiated the Heartbeat extension (§5.4).
    pub heartbeat: bool,
}

/// Everything negotiation reads from a ClientHello, borrowed.
///
/// The traffic generator knows these facts from the client
/// configuration it emitted and fills the struct from reusable buffers
/// without ever materialising a [`ClientHello`]; [`respond`] extracts
/// them from a parsed hello. Both paths feed [`respond_facts`], so the
/// negotiation logic itself exists once.
#[derive(Debug, Clone, Copy)]
pub struct ClientFacts<'a> {
    /// The legacy version field of the hello.
    pub legacy_version: ProtocolVersion,
    /// Session id to echo.
    pub session_id: &'a [u8],
    /// Offered suites in client order (GREASE and SCSVs included).
    pub cipher_suites: &'a [CipherSuite],
    /// `supported_versions` extension content when that extension is
    /// present (GREASE included — filtered here exactly like
    /// [`ClientHello::offered_versions`]); `None` when absent.
    pub supported_versions: Option<&'a [ProtocolVersion]>,
    /// `supported_groups` extension content when present (GREASE
    /// included); `None` when absent.
    pub curves: Option<&'a [NamedGroup]>,
    /// renegotiation_info extension present.
    pub has_renegotiation_info: bool,
    /// heartbeat extension present.
    pub has_heartbeat: bool,
    /// Any extension block present, even an empty one.
    pub has_extensions: bool,
}

/// Negotiate a response to `hello` under `profile`.
///
/// `server_random` keeps the function deterministic for tests and
/// reproducible simulation.
pub fn respond(
    profile: &ServerProfile,
    hello: &ClientHello,
    server_random: [u8; 32],
) -> Result<Negotiated, HandshakeFailure> {
    let versions = hello
        .find_extension(ext_type::SUPPORTED_VERSIONS)
        .and_then(|e| e.parse_supported_versions().ok());
    let curves = hello
        .find_extension(ext_type::SUPPORTED_GROUPS)
        .and_then(|e| e.parse_supported_groups().ok());
    let facts = ClientFacts {
        legacy_version: hello.legacy_version,
        session_id: &hello.session_id,
        cipher_suites: &hello.cipher_suites,
        supported_versions: versions.as_deref(),
        curves: curves.as_deref(),
        has_renegotiation_info: hello.find_extension(ext_type::RENEGOTIATION_INFO).is_some(),
        has_heartbeat: hello.find_extension(ext_type::HEARTBEAT).is_some(),
        has_extensions: hello.extensions.is_some(),
    };
    respond_facts(profile, &facts, server_random)
}

/// The outcome of the pure negotiation decision — everything the
/// server picked, with no wire message attached.
///
/// This is the allocation-free core shared by [`respond_facts`] (which
/// additionally materialises the ServerHello) and callers that only
/// need the decision, like the active scanner's per-host hot loop:
/// probing millions of hosts cares about *what* the server chose, not
/// about the ServerHello bytes, and building the message would put a
/// heap allocation in every probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// The negotiated protocol version (resolving supported_versions).
    pub version: ProtocolVersion,
    /// The selected cipher suite.
    pub cipher: CipherSuite,
    /// The ECDHE group selected; `None` for non-(EC)DHE suites.
    pub curve: Option<NamedGroup>,
    /// True when both sides negotiated the Heartbeat extension (§5.4).
    pub heartbeat: bool,
}

/// Decide how `profile` answers a client described by `facts`, without
/// constructing the ServerHello. Performs no heap allocation.
pub fn decide(
    profile: &ServerProfile,
    facts: &ClientFacts<'_>,
) -> Result<Decision, HandshakeFailure> {
    let version = negotiate_version(profile, facts)?;
    let cipher = select_cipher(profile, facts, version)?;
    let curve = select_curve(profile, facts, cipher, version);
    let heartbeat = profile.heartbeat && facts.has_heartbeat && !version.is_tls13_family();
    Ok(Decision {
        version,
        cipher,
        curve,
        heartbeat,
    })
}

/// Negotiate a response to a client described by `facts` — the
/// allocation-light core of [`respond`].
pub fn respond_facts(
    profile: &ServerProfile,
    facts: &ClientFacts<'_>,
    server_random: [u8; 32],
) -> Result<Negotiated, HandshakeFailure> {
    let Decision {
        version,
        cipher,
        curve,
        heartbeat,
    } = decide(profile, facts)?;

    let mut extensions: Vec<Extension> = Vec::new();
    if version.is_tls13_family() {
        extensions.push(Extension::selected_version(version));
        if let Some(group) = curve {
            // TLS 1.3 carries the selected group in key_share.
            extensions.push(Extension::key_share_server(group));
        }
    }
    if facts.has_renegotiation_info && !version.is_tls13_family() {
        extensions.push(Extension::renegotiation_info());
    }
    if heartbeat {
        extensions.push(Extension::heartbeat(1));
    }

    let server_hello = ServerHello {
        legacy_version: if version.is_tls13_family() {
            ProtocolVersion::Tls12
        } else {
            version
        },
        random: server_random,
        session_id: facts.session_id.to_vec(),
        cipher_suite: cipher,
        compression_method: 0,
        extensions: if extensions.is_empty() && !facts.has_extensions {
            None
        } else {
            Some(extensions)
        },
    };

    Ok(Negotiated {
        server_hello,
        version,
        cipher,
        curve,
        heartbeat,
    })
}

/// Negotiate like [`respond_facts`], but serialise the framed
/// ServerHello handshake message straight into `w` — no [`ServerHello`]
/// struct, no extension vector, zero heap allocations beyond `w`'s own
/// storage. Returns the [`Decision`] so callers keep the negotiation
/// outcome. Byte-identical to serialising
/// `respond_facts(..)?.server_hello.write_handshake(w)` for the same
/// inputs (pinned by `respond_facts_into_matches_respond_facts`).
pub fn respond_facts_into(
    profile: &ServerProfile,
    facts: &ClientFacts<'_>,
    server_random: [u8; 32],
    w: &mut Writer,
) -> Result<Decision, HandshakeFailure> {
    let d = decide(profile, facts)?;
    write_decision_into(&d, facts, server_random, w);
    Ok(d)
}

/// Serialise the framed ServerHello for an already-made [`Decision`] —
/// the write half of [`respond_facts_into`], split out so a caller
/// holding a decision (e.g. one looking up a serialised-flight
/// template by [`Decision::template_key`]) can build the bytes without
/// re-running negotiation.
pub fn write_decision_into(
    d: &Decision,
    facts: &ClientFacts<'_>,
    server_random: [u8; 32],
    w: &mut Writer,
) {
    let tls13 = d.version.is_tls13_family();
    // Mirrors respond_facts: the extension block appears when the
    // server has extensions to send, or when the client sent a block
    // (even an empty one) — in which case the server echoes an empty
    // block rather than omitting it.
    // (renegotiation_info itself is only *written* on the pre-1.3
    // branch below; for deciding whether a block appears at all the
    // version does not matter).
    let server_sends_exts = tls13 || facts.has_renegotiation_info || d.heartbeat;
    let has_block = server_sends_exts || facts.has_extensions;
    w.u8(handshake_type::SERVER_HELLO);
    w.vec24(|w| {
        let legacy = if tls13 {
            ProtocolVersion::Tls12
        } else {
            d.version
        };
        w.u16(legacy.to_wire());
        w.bytes(&server_random);
        w.vec8(|w| {
            w.bytes(facts.session_id);
        });
        w.u16(d.cipher.0);
        w.u8(0); // compression_method
        if has_block {
            w.vec16(|w| {
                if tls13 {
                    write_extension(w, ext_type::SUPPORTED_VERSIONS, |w| {
                        ext_body::selected_version(w, d.version)
                    });
                    if let Some(group) = d.curve {
                        write_extension(w, ext_type::KEY_SHARE, |w| {
                            ext_body::key_share_server(w, group)
                        });
                    }
                }
                if facts.has_renegotiation_info && !tls13 {
                    write_extension(
                        w,
                        ext_type::RENEGOTIATION_INFO,
                        ext_body::renegotiation_info,
                    );
                }
                if d.heartbeat {
                    write_extension(w, ext_type::HEARTBEAT, |w| ext_body::heartbeat(w, 1));
                }
            });
        }
    });
}

impl Decision {
    /// Pack this decision together with the client-echo facts that
    /// shape the ServerHello bytes into one u64 cache key.
    ///
    /// [`write_decision_into`] emits bytes that are a pure function of
    /// `(Decision, session id, has_renegotiation_info, has_extensions,
    /// server_random)`; with an empty session id (the only case the
    /// generator's template cache handles) everything but the random —
    /// which the template patches — is captured here, so equal keys
    /// mean bit-identical flights modulo the 32 random bytes.
    pub fn template_key(&self, facts: &ClientFacts<'_>) -> u64 {
        let curve = match self.curve {
            Some(g) => 0x1_0000 | u64::from(g.0),
            None => 0,
        };
        u64::from(self.version.to_wire())
            | u64::from(self.cipher.0) << 16
            | curve << 32
            | u64::from(self.heartbeat) << 49
            | u64::from(facts.has_renegotiation_info) << 50
            | u64::from(facts.has_extensions) << 51
    }
}

/// True for a GREASE value riding in a version list.
fn grease_version(v: ProtocolVersion) -> bool {
    matches!(v, ProtocolVersion::Unknown(x) if is_grease(x))
}

/// The classic version ladder a client without `supported_versions`
/// implicitly offers (everything from SSL 3 up to its legacy field).
const CLASSIC_VERSIONS: [ProtocolVersion; 4] = [
    ProtocolVersion::Ssl3,
    ProtocolVersion::Tls10,
    ProtocolVersion::Tls11,
    ProtocolVersion::Tls12,
];

fn negotiate_version(
    profile: &ServerProfile,
    facts: &ClientFacts<'_>,
) -> Result<ProtocolVersion, HandshakeFailure> {
    // TLS 1.3 path: exact-member match within the 1.3 family, mirroring
    // how draft deployments only interoperated on equal draft numbers.
    if let Some(server13) = profile.tls13 {
        let offered13 = match facts.supported_versions {
            Some(vs) => vs.iter().any(|v| !grease_version(*v) && *v == server13),
            None => false,
        };
        if offered13 {
            return Ok(server13);
        }
    }
    // Classic path: min(client max, server max), bounded below by both.
    let client_max = match facts.supported_versions {
        Some(vs) => vs
            .iter()
            .copied()
            .filter(|v| !grease_version(*v) && !v.is_tls13_family())
            .max_by_key(|v| v.rank()),
        None => CLASSIC_VERSIONS
            .into_iter()
            .filter(|v| v.rank() <= facts.legacy_version.rank())
            .max_by_key(|v| v.rank()),
    }
    .unwrap_or(facts.legacy_version);
    let chosen = if client_max.rank() <= profile.max_version.rank() {
        client_max
    } else {
        profile.max_version
    };
    if chosen.rank() < profile.min_version.rank() {
        return Err(HandshakeFailure::VersionMismatch);
    }
    Ok(chosen)
}

/// A suite is usable at `version` if it is not TLS 1.3-only below 1.3,
/// and AEAD suites require TLS 1.2+.
fn usable_at(cipher: CipherSuite, version: ProtocolVersion) -> bool {
    if version.is_tls13_family() {
        return cipher.is_tls13();
    }
    if cipher.is_tls13() {
        return false;
    }
    if cipher.is_aead() && version.rank() < ProtocolVersion::Tls12.rank() {
        return false;
    }
    true
}

fn select_cipher(
    profile: &ServerProfile,
    facts: &ClientFacts<'_>,
    version: ProtocolVersion,
) -> Result<CipherSuite, HandshakeFailure> {
    let usable = |c: &CipherSuite| !is_grease(c.0) && !c.is_signaling() && usable_at(*c, version);
    let offered = || facts.cipher_suites.iter().copied().filter(|c| usable(c));

    // Out-of-spec behaviours first.
    match profile.quirk {
        Quirk::ChooseUnoffered(s) => return Ok(s),
        Quirk::DowngradeRc4ToExport => {
            if offered().any(|c| c.0 == 0x0005 || c.0 == 0x0004) {
                // Interwise: answer RC4_128 with EXP_RC4_40_MD5 (§5.5).
                return Ok(CipherSuite(0x0003));
            }
        }
        Quirk::PreferRc4 => {
            if let Some(c) = offered().find(|c| c.is_rc4()) {
                return Ok(c);
            }
        }
        Quirk::Prefer3Des => {
            if let Some(c) = offered().find(|c| c.is_3des()) {
                return Ok(c);
            }
        }
        Quirk::PreferNull => {
            if let Some(c) = offered().find(|c| c.is_null_encryption()) {
                return Ok(c);
            }
        }
        Quirk::PreferAnon => {
            if let Some(c) = offered().find(|c| c.is_anon() || c.is_null_null()) {
                return Ok(c);
            }
        }
        Quirk::None => {}
    }

    let choice = if profile.prefer_server_order {
        profile
            .preference
            .iter()
            .find(|c| offered().any(|o| o == **c) && ecdhe_feasible(profile, facts, **c))
            .copied()
    } else {
        offered().find(|c| profile.preference.contains(c) && ecdhe_feasible(profile, facts, *c))
    };
    choice.ok_or(HandshakeFailure::NoCommonCipher)
}

/// The RFC 4492 default: clients without a supported_groups extension
/// are assumed to support the NIST trio.
const RFC4492_DEFAULT_CURVES: [NamedGroup; 3] = [
    NamedGroup::SECP256R1,
    NamedGroup::SECP384R1,
    NamedGroup::SECP521R1,
];

/// ECDHE suites need a curve both sides support.
fn common_curve(profile: &ServerProfile, facts: &ClientFacts<'_>) -> Option<NamedGroup> {
    let client_curves = facts.curves.unwrap_or(&RFC4492_DEFAULT_CURVES);
    // Server preference order wins (the common OpenSSL deployment).
    profile
        .curves
        .iter()
        .find(|g| client_curves.contains(g) && !is_grease(g.0))
        .copied()
}

fn ecdhe_feasible(profile: &ServerProfile, facts: &ClientFacts<'_>, cipher: CipherSuite) -> bool {
    match cipher.kx() {
        Some(Kx::Ecdhe) | Some(Kx::Ecdh) | Some(Kx::EcdhAnon) => {
            common_curve(profile, facts).is_some()
        }
        _ => true,
    }
}

fn select_curve(
    profile: &ServerProfile,
    facts: &ClientFacts<'_>,
    cipher: CipherSuite,
    version: ProtocolVersion,
) -> Option<NamedGroup> {
    let needs_curve = version.is_tls13_family()
        || matches!(
            cipher.kx(),
            Some(Kx::Ecdhe) | Some(Kx::Ecdh) | Some(Kx::EcdhAnon) | Some(Kx::EcdhePsk)
        );
    if needs_curve {
        common_curve(profile, facts)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::preference;

    fn hello(suites: &[u16], curves: Option<&[u16]>) -> ClientHello {
        let mut extensions = vec![Extension::renegotiation_info()];
        if let Some(cs) = curves {
            let groups: Vec<NamedGroup> = cs.iter().map(|&c| NamedGroup(c)).collect();
            extensions.push(Extension::supported_groups(&groups));
            extensions.push(Extension::ec_point_formats(&[0]));
        }
        ClientHello {
            legacy_version: ProtocolVersion::Tls12,
            random: [1; 32],
            session_id: vec![],
            cipher_suites: suites.iter().map(|&s| CipherSuite(s)).collect(),
            compression_methods: vec![0],
            extensions: Some(extensions),
        }
    }

    #[test]
    fn happy_path_modern() {
        let p = ServerProfile::baseline("t");
        let h = hello(&[0xc02b, 0xc02f, 0xc013, 0x000a], Some(&[29, 23]));
        let n = respond(&p, &h, [2; 32]).unwrap();
        assert_eq!(n.version, ProtocolVersion::Tls12);
        assert!(n.cipher.is_aead());
        assert_eq!(n.curve, Some(NamedGroup::SECP256R1));
        // ServerHello parses back.
        let bytes = n.server_hello.to_handshake_bytes();
        let parsed = ServerHello::parse_handshake(&bytes).unwrap();
        assert_eq!(parsed.cipher_suite, n.cipher);
    }

    #[test]
    fn server_order_vs_client_order() {
        let mut p = ServerProfile::baseline("t");
        // Client prefers 3DES first (weird client).
        let h = hello(&[0x000a, 0xc02f], Some(&[23]));
        p.prefer_server_order = true;
        assert!(respond(&p, &h, [0; 32]).unwrap().cipher.is_aead());
        p.prefer_server_order = false;
        assert!(respond(&p, &h, [0; 32]).unwrap().cipher.is_3des());
    }

    #[test]
    fn version_intersection() {
        let mut p = ServerProfile::baseline("t");
        p.max_version = ProtocolVersion::Tls10;
        p.preference = preference::cbc_era();
        let h = hello(&[0xc013, 0x002f], Some(&[23]));
        let n = respond(&p, &h, [0; 32]).unwrap();
        assert_eq!(n.version, ProtocolVersion::Tls10);

        // Old client, modern-but-strict server.
        let mut h10 = hello(&[0x002f], Some(&[23]));
        h10.legacy_version = ProtocolVersion::Ssl3;
        p.max_version = ProtocolVersion::Tls12;
        p.min_version = ProtocolVersion::Tls10;
        assert_eq!(
            respond(&p, &h10, [0; 32]),
            Err(HandshakeFailure::VersionMismatch)
        );
    }

    #[test]
    fn aead_gated_below_tls12() {
        let mut p = ServerProfile::baseline("t");
        p.max_version = ProtocolVersion::Tls11;
        // Client only offers AEAD → nothing usable at TLS 1.1.
        let h = hello(&[0xc02b, 0xc02f], Some(&[23]));
        assert_eq!(
            respond(&p, &h, [0; 32]),
            Err(HandshakeFailure::NoCommonCipher)
        );
        // With a CBC fallback it works.
        let h = hello(&[0xc02b, 0xc013], Some(&[23]));
        let n = respond(&p, &h, [0; 32]).unwrap();
        assert!(n.cipher.is_cbc());
    }

    #[test]
    fn tls13_exact_draft_match() {
        let mut p = ServerProfile::baseline("t");
        p.tls13 = Some(ProtocolVersion::Tls13Experiment(2));
        p.preference = {
            let mut pref = vec![CipherSuite(0x1301), CipherSuite(0x1303)];
            pref.extend(preference::modern());
            pref
        };
        let mut h = hello(&[0x1301, 0x1303, 0xc02b, 0xc02f], Some(&[29, 23]));
        h.extensions
            .as_mut()
            .unwrap()
            .push(Extension::supported_versions(&[
                ProtocolVersion::Tls13Experiment(2),
                ProtocolVersion::Tls12,
            ]));
        let n = respond(&p, &h, [0; 32]).unwrap();
        assert_eq!(n.version, ProtocolVersion::Tls13Experiment(2));
        assert!(n.cipher.is_tls13());
        // The wire ServerHello keeps legacy 1.2 + supported_versions.
        assert_eq!(n.server_hello.legacy_version, ProtocolVersion::Tls12);
        assert_eq!(
            n.server_hello.negotiated_version(),
            ProtocolVersion::Tls13Experiment(2)
        );

        // Draft mismatch falls back to 1.2.
        p.tls13 = Some(ProtocolVersion::Tls13Draft(23));
        let n = respond(&p, &h, [0; 32]).unwrap();
        assert_eq!(n.version, ProtocolVersion::Tls12);
        assert!(!n.cipher.is_tls13());
    }

    #[test]
    fn ecdhe_requires_common_curve() {
        let mut p = ServerProfile::baseline("t");
        p.curves = vec![NamedGroup::X25519];
        // Client only does NIST curves → ECDHE infeasible, falls to RSA.
        let h = hello(&[0xc02f, 0x009c, 0x002f], Some(&[23, 24]));
        let n = respond(&p, &h, [0; 32]).unwrap();
        assert!(!matches!(n.cipher.kx(), Some(Kx::Ecdhe)));
        assert_eq!(n.curve, None);
    }

    #[test]
    fn curve_selection_server_preference() {
        let mut p = ServerProfile::baseline("t");
        p.curves = vec![NamedGroup::X25519, NamedGroup::SECP256R1];
        let h = hello(&[0xc02f], Some(&[23, 29]));
        let n = respond(&p, &h, [0; 32]).unwrap();
        assert_eq!(n.curve, Some(NamedGroup::X25519));
    }

    #[test]
    fn grease_and_scsv_never_selected() {
        let p = ServerProfile::baseline("t");
        let h = hello(&[0x2a2a, 0x00ff, 0x5600, 0xc02f], Some(&[23]));
        let n = respond(&p, &h, [0; 32]).unwrap();
        assert_eq!(n.cipher, CipherSuite(0xc02f));
    }

    #[test]
    fn quirk_choose_unoffered_gost() {
        let mut p = ServerProfile::baseline("t");
        p.quirk = Quirk::ChooseUnoffered(CipherSuite(0x0081));
        let h = hello(&[0xc02f], Some(&[23]));
        let n = respond(&p, &h, [0; 32]).unwrap();
        assert_eq!(n.cipher, CipherSuite(0x0081));
        assert!(!h.cipher_suites.contains(&n.cipher));
    }

    #[test]
    fn quirk_interwise_export_downgrade() {
        let mut p = ServerProfile::baseline("t");
        p.quirk = Quirk::DowngradeRc4ToExport;
        let h = hello(&[0x0005], Some(&[23]));
        let n = respond(&p, &h, [0; 32]).unwrap();
        assert_eq!(n.cipher, CipherSuite(0x0003));
        assert!(n.cipher.is_export());
    }

    #[test]
    fn quirk_prefer_rc4_despite_better() {
        let mut p = ServerProfile::baseline("t");
        p.quirk = Quirk::PreferRc4;
        let h = hello(&[0xc02f, 0xc011], Some(&[23]));
        assert!(respond(&p, &h, [0; 32]).unwrap().cipher.is_rc4());
        // Removing RC4 from the offer flips it to a modern AEAD cipher —
        // exactly the bankmellat.ir experiment from §5.3.
        let h = hello(&[0xc02f], Some(&[23]));
        assert!(respond(&p, &h, [0; 32]).unwrap().cipher.is_aead());
    }

    #[test]
    fn decide_agrees_with_respond() {
        let mut p = ServerProfile::baseline("t");
        p.heartbeat = true;
        let mut h = hello(&[0xc02b, 0xc02f, 0xc013, 0x0005, 0x000a], Some(&[29, 23]));
        h.extensions.as_mut().unwrap().push(Extension::heartbeat(1));
        for quirk in [Quirk::None, Quirk::PreferRc4, Quirk::Prefer3Des] {
            p.quirk = quirk;
            let n = respond(&p, &h, [7; 32]).unwrap();
            let versions = h
                .find_extension(ext_type::SUPPORTED_VERSIONS)
                .and_then(|e| e.parse_supported_versions().ok());
            let curves = h
                .find_extension(ext_type::SUPPORTED_GROUPS)
                .and_then(|e| e.parse_supported_groups().ok());
            let facts = ClientFacts {
                legacy_version: h.legacy_version,
                session_id: &h.session_id,
                cipher_suites: &h.cipher_suites,
                supported_versions: versions.as_deref(),
                curves: curves.as_deref(),
                has_renegotiation_info: h.find_extension(ext_type::RENEGOTIATION_INFO).is_some(),
                has_heartbeat: h.find_extension(ext_type::HEARTBEAT).is_some(),
                has_extensions: h.extensions.is_some(),
            };
            let d = decide(&p, &facts).unwrap();
            assert_eq!(d.version, n.version);
            assert_eq!(d.cipher, n.cipher);
            assert_eq!(d.curve, n.curve);
            assert_eq!(d.heartbeat, n.heartbeat);
        }
    }

    #[test]
    fn respond_facts_into_matches_respond_facts() {
        // The borrowed writer must emit byte-identical framed
        // ServerHellos across every structural variant: classic,
        // TLS 1.3 (selected_version + key_share), heartbeat,
        // renegotiation_info, empty-block echo, and no block at all.
        let facts_variants: Vec<(&str, ClientFacts<'_>)> = vec![
            (
                "plain, no extensions",
                ClientFacts {
                    legacy_version: ProtocolVersion::Tls12,
                    session_id: &[],
                    cipher_suites: &[CipherSuite(0xc02f), CipherSuite(0x002f)],
                    supported_versions: None,
                    curves: None,
                    has_renegotiation_info: false,
                    has_heartbeat: false,
                    has_extensions: false,
                },
            ),
            (
                "empty block echo",
                ClientFacts {
                    legacy_version: ProtocolVersion::Tls12,
                    session_id: &[9, 9, 9],
                    cipher_suites: &[CipherSuite(0x002f)],
                    supported_versions: None,
                    curves: None,
                    has_renegotiation_info: false,
                    has_heartbeat: false,
                    has_extensions: true,
                },
            ),
            (
                "renego + heartbeat + curves",
                ClientFacts {
                    legacy_version: ProtocolVersion::Tls12,
                    session_id: &[1; 32],
                    cipher_suites: &[CipherSuite(0xc02b), CipherSuite(0xc013)],
                    supported_versions: None,
                    curves: Some(&[NamedGroup::X25519, NamedGroup::SECP256R1]),
                    has_renegotiation_info: true,
                    has_heartbeat: true,
                    has_extensions: true,
                },
            ),
            (
                "tls13 offer",
                ClientFacts {
                    legacy_version: ProtocolVersion::Tls12,
                    session_id: &[5; 8],
                    cipher_suites: &[CipherSuite(0x1301), CipherSuite(0xc02f)],
                    supported_versions: Some(&[
                        ProtocolVersion::Tls13Draft(23),
                        ProtocolVersion::Tls12,
                    ]),
                    curves: Some(&[NamedGroup::X25519]),
                    has_renegotiation_info: true,
                    has_heartbeat: false,
                    has_extensions: true,
                },
            ),
            (
                "old ssl3 client",
                ClientFacts {
                    legacy_version: ProtocolVersion::Ssl3,
                    session_id: &[],
                    cipher_suites: &[CipherSuite(0x0005), CipherSuite(0x000a)],
                    supported_versions: None,
                    curves: None,
                    has_renegotiation_info: false,
                    has_heartbeat: false,
                    has_extensions: false,
                },
            ),
        ];
        let mut profiles = vec![ServerProfile::baseline("a")];
        let mut hb = ServerProfile::baseline("b");
        hb.heartbeat = true;
        profiles.push(hb);
        let mut t13 = ServerProfile::baseline("c");
        t13.tls13 = Some(ProtocolVersion::Tls13Draft(23));
        t13.preference = {
            let mut pref = vec![CipherSuite(0x1301)];
            pref.extend(preference::modern());
            pref
        };
        profiles.push(t13);
        let mut old = ServerProfile::baseline("d");
        old.max_version = ProtocolVersion::Tls10;
        old.preference = preference::cbc_era();
        profiles.push(old);
        for p in &profiles {
            for (name, facts) in &facts_variants {
                let owned = respond_facts(p, facts, [3; 32]);
                let mut w = Writer::new();
                let into = respond_facts_into(p, facts, [3; 32], &mut w);
                match (owned, into) {
                    (Ok(n), Ok(d)) => {
                        let mut expect = Writer::new();
                        n.server_hello.write_handshake(&mut expect);
                        assert_eq!(
                            w.into_bytes(),
                            expect.into_bytes(),
                            "byte divergence: profile {} / {name}",
                            p.cohort
                        );
                        assert_eq!(
                            (d.version, d.cipher, d.curve, d.heartbeat),
                            (n.version, n.cipher, n.curve, n.heartbeat)
                        );
                    }
                    (Err(a), Err(b)) => assert_eq!(a, b),
                    (a, b) => panic!(
                        "outcome divergence: profile {} / {name}: {a:?} vs {b:?}",
                        p.cohort
                    ),
                }
            }
        }
    }

    #[test]
    fn heartbeat_negotiated_only_when_both_sides() {
        let mut p = ServerProfile::baseline("t");
        p.heartbeat = true;
        let mut h = hello(&[0xc02f], Some(&[23]));
        assert!(!respond(&p, &h, [0; 32]).unwrap().heartbeat);
        h.extensions.as_mut().unwrap().push(Extension::heartbeat(1));
        assert!(respond(&p, &h, [0; 32]).unwrap().heartbeat);
        p.heartbeat = false;
        assert!(!respond(&p, &h, [0; 32]).unwrap().heartbeat);
    }
}
