//! Server cohorts and their configuration evolution, 2012–2018.
//!
//! Each cohort is a population of servers whose configuration
//! probabilities are functions of the calendar date, calibrated against
//! the numbers the paper reports from Censys and the Notary:
//!
//! * SSL 3 support: ~45 % of hosts in 2015-09 → <25 % in 2018-05 (§5.1)
//! * RC4 pinning: the BEAST response (2011-10) through the post-attack
//!   decline; Censys sees 11.2 % of hosts choosing RC4 in 2015-09 and
//!   3.4 % in 2018-05 (§5.3)
//! * CBC chosen by 54 % of hosts in 2015-09 → 35 % in 2018-05, with the
//!   biggest drop late-2016 → mid-2017 (§5.2)
//! * 3DES chosen by 0.54 % → 0.25 % of hosts (§5.6)
//! * Heartbleed: ~24 % vulnerable at disclosure → <2 % within a month →
//!   0.32 % long tail in 2018-05; 34 % still support Heartbeat (§5.4)
//! * Forward secrecy: ECDHE-first preference sweeping the fleet after
//!   the Snowden disclosures of 2013-06 (§6.3.1)
//! * x25519 negotiation rising from mid-2017 to 22.2 % of connections
//!   (§6.3.3); TLS 1.3 experiments negotiating 1.3 % by 2018-04 (§6.4)

use rand::rngs::SmallRng;
use rand::RngExt;
use tlscope_chron::Date;
use tlscope_wire::{CipherSuite, NamedGroup, ProtocolVersion};

use crate::profile::{preference, Quirk, ServerProfile};
use crate::ramps::{decay_after, plateau, ramp};

/// Security-event dates used by the evolution curves.
pub mod events {
    use tlscope_chron::Date;

    /// BEAST disclosure.
    pub const BEAST: Date = Date::ymd(2011, 9, 6);
    /// First big RC4 attacks (AlFardan et al.).
    pub const RC4_ATTACKS: Date = Date::ymd(2013, 3, 12);
    /// First Snowden stories.
    pub const SNOWDEN: Date = Date::ymd(2013, 6, 5);
    /// Heartbleed public disclosure.
    pub const HEARTBLEED: Date = Date::ymd(2014, 4, 7);
    /// POODLE disclosure.
    pub const POODLE: Date = Date::ymd(2014, 10, 14);
    /// RFC 7465 "RC4 no more".
    pub const RC4_NO_MORE: Date = Date::ymd(2015, 2, 18);
    /// Sweet32 disclosure.
    pub const SWEET32: Date = Date::ymd(2016, 8, 31);
}

/// Server population cohorts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cohort {
    /// Top-traffic web properties: fast patchers, early adopters.
    MajorWeb,
    /// CDNs and large termination fleets: fastest adopters, TLS 1.3
    /// experiments live here.
    Cdn,
    /// The long tail of web hosting: slow, heterogeneous.
    LongTailWeb,
    /// Corporate services and appliances: RC4/3DES linger.
    Enterprise,
    /// Embedded / IoT endpoints: effectively never patched.
    Iot,
    /// Mail and messaging servers (OpenSSL defaults).
    Mail,
}

/// Date-dependent configuration probabilities for one cohort.
#[derive(Debug, Clone, Copy)]
pub struct CohortParams {
    /// P(max version is TLS 1.2).
    pub p_tls12: f64,
    /// P(max version is TLS 1.1 | not 1.2).
    pub p_tls11: f64,
    /// P(SSL 3 accepted).
    pub p_ssl3: f64,
    /// P(modern AEAD-first preference).
    pub p_modern: f64,
    /// P(ChaCha20-first | modern).
    pub p_chacha: f64,
    /// P(AES-256-GCM-first | modern, not ChaCha-first).
    pub p_aes256: f64,
    /// P(RC4 pinned first | not modern).
    pub p_rc4_pin: f64,
    /// P(DHE-first Apache style | not modern, not RC4-pinned).
    pub p_dhe: f64,
    /// P(ECDHE moved first for FS | not modern) — the Snowden response.
    pub p_fs: f64,
    /// P(x25519 supported and preferred).
    pub p_x25519: f64,
    /// P(supports the Google experimental TLS 1.3 variant 0x7e02).
    pub p_tls13_exp: f64,
    /// P(supports TLS 1.3 draft 18).
    pub p_tls13_d18: f64,
    /// P(answers the Heartbeat extension).
    pub p_heartbeat: f64,
    /// P(Heartbleed-vulnerable OpenSSL).
    pub p_hb_vuln: f64,
    /// P(honours client cipher order instead of its own).
    pub p_client_order: f64,
    /// P(quirk: picks RC4 whenever offered, despite better options).
    pub p_quirk_rc4: f64,
    /// P(quirk: picks 3DES whenever offered).
    pub p_quirk_3des: f64,
    /// P(OpenSSL strength-ordered curve list, sect571r1 first).
    pub p_odd_curves: f64,
    /// P(no elliptic-curve support at all — pre-2013 stacks built
    /// without EC, the reason ECDHE negotiation was rare in 2012
    /// despite near-universal client support, §6.3.1).
    pub p_no_ecc: f64,
}

/// The calibrated parameter curves.
pub fn params(cohort: Cohort, date: Date) -> CohortParams {
    use events::*;
    let d = date;
    match cohort {
        Cohort::MajorWeb => CohortParams {
            p_tls12: ramp(d, Date::ymd(2011, 9, 1), Date::ymd(2014, 3, 1)),
            p_tls11: 0.3 * ramp(d, Date::ymd(2011, 1, 1), Date::ymd(2012, 9, 1)),
            p_ssl3: 0.95 - 0.92 * ramp(d, POODLE, Date::ymd(2015, 4, 1)),
            p_modern: 0.98 * ramp(d, Date::ymd(2013, 9, 1), Date::ymd(2015, 9, 1)),
            p_chacha: 0.030 * ramp(d, Date::ymd(2015, 6, 1), Date::ymd(2016, 12, 1)),
            p_aes256: 0.40,
            p_rc4_pin: plateau(
                d,
                Date::ymd(2011, 10, 1),
                Date::ymd(2012, 6, 1),
                Date::ymd(2013, 9, 1),
                Date::ymd(2015, 12, 1),
                0.80,
                0.015,
            ),
            p_dhe: 0.05 * (1.0 - ramp(d, Date::ymd(2015, 1, 1), Date::ymd(2016, 6, 1))),
            p_fs: 0.08 + 0.90 * ramp(d, SNOWDEN, Date::ymd(2014, 6, 1)),
            p_x25519: 0.45 * ramp(d, Date::ymd(2016, 6, 1), Date::ymd(2017, 12, 1)),
            p_tls13_exp: 0.12 * ramp(d, Date::ymd(2017, 9, 1), Date::ymd(2018, 4, 1)),
            p_tls13_d18: 0.02 * ramp(d, Date::ymd(2017, 3, 1), Date::ymd(2017, 12, 1)),
            p_heartbeat: 0.38,
            p_hb_vuln: 0.30 * decay_after(d, HEARTBLEED, 8.0, 0.008),
            p_client_order: 0.15,
            p_quirk_rc4: 0.002,
            p_quirk_3des: 0.0,
            p_odd_curves: 0.002,
            p_no_ecc: 0.45 * (1.0 - ramp(d, Date::ymd(2012, 6, 1), Date::ymd(2014, 6, 1))),
        },
        Cohort::Cdn => CohortParams {
            p_tls12: ramp(d, Date::ymd(2011, 1, 1), Date::ymd(2013, 1, 1)),
            p_tls11: 0.5,
            p_ssl3: 0.90 - 0.88 * ramp(d, POODLE, Date::ymd(2015, 1, 1)),
            p_modern: ramp(d, Date::ymd(2013, 3, 1), Date::ymd(2014, 3, 1)),
            p_chacha: 0.060 * ramp(d, Date::ymd(2015, 4, 1), Date::ymd(2016, 4, 1)),
            p_aes256: 0.40,
            p_rc4_pin: plateau(
                d,
                Date::ymd(2011, 10, 1),
                Date::ymd(2012, 4, 1),
                Date::ymd(2013, 9, 1),
                Date::ymd(2015, 3, 1),
                0.70,
                0.0,
            ),
            p_dhe: 0.0,
            p_fs: 0.20 + 0.80 * ramp(d, SNOWDEN, Date::ymd(2013, 12, 1)),
            p_x25519: 0.60 * ramp(d, Date::ymd(2016, 1, 1), Date::ymd(2017, 6, 1)),
            p_tls13_exp: 0.50 * ramp(d, Date::ymd(2017, 7, 1), Date::ymd(2018, 4, 1)),
            p_tls13_d18: 0.08 * ramp(d, Date::ymd(2017, 1, 1), Date::ymd(2017, 10, 1)),
            p_heartbeat: 0.25,
            p_hb_vuln: 0.25 * decay_after(d, HEARTBLEED, 6.0, 0.002),
            p_client_order: 0.05,
            p_quirk_rc4: 0.0,
            p_quirk_3des: 0.0,
            p_odd_curves: 0.0,
            p_no_ecc: 0.30 * (1.0 - ramp(d, Date::ymd(2012, 1, 1), Date::ymd(2013, 6, 1))),
        },
        Cohort::LongTailWeb => CohortParams {
            p_tls12: 0.95 * ramp(d, Date::ymd(2012, 6, 1), Date::ymd(2016, 6, 1)),
            p_tls11: 0.25,
            p_ssl3: 0.95
                - 0.42 * ramp(d, POODLE, Date::ymd(2015, 10, 1))
                - 0.27 * ramp(d, Date::ymd(2015, 10, 1), Date::ymd(2018, 5, 1)),
            p_modern: 0.88 * ramp(d, Date::ymd(2015, 1, 1), Date::ymd(2018, 1, 1)),
            p_chacha: 0.010 * ramp(d, Date::ymd(2016, 6, 1), Date::ymd(2018, 1, 1)),
            p_aes256: 0.40,
            p_rc4_pin: plateau(
                d,
                Date::ymd(2011, 12, 1),
                Date::ymd(2012, 12, 1),
                Date::ymd(2013, 9, 1),
                Date::ymd(2016, 12, 1),
                0.42,
                0.010,
            ),
            p_dhe: 0.08 * (1.0 - ramp(d, Date::ymd(2015, 6, 1), Date::ymd(2017, 6, 1))),
            p_fs: 0.05 + 0.60 * ramp(d, SNOWDEN, Date::ymd(2015, 12, 1)),
            p_x25519: 0.28 * ramp(d, Date::ymd(2016, 10, 1), Date::ymd(2018, 4, 1)),
            p_tls13_exp: 0.0,
            p_tls13_d18: 0.0,
            p_heartbeat: 0.45,
            p_hb_vuln: 0.35 * decay_after(d, HEARTBLEED, 25.0, 0.004),
            p_client_order: 0.35,
            p_quirk_rc4: 0.012,
            p_quirk_3des: 0.004
                + 0.020 * (1.0 - ramp(d, Date::ymd(2012, 1, 1), Date::ymd(2015, 6, 1)))
                - 0.002 * ramp(d, SWEET32, Date::ymd(2018, 5, 1)),
            p_odd_curves: 0.03,
            p_no_ecc: 0.75 * (1.0 - ramp(d, Date::ymd(2012, 6, 1), Date::ymd(2016, 6, 1))) + 0.04,
        },
        Cohort::Enterprise => CohortParams {
            p_tls12: ramp(d, Date::ymd(2012, 1, 1), Date::ymd(2015, 6, 1)),
            p_tls11: 0.3,
            p_ssl3: 0.60 - 0.42 * ramp(d, POODLE, Date::ymd(2017, 1, 1)),
            p_modern: 0.85 * ramp(d, Date::ymd(2014, 6, 1), Date::ymd(2017, 6, 1)),
            p_chacha: 0.0,
            p_aes256: 0.40,
            p_rc4_pin: plateau(
                d,
                Date::ymd(2011, 10, 1),
                Date::ymd(2012, 6, 1),
                Date::ymd(2014, 6, 1),
                Date::ymd(2017, 6, 1),
                0.60,
                0.03,
            ),
            p_dhe: 0.06,
            p_fs: 0.05 + 0.55 * ramp(d, SNOWDEN, Date::ymd(2015, 6, 1)),
            p_x25519: 0.15 * ramp(d, Date::ymd(2017, 1, 1), Date::ymd(2018, 5, 1)),
            p_tls13_exp: 0.0,
            p_tls13_d18: 0.0,
            p_heartbeat: 0.30,
            p_hb_vuln: 0.28 * decay_after(d, HEARTBLEED, 45.0, 0.005),
            p_client_order: 0.20,
            p_quirk_rc4: 0.025,
            p_quirk_3des: 0.005
                + 0.025 * (1.0 - ramp(d, Date::ymd(2012, 1, 1), Date::ymd(2015, 6, 1)))
                - 0.002 * ramp(d, SWEET32, Date::ymd(2018, 5, 1)),
            p_odd_curves: 0.01,
            p_no_ecc: 0.65 * (1.0 - ramp(d, Date::ymd(2012, 6, 1), Date::ymd(2016, 1, 1))) + 0.05,
        },
        Cohort::Iot => CohortParams {
            p_tls12: 0.15 * ramp(d, Date::ymd(2015, 1, 1), Date::ymd(2018, 1, 1)),
            p_tls11: 0.05,
            p_ssl3: 0.85 - 0.20 * ramp(d, Date::ymd(2015, 1, 1), Date::ymd(2018, 5, 1)),
            p_modern: 0.0,
            p_chacha: 0.0,
            p_aes256: 0.40,
            p_rc4_pin: 0.10,
            p_dhe: 0.0,
            p_fs: 0.02,
            p_x25519: 0.0,
            p_tls13_exp: 0.0,
            p_tls13_d18: 0.0,
            p_heartbeat: 0.15,
            p_hb_vuln: 0.15 * decay_after(d, HEARTBLEED, 400.0, 0.02),
            p_client_order: 0.50,
            p_quirk_rc4: 0.02,
            p_quirk_3des: 0.010,
            p_odd_curves: 0.0,
            p_no_ecc: 0.85,
        },
        Cohort::Mail => CohortParams {
            p_tls12: ramp(d, Date::ymd(2012, 3, 1), Date::ymd(2015, 6, 1)),
            p_tls11: 0.4,
            p_ssl3: 0.70 - 0.45 * ramp(d, POODLE, Date::ymd(2017, 6, 1)),
            p_modern: 0.90 * ramp(d, Date::ymd(2014, 1, 1), Date::ymd(2016, 1, 1)),
            p_chacha: 0.020 * ramp(d, Date::ymd(2016, 9, 1), Date::ymd(2018, 1, 1)),
            p_aes256: 0.40,
            p_rc4_pin: plateau(
                d,
                Date::ymd(2011, 12, 1),
                Date::ymd(2012, 9, 1),
                Date::ymd(2013, 9, 1),
                Date::ymd(2016, 1, 1),
                0.25,
                0.02,
            ),
            p_dhe: 0.12 * (1.0 - ramp(d, Date::ymd(2015, 6, 1), Date::ymd(2017, 1, 1))),
            p_fs: 0.10 + 0.70 * ramp(d, SNOWDEN, Date::ymd(2014, 12, 1)),
            p_x25519: 0.20 * ramp(d, Date::ymd(2016, 10, 1), Date::ymd(2018, 4, 1)),
            p_tls13_exp: 0.0,
            p_tls13_d18: 0.0,
            p_heartbeat: 0.70,
            p_hb_vuln: 0.40 * decay_after(d, HEARTBLEED, 20.0, 0.004),
            p_client_order: 0.40,
            p_quirk_rc4: 0.002,
            p_quirk_3des: 0.004,
            p_odd_curves: 0.05,
            p_no_ecc: 0.55 * (1.0 - ramp(d, Date::ymd(2012, 6, 1), Date::ymd(2015, 6, 1))) + 0.02,
        },
    }
}

/// Memo for [`params`], keyed by `(cohort, day of month)`.
///
/// The parameter curves are pure functions of `(cohort, date)` but
/// cost ~20 calendar-ramp evaluations per call, which dominated
/// profile sampling on the generator hot path. A month has at most 31
/// distinct dates, so one slot per `(cohort, day)` — validated
/// against the stored date so a cache crossing a month boundary
/// simply recomputes — removes the recomputation without touching the
/// RNG stream.
#[derive(Debug, Clone, Default)]
pub struct ParamsCache {
    slots: Vec<Option<(Date, CohortParams)>>,
}

const COHORTS: usize = 6;
const DAY_SLOTS: usize = 31;

impl ParamsCache {
    fn cohort_index(cohort: Cohort) -> usize {
        match cohort {
            Cohort::MajorWeb => 0,
            Cohort::Cdn => 1,
            Cohort::LongTailWeb => 2,
            Cohort::Enterprise => 3,
            Cohort::Iot => 4,
            Cohort::Mail => 5,
        }
    }

    /// [`params`] through the memo.
    pub fn params(&mut self, cohort: Cohort, date: Date) -> CohortParams {
        if self.slots.is_empty() {
            self.slots.resize(COHORTS * DAY_SLOTS, None);
        }
        let idx = Self::cohort_index(cohort) * DAY_SLOTS + (date.day() as usize - 1);
        match self.slots[idx] {
            Some((d, p)) if d == date => p,
            _ => {
                let p = params(cohort, date);
                self.slots[idx] = Some((date, p));
                p
            }
        }
    }
}

fn bern(rng: &mut SmallRng, p: f64) -> bool {
    p > 0.0 && rng.random::<f64>() < p
}

/// Sample a concrete server profile from a cohort at a date.
pub fn sample(cohort: Cohort, date: Date, rng: &mut SmallRng) -> ServerProfile {
    sample_from_params(&params(cohort, date), cohort, rng)
}

/// [`sample`] with the parameter curves served from a memo — the
/// generator hot path draws thousands of profiles per calendar day.
/// Draws the identical RNG sequence as [`sample`].
pub fn sample_cached(
    cache: &mut ParamsCache,
    cohort: Cohort,
    date: Date,
    rng: &mut SmallRng,
) -> ServerProfile {
    let p = cache.params(cohort, date);
    sample_from_params(&p, cohort, rng)
}

/// The sampling core: turn drawn parameters into a concrete profile.
fn sample_from_params(p: &CohortParams, cohort: Cohort, rng: &mut SmallRng) -> ServerProfile {
    let cohort_name = match cohort {
        Cohort::MajorWeb => "major-web",
        Cohort::Cdn => "cdn",
        Cohort::LongTailWeb => "long-tail-web",
        Cohort::Enterprise => "enterprise",
        Cohort::Iot => "iot",
        Cohort::Mail => "mail",
    };

    let max_version = if bern(rng, p.p_tls12) {
        ProtocolVersion::Tls12
    } else if bern(rng, p.p_tls11) {
        ProtocolVersion::Tls11
    } else {
        ProtocolVersion::Tls10
    };
    let min_version = if bern(rng, p.p_ssl3) {
        ProtocolVersion::Ssl3
    } else {
        ProtocolVersion::Tls10
    };

    let modern = max_version == ProtocolVersion::Tls12 && bern(rng, p.p_modern);
    let preference = if modern {
        if bern(rng, p.p_chacha) {
            preference::modern_chacha_first()
        } else if bern(rng, p.p_aes256) {
            preference::modern_aes256_first()
        } else {
            preference::modern()
        }
    } else if bern(rng, p.p_rc4_pin) {
        if bern(rng, p.p_fs) {
            preference::rc4_first_fs()
        } else {
            preference::rc4_first()
        }
    } else if bern(rng, p.p_dhe) {
        preference::dhe_first()
    } else if cohort == Cohort::Iot {
        if bern(rng, 0.78) {
            preference::embedded()
        } else {
            preference::legacy_appliance()
        }
    } else if bern(rng, p.p_fs) {
        preference::cbc_era_fs()
    } else {
        preference::cbc_era()
    };

    let curves = if bern(rng, p.p_no_ecc) {
        // EC-free stack: no ECDHE possible.
        vec![]
    } else if bern(rng, p.p_odd_curves) {
        // OpenSSL strength-ordered default: sect571r1 first (§6.3.3's
        // 0.2 % sect571r1 negotiations come from these).
        vec![
            NamedGroup::SECT571R1,
            NamedGroup::SECP521R1,
            NamedGroup::SECP384R1,
            NamedGroup::SECP256R1,
        ]
    } else if bern(rng, p.p_x25519) {
        vec![
            NamedGroup::X25519,
            NamedGroup::SECP256R1,
            NamedGroup::SECP384R1,
        ]
    } else if bern(rng, 0.105) {
        // A security-maximalist pocket prefers P-384 (the paper's 8.6 %
        // secp384r1 share).
        vec![NamedGroup::SECP384R1, NamedGroup::SECP256R1]
    } else {
        vec![NamedGroup::SECP256R1, NamedGroup::SECP384R1]
    };

    let tls13 = if modern && bern(rng, p.p_tls13_exp) {
        Some(ProtocolVersion::Tls13Experiment(2))
    } else if modern && bern(rng, p.p_tls13_d18) {
        Some(ProtocolVersion::Tls13Draft(18))
    } else {
        None
    };

    let mut preference = preference;
    if tls13.is_some() {
        let mut pref = vec![
            CipherSuite(0x1301),
            CipherSuite(0x1302),
            CipherSuite(0x1303),
        ];
        pref.append(&mut preference);
        preference = pref;
    }

    // An unpatched OpenSSL 1.0.1 always has the heartbeat extension
    // compiled in — vulnerability implies heartbeat support.
    let heartbleed_vulnerable = bern(rng, p.p_hb_vuln);
    let heartbeat = bern(rng, p.p_heartbeat);

    let quirk = if bern(rng, p.p_quirk_rc4) {
        Quirk::PreferRc4
    } else if bern(rng, p.p_quirk_3des) {
        Quirk::Prefer3Des
    } else {
        Quirk::None
    };

    ServerProfile {
        cohort: cohort_name,
        max_version,
        min_version,
        tls13,
        preference,
        prefer_server_order: !bern(rng, p.p_client_order),
        curves,
        heartbeat: heartbeat || heartbleed_vulnerable,
        heartbleed_vulnerable,
        quirk,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn frac(cohort: Cohort, date: Date, n: usize, pred: impl Fn(&ServerProfile) -> bool) -> f64 {
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
        let hits = (0..n)
            .filter(|_| pred(&sample(cohort, date, &mut rng)))
            .count();
        hits as f64 / n as f64
    }

    #[test]
    fn major_web_modernises() {
        // 2012: no AEAD-first servers; 2016: nearly all.
        let early = frac(Cohort::MajorWeb, Date::ymd(2012, 6, 1), 2000, |p| {
            p.preference[0].is_aead()
        });
        let late = frac(Cohort::MajorWeb, Date::ymd(2016, 6, 1), 2000, |p| {
            p.preference
                .iter()
                .find(|c| !c.is_tls13())
                .unwrap()
                .is_aead()
        });
        assert!(early < 0.01, "early {early}");
        assert!(late > 0.90, "late {late}");
    }

    #[test]
    fn rc4_pinning_rises_and_falls() {
        let pre_beast = frac(Cohort::MajorWeb, Date::ymd(2011, 8, 1), 2000, |p| {
            p.preference[0].is_rc4()
        });
        let beast_era = frac(Cohort::MajorWeb, Date::ymd(2012, 12, 1), 2000, |p| {
            p.preference[0].is_rc4()
        });
        let late = frac(Cohort::MajorWeb, Date::ymd(2017, 1, 1), 2000, |p| {
            p.preference[0].is_rc4()
        });
        assert!(pre_beast < 0.01, "pre {pre_beast}");
        assert!(beast_era > 0.5, "beast {beast_era}");
        assert!(late < 0.03, "late {late}");
    }

    #[test]
    fn ssl3_long_tail() {
        let lt_2015 = frac(Cohort::LongTailWeb, Date::ymd(2015, 9, 1), 4000, |p| {
            p.supports_ssl3()
        });
        let lt_2018 = frac(Cohort::LongTailWeb, Date::ymd(2018, 5, 1), 4000, |p| {
            p.supports_ssl3()
        });
        assert!(lt_2015 > 0.45 && lt_2015 < 0.65, "2015 {lt_2015}");
        assert!(lt_2018 > 0.18 && lt_2018 < 0.38, "2018 {lt_2018}");
        assert!(lt_2018 < lt_2015);
    }

    #[test]
    fn heartbleed_patching_is_fast_with_long_tail() {
        let c = Cohort::MajorWeb;
        let before = frac(c, Date::ymd(2014, 4, 1), 4000, |p| p.heartbleed_vulnerable);
        let month = frac(c, Date::ymd(2014, 5, 7), 4000, |p| p.heartbleed_vulnerable);
        let years = frac(c, Date::ymd(2018, 5, 1), 4000, |p| p.heartbleed_vulnerable);
        assert!(before > 0.25, "before {before}");
        assert!(month < 0.05, "month {month}");
        assert!(years > 0.0003 && years < 0.02, "years {years}");
    }

    #[test]
    fn snowden_moves_fs_first() {
        let pre = frac(Cohort::MajorWeb, Date::ymd(2013, 5, 1), 2000, |p| {
            p.preference[0].is_forward_secret()
        });
        let post = frac(Cohort::MajorWeb, Date::ymd(2014, 9, 1), 2000, |p| {
            p.preference
                .iter()
                .find(|c| !c.is_tls13())
                .unwrap()
                .is_forward_secret()
        });
        assert!(post > pre + 0.3, "pre {pre} post {post}");
    }

    #[test]
    fn tls13_lives_in_cdns_only_late() {
        assert_eq!(
            frac(Cohort::Cdn, Date::ymd(2016, 6, 1), 1000, |p| p
                .tls13
                .is_some()),
            0.0
        );
        let apr18 = frac(Cohort::Cdn, Date::ymd(2018, 4, 1), 3000, |p| {
            p.tls13 == Some(ProtocolVersion::Tls13Experiment(2))
        });
        assert!(apr18 > 0.3, "apr18 {apr18}");
        assert_eq!(
            frac(Cohort::Iot, Date::ymd(2018, 4, 1), 500, |p| p
                .tls13
                .is_some()),
            0.0
        );
    }

    #[test]
    fn iot_never_modernises() {
        let d = Date::ymd(2018, 4, 1);
        assert_eq!(
            frac(Cohort::Iot, d, 1000, |p| p.preference[0].is_aead()),
            0.0
        );
        let tls10 = frac(Cohort::Iot, d, 1000, |p| {
            p.max_version == ProtocolVersion::Tls10
        });
        assert!(tls10 > 0.7, "tls10 {tls10}");
    }

    #[test]
    fn x25519_rises_after_2016() {
        let pre = frac(Cohort::Cdn, Date::ymd(2015, 6, 1), 1000, |p| {
            p.curves[0] == NamedGroup::X25519
        });
        let post = frac(Cohort::Cdn, Date::ymd(2018, 1, 1), 1000, |p| {
            p.curves[0] == NamedGroup::X25519
        });
        assert_eq!(pre, 0.0);
        assert!(post > 0.5, "post {post}");
    }

    #[test]
    fn quirks_are_rare_but_present() {
        let q = frac(Cohort::Enterprise, Date::ymd(2016, 1, 1), 20_000, |p| {
            p.quirk != Quirk::None
        });
        assert!(q > 0.003 && q < 0.05, "quirk rate {q}");
    }

    #[test]
    fn params_probabilities_in_range() {
        for cohort in [
            Cohort::MajorWeb,
            Cohort::Cdn,
            Cohort::LongTailWeb,
            Cohort::Enterprise,
            Cohort::Iot,
            Cohort::Mail,
        ] {
            for year in 2011..=2018 {
                for month in [1u8, 7] {
                    let p = params(cohort, Date::ymd(year, month, 15));
                    for (name, v) in [
                        ("tls12", p.p_tls12),
                        ("ssl3", p.p_ssl3),
                        ("modern", p.p_modern),
                        ("rc4", p.p_rc4_pin),
                        ("fs", p.p_fs),
                        ("x25519", p.p_x25519),
                        ("hb", p.p_heartbeat),
                        ("vuln", p.p_hb_vuln),
                    ] {
                        assert!(
                            (0.0..=1.0).contains(&v),
                            "{cohort:?} {year}-{month} {name} = {v}"
                        );
                    }
                }
            }
        }
    }
}
