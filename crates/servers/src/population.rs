//! The simulated server side of the Internet.
//!
//! Two sampling views, matching the two datasets of the paper:
//!
//! * [`ServerPopulation::sample_for_traffic`] — weighted the way *user
//!   traffic* is (Notary view): major properties and CDNs dominate.
//! * [`ServerPopulation::sample_host`] — weighted the way the *IPv4
//!   address space* is (Censys view): the long tail dominates.
//!
//! Destinations also cover the specific endpoints the paper names:
//! GRID movers, Nagios hosts (including the SSL 2 and export oddities),
//! the Interwise export-downgrade servers, GOST endpoints, the
//! RC4-preferring bank, and Splunk indexers doing static ECDH.

use rand::rngs::SmallRng;
use rand::RngExt;
use tlscope_chron::Date;
use tlscope_wire::{CipherSuite, NamedGroup, ProtocolVersion};

use crate::cohorts::{sample, Cohort};
use crate::profile::{preference, Quirk, ServerProfile};
use crate::ramps::ramp;

/// Where a connection is headed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Destination {
    /// Ordinary web browsing: cohort drawn from the traffic mix.
    Web,
    /// Mail/XMPP/IMAP submission.
    Mail,
    /// A GRID data-transfer endpoint (§6.1).
    Grid,
    /// A Nagios-monitored service (§5.5, §6.1, §6.2).
    Nagios,
    /// The university servers still speaking SSL 2 (§5.1).
    Sslv2Relic,
    /// Interwise conferencing (§5.5): answers RC4 with export-RC4.
    Interwise,
    /// Out-of-spec GOST server (§7.3).
    Gost,
    /// RC4-preferring bank (§5.3's bankmellat.ir).
    BankLegacy,
    /// Splunk indexer on port 9997 doing static ECDH (§6.3.1).
    Splunk,
    /// Enterprise appliance traffic.
    Enterprise,
    /// IoT/embedded device endpoints.
    Iot,
}

/// Weighted cohort mix at a date; weights need not be normalised.
fn web_traffic_mix(date: Date) -> [(Cohort, f64); 5] {
    // CDN termination grows over the window at the long tail's expense.
    let cdn = 0.06 + 0.20 * ramp(date, Date::ymd(2012, 1, 1), Date::ymd(2018, 1, 1));
    [
        (Cohort::MajorWeb, 0.47),
        (Cohort::Cdn, cdn),
        (Cohort::LongTailWeb, 0.30 - 0.5 * cdn),
        (Cohort::Enterprise, 0.08),
        (Cohort::Iot, 0.015),
    ]
}

/// Host-space mix for IPv4 scans (long tail dominates).
const HOST_MIX: [(Cohort, f64); 6] = [
    (Cohort::MajorWeb, 0.02),
    (Cohort::Cdn, 0.05),
    (Cohort::LongTailWeb, 0.60),
    (Cohort::Enterprise, 0.15),
    (Cohort::Iot, 0.13),
    (Cohort::Mail, 0.05),
];

fn pick_weighted(rng: &mut SmallRng, mix: &[(Cohort, f64)]) -> Cohort {
    let total: f64 = mix.iter().map(|(_, w)| w).sum();
    let mut draw = rng.random::<f64>() * total;
    for (c, w) in mix {
        if draw < *w {
            return *c;
        }
        draw -= w;
    }
    mix.last().unwrap().0
}

/// The simulated server population.
#[derive(Debug, Default, Clone)]
pub struct ServerPopulation;

impl ServerPopulation {
    /// New population model.
    pub fn new() -> Self {
        ServerPopulation
    }

    /// Sample the server behind a user connection.
    pub fn sample_for_traffic(
        &self,
        dest: Destination,
        date: Date,
        rng: &mut SmallRng,
    ) -> ServerProfile {
        match dest {
            Destination::Web => sample(pick_weighted(rng, &web_traffic_mix(date)), date, rng),
            Destination::Mail => sample(Cohort::Mail, date, rng),
            Destination::Enterprise => sample(Cohort::Enterprise, date, rng),
            Destination::Iot => sample(Cohort::Iot, date, rng),
            Destination::Grid => Self::grid_server(),
            Destination::Nagios => {
                if rng.random::<f64>() < 0.04 {
                    Self::nagios_nullnull_server()
                } else {
                    Self::nagios_server()
                }
            }
            Destination::Sslv2Relic => Self::sslv2_relic(),
            Destination::Interwise => Self::interwise_server(),
            Destination::Gost => Self::gost_server(),
            Destination::BankLegacy => Self::bank_legacy(date, rng),
            Destination::Splunk => Self::splunk_indexer(),
        }
    }

    /// [`ServerPopulation::sample_for_traffic`] with the cohort
    /// parameter curves served from a memo. Draws the identical RNG
    /// sequence — the generator hot path samples thousands of
    /// profiles per calendar day and the curves are pure in
    /// `(cohort, date)`.
    pub fn sample_for_traffic_cached(
        &self,
        cache: &mut crate::cohorts::ParamsCache,
        dest: Destination,
        date: Date,
        rng: &mut SmallRng,
    ) -> ServerProfile {
        use crate::cohorts::sample_cached;
        match dest {
            Destination::Web => {
                sample_cached(cache, pick_weighted(rng, &web_traffic_mix(date)), date, rng)
            }
            Destination::Mail => sample_cached(cache, Cohort::Mail, date, rng),
            Destination::Enterprise => sample_cached(cache, Cohort::Enterprise, date, rng),
            Destination::Iot => sample_cached(cache, Cohort::Iot, date, rng),
            Destination::BankLegacy => {
                Self::bank_legacy_profile(sample_cached(cache, Cohort::Enterprise, date, rng))
            }
            _ => self.sample_for_traffic(dest, date, rng),
        }
    }

    /// Sample a random responsive IPv4 host (Censys view).
    pub fn sample_host(&self, date: Date, rng: &mut SmallRng) -> ServerProfile {
        sample(pick_weighted(rng, &HOST_MIX), date, rng)
    }

    /// GRID endpoint: picks NULL when offered — TLS is only there for
    /// mutual authentication (§6.1).
    pub fn grid_server() -> ServerProfile {
        ServerProfile {
            cohort: "grid",
            max_version: ProtocolVersion::Tls12,
            min_version: ProtocolVersion::Tls10,
            tls13: None,
            preference: preference::grid(),
            prefer_server_order: true,
            curves: vec![NamedGroup::SECP256R1],
            heartbeat: true,
            heartbleed_vulnerable: false,
            quirk: Quirk::PreferNull,
        }
    }

    /// Nagios-monitored endpoint: anonymous DH (plus the fully-null
    /// suite), with its own authentication afterwards (§6.2).
    pub fn nagios_server() -> ServerProfile {
        ServerProfile {
            cohort: "nagios",
            max_version: ProtocolVersion::Tls12,
            min_version: ProtocolVersion::Ssl3,
            tls13: None,
            preference: preference::nagios(),
            prefer_server_order: true,
            curves: vec![],
            heartbeat: false,
            heartbleed_vulnerable: false,
            quirk: Quirk::PreferAnon,
        }
    }

    /// The rare Nagios deployments that negotiate the fully-null suite
    /// `TLS_NULL_WITH_NULL_NULL` (§6.1: 198.3K connections lifetime).
    pub fn nagios_nullnull_server() -> ServerProfile {
        let mut p = Self::nagios_server();
        p.cohort = "nagios-nullnull";
        let mut pref = vec![CipherSuite(0x0000)];
        pref.extend(p.preference);
        p.preference = pref;
        p.quirk = Quirk::None;
        p
    }

    /// The single university's servers that still answer SSL 2 (§5.1) —
    /// on the Nagios port, per the paper.
    pub fn sslv2_relic() -> ServerProfile {
        ServerProfile {
            cohort: "sslv2-relic",
            max_version: ProtocolVersion::Tls10,
            min_version: ProtocolVersion::Ssl2,
            tls13: None,
            preference: preference::legacy_appliance(),
            prefer_server_order: true,
            curves: vec![],
            heartbeat: false,
            heartbleed_vulnerable: false,
            quirk: Quirk::None,
        }
    }

    /// Interwise conferencing server (§5.5): answers an RC4_128 offer
    /// with EXP_RC4_40_MD5, against the specification.
    pub fn interwise_server() -> ServerProfile {
        ServerProfile {
            cohort: "interwise",
            max_version: ProtocolVersion::Tls10,
            min_version: ProtocolVersion::Ssl3,
            tls13: None,
            preference: vec![
                CipherSuite(0x0005),
                CipherSuite(0x0004),
                CipherSuite(0x000a),
                CipherSuite(0x0003), // the export suite it downgrades to
            ],
            prefer_server_order: true,
            curves: vec![],
            heartbeat: false,
            heartbleed_vulnerable: false,
            quirk: Quirk::DowngradeRc4ToExport,
        }
    }

    /// A GOST-only endpoint that chooses its national suite regardless
    /// of the offer (§7.3).
    pub fn gost_server() -> ServerProfile {
        ServerProfile {
            cohort: "gost",
            max_version: ProtocolVersion::Tls12,
            min_version: ProtocolVersion::Tls10,
            tls13: None,
            preference: vec![CipherSuite(0x0081), CipherSuite(0x0080)],
            prefer_server_order: true,
            curves: vec![],
            heartbeat: false,
            heartbleed_vulnerable: false,
            quirk: Quirk::ChooseUnoffered(CipherSuite(0x0081)),
        }
    }

    /// The RC4-preferring bank (§5.3): modern stack, but picks RC4 when
    /// offered; removing RC4 from the offer yields an AEAD suite.
    pub fn bank_legacy(date: Date, rng: &mut SmallRng) -> ServerProfile {
        Self::bank_legacy_profile(sample(Cohort::Enterprise, date, rng))
    }

    /// Overlay the bank's RC4 quirk on a sampled enterprise profile.
    fn bank_legacy_profile(mut p: ServerProfile) -> ServerProfile {
        p.cohort = "bank-legacy";
        p.preference = preference::modern();
        p.quirk = Quirk::PreferRc4;
        p
    }

    /// Splunk indexer on tcp/9997: static-ECDH server (§6.3.1's "ECDH
    /// nearly exclusively at Splunk servers on port 9997").
    pub fn splunk_indexer() -> ServerProfile {
        ServerProfile {
            cohort: "splunk",
            max_version: ProtocolVersion::Tls12,
            min_version: ProtocolVersion::Tls10,
            tls13: None,
            preference: vec![
                CipherSuite(0xc031), // ECDH_RSA_WITH_AES_128_GCM_SHA256
                CipherSuite(0xc02f),
                CipherSuite(0xc013),
                CipherSuite(0x002f),
            ],
            prefer_server_order: true,
            curves: vec![NamedGroup::SECP256R1],
            heartbeat: false,
            heartbleed_vulnerable: false,
            quirk: Quirk::None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn traffic_and_host_views_differ() {
        // Host view (Censys) must look much more legacy than the
        // traffic view (Notary): compare SSL 3 acceptance in 2015-09.
        let pop = ServerPopulation::new();
        let date = Date::ymd(2015, 9, 1);
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 4000;
        let traffic_ssl3 = (0..n)
            .filter(|_| {
                pop.sample_for_traffic(Destination::Web, date, &mut rng)
                    .supports_ssl3()
            })
            .count() as f64
            / n as f64;
        let host_ssl3 = (0..n)
            .filter(|_| pop.sample_host(date, &mut rng).supports_ssl3())
            .count() as f64
            / n as f64;
        assert!(
            host_ssl3 > traffic_ssl3 + 0.1,
            "host {host_ssl3} traffic {traffic_ssl3}"
        );
        // Censys anchor: ~45 % of hosts supported SSL 3 in Sep 2015.
        assert!(host_ssl3 > 0.33 && host_ssl3 < 0.60, "host {host_ssl3}");
    }

    #[test]
    fn censys_ssl3_2018_anchor() {
        let pop = ServerPopulation::new();
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 4000;
        let host_ssl3 = (0..n)
            .filter(|_| {
                pop.sample_host(Date::ymd(2018, 5, 1), &mut rng)
                    .supports_ssl3()
            })
            .count() as f64
            / n as f64;
        // "less than 25 % of servers support SSL 3" in May 2018.
        assert!(host_ssl3 < 0.30, "host {host_ssl3}");
        assert!(host_ssl3 > 0.10, "host {host_ssl3}");
    }

    #[test]
    fn special_destinations_have_their_quirks() {
        assert_eq!(ServerPopulation::grid_server().quirk, Quirk::PreferNull);
        assert_eq!(ServerPopulation::nagios_server().quirk, Quirk::PreferAnon);
        assert_eq!(
            ServerPopulation::interwise_server().quirk,
            Quirk::DowngradeRc4ToExport
        );
        assert!(matches!(
            ServerPopulation::gost_server().quirk,
            Quirk::ChooseUnoffered(_)
        ));
        assert_eq!(
            ServerPopulation::sslv2_relic().min_version,
            ProtocolVersion::Ssl2
        );
        // Splunk: static ECDH preferred.
        let splunk = ServerPopulation::splunk_indexer();
        assert!(matches!(
            splunk.preference[0].kx(),
            Some(tlscope_wire::Kx::Ecdh)
        ));
    }

    #[test]
    fn sampling_is_deterministic_under_seed() {
        let pop = ServerPopulation::new();
        let date = Date::ymd(2016, 3, 1);
        let a: Vec<_> = {
            let mut rng = SmallRng::seed_from_u64(77);
            (0..50)
                .map(|_| pop.sample_for_traffic(Destination::Web, date, &mut rng))
                .collect()
        };
        let b: Vec<_> = {
            let mut rng = SmallRng::seed_from_u64(77);
            (0..50)
                .map(|_| pop.sample_for_traffic(Destination::Web, date, &mut rng))
                .collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn web_mix_weights_stay_positive() {
        for year in 2012..=2018 {
            let mix = web_traffic_mix(Date::ymd(year, 6, 1));
            for (c, w) in mix {
                assert!(w > 0.0, "{c:?} weight {w} in {year}");
            }
        }
    }
}
