//! Small calendar-curve helpers used to model deployment evolution:
//! linear ramps between dates and exponential post-event decays.

use tlscope_chron::Date;

/// Linear ramp from 0 at `start` to 1 at `end`, clamped outside.
pub fn ramp(date: Date, start: Date, end: Date) -> f64 {
    debug_assert!(start < end);
    let span = (end - start) as f64;
    let pos = (date - start) as f64;
    (pos / span).clamp(0.0, 1.0)
}

/// 1 before `event`; exponential decay with the given half-life after,
/// down to `floor`.
pub fn decay_after(date: Date, event: Date, halflife_days: f64, floor: f64) -> f64 {
    if date <= event {
        return 1.0;
    }
    let age = (date - event) as f64;
    (0.5f64.powf(age / halflife_days)).max(floor)
}

/// Plateau curve: ramps up over `[up_start, up_end]`, holds, then ramps
/// down over `[down_start, down_end]`, leaving `tail` behind.
#[allow(clippy::too_many_arguments)]
pub fn plateau(
    date: Date,
    up_start: Date,
    up_end: Date,
    down_start: Date,
    down_end: Date,
    peak: f64,
    tail: f64,
) -> f64 {
    let up = ramp(date, up_start, up_end);
    let down = ramp(date, down_start, down_end);
    peak * up * (1.0 - down) + tail * down * up
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_endpoints() {
        let s = Date::ymd(2014, 1, 1);
        let e = Date::ymd(2014, 12, 31);
        assert_eq!(ramp(Date::ymd(2013, 6, 1), s, e), 0.0);
        assert_eq!(ramp(s, s, e), 0.0);
        assert_eq!(ramp(e, s, e), 1.0);
        assert_eq!(ramp(Date::ymd(2016, 1, 1), s, e), 1.0);
        let mid = ramp(Date::ymd(2014, 7, 1), s, e);
        assert!(mid > 0.45 && mid < 0.55);
    }

    #[test]
    fn decay_halves_per_halflife() {
        let ev = Date::ymd(2014, 4, 7);
        assert_eq!(decay_after(Date::ymd(2014, 1, 1), ev, 30.0, 0.0), 1.0);
        let one = decay_after(ev.add_days(30), ev, 30.0, 0.0);
        assert!((one - 0.5).abs() < 1e-9);
        let two = decay_after(ev.add_days(60), ev, 30.0, 0.0);
        assert!((two - 0.25).abs() < 1e-9);
        // Floor (the long tail): never below it.
        assert_eq!(decay_after(ev.add_days(10_000), ev, 30.0, 0.0032), 0.0032);
    }

    #[test]
    fn plateau_shape() {
        let d = |m: u8| Date::ymd(2013, m, 1);
        let f = |date| {
            plateau(
                date,
                Date::ymd(2012, 1, 1),
                Date::ymd(2012, 6, 1),
                Date::ymd(2013, 6, 1),
                Date::ymd(2015, 6, 1),
                0.6,
                0.02,
            )
        };
        assert_eq!(f(Date::ymd(2011, 1, 1)), 0.0);
        assert!((f(d(1)) - 0.6).abs() < 1e-9); // on the plateau
        assert!(f(Date::ymd(2014, 6, 1)) < 0.4); // declining
        let late = f(Date::ymd(2016, 1, 1));
        assert!((late - 0.02).abs() < 1e-9); // at the tail
    }
}
