//! # tlscope-servers
//!
//! The simulated server side of the Internet for the tlscope
//! reproduction of *Coming of Age* (IMC 2018): per-endpoint
//! [`ServerProfile`]s, a standards-faithful (and faithfully
//! out-of-spec, where the paper observed it) negotiation engine, and a
//! population model whose configuration mix evolves 2012–2018 along the
//! patch curves the paper measures.
//!
//! ```
//! use tlscope_servers::negotiate;
//! use tlscope_wire::{ClientHello, CipherSuite, ProtocolVersion, Extension};
//!
//! let profile = tlscope_servers::ServerProfile::baseline("demo");
//! let hello = ClientHello {
//!     legacy_version: ProtocolVersion::Tls12,
//!     random: [0; 32],
//!     session_id: vec![],
//!     cipher_suites: vec![CipherSuite(0xc02f), CipherSuite(0x000a)],
//!     compression_methods: vec![0],
//!     extensions: Some(vec![Extension::renegotiation_info()]),
//! };
//! let outcome = negotiate::respond(&profile, &hello, [0; 32]).unwrap();
//! assert!(outcome.cipher.is_aead());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cohorts;
pub mod negotiate;
pub mod population;
pub mod profile;
pub mod ramps;

pub use cohorts::{params, sample_cached, Cohort, CohortParams, ParamsCache};
pub use negotiate::{
    decide, respond, respond_facts, write_decision_into, ClientFacts, Decision, HandshakeFailure,
    Negotiated,
};
pub use population::{Destination, ServerPopulation};
pub use profile::{preference, Quirk, ServerProfile};
