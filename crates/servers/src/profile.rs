//! Server profiles: everything a simulated TLS endpoint needs to answer
//! a ClientHello.
//!
//! Profiles carry the configuration axes the paper's active scans
//! measure — version range (SSL 3 support, §5.1), cipher preference
//! order and server-vs-client preference (the "servers choosing CBC/RC4/
//! 3DES" Censys numbers), Heartbeat support and Heartbleed
//! vulnerability (§5.4) — plus the out-of-spec quirks the paper catches
//! in the wild (§5.5, §7.3).

use tlscope_wire::{CipherSuite, NamedGroup, ProtocolVersion};

/// Out-of-spec server behaviours observed in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quirk {
    /// Standards-compliant server.
    None,
    /// Chooses a suite the client never offered (the GOST and anonymous
    /// NULL servers of §7.3).
    ChooseUnoffered(CipherSuite),
    /// Interwise behaviour (§5.5): client offers `RSA_WITH_RC4_128_SHA`,
    /// server answers with `RSA_EXPORT_WITH_RC4_40_MD5`.
    DowngradeRc4ToExport,
    /// Chooses RC4 whenever offered, despite stronger common options
    /// (the bankmellat.ir case, §5.3).
    PreferRc4,
    /// Chooses a 3DES suite whenever offered despite stronger options
    /// (the long-tail servers behind the Censys 3DES numbers, §5.6).
    Prefer3Des,
    /// Chooses NULL encryption whenever offered (GRID endpoints, §6.1).
    PreferNull,
    /// Chooses anonymous suites whenever offered (Nagios, §6.2).
    PreferAnon,
}

/// A simulated server endpoint configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerProfile {
    /// Cohort label (for diagnostics and aggregation).
    pub cohort: &'static str,
    /// Highest classic protocol version supported.
    pub max_version: ProtocolVersion,
    /// Lowest protocol version accepted (SSL 3 support means
    /// `min_version <= Ssl3`).
    pub min_version: ProtocolVersion,
    /// TLS 1.3 (draft/experiment) version supported, if any. Negotiated
    /// only when the client advertises the same family member.
    pub tls13: Option<ProtocolVersion>,
    /// Server cipher preference, best first.
    pub preference: Vec<CipherSuite>,
    /// True: honour server order; false: honour client order.
    pub prefer_server_order: bool,
    /// Elliptic-curve groups the server can do ECDHE on.
    pub curves: Vec<NamedGroup>,
    /// Whether the server supports (and echoes) the Heartbeat extension.
    pub heartbeat: bool,
    /// Whether the server runs an unpatched OpenSSL 1.0.1 (Heartbleed).
    pub heartbleed_vulnerable: bool,
    /// Out-of-spec behaviour.
    pub quirk: Quirk,
}

impl ServerProfile {
    /// True when SSL 3 handshakes are accepted.
    pub fn supports_ssl3(&self) -> bool {
        self.min_version.rank() <= ProtocolVersion::Ssl3.rank()
    }

    /// Relative scan-flake rate for this server's cohort: the
    /// multiplier a scanner's transient-failure probability is scaled
    /// by when probing this host. Professionally operated fleets
    /// (major web properties, CDNs) flake less than baseline; embedded
    /// and relic boxes flake more; the long tail sits in between. Used
    /// by the active scanner's fault model — a reachability hook, not
    /// a handshake property, so it never affects negotiation.
    pub fn scan_flake_bias(&self) -> f64 {
        match self.cohort {
            "major-web" | "cdn" => 0.25,
            "iot" | "sslv2-relic" | "bank-legacy" => 3.0,
            "long-tail-web" | "grid" | "interwise" | "gost" => 1.5,
            _ => 1.0,
        }
    }

    /// A compliant, conservative default used as a base in tests.
    pub fn baseline(cohort: &'static str) -> Self {
        ServerProfile {
            cohort,
            max_version: ProtocolVersion::Tls12,
            min_version: ProtocolVersion::Tls10,
            tls13: None,
            preference: preference::modern(),
            prefer_server_order: true,
            curves: vec![NamedGroup::SECP256R1, NamedGroup::SECP384R1],
            heartbeat: false,
            heartbleed_vulnerable: false,
            quirk: Quirk::None,
        }
    }
}

/// Canned server preference lists, mirroring real deployment styles.
pub mod preference {
    use tlscope_wire::CipherSuite;

    fn v(ids: &[u16]) -> Vec<CipherSuite> {
        ids.iter().copied().map(CipherSuite).collect()
    }

    /// Modern 2015+ stack: ECDHE-AEAD first, CBC fallback, 3DES last.
    pub fn modern() -> Vec<CipherSuite> {
        v(&[
            0xc02f, 0xc02b, 0xc030, 0xc02c, 0xcca8, 0xcca9, 0x009e, 0x009c, 0xc027, 0xc013, 0xc014,
            0x003c, 0x002f, 0x0035, 0x000a,
        ])
    }

    /// Modern stack preferring 256-bit AES-GCM (security-posture
    /// configurations; the paper's Figure 9 shows AES-256-GCM carrying a
    /// steady minority share of negotiations).
    pub fn modern_aes256_first() -> Vec<CipherSuite> {
        v(&[
            0xc030, 0xc02c, 0xc02f, 0xc02b, 0x009f, 0x009d, 0x009e, 0x009c, 0xc028, 0xc014, 0xc027,
            0xc013, 0x0035, 0x002f, 0x000a,
        ])
    }

    /// Modern stack with x25519-era ChaCha20 preference (mobile-heavy
    /// properties, 2016+).
    pub fn modern_chacha_first() -> Vec<CipherSuite> {
        v(&[
            0xcca8, 0xcca9, 0xc02f, 0xc02b, 0xc030, 0xc02c, 0x009e, 0x009c, 0xc027, 0xc013, 0xc014,
            0x002f, 0x0035,
        ])
    }

    /// Pre-AEAD stack preferring CBC with RSA key transport first (the
    /// 2012 default — Figure 8's "more than 60 % of connections used
    /// non-forward-secret ciphers").
    pub fn cbc_era() -> Vec<CipherSuite> {
        v(&[
            0x002f, 0x0035, 0x0033, 0x0039, 0xc013, 0xc014, 0xc011, 0x0005, 0x0004, 0x000a, 0x0016,
        ])
    }

    /// Post-Snowden variant of [`cbc_era`]: ECDHE moved to the front for
    /// forward secrecy (§6.3.1).
    pub fn cbc_era_fs() -> Vec<CipherSuite> {
        v(&[
            0xc013, 0xc014, 0x0033, 0x0039, 0x002f, 0x0035, 0xc011, 0x0005, 0x0004, 0x000a, 0x0016,
        ])
    }

    /// DHE-first Apache-style configuration (the small DHE wedge of
    /// Figure 8).
    pub fn dhe_first() -> Vec<CipherSuite> {
        v(&[
            0x0033, 0x0039, 0x009e, 0x009f, 0xc013, 0xc014, 0x002f, 0x0035, 0x000a,
        ])
    }

    /// BEAST-mitigation configuration: RC4 pinned first (§2.2 — "server
    /// operators were encouraged to enforce the use of RC4 suites").
    pub fn rc4_first() -> Vec<CipherSuite> {
        v(&[
            0x0005, 0x0004, 0xc011, 0x002f, 0x0035, 0xc013, 0xc014, 0x0033, 0x0039, 0x000a,
        ])
    }

    /// RC4-first with ECDHE variants preferred (BEAST mitigation after a
    /// forward-secrecy pass).
    pub fn rc4_first_fs() -> Vec<CipherSuite> {
        v(&[
            0xc011, 0x0005, 0x0004, 0xc013, 0xc014, 0x002f, 0x0035, 0x0033, 0x0039, 0x000a,
        ])
    }

    /// Stale appliance: RC4 and 3DES only.
    pub fn legacy_appliance() -> Vec<CipherSuite> {
        v(&[0x0005, 0x0004, 0x000a, 0x0016])
    }

    /// Old CBC-only embedded stack.
    pub fn embedded() -> Vec<CipherSuite> {
        v(&[0x002f, 0x0035, 0x000a, 0x0005])
    }

    /// GRID endpoint: NULL first by design (§6.1).
    pub fn grid() -> Vec<CipherSuite> {
        v(&[0x0002, 0x0001, 0x002f, 0x0035])
    }

    /// Nagios endpoint: anonymous DH, with the export-anon and
    /// NULL_WITH_NULL_NULL oddities of §5.5/§6.1.
    pub fn nagios() -> Vec<CipherSuite> {
        v(&[0x0034, 0x003a, 0x0018, 0x001b, 0x0017, 0x0019, 0x0000])
    }

    /// Mail server (STARTTLS-era OpenSSL defaults).
    pub fn mail() -> Vec<CipherSuite> {
        v(&[
            0xc02f, 0xc02b, 0x009e, 0x009c, 0xc013, 0xc014, 0x002f, 0x0035, 0x000a, 0x0005,
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_compliant() {
        let p = ServerProfile::baseline("test");
        assert_eq!(p.quirk, Quirk::None);
        assert!(!p.supports_ssl3());
        assert!(p.preference.iter().all(|c| c.info().is_some()));
    }

    #[test]
    fn flake_bias_orders_cohorts_by_operational_quality() {
        let cdn = ServerProfile::baseline("cdn").scan_flake_bias();
        let base = ServerProfile::baseline("enterprise").scan_flake_bias();
        let tail = ServerProfile::baseline("long-tail-web").scan_flake_bias();
        let relic = ServerProfile::baseline("iot").scan_flake_bias();
        assert!(cdn < base && base < tail && tail < relic);
        assert_eq!(base, 1.0);
    }

    #[test]
    fn ssl3_support_follows_min_version() {
        let mut p = ServerProfile::baseline("test");
        p.min_version = ProtocolVersion::Ssl3;
        assert!(p.supports_ssl3());
        p.min_version = ProtocolVersion::Tls10;
        assert!(!p.supports_ssl3());
    }

    #[test]
    fn preference_lists_are_registered_and_shaped() {
        for (name, list) in [
            ("modern", preference::modern()),
            ("chacha", preference::modern_chacha_first()),
            ("cbc_era", preference::cbc_era()),
            ("cbc_era_fs", preference::cbc_era_fs()),
            ("dhe_first", preference::dhe_first()),
            ("rc4_first", preference::rc4_first()),
            ("rc4_first_fs", preference::rc4_first_fs()),
            ("legacy", preference::legacy_appliance()),
            ("embedded", preference::embedded()),
            ("grid", preference::grid()),
            ("nagios", preference::nagios()),
            ("mail", preference::mail()),
        ] {
            assert!(!list.is_empty(), "{name} empty");
            for c in &list {
                assert!(c.info().is_some(), "{name} has unregistered {c}");
            }
        }
        assert!(preference::modern()[0].is_aead());
        assert!(preference::rc4_first()[0].is_rc4());
        assert!(preference::grid()[0].is_null_encryption());
        assert!(preference::nagios()[0].is_anon());
        // 3DES sits last in the modern list (the Censys scan observation
        // that servers pick it "despite its placement at the bottom").
        assert!(preference::modern().last().unwrap().is_3des());
    }
}
