//! Civil-date and month arithmetic for longitudinal TLS measurement.
//!
//! Everything in the paper is bucketed by calendar month ("percent of
//! monthly connections"), and all attack/release timelines are civil
//! dates. This crate provides a tiny, dependency-free, proleptic-Gregorian
//! date library: [`Date`] for day-resolution timelines and [`Month`] for
//! the aggregation buckets.
//!
//! The day-number conversion uses Howard Hinnant's `days_from_civil`
//! algorithm, which is exact over the entire i32 year range; we only ever
//! exercise 1995–2030.
//!
//! # Examples
//!
//! ```
//! use tlscope_chron::{Date, Month};
//!
//! let heartbleed = Date::new(2014, 4, 7).unwrap();
//! let poodle = Date::new(2014, 10, 14).unwrap();
//! assert_eq!(poodle - heartbleed, 190);
//! assert_eq!(heartbleed.month(), Month::new(2014, 4).unwrap());
//!
//! // Iterate the paper's measurement window month by month.
//! let window: Vec<Month> = Month::new(2012, 2).unwrap()
//!     .iter_through(Month::new(2012, 5).unwrap())
//!     .collect();
//! assert_eq!(window.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::fmt;
use core::str::FromStr;

/// Errors produced when constructing or parsing dates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DateError {
    /// Month outside 1..=12.
    BadMonth(u8),
    /// Day outside the valid range for the given year/month.
    BadDay(u8),
    /// A string did not match the expected `YYYY-MM-DD` / `YYYY-MM` layout.
    BadFormat,
}

impl fmt::Display for DateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DateError::BadMonth(m) => write!(f, "month {m} out of range 1..=12"),
            DateError::BadDay(d) => write!(f, "day {d} invalid for this year/month"),
            DateError::BadFormat => write!(f, "expected YYYY-MM-DD or YYYY-MM"),
        }
    }
}

impl std::error::Error for DateError {}

/// True if `year` is a leap year in the Gregorian calendar.
pub fn is_leap_year(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

/// Number of days in the given month of the given year.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// A proleptic-Gregorian civil date with day resolution.
///
/// Ordered chronologically; subtraction yields a signed day count.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    year: i16,
    month: u8,
    day: u8,
}

impl Date {
    /// Construct a date, validating the month and day.
    pub fn new(year: i32, month: u8, day: u8) -> Result<Self, DateError> {
        if !(1..=12).contains(&month) {
            return Err(DateError::BadMonth(month));
        }
        if day == 0 || day > days_in_month(year, month) {
            return Err(DateError::BadDay(day));
        }
        Ok(Date {
            year: year as i16,
            month,
            day,
        })
    }

    /// Construct a date from `(year, month, day)` known to be valid.
    ///
    /// # Panics
    /// Panics if the triple is not a valid calendar date. Intended for
    /// literals in static tables (attack timelines, release dates).
    pub const fn ymd(year: i32, month: u8, day: u8) -> Self {
        // Validation mirrors `new` but stays const-evaluable.
        assert!(month >= 1 && month <= 12, "month out of range");
        let dim = match month {
            1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
            4 | 6 | 9 | 11 => 30,
            _ => {
                if year % 4 == 0 && (year % 100 != 0 || year % 400 == 0) {
                    29
                } else {
                    28
                }
            }
        };
        assert!(day >= 1 && day <= dim, "day out of range");
        Date {
            year: year as i16,
            month,
            day,
        }
    }

    /// Year component.
    pub fn year(self) -> i32 {
        self.year as i32
    }

    /// Month component, 1..=12.
    pub fn month_of_year(self) -> u8 {
        self.month
    }

    /// Day-of-month component, 1..=31.
    pub fn day(self) -> u8 {
        self.day
    }

    /// The month bucket containing this date.
    pub fn month(self) -> Month {
        Month {
            year: self.year,
            month: self.month,
        }
    }

    /// Days since the civil epoch 1970-01-01 (negative before it).
    ///
    /// Hinnant's `days_from_civil`.
    pub fn to_epoch_days(self) -> i64 {
        let y = self.year as i64 - i64::from(self.month <= 2);
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let m = self.month as i64;
        let d = self.day as i64;
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        era * 146097 + doe - 719468
    }

    /// Inverse of [`Date::to_epoch_days`] (Hinnant's `civil_from_days`).
    pub fn from_epoch_days(days: i64) -> Self {
        let z = days + 719468;
        let era = if z >= 0 { z } else { z - 146096 } / 146097;
        let doe = z - era * 146097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
        Date {
            year: (y + i64::from(m <= 2)) as i16,
            month: m,
            day: d,
        }
    }

    /// This date shifted by a signed number of days.
    pub fn add_days(self, days: i64) -> Self {
        Self::from_epoch_days(self.to_epoch_days() + days)
    }

    /// Day of week, 0 = Monday .. 6 = Sunday (ISO).
    pub fn weekday(self) -> u8 {
        // 1970-01-01 was a Thursday (ISO index 3).
        ((self.to_epoch_days() + 3).rem_euclid(7)) as u8
    }
}

impl core::ops::Sub for Date {
    type Output = i64;

    /// Signed day difference `self - other`.
    fn sub(self, other: Date) -> i64 {
        self.to_epoch_days() - other.to_epoch_days()
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

impl fmt::Debug for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for Date {
    type Err = DateError;

    /// Parse `YYYY-MM-DD`.
    fn from_str(s: &str) -> Result<Self, DateError> {
        let mut it = s.split('-');
        let y = it
            .next()
            .and_then(|p| p.parse::<i32>().ok())
            .ok_or(DateError::BadFormat)?;
        let m = it
            .next()
            .and_then(|p| p.parse::<u8>().ok())
            .ok_or(DateError::BadFormat)?;
        let d = it
            .next()
            .and_then(|p| p.parse::<u8>().ok())
            .ok_or(DateError::BadFormat)?;
        if it.next().is_some() {
            return Err(DateError::BadFormat);
        }
        Date::new(y, m, d)
    }
}

/// A calendar month, the aggregation bucket used throughout the paper.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Month {
    year: i16,
    month: u8,
}

impl Month {
    /// Construct a month bucket, validating the month number.
    pub fn new(year: i32, month: u8) -> Result<Self, DateError> {
        if !(1..=12).contains(&month) {
            return Err(DateError::BadMonth(month));
        }
        Ok(Month {
            year: year as i16,
            month,
        })
    }

    /// Const constructor for static tables.
    ///
    /// # Panics
    /// Panics if `month` is outside 1..=12.
    pub const fn ym(year: i32, month: u8) -> Self {
        assert!(month >= 1 && month <= 12, "month out of range");
        Month {
            year: year as i16,
            month,
        }
    }

    /// Year component.
    pub fn year(self) -> i32 {
        self.year as i32
    }

    /// Month number, 1..=12.
    pub fn month_of_year(self) -> u8 {
        self.month
    }

    /// First day of this month.
    pub fn first_day(self) -> Date {
        Date {
            year: self.year,
            month: self.month,
            day: 1,
        }
    }

    /// Last day of this month.
    pub fn last_day(self) -> Date {
        Date {
            year: self.year,
            month: self.month,
            day: days_in_month(self.year as i32, self.month),
        }
    }

    /// Number of days in this month.
    pub fn len_days(self) -> u8 {
        days_in_month(self.year as i32, self.month)
    }

    /// Months since year 0 month 1; a convenient linear index.
    pub fn index(self) -> i32 {
        self.year as i32 * 12 + (self.month as i32 - 1)
    }

    /// The month `n` steps after (`n` may be negative) this one.
    pub fn add_months(self, n: i32) -> Self {
        let idx = self.index() + n;
        Month {
            year: idx.div_euclid(12) as i16,
            month: (idx.rem_euclid(12) + 1) as u8,
        }
    }

    /// The following month.
    pub fn next(self) -> Self {
        self.add_months(1)
    }

    /// The preceding month.
    pub fn prev(self) -> Self {
        self.add_months(-1)
    }

    /// Signed month difference `self - other`.
    pub fn months_since(self, other: Month) -> i32 {
        self.index() - other.index()
    }

    /// Inclusive iterator from `self` through `end`.
    ///
    /// Empty if `end < self`.
    pub fn iter_through(self, end: Month) -> MonthRange {
        MonthRange {
            next: self,
            end,
            done: end < self,
        }
    }

    /// Fraction of the way through this month a given date falls,
    /// in `[0, 1)`. Useful for interpolating monthly model curves.
    pub fn fraction_of(self, date: Date) -> f64 {
        debug_assert_eq!(date.month(), self);
        f64::from(date.day() - 1) / f64::from(self.len_days())
    }
}

impl fmt::Display for Month {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}", self.year, self.month)
    }
}

impl fmt::Debug for Month {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for Month {
    type Err = DateError;

    /// Parse `YYYY-MM`.
    fn from_str(s: &str) -> Result<Self, DateError> {
        let mut it = s.split('-');
        let y = it
            .next()
            .and_then(|p| p.parse::<i32>().ok())
            .ok_or(DateError::BadFormat)?;
        let m = it
            .next()
            .and_then(|p| p.parse::<u8>().ok())
            .ok_or(DateError::BadFormat)?;
        if it.next().is_some() {
            return Err(DateError::BadFormat);
        }
        Month::new(y, m)
    }
}

/// Inclusive month-range iterator produced by [`Month::iter_through`].
#[derive(Debug, Clone)]
pub struct MonthRange {
    next: Month,
    end: Month,
    done: bool,
}

impl Iterator for MonthRange {
    type Item = Month;

    fn next(&mut self) -> Option<Month> {
        if self.done {
            return None;
        }
        let cur = self.next;
        if cur == self.end {
            self.done = true;
        } else {
            self.next = cur.next();
        }
        Some(cur)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.done {
            (0, Some(0))
        } else {
            let n = (self.end.months_since(self.next) + 1) as usize;
            (n, Some(n))
        }
    }
}

impl ExactSizeIterator for MonthRange {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_roundtrip_known_values() {
        assert_eq!(Date::ymd(1970, 1, 1).to_epoch_days(), 0);
        assert_eq!(Date::ymd(1970, 1, 2).to_epoch_days(), 1);
        assert_eq!(Date::ymd(1969, 12, 31).to_epoch_days(), -1);
        assert_eq!(Date::ymd(2000, 3, 1).to_epoch_days(), 11017);
        assert_eq!(Date::from_epoch_days(11017), Date::ymd(2000, 3, 1));
    }

    #[test]
    fn leap_years() {
        assert!(is_leap_year(2012));
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(!is_leap_year(2018));
        assert_eq!(days_in_month(2012, 2), 29);
        assert_eq!(days_in_month(2018, 2), 28);
    }

    #[test]
    fn date_validation() {
        assert!(Date::new(2018, 2, 29).is_err());
        assert!(Date::new(2018, 13, 1).is_err());
        assert!(Date::new(2018, 0, 1).is_err());
        assert!(Date::new(2018, 6, 31).is_err());
        assert!(Date::new(2016, 2, 29).is_ok());
    }

    #[test]
    fn date_ordering_and_subtraction() {
        let a = Date::ymd(2013, 3, 12); // first RC4 attack
        let b = Date::ymd(2014, 4, 7); // Heartbleed disclosure
        assert!(a < b);
        assert_eq!(b - a, 391);
        assert_eq!(a - b, -391);
        assert_eq!(a.add_days(391), b);
    }

    #[test]
    fn weekday() {
        // 1970-01-01 was a Thursday.
        assert_eq!(Date::ymd(1970, 1, 1).weekday(), 3);
        // 2018-10-31 (IMC'18 start) was a Wednesday.
        assert_eq!(Date::ymd(2018, 10, 31).weekday(), 2);
    }

    #[test]
    fn month_arithmetic() {
        let m = Month::ym(2012, 2);
        assert_eq!(m.next(), Month::ym(2012, 3));
        assert_eq!(Month::ym(2012, 12).next(), Month::ym(2013, 1));
        assert_eq!(Month::ym(2013, 1).prev(), Month::ym(2012, 12));
        assert_eq!(m.add_months(25), Month::ym(2014, 3));
        assert_eq!(Month::ym(2018, 3).months_since(m), 73);
    }

    #[test]
    fn month_range_covers_study_window() {
        // The Notary window: Feb 2012 through Mar 2018 inclusive.
        let months: Vec<Month> = Month::ym(2012, 2)
            .iter_through(Month::ym(2018, 3))
            .collect();
        assert_eq!(months.len(), 74);
        assert_eq!(months[0], Month::ym(2012, 2));
        assert_eq!(*months.last().unwrap(), Month::ym(2018, 3));
    }

    #[test]
    fn month_range_empty_when_reversed() {
        let mut it = Month::ym(2018, 3).iter_through(Month::ym(2012, 2));
        assert_eq!(it.next(), None);
        assert_eq!(it.len(), 0);
    }

    #[test]
    fn month_range_single() {
        let v: Vec<_> = Month::ym(2015, 7)
            .iter_through(Month::ym(2015, 7))
            .collect();
        assert_eq!(v, vec![Month::ym(2015, 7)]);
    }

    #[test]
    fn parsing() {
        assert_eq!("2014-04-07".parse::<Date>().unwrap(), Date::ymd(2014, 4, 7));
        assert_eq!("2015-08".parse::<Month>().unwrap(), Month::ym(2015, 8));
        assert!("2014-04-07-x".parse::<Date>().is_err());
        assert!("2014/04/07".parse::<Date>().is_err());
        assert!("2014-04".parse::<Date>().is_err());
        assert!("2014".parse::<Month>().is_err());
    }

    #[test]
    fn display() {
        assert_eq!(Date::ymd(2014, 4, 7).to_string(), "2014-04-07");
        assert_eq!(Month::ym(2012, 2).to_string(), "2012-02");
    }

    #[test]
    fn month_boundaries() {
        let m = Month::ym(2016, 2);
        assert_eq!(m.first_day(), Date::ymd(2016, 2, 1));
        assert_eq!(m.last_day(), Date::ymd(2016, 2, 29));
        assert_eq!(m.len_days(), 29);
    }

    #[test]
    fn fraction_of_month() {
        let m = Month::ym(2018, 1);
        assert_eq!(m.fraction_of(Date::ymd(2018, 1, 1)), 0.0);
        assert!(m.fraction_of(Date::ymd(2018, 1, 31)) < 1.0);
    }
}
