//! Sweeps: probing a host sample and aggregating a scan snapshot.
//!
//! Each sweep draws `hosts` responsive servers from the population's
//! host-space view (the Censys IPv4 perspective) and runs every probe
//! against each. The snapshot carries exactly the per-scan statistics
//! the paper quotes: SSL 3 support, what servers choose from a
//! 2015-Chrome offer (CBC / RC4 / 3DES / AEAD), export support,
//! Heartbeat support, and residual Heartbleed vulnerability.
//!
//! ## Determinism and sharding
//!
//! Host sampling is *counter-based*: host `i` of a sweep draws its
//! profile from a private RNG stream derived by SplitMix64 from
//! `(seed, date, i)` — the same construction as the fault injector's
//! outage windows. No host's draw depends on any other host's, so a
//! sweep can be split across any number of workers at any chunk
//! boundary and, because [`ScanSnapshot::merge`] is a commutative
//! integer sum, the sharded result is bit-identical to the serial one.
//!
//! ## Fault model and the retry layer
//!
//! Real IPv4-wide sweeps lose probes constantly — unanswered SYNs,
//! handshake timeouts, flaky hosts, machines that are simply off.
//! [`ScanFaults`] injects those losses deterministically (every draw
//! is a pure function of `(seed, date, host_index, attempt)`), and the
//! sweep hot loop answers with a capped retry budget
//! ([`MAX_PROBE_ATTEMPTS`]): transient failures are retried, exhausted
//! hosts are counted as `hosts_dropped`, timed-out probes as
//! `probes_timed_out`. Because retry draws are keyed by attempt
//! number, the faulted sweep remains bit-identical across any shard
//! boundary.
//!
//! ## Worker death
//!
//! Every chunk of work runs behind a panic boundary and commits its
//! accounting only when it completes: a panicking chunk is recorded as
//! dropped in full, the worker retires, and the surviving workers'
//! partials still merge — a dead worker costs its in-flight chunk,
//! never the sweep (the `ingest_parallel` pattern from the passive
//! pipeline).

use std::ops::Range;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlscope_chron::Date;
use tlscope_servers::{negotiate, ServerPopulation, ServerProfile};

use crate::faults::{ScanFaults, MAX_PROBE_ATTEMPTS};
use crate::metrics::ScanMetrics;
use crate::probe::ProbeSet;

/// Hosts claimed per work-queue fetch in a sharded sweep: small enough
/// to balance the tail, large enough that the atomic is cold. Also the
/// unit of loss when a worker dies: accounting commits per chunk, so a
/// panic costs exactly the in-flight chunk.
const SHARD_CHUNK: u64 = 512;

/// Results of one full sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanSnapshot {
    /// Sweep date.
    pub date: Date,
    /// Hosts probed.
    pub hosts: u64,
    /// Hosts accepting the SSL3-only probe.
    pub ssl3_supported: u64,
    /// Hosts answering the 2015-Chrome probe at all.
    pub answered: u64,
    /// ... choosing an AEAD suite from it.
    pub chose_aead: u64,
    /// ... choosing a CBC suite (§5.2: 54 % → 35 %).
    pub chose_cbc: u64,
    /// ... choosing RC4 despite stronger offers (§5.3: 11.2 % → 3.4 %).
    pub chose_rc4: u64,
    /// ... choosing 3DES from the bottom of the list (§5.6: 0.54 % →
    /// 0.25 %).
    pub chose_3des: u64,
    /// ... negotiating TLS 1.2 with the probe.
    pub chose_tls12: u64,
    /// Hosts accepting the export-only probe.
    pub export_supported: u64,
    /// Hosts echoing the Heartbeat extension (§5.4: 34 %).
    pub heartbeat_supported: u64,
    /// Hosts still Heartbleed-vulnerable (§5.4: 0.32 % in 2018-05).
    pub heartbleed_vulnerable: u64,
}

impl ScanSnapshot {
    /// An empty snapshot for `date` (all counters zero).
    pub fn new(date: Date) -> Self {
        ScanSnapshot {
            date,
            hosts: 0,
            ssl3_supported: 0,
            answered: 0,
            chose_aead: 0,
            chose_cbc: 0,
            chose_rc4: 0,
            chose_3des: 0,
            chose_tls12: 0,
            export_supported: 0,
            heartbeat_supported: 0,
            heartbleed_vulnerable: 0,
        }
    }

    /// Fold another partial snapshot of the *same sweep* into this
    /// one. Pure integer sums, so merging is commutative and
    /// associative: any shard order reproduces the serial result
    /// bit for bit.
    ///
    /// # Panics
    /// When the dates differ — partials from different sweeps are a
    /// bug, not data.
    pub fn merge(&mut self, other: &ScanSnapshot) {
        assert_eq!(self.date, other.date, "merging snapshots across sweeps");
        self.hosts += other.hosts;
        self.ssl3_supported += other.ssl3_supported;
        self.answered += other.answered;
        self.chose_aead += other.chose_aead;
        self.chose_cbc += other.chose_cbc;
        self.chose_rc4 += other.chose_rc4;
        self.chose_3des += other.chose_3des;
        self.chose_tls12 += other.chose_tls12;
        self.export_supported += other.export_supported;
        self.heartbeat_supported += other.heartbeat_supported;
        self.heartbleed_vulnerable += other.heartbleed_vulnerable;
    }

    /// Percentage helper over probed hosts.
    pub fn pct(&self, count: u64) -> f64 {
        if self.hosts == 0 {
            0.0
        } else {
            100.0 * count as f64 / self.hosts as f64
        }
    }
}

/// Per-host probe accounting returned by [`probe_host_with`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeFlight {
    /// Probes sent to the host.
    pub probes: u64,
    /// Probes that completed a handshake.
    pub completed: u64,
    /// Probes the host refused.
    pub refused: u64,
    /// Probes sent but never resolved (handshake timeout).
    pub timed_out: u64,
}

impl ProbeFlight {
    fn add(&mut self, other: ProbeFlight) {
        self.probes += other.probes;
        self.completed += other.completed;
        self.refused += other.refused;
        self.timed_out += other.timed_out;
    }
}

/// The counter-based host stream: a private RNG for host `index` of
/// the sweep at `(seed, date)`.
///
/// SplitMix64 finalisation over the mixed key, then `SmallRng`'s own
/// SplitMix64 seed expansion — the same stateless construction the
/// fault injector uses for outage windows, so a host's profile draw is
/// a pure function of `(seed, date, index)` independent of worker
/// count, chunking, and visit order.
fn host_rng(seed: u64, date: Date, index: u64) -> SmallRng {
    let days = date.to_epoch_days() as u64;
    let mut z =
        seed ^ days.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ index.wrapping_mul(0xd1b5_4a32_d192_ed03);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    SmallRng::seed_from_u64(z)
}

/// Probe one server with every sweep probe, skipping (and counting)
/// any probe `times_out` says was lost mid-handshake. The hot path of
/// the scan engine: with the probe set prepared once per campaign,
/// deciding all three probes touches no heap at all
/// ([`negotiate::decide`] allocates nothing).
fn probe_host_timed(
    probes: &ProbeSet,
    profile: &ServerProfile,
    snap: &mut ScanSnapshot,
    mut times_out: impl FnMut(u32) -> bool,
) -> ProbeFlight {
    let mut flight = ProbeFlight::default();
    snap.hosts += 1;

    // 2015-Chrome probe.
    flight.probes += 1;
    if times_out(0) {
        flight.timed_out += 1;
    } else {
        match negotiate::decide(profile, &probes.chrome_2015.facts()) {
            Ok(d) => {
                flight.completed += 1;
                snap.answered += 1;
                if d.cipher.is_aead() {
                    snap.chose_aead += 1;
                }
                if d.cipher.is_cbc() {
                    snap.chose_cbc += 1;
                }
                if d.cipher.is_rc4() {
                    snap.chose_rc4 += 1;
                }
                if d.cipher.is_3des() {
                    snap.chose_3des += 1;
                }
                if d.version == tlscope_wire::ProtocolVersion::Tls12 {
                    snap.chose_tls12 += 1;
                }
                if d.heartbeat {
                    snap.heartbeat_supported += 1;
                    // The Heartbleed check: a malformed heartbeat against a
                    // heartbeat-answering host. The profile's vulnerability
                    // flag *is* the server behaviour being measured.
                    if profile.heartbleed_vulnerable {
                        snap.heartbleed_vulnerable += 1;
                    }
                }
            }
            Err(_) => flight.refused += 1,
        }
    }

    // SSL3-only probe.
    flight.probes += 1;
    if times_out(1) {
        flight.timed_out += 1;
    } else {
        match negotiate::decide(profile, &probes.ssl3_only.facts()) {
            Ok(_) => {
                flight.completed += 1;
                snap.ssl3_supported += 1;
            }
            Err(_) => flight.refused += 1,
        }
    }

    // Export probe: supported if the server completes with an export
    // suite (the Interwise-style downgrade also counts — that is the
    // point of the scan).
    flight.probes += 1;
    if times_out(2) {
        flight.timed_out += 1;
    } else {
        match negotiate::decide(profile, &probes.export_only.facts()) {
            Ok(d) => {
                flight.completed += 1;
                if d.cipher.is_export() {
                    snap.export_supported += 1;
                }
            }
            Err(_) => flight.refused += 1,
        }
    }

    flight
}

/// Probe one server with every sweep probe from `probes` and fold into
/// `snap`, with no faults in play.
pub fn probe_host_with(
    probes: &ProbeSet,
    profile: &ServerProfile,
    snap: &mut ScanSnapshot,
) -> ProbeFlight {
    probe_host_timed(probes, profile, snap, |_| false)
}

/// Probe one server with every scan and fold into `snap`.
///
/// Convenience wrapper that materialises a fresh [`ProbeSet`] per
/// call; sweep loops must prepare the set once and use
/// [`probe_host_with`].
pub fn probe_host(profile: &ServerProfile, snap: &mut ScanSnapshot) {
    probe_host_with(&ProbeSet::campaign(), profile, snap);
}

/// How probing one dispatched host resolved under the fault model.
enum HostOutcome {
    /// The host was probed (possibly after retries).
    Probed(ProbeFlight),
    /// The attempt budget ran out; the host was given up on.
    Dropped,
}

/// Probe dispatched host `index` under `faults`, retrying transient
/// connect failures up to [`MAX_PROBE_ATTEMPTS`] times. Returns the
/// outcome plus the number of retries (attempts beyond the first).
///
/// Order per attempt mirrors a real probe: dead-host windows and SYN
/// loss kill the connect before anything is sent; a flake kills the
/// established connection before probing (flakier cohorts flake more,
/// via [`ServerProfile::scan_flake_bias`]); per-probe timeouts land
/// after the probe is on the wire, so they count as sent. The profile
/// is a pure function of `(seed, date, index)` and is sampled at most
/// once regardless of attempts.
fn probe_indexed_host(
    population: &ServerPopulation,
    probes: &ProbeSet,
    faults: &ScanFaults,
    date: Date,
    index: u64,
    seed: u64,
    snap: &mut ScanSnapshot,
) -> (HostOutcome, u64) {
    // Flight-recorder breadcrumb before anything can die: if this host
    // (or the failpoint below) panics the worker, the chunk postmortem
    // shows which host was in flight.
    tlscope_obs::flight::record("host", index, date.to_epoch_days() as u64, seed);
    if faults.panic_on_host == Some(index) {
        panic!("scan fault failpoint: host {index}");
    }
    let mut profile: Option<ServerProfile> = None;
    for attempt in 0..MAX_PROBE_ATTEMPTS {
        if faults.host_dead(seed, date, index) || faults.syn_dropped(seed, date, index, attempt) {
            continue;
        }
        let profile = profile.get_or_insert_with(|| {
            let mut rng = host_rng(seed, date, index);
            population.sample_host(date, &mut rng)
        });
        if faults.flakes(seed, date, index, attempt, profile.scan_flake_bias()) {
            continue;
        }
        let flight = probe_host_timed(probes, profile, snap, |probe| {
            faults.times_out(seed, date, index, attempt, probe)
        });
        return (HostOutcome::Probed(flight), attempt as u64);
    }
    (HostOutcome::Dropped, (MAX_PROBE_ATTEMPTS - 1) as u64)
}

/// Accounting for one committed chunk of hosts (or survey sites).
#[derive(Debug, Clone, Copy, Default)]
struct ChunkLedger {
    probed: u64,
    dropped: u64,
    retries: u64,
    flight: ProbeFlight,
}

/// Probe the half-open host-index range `range` into a fresh partial.
fn sweep_range(
    population: &ServerPopulation,
    probes: &ProbeSet,
    faults: &ScanFaults,
    date: Date,
    range: Range<u64>,
    seed: u64,
    snap: &mut ScanSnapshot,
) -> ChunkLedger {
    let mut ledger = ChunkLedger::default();
    for index in range {
        let (outcome, retries) =
            probe_indexed_host(population, probes, faults, date, index, seed, snap);
        ledger.retries += retries;
        match outcome {
            HostOutcome::Probed(flight) => {
                ledger.probed += 1;
                ledger.flight.add(flight);
            }
            HostOutcome::Dropped => ledger.dropped += 1,
        }
    }
    ledger
}

// Supervised chunk panics share the process-wide quiet hook with the
// passive pipeline (both live in `tlscope_durable`).
pub(crate) use tlscope_durable::quiet_thread_panics;

/// Run one chunk behind a panic boundary and commit its accounting.
///
/// Dispatch and probe/drop counters for the chunk are recorded
/// *together, after the chunk completes*, so the ledger balances at
/// every observable point — there is no window where hosts are
/// dispatched but unaccounted. On panic the whole chunk is recorded as
/// dispatched-and-dropped, the worker is counted lost, and `false` is
/// returned so the caller retires the worker.
fn commit_chunk<S>(
    range: Range<u64>,
    metrics: &ScanMetrics,
    make: &impl Fn() -> S,
    chunk_fn: &impl Fn(Range<u64>, &mut S) -> ChunkLedger,
    merge_fn: &impl Fn(&mut S, &S),
    into: &mut S,
) -> bool {
    let (start, end) = (range.start, range.end);
    let hosts = end - start;
    let started = Instant::now();
    quiet_thread_panics(true);
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let mut partial = make();
        let ledger = chunk_fn(range, &mut partial);
        (partial, ledger)
    }));
    quiet_thread_panics(false);
    match result {
        Ok((partial, ledger)) => {
            metrics.record_dispatched(hosts);
            metrics.record_probed(
                ledger.probed,
                ledger.flight.probes,
                ledger.flight.completed,
                ledger.flight.refused,
                ledger.flight.timed_out,
            );
            if ledger.dropped > 0 {
                metrics.record_dropped(ledger.dropped);
            }
            if ledger.retries > 0 {
                metrics.record_retries(ledger.retries);
            }
            metrics.record_chunk(started.elapsed());
            merge_fn(into, &partial);
            true
        }
        Err(_) => {
            metrics.record_dispatched(hosts);
            metrics.record_dropped(hosts);
            metrics.record_worker_lost();
            tlscope_obs::flight::report(&format!(
                "sweep chunk {start}..{end} lost to a panic ({hosts} hosts dropped)"
            ));
            false
        }
    }
}

/// The chunked host engine shared by IPv4 sweeps and pulse surveys:
/// [`SHARD_CHUNK`]-sized index ranges claimed from an atomic work
/// queue, each probed into a fresh partial behind a panic boundary and
/// committed (accounting and merge) as a unit. `workers <= 1` runs the
/// same chunk loop inline with no threads spawned; either way a
/// panicking chunk is recorded as dropped and ends only its worker.
fn run_chunked<S: Send>(
    hosts: u64,
    workers: usize,
    metrics: &ScanMetrics,
    make: &(impl Fn() -> S + Sync),
    chunk_fn: &(impl Fn(Range<u64>, &mut S) -> ChunkLedger + Sync),
    merge_fn: &(impl Fn(&mut S, &S) + Sync),
) -> S {
    tlscope_durable::install_quiet_panic_hook();
    let mut total = make();
    if workers <= 1 || hosts <= SHARD_CHUNK {
        let mut claimed = 0u64;
        while claimed < hosts {
            let end = (claimed + SHARD_CHUNK).min(hosts);
            if !commit_chunk(claimed..end, metrics, make, chunk_fn, merge_fn, &mut total) {
                break;
            }
            claimed = end;
        }
        return total;
    }

    let next = AtomicU64::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut partial = make();
                    loop {
                        let start = next.fetch_add(SHARD_CHUNK, Ordering::Relaxed);
                        if start >= hosts {
                            break;
                        }
                        let end = (start + SHARD_CHUNK).min(hosts);
                        if !commit_chunk(
                            start..end,
                            metrics,
                            make,
                            chunk_fn,
                            merge_fn,
                            &mut partial,
                        ) {
                            break;
                        }
                    }
                    partial
                })
            })
            .collect();
        for h in handles {
            // Survivor-merge: chunk panics are caught inside the
            // worker, so a join error means the worker died outside
            // any chunk — count it and keep the survivors.
            match h.join() {
                Ok(partial) => merge_fn(&mut total, &partial),
                Err(_) => metrics.record_worker_lost(),
            }
        }
    });
    total
}

/// Sweep `hosts` random responsive servers at `date`, serially, with
/// no faults.
pub fn sweep(population: &ServerPopulation, date: Date, hosts: u32, seed: u64) -> ScanSnapshot {
    sweep_sharded(population, date, hosts, seed, 1, &ScanMetrics::new())
}

/// Sweep `hosts` servers at `date`, serially, under `faults`.
pub fn sweep_faulted(
    population: &ServerPopulation,
    date: Date,
    hosts: u32,
    seed: u64,
    faults: &ScanFaults,
) -> ScanSnapshot {
    sweep_sharded_with(
        population,
        date,
        hosts,
        seed,
        1,
        &ScanMetrics::new(),
        faults,
    )
}

/// Sweep `hosts` servers at `date` across `workers` threads, with no
/// faults (see [`sweep_sharded_with`]).
pub fn sweep_sharded(
    population: &ServerPopulation,
    date: Date,
    hosts: u32,
    seed: u64,
    workers: usize,
    metrics: &ScanMetrics,
) -> ScanSnapshot {
    sweep_sharded_with(
        population,
        date,
        hosts,
        seed,
        workers,
        metrics,
        &ScanFaults::none(),
    )
}

/// Sweep `hosts` servers at `date` across `workers` threads under the
/// fault model.
///
/// Host indices are claimed in [`SHARD_CHUNK`]-sized blocks from an
/// atomic work index; each worker folds its blocks into a private
/// partial snapshot behind a per-chunk panic boundary, and the
/// partials are merged at the end. Because host sampling and every
/// fault draw are counter-based and the merge is a commutative sum,
/// the result is bit-identical to the serial sweep at any worker count
/// and under any fault profile. A dead worker costs its in-flight
/// chunk (recorded as `hosts_dropped`); the sweep still completes.
/// `workers <= 1` runs the chunk loop inline with no threads spawned.
pub fn sweep_sharded_with(
    population: &ServerPopulation,
    date: Date,
    hosts: u32,
    seed: u64,
    workers: usize,
    metrics: &ScanMetrics,
    faults: &ScanFaults,
) -> ScanSnapshot {
    let probes = ProbeSet::campaign();
    let hosts = hosts as u64;
    let started = Instant::now();
    let snap = run_chunked(
        hosts,
        workers,
        metrics,
        &|| ScanSnapshot::new(date),
        &|range, snap: &mut ScanSnapshot| {
            sweep_range(population, &probes, faults, date, range, seed, snap)
        },
        &|a: &mut ScanSnapshot, b: &ScanSnapshot| a.merge(b),
    );
    metrics.record_sweep(started.elapsed());
    snap
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlscope_servers::Quirk;

    #[test]
    fn snapshot_percentages() {
        let pop = ServerPopulation::new();
        let snap = sweep(&pop, Date::ymd(2016, 6, 1), 3000, 1);
        assert_eq!(snap.hosts, 3000);
        assert!(snap.answered > 2500);
        // Classes partition the answered set (plus rare odd choices).
        assert!(
            snap.chose_aead + snap.chose_cbc + snap.chose_rc4 <= snap.answered,
            "{snap:?}"
        );
        assert!(snap.pct(snap.answered) > 85.0);
    }

    #[test]
    fn censys_anchor_2015_chrome_choices() {
        // §5.2 / §5.3: September 2015 — ~54 % of hosts choose CBC, ~11 %
        // choose RC4. Generous bands; the bench records exact values.
        let pop = ServerPopulation::new();
        let snap = sweep(&pop, Date::ymd(2015, 9, 15), 6000, 2);
        let cbc = snap.pct(snap.chose_cbc);
        let rc4 = snap.pct(snap.chose_rc4);
        assert!(cbc > 35.0 && cbc < 70.0, "cbc {cbc}");
        assert!(rc4 > 5.0 && rc4 < 20.0, "rc4 {rc4}");
    }

    #[test]
    fn censys_trends_2015_to_2018() {
        let pop = ServerPopulation::new();
        let early = sweep(&pop, Date::ymd(2015, 9, 15), 6000, 3);
        let late = sweep(&pop, Date::ymd(2018, 5, 1), 6000, 3);
        assert!(late.pct(late.ssl3_supported) < early.pct(early.ssl3_supported));
        assert!(late.pct(late.chose_rc4) < early.pct(early.chose_rc4));
        assert!(late.pct(late.chose_cbc) < early.pct(early.chose_cbc));
        assert!(late.pct(late.chose_aead) > early.pct(early.chose_aead));
        assert!(late.pct(late.heartbleed_vulnerable) < 1.0);
    }

    #[test]
    fn interwise_counts_as_export_supporter() {
        let mut snap = ScanSnapshot::new(Date::ymd(2016, 1, 1));
        probe_host(&ServerPopulation::interwise_server(), &mut snap);
        assert_eq!(snap.export_supported, 1);
        // And it chose RC4 from the Chrome probe (it's RC4-era).
        assert_eq!(snap.chose_rc4, 1);
        let _ = Quirk::None;
    }

    #[test]
    fn heartbleed_vulnerability_requires_heartbeat() {
        let mut profile = ServerPopulation::grid_server();
        profile.heartbleed_vulnerable = true;
        profile.heartbeat = false;
        let mut snap = ScanSnapshot::new(Date::ymd(2016, 1, 1));
        probe_host(&profile, &mut snap);
        assert_eq!(snap.heartbleed_vulnerable, 0);
        profile.heartbeat = true;
        probe_host(&profile, &mut snap);
        assert_eq!(snap.heartbleed_vulnerable, 1);
    }

    #[test]
    fn sharded_sweep_is_bit_identical_to_serial() {
        let pop = ServerPopulation::new();
        let date = Date::ymd(2016, 9, 1);
        let serial = sweep(&pop, date, 2500, 9);
        for workers in [2usize, 3, 8] {
            let metrics = ScanMetrics::new();
            let sharded = sweep_sharded(&pop, date, 2500, 9, workers, &metrics);
            assert_eq!(serial, sharded, "workers = {workers}");
            let s = metrics.snapshot();
            assert!(s.accounting_holds(), "{s:?}");
            assert_eq!(s.hosts_probed, 2500);
            assert_eq!(s.hosts_dropped, 0);
            assert_eq!(s.probes_sent, 3 * 2500);
        }
    }

    #[test]
    fn zero_host_sweep_is_empty() {
        let pop = ServerPopulation::new();
        let metrics = ScanMetrics::new();
        let snap = sweep_sharded(&pop, Date::ymd(2017, 3, 1), 0, 5, 4, &metrics);
        assert_eq!(snap, ScanSnapshot::new(Date::ymd(2017, 3, 1)));
        assert!(metrics.snapshot().accounting_holds());
        assert_eq!(metrics.snapshot().sweeps_completed, 1);
    }

    #[test]
    #[should_panic(expected = "merging snapshots across sweeps")]
    fn merge_rejects_mismatched_dates() {
        let mut a = ScanSnapshot::new(Date::ymd(2016, 1, 1));
        let b = ScanSnapshot::new(Date::ymd(2016, 1, 8));
        a.merge(&b);
    }

    #[test]
    fn faulted_sweep_reaches_the_loss_ledger() {
        // Under a non-zero profile, hosts_dispatched != hosts_probed
        // is a *reachable, accounted* state: drops and timeouts appear
        // in the ledger and the two-part invariant still holds.
        let pop = ServerPopulation::new();
        let metrics = ScanMetrics::new();
        let faults = ScanFaults::stress();
        let snap = sweep_sharded_with(&pop, Date::ymd(2016, 6, 1), 3000, 11, 1, &metrics, &faults);
        let s = metrics.snapshot();
        assert!(s.accounting_holds(), "{s:?}");
        assert_eq!(s.hosts_dispatched, 3000);
        assert!(s.hosts_dropped > 0, "{s:?}");
        assert!(s.probes_timed_out > 0, "{s:?}");
        assert!(s.host_retries > 0, "{s:?}");
        assert!(s.hosts_probed < 3000);
        assert_eq!(s.hosts_lost(), s.hosts_dropped);
        assert_eq!(snap.hosts, s.hosts_probed);
        // Timed-out probes are in `sent` but resolve to none of the
        // snapshot counters, so answered <= completed chrome probes.
        assert_eq!(
            s.handshakes_completed + s.handshakes_refused + s.probes_timed_out,
            s.probes_sent
        );
    }

    #[test]
    fn faulted_sweep_is_shard_invariant() {
        let pop = ServerPopulation::new();
        let date = Date::ymd(2017, 2, 1);
        for faults in [ScanFaults::scan_defaults(), ScanFaults::stress()] {
            let serial = sweep_faulted(&pop, date, 2000, 21, &faults);
            for workers in [2usize, 5, 8] {
                let metrics = ScanMetrics::new();
                let sharded = sweep_sharded_with(&pop, date, 2000, 21, workers, &metrics, &faults);
                assert_eq!(serial, sharded, "workers = {workers}");
                assert!(metrics.snapshot().accounting_holds());
            }
        }
    }

    #[test]
    fn default_fault_rates_are_light() {
        let pop = ServerPopulation::new();
        let metrics = ScanMetrics::new();
        let faults = ScanFaults::scan_defaults();
        sweep_sharded_with(&pop, Date::ymd(2016, 6, 1), 4000, 5, 1, &metrics, &faults);
        let s = metrics.snapshot();
        assert!(s.accounting_holds());
        // A few percent of loss, not a blackout.
        assert!(s.hosts_dropped > 0 && s.hosts_dropped < 400, "{s:?}");
    }

    #[test]
    fn dead_worker_costs_its_chunk_not_the_sweep() {
        let pop = ServerPopulation::new();
        let date = Date::ymd(2016, 9, 1);
        // Host 700 lives in chunk [512, 1024): that chunk's worker
        // panics, the chunk is dropped, everything else completes.
        let faults = ScanFaults {
            panic_on_host: Some(700),
            ..ScanFaults::none()
        };
        for workers in [2usize, 4, 8] {
            let metrics = ScanMetrics::new();
            let snap = sweep_sharded_with(&pop, date, 3000, 9, workers, &metrics, &faults);
            let s = metrics.snapshot();
            assert!(s.accounting_holds(), "{s:?}");
            assert_eq!(s.hosts_dispatched, 3000, "workers = {workers}");
            assert_eq!(s.hosts_dropped, 512, "workers = {workers}: {s:?}");
            assert_eq!(s.hosts_probed, 3000 - 512);
            assert_eq!(s.workers_lost, 1);
            assert_eq!(snap.hosts, 3000 - 512);
        }
    }

    #[test]
    fn serial_chunk_panic_degrades_and_accounts() {
        // In the inline (workers = 1) path the panicking chunk ends
        // the sweep early: its chunk is dropped, later chunks are
        // never dispatched, and the ledger still balances.
        let pop = ServerPopulation::new();
        let metrics = ScanMetrics::new();
        let faults = ScanFaults {
            panic_on_host: Some(700),
            ..ScanFaults::none()
        };
        let snap = sweep_sharded_with(&pop, Date::ymd(2016, 9, 1), 3000, 9, 1, &metrics, &faults);
        let s = metrics.snapshot();
        assert!(s.accounting_holds(), "{s:?}");
        assert_eq!(s.hosts_dispatched, 1024);
        assert_eq!(s.hosts_probed, 512);
        assert_eq!(s.hosts_dropped, 512);
        assert_eq!(s.workers_lost, 1);
        assert_eq!(snap.hosts, 512);
    }
}

/// SSL Pulse-style popular-site survey (§5.3): probe `sites` servers
/// drawn from the *traffic-weighted* population (the Alexa-top view,
/// not the IPv4 host view) for RC4 support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PulseSnapshot {
    /// Survey date.
    pub date: Date,
    /// Sites probed.
    pub sites: u64,
    /// Sites that complete a handshake with an RC4-only offer
    /// (paper: 92.8 % in 2013-10 → 19.1 % in 2018).
    pub rc4_supported: u64,
    /// Sites that support *only* RC4: they answer the RC4-only probe
    /// but fail the full offer with RC4 removed (paper: 4,248 sites in
    /// 2013 → 1 site in 2018).
    pub rc4_only: u64,
}

impl PulseSnapshot {
    /// An empty snapshot for `date` (all counters zero).
    pub fn new(date: Date) -> Self {
        PulseSnapshot {
            date,
            sites: 0,
            rc4_supported: 0,
            rc4_only: 0,
        }
    }

    /// Fold another partial of the same survey in (commutative sums).
    ///
    /// # Panics
    /// When the dates differ.
    pub fn merge(&mut self, other: &PulseSnapshot) {
        assert_eq!(self.date, other.date, "merging snapshots across surveys");
        self.sites += other.sites;
        self.rc4_supported += other.rc4_supported;
        self.rc4_only += other.rc4_only;
    }

    /// Percentage helper over probed sites.
    pub fn pct(&self, count: u64) -> f64 {
        if self.sites == 0 {
            0.0
        } else {
            100.0 * count as f64 / self.sites as f64
        }
    }
}

/// The salt separating the pulse survey's host streams from the IPv4
/// sweep's at the same `(seed, date)`.
const PULSE_SALT: u64 = 0x9D15E;

/// Probe the half-open site-index range of one pulse survey into a
/// fresh partial. Site streams are salted with [`PULSE_SALT`], exactly
/// as the serial survey always drew them — sharding does not move
/// them.
fn pulse_range(
    probes: &ProbeSet,
    population: &ServerPopulation,
    date: Date,
    range: Range<u64>,
    seed: u64,
    snap: &mut PulseSnapshot,
) -> ChunkLedger {
    use tlscope_servers::Destination;
    let mut ledger = ChunkLedger::default();
    for index in range {
        let mut rng = host_rng(seed ^ PULSE_SALT, date, index);
        let profile = population.sample_for_traffic(Destination::Web, date, &mut rng);
        snap.sites += 1;
        ledger.probed += 1;
        ledger.flight.probes += 1;
        match negotiate::decide(&profile, &probes.rc4_only.facts()) {
            Ok(d) => {
                ledger.flight.completed += 1;
                if d.cipher.is_rc4() {
                    snap.rc4_supported += 1;
                    // Only RC4 supporters get the second, RC4-free probe.
                    ledger.flight.probes += 1;
                    match negotiate::decide(&profile, &probes.chrome_2015_no_rc4.facts()) {
                        Ok(_) => ledger.flight.completed += 1,
                        Err(_) => {
                            ledger.flight.refused += 1;
                            snap.rc4_only += 1;
                        }
                    }
                }
            }
            Err(_) => ledger.flight.refused += 1,
        }
    }
    ledger
}

/// Run one SSL Pulse-style survey at `date` across `workers` threads,
/// with survey accounting recorded into `metrics` — the same chunked
/// engine as [`sweep_sharded_with`], so surveys are visible to
/// `repro --scan-stats` and a dead worker costs a chunk, not the
/// survey. Site sampling keeps the [`PULSE_SALT`]-separated host
/// streams bit-for-bit, so any worker count reproduces the serial
/// survey exactly.
pub fn pulse_survey_sharded(
    probes: &ProbeSet,
    population: &ServerPopulation,
    date: Date,
    sites: u32,
    seed: u64,
    workers: usize,
    metrics: &ScanMetrics,
) -> PulseSnapshot {
    let started = Instant::now();
    let snap = run_chunked(
        sites as u64,
        workers,
        metrics,
        &|| PulseSnapshot::new(date),
        &|range, snap: &mut PulseSnapshot| pulse_range(probes, population, date, range, seed, snap),
        &|a: &mut PulseSnapshot, b: &PulseSnapshot| a.merge(b),
    );
    metrics.record_sweep(started.elapsed());
    snap
}

/// Run one SSL Pulse-style survey at `date` with a prepared probe set,
/// serially and without metrics.
pub fn pulse_survey_with(
    probes: &ProbeSet,
    population: &ServerPopulation,
    date: Date,
    sites: u32,
    seed: u64,
) -> PulseSnapshot {
    pulse_survey_sharded(
        probes,
        population,
        date,
        sites,
        seed,
        1,
        &ScanMetrics::new(),
    )
}

/// Run one SSL Pulse-style survey at `date`.
///
/// Materialises a fresh [`ProbeSet`]; to survey many dates, prepare
/// the set once and call [`pulse_survey_with`] (or
/// [`pulse_survey_sharded`] for the metered, sharded engine).
pub fn pulse_survey(
    population: &ServerPopulation,
    date: Date,
    sites: u32,
    seed: u64,
) -> PulseSnapshot {
    pulse_survey_with(&ProbeSet::campaign(), population, date, sites, seed)
}

#[cfg(test)]
mod pulse_tests {
    use super::*;

    #[test]
    fn rc4_support_declines_like_ssl_pulse() {
        let pop = ServerPopulation::new();
        // Paper: 92.8 % (2013-10) → 19.1 % (2018).
        let early = pulse_survey(&pop, Date::ymd(2013, 10, 1), 3000, 4);
        let late = pulse_survey(&pop, Date::ymd(2018, 4, 1), 3000, 4);
        let e = early.pct(early.rc4_supported);
        let l = late.pct(late.rc4_supported);
        assert!(e > 70.0, "early {e}");
        assert!(l < 40.0, "late {l}");
        assert!(l < e);
        // RC4-only sites effectively vanish.
        assert!(late.pct(late.rc4_only) < 2.0);
    }

    #[test]
    fn survey_is_deterministic_and_probe_set_invariant() {
        let pop = ServerPopulation::new();
        let date = Date::ymd(2015, 4, 1);
        let a = pulse_survey(&pop, date, 500, 11);
        let b = pulse_survey_with(&ProbeSet::campaign(), &pop, date, 500, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn sharded_survey_is_bit_identical_and_metered() {
        let pop = ServerPopulation::new();
        let probes = ProbeSet::campaign();
        let date = Date::ymd(2015, 4, 1);
        let serial = pulse_survey(&pop, date, 2500, 11);
        for workers in [1usize, 2, 4, 8] {
            let metrics = ScanMetrics::new();
            let sharded = pulse_survey_sharded(&probes, &pop, date, 2500, 11, workers, &metrics);
            assert_eq!(serial, sharded, "workers = {workers}");
            let s = metrics.snapshot();
            assert!(s.accounting_holds(), "{s:?}");
            assert_eq!(s.hosts_dispatched, 2500);
            assert_eq!(s.hosts_probed, 2500);
            // One probe per site, plus one more per RC4 supporter.
            assert_eq!(s.probes_sent, 2500 + serial.rc4_supported);
            assert_eq!(s.sweeps_completed, 1);
        }
    }
}
