//! Sweeps: probing a host sample and aggregating a scan snapshot.
//!
//! Each sweep draws `hosts` responsive servers from the population's
//! host-space view (the Censys IPv4 perspective) and runs every probe
//! against each. The snapshot carries exactly the per-scan statistics
//! the paper quotes: SSL 3 support, what servers choose from a
//! 2015-Chrome offer (CBC / RC4 / 3DES / AEAD), export support,
//! Heartbeat support, and residual Heartbleed vulnerability.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tlscope_chron::Date;
use tlscope_servers::{negotiate, ServerPopulation, ServerProfile};

use crate::probe;

/// Results of one full sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanSnapshot {
    /// Sweep date.
    pub date: Date,
    /// Hosts probed.
    pub hosts: u64,
    /// Hosts accepting the SSL3-only probe.
    pub ssl3_supported: u64,
    /// Hosts answering the 2015-Chrome probe at all.
    pub answered: u64,
    /// ... choosing an AEAD suite from it.
    pub chose_aead: u64,
    /// ... choosing a CBC suite (§5.2: 54 % → 35 %).
    pub chose_cbc: u64,
    /// ... choosing RC4 despite stronger offers (§5.3: 11.2 % → 3.4 %).
    pub chose_rc4: u64,
    /// ... choosing 3DES from the bottom of the list (§5.6: 0.54 % →
    /// 0.25 %).
    pub chose_3des: u64,
    /// ... negotiating TLS 1.2 with the probe.
    pub chose_tls12: u64,
    /// Hosts accepting the export-only probe.
    pub export_supported: u64,
    /// Hosts echoing the Heartbeat extension (§5.4: 34 %).
    pub heartbeat_supported: u64,
    /// Hosts still Heartbleed-vulnerable (§5.4: 0.32 % in 2018-05).
    pub heartbleed_vulnerable: u64,
}

impl ScanSnapshot {
    /// Percentage helper over probed hosts.
    pub fn pct(&self, count: u64) -> f64 {
        if self.hosts == 0 {
            0.0
        } else {
            100.0 * count as f64 / self.hosts as f64
        }
    }
}

/// Probe one server with every scan and fold into `snap`.
pub fn probe_host(profile: &ServerProfile, snap: &mut ScanSnapshot) {
    snap.hosts += 1;

    // 2015-Chrome probe.
    if let Ok(n) = negotiate::respond(profile, &probe::chrome_2015(), [0xA5; 32]) {
        snap.answered += 1;
        if n.cipher.is_aead() {
            snap.chose_aead += 1;
        }
        if n.cipher.is_cbc() {
            snap.chose_cbc += 1;
        }
        if n.cipher.is_rc4() {
            snap.chose_rc4 += 1;
        }
        if n.cipher.is_3des() {
            snap.chose_3des += 1;
        }
        if n.version == tlscope_wire::ProtocolVersion::Tls12 {
            snap.chose_tls12 += 1;
        }
        if n.heartbeat {
            snap.heartbeat_supported += 1;
            // The Heartbleed check: a malformed heartbeat against a
            // heartbeat-answering host. The profile's vulnerability flag
            // *is* the server behaviour being measured.
            if profile.heartbleed_vulnerable {
                snap.heartbleed_vulnerable += 1;
            }
        }
    }

    // SSL3-only probe.
    if negotiate::respond(profile, &probe::ssl3_only(), [0xA5; 32]).is_ok() {
        snap.ssl3_supported += 1;
    }

    // Export probe: supported if the server completes with an export
    // suite (the Interwise-style downgrade also counts — that is the
    // point of the scan).
    if let Ok(n) = negotiate::respond(profile, &probe::export_only(), [0xA5; 32]) {
        if n.cipher.is_export() {
            snap.export_supported += 1;
        }
    }
}

/// Sweep `hosts` random responsive servers at `date`.
pub fn sweep(population: &ServerPopulation, date: Date, hosts: u32, seed: u64) -> ScanSnapshot {
    let mut rng = SmallRng::seed_from_u64(seed ^ (date.to_epoch_days() as u64));
    let mut snap = ScanSnapshot {
        date,
        hosts: 0,
        ssl3_supported: 0,
        answered: 0,
        chose_aead: 0,
        chose_cbc: 0,
        chose_rc4: 0,
        chose_3des: 0,
        chose_tls12: 0,
        export_supported: 0,
        heartbeat_supported: 0,
        heartbleed_vulnerable: 0,
    };
    for _ in 0..hosts {
        let profile = population.sample_host(date, &mut rng);
        probe_host(&profile, &mut snap);
    }
    snap
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlscope_servers::Quirk;

    #[test]
    fn snapshot_percentages() {
        let pop = ServerPopulation::new();
        let snap = sweep(&pop, Date::ymd(2016, 6, 1), 3000, 1);
        assert_eq!(snap.hosts, 3000);
        assert!(snap.answered > 2500);
        // Classes partition the answered set (plus rare odd choices).
        assert!(
            snap.chose_aead + snap.chose_cbc + snap.chose_rc4 <= snap.answered,
            "{snap:?}"
        );
        assert!(snap.pct(snap.answered) > 85.0);
    }

    #[test]
    fn censys_anchor_2015_chrome_choices() {
        // §5.2 / §5.3: September 2015 — ~54 % of hosts choose CBC, ~11 %
        // choose RC4. Generous bands; the bench records exact values.
        let pop = ServerPopulation::new();
        let snap = sweep(&pop, Date::ymd(2015, 9, 15), 6000, 2);
        let cbc = snap.pct(snap.chose_cbc);
        let rc4 = snap.pct(snap.chose_rc4);
        assert!(cbc > 35.0 && cbc < 70.0, "cbc {cbc}");
        assert!(rc4 > 5.0 && rc4 < 20.0, "rc4 {rc4}");
    }

    #[test]
    fn censys_trends_2015_to_2018() {
        let pop = ServerPopulation::new();
        let early = sweep(&pop, Date::ymd(2015, 9, 15), 6000, 3);
        let late = sweep(&pop, Date::ymd(2018, 5, 1), 6000, 3);
        assert!(late.pct(late.ssl3_supported) < early.pct(early.ssl3_supported));
        assert!(late.pct(late.chose_rc4) < early.pct(early.chose_rc4));
        assert!(late.pct(late.chose_cbc) < early.pct(early.chose_cbc));
        assert!(late.pct(late.chose_aead) > early.pct(early.chose_aead));
        assert!(late.pct(late.heartbleed_vulnerable) < 1.0);
    }

    #[test]
    fn interwise_counts_as_export_supporter() {
        let mut snap = ScanSnapshot {
            date: Date::ymd(2016, 1, 1),
            hosts: 0,
            ssl3_supported: 0,
            answered: 0,
            chose_aead: 0,
            chose_cbc: 0,
            chose_rc4: 0,
            chose_3des: 0,
            chose_tls12: 0,
            export_supported: 0,
            heartbeat_supported: 0,
            heartbleed_vulnerable: 0,
        };
        probe_host(&ServerPopulation::interwise_server(), &mut snap);
        assert_eq!(snap.export_supported, 1);
        // And it chose RC4 from the Chrome probe (it's RC4-era).
        assert_eq!(snap.chose_rc4, 1);
        let _ = Quirk::None;
    }

    #[test]
    fn heartbleed_vulnerability_requires_heartbeat() {
        let mut profile = ServerPopulation::grid_server();
        profile.heartbleed_vulnerable = true;
        profile.heartbeat = false;
        let mut snap = sweep(&ServerPopulation::new(), Date::ymd(2016, 1, 1), 0, 0);
        probe_host(&profile, &mut snap);
        assert_eq!(snap.heartbleed_vulnerable, 0);
        profile.heartbeat = true;
        probe_host(&profile, &mut snap);
        assert_eq!(snap.heartbleed_vulnerable, 1);
    }
}

/// SSL Pulse-style popular-site survey (§5.3): probe `sites` servers
/// drawn from the *traffic-weighted* population (the Alexa-top view,
/// not the IPv4 host view) for RC4 support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PulseSnapshot {
    /// Survey date.
    pub date: Date,
    /// Sites probed.
    pub sites: u64,
    /// Sites that complete a handshake with an RC4-only offer
    /// (paper: 92.8 % in 2013-10 → 19.1 % in 2018).
    pub rc4_supported: u64,
    /// Sites that support *only* RC4: they answer the RC4-only probe
    /// but fail the full offer with RC4 removed (paper: 4,248 sites in
    /// 2013 → 1 site in 2018).
    pub rc4_only: u64,
}

impl PulseSnapshot {
    /// Percentage helper over probed sites.
    pub fn pct(&self, count: u64) -> f64 {
        if self.sites == 0 {
            0.0
        } else {
            100.0 * count as f64 / self.sites as f64
        }
    }
}

/// Run one SSL Pulse-style survey at `date`.
pub fn pulse_survey(
    population: &ServerPopulation,
    date: Date,
    sites: u32,
    seed: u64,
) -> PulseSnapshot {
    use tlscope_servers::Destination;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9D15E ^ (date.to_epoch_days() as u64));
    let mut snap = PulseSnapshot {
        date,
        sites: 0,
        rc4_supported: 0,
        rc4_only: 0,
    };
    for _ in 0..sites {
        let profile = population.sample_for_traffic(Destination::Web, date, &mut rng);
        snap.sites += 1;
        let rc4 = negotiate::respond(&profile, &crate::probe::rc4_only(), [0x11; 32])
            .map(|n| n.cipher.is_rc4())
            .unwrap_or(false);
        if rc4 {
            snap.rc4_supported += 1;
            let strong =
                negotiate::respond(&profile, &crate::probe::chrome_2015_no_rc4(), [0x11; 32])
                    .is_ok();
            if !strong {
                snap.rc4_only += 1;
            }
        }
    }
    snap
}

#[cfg(test)]
mod pulse_tests {
    use super::*;

    #[test]
    fn rc4_support_declines_like_ssl_pulse() {
        let pop = ServerPopulation::new();
        // Paper: 92.8 % (2013-10) → 19.1 % (2018).
        let early = pulse_survey(&pop, Date::ymd(2013, 10, 1), 3000, 4);
        let late = pulse_survey(&pop, Date::ymd(2018, 4, 1), 3000, 4);
        let e = early.pct(early.rc4_supported);
        let l = late.pct(late.rc4_supported);
        assert!(e > 70.0, "early {e}");
        assert!(l < 40.0, "late {l}");
        assert!(l < e);
        // RC4-only sites effectively vanish.
        assert!(late.pct(late.rc4_only) < 2.0);
    }
}
