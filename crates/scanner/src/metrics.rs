//! Scan accounting: lock-free counters for the active-scan engine.
//!
//! The Censys pipeline the paper rides on (§3.2) ran IPv4-wide sweeps
//! weekly for almost three years; at that scale the only way to know a
//! scanner is healthy is per-stage accounting — how many hosts were
//! handed to workers, how many were actually probed, how many probes
//! completed a handshake, *and how many were lost to timeouts, dead
//! hosts, or worker death*. [`ScanMetrics`] is that layer for the
//! reproduction's active half, mirroring the passive pipeline's
//! `PipelineMetrics`: a bag of atomic counters threaded through any
//! number of sweep workers, all methods `&self`.
//!
//! Sweep wall-clocks are *CPU-summed* across workers, like the passive
//! stage clocks: with `N` workers busy a second each, `scan_nanos`
//! reads `N` seconds. Divide by elapsed wall time for effective
//! parallelism.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use tlscope_obs::{Histogram, HistogramSnapshot, JsonObj};

/// Shared, lock-free active-scan counters.
///
/// The accounting invariant of the sharded sweep engine is two-part:
/// `hosts_dispatched == hosts_probed + hosts_dropped` (every host
/// index claimed from the work queue is either fully probed or
/// explicitly given up on — exhausted retry budget, dead host, or a
/// worker death costing its in-flight chunk) and
/// `handshakes_completed + handshakes_refused + probes_timed_out ==
/// probes_sent` (every probe sent resolves exactly one way). Refused
/// handshakes still count as probed hosts; only hosts the scanner
/// never finished probing are drops.
#[derive(Debug, Default)]
pub struct ScanMetrics {
    hosts_dispatched: AtomicU64,
    hosts_probed: AtomicU64,
    hosts_dropped: AtomicU64,
    host_retries: AtomicU64,
    probes_sent: AtomicU64,
    handshakes_completed: AtomicU64,
    handshakes_refused: AtomicU64,
    probes_timed_out: AtomicU64,
    workers_lost: AtomicU64,
    sweeps_completed: AtomicU64,
    scan_nanos: AtomicU64,

    checkpoints_written: AtomicU64,
    checkpoints_loaded: AtomicU64,
    checkpoints_quarantined: AtomicU64,

    // Latency distributions (observational only: never persisted in a
    // checkpoint, never absorbed on resume, never part of snapshot
    // equality).
    sweep_hist: Histogram,
    chunk_hist: Histogram,
    ckpt_write_hist: Histogram,
    ckpt_load_hist: Histogram,
}

impl ScanMetrics {
    /// A zeroed metrics bag.
    pub fn new() -> Self {
        ScanMetrics::default()
    }

    /// Record `hosts` claimed by a sweep worker (assigned, not yet
    /// necessarily probed — the gap to `hosts_probed` is loss, and
    /// must be matched by `hosts_dropped` for the ledger to balance).
    pub fn record_dispatched(&self, hosts: u64) {
        self.hosts_dispatched.fetch_add(hosts, Ordering::Relaxed);
    }

    /// Record one probed shard: `hosts` hosts receiving `probes`
    /// probes, of which `completed` finished a handshake, `refused`
    /// were turned away, and `timed_out` were sent but never resolved.
    pub fn record_probed(
        &self,
        hosts: u64,
        probes: u64,
        completed: u64,
        refused: u64,
        timed_out: u64,
    ) {
        self.hosts_probed.fetch_add(hosts, Ordering::Relaxed);
        self.probes_sent.fetch_add(probes, Ordering::Relaxed);
        self.handshakes_completed
            .fetch_add(completed, Ordering::Relaxed);
        self.handshakes_refused
            .fetch_add(refused, Ordering::Relaxed);
        self.probes_timed_out
            .fetch_add(timed_out, Ordering::Relaxed);
    }

    /// Record `hosts` dispatched hosts the scanner gave up on:
    /// exhausted retry budget, dead-host window, or a dead worker's
    /// in-flight chunk.
    pub fn record_dropped(&self, hosts: u64) {
        self.hosts_dropped.fetch_add(hosts, Ordering::Relaxed);
    }

    /// Record `attempts` retry attempts (connect attempts beyond each
    /// host's first).
    pub fn record_retries(&self, attempts: u64) {
        self.host_retries.fetch_add(attempts, Ordering::Relaxed);
    }

    /// Record one sweep worker dying (its in-flight chunk is recorded
    /// as dropped separately; completed chunks survive the merge).
    pub fn record_worker_lost(&self) {
        self.workers_lost.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one completed sweep taking `elapsed` of worker time.
    pub fn record_sweep(&self, elapsed: Duration) {
        self.sweeps_completed.fetch_add(1, Ordering::Relaxed);
        self.scan_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.sweep_hist.record(elapsed);
    }

    /// Record the wall-clock of one committed sweep chunk.
    pub fn record_chunk(&self, elapsed: Duration) {
        self.chunk_hist.record(elapsed);
    }

    /// Record the wall-clock of one checkpoint file write.
    pub fn observe_checkpoint_write(&self, elapsed: Duration) {
        self.ckpt_write_hist.record(elapsed);
    }

    /// Record the wall-clock of one checkpoint directory load pass.
    pub fn observe_checkpoint_load(&self, elapsed: Duration) {
        self.ckpt_load_hist.record(elapsed);
    }

    /// Fold another bag's latency histograms into this one — the
    /// campaign runner's analog of [`absorb`] for the observational
    /// side: per-date sweeps run against fresh bags whose *ledgers*
    /// are absorbed via snapshots, so their timing distributions must
    /// be carried over separately.
    ///
    /// [`absorb`]: ScanMetrics::absorb
    pub fn merge_latency_from(&self, other: &ScanMetrics) {
        self.sweep_hist.merge(&other.sweep_hist);
        self.chunk_hist.merge(&other.chunk_hist);
        self.ckpt_write_hist.merge(&other.ckpt_write_hist);
        self.ckpt_load_hist.merge(&other.ckpt_load_hist);
    }

    /// Record one checkpoint file written to the durable store.
    pub fn record_checkpoint_written(&self) {
        self.checkpoints_written.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` checkpoint files loaded cleanly on resume (their
    /// dates are skipped, not re-swept).
    pub fn record_checkpoints_loaded(&self, n: u64) {
        self.checkpoints_loaded.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` damaged checkpoint files quarantined on resume
    /// (renamed to `*.ckpt.bad`; their dates are re-swept).
    pub fn record_checkpoints_quarantined(&self, n: u64) {
        self.checkpoints_quarantined.fetch_add(n, Ordering::Relaxed);
    }

    /// Fold a stored per-date ledger back into this bag — the resume
    /// path's replay of a skipped date's accounting, so a resumed
    /// campaign's totals (and its two-part invariant) match an
    /// uninterrupted run exactly.
    ///
    /// Only the sweep-ledger counters are absorbed; the checkpoint
    /// counters describe *this* run's durable-store activity and are
    /// never carried across runs.
    pub fn absorb(&self, s: &ScanMetricsSnapshot) {
        self.hosts_dispatched
            .fetch_add(s.hosts_dispatched, Ordering::Relaxed);
        self.hosts_probed
            .fetch_add(s.hosts_probed, Ordering::Relaxed);
        self.hosts_dropped
            .fetch_add(s.hosts_dropped, Ordering::Relaxed);
        self.host_retries
            .fetch_add(s.host_retries, Ordering::Relaxed);
        self.probes_sent.fetch_add(s.probes_sent, Ordering::Relaxed);
        self.handshakes_completed
            .fetch_add(s.handshakes_completed, Ordering::Relaxed);
        self.handshakes_refused
            .fetch_add(s.handshakes_refused, Ordering::Relaxed);
        self.probes_timed_out
            .fetch_add(s.probes_timed_out, Ordering::Relaxed);
        self.workers_lost
            .fetch_add(s.workers_lost, Ordering::Relaxed);
        self.sweeps_completed
            .fetch_add(s.sweeps_completed, Ordering::Relaxed);
        self.scan_nanos.fetch_add(s.scan_nanos, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy of all counters.
    pub fn snapshot(&self) -> ScanMetricsSnapshot {
        ScanMetricsSnapshot {
            hosts_dispatched: self.hosts_dispatched.load(Ordering::Relaxed),
            hosts_probed: self.hosts_probed.load(Ordering::Relaxed),
            hosts_dropped: self.hosts_dropped.load(Ordering::Relaxed),
            host_retries: self.host_retries.load(Ordering::Relaxed),
            probes_sent: self.probes_sent.load(Ordering::Relaxed),
            handshakes_completed: self.handshakes_completed.load(Ordering::Relaxed),
            handshakes_refused: self.handshakes_refused.load(Ordering::Relaxed),
            probes_timed_out: self.probes_timed_out.load(Ordering::Relaxed),
            workers_lost: self.workers_lost.load(Ordering::Relaxed),
            sweeps_completed: self.sweeps_completed.load(Ordering::Relaxed),
            scan_nanos: self.scan_nanos.load(Ordering::Relaxed),
            checkpoints_written: self.checkpoints_written.load(Ordering::Relaxed),
            checkpoints_loaded: self.checkpoints_loaded.load(Ordering::Relaxed),
            checkpoints_quarantined: self.checkpoints_quarantined.load(Ordering::Relaxed),
        }
    }

    /// A point-in-time copy of the latency distributions. Kept apart
    /// from [`snapshot`] so the per-date checkpoint ledger format and
    /// its equality semantics are untouched.
    ///
    /// [`snapshot`]: ScanMetrics::snapshot
    pub fn latency(&self) -> ScanLatency {
        ScanLatency {
            sweep: self.sweep_hist.snapshot(),
            sweep_chunk: self.chunk_hist.snapshot(),
            checkpoint_write: self.ckpt_write_hist.snapshot(),
            checkpoint_load: self.ckpt_load_hist.snapshot(),
        }
    }
}

/// Point-in-time latency distributions of the active-scan engine —
/// observational siblings of [`ScanMetricsSnapshot`], deliberately not
/// part of it (the snapshot is persisted per date and replayed on
/// resume; timing never is).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanLatency {
    /// Wall-clock per completed sweep.
    pub sweep: HistogramSnapshot,
    /// Wall-clock per committed sweep chunk.
    pub sweep_chunk: HistogramSnapshot,
    /// Wall-clock per checkpoint file write.
    pub checkpoint_write: HistogramSnapshot,
    /// Wall-clock per checkpoint directory load pass.
    pub checkpoint_load: HistogramSnapshot,
}

impl ScanLatency {
    /// Multi-line terminal rendering, mirroring
    /// [`ScanMetricsSnapshot::render`]'s column layout.
    pub fn render(&self) -> String {
        let mut out = String::from("scan latency\n");
        for (label, hist) in [
            ("sweep", &self.sweep),
            ("chunk", &self.sweep_chunk),
            ("ckpt-write", &self.checkpoint_write),
            ("ckpt-load", &self.checkpoint_load),
        ] {
            out.push_str(&format!("  {:<11} {}\n", label, hist.render_line()));
        }
        out
    }

    fn to_json(self) -> String {
        JsonObj::new()
            .raw("sweep", &self.sweep.to_json())
            .raw("sweep_chunk", &self.sweep_chunk.to_json())
            .raw("checkpoint_write", &self.checkpoint_write.to_json())
            .raw("checkpoint_load", &self.checkpoint_load.to_json())
            .finish()
    }
}

/// A plain-value copy of [`ScanMetrics`], with derived rates and a
/// terminal rendering.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanMetricsSnapshot {
    /// Host indices claimed by sweep workers.
    pub hosts_dispatched: u64,
    /// Hosts actually probed (every probe in the set sent).
    pub hosts_probed: u64,
    /// Hosts given up on: retry budget exhausted (dead hosts, repeated
    /// SYN loss / flakes) or lost with a dead worker's chunk.
    pub hosts_dropped: u64,
    /// Connect attempts beyond each host's first (the retry layer's
    /// work).
    pub host_retries: u64,
    /// Individual probes sent (probed hosts × probes per host, plus
    /// timed-out probes).
    pub probes_sent: u64,
    /// Probes that completed a handshake.
    pub handshakes_completed: u64,
    /// Probes refused (version or cipher mismatch).
    pub handshakes_refused: u64,
    /// Probes sent but never resolved (handshake timeout).
    pub probes_timed_out: u64,
    /// Sweep workers that died (each costing its in-flight chunk).
    pub workers_lost: u64,
    /// Sweeps finished.
    pub sweeps_completed: u64,
    /// CPU-summed sweep wall-clock, nanoseconds.
    pub scan_nanos: u64,
    /// Checkpoint files written to the durable store.
    pub checkpoints_written: u64,
    /// Checkpoint files loaded cleanly on resume (dates skipped).
    pub checkpoints_loaded: u64,
    /// Damaged checkpoint files quarantined on resume (dates
    /// re-swept).
    pub checkpoints_quarantined: u64,
}

fn rate(count: u64, nanos: u64) -> f64 {
    if nanos == 0 {
        0.0
    } else {
        count as f64 / (nanos as f64 / 1e9)
    }
}

fn scaled(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

impl ScanMetricsSnapshot {
    /// Scan throughput in hosts per CPU-second.
    pub fn hosts_per_sec(&self) -> f64 {
        rate(self.hosts_probed, self.scan_nanos)
    }

    /// Scan throughput in probes per CPU-second.
    pub fn probes_per_sec(&self) -> f64 {
        rate(self.probes_sent, self.scan_nanos)
    }

    /// Hosts claimed but never probed. Equal to `hosts_dropped`
    /// whenever the ledger balances — under the fault model this is a
    /// reachable, measured state, not a worker-death canary.
    pub fn hosts_lost(&self) -> u64 {
        self.hosts_dispatched.saturating_sub(self.hosts_probed)
    }

    /// The two-part sweep-engine accounting invariant: every
    /// dispatched host was probed or dropped, and every probe sent
    /// completed, was refused, or timed out.
    pub fn accounting_holds(&self) -> bool {
        self.hosts_dispatched == self.hosts_probed + self.hosts_dropped
            && self.handshakes_completed + self.handshakes_refused + self.probes_timed_out
                == self.probes_sent
    }

    /// Multi-line terminal rendering of the scan accounting, on the
    /// same `"  " + label padded to 11 + " " + {:>11}` column grid as
    /// the passive pipeline's `MetricsSnapshot::render`.
    pub fn render(&self) -> String {
        let mut out = String::from("scan metrics\n");
        out.push_str(&format!(
            "  {:<11} {:>11} sweeps {:>10} hosts  {:>9.3}s cpu  {:>10} hosts/s\n",
            "sweep",
            self.sweeps_completed,
            self.hosts_probed,
            self.scan_nanos as f64 / 1e9,
            scaled(self.hosts_per_sec()),
        ));
        out.push_str(&format!(
            "  {:<11} {:>11} sent   {:>10} completed {:>6} refused {:>6} timed out  {:>7} probes/s\n",
            "probes",
            self.probes_sent,
            self.handshakes_completed,
            self.handshakes_refused,
            self.probes_timed_out,
            scaled(self.probes_per_sec()),
        ));
        out.push_str(&format!(
            "  {:<11} {:>11} dispatched {:>6} probed {:>9} dropped {:>6} retries\n",
            "accounting",
            self.hosts_dispatched,
            self.hosts_probed,
            self.hosts_dropped,
            self.host_retries,
        ));
        out.push_str(&format!(
            "  {:<11} {:>11} workers lost   ledger {}\n",
            "faults",
            self.workers_lost,
            if self.accounting_holds() {
                "balanced"
            } else {
                "IMBALANCED"
            },
        ));
        out.push_str(&format!(
            "  {:<11} {:>11} written {:>9} loaded {:>10} quarantined\n",
            "checkpoint",
            self.checkpoints_written,
            self.checkpoints_loaded,
            self.checkpoints_quarantined,
        ));
        out
    }

    /// Schema identifier stamped into every [`to_json`] export; bump
    /// it whenever the key set changes.
    ///
    /// [`to_json`]: ScanMetricsSnapshot::to_json
    pub const SCHEMA: &'static str = "tlscope-scan-stats-v1";

    /// Machine-readable export with empty latency sections (no
    /// histograms observed).
    pub fn to_json(&self) -> String {
        self.to_json_with(&ScanLatency::default())
    }

    /// Machine-readable export: `schema` version tag, every raw
    /// counter under `counters`, the derived figures under `derived`,
    /// and the latency distributions under `latency`. Keys are emitted
    /// in a fixed order, so same-state exports are byte-identical.
    pub fn to_json_with(&self, latency: &ScanLatency) -> String {
        let counters = JsonObj::new()
            .u64("hosts_dispatched", self.hosts_dispatched)
            .u64("hosts_probed", self.hosts_probed)
            .u64("hosts_dropped", self.hosts_dropped)
            .u64("host_retries", self.host_retries)
            .u64("probes_sent", self.probes_sent)
            .u64("handshakes_completed", self.handshakes_completed)
            .u64("handshakes_refused", self.handshakes_refused)
            .u64("probes_timed_out", self.probes_timed_out)
            .u64("workers_lost", self.workers_lost)
            .u64("sweeps_completed", self.sweeps_completed)
            .u64("scan_nanos", self.scan_nanos)
            .u64("checkpoints_written", self.checkpoints_written)
            .u64("checkpoints_loaded", self.checkpoints_loaded)
            .u64("checkpoints_quarantined", self.checkpoints_quarantined)
            .finish();
        let derived = JsonObj::new()
            .f64("hosts_per_sec", self.hosts_per_sec())
            .f64("probes_per_sec", self.probes_per_sec())
            .u64("hosts_lost", self.hosts_lost())
            .bool("accounting_holds", self.accounting_holds())
            .finish();
        JsonObj::new()
            .str("schema", ScanMetricsSnapshot::SCHEMA)
            .raw("counters", &counters)
            .raw("derived", &derived)
            .raw("latency", &latency.to_json())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_account() {
        let m = ScanMetrics::new();
        m.record_dispatched(10);
        m.record_probed(10, 30, 24, 5, 1);
        m.record_sweep(Duration::from_millis(2));
        let s = m.snapshot();
        assert_eq!(s.hosts_dispatched, 10);
        assert_eq!(s.hosts_probed, 10);
        assert_eq!(s.probes_sent, 30);
        assert_eq!(s.handshakes_completed, 24);
        assert_eq!(s.handshakes_refused, 5);
        assert_eq!(s.probes_timed_out, 1);
        assert_eq!(s.sweeps_completed, 1);
        assert_eq!(s.hosts_lost(), 0);
        assert!(s.accounting_holds());
        let text = s.render();
        for needle in [
            "sweeps",
            "probes/s",
            "dispatched",
            "dropped",
            "timed out",
            "balanced",
        ] {
            assert!(text.contains(needle), "render missing {needle}: {text}");
        }
    }

    #[test]
    fn dropped_hosts_balance_the_ledger() {
        let m = ScanMetrics::new();
        m.record_dispatched(8);
        m.record_probed(5, 15, 15, 0, 0);
        let s = m.snapshot();
        assert_eq!(s.hosts_lost(), 3);
        assert!(!s.accounting_holds(), "unaccounted loss must be visible");
        m.record_dropped(3);
        m.record_retries(6);
        let s = m.snapshot();
        assert_eq!(s.hosts_dropped, 3);
        assert_eq!(s.host_retries, 6);
        assert_eq!(s.hosts_lost(), 3);
        assert!(s.accounting_holds(), "drops account for the loss: {s:?}");
    }

    #[test]
    fn unresolved_probes_break_accounting() {
        let m = ScanMetrics::new();
        m.record_dispatched(5);
        // 15 sent but only 14 resolved: a probe vanished without being
        // counted as completed, refused, or timed out.
        m.record_probed(5, 15, 10, 3, 1);
        assert!(!m.snapshot().accounting_holds());
        m.record_probed(0, 0, 0, 0, 1);
        assert!(m.snapshot().accounting_holds());
    }

    #[test]
    fn rates_follow_clock() {
        let m = ScanMetrics::new();
        m.record_dispatched(1000);
        m.record_probed(1000, 3000, 2800, 200, 0);
        m.record_sweep(Duration::from_millis(100));
        let s = m.snapshot();
        assert!((s.hosts_per_sec() - 10_000.0).abs() < 1.0);
        assert!((s.probes_per_sec() - 30_000.0).abs() < 1.0);
    }

    #[test]
    fn shared_across_threads() {
        let m = ScanMetrics::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..500 {
                        m.record_dispatched(1);
                        m.record_probed(1, 3, 3, 0, 0);
                    }
                });
            }
        });
        let s = m.snapshot();
        assert_eq!(s.hosts_probed, 2000);
        assert!(s.accounting_holds());
    }

    #[test]
    fn absorb_replays_a_stored_ledger_exactly() {
        let per_date = ScanMetrics::new();
        per_date.record_dispatched(600);
        per_date.record_probed(580, 1740, 1500, 200, 40);
        per_date.record_dropped(20);
        per_date.record_retries(35);
        per_date.record_worker_lost();
        per_date.record_sweep(Duration::from_millis(7));
        let stored = per_date.snapshot();
        assert!(stored.accounting_holds());

        let campaign = ScanMetrics::new();
        campaign.record_checkpoint_written();
        campaign.absorb(&stored);
        let replayed = campaign.snapshot();
        // Every ledger counter carried over, checkpoint counters not.
        assert_eq!(replayed.hosts_dispatched, stored.hosts_dispatched);
        assert_eq!(replayed.hosts_probed, stored.hosts_probed);
        assert_eq!(replayed.hosts_dropped, stored.hosts_dropped);
        assert_eq!(replayed.host_retries, stored.host_retries);
        assert_eq!(replayed.probes_sent, stored.probes_sent);
        assert_eq!(replayed.handshakes_completed, stored.handshakes_completed);
        assert_eq!(replayed.handshakes_refused, stored.handshakes_refused);
        assert_eq!(replayed.probes_timed_out, stored.probes_timed_out);
        assert_eq!(replayed.workers_lost, stored.workers_lost);
        assert_eq!(replayed.sweeps_completed, stored.sweeps_completed);
        assert_eq!(replayed.scan_nanos, stored.scan_nanos);
        assert_eq!(replayed.checkpoints_written, 1);
        assert_eq!(replayed.checkpoints_loaded, 0);
        assert!(replayed.accounting_holds());
        assert!(replayed.render().contains("checkpoint"));
    }

    #[test]
    fn render_layout_is_golden() {
        // Same column grid as the passive render: two-space indent,
        // label padded to 11 columns, separator space, 11-wide
        // right-aligned first figure ending at column 24.
        let m = ScanMetrics::new();
        m.record_dispatched(10);
        m.record_probed(10, 30, 24, 5, 1);
        m.record_sweep(Duration::from_millis(2));
        let text = m.snapshot().render();
        for line in text.lines().skip(1) {
            assert!(line.starts_with("  "), "indent: {line:?}");
            assert!(
                !line[2..13].starts_with(' '),
                "label must start at column 2: {line:?}"
            );
            assert_eq!(
                &line[13..14],
                " ",
                "separator space missing at column 13: {line:?}"
            );
            assert!(
                line[14..25].ends_with(|c: char| c != ' '),
                "first figure must be right-aligned to column 24: {line:?}"
            );
        }
    }

    #[test]
    fn latency_histograms_record_merge_and_render() {
        let per_date = ScanMetrics::new();
        per_date.record_sweep(Duration::from_millis(3));
        per_date.record_chunk(Duration::from_micros(400));
        per_date.record_chunk(Duration::from_micros(600));

        let campaign = ScanMetrics::new();
        campaign.observe_checkpoint_write(Duration::from_micros(200));
        campaign.observe_checkpoint_load(Duration::from_micros(80));
        campaign.merge_latency_from(&per_date);

        let lat = campaign.latency();
        assert_eq!(lat.sweep.count, 1);
        assert_eq!(lat.sweep_chunk.count, 2);
        assert_eq!(lat.checkpoint_write.count, 1);
        assert_eq!(lat.checkpoint_load.count, 1);
        let text = lat.render();
        for needle in ["scan latency", "sweep", "chunk", "ckpt-write", "ckpt-load"] {
            assert!(
                text.contains(needle),
                "latency render missing {needle}: {text}"
            );
        }

        // Absorbing a stored ledger does not touch the histograms —
        // the resume path replays counters only.
        let resumed = ScanMetrics::new();
        resumed.absorb(&per_date.snapshot());
        assert_eq!(resumed.latency().sweep.count, 0);
    }

    #[test]
    fn json_export_schema_is_golden() {
        // The golden key-set test: any drift in the export schema must
        // be deliberate (bump SCHEMA and update this list).
        let m = ScanMetrics::new();
        m.record_dispatched(10);
        m.record_probed(10, 30, 24, 5, 1);
        m.record_sweep(Duration::from_millis(2));
        let snap = m.snapshot();
        let parsed = tlscope_obs::Json::parse(&snap.to_json_with(&m.latency())).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(|v| v.as_str()),
            Some(ScanMetricsSnapshot::SCHEMA)
        );
        assert_eq!(
            parsed.keys(),
            vec!["schema", "counters", "derived", "latency"]
        );
        assert_eq!(
            parsed.get("counters").unwrap().keys(),
            vec![
                "hosts_dispatched",
                "hosts_probed",
                "hosts_dropped",
                "host_retries",
                "probes_sent",
                "handshakes_completed",
                "handshakes_refused",
                "probes_timed_out",
                "workers_lost",
                "sweeps_completed",
                "scan_nanos",
                "checkpoints_written",
                "checkpoints_loaded",
                "checkpoints_quarantined",
            ]
        );
        assert_eq!(
            parsed.get("derived").unwrap().keys(),
            vec![
                "hosts_per_sec",
                "probes_per_sec",
                "hosts_lost",
                "accounting_holds"
            ]
        );
        assert_eq!(
            parsed.get("latency").unwrap().keys(),
            vec![
                "sweep",
                "sweep_chunk",
                "checkpoint_write",
                "checkpoint_load"
            ]
        );
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("hosts_probed"))
                .and_then(|v| v.as_u64()),
            Some(snap.hosts_probed)
        );
        assert_eq!(
            parsed
                .get("derived")
                .and_then(|d| d.get("accounting_holds"))
                .and_then(|v| v.as_bool()),
            Some(true)
        );
    }

    #[test]
    fn worker_loss_is_counted_outside_the_ledger() {
        let m = ScanMetrics::new();
        m.record_dispatched(512);
        m.record_dropped(512);
        m.record_worker_lost();
        let s = m.snapshot();
        assert_eq!(s.workers_lost, 1);
        assert_eq!(s.hosts_dropped, 512);
        assert!(s.accounting_holds());
        assert!(s.render().contains("workers lost"));
    }
}
