//! Scan scheduling: the Censys observation window.
//!
//! "Censys scans are available starting from August 22nd 2015; in our
//! paper we use the data till May 13 2018" (§3.2), with weekly IPv4
//! sweeps. [`ScanCampaign`] runs the sweeps over that window.

use std::sync::atomic::{AtomicUsize, Ordering};

use tlscope_chron::Date;
use tlscope_servers::ServerPopulation;

use crate::metrics::ScanMetrics;
use crate::sweep::{sweep, sweep_sharded, ScanSnapshot};

/// First Censys scan used by the paper.
pub const CENSYS_START: Date = Date::ymd(2015, 8, 22);
/// Last Censys scan used by the paper.
pub const CENSYS_END: Date = Date::ymd(2018, 5, 13);

/// Dates spaced `interval_days` apart across `[start, end]`.
pub fn schedule(start: Date, end: Date, interval_days: i64) -> Vec<Date> {
    assert!(interval_days > 0);
    let mut out = Vec::new();
    let mut d = start;
    while d <= end {
        out.push(d);
        d = d.add_days(interval_days);
    }
    out
}

/// A scan campaign: periodic sweeps over a window.
#[derive(Debug, Clone)]
pub struct ScanCampaign {
    /// Sweep dates.
    pub dates: Vec<Date>,
    /// Hosts sampled per sweep.
    pub hosts_per_sweep: u32,
    /// RNG seed.
    pub seed: u64,
}

impl ScanCampaign {
    /// The paper's Censys window at weekly cadence.
    pub fn censys_weekly(hosts_per_sweep: u32, seed: u64) -> Self {
        ScanCampaign {
            dates: schedule(CENSYS_START, CENSYS_END, 7),
            hosts_per_sweep,
            seed,
        }
    }

    /// A sparser monthly variant for quick runs.
    pub fn censys_monthly(hosts_per_sweep: u32, seed: u64) -> Self {
        ScanCampaign {
            dates: schedule(CENSYS_START, CENSYS_END, 30),
            hosts_per_sweep,
            seed,
        }
    }

    /// Run every sweep.
    pub fn run(&self, population: &ServerPopulation) -> Vec<ScanSnapshot> {
        self.dates
            .iter()
            .map(|d| sweep(population, *d, self.hosts_per_sweep, self.seed))
            .collect()
    }

    /// Run every sweep across `workers` threads, recording scan
    /// accounting into `metrics`.
    ///
    /// Whole sweep dates are claimed from an atomic work index — the
    /// same distribution as the passive pipeline's metered run — so a
    /// long campaign parallelises across its dates rather than inside
    /// each sweep. Host sampling is counter-based per `(seed, date,
    /// host index)`, so every sweep (and therefore the whole campaign)
    /// is bit-identical to [`ScanCampaign::run`] at any worker count,
    /// and snapshots come back in date order regardless of which
    /// worker finished first.
    pub fn run_parallel(
        &self,
        population: &ServerPopulation,
        workers: usize,
        metrics: &ScanMetrics,
    ) -> Vec<ScanSnapshot> {
        let workers = workers.max(1).min(self.dates.len().max(1));
        if workers <= 1 {
            return self
                .dates
                .iter()
                .map(|d| sweep_sharded(population, *d, self.hosts_per_sweep, self.seed, 1, metrics))
                .collect();
        }

        let next = AtomicUsize::new(0);
        let mut ordered: Vec<Option<ScanSnapshot>> = vec![None; self.dates.len()];
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut done = Vec::new();
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            let Some(date) = self.dates.get(idx) else {
                                break;
                            };
                            let snap = sweep_sharded(
                                population,
                                *date,
                                self.hosts_per_sweep,
                                self.seed,
                                1,
                                metrics,
                            );
                            done.push((idx, snap));
                        }
                        done
                    })
                })
                .collect();
            for h in handles {
                for (idx, snap) in h.join().expect("campaign worker panicked") {
                    ordered[idx] = Some(snap);
                }
            }
        });
        ordered
            .into_iter()
            .map(|s| s.expect("every campaign date swept"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weekly_schedule_covers_window() {
        let dates = schedule(CENSYS_START, CENSYS_END, 7);
        // 32 months of weekly scans ≈ 142 sweeps.
        assert!(dates.len() >= 140 && dates.len() <= 145, "{}", dates.len());
        assert_eq!(dates[0], CENSYS_START);
        assert!(*dates.last().unwrap() <= CENSYS_END);
        for w in dates.windows(2) {
            assert_eq!(w[1] - w[0], 7);
        }
    }

    #[test]
    fn campaign_runs_in_order() {
        let campaign = ScanCampaign {
            dates: schedule(Date::ymd(2016, 1, 1), Date::ymd(2016, 3, 1), 30),
            hosts_per_sweep: 200,
            seed: 5,
        };
        let snaps = campaign.run(&ServerPopulation::new());
        assert_eq!(snaps.len(), 3);
        assert!(snaps.windows(2).all(|w| w[0].date < w[1].date));
        assert!(snaps.iter().all(|s| s.hosts == 200));
    }

    #[test]
    fn parallel_campaign_matches_serial() {
        let campaign = ScanCampaign {
            dates: schedule(Date::ymd(2016, 1, 1), Date::ymd(2016, 6, 1), 30),
            hosts_per_sweep: 300,
            seed: 17,
        };
        let pop = ServerPopulation::new();
        let serial = campaign.run(&pop);
        for workers in [1usize, 2, 5, 8] {
            let metrics = ScanMetrics::new();
            let parallel = campaign.run_parallel(&pop, workers, &metrics);
            assert_eq!(serial, parallel, "workers = {workers}");
            let s = metrics.snapshot();
            assert!(s.accounting_holds(), "{s:?}");
            assert_eq!(s.hosts_probed, 300 * campaign.dates.len() as u64);
            assert_eq!(s.sweeps_completed, campaign.dates.len() as u64);
        }
    }

    #[test]
    fn single_day_schedule() {
        let d = Date::ymd(2017, 1, 1);
        assert_eq!(schedule(d, d, 7), vec![d]);
    }
}
