//! Scan scheduling: the Censys observation window.
//!
//! "Censys scans are available starting from August 22nd 2015; in our
//! paper we use the data till May 13 2018" (§3.2), with weekly IPv4
//! sweeps. [`ScanCampaign`] runs the sweeps over that window.

use tlscope_chron::Date;
use tlscope_servers::ServerPopulation;

use crate::sweep::{sweep, ScanSnapshot};

/// First Censys scan used by the paper.
pub const CENSYS_START: Date = Date::ymd(2015, 8, 22);
/// Last Censys scan used by the paper.
pub const CENSYS_END: Date = Date::ymd(2018, 5, 13);

/// Dates spaced `interval_days` apart across `[start, end]`.
pub fn schedule(start: Date, end: Date, interval_days: i64) -> Vec<Date> {
    assert!(interval_days > 0);
    let mut out = Vec::new();
    let mut d = start;
    while d <= end {
        out.push(d);
        d = d.add_days(interval_days);
    }
    out
}

/// A scan campaign: periodic sweeps over a window.
#[derive(Debug, Clone)]
pub struct ScanCampaign {
    /// Sweep dates.
    pub dates: Vec<Date>,
    /// Hosts sampled per sweep.
    pub hosts_per_sweep: u32,
    /// RNG seed.
    pub seed: u64,
}

impl ScanCampaign {
    /// The paper's Censys window at weekly cadence.
    pub fn censys_weekly(hosts_per_sweep: u32, seed: u64) -> Self {
        ScanCampaign {
            dates: schedule(CENSYS_START, CENSYS_END, 7),
            hosts_per_sweep,
            seed,
        }
    }

    /// A sparser monthly variant for quick runs.
    pub fn censys_monthly(hosts_per_sweep: u32, seed: u64) -> Self {
        ScanCampaign {
            dates: schedule(CENSYS_START, CENSYS_END, 30),
            hosts_per_sweep,
            seed,
        }
    }

    /// Run every sweep.
    pub fn run(&self, population: &ServerPopulation) -> Vec<ScanSnapshot> {
        self.dates
            .iter()
            .map(|d| sweep(population, *d, self.hosts_per_sweep, self.seed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weekly_schedule_covers_window() {
        let dates = schedule(CENSYS_START, CENSYS_END, 7);
        // 32 months of weekly scans ≈ 142 sweeps.
        assert!(dates.len() >= 140 && dates.len() <= 145, "{}", dates.len());
        assert_eq!(dates[0], CENSYS_START);
        assert!(*dates.last().unwrap() <= CENSYS_END);
        for w in dates.windows(2) {
            assert_eq!(w[1] - w[0], 7);
        }
    }

    #[test]
    fn campaign_runs_in_order() {
        let campaign = ScanCampaign {
            dates: schedule(Date::ymd(2016, 1, 1), Date::ymd(2016, 3, 1), 30),
            hosts_per_sweep: 200,
            seed: 5,
        };
        let snaps = campaign.run(&ServerPopulation::new());
        assert_eq!(snaps.len(), 3);
        assert!(snaps.windows(2).all(|w| w[0].date < w[1].date));
        assert!(snaps.iter().all(|s| s.hosts == 200));
    }

    #[test]
    fn single_day_schedule() {
        let d = Date::ymd(2017, 1, 1);
        assert_eq!(schedule(d, d, 7), vec![d]);
    }
}
