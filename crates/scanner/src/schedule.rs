//! Scan scheduling: the Censys observation window.
//!
//! "Censys scans are available starting from August 22nd 2015; in our
//! paper we use the data till May 13 2018" (§3.2), with weekly IPv4
//! sweeps. [`ScanCampaign`] runs the sweeps over that window, under
//! the campaign's [`ScanFaults`] profile, and survives worker death:
//! a dead campaign worker forfeits only its unfinished dates, which
//! are re-swept inline after the survivors drain the queue.

use std::sync::atomic::{AtomicUsize, Ordering};

use tlscope_chron::Date;
use tlscope_servers::ServerPopulation;

use crate::faults::ScanFaults;
use crate::metrics::ScanMetrics;
use crate::sweep::{quiet_thread_panics, sweep_faulted, sweep_sharded_with, ScanSnapshot};

/// First Censys scan used by the paper.
pub const CENSYS_START: Date = Date::ymd(2015, 8, 22);
/// Last Censys scan used by the paper.
pub const CENSYS_END: Date = Date::ymd(2018, 5, 13);

/// Dates spaced `interval_days` apart across `[start, end]`.
pub fn schedule(start: Date, end: Date, interval_days: i64) -> Vec<Date> {
    assert!(interval_days > 0);
    let mut out = Vec::new();
    let mut d = start;
    while d <= end {
        out.push(d);
        d = d.add_days(interval_days);
    }
    out
}

/// A scan campaign: periodic sweeps over a window.
#[derive(Debug, Clone)]
pub struct ScanCampaign {
    /// Sweep dates.
    pub dates: Vec<Date>,
    /// Hosts sampled per sweep.
    pub hosts_per_sweep: u32,
    /// RNG seed.
    pub seed: u64,
    /// Fault profile every sweep runs under.
    pub faults: ScanFaults,
}

impl ScanCampaign {
    /// The paper's Censys window at weekly cadence, fault-free.
    pub fn censys_weekly(hosts_per_sweep: u32, seed: u64) -> Self {
        ScanCampaign {
            dates: schedule(CENSYS_START, CENSYS_END, 7),
            hosts_per_sweep,
            seed,
            faults: ScanFaults::none(),
        }
    }

    /// A sparser monthly variant for quick runs, fault-free.
    pub fn censys_monthly(hosts_per_sweep: u32, seed: u64) -> Self {
        ScanCampaign {
            dates: schedule(CENSYS_START, CENSYS_END, 30),
            hosts_per_sweep,
            seed,
            faults: ScanFaults::none(),
        }
    }

    /// The same campaign under a different fault profile.
    pub fn with_faults(mut self, faults: ScanFaults) -> Self {
        self.faults = faults;
        self
    }

    /// Run every sweep.
    pub fn run(&self, population: &ServerPopulation) -> Vec<ScanSnapshot> {
        self.dates
            .iter()
            .map(|d| {
                sweep_faulted(
                    population,
                    *d,
                    self.hosts_per_sweep,
                    self.seed,
                    &self.faults,
                )
            })
            .collect()
    }

    /// Run every sweep across `workers` threads, recording scan
    /// accounting into `metrics`.
    ///
    /// Whole sweep dates are claimed from an atomic work index — the
    /// same distribution as the passive pipeline's metered run — so a
    /// long campaign parallelises across its dates rather than inside
    /// each sweep. Host sampling and fault draws are counter-based per
    /// `(seed, date, host index)`, so every sweep (and therefore the
    /// whole campaign) is bit-identical to [`ScanCampaign::run`] at
    /// any worker count, and snapshots come back in date order
    /// regardless of which worker finished first.
    ///
    /// A campaign worker that dies forfeits only the dates it had not
    /// finished: survivors keep draining the queue, and any date left
    /// unswept is re-swept inline afterwards. Counter-based sampling
    /// makes the recovery sweep bit-identical to the one that was
    /// lost, so the returned snapshots match a clean run exactly; the
    /// loss shows up in `metrics` (`workers_lost`, and any accounting
    /// the dead worker had already committed), never in the data.
    pub fn run_parallel(
        &self,
        population: &ServerPopulation,
        workers: usize,
        metrics: &ScanMetrics,
    ) -> Vec<ScanSnapshot> {
        let workers = workers.max(1).min(self.dates.len().max(1));
        if workers <= 1 {
            return self
                .dates
                .iter()
                .map(|d| {
                    sweep_sharded_with(
                        population,
                        *d,
                        self.hosts_per_sweep,
                        self.seed,
                        1,
                        metrics,
                        &self.faults,
                    )
                })
                .collect();
        }

        let next = AtomicUsize::new(0);
        let mut ordered: Vec<Option<ScanSnapshot>> = vec![None; self.dates.len()];
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut done = Vec::new();
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            let Some(date) = self.dates.get(idx) else {
                                break;
                            };
                            if self.faults.panic_on_date == Some(*date) {
                                // Campaign-level failpoint: this worker
                                // dies before sweeping, losing the date
                                // and anything still in its `done` pile.
                                quiet_thread_panics(true);
                                panic!("scan fault failpoint: date {date}");
                            }
                            let snap = sweep_sharded_with(
                                population,
                                *date,
                                self.hosts_per_sweep,
                                self.seed,
                                1,
                                metrics,
                                &self.faults,
                            );
                            done.push((idx, snap));
                        }
                        done
                    })
                })
                .collect();
            for h in handles {
                // Survivor-merge: a dead worker costs its unreturned
                // dates (recovered below), never the campaign.
                match h.join() {
                    Ok(done) => {
                        for (idx, snap) in done {
                            ordered[idx] = Some(snap);
                        }
                    }
                    Err(_) => metrics.record_worker_lost(),
                }
            }
        });
        // Recovery pass: re-sweep any date a dead worker left behind.
        // The failpoint is cleared so recovery cannot re-trip it; the
        // fault *profile* stays, so the recovered snapshot is exactly
        // the one the lost worker would have produced.
        let mut recovery = self.faults;
        recovery.panic_on_date = None;
        self.dates
            .iter()
            .zip(ordered)
            .map(|(date, snap)| {
                snap.unwrap_or_else(|| {
                    sweep_sharded_with(
                        population,
                        *date,
                        self.hosts_per_sweep,
                        self.seed,
                        1,
                        metrics,
                        &recovery,
                    )
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weekly_schedule_covers_window() {
        let dates = schedule(CENSYS_START, CENSYS_END, 7);
        // 32 months of weekly scans ≈ 142 sweeps.
        assert!(dates.len() >= 140 && dates.len() <= 145, "{}", dates.len());
        assert_eq!(dates[0], CENSYS_START);
        assert!(*dates.last().unwrap() <= CENSYS_END);
        for w in dates.windows(2) {
            assert_eq!(w[1] - w[0], 7);
        }
    }

    #[test]
    fn campaign_runs_in_order() {
        let campaign = ScanCampaign {
            dates: schedule(Date::ymd(2016, 1, 1), Date::ymd(2016, 3, 1), 30),
            hosts_per_sweep: 200,
            seed: 5,
            faults: ScanFaults::none(),
        };
        let snaps = campaign.run(&ServerPopulation::new());
        assert_eq!(snaps.len(), 3);
        assert!(snaps.windows(2).all(|w| w[0].date < w[1].date));
        assert!(snaps.iter().all(|s| s.hosts == 200));
    }

    #[test]
    fn parallel_campaign_matches_serial() {
        let campaign = ScanCampaign {
            dates: schedule(Date::ymd(2016, 1, 1), Date::ymd(2016, 6, 1), 30),
            hosts_per_sweep: 300,
            seed: 17,
            faults: ScanFaults::none(),
        };
        let pop = ServerPopulation::new();
        let serial = campaign.run(&pop);
        for workers in [1usize, 2, 5, 8] {
            let metrics = ScanMetrics::new();
            let parallel = campaign.run_parallel(&pop, workers, &metrics);
            assert_eq!(serial, parallel, "workers = {workers}");
            let s = metrics.snapshot();
            assert!(s.accounting_holds(), "{s:?}");
            assert_eq!(s.hosts_probed, 300 * campaign.dates.len() as u64);
            assert_eq!(s.sweeps_completed, campaign.dates.len() as u64);
        }
    }

    #[test]
    fn faulted_campaign_matches_serial_and_accounts_loss() {
        let campaign = ScanCampaign {
            dates: schedule(Date::ymd(2016, 1, 1), Date::ymd(2016, 6, 1), 30),
            hosts_per_sweep: 600,
            seed: 23,
            faults: ScanFaults::stress(),
        };
        let pop = ServerPopulation::new();
        let serial = campaign.run(&pop);
        for workers in [1usize, 3, 6] {
            let metrics = ScanMetrics::new();
            let parallel = campaign.run_parallel(&pop, workers, &metrics);
            assert_eq!(serial, parallel, "workers = {workers}");
            let s = metrics.snapshot();
            assert!(s.accounting_holds(), "{s:?}");
            assert!(s.hosts_dropped > 0, "{s:?}");
            assert!(s.probes_timed_out > 0, "{s:?}");
        }
    }

    #[test]
    fn killed_campaign_worker_recovers_every_date() {
        let dates = schedule(Date::ymd(2016, 1, 1), Date::ymd(2016, 6, 1), 30);
        let killed = dates[2];
        let clean = ScanCampaign {
            dates: dates.clone(),
            hosts_per_sweep: 300,
            seed: 17,
            faults: ScanFaults::none(),
        };
        let campaign = clean.clone().with_faults(ScanFaults {
            panic_on_date: Some(killed),
            ..ScanFaults::none()
        });
        let pop = ServerPopulation::new();
        let expected = clean.run(&pop);
        for workers in [2usize, 4] {
            let metrics = ScanMetrics::new();
            let snaps = campaign.run_parallel(&pop, workers, &metrics);
            // Degraded, not panicked — and the recovery sweep restores
            // the killed date bit-for-bit.
            assert_eq!(snaps, expected, "workers = {workers}");
            let s = metrics.snapshot();
            assert!(s.workers_lost >= 1, "{s:?}");
            assert!(s.accounting_holds(), "{s:?}");
        }
    }

    #[test]
    fn single_day_schedule() {
        let d = Date::ymd(2017, 1, 1);
        assert_eq!(schedule(d, d, 7), vec![d]);
    }
}
