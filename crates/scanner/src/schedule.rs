//! Scan scheduling: the Censys observation window.
//!
//! "Censys scans are available starting from August 22nd 2015; in our
//! paper we use the data till May 13 2018" (§3.2), with weekly IPv4
//! sweeps. [`ScanCampaign`] runs the sweeps over that window, under
//! the campaign's [`ScanFaults`] profile, and survives worker death:
//! a dead campaign worker forfeits only its unfinished dates, which
//! are re-swept inline after the survivors drain the queue.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use tlscope_chron::Date;
use tlscope_obs::Progress;
use tlscope_servers::ServerPopulation;

use crate::checkpoint::{self, DateCheckpoint, ScanCheckpointError};
use crate::faults::ScanFaults;
use crate::metrics::ScanMetrics;
use crate::sweep::{quiet_thread_panics, sweep_faulted, sweep_sharded_with, ScanSnapshot};

/// First Censys scan used by the paper.
pub const CENSYS_START: Date = Date::ymd(2015, 8, 22);
/// Last Censys scan used by the paper.
pub const CENSYS_END: Date = Date::ymd(2018, 5, 13);

/// Dates spaced `interval_days` apart across `[start, end]`.
pub fn schedule(start: Date, end: Date, interval_days: i64) -> Vec<Date> {
    assert!(interval_days > 0);
    let mut out = Vec::new();
    let mut d = start;
    while d <= end {
        out.push(d);
        d = d.add_days(interval_days);
    }
    out
}

/// A scan campaign: periodic sweeps over a window.
#[derive(Debug, Clone)]
pub struct ScanCampaign {
    /// Sweep dates.
    pub dates: Vec<Date>,
    /// Hosts sampled per sweep.
    pub hosts_per_sweep: u32,
    /// RNG seed.
    pub seed: u64,
    /// Fault profile every sweep runs under.
    pub faults: ScanFaults,
}

impl ScanCampaign {
    /// The paper's Censys window at weekly cadence, fault-free.
    pub fn censys_weekly(hosts_per_sweep: u32, seed: u64) -> Self {
        ScanCampaign {
            dates: schedule(CENSYS_START, CENSYS_END, 7),
            hosts_per_sweep,
            seed,
            faults: ScanFaults::none(),
        }
    }

    /// A sparser monthly variant for quick runs, fault-free.
    pub fn censys_monthly(hosts_per_sweep: u32, seed: u64) -> Self {
        ScanCampaign {
            dates: schedule(CENSYS_START, CENSYS_END, 30),
            hosts_per_sweep,
            seed,
            faults: ScanFaults::none(),
        }
    }

    /// The same campaign under a different fault profile.
    pub fn with_faults(mut self, faults: ScanFaults) -> Self {
        self.faults = faults;
        self
    }

    /// Run every sweep.
    pub fn run(&self, population: &ServerPopulation) -> Vec<ScanSnapshot> {
        self.dates
            .iter()
            .map(|d| {
                sweep_faulted(
                    population,
                    *d,
                    self.hosts_per_sweep,
                    self.seed,
                    &self.faults,
                )
            })
            .collect()
    }

    /// Run every sweep across `workers` threads, recording scan
    /// accounting into `metrics`.
    ///
    /// Whole sweep dates are claimed from an atomic work index — the
    /// same distribution as the passive pipeline's metered run — so a
    /// long campaign parallelises across its dates rather than inside
    /// each sweep. Host sampling and fault draws are counter-based per
    /// `(seed, date, host index)`, so every sweep (and therefore the
    /// whole campaign) is bit-identical to [`ScanCampaign::run`] at
    /// any worker count, and snapshots come back in date order
    /// regardless of which worker finished first.
    ///
    /// A campaign worker that dies forfeits only the dates it had not
    /// finished: survivors keep draining the queue, and any date left
    /// unswept is re-swept inline afterwards. Counter-based sampling
    /// makes the recovery sweep bit-identical to the one that was
    /// lost, so the returned snapshots match a clean run exactly; the
    /// loss shows up in `metrics` (`workers_lost`, and any accounting
    /// the dead worker had already committed), never in the data.
    pub fn run_parallel(
        &self,
        population: &ServerPopulation,
        workers: usize,
        metrics: &ScanMetrics,
    ) -> Vec<ScanSnapshot> {
        self.run_durable(population, workers, metrics, None)
            .unwrap_or_else(|e| unreachable!("no checkpoint dir, no checkpoint IO: {e}"))
    }

    /// [`ScanCampaign::run_parallel`] with durable checkpoint/resume.
    ///
    /// With `checkpoint_dir` set, every completed date's
    /// [`ScanSnapshot`] and per-date accounting ledger are persisted to
    /// `<dir>/<YYYY-MM-DD>.ckpt` (atomic tmp+rename, checksummed — see
    /// [`crate::checkpoint`]), and dates already present in the store
    /// are *skipped*: their snapshots fill the series directly and
    /// their ledgers are replayed into `metrics`
    /// ([`ScanMetrics::absorb`]), so a resumed campaign returns
    /// snapshots and totals bit-identical to an uninterrupted run — at
    /// any worker count, under any fault profile. Damaged checkpoint
    /// files are quarantined (`*.ckpt.bad`, counted in
    /// `checkpoints_quarantined`) and their dates re-swept.
    ///
    /// Only filesystem failures abort the campaign, and they surface
    /// as [`ScanCheckpointError::Io`] after in-flight workers drain;
    /// every date swept before the failure keeps its checkpoint, so a
    /// rerun loses nothing.
    pub fn run_durable(
        &self,
        population: &ServerPopulation,
        workers: usize,
        metrics: &ScanMetrics,
        checkpoint_dir: Option<&Path>,
    ) -> Result<Vec<ScanSnapshot>, ScanCheckpointError> {
        let mut ordered: Vec<Option<ScanSnapshot>> = vec![None; self.dates.len()];
        // Resume: adopt completed dates from the store. Snapshots fill
        // their slots; stored ledgers replay into the campaign bag so
        // totals match an uninterrupted run exactly.
        if let Some(dir) = checkpoint_dir {
            let load_started = Instant::now();
            let mut store = checkpoint::load_dir(dir)?;
            metrics.observe_checkpoint_load(load_started.elapsed());
            let mut loaded = 0u64;
            for (idx, date) in self.dates.iter().enumerate() {
                if ordered[idx].is_none() {
                    if let Some(ckpt) = store.completed.remove(date) {
                        metrics.absorb(&ckpt.ledger);
                        ordered[idx] = Some(ckpt.snapshot);
                        loaded += 1;
                    }
                }
            }
            metrics.record_checkpoints_loaded(loaded);
            metrics.record_checkpoints_quarantined(store.quarantined.len() as u64);
        }

        // Live-progress state: dates already adopted from checkpoints
        // count as done, and every completed sweep ticks the counter.
        // Purely observational — the heartbeat thread only reads it.
        let dates_done = AtomicU64::new(ordered.iter().filter(|s| s.is_some()).count() as u64);
        let progress =
            Progress::from_env("scan-campaign", self.dates.len() as u64, "dates", "hosts");

        // One date, end to end: sweep into a fresh per-date bag,
        // persist (snapshot + ledger) if checkpointing, then fold the
        // ledger into the campaign bag. The per-date bag is what makes
        // the stored ledger lossless — and since all counters are
        // additive, campaign totals are unchanged by the indirection.
        // Latency histograms are merged separately: the stored ledger
        // never carries timing, so resume replays counters only.
        let sweep_date =
            |date: Date, faults: &ScanFaults| -> Result<ScanSnapshot, ScanCheckpointError> {
                let date_metrics = ScanMetrics::new();
                let snapshot = sweep_sharded_with(
                    population,
                    date,
                    self.hosts_per_sweep,
                    self.seed,
                    1,
                    &date_metrics,
                    faults,
                );
                let ledger = date_metrics.snapshot();
                metrics.absorb(&ledger);
                metrics.merge_latency_from(&date_metrics);
                if let Some(dir) = checkpoint_dir {
                    let write_started = Instant::now();
                    checkpoint::write_date(
                        dir,
                        &DateCheckpoint {
                            snapshot: snapshot.clone(),
                            ledger,
                        },
                    )?;
                    metrics.observe_checkpoint_write(write_started.elapsed());
                    metrics.record_checkpoint_written();
                }
                dates_done.fetch_add(1, Ordering::Relaxed);
                Ok(snapshot)
            };

        let pending: Vec<usize> = ordered
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_none())
            .map(|(idx, _)| idx)
            .collect();
        let workers = workers.max(1).min(pending.len().max(1));

        // The opt-in heartbeat ticks on its own scoped thread for the
        // whole remaining campaign (sweeps, survivor-merge, recovery);
        // when disabled no thread is spawned at all.
        let stop_heartbeat = AtomicBool::new(false);
        let result = std::thread::scope(|heartbeat_scope| {
            if progress.is_enabled() {
                heartbeat_scope.spawn(|| {
                    progress.run_ticker(&stop_heartbeat, || {
                        (
                            dates_done.load(Ordering::Relaxed),
                            metrics.snapshot().hosts_probed,
                        )
                    })
                });
            }
            let result =
                self.run_pending_dates(workers, &pending, &mut ordered, metrics, &sweep_date);
            stop_heartbeat.store(true, Ordering::Release);
            result
        });
        result?;
        Ok(ordered
            .into_iter()
            .map(|s| s.expect("all slots filled"))
            .collect())
    }

    /// Sweep every index in `pending` into its `ordered` slot via
    /// `sweep_date`: inline when `workers <= 1`, otherwise across a
    /// worker scope with survivor-merge and an inline recovery pass
    /// for dates lost to dead workers.
    fn run_pending_dates(
        &self,
        workers: usize,
        pending: &[usize],
        ordered: &mut [Option<ScanSnapshot>],
        metrics: &ScanMetrics,
        sweep_date: &(impl Fn(Date, &ScanFaults) -> Result<ScanSnapshot, ScanCheckpointError> + Sync),
    ) -> Result<(), ScanCheckpointError> {
        if workers <= 1 {
            for &idx in pending {
                ordered[idx] = Some(sweep_date(self.dates[idx], &self.faults)?);
            }
            return Ok(());
        }

        let next = AtomicUsize::new(0);
        // First checkpoint-write failure; workers stop claiming dates
        // once it is set and the error surfaces after the scope joins.
        let ckpt_error: Mutex<Option<ScanCheckpointError>> = Mutex::new(None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut done = Vec::new();
                        loop {
                            if ckpt_error
                                .lock()
                                .unwrap_or_else(|p| p.into_inner())
                                .is_some()
                            {
                                break;
                            }
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&idx) = pending.get(i) else {
                                break;
                            };
                            let date = self.dates[idx];
                            if self.faults.panic_on_date == Some(date) {
                                // Campaign-level failpoint: this worker
                                // dies before sweeping, losing the date
                                // and anything still in its `done` pile.
                                quiet_thread_panics(true);
                                panic!("scan fault failpoint: date {date}");
                            }
                            match sweep_date(date, &self.faults) {
                                Ok(snap) => done.push((idx, snap)),
                                Err(e) => {
                                    let mut guard =
                                        ckpt_error.lock().unwrap_or_else(|p| p.into_inner());
                                    guard.get_or_insert(e);
                                    break;
                                }
                            }
                        }
                        done
                    })
                })
                .collect();
            for h in handles {
                // Survivor-merge: a dead worker costs its unreturned
                // dates (recovered below), never the campaign.
                match h.join() {
                    Ok(done) => {
                        for (idx, snap) in done {
                            ordered[idx] = Some(snap);
                        }
                    }
                    Err(_) => metrics.record_worker_lost(),
                }
            }
        });
        if let Some(e) = ckpt_error.into_inner().unwrap_or_else(|p| p.into_inner()) {
            return Err(e);
        }
        // Recovery pass: re-sweep any date a dead worker left behind.
        // The failpoint is cleared so recovery cannot re-trip it; the
        // fault *profile* stays, so the recovered snapshot is exactly
        // the one the lost worker would have produced (counter-based
        // sampling). Recovered dates are checkpointed like any other.
        let mut recovery = self.faults;
        recovery.panic_on_date = None;
        for (idx, slot) in ordered.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(sweep_date(self.dates[idx], &recovery)?);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weekly_schedule_covers_window() {
        let dates = schedule(CENSYS_START, CENSYS_END, 7);
        // 32 months of weekly scans ≈ 142 sweeps.
        assert!(dates.len() >= 140 && dates.len() <= 145, "{}", dates.len());
        assert_eq!(dates[0], CENSYS_START);
        assert!(*dates.last().unwrap() <= CENSYS_END);
        for w in dates.windows(2) {
            assert_eq!(w[1] - w[0], 7);
        }
    }

    #[test]
    fn campaign_runs_in_order() {
        let campaign = ScanCampaign {
            dates: schedule(Date::ymd(2016, 1, 1), Date::ymd(2016, 3, 1), 30),
            hosts_per_sweep: 200,
            seed: 5,
            faults: ScanFaults::none(),
        };
        let snaps = campaign.run(&ServerPopulation::new());
        assert_eq!(snaps.len(), 3);
        assert!(snaps.windows(2).all(|w| w[0].date < w[1].date));
        assert!(snaps.iter().all(|s| s.hosts == 200));
    }

    #[test]
    fn parallel_campaign_matches_serial() {
        let campaign = ScanCampaign {
            dates: schedule(Date::ymd(2016, 1, 1), Date::ymd(2016, 6, 1), 30),
            hosts_per_sweep: 300,
            seed: 17,
            faults: ScanFaults::none(),
        };
        let pop = ServerPopulation::new();
        let serial = campaign.run(&pop);
        for workers in [1usize, 2, 5, 8] {
            let metrics = ScanMetrics::new();
            let parallel = campaign.run_parallel(&pop, workers, &metrics);
            assert_eq!(serial, parallel, "workers = {workers}");
            let s = metrics.snapshot();
            assert!(s.accounting_holds(), "{s:?}");
            assert_eq!(s.hosts_probed, 300 * campaign.dates.len() as u64);
            assert_eq!(s.sweeps_completed, campaign.dates.len() as u64);
        }
    }

    #[test]
    fn faulted_campaign_matches_serial_and_accounts_loss() {
        let campaign = ScanCampaign {
            dates: schedule(Date::ymd(2016, 1, 1), Date::ymd(2016, 6, 1), 30),
            hosts_per_sweep: 600,
            seed: 23,
            faults: ScanFaults::stress(),
        };
        let pop = ServerPopulation::new();
        let serial = campaign.run(&pop);
        for workers in [1usize, 3, 6] {
            let metrics = ScanMetrics::new();
            let parallel = campaign.run_parallel(&pop, workers, &metrics);
            assert_eq!(serial, parallel, "workers = {workers}");
            let s = metrics.snapshot();
            assert!(s.accounting_holds(), "{s:?}");
            assert!(s.hosts_dropped > 0, "{s:?}");
            assert!(s.probes_timed_out > 0, "{s:?}");
        }
    }

    #[test]
    fn killed_campaign_worker_recovers_every_date() {
        let dates = schedule(Date::ymd(2016, 1, 1), Date::ymd(2016, 6, 1), 30);
        let killed = dates[2];
        let clean = ScanCampaign {
            dates: dates.clone(),
            hosts_per_sweep: 300,
            seed: 17,
            faults: ScanFaults::none(),
        };
        let campaign = clean.clone().with_faults(ScanFaults {
            panic_on_date: Some(killed),
            ..ScanFaults::none()
        });
        let pop = ServerPopulation::new();
        let expected = clean.run(&pop);
        for workers in [2usize, 4] {
            let metrics = ScanMetrics::new();
            let snaps = campaign.run_parallel(&pop, workers, &metrics);
            // Degraded, not panicked — and the recovery sweep restores
            // the killed date bit-for-bit.
            assert_eq!(snaps, expected, "workers = {workers}");
            let s = metrics.snapshot();
            assert!(s.workers_lost >= 1, "{s:?}");
            assert!(s.accounting_holds(), "{s:?}");
        }
    }

    #[test]
    fn single_day_schedule() {
        let d = Date::ymd(2017, 1, 1);
        assert_eq!(schedule(d, d, 7), vec![d]);
    }

    fn unique_dir(tag: &str) -> std::path::PathBuf {
        let pid = std::process::id();
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        std::env::temp_dir().join(format!("tlscope-campaign-{tag}-{pid}-{t}"))
    }

    /// Counters that must survive interrupt/resume exactly (everything
    /// but the wall-clock and the per-run checkpoint counters).
    fn ledger_core(s: &crate::metrics::ScanMetricsSnapshot) -> [u64; 9] {
        [
            s.hosts_dispatched,
            s.hosts_probed,
            s.hosts_dropped,
            s.host_retries,
            s.probes_sent,
            s.handshakes_completed,
            s.handshakes_refused,
            s.probes_timed_out,
            s.sweeps_completed,
        ]
    }

    #[test]
    fn resumed_campaign_is_bit_identical() {
        let campaign = ScanCampaign {
            dates: schedule(Date::ymd(2016, 1, 1), Date::ymd(2016, 6, 1), 30),
            hosts_per_sweep: 300,
            seed: 17,
            faults: ScanFaults::stress(),
        };
        let pop = ServerPopulation::new();
        let clean_metrics = ScanMetrics::new();
        let expected = campaign.run_parallel(&pop, 2, &clean_metrics);

        // "Interrupt" after three dates: a first run over the prefix
        // leaves exactly their checkpoints behind.
        let dir = unique_dir("resume");
        let prefix = ScanCampaign {
            dates: campaign.dates[..3].to_vec(),
            ..campaign.clone()
        };
        prefix
            .run_durable(&pop, 2, &ScanMetrics::new(), Some(&dir))
            .unwrap();

        let resumed = ScanMetrics::new();
        let snaps = campaign.run_durable(&pop, 3, &resumed, Some(&dir)).unwrap();
        assert_eq!(snaps, expected, "resume must be bit-identical");
        let s = resumed.snapshot();
        assert_eq!(s.checkpoints_loaded, 3);
        assert_eq!(s.checkpoints_quarantined, 0);
        assert_eq!(s.checkpoints_written, (campaign.dates.len() - 3) as u64);
        assert!(s.accounting_holds(), "{s:?}");
        // Replayed ledgers restore the uninterrupted totals exactly.
        assert_eq!(ledger_core(&s), ledger_core(&clean_metrics.snapshot()));

        // A second resume finds every date done: nothing re-swept,
        // totals still exact.
        let warm = ScanMetrics::new();
        let again = campaign.run_durable(&pop, 2, &warm, Some(&dir)).unwrap();
        assert_eq!(again, expected);
        let w = warm.snapshot();
        assert_eq!(w.checkpoints_loaded, campaign.dates.len() as u64);
        assert_eq!(w.checkpoints_written, 0);
        assert_eq!(ledger_core(&w), ledger_core(&clean_metrics.snapshot()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_io_errors_surface_as_errors() {
        // A plain file where the checkpoint directory should be makes
        // every store operation fail — surfaced, not panicked.
        let dir = unique_dir("io-error");
        std::fs::write(&dir, b"not a directory").unwrap();
        let campaign = ScanCampaign {
            dates: schedule(Date::ymd(2016, 1, 1), Date::ymd(2016, 3, 1), 30),
            hosts_per_sweep: 100,
            seed: 3,
            faults: ScanFaults::none(),
        };
        let err = campaign
            .run_durable(&ServerPopulation::new(), 2, &ScanMetrics::new(), Some(&dir))
            .unwrap_err();
        assert!(matches!(err, ScanCheckpointError::Io(..)), "{err}");
        std::fs::remove_file(&dir).unwrap();
    }
}
