//! Per-date checkpoint files for resumable scan campaigns.
//!
//! The paper's Censys campaign swept IPv4 weekly for almost three
//! years (§3.2); a crash 100 sweeps in must not force a restart from
//! zero. The campaign runner persists each completed date's
//! [`ScanSnapshot`] *and* its per-date [`ScanMetrics`] ledger to
//! `<dir>/<YYYY-MM-DD>.ckpt`, and on resume reloads both: the
//! snapshot fills the date's slot in the campaign series, and the
//! ledger is replayed into the campaign's metrics bag
//! ([`ScanMetrics::absorb`]) so the resumed run's accounting — right
//! down to the two-part invariant `dispatched == probed + dropped` —
//! is indistinguishable from an uninterrupted run. Because every
//! sweep is a pure function of `(seed, date, host_index, attempt)`,
//! the resumed series is **bit-identical** (`PartialEq`) to a clean
//! run at any worker count and under any fault profile.
//!
//! Files are written atomically (tmp + rename, via
//! [`tlscope_durable::write_atomic`]) and sealed with an FNV-1a
//! content-checksum footer from birth, so truncation and bit-rot are
//! *detected* at load: [`load_dir`] quarantines damaged files
//! (rename to `*.ckpt.bad`) and reports their dates as incomplete so
//! the campaign re-sweeps them instead of aborting.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use tlscope_chron::Date;

use crate::metrics::ScanMetricsSnapshot;
use crate::sweep::ScanSnapshot;

/// Versioned first line of every scan checkpoint file.
const HEADER: &str = "# tlscope scan checkpoint v1";

/// Errors from scan-checkpoint IO or parsing.
#[derive(Debug)]
pub enum ScanCheckpointError {
    /// Filesystem failure (path carried for context).
    Io(PathBuf, std::io::Error),
    /// A checkpoint file failed to parse; carries path and 1-based
    /// line.
    Malformed(PathBuf, usize),
    /// A checkpoint file failed its content-checksum check (truncated,
    /// torn, or bit-rotted on disk).
    Corrupt(PathBuf),
}

impl ScanCheckpointError {
    /// True when the error describes a damaged *file* (recoverable by
    /// quarantining it and re-sweeping its date) rather than a
    /// filesystem failure that must abort the resume.
    pub fn is_damage(&self) -> bool {
        matches!(
            self,
            ScanCheckpointError::Malformed(..) | ScanCheckpointError::Corrupt(..)
        )
    }
}

impl std::fmt::Display for ScanCheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanCheckpointError::Io(p, e) => {
                write!(f, "scan checkpoint io error at {}: {e}", p.display())
            }
            ScanCheckpointError::Malformed(p, line) => {
                write!(f, "malformed scan checkpoint {} (line {line})", p.display())
            }
            ScanCheckpointError::Corrupt(p) => {
                write!(
                    f,
                    "corrupt scan checkpoint {} (checksum failed)",
                    p.display()
                )
            }
        }
    }
}

impl std::error::Error for ScanCheckpointError {}

/// One completed campaign date: what the sweep measured and what it
/// cost. The ledger is the per-date [`ScanMetricsSnapshot`] recorded
/// while sweeping only this date, so replaying it on resume
/// reconstructs the campaign totals losslessly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DateCheckpoint {
    /// The sweep's measurement counters.
    pub snapshot: ScanSnapshot,
    /// The sweep's accounting ledger (core counters only; checkpoint
    /// counters are per-run and never persisted).
    pub ledger: ScanMetricsSnapshot,
}

/// Serialize one completed date to checkpoint text: versioned header,
/// a `snap` line, a `ledger` line, and a checksum footer. Field order
/// is fixed, so equal checkpoints produce equal bytes.
pub fn to_text(ckpt: &DateCheckpoint) -> String {
    let s = &ckpt.snapshot;
    let l = &ckpt.ledger;
    let mut out = String::from(HEADER);
    out.push('\n');
    out.push_str(&format!(
        "snap\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
        s.date,
        s.hosts,
        s.ssl3_supported,
        s.answered,
        s.chose_aead,
        s.chose_cbc,
        s.chose_rc4,
        s.chose_3des,
        s.chose_tls12,
        s.export_supported,
        s.heartbeat_supported,
        s.heartbleed_vulnerable,
    ));
    out.push_str(&format!(
        "ledger\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
        l.hosts_dispatched,
        l.hosts_probed,
        l.hosts_dropped,
        l.host_retries,
        l.probes_sent,
        l.handshakes_completed,
        l.handshakes_refused,
        l.probes_timed_out,
        l.workers_lost,
        l.sweeps_completed,
        l.scan_nanos,
    ));
    tlscope_durable::seal(out)
}

/// Parse checkpoint text back into a [`DateCheckpoint`]. The checksum
/// footer is verified first; a failed check is
/// [`ScanCheckpointError::Corrupt`].
pub fn from_text(text: &str, path: &Path) -> Result<DateCheckpoint, ScanCheckpointError> {
    let bad = |n: usize| ScanCheckpointError::Malformed(path.to_path_buf(), n);
    if !text.lines().next().unwrap_or("").starts_with(HEADER) {
        return Err(bad(1));
    }
    let body = tlscope_durable::open_sealed(text)
        .map_err(|_| ScanCheckpointError::Corrupt(path.to_path_buf()))?;
    // Both section lines carry exactly eleven u64 counters (the snap
    // line after its leading date field).
    fn counters(fields: &mut std::str::Split<'_, char>) -> Option<[u64; 11]> {
        let mut out = [0u64; 11];
        for slot in &mut out {
            *slot = fields.next()?.parse().ok()?;
        }
        fields.next().is_none().then_some(out)
    }
    let mut snapshot: Option<ScanSnapshot> = None;
    let mut ledger: Option<ScanMetricsSnapshot> = None;
    let mut last = 1;
    for (idx, line) in body.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let n = idx + 1;
        last = n;
        let (tag, rest) = line.split_once('\t').ok_or(bad(n))?;
        let mut f = rest.split('\t');
        match tag {
            "snap" if snapshot.is_none() => {
                let date: Date = f.next().and_then(|v| v.parse().ok()).ok_or(bad(n))?;
                let c = counters(&mut f).ok_or(bad(n))?;
                snapshot = Some(ScanSnapshot {
                    date,
                    hosts: c[0],
                    ssl3_supported: c[1],
                    answered: c[2],
                    chose_aead: c[3],
                    chose_cbc: c[4],
                    chose_rc4: c[5],
                    chose_3des: c[6],
                    chose_tls12: c[7],
                    export_supported: c[8],
                    heartbeat_supported: c[9],
                    heartbleed_vulnerable: c[10],
                });
            }
            "ledger" if ledger.is_none() => {
                let c = counters(&mut f).ok_or(bad(n))?;
                ledger = Some(ScanMetricsSnapshot {
                    hosts_dispatched: c[0],
                    hosts_probed: c[1],
                    hosts_dropped: c[2],
                    host_retries: c[3],
                    probes_sent: c[4],
                    handshakes_completed: c[5],
                    handshakes_refused: c[6],
                    probes_timed_out: c[7],
                    workers_lost: c[8],
                    sweeps_completed: c[9],
                    scan_nanos: c[10],
                    checkpoints_written: 0,
                    checkpoints_loaded: 0,
                    checkpoints_quarantined: 0,
                });
            }
            // Duplicate sections or unknown tags are malformed.
            _ => return Err(bad(n)),
        }
    }
    match (snapshot, ledger) {
        (Some(snapshot), Some(ledger)) => Ok(DateCheckpoint { snapshot, ledger }),
        // A missing section means the body ended early.
        _ => Err(bad(last + 1)),
    }
}

fn date_path(dir: &Path, date: Date) -> PathBuf {
    dir.join(format!("{date}.ckpt"))
}

/// Atomically write the checkpoint for one completed date.
pub fn write_date(dir: &Path, ckpt: &DateCheckpoint) -> Result<(), ScanCheckpointError> {
    let date = ckpt.snapshot.date;
    tlscope_durable::write_atomic(dir, &format!("{date}.ckpt"), &to_text(ckpt))
        .map_err(|e| ScanCheckpointError::Io(date_path(dir, date), e))
}

/// Load one date's checkpoint file. The filename date must match the
/// `snap` line's date — a mismatch means the file's content does not
/// belong to this slot and is treated as damage.
pub fn read_date(dir: &Path, date: Date) -> Result<DateCheckpoint, ScanCheckpointError> {
    let path = date_path(dir, date);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        // Bit-rot can make a file invalid UTF-8; that is damage to the
        // file's content, not a filesystem failure.
        Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
            return Err(ScanCheckpointError::Corrupt(path));
        }
        Err(e) => return Err(ScanCheckpointError::Io(path, e)),
    };
    let ckpt = from_text(&text, &path)?;
    if ckpt.snapshot.date != date {
        return Err(ScanCheckpointError::Malformed(path, 2));
    }
    Ok(ckpt)
}

/// Result of scanning a scan-checkpoint directory with [`load_dir`].
#[derive(Debug)]
pub struct ScanDirLoad {
    /// Dates whose checkpoints loaded cleanly, with their contents.
    pub completed: BTreeMap<Date, DateCheckpoint>,
    /// Quarantine paths (`*.ckpt.bad`) of damaged files that were
    /// moved aside; their dates are *not* in `completed`, so the
    /// campaign re-sweeps them.
    pub quarantined: Vec<PathBuf>,
}

/// Scan a checkpoint directory for completed campaign dates.
///
/// A missing directory is a valid cold start. Leftover `.tmp` files
/// from an interrupted write are ignored — their date was not
/// completed. A damaged file (malformed, truncated, failing its
/// checksum, or carrying the wrong date) is quarantined — renamed to
/// `<date>.ckpt.bad` — and its date reported incomplete, so a resume
/// re-sweeps it instead of aborting; only filesystem errors abort.
pub fn load_dir(dir: &Path) -> Result<ScanDirLoad, ScanCheckpointError> {
    let mut load = ScanDirLoad {
        completed: BTreeMap::new(),
        quarantined: Vec::new(),
    };
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(load),
        Err(e) => return Err(ScanCheckpointError::Io(dir.to_path_buf(), e)),
    };
    let mut dates = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| ScanCheckpointError::Io(dir.to_path_buf(), e))?;
        let name = entry.file_name();
        let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(".ckpt")) else {
            continue;
        };
        if let Ok(date) = stem.parse::<Date>() {
            dates.push(date);
        }
    }
    dates.sort();
    for date in dates {
        match read_date(dir, date) {
            Ok(ckpt) => {
                load.completed.insert(date, ckpt);
            }
            Err(e) if e.is_damage() => {
                let path = date_path(dir, date);
                let bad = tlscope_durable::quarantine(&path)
                    .map_err(|io| ScanCheckpointError::Io(path, io))?;
                load.quarantined.push(bad);
            }
            Err(e) => return Err(e),
        }
    }
    Ok(load)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::ScanFaults;
    use crate::metrics::ScanMetrics;
    use crate::sweep::sweep_sharded_with;
    use tlscope_servers::ServerPopulation;

    fn unique_dir(tag: &str) -> PathBuf {
        let pid = std::process::id();
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        std::env::temp_dir().join(format!("tlscope-scan-ckpt-{tag}-{pid}-{t}"))
    }

    fn sample_checkpoint(date: Date) -> DateCheckpoint {
        let pop = ServerPopulation::new();
        let metrics = ScanMetrics::new();
        let snapshot = sweep_sharded_with(
            &pop,
            date,
            400,
            41,
            1,
            &metrics,
            &ScanFaults::scan_defaults(),
        );
        DateCheckpoint {
            snapshot,
            ledger: metrics.snapshot(),
        }
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let ckpt = sample_checkpoint(Date::ymd(2016, 3, 5));
        assert!(ckpt.ledger.accounting_holds());
        assert!(ckpt.snapshot.answered > 0, "sample must probe something");
        let text = to_text(&ckpt);
        assert!(text.starts_with(HEADER));
        let back = from_text(&text, Path::new("test")).unwrap();
        assert_eq!(ckpt, back, "checkpoint text must be lossless");
        assert_eq!(text, to_text(&back));
    }

    #[test]
    fn dir_roundtrip_and_tmp_files_ignored() {
        let dir = unique_dir("dir");
        let d1 = Date::ymd(2016, 3, 5);
        let d2 = Date::ymd(2016, 4, 4);
        let c1 = sample_checkpoint(d1);
        let c2 = sample_checkpoint(d2);
        write_date(&dir, &c1).unwrap();
        write_date(&dir, &c2).unwrap();
        std::fs::write(dir.join("2016-05-04.ckpt.tmp"), "torn").unwrap();
        let load = load_dir(&dir).unwrap();
        assert_eq!(load.completed.len(), 2);
        assert_eq!(load.completed[&d1], c1);
        assert_eq!(load.completed[&d2], c2);
        assert!(load.quarantined.is_empty());
        assert!(!dir.join("2016-03-05.ckpt.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_is_cold_start() {
        let load = load_dir(&unique_dir("absent")).unwrap();
        assert!(load.completed.is_empty());
        assert!(load.quarantined.is_empty());
    }

    #[test]
    fn malformed_and_corrupt_texts_are_rejected() {
        let p = Path::new("x");
        assert!(matches!(
            from_text("", p),
            Err(ScanCheckpointError::Malformed(_, 1))
        ));
        assert!(matches!(
            from_text("# some other file\n", p),
            Err(ScanCheckpointError::Malformed(_, 1))
        ));
        // Right header, no footer: truncation.
        assert!(matches!(
            from_text("# tlscope scan checkpoint v1\n", p),
            Err(ScanCheckpointError::Corrupt(_))
        ));
        // Sealed but missing the ledger section.
        let half = tlscope_durable::seal(format!(
            "{HEADER}\nsnap\t2016-03-05\t1\t1\t1\t1\t1\t1\t1\t1\t1\t1\t1\n"
        ));
        assert!(matches!(
            from_text(&half, p),
            Err(ScanCheckpointError::Malformed(_, 3))
        ));
        // Sealed but with a bogus tag.
        let bogus = tlscope_durable::seal(format!("{HEADER}\nwhat\tis\tthis\n"));
        assert!(matches!(
            from_text(&bogus, p),
            Err(ScanCheckpointError::Malformed(_, 2))
        ));
        // Errors render with context.
        let err = from_text(&bogus, p).unwrap_err();
        assert!(err.to_string().contains("line 2"));
        let err = from_text("# tlscope scan checkpoint v1\n", p).unwrap_err();
        assert!(err.to_string().contains("checksum"));
    }

    #[test]
    fn damaged_files_are_quarantined_not_fatal() {
        let dir = unique_dir("quarantine");
        let d1 = Date::ymd(2016, 3, 5);
        let d2 = Date::ymd(2016, 4, 4);
        let d3 = Date::ymd(2016, 5, 4);
        let d4 = Date::ymd(2016, 6, 3);
        for d in [d1, d2, d3, d4] {
            write_date(&dir, &sample_checkpoint(d)).unwrap();
        }
        // Truncate d2, bit-flip d3, and swap d4's content to a
        // different date (slot mismatch).
        let p2 = date_path(&dir, d2);
        let t2 = std::fs::read_to_string(&p2).unwrap();
        std::fs::write(&p2, &t2[..t2.len() / 2]).unwrap();
        let p3 = date_path(&dir, d3);
        let mut b3 = std::fs::read(&p3).unwrap();
        let mid = b3.len() / 2;
        b3[mid] ^= 0x10;
        std::fs::write(&p3, &b3).unwrap();
        let p4 = date_path(&dir, d4);
        std::fs::write(&p4, to_text(&sample_checkpoint(d1))).unwrap();

        let load = load_dir(&dir).unwrap();
        assert_eq!(load.completed.keys().copied().collect::<Vec<_>>(), vec![d1]);
        assert_eq!(
            load.quarantined,
            vec![
                dir.join(format!("{d2}.ckpt.bad")),
                dir.join(format!("{d3}.ckpt.bad")),
                dir.join(format!("{d4}.ckpt.bad")),
            ]
        );
        assert!(load.quarantined.iter().all(|p| p.exists()));
        // A second load sees one intact date and no new damage.
        let again = load_dir(&dir).unwrap();
        assert_eq!(again.completed.len(), 1);
        assert!(again.quarantined.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
