//! # tlscope-scanner
//!
//! Active scanning harness — the reproduction's analogue of the Censys /
//! ZMap / ZGrab pipeline (§3.2 of *Coming of Age*, IMC 2018): byte-level
//! scan probes (a 2015-Chrome-equivalent hello, an SSL3-only hello, an
//! export-suite hello, a Heartbeat check), host sweeps over the
//! simulated IPv4 population, and the weekly scan schedule covering
//! 2015-08-22 … 2018-05-13.
//!
//! ```
//! use tlscope_scanner::{sweep, probe};
//! use tlscope_servers::ServerPopulation;
//! use tlscope_chron::Date;
//!
//! let pop = ServerPopulation::new();
//! let snap = sweep(&pop, Date::ymd(2016, 6, 1), 500, 42);
//! assert_eq!(snap.hosts, 500);
//! assert!(snap.pct(snap.answered) > 80.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod faults;
pub mod metrics;
pub mod probe;
pub mod schedule;
pub mod sweep;

pub use checkpoint::{DateCheckpoint, ScanCheckpointError, ScanDirLoad};
pub use faults::{ScanFaultConfigError, ScanFaults, DEAD_HOST_SPAN_DAYS, MAX_PROBE_ATTEMPTS};
pub use metrics::{ScanLatency, ScanMetrics, ScanMetricsSnapshot};
pub use probe::{PreparedProbe, ProbeSet};
pub use schedule::{schedule, ScanCampaign, CENSYS_END, CENSYS_START};
pub use sweep::{
    probe_host, probe_host_with, pulse_survey, pulse_survey_sharded, pulse_survey_with, sweep,
    sweep_faulted, sweep_sharded, sweep_sharded_with, ProbeFlight, PulseSnapshot, ScanSnapshot,
};
