//! Scan probes: the ClientHellos the active scanner offers.
//!
//! Censys's TLS scans "offer the same set of cipher suites as a 2015
//! version of Chrome including a number of strong ciphers ... as well as
//! weaker CBC, RC4, and 3DES cipher suites" (§3.2); separate weekly
//! scans offer SSL 3 as the sole version, and others look for
//! export-grade support. Each probe here is a genuine ClientHello.

use tlscope_wire::{CipherSuite, ClientHello, Extension, NamedGroup, ProtocolVersion};

fn hello(version: ProtocolVersion, suites: &[u16], extensions: Vec<Extension>) -> ClientHello {
    ClientHello {
        legacy_version: version,
        random: [0x5c; 32],
        session_id: vec![],
        cipher_suites: suites.iter().copied().map(CipherSuite).collect(),
        compression_methods: vec![0],
        extensions: if extensions.is_empty() {
            None
        } else {
            Some(extensions)
        },
    }
}

fn standard_extensions() -> Vec<Extension> {
    vec![
        Extension::server_name("scan.example.org"),
        Extension::renegotiation_info(),
        Extension::supported_groups(&[
            NamedGroup::SECP256R1,
            NamedGroup::SECP384R1,
            NamedGroup::SECP521R1,
        ]),
        Extension::ec_point_formats(&[0]),
        Extension::signature_algorithms(&[0x0403, 0x0401, 0x0501, 0x0201]),
        Extension::heartbeat(1),
    ]
}

/// The 2015-Chrome-equivalent probe: strong AEAD + FS first, CBC, RC4,
/// and 3DES at the bottom.
pub fn chrome_2015() -> ClientHello {
    hello(
        ProtocolVersion::Tls12,
        &[
            0xc02b, 0xc02f, 0xcc14, 0xcc13, 0x009e, 0x009c, // AEAD
            0xc023, 0xc027, 0xc009, 0xc013, 0xc00a, 0xc014, // ECDHE CBC
            0x003c, 0x002f, 0x0035, 0x0033, 0x0039, // RSA/DHE CBC
            0xc011, 0xc007, 0x0005, 0x0004, // RC4
            0xc012, 0x000a, // 3DES (bottom of the list)
        ],
        standard_extensions(),
    )
}

/// SSL3-only probe: legacy version pinned to SSL 3, pre-TLS suites, no
/// extensions (SSL 3 servers commonly reject them).
pub fn ssl3_only() -> ClientHello {
    hello(
        ProtocolVersion::Ssl3,
        &[0x002f, 0x0035, 0x0005, 0x0004, 0x000a, 0x0009],
        vec![],
    )
}

/// Export-suite probe (the FREAK/Logjam surface scan).
pub fn export_only() -> ClientHello {
    hello(
        ProtocolVersion::Tls10,
        &[0x0003, 0x0006, 0x0008, 0x0014, 0x0011],
        vec![],
    )
}

/// Heartbeat probe: minimal strong offer plus the heartbeat extension.
pub fn heartbeat_probe() -> ClientHello {
    hello(
        ProtocolVersion::Tls12,
        &[0xc02f, 0xc013, 0x002f, 0x0035, 0x000a],
        standard_extensions(),
    )
}

/// RC4-only probe: the SSL Pulse-style support check (§5.3 — "19.1% of
/// servers still support RC4 cipher suites").
pub fn rc4_only() -> ClientHello {
    hello(
        ProtocolVersion::Tls12,
        &[0xc011, 0xc007, 0x0005, 0x0004],
        standard_extensions(),
    )
}

/// The same 2015-Chrome probe with RC4 removed — the §5.3 experiment
/// that flipped bankmellat.ir from RC4 to AEAD.
pub fn chrome_2015_no_rc4() -> ClientHello {
    let mut h = chrome_2015();
    h.cipher_suites.retain(|c| !c.is_rc4());
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlscope_wire::exts::ext_type as xt;

    #[test]
    fn chrome_probe_shape() {
        let h = chrome_2015();
        assert!(h.cipher_suites[0].is_aead());
        assert!(h.cipher_suites.last().unwrap().is_3des());
        assert!(h.cipher_suites.iter().any(|c| c.is_rc4()));
        assert!(h.cipher_suites.iter().any(|c| c.is_cbc()));
        assert!(!h.cipher_suites.iter().any(|c| c.is_export()));
        // Parses through the wire like any hello.
        let parsed = ClientHello::parse_handshake(&h.to_handshake_bytes()).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn ssl3_probe_is_ssl3_only() {
        let h = ssl3_only();
        assert_eq!(h.legacy_version, ProtocolVersion::Ssl3);
        assert!(h.extensions.is_none());
        assert!(!h.offers_tls13());
        assert_eq!(h.offered_versions(), vec![ProtocolVersion::Ssl3]);
    }

    #[test]
    fn export_probe_offers_only_export() {
        let h = export_only();
        assert!(h.cipher_suites.iter().all(|c| c.is_export()));
    }

    #[test]
    fn heartbeat_probe_carries_extension() {
        let h = heartbeat_probe();
        assert!(h.find_extension(xt::HEARTBEAT).is_some());
    }

    #[test]
    fn no_rc4_variant() {
        let h = chrome_2015_no_rc4();
        assert!(!h.cipher_suites.iter().any(|c| c.is_rc4()));
        assert!(h.cipher_suites.len() < chrome_2015().cipher_suites.len());
    }
}
