//! Scan probes: the ClientHellos the active scanner offers.
//!
//! Censys's TLS scans "offer the same set of cipher suites as a 2015
//! version of Chrome including a number of strong ciphers ... as well as
//! weaker CBC, RC4, and 3DES cipher suites" (§3.2); separate weekly
//! scans offer SSL 3 as the sole version, and others look for
//! export-grade support. Each probe here is a genuine ClientHello.

use tlscope_servers::ClientFacts;
use tlscope_wire::exts::ext_type;
use tlscope_wire::{CipherSuite, ClientHello, Extension, NamedGroup, ProtocolVersion};

fn hello(version: ProtocolVersion, suites: &[u16], extensions: Vec<Extension>) -> ClientHello {
    ClientHello {
        legacy_version: version,
        random: [0x5c; 32],
        session_id: vec![],
        cipher_suites: suites.iter().copied().map(CipherSuite).collect(),
        compression_methods: vec![0],
        extensions: if extensions.is_empty() {
            None
        } else {
            Some(extensions)
        },
    }
}

fn standard_extensions() -> Vec<Extension> {
    vec![
        Extension::server_name("scan.example.org"),
        Extension::renegotiation_info(),
        Extension::supported_groups(&[
            NamedGroup::SECP256R1,
            NamedGroup::SECP384R1,
            NamedGroup::SECP521R1,
        ]),
        Extension::ec_point_formats(&[0]),
        Extension::signature_algorithms(&[0x0403, 0x0401, 0x0501, 0x0201]),
        Extension::heartbeat(1),
    ]
}

/// The 2015-Chrome-equivalent probe: strong AEAD + FS first, CBC, RC4,
/// and 3DES at the bottom.
pub fn chrome_2015() -> ClientHello {
    hello(
        ProtocolVersion::Tls12,
        &[
            0xc02b, 0xc02f, 0xcc14, 0xcc13, 0x009e, 0x009c, // AEAD
            0xc023, 0xc027, 0xc009, 0xc013, 0xc00a, 0xc014, // ECDHE CBC
            0x003c, 0x002f, 0x0035, 0x0033, 0x0039, // RSA/DHE CBC
            0xc011, 0xc007, 0x0005, 0x0004, // RC4
            0xc012, 0x000a, // 3DES (bottom of the list)
        ],
        standard_extensions(),
    )
}

/// SSL3-only probe: legacy version pinned to SSL 3, pre-TLS suites, no
/// extensions (SSL 3 servers commonly reject them).
pub fn ssl3_only() -> ClientHello {
    hello(
        ProtocolVersion::Ssl3,
        &[0x002f, 0x0035, 0x0005, 0x0004, 0x000a, 0x0009],
        vec![],
    )
}

/// Export-suite probe (the FREAK/Logjam surface scan).
pub fn export_only() -> ClientHello {
    hello(
        ProtocolVersion::Tls10,
        &[0x0003, 0x0006, 0x0008, 0x0014, 0x0011],
        vec![],
    )
}

/// Heartbeat probe: minimal strong offer plus the heartbeat extension.
pub fn heartbeat_probe() -> ClientHello {
    hello(
        ProtocolVersion::Tls12,
        &[0xc02f, 0xc013, 0x002f, 0x0035, 0x000a],
        standard_extensions(),
    )
}

/// RC4-only probe: the SSL Pulse-style support check (§5.3 — "19.1% of
/// servers still support RC4 cipher suites").
pub fn rc4_only() -> ClientHello {
    hello(
        ProtocolVersion::Tls12,
        &[0xc011, 0xc007, 0x0005, 0x0004],
        standard_extensions(),
    )
}

/// The same 2015-Chrome probe with RC4 removed — the §5.3 experiment
/// that flipped bankmellat.ir from RC4 to AEAD.
pub fn chrome_2015_no_rc4() -> ClientHello {
    let mut h = chrome_2015();
    h.cipher_suites.retain(|c| !c.is_rc4());
    h
}

/// A probe materialised once per campaign: the ClientHello itself plus
/// the extension content negotiation reads (`supported_versions`,
/// `supported_groups`), parsed up front so the per-host loop can borrow
/// a [`ClientFacts`] without touching the heap.
///
/// The old path re-built every probe hello — fresh suite and extension
/// `Vec`s — for every one of the thousands of hosts in a sweep;
/// preparing the probe once amortises all of that to campaign setup.
#[derive(Debug, Clone)]
pub struct PreparedProbe {
    hello: ClientHello,
    supported_versions: Option<Vec<ProtocolVersion>>,
    curves: Option<Vec<NamedGroup>>,
    has_renegotiation_info: bool,
    has_heartbeat: bool,
}

impl PreparedProbe {
    /// Prepare `hello` for repeated probing: parse the extension
    /// content [`facts`] will borrow.
    ///
    /// [`facts`]: PreparedProbe::facts
    pub fn new(hello: ClientHello) -> Self {
        let supported_versions = hello
            .find_extension(ext_type::SUPPORTED_VERSIONS)
            .and_then(|e| e.parse_supported_versions().ok());
        let curves = hello
            .find_extension(ext_type::SUPPORTED_GROUPS)
            .and_then(|e| e.parse_supported_groups().ok());
        let has_renegotiation_info = hello.find_extension(ext_type::RENEGOTIATION_INFO).is_some();
        let has_heartbeat = hello.find_extension(ext_type::HEARTBEAT).is_some();
        PreparedProbe {
            hello,
            supported_versions,
            curves,
            has_renegotiation_info,
            has_heartbeat,
        }
    }

    /// The underlying ClientHello.
    pub fn hello(&self) -> &ClientHello {
        &self.hello
    }

    /// Borrow the negotiation-relevant facts. Free: everything was
    /// derived in [`PreparedProbe::new`].
    pub fn facts(&self) -> ClientFacts<'_> {
        ClientFacts {
            legacy_version: self.hello.legacy_version,
            session_id: &self.hello.session_id,
            cipher_suites: &self.hello.cipher_suites,
            supported_versions: self.supported_versions.as_deref(),
            curves: self.curves.as_deref(),
            has_renegotiation_info: self.has_renegotiation_info,
            has_heartbeat: self.has_heartbeat,
            has_extensions: self.hello.extensions.is_some(),
        }
    }
}

/// Every probe one scan campaign sends, prepared once.
///
/// Build one per campaign (or per sweep worker — construction is cheap
/// relative to a sweep, just not free) and thread it through
/// [`crate::sweep::probe_host_with`] / [`crate::pulse_survey`].
#[derive(Debug, Clone)]
pub struct ProbeSet {
    /// The 2015-Chrome-equivalent offer (§3.2).
    pub chrome_2015: PreparedProbe,
    /// The SSL3-only weekly scan offer (§5.1).
    pub ssl3_only: PreparedProbe,
    /// The export-suite offer (§5.5).
    pub export_only: PreparedProbe,
    /// The SSL Pulse RC4-only support check (§5.3).
    pub rc4_only: PreparedProbe,
    /// The Chrome offer with RC4 removed (§5.3's bankmellat experiment).
    pub chrome_2015_no_rc4: PreparedProbe,
}

impl ProbeSet {
    /// Materialise every campaign probe.
    pub fn campaign() -> Self {
        ProbeSet {
            chrome_2015: PreparedProbe::new(chrome_2015()),
            ssl3_only: PreparedProbe::new(ssl3_only()),
            export_only: PreparedProbe::new(export_only()),
            rc4_only: PreparedProbe::new(rc4_only()),
            chrome_2015_no_rc4: PreparedProbe::new(chrome_2015_no_rc4()),
        }
    }
}

impl Default for ProbeSet {
    fn default() -> Self {
        ProbeSet::campaign()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlscope_wire::exts::ext_type as xt;

    #[test]
    fn chrome_probe_shape() {
        let h = chrome_2015();
        assert!(h.cipher_suites[0].is_aead());
        assert!(h.cipher_suites.last().unwrap().is_3des());
        assert!(h.cipher_suites.iter().any(|c| c.is_rc4()));
        assert!(h.cipher_suites.iter().any(|c| c.is_cbc()));
        assert!(!h.cipher_suites.iter().any(|c| c.is_export()));
        // Parses through the wire like any hello.
        let parsed = ClientHello::parse_handshake(&h.to_handshake_bytes()).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn ssl3_probe_is_ssl3_only() {
        let h = ssl3_only();
        assert_eq!(h.legacy_version, ProtocolVersion::Ssl3);
        assert!(h.extensions.is_none());
        assert!(!h.offers_tls13());
        assert_eq!(h.offered_versions(), vec![ProtocolVersion::Ssl3]);
    }

    #[test]
    fn export_probe_offers_only_export() {
        let h = export_only();
        assert!(h.cipher_suites.iter().all(|c| c.is_export()));
    }

    #[test]
    fn heartbeat_probe_carries_extension() {
        let h = heartbeat_probe();
        assert!(h.find_extension(xt::HEARTBEAT).is_some());
    }

    #[test]
    fn no_rc4_variant() {
        let h = chrome_2015_no_rc4();
        assert!(!h.cipher_suites.iter().any(|c| c.is_rc4()));
        assert!(h.cipher_suites.len() < chrome_2015().cipher_suites.len());
    }

    #[test]
    fn prepared_probe_decides_like_parsed_hello() {
        use tlscope_servers::{negotiate, ServerPopulation, ServerProfile};
        let probes = ProbeSet::campaign();
        let profiles = [
            ServerProfile::baseline("t"),
            ServerPopulation::grid_server(),
            ServerPopulation::interwise_server(),
            ServerPopulation::nagios_server(),
            ServerPopulation::splunk_indexer(),
        ];
        for prepared in [
            &probes.chrome_2015,
            &probes.ssl3_only,
            &probes.export_only,
            &probes.rc4_only,
            &probes.chrome_2015_no_rc4,
        ] {
            for profile in &profiles {
                let via_facts = negotiate::decide(profile, &prepared.facts());
                let via_hello = negotiate::respond(profile, prepared.hello(), [0xA5; 32]);
                match (via_facts, via_hello) {
                    (Ok(d), Ok(n)) => {
                        assert_eq!(d.version, n.version);
                        assert_eq!(d.cipher, n.cipher);
                        assert_eq!(d.curve, n.curve);
                        assert_eq!(d.heartbeat, n.heartbeat);
                    }
                    (Err(a), Err(b)) => assert_eq!(a, b),
                    (a, b) => panic!("facts {a:?} vs hello {b:?}"),
                }
            }
        }
    }
}
