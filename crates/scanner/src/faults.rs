//! Fault injection for the active-scan engine.
//!
//! The Censys pipeline the paper rides on (§3.2) ran IPv4-wide sweeps
//! weekly for almost three years. At that scale unanswered SYNs,
//! handshake timeouts, and flaky hosts are the *normal* case, not the
//! exception — a scanner that assumes every probe is answered or
//! refused cleanly is hiding its own loss modes. [`ScanFaults`] is the
//! scan-side mirror of the passive tap's `FaultInjector`: a knob per
//! §3.2 artefact, each drawn deterministically so serial and sharded
//! sweeps see identical fault patterns.
//!
//! Every draw is a pure function of `(seed, date, host_index, attempt)`
//! through the same SplitMix64 counter construction the host sampler
//! and the tap's outage windows use: no draw depends on RNG stream
//! position, worker count, chunk boundaries, or visit order. Retry
//! draws are keyed by attempt number, so a host retried on one shard
//! boundary fails (or recovers) exactly as it would on any other.

use tlscope_chron::Date;

/// Length of one dead-host window, in days. A host that draws "dead"
/// stays dark for the whole window — the scan-side analogue of the
/// tap's contiguous outage spans: real unreachability (machine off,
/// network renumbered) persists across retries and adjacent sweeps,
/// it does not flicker per probe.
pub const DEAD_HOST_SPAN_DAYS: i64 = 7;

/// Probe attempts per host before the scanner gives up and counts the
/// host as dropped (1 initial try + 2 retries).
pub const MAX_PROBE_ATTEMPTS: u32 = 3;

/// A probability field was invalid (checked constructor, see
/// [`ScanFaults::checked`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanFaultConfigError {
    /// Name of the offending field.
    pub field: &'static str,
}

impl std::fmt::Display for ScanFaultConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scan fault probability `{}` must be a finite value in [0, 1]",
            self.field
        )
    }
}

impl std::error::Error for ScanFaultConfigError {}

/// Probabilities of each active-scan fault, plus two deterministic
/// failpoints used by tests to kill workers on purpose.
///
/// `syn_drop_prob` and `flake_prob` apply per `(host, attempt)` and
/// are *transient* — a retry redraws them. `timeout_prob` applies per
/// individual probe within an attempt; a timed-out probe was sent, so
/// it stays in the ledger as `probes_timed_out` rather than being
/// retried. `dead_host_prob` applies per host per
/// [`DEAD_HOST_SPAN_DAYS`]-day window and is *permanent* within the
/// window: every attempt fails, and the host is eventually counted as
/// dropped. Construct with [`ScanFaults::checked`] to validate the
/// probabilities; the struct-literal escape hatch remains for tests,
/// and [`ScanFaults::validate`] can be called on any value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanFaults {
    /// Probability a connect attempt's SYN is silently dropped
    /// (per host per attempt; transient — retried).
    pub syn_drop_prob: f64,
    /// Probability an individual probe's handshake times out after the
    /// connection was established (per probe per attempt; the probe
    /// counts as sent and timed out, never retried).
    pub timeout_prob: f64,
    /// Probability an established connection dies before any probe
    /// completes — a flaky host (per host per attempt; transient —
    /// retried). Scaled by the sampled profile's
    /// `ServerProfile::scan_flake_bias`.
    pub flake_prob: f64,
    /// Probability a host is dead for a whole [`DEAD_HOST_SPAN_DAYS`]
    /// window (per host per window; permanent — retries cannot help,
    /// the host is dropped once the attempt budget is exhausted).
    pub dead_host_prob: f64,
    /// Test failpoint: probing this host index panics the sweep
    /// worker, exercising the chunk-loss recovery path. `None` in
    /// every named profile.
    pub panic_on_host: Option<u64>,
    /// Test failpoint: a campaign worker claiming this sweep date
    /// panics before sweeping, exercising the campaign's lost-shard
    /// re-sweep path. `None` in every named profile.
    pub panic_on_date: Option<Date>,
}

impl ScanFaults {
    /// No faults: every probe is answered or refused cleanly.
    pub fn none() -> Self {
        ScanFaults {
            syn_drop_prob: 0.0,
            timeout_prob: 0.0,
            flake_prob: 0.0,
            dead_host_prob: 0.0,
            panic_on_host: None,
            panic_on_date: None,
        }
    }

    /// The default real-sweep fault mix: a few percent of hosts
    /// unreachable or flaky, a sub-percent handshake-timeout rate —
    /// the magnitudes an IPv4-wide TCP/443 sweep actually sees.
    pub fn scan_defaults() -> Self {
        ScanFaults {
            syn_drop_prob: 0.01,
            timeout_prob: 0.005,
            flake_prob: 0.01,
            dead_host_prob: 0.02,
            ..ScanFaults::none()
        }
    }

    /// A high-fault profile exercising every recovery path: heavy SYN
    /// loss, timeouts, flakes, and dead-host windows. Used by the CI
    /// fault-matrix job (`TLSCOPE_SCAN_FAULT_PROFILE=stress`).
    pub fn stress() -> Self {
        ScanFaults {
            syn_drop_prob: 0.10,
            timeout_prob: 0.08,
            flake_prob: 0.10,
            dead_host_prob: 0.08,
            ..ScanFaults::none()
        }
    }

    /// Checked constructor over the four probabilities (in declaration
    /// order): rejects NaN, negative, and >1.0 values instead of
    /// silently misbehaving at draw time. Failpoints start unset.
    pub fn checked(
        syn_drop_prob: f64,
        timeout_prob: f64,
        flake_prob: f64,
        dead_host_prob: f64,
    ) -> Result<Self, ScanFaultConfigError> {
        let faults = ScanFaults {
            syn_drop_prob,
            timeout_prob,
            flake_prob,
            dead_host_prob,
            ..ScanFaults::none()
        };
        faults.validate()?;
        Ok(faults)
    }

    /// Validate every probability field: finite and within `[0, 1]`.
    pub fn validate(&self) -> Result<(), ScanFaultConfigError> {
        for (field, p) in [
            ("syn_drop_prob", self.syn_drop_prob),
            ("timeout_prob", self.timeout_prob),
            ("flake_prob", self.flake_prob),
            ("dead_host_prob", self.dead_host_prob),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(ScanFaultConfigError { field });
            }
        }
        Ok(())
    }

    /// True when no fault can ever fire (all probabilities zero and no
    /// failpoint armed) — the profile calibration anchors on.
    pub fn is_none(&self) -> bool {
        self.syn_drop_prob == 0.0
            && self.timeout_prob == 0.0
            && self.flake_prob == 0.0
            && self.dead_host_prob == 0.0
            && self.panic_on_host.is_none()
            && self.panic_on_date.is_none()
    }

    /// Resolve a named fault profile: `none`, `defaults` (the real
    /// sweep mix), or `stress`.
    pub fn profile(name: &str) -> Option<Self> {
        match name {
            "none" => Some(ScanFaults::none()),
            "defaults" | "scan" => Some(ScanFaults::scan_defaults()),
            "stress" => Some(ScanFaults::stress()),
            _ => None,
        }
    }

    /// The profile named by the `TLSCOPE_SCAN_FAULT_PROFILE`
    /// environment variable, falling back to `fallback` when the
    /// variable is unset or names no known profile. This is how the CI
    /// fault-matrix job re-runs the scanner tests under `stress`
    /// without a code change.
    pub fn from_env(fallback: ScanFaults) -> ScanFaults {
        std::env::var("TLSCOPE_SCAN_FAULT_PROFILE")
            .ok()
            .as_deref()
            .and_then(ScanFaults::profile)
            .unwrap_or(fallback)
    }

    /// True when `index` is dead for the [`DEAD_HOST_SPAN_DAYS`]
    /// window containing `date`. Pure in `(seed, window, index)`:
    /// attempt-independent, so retries within the window always fail.
    pub fn host_dead(&self, seed: u64, date: Date, index: u64) -> bool {
        if self.dead_host_prob <= 0.0 {
            return false;
        }
        let window = date.to_epoch_days().div_euclid(DEAD_HOST_SPAN_DAYS) as u64;
        unit(key(seed, window, index, 0) ^ SALT_DEAD) < self.dead_host_prob
    }

    /// True when attempt `attempt` at host `index` loses its SYN
    /// (transient: each attempt redraws).
    pub fn syn_dropped(&self, seed: u64, date: Date, index: u64, attempt: u32) -> bool {
        if self.syn_drop_prob <= 0.0 {
            return false;
        }
        let days = date.to_epoch_days() as u64;
        unit(key(seed, days, index, attempt) ^ SALT_SYN) < self.syn_drop_prob
    }

    /// True when the established connection of attempt `attempt` at
    /// host `index` flakes out before probing completes. `bias` scales
    /// the base probability (flaky cohorts flake more); the effective
    /// probability is clamped to 1.
    pub fn flakes(&self, seed: u64, date: Date, index: u64, attempt: u32, bias: f64) -> bool {
        if self.flake_prob <= 0.0 {
            return false;
        }
        let days = date.to_epoch_days() as u64;
        unit(key(seed, days, index, attempt) ^ SALT_FLAKE) < (self.flake_prob * bias).min(1.0)
    }

    /// True when probe number `probe` of attempt `attempt` at host
    /// `index` times out mid-handshake (sent but never resolved).
    pub fn times_out(&self, seed: u64, date: Date, index: u64, attempt: u32, probe: u32) -> bool {
        if self.timeout_prob <= 0.0 {
            return false;
        }
        let days = date.to_epoch_days() as u64;
        let k = key(seed, days, index, attempt) ^ (probe as u64).wrapping_mul(SALT_PROBE_STEP);
        unit(k ^ SALT_TIMEOUT) < self.timeout_prob
    }
}

// Distinct salts so the fault streams never alias each other (or the
// host-profile stream) at the same counter key.
const SALT_DEAD: u64 = 0x5CA4_FA17_0000_0000;
const SALT_SYN: u64 = 0x5CA4_FA17_0000_0001;
const SALT_FLAKE: u64 = 0x5CA4_FA17_0000_0002;
const SALT_TIMEOUT: u64 = 0x5CA4_FA17_0000_0003;
const SALT_PROBE_STEP: u64 = 0x9fb2_1c65_1e98_df25;

/// Mix `(seed, date-or-window, host index, attempt)` into one 64-bit
/// counter key — the same multiplicative mixing the host sampler uses,
/// extended by an attempt term so retry draws are independent.
fn key(seed: u64, days: u64, index: u64, attempt: u32) -> u64 {
    seed ^ days.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ index.wrapping_mul(0xd1b5_4a32_d192_ed03)
        ^ (attempt as u64).wrapping_mul(0xa24b_aed4_963e_e407)
}

/// SplitMix64 finalisation of `z`, mapped to a uniform draw in [0, 1).
fn unit(mut z: u64) -> f64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z >> 11) as f64 / ((1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checked_rejects_bad_probabilities() {
        assert!(ScanFaults::checked(0.0, 0.0, 0.0, 0.0).is_ok());
        assert!(ScanFaults::checked(1.0, 1.0, 1.0, 1.0).is_ok());
        let nan = ScanFaults::checked(f64::NAN, 0.0, 0.0, 0.0);
        assert_eq!(nan.unwrap_err().field, "syn_drop_prob");
        let neg = ScanFaults::checked(0.0, -0.001, 0.0, 0.0);
        assert_eq!(neg.unwrap_err().field, "timeout_prob");
        let over = ScanFaults::checked(0.0, 0.0, 1.5, 0.0);
        assert_eq!(over.unwrap_err().field, "flake_prob");
        let inf = ScanFaults::checked(0.0, 0.0, 0.0, f64::INFINITY);
        assert_eq!(inf.unwrap_err().field, "dead_host_prob");
        let msg = inf.unwrap_err().to_string();
        assert!(msg.contains("dead_host_prob"), "{msg}");
    }

    #[test]
    fn validate_flags_struct_literals() {
        let bad = ScanFaults {
            dead_host_prob: f64::NAN,
            ..ScanFaults::none()
        };
        assert_eq!(bad.validate().unwrap_err().field, "dead_host_prob");
        assert!(ScanFaults::stress().validate().is_ok());
        assert!(ScanFaults::scan_defaults().validate().is_ok());
    }

    #[test]
    fn named_profiles_resolve() {
        assert_eq!(ScanFaults::profile("none"), Some(ScanFaults::none()));
        assert_eq!(
            ScanFaults::profile("defaults"),
            Some(ScanFaults::scan_defaults())
        );
        assert_eq!(ScanFaults::profile("stress"), Some(ScanFaults::stress()));
        assert_eq!(ScanFaults::profile("bogus"), None);
        assert!(ScanFaults::none().is_none());
        assert!(!ScanFaults::stress().is_none());
        assert!(!ScanFaults {
            panic_on_host: Some(1),
            ..ScanFaults::none()
        }
        .is_none());
    }

    #[test]
    fn dead_host_windows_persist_across_retries_and_days() {
        let faults = ScanFaults {
            dead_host_prob: 0.3,
            ..ScanFaults::none()
        };
        let start = Date::ymd(2016, 1, 4);
        // Dead-or-alive is attempt-independent by construction (no
        // attempt argument) and constant within a window.
        let window_start = Date::ymd(2016, 1, 4); // any date; compare within span
        let d0 = faults.host_dead(7, window_start, 42);
        for offset in 0..DEAD_HOST_SPAN_DAYS {
            let day = start.add_days(offset);
            if day.to_epoch_days().div_euclid(DEAD_HOST_SPAN_DAYS)
                == window_start.to_epoch_days().div_euclid(DEAD_HOST_SPAN_DAYS)
            {
                assert_eq!(faults.host_dead(7, day, 42), d0);
            }
        }
        // Roughly the configured fraction of hosts is dead.
        let dead = (0..10_000u64)
            .filter(|i| faults.host_dead(7, start, *i))
            .count();
        assert!((2_400..3_600).contains(&dead), "dead hosts: {dead}");
        // A different seed draws a different dead set.
        let other = (0..10_000u64)
            .filter(|i| faults.host_dead(8, start, *i))
            .count();
        assert!(
            dead != other || {
                (0..10_000u64)
                    .any(|i| faults.host_dead(7, start, i) != faults.host_dead(8, start, i))
            }
        );
    }

    #[test]
    fn transient_draws_vary_by_attempt() {
        let faults = ScanFaults {
            syn_drop_prob: 0.5,
            flake_prob: 0.5,
            ..ScanFaults::none()
        };
        let date = Date::ymd(2016, 6, 1);
        // Over many hosts, some host must fail attempt 0 and pass
        // attempt 1 — the retry draw is independent.
        let recovered = (0..1000u64)
            .any(|i| faults.syn_dropped(3, date, i, 0) && !faults.syn_dropped(3, date, i, 1));
        assert!(recovered, "retries never redrew the SYN fault");
        let flake_recovered = (0..1000u64)
            .any(|i| faults.flakes(3, date, i, 0, 1.0) && !faults.flakes(3, date, i, 1, 1.0));
        assert!(flake_recovered, "retries never redrew the flake fault");
    }

    #[test]
    fn timeout_draws_vary_by_probe() {
        let faults = ScanFaults {
            timeout_prob: 0.5,
            ..ScanFaults::none()
        };
        let date = Date::ymd(2016, 6, 1);
        let differs = (0..1000u64)
            .any(|i| faults.times_out(3, date, i, 0, 0) != faults.times_out(3, date, i, 0, 1));
        assert!(differs, "probe index never changed the timeout draw");
    }

    #[test]
    fn flake_bias_scales_rate() {
        let faults = ScanFaults {
            flake_prob: 0.1,
            ..ScanFaults::none()
        };
        let date = Date::ymd(2016, 6, 1);
        let base = (0..20_000u64)
            .filter(|i| faults.flakes(5, date, *i, 0, 1.0))
            .count();
        let biased = (0..20_000u64)
            .filter(|i| faults.flakes(5, date, *i, 0, 3.0))
            .count();
        assert!(
            biased > base * 2,
            "bias 3.0 should roughly triple flakes: {base} vs {biased}"
        );
    }

    #[test]
    fn zero_probabilities_never_fire() {
        let f = ScanFaults::none();
        let date = Date::ymd(2017, 3, 1);
        for i in 0..1000 {
            assert!(!f.host_dead(1, date, i));
            assert!(!f.syn_dropped(1, date, i, 0));
            assert!(!f.flakes(1, date, i, 0, 5.0));
            assert!(!f.times_out(1, date, i, 0, 2));
        }
    }

    #[test]
    fn env_selection_falls_back() {
        // The variable is not set in unit-test runs unless CI's
        // fault-matrix job sets it; in either case the call must
        // resolve to a valid profile.
        let f = ScanFaults::from_env(ScanFaults::none());
        assert!(f.validate().is_ok());
    }
}
