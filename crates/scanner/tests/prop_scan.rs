//! Property tests for the sharded scan engine: sharding is invisible.
//!
//! The determinism contract of the active-scan engine is that neither
//! worker count nor the fault profile's *evaluation context* is part
//! of the experiment: any sharding of a sweep or a campaign must
//! reproduce the serial result bit for bit, under any fault profile,
//! because every host draw and every fault draw is a pure function of
//! `(seed, date, host_index, attempt)`. These tests drive that
//! contract across worker counts, cadences, fault profiles, and host
//! counts (including zero), plus the two-part accounting invariant
//! (`dispatched == probed + dropped` and `completed + refused +
//! timed_out == sent`) and the merge-commutativity property the
//! sharded path relies on.

use proptest::prelude::*;
use tlscope_chron::Date;
use tlscope_scanner::{
    pulse_survey_sharded, pulse_survey_with, schedule, sweep, sweep_faulted, sweep_sharded,
    sweep_sharded_with, ProbeSet, ScanCampaign, ScanFaults, ScanMetrics, ScanSnapshot,
    CENSYS_START,
};
use tlscope_servers::ServerPopulation;

/// The named profiles a sweep can run under, as a proptest strategy.
fn fault_profile() -> impl Strategy<Value = ScanFaults> {
    prop_oneof![
        Just(ScanFaults::none()),
        Just(ScanFaults::scan_defaults()),
        Just(ScanFaults::stress()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A sharded sweep equals the serial sweep at any worker count and
    /// under any fault profile, over the full host-count range the
    /// campaigns use (including the empty sweep), with the two-part
    /// loss ledger balanced.
    #[test]
    fn sharded_sweep_matches_serial(
        seed in 0u64..1_000_000,
        week in 0i64..140,
        hosts in 0u32..6000,
        workers in 1usize..=8,
        faults in fault_profile(),
    ) {
        let pop = ServerPopulation::new();
        let date = CENSYS_START.add_days(7 * week);
        let serial = sweep_faulted(&pop, date, hosts, seed, &faults);
        let metrics = ScanMetrics::new();
        let sharded = sweep_sharded_with(&pop, date, hosts, seed, workers, &metrics, &faults);
        prop_assert_eq!(&serial, &sharded);
        let s = metrics.snapshot();
        prop_assert!(s.accounting_holds(), "accounting broke: {:?}", s);
        prop_assert_eq!(s.hosts_dispatched, hosts as u64);
        prop_assert_eq!(s.hosts_probed + s.hosts_dropped, hosts as u64);
        prop_assert_eq!(s.hosts_probed, serial.hosts);
        prop_assert_eq!(
            s.handshakes_completed + s.handshakes_refused + s.probes_timed_out,
            s.probes_sent
        );
        if faults.is_none() {
            prop_assert_eq!(s.hosts_dropped, 0);
            prop_assert_eq!(s.probes_timed_out, 0);
            prop_assert_eq!(s.probes_sent, 3 * hosts as u64);
        }
    }

    /// A parallel campaign equals the serial campaign at any worker
    /// count, cadence, and fault profile, snapshots in date order.
    #[test]
    fn parallel_campaign_matches_serial(
        seed in 0u64..1_000_000,
        weekly in 0u32..2,
        months in 1i64..5,
        hosts in 1u32..400,
        workers in 1usize..=8,
        faults in fault_profile(),
    ) {
        let interval = if weekly == 0 { 7i64 } else { 30i64 };
        let campaign = ScanCampaign {
            dates: schedule(CENSYS_START, CENSYS_START.add_days(30 * months), interval),
            hosts_per_sweep: hosts,
            seed,
            faults,
        };
        let pop = ServerPopulation::new();
        let serial = campaign.run(&pop);
        let metrics = ScanMetrics::new();
        let parallel = campaign.run_parallel(&pop, workers, &metrics);
        prop_assert_eq!(&serial, &parallel);
        let s = metrics.snapshot();
        prop_assert!(s.accounting_holds(), "accounting broke: {:?}", s);
        let dispatched = hosts as u64 * campaign.dates.len() as u64;
        prop_assert_eq!(s.hosts_dispatched, dispatched);
        prop_assert_eq!(s.hosts_probed + s.hosts_dropped, dispatched);
        prop_assert_eq!(
            s.handshakes_completed + s.handshakes_refused + s.probes_timed_out,
            s.probes_sent
        );
        prop_assert_eq!(s.sweeps_completed, campaign.dates.len() as u64);
        if faults.is_none() {
            prop_assert_eq!(s.hosts_probed, dispatched);
        }
    }

    /// A sharded pulse survey equals the serial survey at any worker
    /// count: the `PULSE_SALT` site streams do not move when the
    /// survey is metered and chunked.
    #[test]
    fn sharded_pulse_survey_matches_serial(
        seed in 0u64..1_000_000,
        sites in 0u32..4000,
        workers in 1usize..=8,
    ) {
        let pop = ServerPopulation::new();
        let probes = ProbeSet::campaign();
        let date = Date::ymd(2015, 4, 1);
        let serial = pulse_survey_with(&probes, &pop, date, sites, seed);
        let metrics = ScanMetrics::new();
        let sharded = pulse_survey_sharded(&probes, &pop, date, sites, seed, workers, &metrics);
        prop_assert_eq!(&serial, &sharded);
        let s = metrics.snapshot();
        prop_assert!(s.accounting_holds(), "accounting broke: {:?}", s);
        prop_assert_eq!(s.hosts_probed, sites as u64);
        prop_assert_eq!(s.probes_sent, sites as u64 + serial.rc4_supported);
    }

    /// Merging partial snapshots is order-independent: any permutation
    /// of shard partials folds to the same total — the property that
    /// lets workers merge in completion order.
    #[test]
    fn snapshot_merge_is_commutative(
        seed in 0u64..1_000_000,
        hosts in 1u32..1200,
        cut_a in 0.0f64..1.0,
        cut_b in 0.0f64..1.0,
    ) {
        let pop = ServerPopulation::new();
        let date = Date::ymd(2016, 9, 1);
        // Build three disjoint partials out of one sweep's host range
        // by sweeping sub-ranges with the sweep's own seeds: hosts are
        // counter-based, so [0, a) + [a, b) + [b, n) partitions the
        // serial sweep exactly. Emulate via full sweeps of prefix
        // lengths and subtraction-free recomposition instead: sweep
        // each prefix and derive the mid/tail shards by merging order.
        let a = ((hosts as f64) * cut_a.min(cut_b)) as u32;
        let b = ((hosts as f64) * cut_a.max(cut_b)) as u32;
        // Shards as independent counter ranges: emulate by three
        // sharded sweeps with worker counts that chunk differently —
        // all must equal serial, hence equal each other in any order.
        let serial = sweep(&pop, date, hosts, seed);
        let m = ScanMetrics::new();
        let two = sweep_sharded(&pop, date, hosts, seed, 2, &m);
        let eight = sweep_sharded(&pop, date, hosts, seed, 8, &m);
        prop_assert_eq!(&serial, &two);
        prop_assert_eq!(&serial, &eight);
        // And the merge itself commutes on arbitrary partials.
        let pa = sweep(&pop, date, a, seed);
        let pb = sweep(&pop, date, b, seed.wrapping_add(1));
        let mut ab = ScanSnapshot::new(date);
        ab.merge(&pa);
        ab.merge(&pb);
        let mut ba = ScanSnapshot::new(date);
        ba.merge(&pb);
        ba.merge(&pa);
        prop_assert_eq!(ab, ba);
    }
}
