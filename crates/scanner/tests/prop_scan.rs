//! Property tests for the sharded scan engine: sharding is invisible.
//!
//! The determinism contract of the active-scan engine is that worker
//! count is *not* part of the experiment: any sharding of a sweep or a
//! campaign must reproduce the serial result bit for bit. These tests
//! drive that contract across worker counts, cadences, and host counts
//! (including zero), plus the merge-commutativity property the sharded
//! path relies on.

use proptest::prelude::*;
use tlscope_chron::Date;
use tlscope_scanner::{
    schedule, sweep, sweep_sharded, ScanCampaign, ScanMetrics, ScanSnapshot, CENSYS_START,
};
use tlscope_servers::ServerPopulation;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A sharded sweep equals the serial sweep at any worker count,
    /// over the full host-count range the campaigns use (including the
    /// empty sweep), with the dispatch accounting intact.
    #[test]
    fn sharded_sweep_matches_serial(
        seed in 0u64..1_000_000,
        week in 0i64..140,
        hosts in 0u32..6000,
        workers in 1usize..=8,
    ) {
        let pop = ServerPopulation::new();
        let date = CENSYS_START.add_days(7 * week);
        let serial = sweep(&pop, date, hosts, seed);
        let metrics = ScanMetrics::new();
        let sharded = sweep_sharded(&pop, date, hosts, seed, workers, &metrics);
        prop_assert_eq!(&serial, &sharded);
        let s = metrics.snapshot();
        prop_assert!(s.accounting_holds(), "accounting broke: {:?}", s);
        prop_assert_eq!(s.hosts_probed, hosts as u64);
        prop_assert_eq!(s.probes_sent, 3 * hosts as u64);
    }

    /// A parallel campaign equals the serial campaign at any worker
    /// count and cadence, snapshots in date order.
    #[test]
    fn parallel_campaign_matches_serial(
        seed in 0u64..1_000_000,
        weekly in 0u32..2,
        months in 1i64..5,
        hosts in 1u32..400,
        workers in 1usize..=8,
    ) {
        let interval = if weekly == 0 { 7i64 } else { 30i64 };
        let campaign = ScanCampaign {
            dates: schedule(CENSYS_START, CENSYS_START.add_days(30 * months), interval),
            hosts_per_sweep: hosts,
            seed,
        };
        let pop = ServerPopulation::new();
        let serial = campaign.run(&pop);
        let metrics = ScanMetrics::new();
        let parallel = campaign.run_parallel(&pop, workers, &metrics);
        prop_assert_eq!(&serial, &parallel);
        let s = metrics.snapshot();
        prop_assert!(s.accounting_holds(), "accounting broke: {:?}", s);
        prop_assert_eq!(s.hosts_probed, hosts as u64 * campaign.dates.len() as u64);
        prop_assert_eq!(s.sweeps_completed, campaign.dates.len() as u64);
    }

    /// Merging partial snapshots is order-independent: any permutation
    /// of shard partials folds to the same total — the property that
    /// lets workers merge in completion order.
    #[test]
    fn snapshot_merge_is_commutative(
        seed in 0u64..1_000_000,
        hosts in 1u32..1200,
        cut_a in 0.0f64..1.0,
        cut_b in 0.0f64..1.0,
    ) {
        let pop = ServerPopulation::new();
        let date = Date::ymd(2016, 9, 1);
        // Build three disjoint partials out of one sweep's host range
        // by sweeping sub-ranges with the sweep's own seeds: hosts are
        // counter-based, so [0, a) + [a, b) + [b, n) partitions the
        // serial sweep exactly. Emulate via full sweeps of prefix
        // lengths and subtraction-free recomposition instead: sweep
        // each prefix and derive the mid/tail shards by merging order.
        let a = ((hosts as f64) * cut_a.min(cut_b)) as u32;
        let b = ((hosts as f64) * cut_a.max(cut_b)) as u32;
        // Shards as independent counter ranges: emulate by three
        // sharded sweeps with worker counts that chunk differently —
        // all must equal serial, hence equal each other in any order.
        let serial = sweep(&pop, date, hosts, seed);
        let m = ScanMetrics::new();
        let two = sweep_sharded(&pop, date, hosts, seed, 2, &m);
        let eight = sweep_sharded(&pop, date, hosts, seed, 8, &m);
        prop_assert_eq!(&serial, &two);
        prop_assert_eq!(&serial, &eight);
        // And the merge itself commutes on arbitrary partials.
        let pa = sweep(&pop, date, a, seed);
        let pb = sweep(&pop, date, b, seed.wrapping_add(1));
        let mut ab = ScanSnapshot::new(date);
        ab.merge(&pa);
        ab.merge(&pb);
        let mut ba = ScanSnapshot::new(date);
        ba.merge(&pb);
        ba.merge(&pa);
        prop_assert_eq!(ab, ba);
    }
}
