//! Scanner behaviour under the environment-selected fault profile.
//!
//! Runs under whatever `TLSCOPE_SCAN_FAULT_PROFILE` names — the CI
//! fault-matrix job sets `stress`, forcing heavy SYN loss, flakes,
//! timeouts, and dead-host windows through the full sweep and campaign
//! paths; locally it falls back to the default scan mix. Either way the
//! determinism and accounting contracts must hold unchanged.

use tlscope_chron::Date;
use tlscope_scanner::{
    schedule, sweep_faulted, sweep_sharded_with, ScanCampaign, ScanFaults, ScanMetrics,
};
use tlscope_servers::ServerPopulation;

#[test]
fn env_fault_profile_never_breaks_shard_equivalence() {
    let faults = ScanFaults::from_env(ScanFaults::scan_defaults());
    faults.validate().expect("profile must be valid");
    let pop = ServerPopulation::new();
    let date = Date::ymd(2016, 11, 1);
    let serial = sweep_faulted(&pop, date, 3000, 41, &faults);
    for workers in [2usize, 4, 8] {
        let metrics = ScanMetrics::new();
        let sharded = sweep_sharded_with(&pop, date, 3000, 41, workers, &metrics, &faults);
        assert_eq!(serial, sharded, "workers = {workers}");
        let s = metrics.snapshot();
        assert!(s.accounting_holds(), "{s:?}");
        assert_eq!(s.hosts_dispatched, 3000);
        assert_eq!(s.hosts_probed, serial.hosts);
        // Any non-zero profile must actually exercise the loss ledger.
        if !faults.is_none() {
            assert!(s.hosts_dropped > 0, "{s:?}");
            assert!(s.probes_timed_out > 0, "{s:?}");
        }
    }
}

#[test]
fn env_fault_profile_campaign_accounts_loss() {
    let faults = ScanFaults::from_env(ScanFaults::scan_defaults());
    let campaign = ScanCampaign {
        dates: schedule(Date::ymd(2016, 1, 1), Date::ymd(2016, 4, 1), 30),
        hosts_per_sweep: 800,
        seed: 43,
        faults,
    };
    let pop = ServerPopulation::new();
    let serial = campaign.run(&pop);
    let metrics = ScanMetrics::new();
    let parallel = campaign.run_parallel(&pop, 4, &metrics);
    assert_eq!(serial, parallel);
    let s = metrics.snapshot();
    assert!(s.accounting_holds(), "{s:?}");
    assert_eq!(
        s.hosts_dispatched,
        800 * campaign.dates.len() as u64,
        "{s:?}"
    );
}
