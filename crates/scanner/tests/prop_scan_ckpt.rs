//! Property tests for the durable scan campaign: a campaign
//! interrupted after any number of completed dates, at any worker
//! count 1–8, under any fault profile — with its checkpoint store then
//! truncated, bit-flipped, or littered with leftover `.tmp` files —
//! must resume to snapshots and a ledger bit-identical to an
//! uninterrupted run, with the quarantine counters accounting for
//! every damaged file. Plus a fuzz pass over the scan checkpoint
//! parser: arbitrary mutations never panic it.

use std::path::{Path, PathBuf};

use proptest::prelude::*;
use tlscope_chron::Date;
use tlscope_scanner::checkpoint;
use tlscope_scanner::{
    schedule, sweep_sharded_with, DateCheckpoint, ScanCampaign, ScanCheckpointError, ScanFaults,
    ScanMetrics, ScanMetricsSnapshot,
};
use tlscope_servers::ServerPopulation;

fn fault_profile() -> impl Strategy<Value = ScanFaults> {
    (0usize..3).prop_map(|i| match i {
        0 => ScanFaults::none(),
        1 => ScanFaults::scan_defaults(),
        _ => ScanFaults::stress(),
    })
}

/// How to damage one checkpoint file before resuming.
#[derive(Debug, Clone, Copy)]
enum Damage {
    TruncateHalf,
    TruncateToZero,
    FlipByte(usize, u8),
}

fn damage() -> impl Strategy<Value = Damage> {
    prop_oneof![
        Just(Damage::TruncateHalf),
        Just(Damage::TruncateToZero),
        ((0usize..4096), (1u8..255)).prop_map(|(i, m)| Damage::FlipByte(i, m)),
    ]
}

fn inflict(path: &Path, d: Damage) {
    let mut bytes = std::fs::read(path).unwrap();
    match d {
        Damage::TruncateHalf => bytes.truncate(bytes.len() / 2),
        Damage::TruncateToZero => bytes.clear(),
        Damage::FlipByte(at, mask) => {
            let i = at % bytes.len();
            bytes[i] ^= mask;
        }
    }
    std::fs::write(path, bytes).unwrap();
}

fn unique_dir(tag: u64) -> PathBuf {
    let pid = std::process::id();
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_nanos();
    std::env::temp_dir().join(format!("tlscope-prop-scan-{tag}-{pid}-{t}"))
}

/// The core scan-ledger counters (wall-clock time and checkpoint
/// bookkeeping excluded).
fn ledger_core(s: &ScanMetricsSnapshot) -> [u64; 9] {
    [
        s.hosts_dispatched,
        s.hosts_probed,
        s.hosts_dropped,
        s.host_retries,
        s.probes_sent,
        s.handshakes_completed,
        s.handshakes_refused,
        s.probes_timed_out,
        s.sweeps_completed,
    ]
}

proptest! {
    // Each case runs three short campaigns; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(10))]
    /// Interrupt anywhere, damage anything, resume: bit-identical.
    #[test]
    fn interrupted_damaged_campaign_resumes_bit_identically(
        seed in 0u64..1_000_000,
        workers in 1usize..=8,
        hosts in 100u32..250,
        faults in fault_profile(),
        interrupt_after in 0usize..=6,
        dmg in damage(),
        damage_count in 0usize..=2,
        leave_tmp in 0usize..2,
    ) {
        let campaign = ScanCampaign {
            dates: schedule(Date::ymd(2016, 1, 1), Date::ymd(2016, 6, 30), 30),
            hosts_per_sweep: hosts,
            seed,
            faults,
        };
        let pop = ServerPopulation::new();
        let n = campaign.dates.len();
        let clean_metrics = ScanMetrics::new();
        let expected = campaign.run_parallel(&pop, workers, &clean_metrics);

        // Interrupt: only the first `interrupt_after` dates complete
        // before the campaign dies.
        let k = interrupt_after.min(n);
        let dir = unique_dir(seed);
        let mut killed = campaign.clone();
        killed.dates.truncate(k);
        killed
            .run_durable(&pop, workers, &ScanMetrics::new(), Some(&dir))
            .unwrap();

        // Damage up to `damage_count` of the checkpoints it left.
        let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
            .map(|rd| rd.map(|e| e.unwrap().path()).collect())
            .unwrap_or_default();
        files.sort();
        let damaged = damage_count.min(files.len());
        for path in files.iter().take(damaged) {
            inflict(path, dmg);
        }
        // A crash mid-write leaves a stray tmp file; it must be inert.
        if leave_tmp == 1 {
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(dir.join("2016-01-01.ckpt.tmp"), "torn write").unwrap();
        }

        // Resume over the full window.
        let metrics = ScanMetrics::new();
        let resumed = campaign
            .run_durable(&pop, workers, &metrics, Some(&dir))
            .unwrap();
        prop_assert_eq!(&resumed, &expected);
        let s = metrics.snapshot();
        prop_assert!(s.accounting_holds(), "{:?}", s);
        prop_assert_eq!(s.checkpoints_quarantined, damaged as u64);
        prop_assert_eq!(s.checkpoints_loaded, (k - damaged) as u64);
        prop_assert_eq!(s.checkpoints_written, (n - (k - damaged)) as u64);
        prop_assert_eq!(ledger_core(&s), ledger_core(&clean_metrics.snapshot()));
        // Every damaged file is parked as *.ckpt.bad, none silently lost.
        let bad = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .to_string_lossy()
                    .ends_with(".ckpt.bad")
            })
            .count();
        prop_assert_eq!(bad, damaged);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// One mutation of a checkpoint text (structural or byte-level).
#[derive(Debug, Clone)]
enum Mutation {
    Truncate(usize),
    FlipByte(usize, u8),
    DeleteLine(usize),
    DuplicateLine(usize),
    InsertLine(usize, String),
}

fn mutation() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        (0usize..1024).prop_map(Mutation::Truncate),
        ((0usize..1024), (1u8..255)).prop_map(|(i, m)| Mutation::FlipByte(i, m)),
        (0usize..8).prop_map(Mutation::DeleteLine),
        (0usize..8).prop_map(Mutation::DuplicateLine),
        ((0usize..8), (0u64..u64::MAX))
            .prop_map(|(i, s)| Mutation::InsertLine(i, format!("junk\t{s:x}"))),
    ]
}

fn apply(text: &str, m: &Mutation) -> String {
    match m {
        Mutation::Truncate(at) => {
            let mut bytes = text.as_bytes().to_vec();
            bytes.truncate(*at % (bytes.len() + 1));
            String::from_utf8_lossy(&bytes).into_owned()
        }
        Mutation::FlipByte(at, mask) => {
            let mut bytes = text.as_bytes().to_vec();
            if !bytes.is_empty() {
                let i = at % bytes.len();
                bytes[i] ^= mask;
            }
            String::from_utf8_lossy(&bytes).into_owned()
        }
        Mutation::DeleteLine(j) => {
            let mut lines: Vec<&str> = text.lines().collect();
            if !lines.is_empty() {
                lines.remove(j % lines.len());
            }
            rejoin(text, lines)
        }
        Mutation::DuplicateLine(j) => {
            let mut lines: Vec<&str> = text.lines().collect();
            if !lines.is_empty() {
                let line = lines[j % lines.len()];
                let at = j % (lines.len() + 1);
                lines.insert(at, line);
            }
            rejoin(text, lines)
        }
        Mutation::InsertLine(j, s) => {
            let mut lines: Vec<&str> = text.lines().collect();
            let at = j % (lines.len() + 1);
            lines.insert(at, s);
            rejoin(text, lines)
        }
    }
}

fn rejoin(original: &str, lines: Vec<&str>) -> String {
    let mut out = lines.join("\n");
    if original.ends_with('\n') && !out.is_empty() {
        out.push('\n');
    }
    out
}

fn error_path(e: &ScanCheckpointError) -> &Path {
    match e {
        ScanCheckpointError::Io(p, _) => p,
        ScanCheckpointError::Malformed(p, _) => p,
        ScanCheckpointError::Corrupt(p) => p,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    /// Mutated scan checkpoint texts parse cleanly or fail as damage
    /// with the caller's path — never a panic, never an Io error.
    #[test]
    fn mutated_scan_checkpoint_never_panics(
        seed in 0u64..1_000,
        muts in proptest::collection::vec(mutation(), 1..4),
    ) {
        let pop = ServerPopulation::new();
        let date = Date::ymd(2016, 9, 1);
        let date_metrics = ScanMetrics::new();
        let snapshot = sweep_sharded_with(
            &pop,
            date,
            200,
            seed,
            1,
            &date_metrics,
            &ScanFaults::scan_defaults(),
        );
        let ckpt = DateCheckpoint {
            snapshot,
            ledger: date_metrics.snapshot(),
        };
        let text = checkpoint::to_text(&ckpt);
        let mut mutated = text.clone();
        for m in &muts {
            mutated = apply(&mutated, m);
        }
        let path = Path::new("fuzz/2016-09-01.ckpt");
        match checkpoint::from_text(&mutated, path) {
            Ok(parsed) => {
                // A surviving parse must itself round-trip.
                let again = checkpoint::from_text(&checkpoint::to_text(&parsed), path).unwrap();
                prop_assert_eq!(parsed, again);
            }
            Err(e) => {
                prop_assert!(e.is_damage(), "unexpected error class: {e}");
                prop_assert_eq!(error_path(&e), path);
            }
        }
    }
}
