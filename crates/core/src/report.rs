//! The experiment registry: every reproducible artefact of the paper,
//! addressable by id, with a shared study context so one passive run
//! serves many experiments.

use tlscope_analysis::{figures, sections, tables, Figure, Study, StudyConfig, Table};
use tlscope_notary::{CheckpointError, NotaryAggregate, PipelineMetrics};
use tlscope_scanner::{ScanCheckpointError, ScanMetrics, ScanSnapshot};

/// A rendered experiment result.
#[derive(Debug, Clone)]
pub enum Artifact {
    /// A monthly-series figure.
    Figure(Figure),
    /// A table.
    Table(Table),
}

impl Artifact {
    /// Render for terminal output.
    pub fn to_ascii(&self, width: usize) -> String {
        match self {
            Artifact::Figure(f) => f.to_ascii(width),
            Artifact::Table(t) => t.to_ascii(),
        }
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        match self {
            Artifact::Figure(f) => f.to_csv(),
            Artifact::Table(t) => t.to_csv(),
        }
    }

    /// The artefact id.
    pub fn id(&self) -> &str {
        match self {
            Artifact::Figure(f) => &f.id,
            Artifact::Table(t) => &t.id,
        }
    }
}

/// Why an experiment could not produce its artefact.
#[derive(Debug)]
pub enum RunError {
    /// The id is not in the registry.
    UnknownExperiment(String),
    /// The passive run hit a checkpoint-store error.
    Passive(CheckpointError),
    /// The active campaign hit a scan-checkpoint-store error.
    Scan(ScanCheckpointError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::UnknownExperiment(id) => write!(f, "unknown experiment '{id}'"),
            RunError::Passive(e) => write!(f, "{e}"),
            RunError::Scan(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::UnknownExperiment(_) => None,
            RunError::Passive(e) => Some(e),
            RunError::Scan(e) => Some(e),
        }
    }
}

impl From<CheckpointError> for RunError {
    fn from(e: CheckpointError) -> Self {
        RunError::Passive(e)
    }
}

impl From<ScanCheckpointError> for RunError {
    fn from(e: ScanCheckpointError) -> Self {
        RunError::Scan(e)
    }
}

/// All experiment ids, in paper order.
pub const EXPERIMENT_IDS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "s4.1",
    "s5.1",
    "s5.4",
    "s5.5",
    "s5.6",
    "s6.1",
    "s6.2",
    "s6.3",
    "s6.4",
    "s7.3",
    "s9-ext",
    "ssl-pulse",
    "censys",
    "scan-accounting",
    "impact",
];

/// Whether an experiment needs the passive run / the active campaign.
pub fn needs(id: &str) -> (bool, bool) {
    match id {
        "table1" | "table3" | "table4" | "table5" | "table6" => (false, false),
        "s5.1" | "s5.4" | "s5.6" => (true, true),
        "censys" | "ssl-pulse" | "scan-accounting" => (false, true),
        _ => (true, false),
    }
}

/// A study context with lazily-computed passive/active results.
pub struct ReportContext {
    study: Study,
    passive: Option<NotaryAggregate>,
    scans: Option<Vec<ScanSnapshot>>,
    metrics: PipelineMetrics,
    scan_metrics: ScanMetrics,
}

impl ReportContext {
    /// Create a context over a configuration.
    pub fn new(cfg: StudyConfig) -> Self {
        ReportContext {
            study: Study::new(cfg),
            passive: None,
            scans: None,
            metrics: PipelineMetrics::new(),
            scan_metrics: ScanMetrics::new(),
        }
    }

    /// Create a context with a pre-computed passive aggregate (e.g.
    /// reloaded via [`tlscope_notary::store`]) instead of re-simulating.
    pub fn with_passive(cfg: StudyConfig, passive: NotaryAggregate) -> Self {
        ReportContext {
            study: Study::new(cfg),
            passive: Some(passive),
            scans: None,
            metrics: PipelineMetrics::new(),
            scan_metrics: ScanMetrics::new(),
        }
    }

    /// The passive aggregate if it has been computed or injected.
    pub fn passive_ref(&self) -> Option<&NotaryAggregate> {
        self.passive.as_ref()
    }

    /// The underlying study.
    pub fn study(&self) -> &Study {
        &self.study
    }

    /// Pipeline accounting for the passive run (all zeros until
    /// [`passive`] triggers a simulation; a `--load`-injected aggregate
    /// never populates it).
    ///
    /// [`passive`]: ReportContext::passive
    pub fn metrics(&self) -> &PipelineMetrics {
        &self.metrics
    }

    /// Scan accounting for the active campaign (all zeros until
    /// [`scans`] triggers the sweeps).
    ///
    /// [`scans`]: ReportContext::scans
    pub fn scan_metrics(&self) -> &ScanMetrics {
        &self.scan_metrics
    }

    /// The passive aggregate, running it on first use.
    ///
    /// Panics on checkpoint-store errors; contexts with a checkpoint
    /// directory configured should use [`ReportContext::try_passive`].
    pub fn passive(&mut self) -> &NotaryAggregate {
        self.try_passive()
            .unwrap_or_else(|e| panic!("passive checkpoint error: {e}"))
    }

    /// The passive aggregate, running it on first use and surfacing
    /// checkpoint-store errors instead of panicking.
    pub fn try_passive(&mut self) -> Result<&NotaryAggregate, CheckpointError> {
        if self.passive.is_none() {
            self.passive = Some(self.study.try_run_passive_metered(&self.metrics)?);
        }
        Ok(self.passive.as_ref().unwrap())
    }

    /// The active campaign results, running them on first use.
    ///
    /// Panics on scan-checkpoint-store errors; contexts with a scan
    /// checkpoint directory configured should use
    /// [`ReportContext::try_scans`].
    pub fn scans(&mut self) -> &[ScanSnapshot] {
        self.try_scans()
            .unwrap_or_else(|e| panic!("scan checkpoint error: {e}"))
    }

    /// The active campaign results, running them on first use and
    /// surfacing scan-checkpoint-store errors instead of panicking.
    pub fn try_scans(&mut self) -> Result<&[ScanSnapshot], ScanCheckpointError> {
        if self.scans.is_none() {
            self.scans = Some(self.study.try_run_active_metered(&self.scan_metrics)?);
        }
        Ok(self.scans.as_deref().unwrap())
    }

    /// Run both apertures (scans first, then passive) and return them
    /// together — the shared shape of the s5.x comparisons that set
    /// passive observations against the active campaign.
    fn passive_and_scans(&mut self) -> Result<(&NotaryAggregate, &[ScanSnapshot]), RunError> {
        self.try_scans()?;
        self.try_passive()?;
        Ok((
            self.passive.as_ref().unwrap(),
            self.scans.as_deref().unwrap(),
        ))
    }

    /// Run one experiment by id. Checkpoint-store errors from either
    /// aperture surface as [`RunError`] rather than aborting the
    /// process.
    pub fn run(&mut self, id: &str) -> Result<Artifact, RunError> {
        Ok(match id {
            "table1" => Artifact::Table(tables::table1()),
            "table2" => Artifact::Table(tables::table2(self.try_passive()?)),
            "table3" => Artifact::Table(tables::table3()),
            "table4" => Artifact::Table(tables::table4()),
            "table5" => Artifact::Table(tables::table5()),
            "table6" => Artifact::Table(tables::table6()),
            "fig1" => Artifact::Figure(figures::fig1(self.try_passive()?)),
            "fig2" => Artifact::Figure(figures::fig2(self.try_passive()?)),
            "fig3" => Artifact::Figure(figures::fig3(self.try_passive()?)),
            "fig4" => Artifact::Figure(figures::fig4(self.try_passive()?)),
            "fig5" => Artifact::Figure(figures::fig5(self.try_passive()?)),
            "fig6" => Artifact::Figure(figures::fig6(self.try_passive()?)),
            "fig7" => Artifact::Figure(figures::fig7(self.try_passive()?)),
            "fig8" => Artifact::Figure(figures::fig8(self.try_passive()?)),
            "fig9" => Artifact::Figure(figures::fig9(self.try_passive()?)),
            "fig10" => Artifact::Figure(figures::fig10(self.try_passive()?)),
            "s4.1" => Artifact::Table(sections::s4_1(self.try_passive()?)),
            "s5.1" => {
                let (passive, scans) = self.passive_and_scans()?;
                Artifact::Table(sections::s5_1(passive, scans))
            }
            "s5.4" => {
                let (passive, scans) = self.passive_and_scans()?;
                Artifact::Table(sections::s5_4(passive, scans))
            }
            "s5.5" => Artifact::Table(sections::s5_5(self.try_passive()?)),
            "s5.6" => {
                let (passive, scans) = self.passive_and_scans()?;
                Artifact::Table(sections::s5_6(passive, scans))
            }
            "s6.1" => Artifact::Table(sections::s6_1(self.try_passive()?)),
            "s6.2" => Artifact::Table(sections::s6_2(self.try_passive()?)),
            "s6.3" => Artifact::Table(sections::s6_3(self.try_passive()?)),
            "s6.4" => Artifact::Table(sections::s6_4(self.try_passive()?)),
            "s7.3" => Artifact::Table(sections::s7_3(self.try_passive()?)),
            "s9-ext" => Artifact::Figure(sections::s9_extensions(self.try_passive()?)),
            "ssl-pulse" => {
                // Yearly surveys over the SSL Pulse window (Oct 2013
                // on), run through the sharded, metered engine: survey
                // probes land in the same scan ledger the sweeps use,
                // so `--scan-stats` sees them.
                let pop = tlscope_servers::ServerPopulation::new();
                let sites = self.study.config().scan_hosts;
                let seed = self.study.config().seed;
                let workers = self.study.config().workers;
                let probes = tlscope_scanner::ProbeSet::campaign();
                let pulses: Vec<_> = (2013..=2018)
                    .map(|year| {
                        let date = if year == 2013 {
                            tlscope_chron::Date::ymd(2013, 10, 1)
                        } else {
                            tlscope_chron::Date::ymd(year, 4, 1)
                        };
                        tlscope_scanner::pulse_survey_sharded(
                            &probes,
                            &pop,
                            date,
                            sites,
                            seed,
                            workers,
                            &self.scan_metrics,
                        )
                    })
                    .collect();
                Artifact::Table(sections::ssl_pulse(&pulses))
            }
            "censys" => Artifact::Figure(sections::censys_series(self.try_scans()?)),
            "scan-accounting" => {
                // Make sure the campaign has actually run so the
                // ledger reflects real sweeps, not a zeroed bag.
                self.try_scans()?;
                Artifact::Table(sections::scan_accounting(&self.scan_metrics.snapshot()))
            }
            "impact" => Artifact::Table(impact_table(self.try_passive()?)),
            _ => return Err(RunError::UnknownExperiment(id.to_string())),
        })
    }
}

/// The §7.4 impact summary as a table: slope change and reaction lag
/// per (attack, series) pair.
pub fn impact_table(agg: &NotaryAggregate) -> Table {
    use tlscope_analysis::{attack, estimate_impact, reaction_lag_months};
    let mut t = Table::new(
        "impact",
        "Attack impact: pre/post disclosure slopes (pp/month) and change-point lag",
        vec![
            "Attack",
            "Series",
            "Slope before",
            "Slope after",
            "Lag (months)",
        ],
    );
    let fig2 = figures::fig2(agg);
    let fig7 = figures::fig7(agg);
    let fig8 = figures::fig8(agg);
    let fig1 = figures::fig1(agg);
    let cases: [(&str, &Figure, &str); 6] = [
        ("RC4", &fig2, "RC4"),
        ("RC4 passwords", &fig2, "RC4"),
        ("Snowden", &fig8, "ECDHE"),
        ("POODLE", &fig1, "SSLv3"),
        ("FREAK", &fig7, "Export"),
        ("Sweet32", &fig2, "CBC"),
    ];
    for (name, fig, series) in cases {
        let Some(ev) = attack(name) else { continue };
        let Some(est) = estimate_impact(fig, series, ev, 12) else {
            continue;
        };
        let lag = reaction_lag_months(fig, series, ev.date)
            .map(|l| l.to_string())
            .unwrap_or_else(|| "-".into());
        t.push_row(vec![
            name.to_string(),
            series.to_string(),
            format!("{:+.2}", est.slope_before),
            format!("{:+.2}", est.slope_after),
            lag,
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlscope_chron::Month;

    fn tiny_ctx() -> ReportContext {
        let mut cfg = StudyConfig::quick();
        cfg.start = Month::ym(2015, 1);
        cfg.end = Month::ym(2015, 6);
        cfg.connections_per_month = 300;
        cfg.scan_hosts = 200;
        ReportContext::new(cfg)
    }

    #[test]
    fn static_tables_need_no_runs() {
        let mut ctx = tiny_ctx();
        for id in ["table1", "table3", "table4", "table5", "table6"] {
            let a = ctx.run(id).unwrap();
            assert_eq!(a.id(), id);
            assert!(!a.to_ascii(60).is_empty());
        }
        assert!(ctx.passive.is_none(), "static tables ran the study");
    }

    #[test]
    fn passive_experiments_share_one_run() {
        let mut ctx = tiny_ctx();
        let f2 = ctx.run("fig2").unwrap();
        let f8 = ctx.run("fig8").unwrap();
        assert_eq!(f2.id(), "fig2");
        assert_eq!(f8.id(), "fig8");
        // Both CSV renders have the same month axis length.
        assert_eq!(f2.to_csv().lines().count(), f8.to_csv().lines().count());
    }

    #[test]
    fn pulse_surveys_land_in_the_scan_ledger() {
        let mut ctx = tiny_ctx();
        let a = ctx.run("ssl-pulse").unwrap();
        assert_eq!(a.id(), "ssl-pulse");
        let s = ctx.scan_metrics().snapshot();
        // Six yearly surveys of `scan_hosts` sites each, all metered.
        assert_eq!(s.hosts_probed, 6 * 200);
        assert_eq!(s.sweeps_completed, 6);
        assert!(s.accounting_holds(), "{s:?}");
    }

    #[test]
    fn needs_matches_what_run_actually_computes() {
        for id in EXPERIMENT_IDS {
            let mut ctx = tiny_ctx();
            ctx.run(id).unwrap();
            let (wants_passive, wants_active) = needs(id);
            assert_eq!(
                ctx.passive.is_some(),
                wants_passive,
                "passive aperture for {id}"
            );
            // ssl-pulse drives its surveys through the scan ledger
            // without materialising campaign snapshots, so the active
            // aperture is visible as probes in the ledger rather than
            // a populated `scans`.
            let ran_active = ctx.scans.is_some() || ctx.scan_metrics().snapshot().hosts_probed > 0;
            assert_eq!(ran_active, wants_active, "active aperture for {id}");
        }
    }

    #[test]
    fn unknown_id_is_an_error() {
        let mut ctx = tiny_ctx();
        match ctx.run("fig99") {
            Err(RunError::UnknownExperiment(id)) => assert_eq!(id, "fig99"),
            other => panic!("expected UnknownExperiment, got {other:?}"),
        }
    }

    #[test]
    fn checkpoint_errors_surface_through_run() {
        let mut cfg = StudyConfig::quick();
        cfg.start = Month::ym(2015, 1);
        cfg.end = Month::ym(2015, 1);
        cfg.connections_per_month = 50;
        cfg.scan_hosts = 50;
        // Files where the checkpoint directories should be.
        let base = std::env::temp_dir().join(format!(
            "tlscope-report-clash-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let scan_base = base.with_extension("scan");
        std::fs::write(&base, "not a directory").unwrap();
        std::fs::write(&scan_base, "not a directory").unwrap();
        cfg.checkpoint_dir = Some(base.clone());
        cfg.scan_checkpoint_dir = Some(scan_base.clone());
        let mut ctx = ReportContext::new(cfg);
        match ctx.run("fig1") {
            Err(RunError::Passive(_)) => {}
            other => panic!("expected Passive error, got {other:?}"),
        }
        match ctx.run("censys") {
            Err(RunError::Scan(_)) => {}
            other => panic!("expected Scan error, got {other:?}"),
        }
        std::fs::remove_file(&base).unwrap();
        std::fs::remove_file(&scan_base).unwrap();
    }

    #[test]
    fn experiment_ids_all_resolve() {
        // Don't execute the heavy ones; just validate the needs() map
        // covers every id.
        for id in EXPERIMENT_IDS {
            let _ = needs(id);
        }
        assert_eq!(EXPERIMENT_IDS.len(), 31);
    }
}
