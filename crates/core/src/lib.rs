//! # tlscope
//!
//! A TLS ecosystem measurement framework: a full, from-scratch
//! reproduction of **“Coming of Age: A Longitudinal Study of TLS
//! Deployment”** (Kotzias et al., IMC 2018) as a Rust workspace.
//!
//! The paper measured six years of real TLS traffic (the ICSI SSL
//! Notary) and three years of IPv4-wide scans (Censys). This framework
//! rebuilds every layer of that measurement stack:
//!
//! * [`wire`] — TLS/SSL wire formats, tolerant handshake parsers, and
//!   the IANA registries with security classifiers;
//! * [`fingerprint`] — the paper's 4-feature client fingerprint, the
//!   labelled database with its collision rules, JA3, and lifetime
//!   statistics;
//! * [`clients`] — the historical client-configuration catalog
//!   (Tables 3–6 as executable data) and adoption model;
//! * [`servers`] — the negotiation engine and the evolving server
//!   population, calibrated to the paper's Censys anchors;
//! * [`traffic`] — the synthetic Internet standing in for the Notary's
//!   319.3 B connections (see DESIGN.md for the substitution argument);
//! * [`notary`] — the passive measurement pipeline (bytes in, monthly
//!   statistics out);
//! * [`scanner`] — the active scan harness with the paper's probe set
//!   and schedule;
//! * [`analysis`] — figure/table/section generators and attack-impact
//!   estimation;
//! * [`durable`] — checksummed, atomic file persistence shared by the
//!   checkpoint stores;
//! * [`obs`] — dependency-free observability: latency histograms,
//!   hand-rolled JSON, progress heartbeats, and a panic flight
//!   recorder.
//!
//! ## Quick start
//!
//! ```no_run
//! use tlscope::prelude::*;
//!
//! // A reduced-scale end-to-end study run.
//! let study = Study::new(StudyConfig::quick());
//! let passive = study.run_passive();
//! let scans = study.run_active();
//!
//! // Reproduce Figure 2 (negotiated RC4/CBC/AEAD) and Table 2.
//! println!("{}", tlscope::analysis::figures::fig2(&passive).to_ascii(80));
//! println!("{}", tlscope::analysis::tables::table2(&passive).to_ascii());
//! let _ = scans;
//! ```
//!
//! The `repro` binary regenerates any figure/table from the paper:
//! `cargo run --release -p tlscope --bin repro -- fig2 table2 s6.4`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tlscope_analysis as analysis;
pub use tlscope_chron as chron;
pub use tlscope_clients as clients;
pub use tlscope_durable as durable;
pub use tlscope_fingerprint as fingerprint;
pub use tlscope_notary as notary;
pub use tlscope_obs as obs;
pub use tlscope_scanner as scanner;
pub use tlscope_servers as servers;
pub use tlscope_traffic as traffic;
pub use tlscope_wire as wire;

pub mod report;

/// The most common imports in one place.
pub mod prelude {
    pub use crate::analysis::{Figure, Series, Study, StudyConfig, Table};
    pub use crate::chron::{Date, Month};
    pub use crate::fingerprint::{Fingerprint, FingerprintDb};
    pub use crate::notary::{NotaryAggregate, TappedFlow};
    pub use crate::scanner::ScanSnapshot;
    pub use crate::wire::{CipherSuite, ClientHello, ProtocolVersion, ServerHello};
}
