//! The reproduction harness: regenerate any figure or table of
//! *Coming of Age* (IMC 2018).
//!
//! ```text
//! repro [OPTIONS] <experiment-id>... | all
//!
//! Options:
//!   --quick        reduced scale (fast; default)
//!   --full         paper-scale window with more samples per month
//!   --csv          emit CSV instead of ASCII rendering
//!   --width <n>    ASCII chart width (default 84)
//!   --seed <n>     override the study seed
//!   --stats        print per-stage pipeline metrics after the run
//!   --scan-stats   print active-scan accounting after the run
//!   --stats-json <path>
//!                  write the pipeline metrics (counters, derived
//!                  rates, latency histograms) as JSON to <path>
//!   --scan-stats-json <path>
//!                  write the scan accounting as JSON to <path>
//!   --resume <dir> checkpoint completed months into <dir> and resume
//!                  from whatever is already there
//!   --resume-scan <dir>
//!                  checkpoint completed scan dates into <dir> and
//!                  resume the campaign from whatever is already there
//!   --list         list experiment ids and exit
//! ```

use std::process::ExitCode;

use tlscope::analysis::StudyConfig;
use tlscope::report::{needs, ReportContext, EXPERIMENT_IDS};

struct Options {
    full: bool,
    csv: bool,
    stats: bool,
    scan_stats: bool,
    stats_json: Option<String>,
    scan_stats_json: Option<String>,
    width: usize,
    seed: Option<u64>,
    save: Option<String>,
    load: Option<String>,
    resume: Option<String>,
    resume_scan: Option<String>,
    ids: Vec<String>,
}

fn usage() {
    eprintln!(
        "usage: repro [--quick|--full] [--csv] [--stats] [--scan-stats] [--stats-json PATH] [--scan-stats-json PATH] [--width N] [--seed N] [--resume DIR] [--resume-scan DIR] [--list] <id>...|all\n\
         ids: {}",
        EXPERIMENT_IDS.join(" ")
    );
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        full: false,
        csv: false,
        stats: false,
        scan_stats: false,
        stats_json: None,
        scan_stats_json: None,
        width: 84,
        seed: None,
        save: None,
        load: None,
        resume: None,
        resume_scan: None,
        ids: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.full = false,
            "--full" => opts.full = true,
            "--csv" => opts.csv = true,
            "--stats" => opts.stats = true,
            "--scan-stats" => opts.scan_stats = true,
            "--stats-json" => {
                opts.stats_json = Some(args.next().ok_or("--stats-json needs a path")?);
            }
            "--scan-stats-json" => {
                opts.scan_stats_json = Some(args.next().ok_or("--scan-stats-json needs a path")?);
            }
            "--width" => {
                opts.width = args
                    .next()
                    .ok_or("--width needs a value")?
                    .parse()
                    .map_err(|_| "--width needs a number")?;
            }
            "--seed" => {
                opts.seed = Some(
                    args.next()
                        .ok_or("--seed needs a value")?
                        .parse()
                        .map_err(|_| "--seed needs a number")?,
                );
            }
            "--save" => {
                opts.save = Some(args.next().ok_or("--save needs a path")?);
            }
            "--load" => {
                opts.load = Some(args.next().ok_or("--load needs a path")?);
            }
            "--resume" => {
                opts.resume = Some(args.next().ok_or("--resume needs a directory")?);
            }
            "--resume-scan" => {
                opts.resume_scan = Some(args.next().ok_or("--resume-scan needs a directory")?);
            }
            "--list" => {
                for id in EXPERIMENT_IDS {
                    println!("{id}");
                }
                std::process::exit(0);
            }
            "--help" | "-h" => {
                usage();
                std::process::exit(0);
            }
            "all" => opts.ids = EXPERIMENT_IDS.iter().map(|s| s.to_string()).collect(),
            id if !id.starts_with('-') => opts.ids.push(id.to_string()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    if opts.ids.is_empty() {
        return Err("no experiments requested".into());
    }
    Ok(opts)
}

/// Write an exported metrics document atomically (tmp + rename via
/// `tlscope::durable`) so a consumer polling the path never reads a
/// torn JSON file.
fn write_json(path: &str, json: &str) -> std::io::Result<()> {
    let p = std::path::Path::new(path);
    let dir = match p.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => std::path::Path::new("."),
    };
    let name = p.file_name().and_then(|n| n.to_str()).ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name")
    })?;
    tlscope::durable::write_atomic(dir, name, json)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            return ExitCode::FAILURE;
        }
    };

    let mut cfg = if opts.full {
        StudyConfig::default()
    } else {
        StudyConfig::quick()
    };
    if let Some(seed) = opts.seed {
        cfg.seed = seed;
    }
    // Which apertures the requested experiments will actually run, so
    // an inert --resume/--resume-scan can be called out up front.
    let (needs_passive, needs_active) = opts.ids.iter().fold((false, false), |(p, a), id| {
        let (np, na) = needs(id);
        (p || np, a || na)
    });
    if let Some(dir) = &opts.resume {
        // Create the directory up front so a typo'd path fails here,
        // not after months of simulation.
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create checkpoint dir {dir}: {e}");
            return ExitCode::FAILURE;
        }
        if opts.load.is_some() {
            eprintln!("warning: --resume has no effect: --load supplies the passive aggregate");
        } else if !needs_passive {
            eprintln!(
                "warning: --resume has no effect: requested experiments run no passive study"
            );
        }
        eprintln!("# checkpointing completed months to {dir}");
        cfg.checkpoint_dir = Some(std::path::PathBuf::from(dir));
    }
    if let Some(dir) = &opts.resume_scan {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create scan checkpoint dir {dir}: {e}");
            return ExitCode::FAILURE;
        }
        if !needs_active {
            eprintln!(
                "warning: --resume-scan has no effect: requested experiments run no active campaign"
            );
        }
        eprintln!("# checkpointing completed scan dates to {dir}");
        cfg.scan_checkpoint_dir = Some(std::path::PathBuf::from(dir));
    }
    eprintln!(
        "# tlscope repro: {} months x {} connections/month, {} scan hosts/sweep, seed {:#x}",
        cfg.start.iter_through(cfg.end).count(),
        cfg.connections_per_month,
        cfg.scan_hosts,
        cfg.seed
    );

    let mut ctx = match &opts.load {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match tlscope::notary::store::from_text(&text) {
                Ok(agg) => {
                    eprintln!("# loaded passive aggregate from {path}");
                    ReportContext::with_passive(cfg, agg)
                }
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => ReportContext::new(cfg),
    };
    let mut failed = false;
    for id in &opts.ids {
        match ctx.run(id) {
            Ok(artifact) => {
                if opts.csv {
                    println!("# {id}");
                    print!("{}", artifact.to_csv());
                } else {
                    println!("{}", artifact.to_ascii(opts.width));
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                failed = true;
            }
        }
    }
    if let Some(path) = &opts.save {
        match ctx.passive_ref() {
            Some(agg) => {
                let text = tlscope::notary::store::to_text(agg);
                if let Err(e) = std::fs::write(path, text) {
                    eprintln!("error: cannot write {path}: {e}");
                    failed = true;
                } else {
                    eprintln!("# saved passive aggregate to {path}");
                }
            }
            None => eprintln!("# --save: no passive run was needed; nothing saved"),
        }
    }
    if opts.stats {
        // Stats go to stderr so --csv output stays machine-readable.
        eprint!("{}", ctx.metrics().snapshot().render());
        eprint!("{}", ctx.metrics().latency().render());
    }
    if opts.scan_stats {
        // Name the profile the campaign ran under so a lossy ledger is
        // attributable to its knob set.
        if let Ok(profile) = std::env::var("TLSCOPE_SCAN_FAULT_PROFILE") {
            eprintln!("# scan fault profile: {profile}");
        }
        eprint!("{}", ctx.scan_metrics().snapshot().render());
        eprint!("{}", ctx.scan_metrics().latency().render());
    }
    if let Some(path) = &opts.stats_json {
        let json = ctx
            .metrics()
            .snapshot()
            .to_json_with(&ctx.metrics().latency());
        match write_json(path, &json) {
            Ok(()) => eprintln!("# wrote pipeline stats to {path}"),
            Err(e) => {
                eprintln!("error: cannot write {path}: {e}");
                failed = true;
            }
        }
    }
    if let Some(path) = &opts.scan_stats_json {
        let json = ctx
            .scan_metrics()
            .snapshot()
            .to_json_with(&ctx.scan_metrics().latency());
        match write_json(path, &json) {
            Ok(()) => eprintln!("# wrote scan stats to {path}"),
            Err(e) => {
                eprintln!("error: cannot write {path}: {e}");
                failed = true;
            }
        }
    }
    // Any flight reports filed by panic boundaries during the run come
    // out last so they sit next to the exit status in a captured log.
    for report in tlscope::obs::flight::drain_reports() {
        eprint!("{report}");
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
