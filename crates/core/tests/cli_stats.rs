//! End-to-end coverage of the repro CLI's stats surfaces: `--stats`,
//! `--scan-stats`, and the machine-readable `--stats-json` /
//! `--scan-stats-json` exports. One real binary invocation drives both
//! apertures; the JSON files are then parsed back with the same
//! hand-rolled parser the workspace ships and cross-checked against
//! the human-readable render on stderr.

use std::path::PathBuf;
use std::process::{Command, Output};

use tlscope::obs::Json;

fn run_repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        // Pin the heartbeat off so stderr stays deterministic no
        // matter what the invoking environment exports.
        .env("TLSCOPE_PROGRESS", "off")
        .output()
        .expect("repro binary should spawn")
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tlscope-cli-stats-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Pull the `n`-th whitespace token off the first stderr line whose
/// first token is `label` (the render grid is `  <label> <figure> ..`).
fn render_token(stderr: &str, label: &str, n: usize) -> u64 {
    let line = stderr
        .lines()
        .find(|l| l.split_whitespace().next() == Some(label))
        .unwrap_or_else(|| panic!("no `{label}` row in stderr:\n{stderr}"));
    line.split_whitespace()
        .nth(n)
        .unwrap_or_else(|| panic!("no token {n} in `{line}`"))
        .parse()
        .unwrap_or_else(|_| panic!("token {n} of `{line}` is not a number"))
}

#[test]
fn stats_surfaces_agree_across_render_and_json() {
    let dir = scratch_dir("run");
    let stats_path = dir.join("stats.json");
    let scan_path = dir.join("scan.json");
    let out = run_repro(&[
        "--quick",
        "--stats",
        "--scan-stats",
        "--stats-json",
        stats_path.to_str().unwrap(),
        "--scan-stats-json",
        scan_path.to_str().unwrap(),
        "fig2",
        "censys",
    ]);
    assert!(
        out.status.success(),
        "repro failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    for heading in [
        "pipeline metrics",
        "pipeline latency",
        "scan metrics",
        "scan latency",
    ] {
        assert!(stderr.contains(heading), "missing `{heading}` in stderr");
    }

    // Pipeline export: parses, carries the schema tag, and its
    // counters match the rendered figures byte-for-byte.
    let text = std::fs::read_to_string(&stats_path).expect("stats json written");
    let doc = Json::parse(&text).expect("stats json parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(tlscope::notary::MetricsSnapshot::SCHEMA)
    );
    for section in ["counters", "derived", "latency"] {
        assert!(doc.get(section).is_some(), "missing `{section}` section");
    }
    let counters = doc.get("counters").expect("counters");
    // `  ingest  <flows> flows  <batches> batches ...`
    assert_eq!(
        counters.get("flows_ingested").and_then(Json::as_u64),
        Some(render_token(&stderr, "ingest", 1))
    );
    assert_eq!(
        counters.get("batches_ingested").and_then(Json::as_u64),
        Some(render_token(&stderr, "ingest", 3))
    );
    // The latency section mirrors the per-batch histogram count.
    assert_eq!(
        doc.get("latency")
            .and_then(|l| l.get("ingest_batch"))
            .and_then(|h| h.get("count"))
            .and_then(Json::as_u64),
        counters.get("batches_ingested").and_then(Json::as_u64),
    );

    // Scan export: schema tag plus the sweep row's host figure.
    let text = std::fs::read_to_string(&scan_path).expect("scan json written");
    let doc = Json::parse(&text).expect("scan json parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(tlscope::scanner::ScanMetricsSnapshot::SCHEMA)
    );
    let counters = doc.get("counters").expect("counters");
    // `  sweep  <sweeps> sweeps  <hosts> hosts ...`
    assert_eq!(
        counters.get("hosts_probed").and_then(Json::as_u64),
        Some(render_token(&stderr, "sweep", 3))
    );
    // The two-part ledger survives the export round trip.
    let probed = counters.get("hosts_probed").and_then(Json::as_u64).unwrap();
    let dropped = counters
        .get("hosts_dropped")
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(
        counters.get("hosts_dispatched").and_then(Json::as_u64),
        Some(probed + dropped)
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_json_flag_requires_a_path() {
    let out = run_repro(&["--stats-json"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--stats-json needs a path"), "{stderr}");
}
