//! The paper's 4-feature TLS client fingerprint (§4).
//!
//! > "a TLS client fingerprint is the concatenation of four features
//! > extracted from the Client Hello: (i) the cipher suite list, (ii)
//! > the list of client extensions, (iii) Supported Elliptic Curves,
//! > and (iv) the Supported EC Point Formats extension. All features
//! > are stored in the order they appear in the Client Hello."
//!
//! GREASE values are identified and removed before extraction, so the
//! randomised draws Chrome injects do not explode the fingerprint space.

use core::fmt;
use tlscope_wire::grease::{is_grease, strip_grease};
use tlscope_wire::view::{ext_view, ClientHelloView};
use tlscope_wire::{ext_type, ClientHello};

/// Incremental FNV-1a, the hash behind [`Fingerprint::id64`].
///
/// Public so other layers that need a cheap content identity over wire
/// bytes (the notary's masked hello hash) use the exact same mixing
/// function instead of growing a second hand-rolled hash.
pub struct Fnv64(u64);

impl Fnv64 {
    /// A fresh hasher at the FNV-1a 64-bit offset basis.
    pub fn new() -> Self {
        Fnv64(0xcbf29ce484222325)
    }

    /// Mix raw bytes into the running hash.
    pub fn absorb(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    /// Mix a big-endian u16 into the running hash.
    pub fn absorb_u16(&mut self, v: u16) {
        self.absorb(&v.to_be_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// A 4-feature client fingerprint, order-preserving, GREASE-stripped.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint {
    /// Offered cipher-suite code points (GREASE removed).
    pub ciphers: Vec<u16>,
    /// Offered extension type codes (GREASE removed); empty when the
    /// hello had no extension block.
    pub extensions: Vec<u16>,
    /// `supported_groups` list (GREASE removed); empty when absent.
    pub curves: Vec<u16>,
    /// `ec_point_formats` list; empty when absent.
    pub point_formats: Vec<u8>,
}

impl Fingerprint {
    /// Extract the fingerprint from a parsed ClientHello.
    pub fn from_client_hello(hello: &ClientHello) -> Self {
        let ciphers = strip_grease(
            &hello
                .cipher_suites
                .iter()
                .map(|c| c.0)
                .collect::<Vec<u16>>(),
        );
        let extensions: Vec<u16> = hello
            .extensions()
            .iter()
            .map(|e| e.typ)
            .filter(|t| !is_grease(*t))
            .collect();
        let curves = hello
            .find_extension(ext_type::SUPPORTED_GROUPS)
            .and_then(|e| e.parse_supported_groups().ok())
            .map(|gs| strip_grease(&gs.iter().map(|g| g.0).collect::<Vec<u16>>()))
            .unwrap_or_default();
        let point_formats = hello
            .find_extension(ext_type::EC_POINT_FORMATS)
            .and_then(|e| e.parse_ec_point_formats().ok())
            .unwrap_or_default();
        Fingerprint {
            ciphers,
            extensions,
            curves,
            point_formats,
        }
    }

    /// Extract the fingerprint from a borrowed ClientHello view.
    ///
    /// Produces exactly the fingerprint [`Self::from_client_hello`]
    /// would for the same bytes, but allocates only the four feature
    /// vectors (the cipher list sized in one shot).
    pub fn from_client_hello_view(hello: &ClientHelloView<'_>) -> Self {
        let mut fp = Fingerprint {
            ciphers: Vec::with_capacity(hello.cipher_suite_count()),
            extensions: Vec::new(),
            curves: Vec::new(),
            point_formats: Vec::new(),
        };
        fp.refill_from_view(hello);
        fp
    }

    /// Refill `self` in place from a borrowed ClientHello view,
    /// clearing and reusing the four feature vectors' capacity — the
    /// steady-state path of a monitor worker performs no allocation.
    /// Produces exactly [`Self::from_client_hello_view`]'s value.
    pub fn refill_from_view(&mut self, hello: &ClientHelloView<'_>) {
        self.ciphers.clear();
        self.ciphers.extend(
            hello
                .cipher_suites()
                .map(|c| c.0)
                .filter(|v| !is_grease(*v)),
        );
        self.extensions.clear();
        if let Some(exts) = &hello.extensions {
            self.extensions
                .extend(exts.iter().map(|(t, _)| t).filter(|t| !is_grease(*t)));
        }
        self.curves.clear();
        if let Some(gs) = hello
            .find_extension(ext_type::SUPPORTED_GROUPS)
            .and_then(|b| ext_view::supported_groups(b).ok())
        {
            self.curves.extend(gs.filter(|g| !is_grease(*g)));
        }
        self.point_formats.clear();
        if let Some(f) = hello
            .find_extension(ext_type::EC_POINT_FORMATS)
            .and_then(|b| ext_view::ec_point_formats(b).ok())
        {
            self.point_formats.extend_from_slice(f);
        }
    }

    /// Compute [`Self::id64`] straight off a borrowed view without
    /// building the fingerprint — zero allocations, so a repeat
    /// fingerprint can be recognised (via an interner keyed on id64)
    /// before any feature vector is materialised.
    pub fn id64_of_view(hello: &ClientHelloView<'_>) -> u64 {
        let mut h = Fnv64::new();
        for c in hello.cipher_suites() {
            if !is_grease(c.0) {
                h.absorb_u16(c.0);
            }
        }
        h.absorb(&[0xff, 0xfe]);
        if let Some(exts) = &hello.extensions {
            for (t, _) in exts.iter() {
                if !is_grease(t) {
                    h.absorb_u16(t);
                }
            }
        }
        h.absorb(&[0xff, 0xfd]);
        if let Some(gs) = hello
            .find_extension(ext_type::SUPPORTED_GROUPS)
            .and_then(|b| ext_view::supported_groups(b).ok())
        {
            for g in gs {
                if !is_grease(g) {
                    h.absorb_u16(g);
                }
            }
        }
        h.absorb(&[0xff, 0xfc]);
        if let Some(f) = hello
            .find_extension(ext_type::EC_POINT_FORMATS)
            .and_then(|b| ext_view::ec_point_formats(b).ok())
        {
            h.absorb(f);
        }
        h.0
    }

    /// Canonical text form: the four features joined by `;`, values
    /// dash-separated in hello order. Stable across versions; used as a
    /// database key.
    pub fn canonical(&self) -> String {
        fn join16(vs: &[u16]) -> String {
            vs.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("-")
        }
        let pf = self
            .point_formats
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("-");
        format!(
            "{};{};{};{}",
            join16(&self.ciphers),
            join16(&self.extensions),
            join16(&self.curves),
            pf
        )
    }

    /// Parse the canonical text form back into a fingerprint.
    pub fn from_canonical(s: &str) -> Option<Self> {
        let mut parts = s.split(';');
        fn list16(part: &str) -> Option<Vec<u16>> {
            if part.is_empty() {
                return Some(Vec::new());
            }
            part.split('-').map(|v| v.parse().ok()).collect()
        }
        fn list8(part: &str) -> Option<Vec<u8>> {
            if part.is_empty() {
                return Some(Vec::new());
            }
            part.split('-').map(|v| v.parse().ok()).collect()
        }
        let ciphers = list16(parts.next()?)?;
        let extensions = list16(parts.next()?)?;
        let curves = list16(parts.next()?)?;
        let point_formats = list8(parts.next()?)?;
        if parts.next().is_some() {
            return None;
        }
        Some(Fingerprint {
            ciphers,
            extensions,
            curves,
            point_formats,
        })
    }

    /// A compact 64-bit identity derived from the canonical form (FNV-1a).
    /// Handy as a map key in high-volume aggregation.
    pub fn id64(&self) -> u64 {
        let mut h = Fnv64::new();
        for v in &self.ciphers {
            h.absorb_u16(*v);
        }
        h.absorb(&[0xff, 0xfe]);
        for v in &self.extensions {
            h.absorb_u16(*v);
        }
        h.absorb(&[0xff, 0xfd]);
        for v in &self.curves {
            h.absorb_u16(*v);
        }
        h.absorb(&[0xff, 0xfc]);
        h.absorb(&self.point_formats);
        h.0
    }

    /// True if any offered cipher satisfies `pred`.
    pub fn any_cipher(&self, pred: impl Fn(tlscope_wire::CipherSuite) -> bool) -> bool {
        self.ciphers
            .iter()
            .any(|c| pred(tlscope_wire::CipherSuite(*c)))
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlscope_wire::{CipherSuite, Extension, NamedGroup, ProtocolVersion};

    fn hello(with_grease: bool) -> ClientHello {
        let mut suites = vec![
            CipherSuite(0xc02b),
            CipherSuite(0xc02f),
            CipherSuite(0x009c),
        ];
        let mut exts = vec![
            Extension::server_name("example.org"),
            Extension::supported_groups(&[NamedGroup::X25519, NamedGroup::SECP256R1]),
            Extension::ec_point_formats(&[0]),
        ];
        let mut groups = vec![NamedGroup::X25519, NamedGroup::SECP256R1];
        if with_grease {
            suites.insert(0, CipherSuite(0x5a5a));
            exts.insert(0, Extension::empty(0x1a1a));
            groups.insert(0, NamedGroup(0xbaba));
            exts[2] = Extension::supported_groups(&groups);
        }
        ClientHello {
            legacy_version: ProtocolVersion::Tls12,
            random: [0; 32],
            session_id: vec![],
            cipher_suites: suites,
            compression_methods: vec![0],
            extensions: Some(exts),
        }
    }

    #[test]
    fn grease_invariance() {
        // The defining property (§4): GREASE draws must not change the
        // fingerprint.
        let a = Fingerprint::from_client_hello(&hello(false));
        let b = Fingerprint::from_client_hello(&hello(true));
        assert_eq!(a, b);
        assert_eq!(a.id64(), b.id64());
    }

    #[test]
    fn order_sensitivity() {
        // Unlike JA3's sorted variants, the paper's fingerprint keeps
        // hello order: reordering ciphers is a different client.
        let mut h = hello(false);
        let a = Fingerprint::from_client_hello(&h);
        h.cipher_suites.swap(0, 1);
        let b = Fingerprint::from_client_hello(&h);
        assert_ne!(a, b);
    }

    #[test]
    fn canonical_roundtrip() {
        let fp = Fingerprint::from_client_hello(&hello(false));
        let text = fp.canonical();
        assert_eq!(Fingerprint::from_canonical(&text).unwrap(), fp);
    }

    #[test]
    fn canonical_roundtrip_empty_features() {
        let fp = Fingerprint {
            ciphers: vec![10],
            extensions: vec![],
            curves: vec![],
            point_formats: vec![],
        };
        assert_eq!(fp.canonical(), "10;;;");
        assert_eq!(Fingerprint::from_canonical("10;;;").unwrap(), fp);
    }

    #[test]
    fn canonical_rejects_malformed() {
        assert!(Fingerprint::from_canonical("1;2;3").is_none()); // 3 parts
        assert!(Fingerprint::from_canonical("1;2;3;4;5").is_none()); // 5 parts
        assert!(Fingerprint::from_canonical("a;;;").is_none()); // non-numeric
    }

    #[test]
    fn hello_without_extensions() {
        let h = ClientHello {
            legacy_version: ProtocolVersion::Tls10,
            random: [0; 32],
            session_id: vec![],
            cipher_suites: vec![CipherSuite(0x0005), CipherSuite(0x000a)],
            compression_methods: vec![0],
            extensions: None,
        };
        let fp = Fingerprint::from_client_hello(&h);
        assert_eq!(fp.ciphers, vec![0x0005, 0x000a]);
        assert!(fp.extensions.is_empty());
        assert!(fp.curves.is_empty());
        assert!(fp.point_formats.is_empty());
    }

    #[test]
    fn any_cipher_classifier() {
        let fp = Fingerprint::from_client_hello(&hello(false));
        assert!(fp.any_cipher(|c| c.is_aead()));
        assert!(!fp.any_cipher(|c| c.is_rc4()));
    }

    #[test]
    fn view_extraction_matches_owned() {
        for with_grease in [false, true] {
            let h = hello(with_grease);
            let bytes = h.to_handshake_bytes();
            let view = ClientHelloView::parse_handshake(&bytes).unwrap();
            let owned = Fingerprint::from_client_hello(&h);
            assert_eq!(Fingerprint::from_client_hello_view(&view), owned);
            assert_eq!(Fingerprint::id64_of_view(&view), owned.id64());
        }
        // No extension block at all.
        let h = ClientHello {
            legacy_version: ProtocolVersion::Tls10,
            random: [0; 32],
            session_id: vec![],
            cipher_suites: vec![CipherSuite(0x0005), CipherSuite(0x000a)],
            compression_methods: vec![0],
            extensions: None,
        };
        let bytes = h.to_handshake_bytes();
        let view = ClientHelloView::parse_handshake(&bytes).unwrap();
        let owned = Fingerprint::from_client_hello(&h);
        assert_eq!(Fingerprint::from_client_hello_view(&view), owned);
        assert_eq!(Fingerprint::id64_of_view(&view), owned.id64());
    }

    #[test]
    fn id64_distinguishes_feature_boundaries() {
        // [1,2];[] vs [1];[2] must differ despite equal flat content.
        let a = Fingerprint {
            ciphers: vec![1, 2],
            extensions: vec![],
            curves: vec![],
            point_formats: vec![],
        };
        let b = Fingerprint {
            ciphers: vec![1],
            extensions: vec![2],
            curves: vec![],
            point_formats: vec![],
        };
        assert_ne!(a.id64(), b.id64());
    }
}
