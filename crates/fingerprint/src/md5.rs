//! MD5 (RFC 1321), implemented from scratch.
//!
//! JA3 fingerprint hashes are defined as the MD5 of the JA3 string, so a
//! fingerprinting library that wants to interoperate with the JA3
//! ecosystem needs MD5. This is a digest for *identification*, not
//! security — MD5's collision weaknesses are irrelevant here, just as
//! they are for JA3 itself.

/// Output size in bytes.
pub const DIGEST_LEN: usize = 16;

const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9,
    14, 20, 5, 9, 14, 20, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 6, 10, 15,
    21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// Streaming MD5 state.
#[derive(Debug, Clone)]
pub struct Md5 {
    state: [u32; 4],
    /// Total message length in bytes.
    len: u64,
    /// Pending partial block.
    block: [u8; 64],
    block_len: usize,
}

impl Default for Md5 {
    fn default() -> Self {
        Md5::new()
    }
}

impl Md5 {
    /// Fresh state.
    pub fn new() -> Self {
        Md5 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476],
            len: 0,
            block: [0u8; 64],
            block_len: 0,
        }
    }

    fn compress(state: &mut [u32; 4], block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        let [mut a, mut b, mut c, mut d] = *state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(K[i])
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = tmp;
        }
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
    }

    /// Absorb bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        if self.block_len > 0 {
            let take = (64 - self.block_len).min(data.len());
            self.block[self.block_len..self.block_len + take].copy_from_slice(&data[..take]);
            self.block_len += take;
            data = &data[take..];
            if self.block_len == 64 {
                let block = self.block;
                Self::compress(&mut self.state, &block);
                self.block_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            Self::compress(&mut self.state, &block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.block[..data.len()].copy_from_slice(data);
            self.block_len = data.len();
        }
    }

    /// Pad, finish, and return the digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.block_len != 56 {
            self.update(&[0]);
        }
        // Manual length append (bypasses the len accounting).
        let mut block = self.block;
        block[56..].copy_from_slice(&bit_len.to_le_bytes());
        Self::compress(&mut self.state, &block);
        let mut out = [0u8; DIGEST_LEN];
        for (i, s) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&s.to_le_bytes());
        }
        out
    }
}

/// One-shot digest.
pub fn md5(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Md5::new();
    h.update(data);
    h.finalize()
}

/// One-shot digest as a lowercase hex string (JA3 hash format).
pub fn md5_hex(data: &[u8]) -> String {
    let digest = md5(data);
    let mut out = String::with_capacity(32);
    for b in digest {
        out.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        out.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let cases: [(&[u8], &str); 7] = [
            (b"", "d41d8cd98f00b204e9800998ecf8427e"),
            (b"a", "0cc175b9c0f1b6a831c399e269772661"),
            (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
            (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                b"abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(md5_hex(input), want, "input {input:?}");
        }
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 7) as u8).collect();
        let oneshot = md5(&data);
        // Feed in awkward chunk sizes crossing block boundaries.
        for chunk in [1usize, 3, 63, 64, 65, 130] {
            let mut h = Md5::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), oneshot, "chunk size {chunk}");
        }
    }

    #[test]
    fn boundary_lengths() {
        // Lengths around the padding boundary (55/56/57, 63/64/65).
        for n in [55usize, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![b'x'; n];
            // Just check determinism and that it doesn't panic; known
            // value for n == 64 computed with a reference implementation.
            let d1 = md5(&data);
            let d2 = md5(&data);
            assert_eq!(d1, d2);
        }
        assert_eq!(md5_hex(&[b'x'; 64]), "c1bb4f81d892b2d57947682aeb252456");
    }

    #[test]
    fn ja3_style_string() {
        // A canonical JA3 example string hashes stably.
        let s = "771,4865-4866-4867,0-23-65281-10-11,29-23-24,0";
        assert_eq!(md5_hex(s.as_bytes()).len(), 32);
    }
}
