//! The fingerprint database (§4, Table 2).
//!
//! Maps fingerprints to the software that produces them, applying the
//! paper's collision rules:
//!
//! * A collision between two *different kinds of software* removes the
//!   fingerprint — it cannot uniquely identify a client.
//! * A collision between specific software and a *library* keeps the
//!   library label (we assume the software links the library; this is
//!   why Chrome-on-Android shows up as "Android SDK").
//! * A collision within the same software merges the version range.

use std::collections::HashMap;

use crate::fp::Fingerprint;

/// Software categories, exactly the Table 2 rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// TLS libraries and OS-provided stacks (OpenSSL, MS CryptoAPI,
    /// Android SDK, Apple SecureTransport).
    Library,
    /// Web browsers.
    Browser,
    /// OS tools and services (e.g. Apple Spotlight).
    OsTool,
    /// Mobile applications.
    MobileApp,
    /// Developer tools (git, Flux, ...).
    DevTool,
    /// Antivirus / middlebox products.
    Antivirus,
    /// Cloud storage clients.
    CloudStorage,
    /// Mail clients.
    Email,
    /// Malware and potentially unwanted programs.
    Malware,
}

impl Category {
    /// Table 2 row label.
    pub fn label(self) -> &'static str {
        match self {
            Category::Library => "Libraries",
            Category::Browser => "Browsers",
            Category::OsTool => "OS Tools and Services",
            Category::MobileApp => "Mobile apps",
            Category::DevTool => "Dev. tools",
            Category::Antivirus => "AV",
            Category::CloudStorage => "Cloud Storage",
            Category::Email => "Email",
            Category::Malware => "Malware & PUP",
        }
    }

    /// All categories in Table 2 order.
    pub fn all() -> [Category; 9] {
        [
            Category::Library,
            Category::Browser,
            Category::OsTool,
            Category::MobileApp,
            Category::DevTool,
            Category::Antivirus,
            Category::CloudStorage,
            Category::Email,
            Category::Malware,
        ]
    }
}

/// A software label attached to a fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Label {
    /// Software or library name ("Firefox", "OpenSSL", "Android SDK").
    pub name: String,
    /// Category.
    pub category: Category,
    /// Version range this fingerprint covers, free-form ("27-32").
    pub versions: String,
}

impl Label {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, category: Category, versions: impl Into<String>) -> Self {
        Label {
            name: name.into(),
            category,
            versions: versions.into(),
        }
    }
}

/// Outcome of inserting a labelled fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// New fingerprint recorded.
    Inserted,
    /// Same software already present; version ranges merged.
    MergedVersions,
    /// Collided with a library label; library kept.
    LibraryKept,
    /// Collided with software while inserting a library; library now
    /// replaces the software label.
    LibraryReplaced,
    /// Collision between two different non-library programs; the
    /// fingerprint is now tombstoned and will never match.
    RemovedCollision,
    /// The fingerprint was already tombstoned.
    AlreadyRemoved,
}

#[derive(Debug, Clone)]
enum Entry {
    Unique(Label),
    Tombstone,
}

/// A fingerprint → software database with the paper's collision rules.
#[derive(Debug, Default, Clone)]
pub struct FingerprintDb {
    entries: HashMap<Fingerprint, Entry>,
    // Maintained by `insert` so len/removed/collision_rate are O(1)
    // instead of a full-table scan; always equal to the scan counts.
    usable: usize,
    tombstones: usize,
}

impl FingerprintDb {
    /// Empty database.
    pub fn new() -> Self {
        FingerprintDb::default()
    }

    /// Insert a labelled fingerprint, applying collision rules.
    pub fn insert(&mut self, fp: Fingerprint, label: Label) -> InsertOutcome {
        use std::collections::hash_map::Entry as MapEntry;
        match self.entries.entry(fp) {
            MapEntry::Vacant(v) => {
                v.insert(Entry::Unique(label));
                self.usable += 1;
                InsertOutcome::Inserted
            }
            MapEntry::Occupied(mut o) => match o.get_mut() {
                Entry::Tombstone => InsertOutcome::AlreadyRemoved,
                Entry::Unique(existing) => {
                    if existing.name == label.name {
                        // Version ranges are a comma-separated set; a
                        // plain substring test would let "5" swallow
                        // "52" (and "52" match inside "52,53"), so
                        // compare whole components.
                        if !existing.versions.split(',').any(|v| v == label.versions) {
                            existing.versions.push(',');
                            existing.versions.push_str(&label.versions);
                        }
                        InsertOutcome::MergedVersions
                    } else if existing.category == Category::Library
                        && label.category != Category::Library
                    {
                        // Software uses the library; library label wins.
                        InsertOutcome::LibraryKept
                    } else if label.category == Category::Library
                        && existing.category != Category::Library
                    {
                        *existing = label;
                        InsertOutcome::LibraryReplaced
                    } else {
                        // Two distinct programs (or two distinct
                        // libraries): ambiguous, remove.
                        *o.get_mut() = Entry::Tombstone;
                        self.usable -= 1;
                        self.tombstones += 1;
                        InsertOutcome::RemovedCollision
                    }
                }
            },
        }
    }

    /// Look up the software behind a fingerprint.
    pub fn lookup(&self, fp: &Fingerprint) -> Option<&Label> {
        match self.entries.get(fp) {
            Some(Entry::Unique(l)) => Some(l),
            _ => None,
        }
    }

    /// Number of usable (non-tombstoned) fingerprints. O(1).
    pub fn len(&self) -> usize {
        self.usable
    }

    /// True when no usable fingerprints exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of tombstoned (collided) fingerprints. O(1).
    pub fn removed(&self) -> usize {
        self.tombstones
    }

    /// Collision rate: tombstones / (tombstones + usable). The paper
    /// reports 7.3 % for the 4-feature variant vs 2.4 % with richer
    /// features.
    pub fn collision_rate(&self) -> f64 {
        let total = self.entries.len();
        if total == 0 {
            0.0
        } else {
            self.removed() as f64 / total as f64
        }
    }

    /// Iterate usable (fingerprint, label) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Fingerprint, &Label)> {
        self.entries.iter().filter_map(|(fp, e)| match e {
            Entry::Unique(l) => Some((fp, l)),
            Entry::Tombstone => None,
        })
    }

    /// Fingerprint counts per category (the "№ FPs" column of Table 2).
    pub fn count_by_category(&self) -> HashMap<Category, usize> {
        let mut out = HashMap::new();
        for (_, label) in self.iter() {
            *out.entry(label.category).or_insert(0) += 1;
        }
        out
    }
}

/// Accumulates traffic-weighted coverage, producing Table 2.
///
/// Feed it every connection's fingerprint; it tracks how many
/// connections each category explains and how many remain unlabelled.
#[derive(Debug, Default, Clone)]
pub struct CoverageStats {
    per_category: HashMap<Category, u64>,
    labelled: u64,
    total: u64,
}

impl CoverageStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        CoverageStats::default()
    }

    /// Record `count` connections bearing fingerprint `fp`.
    pub fn observe(&mut self, db: &FingerprintDb, fp: &Fingerprint, count: u64) {
        self.total += count;
        if let Some(label) = db.lookup(fp) {
            self.labelled += count;
            *self.per_category.entry(label.category).or_insert(0) += count;
        }
    }

    /// Total observed connections.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of connections attributed to any known client, in
    /// percent (the paper reports 69.23 %).
    pub fn coverage_pct(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.labelled as f64 / self.total as f64
        }
    }

    /// Coverage percentage for one category.
    pub fn category_pct(&self, cat: Category) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * *self.per_category.get(&cat).unwrap_or(&0) as f64 / self.total as f64
        }
    }

    /// Render Table 2: `(label, fingerprint count, coverage %)` rows in
    /// descending coverage order, plus the All row.
    pub fn table2(&self, db: &FingerprintDb) -> Vec<(String, usize, f64)> {
        let counts = db.count_by_category();
        let mut rows: Vec<(String, usize, f64)> = Category::all()
            .into_iter()
            .map(|c| {
                (
                    c.label().to_string(),
                    *counts.get(&c).unwrap_or(&0),
                    self.category_pct(c),
                )
            })
            .collect();
        rows.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap());
        rows.push(("All".to_string(), db.len(), self.coverage_pct()));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u16) -> Fingerprint {
        Fingerprint {
            ciphers: vec![n, 0xc02f],
            extensions: vec![0, 10, 11],
            curves: vec![29, 23],
            point_formats: vec![0],
        }
    }

    #[test]
    fn insert_and_lookup() {
        let mut db = FingerprintDb::new();
        assert_eq!(
            db.insert(fp(1), Label::new("Firefox", Category::Browser, "52")),
            InsertOutcome::Inserted
        );
        assert_eq!(db.lookup(&fp(1)).unwrap().name, "Firefox");
        assert_eq!(db.lookup(&fp(2)), None);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn same_software_merges_versions() {
        let mut db = FingerprintDb::new();
        db.insert(fp(1), Label::new("Firefox", Category::Browser, "52"));
        assert_eq!(
            db.insert(fp(1), Label::new("Firefox", Category::Browser, "53")),
            InsertOutcome::MergedVersions
        );
        assert_eq!(db.lookup(&fp(1)).unwrap().versions, "52,53");
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn library_beats_software_both_directions() {
        // Chrome collides with Android SDK → labelled Android SDK (§4).
        let mut db = FingerprintDb::new();
        db.insert(fp(1), Label::new("Android SDK", Category::Library, "4.4"));
        assert_eq!(
            db.insert(fp(1), Label::new("Chrome", Category::Browser, "33")),
            InsertOutcome::LibraryKept
        );
        assert_eq!(db.lookup(&fp(1)).unwrap().name, "Android SDK");

        let mut db = FingerprintDb::new();
        db.insert(fp(1), Label::new("Chrome", Category::Browser, "33"));
        assert_eq!(
            db.insert(fp(1), Label::new("Android SDK", Category::Library, "4.4")),
            InsertOutcome::LibraryReplaced
        );
        assert_eq!(db.lookup(&fp(1)).unwrap().name, "Android SDK");
    }

    #[test]
    fn different_software_tombstones() {
        let mut db = FingerprintDb::new();
        db.insert(fp(1), Label::new("Dropbox", Category::CloudStorage, "3"));
        assert_eq!(
            db.insert(fp(1), Label::new("Thunderbird", Category::Email, "38")),
            InsertOutcome::RemovedCollision
        );
        assert_eq!(db.lookup(&fp(1)), None);
        assert_eq!(db.len(), 0);
        assert_eq!(db.removed(), 1);
        // Tombstone is sticky: re-inserting either does not resurrect.
        assert_eq!(
            db.insert(fp(1), Label::new("Dropbox", Category::CloudStorage, "3")),
            InsertOutcome::AlreadyRemoved
        );
        assert_eq!(db.lookup(&fp(1)), None);
    }

    #[test]
    fn collision_rate() {
        let mut db = FingerprintDb::new();
        for i in 0..9 {
            db.insert(
                fp(i),
                Label::new(format!("app{i}"), Category::MobileApp, "1"),
            );
        }
        db.insert(fp(0), Label::new("other", Category::MobileApp, "1"));
        assert!((db.collision_rate() - 1.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn coverage_table() {
        let mut db = FingerprintDb::new();
        db.insert(fp(1), Label::new("OpenSSL", Category::Library, "1.0.1"));
        db.insert(fp(2), Label::new("Chrome", Category::Browser, "45"));
        let mut cov = CoverageStats::new();
        cov.observe(&db, &fp(1), 50);
        cov.observe(&db, &fp(2), 20);
        cov.observe(&db, &fp(3), 30); // unlabelled
        assert!((cov.coverage_pct() - 70.0).abs() < 1e-9);
        assert!((cov.category_pct(Category::Library) - 50.0).abs() < 1e-9);
        let rows = cov.table2(&db);
        assert_eq!(rows.last().unwrap().0, "All");
        assert_eq!(rows.last().unwrap().1, 2);
        assert_eq!(rows[0].0, "Libraries"); // highest coverage first
    }

    #[test]
    fn version_merge_compares_whole_components() {
        // "5" is a substring of "52" but a distinct version range; the
        // old substring check silently dropped it.
        let mut db = FingerprintDb::new();
        db.insert(fp(1), Label::new("Firefox", Category::Browser, "52"));
        db.insert(fp(1), Label::new("Firefox", Category::Browser, "5"));
        assert_eq!(db.lookup(&fp(1)).unwrap().versions, "52,5");
        // Exact component repeats still dedupe.
        db.insert(fp(1), Label::new("Firefox", Category::Browser, "52"));
        db.insert(fp(1), Label::new("Firefox", Category::Browser, "5"));
        assert_eq!(db.lookup(&fp(1)).unwrap().versions, "52,5");
    }

    #[test]
    fn cached_counts_match_table_scan() {
        let mut db = FingerprintDb::new();
        for i in 0..6 {
            db.insert(
                fp(i),
                Label::new(format!("app{i}"), Category::MobileApp, "1"),
            );
        }
        // Tombstone two, merge one, library-replace one.
        db.insert(fp(0), Label::new("other", Category::MobileApp, "1"));
        db.insert(fp(1), Label::new("another", Category::Email, "2"));
        db.insert(fp(2), Label::new("app2", Category::MobileApp, "2"));
        db.insert(fp(3), Label::new("OpenSSL", Category::Library, "1.0"));
        db.insert(fp(0), Label::new("app0", Category::MobileApp, "1")); // already removed
        let scanned_usable = db.iter().count();
        assert_eq!(db.len(), scanned_usable);
        assert_eq!(db.len(), 4);
        assert_eq!(db.removed(), 2);
        assert!((db.collision_rate() - 2.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn categories_have_distinct_labels() {
        let mut seen = std::collections::HashSet::new();
        for c in Category::all() {
            assert!(seen.insert(c.label()));
        }
    }
}
