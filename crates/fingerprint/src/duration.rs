//! Fingerprint-lifetime tracking (§4.1 of the paper).
//!
//! The paper asks: how long is each fingerprint seen in the wild? It
//! finds an extreme bimodality — the median lifetime is a single day
//! (42,188 of 69,874 fingerprints appear on exactly one day), while
//! 1,203 fingerprints persist for more than 1,200 days and carry 21.75 %
//! of fingerprinted traffic. [`SightingTracker`] reproduces those
//! statistics from a stream of (fingerprint, date) observations.

use std::collections::HashMap;
use std::hash::Hash;
use tlscope_chron::Date;

/// First-seen / last-seen / volume record for one fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sighting {
    /// First date observed.
    pub first: Date,
    /// Last date observed.
    pub last: Date,
    /// Total connections observed.
    pub connections: u64,
}

impl Sighting {
    /// Lifetime in days, *inclusive* of both endpoints — a fingerprint
    /// seen on a single day has duration 1 (the paper's "median 1 day").
    pub fn duration_days(&self) -> i64 {
        (self.last - self.first) + 1
    }
}

/// Aggregated §4.1 statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct DurationStats {
    /// Number of distinct fingerprints.
    pub fingerprints: usize,
    /// Maximum lifetime in days.
    pub max_days: i64,
    /// Median lifetime in days.
    pub median_days: f64,
    /// Mean lifetime in days.
    pub mean_days: f64,
    /// Third-quartile lifetime in days.
    pub q3_days: f64,
    /// Standard deviation of lifetimes in days.
    pub stddev_days: f64,
    /// Fingerprints seen on exactly one day.
    pub single_day: usize,
    /// Connections carried by single-day fingerprints.
    pub single_day_connections: u64,
    /// Fingerprints with lifetime above `long_threshold_days`.
    pub long_lived: usize,
    /// Connections carried by long-lived fingerprints.
    pub long_lived_connections: u64,
    /// Total connections observed.
    pub total_connections: u64,
    /// Threshold used for `long_lived` (paper: 1,200 days).
    pub long_threshold_days: i64,
}

impl DurationStats {
    /// Share of connections carried by long-lived fingerprints, percent.
    pub fn long_lived_traffic_pct(&self) -> f64 {
        if self.total_connections == 0 {
            0.0
        } else {
            100.0 * self.long_lived_connections as f64 / self.total_connections as f64
        }
    }
}

/// Streaming first/last-seen tracker keyed by fingerprint id.
///
/// The key type is generic so callers can pick the cheapest id at
/// hand: the 64-bit content hash ([`crate::Fingerprint::id64`]) for
/// standalone use, or a dense interned u32 ([`crate::FpId`]) inside a
/// high-volume aggregate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SightingTracker<K: Eq + Hash = u64> {
    map: HashMap<K, Sighting>,
}

impl<K: Eq + Hash + Copy> Default for SightingTracker<K> {
    fn default() -> Self {
        SightingTracker {
            map: HashMap::new(),
        }
    }
}

impl<K: Eq + Hash + Copy> SightingTracker<K> {
    /// Empty tracker.
    pub fn new() -> Self {
        SightingTracker::default()
    }

    /// Record `count` connections with fingerprint id `fp` on `date`.
    ///
    /// Observations may arrive out of chronological order.
    pub fn observe(&mut self, fp: K, date: Date, count: u64) {
        self.map
            .entry(fp)
            .and_modify(|s| {
                if date < s.first {
                    s.first = date;
                }
                if date > s.last {
                    s.last = date;
                }
                s.connections += count;
            })
            .or_insert(Sighting {
                first: date,
                last: date,
                connections: count,
            });
    }

    /// Number of distinct fingerprints seen.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Sighting record for one fingerprint id.
    pub fn get(&self, fp: K) -> Option<&Sighting> {
        self.map.get(&fp)
    }

    /// Iterate all (fingerprint id, sighting) pairs — used to merge
    /// trackers from parallel ingestion workers.
    pub fn iter_raw(&self) -> impl Iterator<Item = (&K, &Sighting)> {
        self.map.iter()
    }

    /// Compute §4.1 statistics with the given long-lived threshold
    /// (the paper uses 1,200 days).
    pub fn stats(&self, long_threshold_days: i64) -> DurationStats {
        let mut durations: Vec<i64> = self.map.values().map(|s| s.duration_days()).collect();
        durations.sort_unstable();
        let n = durations.len();
        let total_connections: u64 = self.map.values().map(|s| s.connections).sum();
        if n == 0 {
            return DurationStats {
                fingerprints: 0,
                max_days: 0,
                median_days: 0.0,
                mean_days: 0.0,
                q3_days: 0.0,
                stddev_days: 0.0,
                single_day: 0,
                single_day_connections: 0,
                long_lived: 0,
                long_lived_connections: 0,
                total_connections,
                long_threshold_days,
            };
        }
        let mean = durations.iter().sum::<i64>() as f64 / n as f64;
        let var = durations
            .iter()
            .map(|d| {
                let diff = *d as f64 - mean;
                diff * diff
            })
            .sum::<f64>()
            / n as f64;
        let quantile = |q: f64| -> f64 {
            // Linear interpolation between closest ranks (type-7).
            let pos = q * (n - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            durations[lo] as f64 * (1.0 - frac) + durations[hi] as f64 * frac
        };
        let single: Vec<&Sighting> = self
            .map
            .values()
            .filter(|s| s.duration_days() == 1)
            .collect();
        let long: Vec<&Sighting> = self
            .map
            .values()
            .filter(|s| s.duration_days() > long_threshold_days)
            .collect();
        DurationStats {
            fingerprints: n,
            max_days: *durations.last().unwrap(),
            median_days: quantile(0.5),
            mean_days: mean,
            q3_days: quantile(0.75),
            stddev_days: var.sqrt(),
            single_day: single.len(),
            single_day_connections: single.iter().map(|s| s.connections).sum(),
            long_lived: long.len(),
            long_lived_connections: long.iter().map(|s| s.connections).sum(),
            total_connections,
            long_threshold_days,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_day_has_duration_one() {
        let mut t: SightingTracker = SightingTracker::new();
        t.observe(1, Date::ymd(2015, 6, 1), 10);
        assert_eq!(t.get(1).unwrap().duration_days(), 1);
    }

    #[test]
    fn out_of_order_observations() {
        let mut t: SightingTracker = SightingTracker::new();
        t.observe(1, Date::ymd(2015, 6, 10), 1);
        t.observe(1, Date::ymd(2015, 6, 1), 1);
        t.observe(1, Date::ymd(2015, 6, 5), 1);
        let s = t.get(1).unwrap();
        assert_eq!(s.first, Date::ymd(2015, 6, 1));
        assert_eq!(s.last, Date::ymd(2015, 6, 10));
        assert_eq!(s.duration_days(), 10);
        assert_eq!(s.connections, 3);
    }

    #[test]
    fn stats_bimodal_population() {
        let mut t: SightingTracker = SightingTracker::new();
        // 6 ephemeral single-day fingerprints with little traffic.
        for i in 0..6 {
            t.observe(i, Date::ymd(2016, 1, 1 + i as u8), 1);
        }
        // 2 long-lived fingerprints with heavy traffic.
        for i in 100..102u64 {
            t.observe(i, Date::ymd(2014, 10, 1), 500);
            t.observe(i, Date::ymd(2018, 3, 1), 500);
        }
        let stats = t.stats(1200);
        assert_eq!(stats.fingerprints, 8);
        assert_eq!(stats.single_day, 6);
        assert_eq!(stats.single_day_connections, 6);
        assert_eq!(stats.long_lived, 2);
        assert_eq!(stats.long_lived_connections, 2000);
        assert_eq!(stats.median_days, 1.0);
        assert_eq!(
            stats.max_days,
            (Date::ymd(2018, 3, 1) - Date::ymd(2014, 10, 1)) + 1
        );
        assert!((stats.long_lived_traffic_pct() - 100.0 * 2000.0 / 2006.0).abs() < 1e-9);
        assert!(stats.mean_days > 1.0 && stats.stddev_days > 0.0);
    }

    #[test]
    fn quantiles_on_uniform_data() {
        let mut t: SightingTracker = SightingTracker::new();
        // Durations 1, 2, 3, 4, 5 days.
        for i in 0..5u64 {
            t.observe(i, Date::ymd(2016, 1, 1), 1);
            t.observe(i, Date::ymd(2016, 1, 1 + i as u8), 1);
        }
        let stats = t.stats(1200);
        assert_eq!(stats.median_days, 3.0);
        assert_eq!(stats.q3_days, 4.0);
        assert_eq!(stats.mean_days, 3.0);
    }

    #[test]
    fn empty_stats() {
        let t: SightingTracker = SightingTracker::new();
        let stats = t.stats(1200);
        assert_eq!(stats.fingerprints, 0);
        assert_eq!(stats.long_lived_traffic_pct(), 0.0);
    }
}
