//! The richer fingerprint variant used by prior work (§4).
//!
//! The paper's 4-feature fingerprint deliberately omits fields its
//! passive dataset lacked: "Prior work has included additional fields
//! like the client TLS version, compression methods, and signature
//! algorithms. ... Originally 2.4% of the fingerprints collide; with
//! our methodology this increases to 7.3%." [`RichFingerprint`] is that
//! prior-work variant; the DESIGN.md ablation compares collision rates
//! between the two over the same hello corpus.

use core::fmt;

use tlscope_wire::exts::ext_type;
use tlscope_wire::{grease::is_grease, ClientHello};

use crate::fp::Fingerprint;

/// 4-feature fingerprint plus version, compression, and signature
/// algorithms — the Brotherston/Durumeric-style feature set.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RichFingerprint {
    /// The paper's 4 features.
    pub base: Fingerprint,
    /// Legacy version field from the hello.
    pub version: u16,
    /// Compression methods in offer order.
    pub compression: Vec<u8>,
    /// signature_algorithms (hash, sig) pairs as wire u16s; empty when
    /// the extension is absent.
    pub sigalgs: Vec<u16>,
}

impl RichFingerprint {
    /// Extract from a parsed ClientHello.
    pub fn from_client_hello(hello: &ClientHello) -> Self {
        let sigalgs = hello
            .find_extension(ext_type::SIGNATURE_ALGORITHMS)
            .and_then(|e| {
                let mut r = tlscope_wire::codec::Reader::new(&e.body);
                r.vec16().ok()?.u16_list().ok()
            })
            .unwrap_or_default()
            .into_iter()
            .filter(|v| !is_grease(*v))
            .collect();
        RichFingerprint {
            base: Fingerprint::from_client_hello(hello),
            version: hello.legacy_version.to_wire(),
            compression: hello.compression_methods.clone(),
            sigalgs,
        }
    }

    /// Canonical text form: base canonical plus the extra features.
    pub fn canonical(&self) -> String {
        let comp = self
            .compression
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("-");
        let sig = self
            .sigalgs
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("-");
        format!(
            "{};{};{};{}",
            self.base.canonical(),
            self.version,
            comp,
            sig
        )
    }
}

impl fmt::Display for RichFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

/// Collision counts for a corpus of hellos under both methodologies —
/// the DESIGN.md ablation. A "collision" is a pair of *distinct* corpus
/// entries (by rich identity) that share a fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollisionStats {
    /// Corpus size.
    pub hellos: usize,
    /// Distinct 4-feature fingerprints.
    pub distinct_basic: usize,
    /// Distinct rich fingerprints.
    pub distinct_rich: usize,
}

impl CollisionStats {
    /// Compute over a hello corpus.
    pub fn measure<'a>(hellos: impl IntoIterator<Item = &'a ClientHello>) -> Self {
        let mut basic = std::collections::HashSet::new();
        let mut rich = std::collections::HashSet::new();
        let mut n = 0;
        for h in hellos {
            n += 1;
            basic.insert(Fingerprint::from_client_hello(h));
            rich.insert(RichFingerprint::from_client_hello(h));
        }
        CollisionStats {
            hellos: n,
            distinct_basic: basic.len(),
            distinct_rich: rich.len(),
        }
    }

    /// Fraction of rich-distinct clients that the basic methodology
    /// cannot tell apart (the paper's 7.3 % vs 2.4 % axis).
    pub fn basic_collision_rate(&self) -> f64 {
        if self.distinct_rich == 0 {
            0.0
        } else {
            1.0 - self.distinct_basic as f64 / self.distinct_rich as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlscope_wire::{CipherSuite, Extension, ProtocolVersion};

    fn hello(version: ProtocolVersion, compression: Vec<u8>) -> ClientHello {
        ClientHello {
            legacy_version: version,
            random: [0; 32],
            session_id: vec![],
            cipher_suites: vec![CipherSuite(0xc02f), CipherSuite(0x002f)],
            compression_methods: compression,
            extensions: Some(vec![
                Extension::server_name("x.test"),
                Extension::signature_algorithms(&[0x0403, 0x0401]),
            ]),
        }
    }

    #[test]
    fn version_distinguishes_rich_but_not_basic() {
        let a = hello(ProtocolVersion::Tls12, vec![0]);
        let b = hello(ProtocolVersion::Tls10, vec![0]);
        assert_eq!(
            Fingerprint::from_client_hello(&a),
            Fingerprint::from_client_hello(&b)
        );
        assert_ne!(
            RichFingerprint::from_client_hello(&a),
            RichFingerprint::from_client_hello(&b)
        );
    }

    #[test]
    fn compression_distinguishes_rich() {
        let a = hello(ProtocolVersion::Tls12, vec![0]);
        let b = hello(ProtocolVersion::Tls12, vec![1, 0]);
        assert_eq!(
            Fingerprint::from_client_hello(&a),
            Fingerprint::from_client_hello(&b)
        );
        assert_ne!(
            RichFingerprint::from_client_hello(&a),
            RichFingerprint::from_client_hello(&b)
        );
    }

    #[test]
    fn sigalgs_extracted() {
        let h = hello(ProtocolVersion::Tls12, vec![0]);
        let rich = RichFingerprint::from_client_hello(&h);
        assert_eq!(rich.sigalgs, vec![0x0403, 0x0401]);
    }

    #[test]
    fn collision_stats_reflect_information_loss() {
        // 3 rich-distinct clients, 2 basic-distinct.
        let corpus = [
            hello(ProtocolVersion::Tls12, vec![0]),
            hello(ProtocolVersion::Tls10, vec![0]), // basic-collides with #1
            {
                let mut h = hello(ProtocolVersion::Tls12, vec![0]);
                h.cipher_suites.push(CipherSuite(0x000a));
                h
            },
        ];
        let stats = CollisionStats::measure(corpus.iter());
        assert_eq!(stats.hellos, 3);
        assert_eq!(stats.distinct_rich, 3);
        assert_eq!(stats.distinct_basic, 2);
        assert!((stats.basic_collision_rate() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn canonical_contains_extras() {
        let h = hello(ProtocolVersion::Tls12, vec![0]);
        let c = RichFingerprint::from_client_hello(&h).canonical();
        assert!(c.contains(";771;0;"), "{c}");
    }
}
