//! JA3 fingerprinting, for interoperability with the wider ecosystem.
//!
//! JA3 concatenates five ClientHello fields —
//! `version,ciphers,extensions,curves,point_formats` — with `,`
//! between fields and `-` within them, then MD5-hashes the string.
//! It is the richer-feature cousin of the paper's 4-feature fingerprint
//! (the paper's §4 notes that adding fields like the client version
//! lowers the collision rate from 7.3 % to 2.4 %).

use crate::md5::md5_hex;
use tlscope_wire::grease::is_grease;
use tlscope_wire::{ext_type, ClientHello};

/// Build the JA3 string for a ClientHello (GREASE-stripped, per spec).
pub fn ja3_string(hello: &ClientHello) -> String {
    fn join(vs: impl Iterator<Item = u16>) -> String {
        let mut out = String::new();
        for (i, v) in vs.enumerate() {
            if i > 0 {
                out.push('-');
            }
            out.push_str(&v.to_string());
        }
        out
    }
    let version = hello.legacy_version.to_wire();
    let ciphers = join(
        hello
            .cipher_suites
            .iter()
            .map(|c| c.0)
            .filter(|c| !is_grease(*c)),
    );
    let extensions = join(
        hello
            .extensions()
            .iter()
            .map(|e| e.typ)
            .filter(|t| !is_grease(*t)),
    );
    let curves = join(
        hello
            .find_extension(ext_type::SUPPORTED_GROUPS)
            .and_then(|e| e.parse_supported_groups().ok())
            .unwrap_or_default()
            .into_iter()
            .map(|g| g.0)
            .filter(|g| !is_grease(*g)),
    );
    let formats = hello
        .find_extension(ext_type::EC_POINT_FORMATS)
        .and_then(|e| e.parse_ec_point_formats().ok())
        .unwrap_or_default()
        .iter()
        .map(|f| f.to_string())
        .collect::<Vec<_>>()
        .join("-");
    format!("{version},{ciphers},{extensions},{curves},{formats}")
}

/// The JA3 hash: lowercase-hex MD5 of the JA3 string.
pub fn ja3_hash(hello: &ClientHello) -> String {
    md5_hex(ja3_string(hello).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlscope_wire::{CipherSuite, Extension, NamedGroup, ProtocolVersion};

    fn hello() -> ClientHello {
        ClientHello {
            legacy_version: ProtocolVersion::Tls12,
            random: [0; 32],
            session_id: vec![],
            cipher_suites: vec![
                CipherSuite(0x1301),
                CipherSuite(0x1302),
                CipherSuite(0x1303),
            ],
            compression_methods: vec![0],
            extensions: Some(vec![
                Extension::server_name("x.test"),
                Extension::empty(23),
                Extension::empty(65281),
                Extension::supported_groups(&[
                    NamedGroup::X25519,
                    NamedGroup::SECP256R1,
                    NamedGroup::SECP384R1,
                ]),
                Extension::ec_point_formats(&[0]),
            ]),
        }
    }

    #[test]
    fn ja3_string_layout() {
        assert_eq!(
            ja3_string(&hello()),
            "771,4865-4866-4867,0-23-65281-10-11,29-23-24,0"
        );
    }

    #[test]
    fn ja3_hash_stable() {
        let h = ja3_hash(&hello());
        assert_eq!(h.len(), 32);
        assert_eq!(h, ja3_hash(&hello()));
    }

    #[test]
    fn grease_stripped_from_all_fields() {
        let mut h = hello();
        h.cipher_suites.insert(0, CipherSuite(0x0a0a));
        h.extensions
            .as_mut()
            .unwrap()
            .insert(0, Extension::empty(0xfafa));
        assert_eq!(ja3_hash(&h), ja3_hash(&hello()));
    }

    #[test]
    fn empty_fields_render_empty() {
        let h = ClientHello {
            legacy_version: ProtocolVersion::Tls10,
            random: [0; 32],
            session_id: vec![],
            cipher_suites: vec![CipherSuite(0x0005)],
            compression_methods: vec![0],
            extensions: None,
        };
        assert_eq!(ja3_string(&h), "769,5,,,");
    }
}
