//! # tlscope-fingerprint
//!
//! TLS client fingerprinting, reproducing §4 of *Coming of Age* (IMC
//! 2018): the 4-feature order-preserving fingerprint, the labelled
//! fingerprint database with the paper's collision rules (Table 2), and
//! fingerprint-lifetime statistics (§4.1). JA3 (with a from-scratch
//! RFC 1321 MD5) is included for ecosystem interoperability.
//!
//! ```
//! use tlscope_fingerprint::{Fingerprint, FingerprintDb, Label, Category};
//! use tlscope_wire::{ClientHello, CipherSuite, ProtocolVersion};
//!
//! let hello = ClientHello {
//!     legacy_version: ProtocolVersion::Tls12,
//!     random: [0; 32],
//!     session_id: vec![],
//!     cipher_suites: vec![CipherSuite(0xc02b), CipherSuite(0xc02f)],
//!     compression_methods: vec![0],
//!     extensions: Some(vec![]),
//! };
//! let fp = Fingerprint::from_client_hello(&hello);
//!
//! let mut db = FingerprintDb::new();
//! db.insert(fp.clone(), Label::new("ExampleBrowser", Category::Browser, "1.0"));
//! assert_eq!(db.lookup(&fp).unwrap().name, "ExampleBrowser");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod db;
pub mod duration;
pub mod fp;
pub mod intern;
pub mod ja3;
pub mod md5;
pub mod rich;

pub use db::{Category, CoverageStats, FingerprintDb, InsertOutcome, Label};
pub use duration::{DurationStats, Sighting, SightingTracker};
pub use fp::{Fingerprint, Fnv64};
pub use intern::{FpId, FpInterner};
pub use ja3::{ja3_hash, ja3_string};
pub use rich::{CollisionStats, RichFingerprint};
