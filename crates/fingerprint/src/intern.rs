//! Hash-consing interner for fingerprints.
//!
//! A month of traffic repeats the same few hundred fingerprints across
//! millions of connections. Keying per-connection bookkeeping on the
//! full [`Fingerprint`] (four heap vectors) costs a deep clone per
//! lookup; the interner assigns each distinct fingerprint a dense
//! [`FpId`] once, and every later sighting is a u32 table hit.
//!
//! The table is keyed on [`Fingerprint::id64`], matching the
//! aggregation layer, which already treats id64 as fingerprint
//! identity (sightings and flag counters key on it). Ids are dense and
//! allocation-ordered, so merging two interners is a remap table, not
//! a re-hash of every fingerprint.

use std::collections::HashMap;

use crate::fp::Fingerprint;

/// Dense interned fingerprint id, valid only with the interner that
/// produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FpId(pub u32);

impl FpId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Fingerprint → dense id table.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct FpInterner {
    ids: HashMap<u64, FpId>,
    fps: Vec<Fingerprint>,
    id64s: Vec<u64>,
}

impl FpInterner {
    /// Empty interner.
    pub fn new() -> Self {
        FpInterner::default()
    }

    /// Number of distinct fingerprints interned.
    pub fn len(&self) -> usize {
        self.fps.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.fps.is_empty()
    }

    /// Intern by precomputed id64, building the fingerprint only on
    /// first sight. This is the hot-path entry: `make` runs zero times
    /// for a repeat fingerprint, so a repeated hello costs no
    /// allocation at all.
    pub fn intern_hashed(&mut self, id64: u64, make: impl FnOnce() -> Fingerprint) -> FpId {
        if let Some(&id) = self.ids.get(&id64) {
            return id;
        }
        let id = FpId(u32::try_from(self.fps.len()).expect("more than u32::MAX fingerprints"));
        self.ids.insert(id64, id);
        self.fps.push(make());
        self.id64s.push(id64);
        id
    }

    /// Intern a borrowed fingerprint (cloned only on first sight).
    pub fn intern(&mut self, fp: &Fingerprint) -> FpId {
        self.intern_hashed(fp.id64(), || fp.clone())
    }

    /// Intern an owned fingerprint (moved in on first sight).
    pub fn intern_owned(&mut self, fp: Fingerprint) -> FpId {
        self.intern_hashed(fp.id64(), || fp)
    }

    /// The fingerprint behind an id.
    ///
    /// # Panics
    /// Panics on an id from a different interner generation.
    pub fn get(&self, id: FpId) -> &Fingerprint {
        &self.fps[id.index()]
    }

    /// The id64 behind an id (precomputed, no re-hash).
    pub fn id64_of(&self, id: FpId) -> u64 {
        self.id64s[id.index()]
    }

    /// Look up the id for an id64 already interned.
    pub fn lookup_id64(&self, id64: u64) -> Option<FpId> {
        self.ids.get(&id64).copied()
    }

    /// Iterate `(id, fingerprint)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (FpId, &Fingerprint)> {
        self.fps
            .iter()
            .enumerate()
            .map(|(i, fp)| (FpId(i as u32), fp))
    }

    /// Consume into `(id64, fingerprint)` pairs in id order — used to
    /// drain a worker's interner into another during merge.
    pub fn into_entries(self) -> impl Iterator<Item = (u64, Fingerprint)> {
        self.id64s.into_iter().zip(self.fps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u16) -> Fingerprint {
        Fingerprint {
            ciphers: vec![n, 0xc02f],
            extensions: vec![0, 10],
            curves: vec![29],
            point_formats: vec![0],
        }
    }

    #[test]
    fn ids_are_dense_and_stable() {
        let mut it = FpInterner::new();
        let a = it.intern(&fp(1));
        let b = it.intern(&fp(2));
        let a2 = it.intern(&fp(1));
        assert_eq!(a, FpId(0));
        assert_eq!(b, FpId(1));
        assert_eq!(a, a2);
        assert_eq!(it.len(), 2);
        assert_eq!(it.get(a), &fp(1));
        assert_eq!(it.id64_of(b), fp(2).id64());
    }

    #[test]
    fn intern_hashed_skips_make_on_repeat() {
        let mut it = FpInterner::new();
        let first = fp(7);
        let id = it.intern_hashed(first.id64(), || first.clone());
        let mut made = false;
        let id2 = it.intern_hashed(first.id64(), || {
            made = true;
            fp(7)
        });
        assert_eq!(id, id2);
        assert!(!made, "repeat intern must not rebuild the fingerprint");
    }

    #[test]
    fn lookup_and_iter_round_trip() {
        let mut it = FpInterner::new();
        for n in 0..10u16 {
            it.intern_owned(fp(n));
        }
        assert_eq!(it.lookup_id64(fp(3).id64()), Some(FpId(3)));
        assert_eq!(it.lookup_id64(0xdead_beef), None);
        let collected: Vec<_> = it.iter().map(|(id, f)| (id.0, f.ciphers[0])).collect();
        assert_eq!(collected.len(), 10);
        assert_eq!(collected[4], (4, 4));
        let entries: Vec<_> = it.clone().into_entries().collect();
        assert_eq!(entries[5], (fp(5).id64(), fp(5)));
    }
}
