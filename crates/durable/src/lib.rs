//! Durability primitives shared by the passive (`tlscope-notary`) and
//! active (`tlscope-scanner`) checkpoint stores.
//!
//! Long-running campaigns persist intermediate state to disk and must
//! survive the three classic failure modes of that state: torn writes
//! (crash mid-`write`), truncation (crash mid-`rename`, full disk),
//! and bit-rot (storage corruption). This crate provides the pieces
//! both stores build on:
//!
//! - [`seal`] / [`open_sealed`] — append and verify an FNV-1a content
//!   checksum footer, so any damaged file is *detected* at load time
//!   instead of silently mis-parsed;
//! - [`write_atomic`] — tmp+rename writes, so a crash never leaves a
//!   half-written file under the final name;
//! - [`quarantine`] — rename a damaged file to `<name>.bad` so the
//!   caller can recompute its contents without destroying forensic
//!   evidence;
//! - [`install_quiet_panic_hook`] / [`quiet_thread_panics`] — the
//!   shared panic hook for supervised workers (previously duplicated
//!   in the notary pipeline and the scanner sweep engine).
//!
//! Everything here is `std`-only and deliberately free of any tlscope
//! domain types: the notary and scanner crates own their formats; this
//! crate owns the bytes-on-disk guarantees.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Once;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Tag prefix of the checksum footer line appended by [`seal`].
pub const FOOTER_PREFIX: &str = "sum\tfnv1a:";

/// FNV-1a 64-bit hash of `bytes`. Pure in-tree (no dependency), fast
/// enough for checkpoint-sized payloads, and stable across platforms —
/// exactly what a content checksum footer needs. Not cryptographic:
/// it detects corruption, not tampering.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Why a sealed text failed verification in [`open_sealed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealViolation {
    /// No checksum footer line at the end of the text (truncated file,
    /// or a file that was never sealed).
    MissingFooter,
    /// A footer line is present but its hex digest does not parse.
    MalformedFooter,
    /// The digest parsed but does not match the body's content hash.
    ChecksumMismatch,
}

impl std::fmt::Display for SealViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SealViolation::MissingFooter => write!(f, "missing checksum footer"),
            SealViolation::MalformedFooter => write!(f, "malformed checksum footer"),
            SealViolation::ChecksumMismatch => write!(f, "checksum mismatch"),
        }
    }
}

/// Append the checksum footer line `sum\tfnv1a:<016x>\n` to `body`.
/// The digest covers every byte of `body` (including its trailing
/// newline), so any truncation, bit flip, or line mutation of the
/// sealed text is caught by [`open_sealed`].
pub fn seal(body: String) -> String {
    let digest = fnv1a64(body.as_bytes());
    let mut sealed = body;
    sealed.push_str(FOOTER_PREFIX);
    sealed.push_str(&format!("{digest:016x}\n"));
    sealed
}

/// Verify the checksum footer of a sealed text and return the body it
/// covers (the text with the footer line removed).
pub fn open_sealed(text: &str) -> Result<&str, SealViolation> {
    // A sealed text always ends in a newline; its absence means the
    // footer line itself was cut short.
    let trimmed = text
        .strip_suffix('\n')
        .ok_or(SealViolation::MissingFooter)?;
    let footer_start = match trimmed.rfind('\n') {
        Some(i) => i + 1,
        None => 0,
    };
    let footer = &trimmed[footer_start..];
    let hex = footer
        .strip_prefix(FOOTER_PREFIX)
        .ok_or(SealViolation::MissingFooter)?;
    let digest = u64::from_str_radix(hex, 16).map_err(|_| SealViolation::MalformedFooter)?;
    if hex.len() != 16 {
        return Err(SealViolation::MalformedFooter);
    }
    let body = &text[..footer_start];
    if fnv1a64(body.as_bytes()) != digest {
        return Err(SealViolation::ChecksumMismatch);
    }
    Ok(body)
}

/// Write `text` to `dir/file_name` atomically: the bytes land in
/// `dir/file_name.tmp` first and are renamed over the final name only
/// once fully written, so readers never observe a torn file under the
/// final name. Creates `dir` if missing. A leftover `.tmp` from a
/// crash is harmless — checkpoint loaders ignore non-`.ckpt` names.
pub fn write_atomic(dir: &Path, file_name: &str, text: &str) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let tmp = dir.join(format!("{file_name}.tmp"));
    fs::write(&tmp, text)?;
    fs::rename(&tmp, dir.join(file_name))
}

/// Move a damaged file out of the way by renaming it to `<name>.bad`
/// (e.g. `2016-03.ckpt` → `2016-03.ckpt.bad`). The caller then
/// recomputes the lost state; the damaged bytes stay on disk for
/// inspection. Returns the quarantine path.
pub fn quarantine(path: &Path) -> io::Result<PathBuf> {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".bad");
    let bad = path.with_file_name(name);
    fs::rename(path, &bad)?;
    Ok(bad)
}

// The default panic hook prints every caught worker panic, which
// floods output once panics are expected and supervised. The hook
// below forwards to the previous hook unless the current thread has
// opted in as a supervised worker.
thread_local! {
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

static QUIET_HOOK: Once = Once::new();

/// Install the process-wide quiet panic hook (idempotent). Panics on
/// threads that have not called [`quiet_thread_panics`]`(true)` are
/// forwarded to the previously installed hook unchanged.
pub fn install_quiet_panic_hook() {
    QUIET_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
}

/// Mark the current thread as a supervised worker (`quiet = true`) so
/// its caught panics are not printed, or restore normal reporting
/// (`quiet = false`). Installs the hook on first use.
pub fn quiet_thread_panics(quiet: bool) {
    install_quiet_panic_hook();
    QUIET_PANICS.with(|q| q.set(quiet));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn seal_roundtrips() {
        let body = "# header\nline\t1\n".to_string();
        let sealed = seal(body.clone());
        assert!(sealed.ends_with('\n'));
        assert_eq!(open_sealed(&sealed), Ok(body.as_str()));
    }

    #[test]
    fn empty_body_seals() {
        let sealed = seal(String::new());
        assert_eq!(open_sealed(&sealed), Ok(""));
    }

    #[test]
    fn unsealed_text_is_missing_footer() {
        assert_eq!(
            open_sealed("just a line\n"),
            Err(SealViolation::MissingFooter)
        );
        assert_eq!(open_sealed(""), Err(SealViolation::MissingFooter));
    }

    #[test]
    fn truncation_is_detected() {
        let sealed = seal("month\t2016-01\nfp\t12\tdeadbeef\n".to_string());
        for cut in 1..sealed.len() {
            let cropped = &sealed[..cut]; // sealed text is pure ASCII
            assert!(
                open_sealed(cropped).is_err(),
                "truncation at byte {cut} went undetected"
            );
        }
    }

    #[test]
    fn bit_flip_is_detected() {
        let sealed = seal("month\t2016-01\nflag\t3\t7\n".to_string());
        let mut bytes = sealed.clone().into_bytes();
        for i in 0..bytes.len() {
            let orig = bytes[i];
            bytes[i] ^= 0x01;
            if let Ok(mutated) = String::from_utf8(bytes.clone()) {
                assert!(
                    open_sealed(&mutated).is_err(),
                    "bit flip at byte {i} went undetected"
                );
            }
            bytes[i] = orig;
        }
    }

    #[test]
    fn malformed_footer_digest_is_rejected() {
        let bad = format!("body\n{FOOTER_PREFIX}zzzz\n");
        assert_eq!(open_sealed(&bad), Err(SealViolation::MalformedFooter));
        // Digest of the wrong width parses as hex but is still malformed.
        let short = format!("body\n{FOOTER_PREFIX}abcd\n");
        assert_eq!(open_sealed(&short), Err(SealViolation::MalformedFooter));
    }

    #[test]
    fn atomic_write_then_quarantine() {
        let dir = std::env::temp_dir().join(format!(
            "tlscope-durable-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .subsec_nanos()
        ));
        write_atomic(&dir, "x.ckpt", "hello\n").unwrap();
        let path = dir.join("x.ckpt");
        assert_eq!(fs::read_to_string(&path).unwrap(), "hello\n");
        assert!(!dir.join("x.ckpt.tmp").exists());
        let bad = quarantine(&path).unwrap();
        assert_eq!(bad, dir.join("x.ckpt.bad"));
        assert!(!path.exists());
        assert_eq!(fs::read_to_string(&bad).unwrap(), "hello\n");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quiet_hook_round_trip() {
        install_quiet_panic_hook();
        quiet_thread_panics(true);
        let caught = std::panic::catch_unwind(|| panic!("supervised"));
        quiet_thread_panics(false);
        assert!(caught.is_err());
    }
}
