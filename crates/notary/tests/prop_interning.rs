//! Property tests for fingerprint interning: the `FpId`s an aggregate
//! hands out depend on ingestion order (first sighting wins the next
//! dense id), so sharded workers assign *different* ids to the same
//! [`Fingerprint`] — and merge-time remapping plus the id-independent
//! `PartialEq` must hide that completely. These tests pin the ISSUE's
//! acceptance matrix: interned parallel pipeline `PartialEq`-identical
//! to the serial path across workers 1–8 × fault profiles
//! none/defaults/stress.

use proptest::prelude::*;
use tlscope_chron::Month;
use tlscope_notary::{ingest_flow, ingest_parallel, ingest_serial, NotaryAggregate, TappedFlow};
use tlscope_traffic::{FaultInjector, Generator, TrafficConfig};

fn flows(seed: u64, year: i32, mon: u8, n: u32, faults: FaultInjector) -> Vec<TappedFlow> {
    let g = Generator::new(TrafficConfig {
        seed,
        connections_per_month: n,
        faults,
    });
    g.month(Month::ym(year, mon))
        .into_iter()
        .map(TappedFlow::from)
        .collect()
}

fn profile(i: usize) -> FaultInjector {
    match i {
        0 => FaultInjector::none(),
        1 => FaultInjector::tap_defaults(),
        _ => FaultInjector::stress(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The full acceptance matrix per case: every worker count 1–8 is
    /// checked against the serial aggregate for one (seed, month,
    /// fault-profile) draw, and per-fingerprint lookups through the
    /// interner must agree in both directions.
    #[test]
    fn interned_parallel_matches_serial_for_all_worker_counts(
        seed in 0u64..1_000_000,
        year in 2012i32..=2018,
        mon in 1u8..=12,
        n in 80u32..240,
        profile_idx in 0usize..3,
    ) {
        let fs = flows(seed, year, mon, n, profile(profile_idx));
        let serial = ingest_serial(fs.clone());
        for workers in 1usize..=8 {
            let parallel = ingest_parallel(fs.clone(), workers);
            prop_assert_eq!(&serial, &parallel, "workers={}", workers);
            // Equality is id-independent by construction; also pin the
            // by-value lookup path each side of the remap.
            for (fp, count) in serial.iter_fp_counts() {
                prop_assert_eq!(parallel.fp_count(fp), count);
                prop_assert_eq!(
                    parallel.sighting_of(fp).is_some(),
                    serial.sighting_of(fp).is_some()
                );
            }
            for (fp, count) in parallel.iter_fp_counts() {
                prop_assert_eq!(serial.fp_count(fp), count);
            }
        }
    }

    /// Ingestion order permutes interner id assignment; the aggregate
    /// must still compare equal. Reversing the flow order guarantees a
    /// different first-sighting sequence whenever the month carries
    /// more than one distinct fingerprint.
    #[test]
    fn id_assignment_order_is_invisible(
        seed in 0u64..1_000_000,
        year in 2012i32..=2018,
        mon in 1u8..=12,
    ) {
        let fs = flows(seed, year, mon, 150, FaultInjector::none());
        let mut forward = NotaryAggregate::new();
        for f in &fs {
            ingest_flow(&mut forward, f);
        }
        let mut backward = NotaryAggregate::new();
        for f in fs.iter().rev() {
            ingest_flow(&mut backward, f);
        }
        prop_assert_eq!(&forward, &backward);
    }

    /// Merge is commutative under remapping: folding the shards
    /// left-to-right and right-to-left yields equal aggregates even
    /// though the surviving interners assign ids in different orders.
    #[test]
    fn merge_order_is_invisible(
        seed in 0u64..1_000_000,
        year in 2012i32..=2018,
        mon in 1u8..=12,
        shards in 2usize..=6,
    ) {
        let fs = flows(seed, year, mon, 180, FaultInjector::tap_defaults());
        let chunk = fs.len().div_ceil(shards);
        let part = |c: &[TappedFlow]| ingest_serial(c.iter().cloned());
        let mut ltr = NotaryAggregate::new();
        for c in fs.chunks(chunk) {
            ltr.merge(part(c));
        }
        let mut rtl = NotaryAggregate::new();
        for c in fs.chunks(chunk).rev() {
            rtl.merge(part(c));
        }
        prop_assert_eq!(&ltr, &rtl);
        prop_assert_eq!(&ltr, &ingest_serial(fs));
    }
}
