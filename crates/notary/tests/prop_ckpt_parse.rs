//! Fuzz-style property test for the checkpoint parser: arbitrary
//! mutations of valid checkpoint texts — truncations, bit flips,
//! deleted / duplicated / inserted lines — must never panic the
//! parser. Every outcome is either a clean parse or a structured
//! damage error ([`CheckpointError::is_damage`]) carrying the path the
//! caller handed in, so `load_dir` can quarantine the file instead of
//! aborting the campaign.

use std::path::Path;

use proptest::prelude::*;
use tlscope_chron::Month;
use tlscope_notary::{checkpoint, ingest_serial, CheckpointError, NotaryAggregate, TappedFlow};
use tlscope_traffic::{FaultInjector, Generator, TrafficConfig};

fn sample_partial(seed: u64) -> NotaryAggregate {
    let g = Generator::new(TrafficConfig {
        seed,
        connections_per_month: 120,
        faults: FaultInjector {
            truncate_prob: 0.05,
            corrupt_prob: 0.05,
            ..FaultInjector::none()
        },
    });
    let flows = g.stream_month(Month::ym(2016, 5)).map(TappedFlow::from);
    ingest_serial(flows)
}

/// One structural or byte-level mutation of a checkpoint text.
#[derive(Debug, Clone)]
enum Mutation {
    Truncate(usize),
    FlipByte(usize, u8),
    DeleteLine(usize),
    DuplicateLine(usize),
    InsertLine(usize, String),
}

fn mutation() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        (0usize..4096).prop_map(Mutation::Truncate),
        ((0usize..4096), (1u8..255)).prop_map(|(i, m)| Mutation::FlipByte(i, m)),
        (0usize..64).prop_map(Mutation::DeleteLine),
        (0usize..64).prop_map(Mutation::DuplicateLine),
        ((0usize..64), (0u64..u64::MAX))
            .prop_map(|(i, s)| Mutation::InsertLine(i, format!("junk\t{s:x}"))),
    ]
}

fn apply(text: &str, m: &Mutation) -> String {
    match m {
        Mutation::Truncate(at) => {
            let mut bytes = text.as_bytes().to_vec();
            bytes.truncate(*at % (bytes.len() + 1));
            String::from_utf8_lossy(&bytes).into_owned()
        }
        Mutation::FlipByte(at, mask) => {
            let mut bytes = text.as_bytes().to_vec();
            if !bytes.is_empty() {
                let i = at % bytes.len();
                bytes[i] ^= mask;
            }
            String::from_utf8_lossy(&bytes).into_owned()
        }
        Mutation::DeleteLine(j) => {
            let mut lines: Vec<&str> = text.lines().collect();
            if !lines.is_empty() {
                lines.remove(j % lines.len());
            }
            let mut out = lines.join("\n");
            if text.ends_with('\n') && !out.is_empty() {
                out.push('\n');
            }
            out
        }
        Mutation::DuplicateLine(j) => {
            let mut lines: Vec<&str> = text.lines().collect();
            if !lines.is_empty() {
                let line = lines[j % lines.len()];
                let at = j % (lines.len() + 1);
                lines.insert(at, line);
            }
            let mut out = lines.join("\n");
            if text.ends_with('\n') && !out.is_empty() {
                out.push('\n');
            }
            out
        }
        Mutation::InsertLine(j, s) => {
            let mut lines: Vec<&str> = text.lines().collect();
            let at = j % (lines.len() + 1);
            lines.insert(at, s);
            let mut out = lines.join("\n");
            if text.ends_with('\n') && !out.is_empty() {
                out.push('\n');
            }
            out
        }
    }
}

fn error_path(e: &CheckpointError) -> &Path {
    match e {
        CheckpointError::Io(p, _) => p,
        CheckpointError::Malformed(p, _) => p,
        CheckpointError::Corrupt(p) => p,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    /// Mutated v2 (sealed) texts parse cleanly or fail as damage with
    /// the caller's path — never a panic, never an Io error.
    #[test]
    fn mutated_v2_text_never_panics(
        seed in 0u64..1_000,
        muts in proptest::collection::vec(mutation(), 1..4),
    ) {
        let text = checkpoint::to_text(&sample_partial(seed));
        let mut mutated = text.clone();
        for m in &muts {
            mutated = apply(&mutated, m);
        }
        let path = Path::new("fuzz/v2.ckpt");
        match checkpoint::from_text(&mutated, path) {
            Ok(parsed) => {
                // A surviving parse must itself round-trip: the text a
                // clean parse implies is re-parseable to the same value.
                let again = checkpoint::from_text(&checkpoint::to_text(&parsed), path).unwrap();
                prop_assert_eq!(parsed, again);
            }
            Err(e) => {
                prop_assert!(e.is_damage(), "unexpected error class: {e}");
                prop_assert_eq!(error_path(&e), path);
            }
        }
    }

    /// The legacy v1 (unsealed) format gets the same guarantee: the
    /// parser tolerates arbitrary mutation without panicking, and any
    /// checksum-less damage is reported as Malformed, not Io.
    #[test]
    fn mutated_v1_text_never_panics(
        seed in 0u64..1_000,
        muts in proptest::collection::vec(mutation(), 1..4),
    ) {
        let sealed = checkpoint::to_text(&sample_partial(seed));
        let body = tlscope_durable::open_sealed(&sealed).unwrap();
        let v1 = body.replacen("# tlscope checkpoint v2", "# tlscope checkpoint v1", 1);
        assert!(v1.starts_with("# tlscope checkpoint v1"));
        let mut mutated = v1;
        for m in &muts {
            mutated = apply(&mutated, m);
        }
        let path = Path::new("fuzz/v1.ckpt");
        match checkpoint::from_text(&mutated, path) {
            Ok(_) => {}
            Err(e) => {
                prop_assert!(e.is_damage(), "unexpected error class: {e}");
                prop_assert_eq!(error_path(&e), path);
            }
        }
    }
}
