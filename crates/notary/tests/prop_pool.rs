//! Property tests for the pool-recycled and borrowed ingestion paths:
//! both must be byte-for-byte equivalent to owned serial ingestion on
//! the whole [`NotaryAggregate`] for any worker count 1–8, batch
//! size, and fault profile (none / tap defaults / stress) — and the
//! quarantine/bisect recovery path must return every poisoned flow's
//! buffers to the pool instead of leaking or dropping them.

use proptest::prelude::*;
use tlscope_chron::Month;
use tlscope_notary::{
    ingest_borrowed, ingest_pooled, ingest_pooled_supervised, ingest_serial, FlowPool,
    NotaryAggregate, PipelineConfig, PipelineMetrics, PooledFlow, TappedFlow,
};
use tlscope_traffic::{FaultInjector, Generator, TrafficConfig};

/// The committed fault profiles: the same trio the test suites run
/// under via `TLSCOPE_FAULT_PROFILE`.
fn fault_profile() -> impl Strategy<Value = FaultInjector> {
    (0usize..3).prop_map(|i| match i {
        0 => FaultInjector::none(),
        1 => FaultInjector::tap_defaults(),
        _ => FaultInjector::stress(),
    })
}

fn month_flows(seed: u64, year: i32, mon: u8, n: u32, faults: FaultInjector) -> Vec<TappedFlow> {
    Generator::new(TrafficConfig {
        seed,
        connections_per_month: n,
        faults,
    })
    .month(Month::ym(year, mon))
    .into_iter()
    .map(TappedFlow::from)
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Pooled channel ingestion and fused borrowed ingestion both
    /// reproduce owned serial ingestion bit-for-bit.
    #[test]
    fn pooled_and_borrowed_match_owned_serial(
        seed in 0u64..1_000_000,
        year in 2012i32..=2018,
        mon in 1u8..=12,
        n in 50u32..200,
        workers in 1usize..=8,
        batch in 1usize..300,
        faults in fault_profile(),
    ) {
        let flows = month_flows(seed, year, mon, n, faults);
        let serial = ingest_serial(flows.clone());

        // Borrowed fast path: fold the generator's scratch borrows
        // straight into the aggregate, as the fused runner does.
        let g = Generator::new(TrafficConfig {
            seed,
            connections_per_month: n,
            faults,
        });
        let mut borrowed = NotaryAggregate::new();
        let mut stream = g.stream_month(Month::ym(year, mon));
        while let Some(flow) = stream.next_flow() {
            ingest_borrowed(&mut borrowed, flow.date, flow.port, flow.client, flow.server);
        }
        prop_assert_eq!(&serial, &borrowed);

        // Pool-recycled channel path.
        let metrics = PipelineMetrics::new();
        let pooled = ingest_pooled(flows.clone(), workers, batch, &metrics);
        prop_assert_eq!(&serial, &pooled);

        let s = metrics.snapshot();
        prop_assert_eq!(s.flows_dispatched, flows.len() as u64);
        prop_assert_eq!(s.flows_ingested, flows.len() as u64);
        prop_assert_eq!(s.shards_lost, 0);
        prop_assert!(s.accounting_holds());
    }

    /// Poison flows are bisected out and quarantined; their buffers —
    /// and their batch neighbours' — all come back to the pool.
    #[test]
    fn quarantine_returns_poisoned_buffers_to_the_pool(
        seed in 0u64..1_000_000,
        n in 100u32..250,
        workers in 1usize..=8,
        batch in 1usize..128,
        poison_stride in 2u64..40,
        faults in fault_profile(),
    ) {
        let flows = month_flows(seed, 2016, 6, n, faults);
        let total = flows.len() as u64;
        let cfg = PipelineConfig::clamped(workers, batch);
        let pool = FlowPool::for_config(&cfg);
        let metrics = PipelineMetrics::new();
        // Deterministic poison: every flow whose client length is a
        // multiple of the stride panics the processor.
        let expected_poison = flows
            .iter()
            .filter(|f| f.client.len() as u64 % poison_stride == 0)
            .count() as u64;
        let (agg, ()) = ingest_pooled_supervised(
            &pool,
            &cfg,
            &metrics,
            move |agg: &mut NotaryAggregate, flow: &PooledFlow| {
                if flow.client.len() as u64 % poison_stride == 0 {
                    panic!("poisoned flow");
                }
                agg.not_tls += 1;
            },
            |feeder| {
                for f in &flows {
                    feeder.push(f.date, f.port, &f.client, f.server.as_deref());
                }
            },
        );
        let s = metrics.snapshot();
        prop_assert_eq!(s.shards_lost, 0);
        prop_assert_eq!(s.flows_quarantined, expected_poison);
        prop_assert_eq!(agg.not_tls, total - expected_poison);
        prop_assert_eq!(s.flows_dispatched, total);
        prop_assert!(s.accounting_holds());
        // Recovery never loses a buffer: the pool is sized for the
        // pipeline, so every client/server buffer — quarantined flows
        // included — is either recycled mid-run or sitting in the
        // return channel now.
        let stats = pool.stats();
        prop_assert_eq!(stats.bufs_dropped, 0);
        prop_assert_eq!(stats.batches_dropped, 0);
        let reused = pool.flow_buf(b"post-run");
        prop_assert_eq!(&*reused, b"post-run");
        prop_assert_eq!(pool.stats().bufs_recycled, stats.bufs_recycled + 1);
    }
}
