//! Property test: the batched parallel pipeline is byte-for-byte
//! equivalent to serial ingestion — for any batch size, worker count
//! 1–8, and tap fault mix (including 100 % truncation). Equality is on
//! the whole [`NotaryAggregate`] (integer-exact), so every monthly
//! counter, fingerprint count, sighting, and failure counter must
//! match, and the parse-failure classes surfaced through
//! [`PipelineMetrics`] must agree with the aggregate itself.

use proptest::prelude::*;
use tlscope_chron::Month;
use tlscope_notary::{ingest_batched, ingest_serial, PipelineMetrics, TappedFlow};
use tlscope_traffic::{FaultInjector, Generator, TrafficConfig};

fn fault_mix() -> impl Strategy<Value = FaultInjector> {
    (0usize..7).prop_map(|i| match i {
        0 => FaultInjector::none(),
        1 => FaultInjector::tap_defaults(),
        2 => FaultInjector {
            drop_prob: 0.1,
            truncate_prob: 0.2,
            corrupt_prob: 0.2,
            ..FaultInjector::none()
        },
        // Every flow truncated: nothing but damaged input.
        3 => FaultInjector {
            truncate_prob: 1.0,
            ..FaultInjector::none()
        },
        4 => FaultInjector {
            truncate_prob: 0.5,
            corrupt_prob: 1.0,
            ..FaultInjector::none()
        },
        // The extended tap faults: mid-flow gaps, duplication, outages.
        5 => FaultInjector {
            gap_prob: 0.5,
            duplicate_prob: 0.3,
            outage_prob: 0.4,
            ..FaultInjector::none()
        },
        _ => FaultInjector::stress(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn parallel_is_byte_for_byte_serial(
        seed in 0u64..1_000_000,
        year in 2012i32..=2018,
        mon in 1u8..=12,
        n in 50u32..200,
        workers in 1usize..=8,
        batch in 1usize..300,
        faults in fault_mix(),
    ) {
        let g = Generator::new(TrafficConfig {
            seed,
            connections_per_month: n,
            faults,
        });
        let flows: Vec<TappedFlow> = g
            .month(Month::ym(year, mon))
            .into_iter()
            .map(TappedFlow::from)
            .collect();

        let serial = ingest_serial(flows.clone());
        let metrics = PipelineMetrics::new();
        let parallel = ingest_batched(flows.clone(), workers, batch, &metrics);
        prop_assert_eq!(&serial, &parallel);

        let s = metrics.snapshot();
        prop_assert_eq!(s.not_tls, serial.not_tls);
        prop_assert_eq!(s.garbled_client, serial.garbled_client);
        prop_assert_eq!(s.flows_dispatched, flows.len() as u64);
        prop_assert_eq!(s.flows_ingested, flows.len() as u64);
        prop_assert_eq!(s.shards_lost, 0);
    }
}
