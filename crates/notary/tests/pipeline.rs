//! Generator-driven pipeline tests: serial vs parallel equivalence on
//! realistic traffic. These live outside the crate so the traffic
//! crate's `From<ConnectionEvent> for TappedFlow` impl applies (it
//! targets the library build of tlscope-notary).

use tlscope_chron::Month;
use tlscope_notary::{
    ingest_batched, ingest_flow, ingest_parallel, ingest_parallel_metered, ingest_serial,
    ingest_supervised_with, NotaryAggregate, PipelineConfig, PipelineMetrics, TappedFlow,
};
use tlscope_traffic::{FaultInjector, Generator, TrafficConfig};

fn flows(month: Month, n: u32) -> Vec<TappedFlow> {
    let g = Generator::new(TrafficConfig {
        seed: 7,
        connections_per_month: n,
        faults: FaultInjector::none(),
    });
    g.month(month).into_iter().map(TappedFlow::from).collect()
}

#[test]
fn serial_ingestion_counts_everything() {
    let agg = ingest_serial(flows(Month::ym(2016, 3), 400));
    let m = agg.month(Month::ym(2016, 3)).unwrap();
    assert_eq!(m.total, 400);
    assert!(m.answered > 350);
    assert!(m.neg_aead > 0);
}

#[test]
fn parallel_matches_serial_exactly() {
    let fs = flows(Month::ym(2015, 9), 600);
    let serial = ingest_serial(fs.clone());
    let parallel = ingest_parallel(fs, 4);
    // Aggregation is commutative and integer-exact, so the whole
    // aggregate — counters, fingerprints, sightings, position means —
    // must be bit-identical.
    assert_eq!(serial, parallel);
}

#[test]
fn batch_size_never_changes_the_result() {
    let fs = flows(Month::ym(2014, 8), 500);
    let serial = ingest_serial(fs.clone());
    for batch in [1, 7, 64, 256, 1024] {
        let metrics = PipelineMetrics::new();
        let batched = ingest_batched(fs.clone(), 3, batch, &metrics);
        assert_eq!(serial, batched, "batch size {batch} diverged");
        assert_eq!(metrics.snapshot().flows_ingested, fs.len() as u64);
    }
}

#[test]
fn faulty_flows_are_tolerated() {
    let g = Generator::new(TrafficConfig {
        seed: 9,
        connections_per_month: 500,
        faults: FaultInjector {
            truncate_prob: 0.3,
            corrupt_prob: 0.3,
            ..FaultInjector::none()
        },
    });
    let fs: Vec<TappedFlow> = g
        .month(Month::ym(2016, 6))
        .into_iter()
        .map(TappedFlow::from)
        .collect();
    let n = fs.len();
    let agg = ingest_serial(fs);
    // Nothing panics; damaged flows are counted, not lost.
    let m = agg.month(Month::ym(2016, 6)).unwrap();
    assert!(m.total as usize + agg.garbled_client as usize + agg.not_tls as usize == n);
    assert!(agg.garbled_client > 0);
}

/// The ISSUE's poison-flow acceptance criterion, on realistic traffic
/// with the real extractor: a flow that panics the processor results
/// in exactly that flow quarantined — `shards_lost` stays 0, every
/// surviving flow is ingested (bit-identical to a serial run over the
/// survivors), and `dispatched = ingested + quarantined`.
#[test]
fn poison_flow_is_quarantined_not_the_shard() {
    let fs = flows(Month::ym(2016, 5), 600);
    let poison = fs[123].client.clone();
    let expected = fs.iter().filter(|f| f.client == poison).count() as u64;
    assert!(expected >= 1);
    let metrics = PipelineMetrics::new();
    let needle = poison.clone();
    // The processor is shared by reference across workers (`F: Copy`),
    // so the non-`Copy` capture is borrowed, not duplicated.
    let process = move |agg: &mut NotaryAggregate, flow: &TappedFlow| {
        if flow.client == needle {
            panic!("poisoned flow reached the extractor");
        }
        ingest_flow(agg, flow);
    };
    let agg = ingest_supervised_with(
        fs.clone(),
        &PipelineConfig::new(4, 50).unwrap(),
        &metrics,
        &process,
    );
    let s = metrics.snapshot();
    assert_eq!(s.shards_lost, 0, "supervision must prevent shard loss");
    assert_eq!(s.flows_quarantined, expected);
    assert_eq!(s.flows_dispatched, 600);
    assert_eq!(s.flows_ingested, 600 - expected);
    assert!(
        s.accounting_holds(),
        "dispatched = ingested + quarantined must hold"
    );
    assert!(s.worker_respawns >= 1);
    assert!(s.batch_retries >= 2);
    let survivors = ingest_serial(fs.into_iter().filter(|f| f.client != poison));
    assert_eq!(agg, survivors, "batch neighbours must all survive");
}

/// Runs under whatever `TLSCOPE_FAULT_PROFILE` names — the CI
/// fault-matrix job sets `stress`, forcing heavy drops, truncation,
/// corruption, gaps, duplication, and outages through the full
/// pipeline; locally it falls back to the default tap mix.
#[test]
fn env_fault_profile_never_breaks_equivalence() {
    let faults = FaultInjector::from_env(FaultInjector::tap_defaults());
    faults.validate().expect("profile must be valid");
    let g = Generator::new(TrafficConfig {
        seed: 31,
        connections_per_month: 800,
        faults,
    });
    let fs: Vec<TappedFlow> = g
        .month(Month::ym(2017, 9))
        .into_iter()
        .map(TappedFlow::from)
        .collect();
    let serial = ingest_serial(fs.clone());
    let metrics = PipelineMetrics::new();
    let batched = ingest_batched(fs.clone(), 4, 64, &metrics);
    assert_eq!(serial, batched);
    let s = metrics.snapshot();
    assert_eq!(s.flows_dispatched, fs.len() as u64);
    assert!(s.accounting_holds());
    assert_eq!(s.shards_lost, 0);
}

/// Graceful degradation on realistic traffic: heavy truncation and
/// mid-flow gaps damage many flows, and a measurable share of them is
/// salvaged — the parser recovers the intact handshake prefix instead
/// of writing the whole flow off as garbled. The salvage count must
/// flow through both the aggregate and the pipeline metrics.
#[test]
fn damaged_flows_are_salvaged_not_discarded() {
    let g = Generator::new(TrafficConfig {
        seed: 17,
        connections_per_month: 2000,
        faults: FaultInjector {
            truncate_prob: 0.5,
            gap_prob: 0.5,
            ..FaultInjector::none()
        },
    });
    let fs: Vec<TappedFlow> = g
        .month(Month::ym(2016, 4))
        .into_iter()
        .map(TappedFlow::from)
        .collect();
    let metrics = PipelineMetrics::new();
    let agg = ingest_batched(fs.clone(), 4, 128, &metrics);
    assert!(agg.salvaged > 0, "no flow was salvaged under 50% damage");
    assert!(agg.garbled_client > 0, "some damage should be fatal");
    let s = metrics.snapshot();
    assert_eq!(s.flows_salvaged, agg.salvaged);
    assert_eq!(agg, ingest_serial(fs), "salvage must stay deterministic");
}

#[test]
fn realistic_traffic_failures_are_metered() {
    let fs = flows(Month::ym(2016, 1), 700);
    let metrics = PipelineMetrics::new();
    let agg = ingest_parallel_metered(fs, 3, &metrics);
    let s = metrics.snapshot();
    assert_eq!(s.flows_dispatched, 700);
    assert_eq!(s.flows_ingested, 700);
    assert_eq!(s.batches_ingested, 3);
    assert_eq!(
        s.not_tls + s.garbled_client,
        agg.not_tls + agg.garbled_client
    );
}
