//! Generator-driven pipeline tests: serial vs parallel equivalence on
//! realistic traffic. These live outside the crate so the traffic
//! crate's `From<ConnectionEvent> for TappedFlow` impl applies (it
//! targets the library build of tlscope-notary).

use tlscope_chron::Month;
use tlscope_notary::{
    ingest_batched, ingest_parallel, ingest_parallel_metered, ingest_serial, PipelineMetrics,
    TappedFlow,
};
use tlscope_traffic::{FaultInjector, Generator, TrafficConfig};

fn flows(month: Month, n: u32) -> Vec<TappedFlow> {
    let g = Generator::new(TrafficConfig {
        seed: 7,
        connections_per_month: n,
        faults: FaultInjector::none(),
    });
    g.month(month).into_iter().map(TappedFlow::from).collect()
}

#[test]
fn serial_ingestion_counts_everything() {
    let agg = ingest_serial(flows(Month::ym(2016, 3), 400));
    let m = agg.month(Month::ym(2016, 3)).unwrap();
    assert_eq!(m.total, 400);
    assert!(m.answered > 350);
    assert!(m.neg_aead > 0);
}

#[test]
fn parallel_matches_serial_exactly() {
    let fs = flows(Month::ym(2015, 9), 600);
    let serial = ingest_serial(fs.clone());
    let parallel = ingest_parallel(fs, 4);
    // Aggregation is commutative and integer-exact, so the whole
    // aggregate — counters, fingerprints, sightings, position means —
    // must be bit-identical.
    assert_eq!(serial, parallel);
}

#[test]
fn batch_size_never_changes_the_result() {
    let fs = flows(Month::ym(2014, 8), 500);
    let serial = ingest_serial(fs.clone());
    for batch in [1, 7, 64, 256, 1024] {
        let metrics = PipelineMetrics::new();
        let batched = ingest_batched(fs.clone(), 3, batch, &metrics);
        assert_eq!(serial, batched, "batch size {batch} diverged");
        assert_eq!(metrics.snapshot().flows_ingested, fs.len() as u64);
    }
}

#[test]
fn faulty_flows_are_tolerated() {
    let g = Generator::new(TrafficConfig {
        seed: 9,
        connections_per_month: 500,
        faults: FaultInjector {
            drop_prob: 0.0,
            truncate_prob: 0.3,
            corrupt_prob: 0.3,
        },
    });
    let fs: Vec<TappedFlow> = g
        .month(Month::ym(2016, 6))
        .into_iter()
        .map(TappedFlow::from)
        .collect();
    let n = fs.len();
    let agg = ingest_serial(fs);
    // Nothing panics; damaged flows are counted, not lost.
    let m = agg.month(Month::ym(2016, 6)).unwrap();
    assert!(m.total as usize + agg.garbled_client as usize + agg.not_tls as usize == n);
    assert!(agg.garbled_client > 0);
}

#[test]
fn realistic_traffic_failures_are_metered() {
    let fs = flows(Month::ym(2016, 1), 700);
    let metrics = PipelineMetrics::new();
    let agg = ingest_parallel_metered(fs, 3, &metrics);
    let s = metrics.snapshot();
    assert_eq!(s.flows_dispatched, 700);
    assert_eq!(s.flows_ingested, 700);
    assert_eq!(s.batches_ingested, 3);
    assert_eq!(
        s.not_tls + s.garbled_client,
        agg.not_tls + agg.garbled_client
    );
}
