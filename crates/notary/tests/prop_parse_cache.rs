//! Property test: hello-parse memoisation is invisible in the output.
//! For any seed, month, worker count 1–8, batch size, and fault
//! profile (clean, tap defaults, stress), ingestion with the parse
//! cache enabled produces a [`NotaryAggregate`] bit-identical to
//! ingestion with the cache disabled — every monthly counter,
//! fingerprint count, sighting, and failure class. Dedicated threads
//! give each run a fresh thread-local cache so capacities can be
//! pinned per case. Run with `TLSCOPE_VERIFY_PARSE_CACHE=1` (the CI
//! fault-matrix leg does) every hit additionally re-parses and asserts
//! equality inline.

use proptest::prelude::*;
use tlscope_chron::Month;
use tlscope_notary::{
    ingest_batched, ingest_serial, parse_cache_set_capacity, parse_cache_stats, ParseCacheStats,
    PipelineMetrics, TappedFlow,
};
use tlscope_traffic::{FaultInjector, Generator, TrafficConfig};

/// Run `f` on a dedicated thread: a fresh thread-local parse cache,
/// whose capacity can be set without affecting any other test.
fn on_fresh_thread<R: Send>(f: impl FnOnce() -> R + Send) -> R {
    std::thread::scope(|s| s.spawn(f).join().expect("ingestion thread panicked"))
}

fn flows_for(seed: u64, year: i32, mon: u8, n: u32, faults: FaultInjector) -> Vec<TappedFlow> {
    let g = Generator::new(TrafficConfig {
        seed,
        connections_per_month: n,
        faults,
    });
    g.month(Month::ym(year, mon))
        .into_iter()
        .map(TappedFlow::from)
        .collect()
}

fn profile() -> impl Strategy<Value = FaultInjector> {
    (0usize..3).prop_map(|i| match i {
        0 => FaultInjector::none(),
        1 => FaultInjector::tap_defaults(),
        _ => FaultInjector::stress(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn cached_ingestion_is_bit_identical(
        seed in 0u64..1_000_000,
        year in 2012i32..=2018,
        mon in 1u8..=12,
        n in 50u32..200,
        workers in 1usize..=8,
        batch in 1usize..300,
        faults in profile(),
    ) {
        let flows = flows_for(seed, year, mon, n, faults);
        let uncached = on_fresh_thread(|| {
            parse_cache_set_capacity(0);
            ingest_serial(flows.clone())
        });
        let cached_serial = on_fresh_thread(|| ingest_serial(flows.clone()));
        prop_assert_eq!(&uncached, &cached_serial);
        // Parallel workers each carry their own cache; the merge must
        // still be bit-identical to the uncached serial pass.
        let metrics = PipelineMetrics::new();
        let parallel = ingest_batched(flows.clone(), workers, batch, &metrics);
        prop_assert_eq!(&uncached, &parallel);
        // Per-worker cache counters rolled up through the batch flush:
        // every hit or miss is a dispatched flow.
        let s = metrics.snapshot();
        prop_assert!(s.parse_cache_hits + s.parse_cache_misses <= s.flows_dispatched);
    }

    #[test]
    fn tiny_capacity_evicts_but_stays_identical(
        seed in 0u64..1_000_000,
        year in 2012i32..=2018,
        mon in 1u8..=12,
    ) {
        let flows = flows_for(seed, year, mon, 150, FaultInjector::none());
        let uncached = on_fresh_thread(|| {
            parse_cache_set_capacity(0);
            ingest_serial(flows.clone())
        });
        let (squeezed, stats) = on_fresh_thread(|| {
            parse_cache_set_capacity(2);
            (ingest_serial(flows.clone()), parse_cache_stats())
        });
        prop_assert_eq!(&uncached, &squeezed);
        // A 2-entry cache churns on a month's worth of client stacks.
        prop_assert!(stats.evictions > 0, "cap-2 cache never evicted: {:?}", stats);
        prop_assert!(stats.misses > stats.evictions, "{:?}", stats);
    }
}

#[test]
fn full_truncation_bypasses_the_cache() {
    // Every client flow is cut mid-record: nothing reaches the cache,
    // so its counters stay at zero — damaged input must never be
    // memoised or served from memo.
    let faults = FaultInjector {
        truncate_prob: 1.0,
        ..FaultInjector::none()
    };
    let flows = flows_for(1234, 2016, 4, 300, faults);
    let (agg, stats) = on_fresh_thread(|| {
        let agg = ingest_serial(flows);
        (agg, parse_cache_stats())
    });
    assert_eq!(
        stats,
        ParseCacheStats::default(),
        "damaged flows must bypass the cache"
    );
    assert!(agg.garbled_client > 0);
}
