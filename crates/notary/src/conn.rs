//! Per-connection record extraction: wire bytes → [`ConnectionRecord`].
//!
//! This is the Bro/Zeek-analogue layer of the reproduction: everything
//! it knows comes from parsing the tapped bytes. It never receives
//! generator ground truth.

use tlscope_chron::{Date, Month};
use tlscope_fingerprint::Fingerprint;
use tlscope_wire::codec::Reader;
use tlscope_wire::exts::ext_type;
use tlscope_wire::handshake::{handshake_type, read_handshake};
use tlscope_wire::record::{sslv2_kind_as_suite, ContentType, Record};
use tlscope_wire::{
    sniff, CipherSuite, ClientHello, NamedGroup, ProtocolVersion, ServerHello, Sslv2ClientHello,
    WireFlavor,
};

/// What the client side of a connection offered.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientOffer {
    /// Legacy version field.
    pub legacy_version: ProtocolVersion,
    /// Offered suites (exact wire order, GREASE included).
    pub suites: Vec<CipherSuite>,
    /// Versions actually offered (supported_versions-aware).
    pub versions: Vec<ProtocolVersion>,
    /// Raw supported_versions values (for the draft-mix analysis,
    /// §6.4); empty when the extension is absent.
    pub supported_versions_raw: Vec<u16>,
    /// Whether the heartbeat extension was offered.
    pub heartbeat: bool,
    /// All advertised extension type codes (GREASE stripped).
    pub extension_types: Vec<u16>,
    /// The 4-feature fingerprint (GREASE-stripped).
    pub fingerprint: Fingerprint,
}

impl ClientOffer {
    /// True if any offered suite satisfies `pred` (signalling values
    /// excluded by the classifiers themselves).
    pub fn offers(&self, pred: impl Fn(CipherSuite) -> bool) -> bool {
        self.suites.iter().any(|c| pred(*c))
    }

    /// Relative position (0.0 = head) of the first offered suite
    /// satisfying `pred`, ignoring GREASE/SCSV entries (Figure 5).
    pub fn first_position(&self, pred: impl Fn(CipherSuite) -> bool) -> Option<f64> {
        let real: Vec<CipherSuite> = self
            .suites
            .iter()
            .copied()
            .filter(|c| !tlscope_wire::is_grease(c.0) && !c.is_signaling())
            .collect();
        if real.is_empty() {
            return None;
        }
        real.iter()
            .position(|c| pred(*c))
            .map(|i| i as f64 / real.len() as f64)
    }
}

/// What the server answered.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerAnswer {
    /// Negotiated protocol version (supported_versions-aware).
    pub version: ProtocolVersion,
    /// Selected cipher suite.
    pub cipher: CipherSuite,
    /// Negotiated curve, from ServerKeyExchange or TLS 1.3 key_share.
    pub curve: Option<NamedGroup>,
    /// True when the server echoed the heartbeat extension.
    pub heartbeat: bool,
}

/// The outcome of the server side of the flow.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerOutcome {
    /// Handshake proceeded: ServerHello seen.
    Answered(ServerAnswer),
    /// Server rejected with an alert (description code when parseable).
    Rejected,
    /// Tap did not capture the server flow.
    Missing,
    /// Server bytes present but unparseable (tap damage).
    Garbled,
}

/// A fully-extracted connection record.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectionRecord {
    /// Capture date.
    pub date: Date,
    /// Capture month bucket.
    pub month: Month,
    /// Destination port.
    pub port: u16,
    /// True for SSLv2-framed connections (client side).
    pub sslv2: bool,
    /// Client offer, if the client flow parsed.
    pub client: Option<ClientOffer>,
    /// Server outcome.
    pub server: ServerOutcome,
    /// True when tap damage forced prefix salvage: the flow's record
    /// stream was unparseable end-to-end (truncated or gapped
    /// mid-stream) but the intact record prefix still yielded the
    /// handshake, so the connection was recovered instead of
    /// discarded (§3.1 best-effort collection).
    pub salvaged: bool,
}

/// Errors recording why a flow could not be processed at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtractError {
    /// Client flow empty or not SSL/TLS at all.
    NotTls,
    /// Client flow recognisably TLS but damaged beyond parsing.
    GarbledClient,
}

/// Extract a connection record from tapped flows.
pub fn extract(
    date: Date,
    port: u16,
    client_flow: &[u8],
    server_flow: Option<&[u8]>,
) -> Result<ConnectionRecord, ExtractError> {
    match sniff(client_flow) {
        WireFlavor::Sslv2 => {
            let hello =
                Sslv2ClientHello::parse(client_flow).map_err(|_| ExtractError::GarbledClient)?;
            let suites: Vec<CipherSuite> = hello
                .cipher_specs
                .iter()
                .filter_map(|k| sslv2_kind_as_suite(*k))
                .collect();
            let offer = ClientOffer {
                legacy_version: ProtocolVersion::Ssl2,
                versions: vec![ProtocolVersion::Ssl2],
                supported_versions_raw: vec![],
                heartbeat: false,
                extension_types: vec![],
                fingerprint: Fingerprint {
                    ciphers: suites.iter().map(|c| c.0).collect(),
                    extensions: vec![],
                    curves: vec![],
                    point_formats: vec![],
                },
                suites,
            };
            Ok(ConnectionRecord {
                date,
                month: date.month(),
                port,
                sslv2: true,
                client: Some(offer),
                server: ServerOutcome::Missing,
                salvaged: false,
            })
        }
        WireFlavor::Tls => {
            let (hello, client_salvaged) =
                parse_client_hello(client_flow).ok_or(ExtractError::GarbledClient)?;
            let offer = client_offer(&hello);
            let (server, server_salvaged) = match server_flow {
                None => (ServerOutcome::Missing, false),
                Some(bytes) => parse_server_flow(bytes, &hello),
            };
            Ok(ConnectionRecord {
                date,
                month: date.month(),
                port,
                sslv2: false,
                client: Some(offer),
                server,
                salvaged: client_salvaged || server_salvaged,
            })
        }
        WireFlavor::Other => Err(ExtractError::NotTls),
    }
}

/// Read the record stream; if strict end-to-end parsing fails, fall
/// back to the longest intact record *prefix* (the salvage path for
/// flows truncated or gapped by tap damage). Returns the records and
/// whether salvage was needed.
fn read_records_salvage(flow: &[u8]) -> (Vec<Record>, bool) {
    if let Ok(records) = Record::read_all(flow) {
        return (records, false);
    }
    let mut r = Reader::new(flow);
    let mut records = Vec::new();
    while let Ok(rec) = Record::read(&mut r) {
        records.push(rec);
    }
    (records, true)
}

fn parse_client_hello(flow: &[u8]) -> Option<(ClientHello, bool)> {
    let (records, salvaged) = read_records_salvage(flow);
    let handshake = Record::coalesce_handshake(&records).ok()?;
    let hello = ClientHello::parse_handshake(&handshake).ok()?;
    Some((hello, salvaged))
}

fn client_offer(hello: &ClientHello) -> ClientOffer {
    let supported_versions_raw = hello
        .find_extension(ext_type::SUPPORTED_VERSIONS)
        .and_then(|e| e.parse_supported_versions().ok())
        .map(|vs| {
            vs.iter()
                .map(|v| v.to_wire())
                .filter(|w| !tlscope_wire::is_grease(*w))
                .collect()
        })
        .unwrap_or_default();
    ClientOffer {
        legacy_version: hello.legacy_version,
        suites: hello.cipher_suites.clone(),
        versions: hello.offered_versions(),
        supported_versions_raw,
        heartbeat: hello.find_extension(ext_type::HEARTBEAT).is_some(),
        extension_types: hello
            .extensions()
            .iter()
            .map(|e| e.typ)
            .filter(|t| !tlscope_wire::is_grease(*t))
            .collect(),
        fingerprint: Fingerprint::from_client_hello(hello),
    }
}

fn parse_server_flow(bytes: &[u8], client: &ClientHello) -> (ServerOutcome, bool) {
    let (records, salvaged) = read_records_salvage(bytes);
    if records.is_empty() {
        return (ServerOutcome::Garbled, false);
    }
    if records[0].content_type == ContentType::Alert {
        // Classify the alert when possible; damaged alerts still count
        // as rejections.
        let _ = tlscope_wire::Alert::parse(&records[0].payload);
        return (ServerOutcome::Rejected, salvaged);
    }
    let Ok(handshake) = Record::coalesce_handshake(&records) else {
        return (ServerOutcome::Garbled, false);
    };
    let mut r = Reader::new(&handshake);
    let mut server_hello: Option<ServerHello> = None;
    let mut ske_curve: Option<NamedGroup> = None;
    while !r.is_empty() {
        let Ok((typ, body)) = read_handshake(&mut r) else {
            break;
        };
        match typ {
            handshake_type::SERVER_HELLO => {
                server_hello = ServerHello::parse_body(body).ok();
            }
            handshake_type::SERVER_KEY_EXCHANGE => {
                ske_curve = tlscope_wire::ske::parse_ske_curve(body).ok();
            }
            _ => {}
        }
    }
    let Some(sh) = server_hello else {
        return (ServerOutcome::Garbled, false);
    };
    let version = sh.negotiated_version();
    let key_share_curve = sh
        .find_extension(ext_type::KEY_SHARE)
        .or_else(|| sh.find_extension(ext_type::KEY_SHARE_DRAFT))
        .and_then(|e| e.parse_key_share_server().ok());
    let heartbeat = client.find_extension(ext_type::HEARTBEAT).is_some()
        && sh.find_extension(ext_type::HEARTBEAT).is_some();
    (
        ServerOutcome::Answered(ServerAnswer {
            version,
            cipher: sh.cipher_suite,
            curve: ske_curve.or(key_share_curve),
            heartbeat,
        }),
        salvaged,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlscope_wire::Extension;

    fn client_bytes(hello: &ClientHello) -> Vec<u8> {
        Record::wrap_handshake(ProtocolVersion::Tls10, &hello.to_handshake_bytes())
            .iter()
            .flat_map(|r| r.to_bytes())
            .collect()
    }

    fn sample_hello() -> ClientHello {
        ClientHello {
            legacy_version: ProtocolVersion::Tls12,
            random: [3; 32],
            session_id: vec![],
            cipher_suites: vec![
                CipherSuite(0xc02f),
                CipherSuite(0xc013),
                CipherSuite(0x0005),
                CipherSuite(0x000a),
                CipherSuite(0x00ff),
            ],
            compression_methods: vec![0],
            extensions: Some(vec![
                Extension::server_name("x.test"),
                Extension::heartbeat(1),
                Extension::supported_groups(&[NamedGroup::X25519, NamedGroup::SECP256R1]),
                Extension::ec_point_formats(&[0]),
            ]),
        }
    }

    fn server_bytes(sh: &ServerHello, curve: Option<NamedGroup>) -> Vec<u8> {
        let mut hs = sh.to_handshake_bytes();
        if let Some(c) = curve {
            hs.extend_from_slice(&tlscope_wire::ske::ecdhe_ske(c, 65));
        }
        Record::wrap_handshake(ProtocolVersion::Tls12, &hs)
            .iter()
            .flat_map(|r| r.to_bytes())
            .collect()
    }

    #[test]
    fn extract_full_connection() {
        let hello = sample_hello();
        let sh = ServerHello {
            legacy_version: ProtocolVersion::Tls12,
            random: [5; 32],
            session_id: vec![],
            cipher_suite: CipherSuite(0xc02f),
            compression_method: 0,
            extensions: Some(vec![Extension::heartbeat(1)]),
        };
        let rec = extract(
            Date::ymd(2015, 6, 3),
            443,
            &client_bytes(&hello),
            Some(&server_bytes(&sh, Some(NamedGroup::X25519))),
        )
        .unwrap();
        assert!(!rec.sslv2);
        let client = rec.client.as_ref().unwrap();
        assert!(client.offers(|c| c.is_rc4()));
        assert!(client.offers(|c| c.is_aead()));
        assert!(client.heartbeat);
        match &rec.server {
            ServerOutcome::Answered(ans) => {
                assert_eq!(ans.version, ProtocolVersion::Tls12);
                assert!(ans.cipher.is_aead());
                assert_eq!(ans.curve, Some(NamedGroup::X25519));
                assert!(ans.heartbeat);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn positions_ignore_scsv() {
        let hello = sample_hello();
        let offer = client_offer(&hello);
        // 4 real suites: aead at 0, cbc at 1/4, rc4 at 2/4, 3des 3/4.
        assert_eq!(offer.first_position(|c| c.is_aead()), Some(0.0));
        assert_eq!(offer.first_position(|c| c.is_cbc()), Some(0.25));
        assert_eq!(offer.first_position(|c| c.is_rc4()), Some(0.5));
        assert_eq!(offer.first_position(|c| c.is_3des()), Some(0.75));
        assert_eq!(offer.first_position(|c| c.is_export()), None);
    }

    #[test]
    fn alert_is_rejected() {
        let hello = sample_hello();
        let alert = Record {
            content_type: ContentType::Alert,
            version: ProtocolVersion::Tls12,
            payload: vec![2, 40],
        }
        .to_bytes();
        let rec = extract(
            Date::ymd(2015, 6, 3),
            443,
            &client_bytes(&hello),
            Some(&alert),
        )
        .unwrap();
        assert_eq!(rec.server, ServerOutcome::Rejected);
    }

    #[test]
    fn missing_server_flow() {
        let hello = sample_hello();
        let rec = extract(Date::ymd(2015, 6, 3), 443, &client_bytes(&hello), None).unwrap();
        assert_eq!(rec.server, ServerOutcome::Missing);
    }

    #[test]
    fn garbled_flows() {
        let hello = sample_hello();
        let bytes = client_bytes(&hello);
        // Truncated client flow.
        assert_eq!(
            extract(Date::ymd(2015, 6, 3), 443, &bytes[..bytes.len() / 2], None),
            Err(ExtractError::GarbledClient)
        );
        // Non-TLS flow.
        assert_eq!(
            extract(Date::ymd(2015, 6, 3), 443, b"GET / HTTP/1.1", None),
            Err(ExtractError::NotTls)
        );
        // Garbled server flow.
        let rec = extract(Date::ymd(2015, 6, 3), 443, &bytes, Some(&[0xff, 0x00])).unwrap();
        assert_eq!(rec.server, ServerOutcome::Garbled);
    }

    #[test]
    fn server_half_prefix_salvage() {
        // A mid-stream gap severs a later record: strict end-to-end
        // parsing fails, but the intact prefix still holds the
        // ServerHello — the connection is salvaged, not discarded.
        let hello = sample_hello();
        let sh = ServerHello {
            legacy_version: ProtocolVersion::Tls12,
            random: [5; 32],
            session_id: vec![],
            cipher_suite: CipherSuite(0xc02f),
            compression_method: 0,
            extensions: Some(vec![]),
        };
        let mut bytes = server_bytes(&sh, Some(NamedGroup::X25519));
        bytes.extend_from_slice(&[0x16, 0x03, 0x03, 0xff]); // severed record header
        let rec = extract(
            Date::ymd(2015, 6, 3),
            443,
            &client_bytes(&hello),
            Some(&bytes),
        )
        .unwrap();
        assert!(rec.salvaged);
        match &rec.server {
            ServerOutcome::Answered(ans) => {
                assert_eq!(ans.cipher, CipherSuite(0xc02f));
                assert_eq!(ans.curve, Some(NamedGroup::X25519));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn client_half_prefix_salvage() {
        let hello = sample_hello();
        let mut bytes = client_bytes(&hello);
        bytes.extend_from_slice(&[0x16, 0x03, 0x01, 0x00]); // severed record header
        let rec = extract(Date::ymd(2015, 6, 3), 443, &bytes, None).unwrap();
        assert!(rec.salvaged);
        let offer = rec.client.unwrap();
        assert!(offer.offers(|c| c.is_aead()));
    }

    #[test]
    fn undamaged_flows_are_not_salvaged() {
        let hello = sample_hello();
        let rec = extract(Date::ymd(2015, 6, 3), 443, &client_bytes(&hello), None).unwrap();
        assert!(!rec.salvaged);
    }

    #[test]
    fn sslv2_extraction() {
        let v2 = Sslv2ClientHello {
            version: ProtocolVersion::Ssl2,
            cipher_specs: vec![tlscope_wire::record::sslv2_cipher::RC4_128_WITH_MD5],
            session_id: vec![],
            challenge: vec![1; 16],
        };
        let rec = extract(Date::ymd(2018, 2, 10), 5666, &v2.to_bytes(), None).unwrap();
        assert!(rec.sslv2);
        let offer = rec.client.unwrap();
        assert_eq!(offer.legacy_version, ProtocolVersion::Ssl2);
        assert!(offer.offers(|c| c.is_rc4()));
    }

    #[test]
    fn tls13_answer_extraction() {
        let hello = sample_hello();
        let sh = ServerHello {
            legacy_version: ProtocolVersion::Tls12,
            random: [5; 32],
            session_id: vec![],
            cipher_suite: CipherSuite(0x1301),
            compression_method: 0,
            extensions: Some(vec![
                Extension::selected_version(ProtocolVersion::Tls13Experiment(2)),
                Extension::key_share_server(NamedGroup::X25519),
            ]),
        };
        let rec = extract(
            Date::ymd(2018, 4, 2),
            443,
            &client_bytes(&hello),
            Some(&server_bytes(&sh, None)),
        )
        .unwrap();
        match rec.server {
            ServerOutcome::Answered(ans) => {
                assert_eq!(ans.version, ProtocolVersion::Tls13Experiment(2));
                assert!(ans.cipher.is_tls13());
                assert_eq!(ans.curve, Some(NamedGroup::X25519));
            }
            other => panic!("{other:?}"),
        }
    }
}
