//! Per-connection record extraction: wire bytes → [`ConnectionRecord`].
//!
//! This is the Bro/Zeek-analogue layer of the reproduction: everything
//! it knows comes from parsing the tapped bytes. It never receives
//! generator ground truth.
//!
//! Extraction is zero-copy: records are walked as [`RecordView`]s
//! borrowed straight from the flow, and the handshake is only ever
//! copied when it actually spans multiple records — the common
//! single-record case hands a borrowed slice to the hello parsers.
//! The one coalesce buffer lives in [`ExtractScratch`] so a worker
//! ingesting millions of flows reuses the same allocation throughout.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::OnceLock;

use tlscope_chron::{Date, Month};
use tlscope_fingerprint::{Fingerprint, Fnv64};
use tlscope_wire::codec::Reader;
use tlscope_wire::exts::ext_type;
use tlscope_wire::handshake::{handshake_type, read_handshake};
use tlscope_wire::record::{sslv2_kind_as_suite, ContentType, RecordView};
use tlscope_wire::view::{ext_view, ClientHelloView, ServerHelloView};
use tlscope_wire::{sniff, CipherSuite, NamedGroup, ProtocolVersion, Sslv2ClientHello, WireFlavor};

/// What the client side of a connection offered.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientOffer {
    /// Legacy version field.
    pub legacy_version: ProtocolVersion,
    /// Offered suites (exact wire order, GREASE included).
    pub suites: Vec<CipherSuite>,
    /// Versions actually offered (supported_versions-aware).
    pub versions: Vec<ProtocolVersion>,
    /// Raw supported_versions values (for the draft-mix analysis,
    /// §6.4); empty when the extension is absent.
    pub supported_versions_raw: Vec<u16>,
    /// Whether the heartbeat extension was offered.
    pub heartbeat: bool,
    /// All advertised extension type codes (GREASE stripped).
    pub extension_types: Vec<u16>,
    /// The 4-feature fingerprint (GREASE-stripped).
    pub fingerprint: Fingerprint,
    /// Memoised 64-bit fingerprint hash, populated by the parse cache
    /// so aggregation can intern without rehashing; `None` when the
    /// offer came from a non-cached parse (SSLv2, salvage, cache off).
    pub fp_id64: Option<u64>,
}

impl ClientOffer {
    /// True if any offered suite satisfies `pred` (signalling values
    /// excluded by the classifiers themselves).
    pub fn offers(&self, pred: impl Fn(CipherSuite) -> bool) -> bool {
        self.suites.iter().any(|c| pred(*c))
    }

    /// Relative position (0.0 = head) of the first offered suite
    /// satisfying `pred`, ignoring GREASE/SCSV entries (Figure 5).
    pub fn first_position(&self, pred: impl Fn(CipherSuite) -> bool) -> Option<f64> {
        let mut hit: Option<usize> = None;
        let mut real = 0usize;
        for c in self.suites.iter().copied() {
            if tlscope_wire::is_grease(c.0) || c.is_signaling() {
                continue;
            }
            if hit.is_none() && pred(c) {
                hit = Some(real);
            }
            real += 1;
        }
        if real == 0 {
            return None;
        }
        hit.map(|i| i as f64 / real as f64)
    }
}

/// What the server answered.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerAnswer {
    /// Negotiated protocol version (supported_versions-aware).
    pub version: ProtocolVersion,
    /// Selected cipher suite.
    pub cipher: CipherSuite,
    /// Negotiated curve, from ServerKeyExchange or TLS 1.3 key_share.
    pub curve: Option<NamedGroup>,
    /// True when the server echoed the heartbeat extension.
    pub heartbeat: bool,
}

/// The outcome of the server side of the flow.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerOutcome {
    /// Handshake proceeded: ServerHello seen.
    Answered(ServerAnswer),
    /// Server rejected with an alert. Carries the alert description
    /// code when the alert payload parsed; a damaged alert still
    /// counts as a rejection, just with no code.
    Rejected {
        /// Alert description code (RFC 5246 §7.2), if parseable.
        alert: Option<u8>,
    },
    /// Tap did not capture the server flow.
    Missing,
    /// Server bytes present but unparseable (tap damage).
    Garbled,
}

/// A fully-extracted connection record.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectionRecord {
    /// Capture date.
    pub date: Date,
    /// Capture month bucket.
    pub month: Month,
    /// Destination port.
    pub port: u16,
    /// True for SSLv2-framed connections (client side).
    pub sslv2: bool,
    /// Client offer, if the client flow parsed.
    pub client: Option<ClientOffer>,
    /// Server outcome.
    pub server: ServerOutcome,
    /// True when tap damage forced prefix salvage: the flow's record
    /// stream was unparseable end-to-end (truncated or gapped
    /// mid-stream) but the intact record prefix still yielded the
    /// handshake, so the connection was recovered instead of
    /// discarded (§3.1 best-effort collection).
    pub salvaged: bool,
}

/// Errors recording why a flow could not be processed at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtractError {
    /// Client flow empty or not SSL/TLS at all.
    NotTls,
    /// Client flow recognisably TLS but damaged beyond parsing.
    GarbledClient,
}

/// Reusable extraction state: one coalesce buffer plus one record
/// slot — offer vectors included — shared by every flow a worker
/// processes, so the steady state of [`extract_into`] performs no
/// allocation at all.
#[derive(Debug)]
pub struct ExtractScratch {
    coalesce: Vec<u8>,
    record: ConnectionRecord,
    cache: HelloCache,
}

impl Default for ExtractScratch {
    fn default() -> Self {
        ExtractScratch {
            coalesce: Vec::new(),
            cache: HelloCache::default(),
            record: ConnectionRecord {
                date: Date::ymd(2000, 1, 1),
                month: Date::ymd(2000, 1, 1).month(),
                port: 0,
                sslv2: false,
                client: None,
                server: ServerOutcome::Missing,
                salvaged: false,
            },
        }
    }
}

impl ExtractScratch {
    /// Fresh scratch with no buffer capacity yet.
    pub fn new() -> Self {
        ExtractScratch::default()
    }
}

/// An offer slot with every vector empty, ready for refilling.
fn empty_offer() -> ClientOffer {
    ClientOffer {
        legacy_version: ProtocolVersion::Ssl2,
        suites: Vec::new(),
        versions: Vec::new(),
        supported_versions_raw: Vec::new(),
        heartbeat: false,
        extension_types: Vec::new(),
        fingerprint: Fingerprint {
            ciphers: Vec::new(),
            extensions: Vec::new(),
            curves: Vec::new(),
            point_formats: Vec::new(),
        },
        fp_id64: None,
    }
}

thread_local! {
    static SCRATCH: RefCell<ExtractScratch> = RefCell::new(ExtractScratch::new());
}

/// Run `f` with this thread's shared [`ExtractScratch`].
pub(crate) fn with_thread_scratch<R>(f: impl FnOnce(&mut ExtractScratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// Extract a connection record from tapped flows.
///
/// Convenience wrapper over [`extract_with`] using a thread-local
/// [`ExtractScratch`], so repeated calls on one thread reuse the
/// coalesce buffer.
pub fn extract(
    date: Date,
    port: u16,
    client_flow: &[u8],
    server_flow: Option<&[u8]>,
) -> Result<ConnectionRecord, ExtractError> {
    with_thread_scratch(|s| extract_with(date, port, client_flow, server_flow, s))
}

/// Extract a connection record from tapped flows, reusing `scratch`
/// across calls so the steady state performs no coalesce allocation.
///
/// Owned wrapper over [`extract_into`]; hot-path callers that only
/// need to *read* the record should use `extract_into` directly and
/// skip the clone.
pub fn extract_with(
    date: Date,
    port: u16,
    client_flow: &[u8],
    server_flow: Option<&[u8]>,
    scratch: &mut ExtractScratch,
) -> Result<ConnectionRecord, ExtractError> {
    extract_into(date, port, client_flow, server_flow, scratch).cloned()
}

/// Extract a connection record into `scratch`'s record slot and
/// return a borrow of it, valid until the next call on the same
/// scratch. Every vector in the record — suites, versions, extension
/// types, the fingerprint features — is refilled in place, so a
/// worker's steady state allocates nothing per flow. On `Err` the
/// slot's contents are unspecified.
pub fn extract_into<'s>(
    date: Date,
    port: u16,
    client_flow: &[u8],
    server_flow: Option<&[u8]>,
    scratch: &'s mut ExtractScratch,
) -> Result<&'s ConnectionRecord, ExtractError> {
    match sniff(client_flow) {
        WireFlavor::Sslv2 => {
            let hello =
                Sslv2ClientHello::parse(client_flow).map_err(|_| ExtractError::GarbledClient)?;
            let rec = &mut scratch.record;
            let offer = rec.client.get_or_insert_with(empty_offer);
            offer.legacy_version = ProtocolVersion::Ssl2;
            offer.suites.clear();
            offer.suites.extend(
                hello
                    .cipher_specs
                    .iter()
                    .filter_map(|k| sslv2_kind_as_suite(*k)),
            );
            offer.versions.clear();
            offer.versions.push(ProtocolVersion::Ssl2);
            offer.supported_versions_raw.clear();
            offer.heartbeat = false;
            offer.extension_types.clear();
            offer.fingerprint.ciphers.clear();
            offer
                .fingerprint
                .ciphers
                .extend(offer.suites.iter().map(|c| c.0));
            offer.fingerprint.extensions.clear();
            offer.fingerprint.curves.clear();
            offer.fingerprint.point_formats.clear();
            offer.fp_id64 = None;
            rec.date = date;
            rec.month = date.month();
            rec.port = port;
            rec.sslv2 = true;
            rec.server = ServerOutcome::Missing;
            rec.salvaged = false;
            Ok(rec)
        }
        WireFlavor::Tls => {
            let ExtractScratch {
                coalesce,
                record,
                cache,
            } = scratch;
            let offer = record.client.get_or_insert_with(empty_offer);
            let client_salvaged = refill_client_offer_cached(client_flow, coalesce, offer, cache)
                .ok_or(ExtractError::GarbledClient)?;
            let client_heartbeat = offer.heartbeat;
            let (server, server_salvaged) = match server_flow {
                None => (ServerOutcome::Missing, false),
                Some(bytes) => parse_server_flow(bytes, client_heartbeat, coalesce),
            };
            record.date = date;
            record.month = date.month();
            record.port = port;
            record.sslv2 = false;
            record.server = server;
            record.salvaged = client_salvaged || server_salvaged;
            Ok(record)
        }
        WireFlavor::Other => Err(ExtractError::NotTls),
    }
}

/// The result of streaming a record-layer flow into handshake bytes.
enum CoalesceOutcome<'a> {
    /// All parsed records were handshake; `bytes` is the concatenated
    /// handshake stream — borrowed from the flow when a single record
    /// held it, from the scratch buffer when it spanned records.
    Handshake { bytes: &'a [u8], salvaged: bool },
    /// The first record was an alert; `payload` is its fragment.
    FirstAlert { payload: &'a [u8], salvaged: bool },
    /// No record parsed at all (empty or immediately damaged flow).
    Empty,
    /// A parsed record was neither handshake nor leading alert.
    NonHandshake,
}

/// Walk the record stream once, coalescing handshake fragments.
///
/// Replaces the old parse-all-records-then-concatenate path: records
/// are borrowed views, and the intact record *prefix* is used when
/// strict end-to-end parsing fails (the §3.1 salvage path —
/// `salvaged` reports that fallback). A lone handshake record is
/// returned as a borrowed slice with no copy at all.
fn coalesce_stream<'a>(flow: &'a [u8], scratch: &'a mut Vec<u8>) -> CoalesceOutcome<'a> {
    let mut r = Reader::new(flow);
    if r.is_empty() {
        return CoalesceOutcome::Empty;
    }
    let Ok(first) = RecordView::read(&mut r) else {
        return CoalesceOutcome::Empty;
    };
    if first.content_type == ContentType::Alert {
        // Keep scanning: damage *after* the alert still marks the
        // flow as salvaged, exactly as the whole-flow parse did.
        let mut salvaged = false;
        while !r.is_empty() {
            if RecordView::read(&mut r).is_err() {
                salvaged = true;
                break;
            }
        }
        return CoalesceOutcome::FirstAlert {
            payload: first.payload,
            salvaged,
        };
    }
    if first.content_type != ContentType::Handshake {
        return CoalesceOutcome::NonHandshake;
    }
    let mut salvaged = false;
    let mut single = Some(first.payload);
    scratch.clear();
    while !r.is_empty() {
        match RecordView::read(&mut r) {
            Err(_) => {
                salvaged = true;
                break;
            }
            Ok(rec) if rec.content_type != ContentType::Handshake => {
                return CoalesceOutcome::NonHandshake;
            }
            Ok(rec) => {
                if let Some(first_payload) = single.take() {
                    scratch.extend_from_slice(first_payload);
                }
                scratch.extend_from_slice(rec.payload);
            }
        }
    }
    let bytes = match single {
        Some(payload) => payload,
        None => scratch.as_slice(),
    };
    CoalesceOutcome::Handshake { bytes, salvaged }
}

#[cfg(test)]
fn parse_client_offer(flow: &[u8], scratch: &mut Vec<u8>) -> Option<(ClientOffer, bool)> {
    let mut offer = empty_offer();
    let salvaged = refill_client_offer(flow, scratch, &mut offer)?;
    Some((offer, salvaged))
}

/// Coalesce and parse a client flow, refilling `offer`'s vectors in
/// place. Returns the salvage flag, or `None` when the flow is
/// garbled (leaving `offer` in an unspecified state). The production
/// path is [`refill_client_offer_cached`]; this uncached twin backs
/// tests that need a guaranteed-fresh parse.
#[cfg(test)]
fn refill_client_offer(
    flow: &[u8],
    scratch: &mut Vec<u8>,
    offer: &mut ClientOffer,
) -> Option<bool> {
    let CoalesceOutcome::Handshake { bytes, salvaged } = coalesce_stream(flow, scratch) else {
        return None;
    };
    let hello = ClientHelloView::parse_handshake(bytes).ok()?;
    refill_offer(offer, &hello);
    Some(salvaged)
}

/// Default per-thread parse-cache capacity, in memoised hellos.
const PARSE_CACHE_DEFAULT_CAPACITY: usize = 4096;

/// Canonical stand-in absorbed for every GREASE-patterned u16 while
/// hashing, so two hellos differing only in their per-connection
/// GREASE draws collide onto the same cache key.
const GREASE_MARK: [u8; 2] = [0x0a, 0x0a];

/// Cumulative parse-cache counters for one ingestion thread.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ParseCacheStats {
    /// Hellos served from the cache without a full parse.
    pub hits: u64,
    /// Hellos that were fully parsed and then memoised.
    pub misses: u64,
    /// Entries dropped to keep the cache within capacity.
    pub evictions: u64,
}

/// A memoised parse result: the handshake length guards against the
/// (astronomically unlikely) masked-hash collision between hellos of
/// different lengths.
#[derive(Debug)]
struct HelloEntry {
    hs_len: usize,
    offer: ClientOffer,
}

/// Bounded FIFO memo of parsed ClientHellos, keyed by a masked
/// content hash of the coalesced handshake. Offsets of volatile
/// fields (random, session id, GREASE slots) are derived from TLS
/// structure alone — this layer never sees generator metadata.
#[derive(Debug)]
struct HelloCache {
    map: HashMap<u64, HelloEntry>,
    order: VecDeque<u64>,
    capacity: usize,
    /// GREASE cipher-suite slots found by the *current* flow's masked
    /// scan, as (suite index, wire offset) — reused across flows.
    slots: Vec<(usize, usize)>,
    /// Scratch offer for verify-mode re-parses.
    verify_offer: Option<Box<ClientOffer>>,
    stats: ParseCacheStats,
    flushed: ParseCacheStats,
}

impl Default for HelloCache {
    fn default() -> Self {
        HelloCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity: PARSE_CACHE_DEFAULT_CAPACITY,
            slots: Vec::new(),
            verify_offer: None,
            stats: ParseCacheStats::default(),
            flushed: ParseCacheStats::default(),
        }
    }
}

/// True when `TLSCOPE_VERIFY_PARSE_CACHE=1`: every cache hit also
/// runs the full parse and asserts the memoised offer matches it
/// bit for bit.
fn verify_parse_cache() -> bool {
    static VERIFY: OnceLock<bool> = OnceLock::new();
    *VERIFY.get_or_init(|| std::env::var("TLSCOPE_VERIFY_PARSE_CACHE").is_ok_and(|v| v == "1"))
}

/// Set this thread's parse-cache capacity, clearing its contents and
/// counters. Capacity 0 disables memoisation entirely (every flow
/// takes the full-parse path and no counters move).
pub fn parse_cache_set_capacity(capacity: usize) {
    SCRATCH.with(|s| {
        let cache = &mut s.borrow_mut().cache;
        cache.capacity = capacity;
        cache.map.clear();
        cache.order.clear();
        cache.stats = ParseCacheStats::default();
        cache.flushed = ParseCacheStats::default();
    });
}

/// Cumulative parse-cache counters for the calling thread.
pub fn parse_cache_stats() -> ParseCacheStats {
    SCRATCH.with(|s| s.borrow().cache.stats)
}

/// Drain the calling thread's parse-cache counter deltas (since the
/// previous flush) into `metrics`, so per-thread caches roll up into
/// the shared pipeline counters without double counting.
pub fn flush_parse_cache_metrics(metrics: &crate::metrics::PipelineMetrics) {
    SCRATCH.with(|s| {
        let cache = &mut s.borrow_mut().cache;
        let hits = cache.stats.hits - cache.flushed.hits;
        let misses = cache.stats.misses - cache.flushed.misses;
        let evictions = cache.stats.evictions - cache.flushed.evictions;
        cache.flushed = cache.stats;
        if hits | misses | evictions != 0 {
            metrics.record_parse_cache(hits, misses, evictions);
        }
    });
}

/// Field-wise copy that reuses every destination vector's capacity.
/// (`derive(Clone)` provides no such `clone_from`; a plain assignment
/// would re-allocate all seven vectors per hit.)
fn copy_offer_from(dst: &mut ClientOffer, src: &ClientOffer) {
    dst.legacy_version = src.legacy_version;
    dst.suites.clone_from(&src.suites);
    dst.versions.clone_from(&src.versions);
    dst.supported_versions_raw
        .clone_from(&src.supported_versions_raw);
    dst.heartbeat = src.heartbeat;
    dst.extension_types.clone_from(&src.extension_types);
    dst.fingerprint.ciphers.clone_from(&src.fingerprint.ciphers);
    dst.fingerprint
        .extensions
        .clone_from(&src.fingerprint.extensions);
    dst.fingerprint.curves.clone_from(&src.fingerprint.curves);
    dst.fingerprint
        .point_formats
        .clone_from(&src.fingerprint.point_formats);
    dst.fp_id64 = src.fp_id64;
}

fn be16(b: &[u8], off: usize) -> u16 {
    u16::from_be_bytes([b[off], b[off + 1]])
}

/// Absorb an extension body holding a length-prefixed list of u16s,
/// masking GREASE entries. `prefix` is the length-prefix width (1 for
/// vec8, 2 for vec16). A body that fails strict validation is
/// absorbed raw — deterministic either way, so correctness holds; it
/// just forgoes GREASE collapsing for that hello.
fn absorb_masked_u16_list(h: &mut Fnv64, body: &[u8], prefix: usize) {
    let well_formed = body.len() >= prefix && {
        let list_len = if prefix == 1 {
            body[0] as usize
        } else {
            be16(body, 0) as usize
        };
        body.len() == prefix + list_len && list_len.is_multiple_of(2)
    };
    if !well_formed {
        h.absorb(body);
        return;
    }
    h.absorb(&body[..prefix]);
    let mut p = prefix;
    while p < body.len() {
        if tlscope_wire::is_grease(be16(body, p)) {
            h.absorb(&GREASE_MARK);
        } else {
            h.absorb(&body[p..p + 2]);
        }
        p += 2;
    }
}

/// Walk a coalesced ClientHello handshake, hashing every byte except
/// the structurally-known volatile fields: the 32-byte random and the
/// session-id contents are skipped (their lengths are still hashed),
/// and GREASE-patterned u16s in the cipher list, extension type ids,
/// supported_versions and supported_groups bodies are absorbed as the
/// canonical [`GREASE_MARK`]. GREASE cipher-suite positions are
/// recorded into `grease_suites` as (suite index, wire offset) so a
/// cache hit can patch the memoised offer with this flow's values.
///
/// Returns `None` on any structural anomaly — the caller falls back
/// to the full parse and the flow bypasses the cache.
fn masked_hello_scan(bytes: &[u8], grease_suites: &mut Vec<(usize, usize)>) -> Option<u64> {
    grease_suites.clear();
    let mut h = Fnv64::new();
    if bytes.len() < 4 || bytes[0] != handshake_type::CLIENT_HELLO {
        return None;
    }
    let body_len = u32::from_be_bytes([0, bytes[1], bytes[2], bytes[3]]) as usize;
    if bytes.len() != 4 + body_len {
        return None;
    }
    h.absorb(&bytes[..4]);
    let mut off = 4;
    // Legacy version, then the masked 32-byte random.
    if bytes.len() < off + 2 + 32 + 1 {
        return None;
    }
    h.absorb(&bytes[off..off + 2]);
    off += 2 + 32;
    // Session id: length hashed, contents masked.
    let sid_len = bytes[off] as usize;
    h.absorb(&bytes[off..=off]);
    off += 1;
    if bytes.len() < off + sid_len + 2 {
        return None;
    }
    off += sid_len;
    // Cipher suites: GREASE entries masked and their slots recorded.
    let suites_len = be16(bytes, off) as usize;
    h.absorb(&bytes[off..off + 2]);
    off += 2;
    if !suites_len.is_multiple_of(2) || bytes.len() < off + suites_len {
        return None;
    }
    for i in 0..suites_len / 2 {
        let p = off + 2 * i;
        if tlscope_wire::is_grease(be16(bytes, p)) {
            grease_suites.push((i, p));
            h.absorb(&GREASE_MARK);
        } else {
            h.absorb(&bytes[p..p + 2]);
        }
    }
    off += suites_len;
    // Compression methods, hashed verbatim.
    if bytes.len() < off + 1 {
        return None;
    }
    let comp_len = bytes[off] as usize;
    h.absorb(&bytes[off..=off]);
    off += 1;
    if bytes.len() < off + comp_len {
        return None;
    }
    h.absorb(&bytes[off..off + comp_len]);
    off += comp_len;
    if off == bytes.len() {
        return Some(h.finish());
    }
    // Extension block.
    if bytes.len() < off + 2 {
        return None;
    }
    let ext_total = be16(bytes, off) as usize;
    h.absorb(&bytes[off..off + 2]);
    off += 2;
    if bytes.len() != off + ext_total {
        return None;
    }
    let end = bytes.len();
    while off < end {
        if end - off < 4 {
            return None;
        }
        let typ = be16(bytes, off);
        if tlscope_wire::is_grease(typ) {
            h.absorb(&GREASE_MARK);
        } else {
            h.absorb(&bytes[off..off + 2]);
        }
        h.absorb(&bytes[off + 2..off + 4]);
        let ext_len = be16(bytes, off + 2) as usize;
        off += 4;
        if end - off < ext_len {
            return None;
        }
        let body = &bytes[off..off + ext_len];
        match typ {
            ext_type::SUPPORTED_VERSIONS => absorb_masked_u16_list(&mut h, body, 1),
            ext_type::SUPPORTED_GROUPS => absorb_masked_u16_list(&mut h, body, 2),
            _ => h.absorb(body),
        }
        off += ext_len;
    }
    Some(h.finish())
}

/// Cache-aware variant of [`refill_client_offer`]: flows whose masked
/// hash hits the memo skip the full parse entirely — the memoised
/// offer is copied in place and its GREASE suite slots re-patched
/// from this flow's wire bytes. Salvaged flows and structural
/// anomalies bypass the cache (no counters move).
fn refill_client_offer_cached(
    flow: &[u8],
    scratch: &mut Vec<u8>,
    offer: &mut ClientOffer,
    cache: &mut HelloCache,
) -> Option<bool> {
    let CoalesceOutcome::Handshake { bytes, salvaged } = coalesce_stream(flow, scratch) else {
        return None;
    };
    if salvaged || cache.capacity == 0 {
        let hello = ClientHelloView::parse_handshake(bytes).ok()?;
        refill_offer(offer, &hello);
        return Some(salvaged);
    }
    let Some(hash) = masked_hello_scan(bytes, &mut cache.slots) else {
        let hello = ClientHelloView::parse_handshake(bytes).ok()?;
        refill_offer(offer, &hello);
        return Some(salvaged);
    };
    let hit = match cache.map.get(&hash) {
        Some(entry) if entry.hs_len == bytes.len() => {
            copy_offer_from(offer, &entry.offer);
            true
        }
        _ => false,
    };
    if hit {
        cache.stats.hits += 1;
        // The memoised suites carry the *original* flow's GREASE
        // draws; overwrite them with this flow's wire values.
        for &(idx, wire_off) in &cache.slots {
            if idx < offer.suites.len() && wire_off + 2 <= bytes.len() {
                offer.suites[idx] = CipherSuite(be16(bytes, wire_off));
            }
        }
        if verify_parse_cache() {
            let hello = ClientHelloView::parse_handshake(bytes)
                .expect("parse-cache hit on an unparseable hello");
            let fresh = cache
                .verify_offer
                .get_or_insert_with(|| Box::new(empty_offer()));
            refill_offer(fresh, &hello);
            fresh.fp_id64 = Some(fresh.fingerprint.id64());
            assert_eq!(
                **fresh, *offer,
                "parse-cache hit diverged from the full parse"
            );
        }
        return Some(salvaged);
    }
    let hello = ClientHelloView::parse_handshake(bytes).ok()?;
    refill_offer(offer, &hello);
    offer.fp_id64 = Some(offer.fingerprint.id64());
    cache.stats.misses += 1;
    let entry = HelloEntry {
        hs_len: bytes.len(),
        offer: offer.clone(),
    };
    if cache.map.insert(hash, entry).is_none() {
        cache.order.push_back(hash);
        while cache.map.len() > cache.capacity {
            match cache.order.pop_front() {
                Some(old) => {
                    if cache.map.remove(&old).is_some() {
                        cache.stats.evictions += 1;
                    }
                }
                None => break,
            }
        }
    }
    Some(salvaged)
}

fn refill_offer(offer: &mut ClientOffer, hello: &ClientHelloView<'_>) {
    offer.legacy_version = hello.legacy_version;
    offer.suites.clear();
    offer.suites.extend(hello.cipher_suites());
    hello.offered_versions_into(&mut offer.versions);
    offer.supported_versions_raw.clear();
    if let Some(vs) = hello
        .find_extension(ext_type::SUPPORTED_VERSIONS)
        .and_then(|body| ext_view::supported_versions(body).ok())
    {
        offer
            .supported_versions_raw
            .extend(vs.filter(|w| !tlscope_wire::is_grease(*w)));
    }
    offer.heartbeat = hello.find_extension(ext_type::HEARTBEAT).is_some();
    offer.extension_types.clear();
    if let Some(exts) = &hello.extensions {
        offer.extension_types.extend(
            exts.iter()
                .map(|(typ, _)| typ)
                .filter(|t| !tlscope_wire::is_grease(*t)),
        );
    }
    offer.fingerprint.refill_from_view(hello);
    offer.fp_id64 = None;
}

fn parse_server_flow(
    bytes: &[u8],
    client_heartbeat: bool,
    scratch: &mut Vec<u8>,
) -> (ServerOutcome, bool) {
    let (handshake, salvaged) = match coalesce_stream(bytes, scratch) {
        CoalesceOutcome::Handshake { bytes, salvaged } => (bytes, salvaged),
        CoalesceOutcome::FirstAlert { payload, salvaged } => {
            let alert = tlscope_wire::Alert::parse(payload)
                .ok()
                .map(|a| a.description);
            return (ServerOutcome::Rejected { alert }, salvaged);
        }
        CoalesceOutcome::Empty | CoalesceOutcome::NonHandshake => {
            return (ServerOutcome::Garbled, false);
        }
    };
    let mut r = Reader::new(handshake);
    let mut server_hello: Option<ServerHelloView<'_>> = None;
    let mut ske_curve: Option<NamedGroup> = None;
    while !r.is_empty() {
        let Ok((typ, body)) = read_handshake(&mut r) else {
            break;
        };
        match typ {
            handshake_type::SERVER_HELLO => {
                server_hello = ServerHelloView::parse_body(body).ok();
            }
            handshake_type::SERVER_KEY_EXCHANGE => {
                ske_curve = tlscope_wire::ske::parse_ske_curve(body).ok();
            }
            _ => {}
        }
    }
    let Some(sh) = server_hello else {
        return (ServerOutcome::Garbled, false);
    };
    let version = sh.negotiated_version();
    let key_share_curve = sh
        .find_extension(ext_type::KEY_SHARE)
        .or_else(|| sh.find_extension(ext_type::KEY_SHARE_DRAFT))
        .and_then(|body| ext_view::key_share_server(body).ok());
    let heartbeat = client_heartbeat && sh.find_extension(ext_type::HEARTBEAT).is_some();
    (
        ServerOutcome::Answered(ServerAnswer {
            version,
            cipher: sh.cipher_suite,
            curve: ske_curve.or(key_share_curve),
            heartbeat,
        }),
        salvaged,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlscope_wire::record::Record;
    use tlscope_wire::{ClientHello, Extension, ServerHello};

    fn client_bytes(hello: &ClientHello) -> Vec<u8> {
        Record::wrap_handshake(ProtocolVersion::Tls10, &hello.to_handshake_bytes())
            .iter()
            .flat_map(|r| r.to_bytes())
            .collect()
    }

    fn sample_hello() -> ClientHello {
        ClientHello {
            legacy_version: ProtocolVersion::Tls12,
            random: [3; 32],
            session_id: vec![],
            cipher_suites: vec![
                CipherSuite(0xc02f),
                CipherSuite(0xc013),
                CipherSuite(0x0005),
                CipherSuite(0x000a),
                CipherSuite(0x00ff),
            ],
            compression_methods: vec![0],
            extensions: Some(vec![
                Extension::server_name("x.test"),
                Extension::heartbeat(1),
                Extension::supported_groups(&[NamedGroup::X25519, NamedGroup::SECP256R1]),
                Extension::ec_point_formats(&[0]),
            ]),
        }
    }

    fn server_bytes(sh: &ServerHello, curve: Option<NamedGroup>) -> Vec<u8> {
        let mut hs = sh.to_handshake_bytes();
        if let Some(c) = curve {
            hs.extend_from_slice(&tlscope_wire::ske::ecdhe_ske(c, 65));
        }
        Record::wrap_handshake(ProtocolVersion::Tls12, &hs)
            .iter()
            .flat_map(|r| r.to_bytes())
            .collect()
    }

    #[test]
    fn extract_full_connection() {
        let hello = sample_hello();
        let sh = ServerHello {
            legacy_version: ProtocolVersion::Tls12,
            random: [5; 32],
            session_id: vec![],
            cipher_suite: CipherSuite(0xc02f),
            compression_method: 0,
            extensions: Some(vec![Extension::heartbeat(1)]),
        };
        let rec = extract(
            Date::ymd(2015, 6, 3),
            443,
            &client_bytes(&hello),
            Some(&server_bytes(&sh, Some(NamedGroup::X25519))),
        )
        .unwrap();
        assert!(!rec.sslv2);
        let client = rec.client.as_ref().unwrap();
        assert!(client.offers(|c| c.is_rc4()));
        assert!(client.offers(|c| c.is_aead()));
        assert!(client.heartbeat);
        match &rec.server {
            ServerOutcome::Answered(ans) => {
                assert_eq!(ans.version, ProtocolVersion::Tls12);
                assert!(ans.cipher.is_aead());
                assert_eq!(ans.curve, Some(NamedGroup::X25519));
                assert!(ans.heartbeat);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn positions_ignore_scsv() {
        let hello = sample_hello();
        let mut scratch = Vec::new();
        let (offer, salvaged) = parse_client_offer(&client_bytes(&hello), &mut scratch).unwrap();
        assert!(!salvaged);
        // 4 real suites: aead at 0, cbc at 1/4, rc4 at 2/4, 3des 3/4.
        assert_eq!(offer.first_position(|c| c.is_aead()), Some(0.0));
        assert_eq!(offer.first_position(|c| c.is_cbc()), Some(0.25));
        assert_eq!(offer.first_position(|c| c.is_rc4()), Some(0.5));
        assert_eq!(offer.first_position(|c| c.is_3des()), Some(0.75));
        assert_eq!(offer.first_position(|c| c.is_export()), None);
    }

    #[test]
    fn alert_is_rejected_with_description() {
        let hello = sample_hello();
        let alert = Record {
            content_type: ContentType::Alert,
            version: ProtocolVersion::Tls12,
            payload: vec![2, 40],
        }
        .to_bytes();
        let rec = extract(
            Date::ymd(2015, 6, 3),
            443,
            &client_bytes(&hello),
            Some(&alert),
        )
        .unwrap();
        assert_eq!(rec.server, ServerOutcome::Rejected { alert: Some(40) });
    }

    #[test]
    fn damaged_alert_still_rejects() {
        // A one-byte alert fragment cannot carry a description, but the
        // rejection itself is unambiguous.
        let hello = sample_hello();
        let alert = Record {
            content_type: ContentType::Alert,
            version: ProtocolVersion::Tls12,
            payload: vec![2],
        }
        .to_bytes();
        let rec = extract(
            Date::ymd(2015, 6, 3),
            443,
            &client_bytes(&hello),
            Some(&alert),
        )
        .unwrap();
        assert_eq!(rec.server, ServerOutcome::Rejected { alert: None });
        assert!(!rec.salvaged);
    }

    #[test]
    fn alert_followed_by_damage_is_salvaged() {
        let hello = sample_hello();
        let mut alert = Record {
            content_type: ContentType::Alert,
            version: ProtocolVersion::Tls12,
            payload: vec![2, 40],
        }
        .to_bytes();
        alert.extend_from_slice(&[0x16, 0x03, 0x03, 0xff]); // severed record header
        let rec = extract(
            Date::ymd(2015, 6, 3),
            443,
            &client_bytes(&hello),
            Some(&alert),
        )
        .unwrap();
        assert_eq!(rec.server, ServerOutcome::Rejected { alert: Some(40) });
        assert!(rec.salvaged);
    }

    #[test]
    fn missing_server_flow() {
        let hello = sample_hello();
        let rec = extract(Date::ymd(2015, 6, 3), 443, &client_bytes(&hello), None).unwrap();
        assert_eq!(rec.server, ServerOutcome::Missing);
    }

    #[test]
    fn garbled_flows() {
        let hello = sample_hello();
        let bytes = client_bytes(&hello);
        // Truncated client flow.
        assert_eq!(
            extract(Date::ymd(2015, 6, 3), 443, &bytes[..bytes.len() / 2], None),
            Err(ExtractError::GarbledClient)
        );
        // Non-TLS flow.
        assert_eq!(
            extract(Date::ymd(2015, 6, 3), 443, b"GET / HTTP/1.1", None),
            Err(ExtractError::NotTls)
        );
        // Garbled server flow.
        let rec = extract(Date::ymd(2015, 6, 3), 443, &bytes, Some(&[0xff, 0x00])).unwrap();
        assert_eq!(rec.server, ServerOutcome::Garbled);
    }

    #[test]
    fn server_half_prefix_salvage() {
        // A mid-stream gap severs a later record: strict end-to-end
        // parsing fails, but the intact prefix still holds the
        // ServerHello — the connection is salvaged, not discarded.
        let hello = sample_hello();
        let sh = ServerHello {
            legacy_version: ProtocolVersion::Tls12,
            random: [5; 32],
            session_id: vec![],
            cipher_suite: CipherSuite(0xc02f),
            compression_method: 0,
            extensions: Some(vec![]),
        };
        let mut bytes = server_bytes(&sh, Some(NamedGroup::X25519));
        bytes.extend_from_slice(&[0x16, 0x03, 0x03, 0xff]); // severed record header
        let rec = extract(
            Date::ymd(2015, 6, 3),
            443,
            &client_bytes(&hello),
            Some(&bytes),
        )
        .unwrap();
        assert!(rec.salvaged);
        match &rec.server {
            ServerOutcome::Answered(ans) => {
                assert_eq!(ans.cipher, CipherSuite(0xc02f));
                assert_eq!(ans.curve, Some(NamedGroup::X25519));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn client_half_prefix_salvage() {
        let hello = sample_hello();
        let mut bytes = client_bytes(&hello);
        bytes.extend_from_slice(&[0x16, 0x03, 0x01, 0x00]); // severed record header
        let rec = extract(Date::ymd(2015, 6, 3), 443, &bytes, None).unwrap();
        assert!(rec.salvaged);
        let offer = rec.client.unwrap();
        assert!(offer.offers(|c| c.is_aead()));
    }

    #[test]
    fn undamaged_flows_are_not_salvaged() {
        let hello = sample_hello();
        let rec = extract(Date::ymd(2015, 6, 3), 443, &client_bytes(&hello), None).unwrap();
        assert!(!rec.salvaged);
    }

    #[test]
    fn multi_record_handshake_coalesces_via_scratch() {
        // Force the handshake across two records so the scratch-buffer
        // branch (not the borrowed single-record fast path) runs.
        let hello = sample_hello();
        let hs = hello.to_handshake_bytes();
        let split = hs.len() / 2;
        let mut bytes = Vec::new();
        for chunk in [&hs[..split], &hs[split..]] {
            Record {
                content_type: ContentType::Handshake,
                version: ProtocolVersion::Tls10,
                payload: chunk.to_vec(),
            }
            .view()
            .write_into(&mut bytes);
        }
        let mut scratch = ExtractScratch::new();
        let rec = extract_with(Date::ymd(2015, 6, 3), 443, &bytes, None, &mut scratch).unwrap();
        assert!(!rec.salvaged);
        let offer = rec.client.unwrap();
        assert_eq!(offer.suites.len(), 5);
        assert!(offer.heartbeat);
        // Scratch kept its buffer for the next flow.
        assert!(scratch.coalesce.capacity() >= hs.len());
    }

    #[test]
    fn masked_scan_collapses_volatile_fields() {
        let mut hello = sample_hello();
        let mut slots = Vec::new();
        let h1 = masked_hello_scan(&hello.to_handshake_bytes(), &mut slots).unwrap();
        assert!(slots.is_empty());
        // Different client random: same key.
        hello.random = [9; 32];
        let h2 = masked_hello_scan(&hello.to_handshake_bytes(), &mut slots).unwrap();
        assert_eq!(h1, h2);
        // Different cipher stack: different key.
        hello.cipher_suites.push(CipherSuite(0x1301));
        let h3 = masked_hello_scan(&hello.to_handshake_bytes(), &mut slots).unwrap();
        assert_ne!(h1, h3);
        // Session-id *contents* are masked but the length is hashed.
        hello.cipher_suites.pop();
        hello.session_id = vec![1; 32];
        let h4 = masked_hello_scan(&hello.to_handshake_bytes(), &mut slots).unwrap();
        assert_ne!(h1, h4);
        hello.session_id = vec![2; 32];
        let h5 = masked_hello_scan(&hello.to_handshake_bytes(), &mut slots).unwrap();
        assert_eq!(h4, h5);
    }

    #[test]
    fn masked_scan_collapses_grease_and_records_slots() {
        let mut hello = sample_hello();
        hello.cipher_suites.insert(0, CipherSuite(0x2a2a));
        let mut slots = Vec::new();
        let h1 = masked_hello_scan(&hello.to_handshake_bytes(), &mut slots).unwrap();
        assert_eq!(slots.len(), 1);
        assert_eq!(slots[0].0, 0);
        // A different GREASE draw in the same slot: same key, and the
        // recorded wire offset reads back the new value.
        hello.cipher_suites[0] = CipherSuite(0xfafa);
        let hs = hello.to_handshake_bytes();
        let h2 = masked_hello_scan(&hs, &mut slots).unwrap();
        assert_eq!(h1, h2);
        let (_, off) = slots[0];
        assert_eq!(u16::from_be_bytes([hs[off], hs[off + 1]]), 0xfafa);
    }

    #[test]
    fn parse_cache_hit_matches_full_parse() {
        // Each #[test] runs on its own thread, so this capacity only
        // affects this test's thread-local cache.
        parse_cache_set_capacity(64);
        let mut hello = sample_hello();
        hello.cipher_suites.insert(0, CipherSuite(0x0a0a));
        let first = extract(Date::ymd(2016, 3, 1), 443, &client_bytes(&hello), None)
            .unwrap()
            .client
            .unwrap();
        hello.random = [7; 32];
        hello.cipher_suites[0] = CipherSuite(0x5a5a);
        let second = extract(Date::ymd(2016, 3, 1), 443, &client_bytes(&hello), None)
            .unwrap()
            .client
            .unwrap();
        let stats = parse_cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // The memoised id64 matches what a fresh hash would produce.
        assert_eq!(second.fp_id64, Some(second.fingerprint.id64()));
        // GREASE-stripped features identical; raw suites carry each
        // flow's own GREASE draw.
        assert_eq!(first.fingerprint, second.fingerprint);
        assert_eq!(first.suites[0], CipherSuite(0x0a0a));
        assert_eq!(second.suites[0], CipherSuite(0x5a5a));
        assert_eq!(&first.suites[1..], &second.suites[1..]);
    }

    #[test]
    fn salvaged_flows_bypass_the_cache() {
        parse_cache_set_capacity(64);
        let hello = sample_hello();
        let mut bytes = client_bytes(&hello);
        bytes.extend_from_slice(&[0x16, 0x03, 0x01, 0x00]); // severed record header
        for _ in 0..2 {
            let rec = extract(Date::ymd(2016, 3, 1), 443, &bytes, None).unwrap();
            assert!(rec.salvaged);
            assert_eq!(rec.client.unwrap().fp_id64, None);
        }
        assert_eq!(parse_cache_stats(), ParseCacheStats::default());
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        parse_cache_set_capacity(0);
        let hello = sample_hello();
        for _ in 0..2 {
            extract(Date::ymd(2016, 3, 1), 443, &client_bytes(&hello), None).unwrap();
        }
        assert_eq!(parse_cache_stats(), ParseCacheStats::default());
    }

    #[test]
    fn fifo_eviction_counts_and_bounds() {
        parse_cache_set_capacity(2);
        let mut hello = sample_hello();
        for n in 0..3u16 {
            hello.cipher_suites[0] = CipherSuite(0xc02f - n);
            extract(Date::ymd(2016, 3, 1), 443, &client_bytes(&hello), None).unwrap();
        }
        let stats = parse_cache_stats();
        assert_eq!((stats.misses, stats.evictions), (3, 1));
        // The oldest stack was evicted: replaying it misses again.
        hello.cipher_suites[0] = CipherSuite(0xc02f);
        extract(Date::ymd(2016, 3, 1), 443, &client_bytes(&hello), None).unwrap();
        assert_eq!(parse_cache_stats().misses, 4);
    }

    #[test]
    fn sslv2_extraction() {
        let v2 = Sslv2ClientHello {
            version: ProtocolVersion::Ssl2,
            cipher_specs: vec![tlscope_wire::record::sslv2_cipher::RC4_128_WITH_MD5],
            session_id: vec![],
            challenge: [1; 16],
        };
        let rec = extract(Date::ymd(2018, 2, 10), 5666, &v2.to_bytes(), None).unwrap();
        assert!(rec.sslv2);
        let offer = rec.client.unwrap();
        assert_eq!(offer.legacy_version, ProtocolVersion::Ssl2);
        assert!(offer.offers(|c| c.is_rc4()));
    }

    #[test]
    fn tls13_answer_extraction() {
        let hello = sample_hello();
        let sh = ServerHello {
            legacy_version: ProtocolVersion::Tls12,
            random: [5; 32],
            session_id: vec![],
            cipher_suite: CipherSuite(0x1301),
            compression_method: 0,
            extensions: Some(vec![
                Extension::selected_version(ProtocolVersion::Tls13Experiment(2)),
                Extension::key_share_server(NamedGroup::X25519),
            ]),
        };
        let rec = extract(
            Date::ymd(2018, 4, 2),
            443,
            &client_bytes(&hello),
            Some(&server_bytes(&sh, None)),
        )
        .unwrap();
        match rec.server {
            ServerOutcome::Answered(ans) => {
                assert_eq!(ans.version, ProtocolVersion::Tls13Experiment(2));
                assert!(ans.cipher.is_tls13());
                assert_eq!(ans.curve, Some(NamedGroup::X25519));
            }
            other => panic!("{other:?}"),
        }
    }
}
