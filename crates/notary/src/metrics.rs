//! Pipeline accounting: lock-free per-stage counters and wall-clock.
//!
//! The paper's Notary processed 319.3 B connections on a cluster whose
//! health was only observable through per-stage accounting (what was
//! parsed, what was dropped, where time went). [`PipelineMetrics`] is
//! that layer for the reproduction: a bag of atomic counters shared by
//! every stage of the generation → extraction → aggregation pipeline.
//! All methods take `&self`, so one instance can be threaded through
//! any number of worker threads without locks.
//!
//! Stage wall-clocks are *CPU-summed* across workers: with `N` workers
//! busy for a second each, a stage records `N` seconds. Divide by the
//! elapsed wall time to read out effective parallelism.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use tlscope_obs::{Histogram, HistogramSnapshot, JsonObj};

use crate::pool::PoolStats;

/// Shared, lock-free pipeline counters.
///
/// Counter groups:
/// * **generation** — flows and wire bytes emitted by the synthetic
///   tap, plus generator wall-clock, flows lost to tap outage windows,
///   and tap-duplicated flows;
/// * **ingestion** — flows/batches through the notary, parse failures
///   by class, records salvaged from damaged flows, plus extraction
///   wall-clock;
/// * **recovery** — batch retries, worker respawns, and quarantined
///   poison flows from the supervised pipeline;
/// * **merge / fault** — aggregate-merge wall-clock and shards lost to
///   worker panics (best-effort collection, paper §3.1).
#[derive(Debug, Default)]
pub struct PipelineMetrics {
    flows_generated: AtomicU64,
    bytes_generated: AtomicU64,
    gen_nanos: AtomicU64,
    flows_outage_dropped: AtomicU64,
    flows_duplicated: AtomicU64,

    flows_dispatched: AtomicU64,
    flows_ingested: AtomicU64,
    batches_ingested: AtomicU64,
    not_tls: AtomicU64,
    garbled_client: AtomicU64,
    flows_salvaged: AtomicU64,
    ingest_nanos: AtomicU64,

    batch_retries: AtomicU64,
    worker_respawns: AtomicU64,
    flows_quarantined: AtomicU64,

    merge_nanos: AtomicU64,
    shards_lost: AtomicU64,

    checkpoints_written: AtomicU64,
    checkpoints_loaded: AtomicU64,
    checkpoints_quarantined: AtomicU64,

    template_hits: AtomicU64,
    template_misses: AtomicU64,

    parse_cache_hits: AtomicU64,
    parse_cache_misses: AtomicU64,
    parse_cache_evictions: AtomicU64,

    pool_bufs_created: AtomicU64,
    pool_bufs_recycled: AtomicU64,
    pool_bufs_dropped: AtomicU64,
    pool_batches_created: AtomicU64,
    pool_batches_recycled: AtomicU64,
    pool_batches_dropped: AtomicU64,

    // Latency distributions (observational only: never part of
    // snapshot equality or any bit-identity property).
    month_hist: Histogram,
    ingest_batch_hist: Histogram,
    ckpt_write_hist: Histogram,
    ckpt_load_hist: Histogram,
}

impl PipelineMetrics {
    /// A zeroed metrics bag.
    pub fn new() -> Self {
        PipelineMetrics::default()
    }

    /// Record one generated flow of `bytes` wire bytes.
    pub fn record_generated(&self, bytes: u64, elapsed: Duration) {
        self.flows_generated.fetch_add(1, Ordering::Relaxed);
        self.bytes_generated.fetch_add(bytes, Ordering::Relaxed);
        self.gen_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Record `flows` handed to the ingestion stage (sent, not yet
    /// necessarily processed — the gap to `flows_ingested` is loss).
    pub fn record_dispatched(&self, flows: u64) {
        self.flows_dispatched.fetch_add(flows, Ordering::Relaxed);
    }

    /// Record one ingested batch of `flows` flows taking `elapsed`.
    pub fn record_batch(&self, flows: u64, elapsed: Duration) {
        self.flows_ingested.fetch_add(flows, Ordering::Relaxed);
        self.batches_ingested.fetch_add(1, Ordering::Relaxed);
        self.ingest_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.ingest_batch_hist.record(elapsed);
    }

    /// Record one completed month of passive generation + ingestion
    /// taking `elapsed` wall-clock.
    pub fn record_month(&self, elapsed: Duration) {
        self.month_hist.record(elapsed);
    }

    /// Record the wall-clock of one checkpoint file write.
    pub fn observe_checkpoint_write(&self, elapsed: Duration) {
        self.ckpt_write_hist.record(elapsed);
    }

    /// Record the wall-clock of one checkpoint directory load pass.
    pub fn observe_checkpoint_load(&self, elapsed: Duration) {
        self.ckpt_load_hist.record(elapsed);
    }

    /// Fold a [`PoolStats`] *delta* (after-minus-before of
    /// [`crate::FlowPool::stats`]) into the pool counters, so the
    /// buffer drops the pool used to count invisibly show up in
    /// `--stats`.
    pub fn record_pool(&self, delta: &PoolStats) {
        self.pool_bufs_created
            .fetch_add(delta.bufs_created, Ordering::Relaxed);
        self.pool_bufs_recycled
            .fetch_add(delta.bufs_recycled, Ordering::Relaxed);
        self.pool_bufs_dropped
            .fetch_add(delta.bufs_dropped, Ordering::Relaxed);
        self.pool_batches_created
            .fetch_add(delta.batches_created, Ordering::Relaxed);
        self.pool_batches_recycled
            .fetch_add(delta.batches_recycled, Ordering::Relaxed);
        self.pool_batches_dropped
            .fetch_add(delta.batches_dropped, Ordering::Relaxed);
    }

    /// Record parse failures by class.
    pub fn record_parse_failures(&self, not_tls: u64, garbled_client: u64) {
        self.not_tls.fetch_add(not_tls, Ordering::Relaxed);
        self.garbled_client
            .fetch_add(garbled_client, Ordering::Relaxed);
    }

    /// Record `flows` lost to a tap outage window (never dispatched).
    pub fn record_outage_dropped(&self, flows: u64) {
        self.flows_outage_dropped
            .fetch_add(flows, Ordering::Relaxed);
    }

    /// Record `flows` duplicated by the tap (the duplicate is also
    /// counted as generated).
    pub fn record_duplicated(&self, flows: u64) {
        self.flows_duplicated.fetch_add(flows, Ordering::Relaxed);
    }

    /// Record `flows` whose records were salvaged from damaged bytes
    /// (graceful extraction degradation instead of a garbled drop).
    pub fn record_salvaged(&self, flows: u64) {
        self.flows_salvaged.fetch_add(flows, Ordering::Relaxed);
    }

    /// Record one bisection re-dispatch of a failed (sub-)batch.
    pub fn record_batch_retry(&self) {
        self.batch_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one worker respawn after a caught processing panic.
    pub fn record_worker_respawn(&self) {
        self.worker_respawns.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `flows` quarantined as poison (they panicked the
    /// processor even in isolation and were excluded from the run).
    pub fn record_quarantined(&self, flows: u64) {
        self.flows_quarantined.fetch_add(flows, Ordering::Relaxed);
    }

    /// Record time spent merging partial aggregates.
    pub fn record_merge(&self, elapsed: Duration) {
        self.merge_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Record one worker shard lost to a panic.
    pub fn record_shard_lost(&self) {
        self.shards_lost.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one checkpoint file written to the durable store.
    pub fn record_checkpoint_written(&self) {
        self.checkpoints_written.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` checkpoint files loaded cleanly on resume (their
    /// months are skipped, not recomputed).
    pub fn record_checkpoints_loaded(&self, n: u64) {
        self.checkpoints_loaded.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` damaged checkpoint files quarantined on resume
    /// (renamed to `*.ckpt.bad`; their months are recomputed).
    pub fn record_checkpoints_quarantined(&self, n: u64) {
        self.checkpoints_quarantined.fetch_add(n, Ordering::Relaxed);
    }

    /// Record generation-side template-cache consults: `hits` flights
    /// served by memcpy + patch, `misses` serialised in full (and
    /// cached for next time).
    pub fn record_template(&self, hits: u64, misses: u64) {
        self.template_hits.fetch_add(hits, Ordering::Relaxed);
        self.template_misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// Record ingestion-side parse-cache consults: `hits` hellos whose
    /// offer was copied from cache, `misses` fully parsed (and
    /// inserted), `evictions` entries displaced by capacity pressure.
    /// Bypassed flows (salvaged, structurally unknown) count as none
    /// of these.
    pub fn record_parse_cache(&self, hits: u64, misses: u64, evictions: u64) {
        self.parse_cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.parse_cache_misses.fetch_add(misses, Ordering::Relaxed);
        self.parse_cache_evictions
            .fetch_add(evictions, Ordering::Relaxed);
    }

    /// Shards lost so far (also available via [`snapshot`]).
    ///
    /// [`snapshot`]: PipelineMetrics::snapshot
    pub fn shards_lost(&self) -> u64 {
        self.shards_lost.load(Ordering::Relaxed)
    }

    /// A consistent-enough point-in-time copy of all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            flows_generated: self.flows_generated.load(Ordering::Relaxed),
            bytes_generated: self.bytes_generated.load(Ordering::Relaxed),
            gen_nanos: self.gen_nanos.load(Ordering::Relaxed),
            flows_outage_dropped: self.flows_outage_dropped.load(Ordering::Relaxed),
            flows_duplicated: self.flows_duplicated.load(Ordering::Relaxed),
            flows_dispatched: self.flows_dispatched.load(Ordering::Relaxed),
            flows_ingested: self.flows_ingested.load(Ordering::Relaxed),
            batches_ingested: self.batches_ingested.load(Ordering::Relaxed),
            not_tls: self.not_tls.load(Ordering::Relaxed),
            garbled_client: self.garbled_client.load(Ordering::Relaxed),
            flows_salvaged: self.flows_salvaged.load(Ordering::Relaxed),
            ingest_nanos: self.ingest_nanos.load(Ordering::Relaxed),
            batch_retries: self.batch_retries.load(Ordering::Relaxed),
            worker_respawns: self.worker_respawns.load(Ordering::Relaxed),
            flows_quarantined: self.flows_quarantined.load(Ordering::Relaxed),
            merge_nanos: self.merge_nanos.load(Ordering::Relaxed),
            shards_lost: self.shards_lost.load(Ordering::Relaxed),
            checkpoints_written: self.checkpoints_written.load(Ordering::Relaxed),
            checkpoints_loaded: self.checkpoints_loaded.load(Ordering::Relaxed),
            checkpoints_quarantined: self.checkpoints_quarantined.load(Ordering::Relaxed),
            template_hits: self.template_hits.load(Ordering::Relaxed),
            template_misses: self.template_misses.load(Ordering::Relaxed),
            parse_cache_hits: self.parse_cache_hits.load(Ordering::Relaxed),
            parse_cache_misses: self.parse_cache_misses.load(Ordering::Relaxed),
            parse_cache_evictions: self.parse_cache_evictions.load(Ordering::Relaxed),
            pool_bufs_created: self.pool_bufs_created.load(Ordering::Relaxed),
            pool_bufs_recycled: self.pool_bufs_recycled.load(Ordering::Relaxed),
            pool_bufs_dropped: self.pool_bufs_dropped.load(Ordering::Relaxed),
            pool_batches_created: self.pool_batches_created.load(Ordering::Relaxed),
            pool_batches_recycled: self.pool_batches_recycled.load(Ordering::Relaxed),
            pool_batches_dropped: self.pool_batches_dropped.load(Ordering::Relaxed),
        }
    }

    /// A point-in-time copy of the latency distributions. Kept apart
    /// from [`snapshot`] so the counter snapshot's equality semantics
    /// (and the persisted checkpoint format built on it) stay exactly
    /// as they were.
    ///
    /// [`snapshot`]: PipelineMetrics::snapshot
    pub fn latency(&self) -> PipelineLatency {
        PipelineLatency {
            month: self.month_hist.snapshot(),
            ingest_batch: self.ingest_batch_hist.snapshot(),
            checkpoint_write: self.ckpt_write_hist.snapshot(),
            checkpoint_load: self.ckpt_load_hist.snapshot(),
        }
    }
}

/// Point-in-time latency distributions of the passive pipeline —
/// observational siblings of [`MetricsSnapshot`], deliberately not
/// part of it (the snapshot is persisted and compared bit-for-bit;
/// timing never is).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineLatency {
    /// Wall-clock per completed month (generation + ingestion).
    pub month: HistogramSnapshot,
    /// Wall-clock per ingested batch.
    pub ingest_batch: HistogramSnapshot,
    /// Wall-clock per checkpoint file write.
    pub checkpoint_write: HistogramSnapshot,
    /// Wall-clock per checkpoint directory load pass.
    pub checkpoint_load: HistogramSnapshot,
}

impl PipelineLatency {
    /// Multi-line terminal rendering, mirroring
    /// [`MetricsSnapshot::render`]'s column layout.
    pub fn render(&self) -> String {
        let mut out = String::from("pipeline latency\n");
        for (label, hist) in [
            ("month", &self.month),
            ("batch", &self.ingest_batch),
            ("ckpt-write", &self.checkpoint_write),
            ("ckpt-load", &self.checkpoint_load),
        ] {
            out.push_str(&format!("  {:<11} {}\n", label, hist.render_line()));
        }
        out
    }

    fn to_json(self) -> String {
        JsonObj::new()
            .raw("month", &self.month.to_json())
            .raw("ingest_batch", &self.ingest_batch.to_json())
            .raw("checkpoint_write", &self.checkpoint_write.to_json())
            .raw("checkpoint_load", &self.checkpoint_load.to_json())
            .finish()
    }
}

/// A plain-value copy of [`PipelineMetrics`], with derived rates and a
/// terminal rendering.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Flows emitted by the generator.
    pub flows_generated: u64,
    /// Wire bytes emitted by the generator (client + server flows).
    pub bytes_generated: u64,
    /// CPU-summed generator wall-clock, nanoseconds.
    pub gen_nanos: u64,
    /// Flows lost to tap outage windows (never dispatched).
    pub flows_outage_dropped: u64,
    /// Flows duplicated by the tap.
    pub flows_duplicated: u64,
    /// Flows handed to the ingestion stage.
    pub flows_dispatched: u64,
    /// Flows actually processed by the ingestion stage.
    pub flows_ingested: u64,
    /// Batches processed by the ingestion stage.
    pub batches_ingested: u64,
    /// Parse failures: not SSL/TLS at all.
    pub not_tls: u64,
    /// Parse failures: client flow too damaged to parse.
    pub garbled_client: u64,
    /// Connections salvaged from damaged flows (prefix-recovered
    /// records instead of a garbled drop).
    pub flows_salvaged: u64,
    /// CPU-summed ingestion wall-clock, nanoseconds.
    pub ingest_nanos: u64,
    /// Bisection re-dispatches of failed (sub-)batches.
    pub batch_retries: u64,
    /// Worker respawns after caught processing panics.
    pub worker_respawns: u64,
    /// Poison flows quarantined by the supervisor.
    pub flows_quarantined: u64,
    /// Wall-clock spent merging partial aggregates, nanoseconds.
    pub merge_nanos: u64,
    /// Worker shards lost to panics.
    pub shards_lost: u64,
    /// Checkpoint files written to the durable store.
    pub checkpoints_written: u64,
    /// Checkpoint files loaded cleanly on resume (months skipped).
    pub checkpoints_loaded: u64,
    /// Damaged checkpoint files quarantined on resume (months
    /// recomputed).
    pub checkpoints_quarantined: u64,
    /// Generation-side template-cache hits (flights served by
    /// memcpy + patch).
    pub template_hits: u64,
    /// Generation-side template-cache misses (flights serialised in
    /// full and cached).
    pub template_misses: u64,
    /// Ingestion-side parse-cache hits (offers copied from cache).
    pub parse_cache_hits: u64,
    /// Ingestion-side parse-cache misses (hellos fully parsed and
    /// inserted).
    pub parse_cache_misses: u64,
    /// Parse-cache entries evicted by capacity pressure.
    pub parse_cache_evictions: u64,
    /// Flow buffers the pool allocated fresh.
    pub pool_bufs_created: u64,
    /// Flow buffers the pool recycled instead of allocating.
    pub pool_bufs_recycled: u64,
    /// Flow buffers dropped because the pool's return channel was full.
    pub pool_bufs_dropped: u64,
    /// Batch vectors the pool allocated fresh.
    pub pool_batches_created: u64,
    /// Batch vectors the pool recycled instead of allocating.
    pub pool_batches_recycled: u64,
    /// Batch vectors dropped because the pool's return channel was
    /// full.
    pub pool_batches_dropped: u64,
}

fn rate(count: u64, nanos: u64) -> f64 {
    if nanos == 0 {
        0.0
    } else {
        count as f64 / (nanos as f64 / 1e9)
    }
}

fn scaled(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

impl MetricsSnapshot {
    /// Generator throughput in flows per CPU-second.
    pub fn gen_flows_per_sec(&self) -> f64 {
        rate(self.flows_generated, self.gen_nanos)
    }

    /// Ingestion throughput in flows per CPU-second.
    pub fn ingest_flows_per_sec(&self) -> f64 {
        rate(self.flows_ingested, self.ingest_nanos)
    }

    /// Flows dispatched but never processed (lost with panicked
    /// shards or dropped batches).
    pub fn flows_lost(&self) -> u64 {
        self.flows_dispatched.saturating_sub(self.flows_ingested)
    }

    /// The end-to-end flow-accounting invariant of the supervised
    /// pipeline: every dispatched flow is either ingested or
    /// quarantined (nothing silently vanishes).
    pub fn accounting_holds(&self) -> bool {
        self.flows_dispatched == self.flows_ingested + self.flows_quarantined
    }

    /// Multi-line terminal rendering of the per-stage accounting.
    ///
    /// Every row is `"  " + label padded to 11 + " " + {:>11}` for its
    /// first figure (the golden layout test pins this), so the columns
    /// line up even for the 11-character `parse-cache` label that used
    /// to swallow its separator space.
    pub fn render(&self) -> String {
        let mut out = String::from("pipeline metrics\n");
        out.push_str(&format!(
            "  {:<11} {:>11} flows  {:>10} bytes  {:>9.3}s cpu  {:>10} flows/s\n",
            "generate",
            self.flows_generated,
            scaled(self.bytes_generated as f64),
            self.gen_nanos as f64 / 1e9,
            scaled(self.gen_flows_per_sec()),
        ));
        out.push_str(&format!(
            "  {:<11} {:>11} flows  {:>10} batches {:>8.3}s cpu  {:>10} flows/s\n",
            "ingest",
            self.flows_ingested,
            self.batches_ingested,
            self.ingest_nanos as f64 / 1e9,
            scaled(self.ingest_flows_per_sec()),
        ));
        out.push_str(&format!(
            "  {:<11} {:>11} not-tls {:>9} garbled {:>9} salvaged\n",
            "parse-fail", self.not_tls, self.garbled_client, self.flows_salvaged,
        ));
        out.push_str(&format!(
            "  {:<11} {:>11} outage-dropped {:>6} duplicated\n",
            "tap", self.flows_outage_dropped, self.flows_duplicated,
        ));
        out.push_str(&format!(
            "  {:<11} {:>11} retries {:>9} respawns {:>8} quarantined\n",
            "recovery", self.batch_retries, self.worker_respawns, self.flows_quarantined,
        ));
        out.push_str(&format!(
            "  {:<11} {:>10.3}s cpu\n",
            "merge",
            self.merge_nanos as f64 / 1e9
        ));
        out.push_str(&format!(
            "  {:<11} {:>11} shards lost  {:>8} flows lost\n",
            "faults",
            self.shards_lost,
            self.flows_lost(),
        ));
        out.push_str(&format!(
            "  {:<11} {:>11} written {:>9} loaded {:>10} quarantined\n",
            "checkpoint",
            self.checkpoints_written,
            self.checkpoints_loaded,
            self.checkpoints_quarantined,
        ));
        out.push_str(&format!(
            "  {:<11} {:>11} hits {:>12} misses\n",
            "template", self.template_hits, self.template_misses,
        ));
        out.push_str(&format!(
            "  {:<11} {:>11} hits {:>12} misses {:>8} evictions\n",
            "parse-cache",
            self.parse_cache_hits,
            self.parse_cache_misses,
            self.parse_cache_evictions,
        ));
        out.push_str(&format!(
            "  {:<11} {:>11} bufs recycled {:>7} dropped  {:>6} batches recycled {:>5} dropped\n",
            "pool",
            self.pool_bufs_recycled,
            self.pool_bufs_dropped,
            self.pool_batches_recycled,
            self.pool_batches_dropped,
        ));
        out
    }

    /// Schema identifier stamped into every [`to_json`] export; bump
    /// it whenever the key set changes.
    ///
    /// [`to_json`]: MetricsSnapshot::to_json
    pub const SCHEMA: &'static str = "tlscope-pipeline-stats-v1";

    /// Machine-readable export with empty latency sections (no
    /// histograms observed).
    pub fn to_json(&self) -> String {
        self.to_json_with(&PipelineLatency::default())
    }

    /// Machine-readable export: `schema` version tag, every raw
    /// counter under `counters`, the derived figures the rendering
    /// shows under `derived`, and the latency distributions under
    /// `latency`. Keys are emitted in a fixed order, so same-state
    /// exports are byte-identical.
    pub fn to_json_with(&self, latency: &PipelineLatency) -> String {
        let counters = JsonObj::new()
            .u64("flows_generated", self.flows_generated)
            .u64("bytes_generated", self.bytes_generated)
            .u64("gen_nanos", self.gen_nanos)
            .u64("flows_outage_dropped", self.flows_outage_dropped)
            .u64("flows_duplicated", self.flows_duplicated)
            .u64("flows_dispatched", self.flows_dispatched)
            .u64("flows_ingested", self.flows_ingested)
            .u64("batches_ingested", self.batches_ingested)
            .u64("not_tls", self.not_tls)
            .u64("garbled_client", self.garbled_client)
            .u64("flows_salvaged", self.flows_salvaged)
            .u64("ingest_nanos", self.ingest_nanos)
            .u64("batch_retries", self.batch_retries)
            .u64("worker_respawns", self.worker_respawns)
            .u64("flows_quarantined", self.flows_quarantined)
            .u64("merge_nanos", self.merge_nanos)
            .u64("shards_lost", self.shards_lost)
            .u64("checkpoints_written", self.checkpoints_written)
            .u64("checkpoints_loaded", self.checkpoints_loaded)
            .u64("checkpoints_quarantined", self.checkpoints_quarantined)
            .u64("template_hits", self.template_hits)
            .u64("template_misses", self.template_misses)
            .u64("parse_cache_hits", self.parse_cache_hits)
            .u64("parse_cache_misses", self.parse_cache_misses)
            .u64("parse_cache_evictions", self.parse_cache_evictions)
            .u64("pool_bufs_created", self.pool_bufs_created)
            .u64("pool_bufs_recycled", self.pool_bufs_recycled)
            .u64("pool_bufs_dropped", self.pool_bufs_dropped)
            .u64("pool_batches_created", self.pool_batches_created)
            .u64("pool_batches_recycled", self.pool_batches_recycled)
            .u64("pool_batches_dropped", self.pool_batches_dropped)
            .finish();
        let derived = JsonObj::new()
            .f64("gen_flows_per_sec", self.gen_flows_per_sec())
            .f64("ingest_flows_per_sec", self.ingest_flows_per_sec())
            .u64("flows_lost", self.flows_lost())
            .bool("accounting_holds", self.accounting_holds())
            .finish();
        JsonObj::new()
            .str("schema", MetricsSnapshot::SCHEMA)
            .raw("counters", &counters)
            .raw("derived", &derived)
            .raw("latency", &latency.to_json())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = PipelineMetrics::new();
        m.record_generated(120, Duration::from_nanos(500));
        m.record_generated(80, Duration::from_nanos(500));
        m.record_dispatched(2);
        m.record_batch(2, Duration::from_micros(3));
        m.record_parse_failures(1, 0);
        m.record_shard_lost();
        let s = m.snapshot();
        assert_eq!(s.flows_generated, 2);
        assert_eq!(s.bytes_generated, 200);
        assert_eq!(s.gen_nanos, 1000);
        assert_eq!(s.flows_ingested, 2);
        assert_eq!(s.batches_ingested, 1);
        assert_eq!(s.not_tls, 1);
        assert_eq!(s.shards_lost, 1);
        assert_eq!(s.flows_lost(), 0);
    }

    #[test]
    fn rates_and_render() {
        let m = PipelineMetrics::new();
        m.record_batch(1000, Duration::from_millis(100));
        m.record_dispatched(1200);
        let s = m.snapshot();
        assert!((s.ingest_flows_per_sec() - 10_000.0).abs() < 1.0);
        assert_eq!(s.flows_lost(), 200);
        let text = s.render();
        assert!(text.contains("ingest"));
        assert!(text.contains("flows lost"));
    }

    #[test]
    fn recovery_counters_accumulate_and_render() {
        let m = PipelineMetrics::new();
        m.record_dispatched(10);
        m.record_batch(7, Duration::from_micros(1));
        m.record_batch_retry();
        m.record_batch_retry();
        m.record_worker_respawn();
        m.record_quarantined(3);
        m.record_salvaged(2);
        m.record_outage_dropped(5);
        m.record_duplicated(1);
        m.record_checkpoint_written();
        m.record_checkpoint_written();
        m.record_checkpoints_loaded(4);
        m.record_checkpoints_quarantined(1);
        let s = m.snapshot();
        assert_eq!(s.checkpoints_written, 2);
        assert_eq!(s.checkpoints_loaded, 4);
        assert_eq!(s.checkpoints_quarantined, 1);
        assert_eq!(s.batch_retries, 2);
        assert_eq!(s.worker_respawns, 1);
        assert_eq!(s.flows_quarantined, 3);
        assert_eq!(s.flows_salvaged, 2);
        assert_eq!(s.flows_outage_dropped, 5);
        assert_eq!(s.flows_duplicated, 1);
        assert!(
            s.accounting_holds(),
            "10 dispatched = 7 ingested + 3 quarantined"
        );
        let text = s.render();
        for needle in [
            "retries",
            "respawns",
            "quarantined",
            "salvaged",
            "outage-dropped",
            "checkpoint",
        ] {
            assert!(text.contains(needle), "render missing {needle}: {text}");
        }
    }

    #[test]
    fn cache_counters_accumulate_and_render() {
        let m = PipelineMetrics::new();
        m.record_template(10, 2);
        m.record_template(5, 0);
        m.record_parse_cache(8, 3, 1);
        let s = m.snapshot();
        assert_eq!(s.template_hits, 15);
        assert_eq!(s.template_misses, 2);
        assert_eq!(s.parse_cache_hits, 8);
        assert_eq!(s.parse_cache_misses, 3);
        assert_eq!(s.parse_cache_evictions, 1);
        let text = s.render();
        assert!(text.contains("template"), "{text}");
        assert!(text.contains("parse-cache"), "{text}");
        assert!(text.contains("evictions"), "{text}");
    }

    #[test]
    fn render_layout_is_golden() {
        // Every body row must share one column grid: two-space indent,
        // label padded to 11 columns, one separator space (the one the
        // old parse-cache row lacked), then an 11-wide right-aligned
        // first figure ending at column 25.
        let m = PipelineMetrics::new();
        m.record_generated(120, Duration::from_nanos(500));
        m.record_batch(1, Duration::from_micros(3));
        m.record_parse_cache(8, 3, 1);
        m.record_template(15, 2);
        let text = m.snapshot().render();
        let body: Vec<&str> = text.lines().skip(1).collect();
        assert!(body.len() >= 11, "expected all sections rendered: {text}");
        for line in body {
            assert!(line.starts_with("  "), "indent: {line:?}");
            let label = &line[2..13];
            assert!(
                !label.starts_with(' '),
                "label must start at column 2: {line:?}"
            );
            assert_eq!(
                &line[13..14],
                " ",
                "separator space missing at column 13: {line:?}"
            );
            let first_figure = &line[14..25];
            assert!(
                first_figure.ends_with(|c: char| c != ' '),
                "first figure must be right-aligned to column 24: {line:?}"
            );
            assert!(
                line.len() < 26 || line.as_bytes()[25] == b' ',
                "first figure wider than its column: {line:?}"
            );
        }
        // The specific satellite bug: parse-cache keeps its separator.
        let pc = text.lines().find(|l| l.contains("parse-cache")).unwrap();
        assert!(pc.starts_with("  parse-cache "), "{pc:?}");
    }

    #[test]
    fn pool_counters_surface_in_snapshot_and_render() {
        let m = PipelineMetrics::new();
        m.record_pool(&PoolStats {
            bufs_created: 10,
            bufs_recycled: 90,
            bufs_dropped: 4,
            batches_created: 2,
            batches_recycled: 8,
            batches_dropped: 1,
        });
        m.record_pool(&PoolStats {
            bufs_created: 1,
            bufs_recycled: 0,
            bufs_dropped: 0,
            batches_created: 0,
            batches_recycled: 0,
            batches_dropped: 0,
        });
        let s = m.snapshot();
        assert_eq!(s.pool_bufs_created, 11);
        assert_eq!(s.pool_bufs_recycled, 90);
        assert_eq!(s.pool_bufs_dropped, 4);
        assert_eq!(s.pool_batches_created, 2);
        assert_eq!(s.pool_batches_recycled, 8);
        assert_eq!(s.pool_batches_dropped, 1);
        let text = s.render();
        assert!(text.contains("pool"), "{text}");
        assert!(text.contains("bufs recycled"), "{text}");
    }

    #[test]
    fn latency_histograms_record_and_render() {
        let m = PipelineMetrics::new();
        m.record_batch(10, Duration::from_micros(50));
        m.record_month(Duration::from_millis(20));
        m.observe_checkpoint_write(Duration::from_micros(300));
        m.observe_checkpoint_load(Duration::from_micros(100));
        let lat = m.latency();
        assert_eq!(lat.ingest_batch.count, 1);
        assert_eq!(lat.month.count, 1);
        assert_eq!(lat.checkpoint_write.count, 1);
        assert_eq!(lat.checkpoint_load.count, 1);
        let text = lat.render();
        for needle in [
            "pipeline latency",
            "month",
            "batch",
            "ckpt-write",
            "ckpt-load",
        ] {
            assert!(
                text.contains(needle),
                "latency render missing {needle}: {text}"
            );
        }
        // Latency is observational: the counter snapshot is untouched
        // by everything except record_batch's counters.
        let s = m.snapshot();
        assert_eq!(s.flows_ingested, 10);
        assert_eq!(s.batches_ingested, 1);
    }

    #[test]
    fn json_export_schema_is_golden() {
        // The golden key-set test: any drift in the export schema must
        // be deliberate (bump SCHEMA and update this list).
        let m = PipelineMetrics::new();
        m.record_generated(100, Duration::from_nanos(10));
        m.record_dispatched(1);
        m.record_batch(1, Duration::from_micros(1));
        let snap = m.snapshot();
        let parsed = tlscope_obs::Json::parse(&snap.to_json_with(&m.latency())).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(|v| v.as_str()),
            Some(MetricsSnapshot::SCHEMA)
        );
        assert_eq!(
            parsed.keys(),
            vec!["schema", "counters", "derived", "latency"]
        );
        let counters = parsed.get("counters").unwrap();
        assert_eq!(
            counters.keys(),
            vec![
                "flows_generated",
                "bytes_generated",
                "gen_nanos",
                "flows_outage_dropped",
                "flows_duplicated",
                "flows_dispatched",
                "flows_ingested",
                "batches_ingested",
                "not_tls",
                "garbled_client",
                "flows_salvaged",
                "ingest_nanos",
                "batch_retries",
                "worker_respawns",
                "flows_quarantined",
                "merge_nanos",
                "shards_lost",
                "checkpoints_written",
                "checkpoints_loaded",
                "checkpoints_quarantined",
                "template_hits",
                "template_misses",
                "parse_cache_hits",
                "parse_cache_misses",
                "parse_cache_evictions",
                "pool_bufs_created",
                "pool_bufs_recycled",
                "pool_bufs_dropped",
                "pool_batches_created",
                "pool_batches_recycled",
                "pool_batches_dropped",
            ]
        );
        assert_eq!(
            parsed.get("derived").unwrap().keys(),
            vec![
                "gen_flows_per_sec",
                "ingest_flows_per_sec",
                "flows_lost",
                "accounting_holds"
            ]
        );
        assert_eq!(
            parsed.get("latency").unwrap().keys(),
            vec![
                "month",
                "ingest_batch",
                "checkpoint_write",
                "checkpoint_load"
            ]
        );
        // Counters in the JSON match the snapshot the text render used.
        assert_eq!(
            counters.get("flows_generated").and_then(|v| v.as_u64()),
            Some(snap.flows_generated)
        );
        assert_eq!(
            counters.get("flows_ingested").and_then(|v| v.as_u64()),
            Some(snap.flows_ingested)
        );
        assert_eq!(
            parsed
                .get("latency")
                .and_then(|l| l.get("ingest_batch"))
                .and_then(|h| h.get("count"))
                .and_then(|v| v.as_u64()),
            Some(1)
        );
    }

    #[test]
    fn shared_across_threads() {
        let m = PipelineMetrics::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        m.record_batch(1, Duration::from_nanos(10));
                    }
                });
            }
        });
        assert_eq!(m.snapshot().flows_ingested, 4000);
        assert_eq!(m.snapshot().batches_ingested, 4000);
    }
}
