//! Pipeline accounting: lock-free per-stage counters and wall-clock.
//!
//! The paper's Notary processed 319.3 B connections on a cluster whose
//! health was only observable through per-stage accounting (what was
//! parsed, what was dropped, where time went). [`PipelineMetrics`] is
//! that layer for the reproduction: a bag of atomic counters shared by
//! every stage of the generation → extraction → aggregation pipeline.
//! All methods take `&self`, so one instance can be threaded through
//! any number of worker threads without locks.
//!
//! Stage wall-clocks are *CPU-summed* across workers: with `N` workers
//! busy for a second each, a stage records `N` seconds. Divide by the
//! elapsed wall time to read out effective parallelism.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Shared, lock-free pipeline counters.
///
/// Counter groups:
/// * **generation** — flows and wire bytes emitted by the synthetic
///   tap, plus generator wall-clock, flows lost to tap outage windows,
///   and tap-duplicated flows;
/// * **ingestion** — flows/batches through the notary, parse failures
///   by class, records salvaged from damaged flows, plus extraction
///   wall-clock;
/// * **recovery** — batch retries, worker respawns, and quarantined
///   poison flows from the supervised pipeline;
/// * **merge / fault** — aggregate-merge wall-clock and shards lost to
///   worker panics (best-effort collection, paper §3.1).
#[derive(Debug, Default)]
pub struct PipelineMetrics {
    flows_generated: AtomicU64,
    bytes_generated: AtomicU64,
    gen_nanos: AtomicU64,
    flows_outage_dropped: AtomicU64,
    flows_duplicated: AtomicU64,

    flows_dispatched: AtomicU64,
    flows_ingested: AtomicU64,
    batches_ingested: AtomicU64,
    not_tls: AtomicU64,
    garbled_client: AtomicU64,
    flows_salvaged: AtomicU64,
    ingest_nanos: AtomicU64,

    batch_retries: AtomicU64,
    worker_respawns: AtomicU64,
    flows_quarantined: AtomicU64,

    merge_nanos: AtomicU64,
    shards_lost: AtomicU64,

    checkpoints_written: AtomicU64,
    checkpoints_loaded: AtomicU64,
    checkpoints_quarantined: AtomicU64,

    template_hits: AtomicU64,
    template_misses: AtomicU64,

    parse_cache_hits: AtomicU64,
    parse_cache_misses: AtomicU64,
    parse_cache_evictions: AtomicU64,
}

impl PipelineMetrics {
    /// A zeroed metrics bag.
    pub fn new() -> Self {
        PipelineMetrics::default()
    }

    /// Record one generated flow of `bytes` wire bytes.
    pub fn record_generated(&self, bytes: u64, elapsed: Duration) {
        self.flows_generated.fetch_add(1, Ordering::Relaxed);
        self.bytes_generated.fetch_add(bytes, Ordering::Relaxed);
        self.gen_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Record `flows` handed to the ingestion stage (sent, not yet
    /// necessarily processed — the gap to `flows_ingested` is loss).
    pub fn record_dispatched(&self, flows: u64) {
        self.flows_dispatched.fetch_add(flows, Ordering::Relaxed);
    }

    /// Record one ingested batch of `flows` flows taking `elapsed`.
    pub fn record_batch(&self, flows: u64, elapsed: Duration) {
        self.flows_ingested.fetch_add(flows, Ordering::Relaxed);
        self.batches_ingested.fetch_add(1, Ordering::Relaxed);
        self.ingest_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Record parse failures by class.
    pub fn record_parse_failures(&self, not_tls: u64, garbled_client: u64) {
        self.not_tls.fetch_add(not_tls, Ordering::Relaxed);
        self.garbled_client
            .fetch_add(garbled_client, Ordering::Relaxed);
    }

    /// Record `flows` lost to a tap outage window (never dispatched).
    pub fn record_outage_dropped(&self, flows: u64) {
        self.flows_outage_dropped
            .fetch_add(flows, Ordering::Relaxed);
    }

    /// Record `flows` duplicated by the tap (the duplicate is also
    /// counted as generated).
    pub fn record_duplicated(&self, flows: u64) {
        self.flows_duplicated.fetch_add(flows, Ordering::Relaxed);
    }

    /// Record `flows` whose records were salvaged from damaged bytes
    /// (graceful extraction degradation instead of a garbled drop).
    pub fn record_salvaged(&self, flows: u64) {
        self.flows_salvaged.fetch_add(flows, Ordering::Relaxed);
    }

    /// Record one bisection re-dispatch of a failed (sub-)batch.
    pub fn record_batch_retry(&self) {
        self.batch_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one worker respawn after a caught processing panic.
    pub fn record_worker_respawn(&self) {
        self.worker_respawns.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `flows` quarantined as poison (they panicked the
    /// processor even in isolation and were excluded from the run).
    pub fn record_quarantined(&self, flows: u64) {
        self.flows_quarantined.fetch_add(flows, Ordering::Relaxed);
    }

    /// Record time spent merging partial aggregates.
    pub fn record_merge(&self, elapsed: Duration) {
        self.merge_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Record one worker shard lost to a panic.
    pub fn record_shard_lost(&self) {
        self.shards_lost.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one checkpoint file written to the durable store.
    pub fn record_checkpoint_written(&self) {
        self.checkpoints_written.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` checkpoint files loaded cleanly on resume (their
    /// months are skipped, not recomputed).
    pub fn record_checkpoints_loaded(&self, n: u64) {
        self.checkpoints_loaded.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` damaged checkpoint files quarantined on resume
    /// (renamed to `*.ckpt.bad`; their months are recomputed).
    pub fn record_checkpoints_quarantined(&self, n: u64) {
        self.checkpoints_quarantined.fetch_add(n, Ordering::Relaxed);
    }

    /// Record generation-side template-cache consults: `hits` flights
    /// served by memcpy + patch, `misses` serialised in full (and
    /// cached for next time).
    pub fn record_template(&self, hits: u64, misses: u64) {
        self.template_hits.fetch_add(hits, Ordering::Relaxed);
        self.template_misses.fetch_add(misses, Ordering::Relaxed);
    }

    /// Record ingestion-side parse-cache consults: `hits` hellos whose
    /// offer was copied from cache, `misses` fully parsed (and
    /// inserted), `evictions` entries displaced by capacity pressure.
    /// Bypassed flows (salvaged, structurally unknown) count as none
    /// of these.
    pub fn record_parse_cache(&self, hits: u64, misses: u64, evictions: u64) {
        self.parse_cache_hits.fetch_add(hits, Ordering::Relaxed);
        self.parse_cache_misses.fetch_add(misses, Ordering::Relaxed);
        self.parse_cache_evictions
            .fetch_add(evictions, Ordering::Relaxed);
    }

    /// Shards lost so far (also available via [`snapshot`]).
    ///
    /// [`snapshot`]: PipelineMetrics::snapshot
    pub fn shards_lost(&self) -> u64 {
        self.shards_lost.load(Ordering::Relaxed)
    }

    /// A consistent-enough point-in-time copy of all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            flows_generated: self.flows_generated.load(Ordering::Relaxed),
            bytes_generated: self.bytes_generated.load(Ordering::Relaxed),
            gen_nanos: self.gen_nanos.load(Ordering::Relaxed),
            flows_outage_dropped: self.flows_outage_dropped.load(Ordering::Relaxed),
            flows_duplicated: self.flows_duplicated.load(Ordering::Relaxed),
            flows_dispatched: self.flows_dispatched.load(Ordering::Relaxed),
            flows_ingested: self.flows_ingested.load(Ordering::Relaxed),
            batches_ingested: self.batches_ingested.load(Ordering::Relaxed),
            not_tls: self.not_tls.load(Ordering::Relaxed),
            garbled_client: self.garbled_client.load(Ordering::Relaxed),
            flows_salvaged: self.flows_salvaged.load(Ordering::Relaxed),
            ingest_nanos: self.ingest_nanos.load(Ordering::Relaxed),
            batch_retries: self.batch_retries.load(Ordering::Relaxed),
            worker_respawns: self.worker_respawns.load(Ordering::Relaxed),
            flows_quarantined: self.flows_quarantined.load(Ordering::Relaxed),
            merge_nanos: self.merge_nanos.load(Ordering::Relaxed),
            shards_lost: self.shards_lost.load(Ordering::Relaxed),
            checkpoints_written: self.checkpoints_written.load(Ordering::Relaxed),
            checkpoints_loaded: self.checkpoints_loaded.load(Ordering::Relaxed),
            checkpoints_quarantined: self.checkpoints_quarantined.load(Ordering::Relaxed),
            template_hits: self.template_hits.load(Ordering::Relaxed),
            template_misses: self.template_misses.load(Ordering::Relaxed),
            parse_cache_hits: self.parse_cache_hits.load(Ordering::Relaxed),
            parse_cache_misses: self.parse_cache_misses.load(Ordering::Relaxed),
            parse_cache_evictions: self.parse_cache_evictions.load(Ordering::Relaxed),
        }
    }
}

/// A plain-value copy of [`PipelineMetrics`], with derived rates and a
/// terminal rendering.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Flows emitted by the generator.
    pub flows_generated: u64,
    /// Wire bytes emitted by the generator (client + server flows).
    pub bytes_generated: u64,
    /// CPU-summed generator wall-clock, nanoseconds.
    pub gen_nanos: u64,
    /// Flows lost to tap outage windows (never dispatched).
    pub flows_outage_dropped: u64,
    /// Flows duplicated by the tap.
    pub flows_duplicated: u64,
    /// Flows handed to the ingestion stage.
    pub flows_dispatched: u64,
    /// Flows actually processed by the ingestion stage.
    pub flows_ingested: u64,
    /// Batches processed by the ingestion stage.
    pub batches_ingested: u64,
    /// Parse failures: not SSL/TLS at all.
    pub not_tls: u64,
    /// Parse failures: client flow too damaged to parse.
    pub garbled_client: u64,
    /// Connections salvaged from damaged flows (prefix-recovered
    /// records instead of a garbled drop).
    pub flows_salvaged: u64,
    /// CPU-summed ingestion wall-clock, nanoseconds.
    pub ingest_nanos: u64,
    /// Bisection re-dispatches of failed (sub-)batches.
    pub batch_retries: u64,
    /// Worker respawns after caught processing panics.
    pub worker_respawns: u64,
    /// Poison flows quarantined by the supervisor.
    pub flows_quarantined: u64,
    /// Wall-clock spent merging partial aggregates, nanoseconds.
    pub merge_nanos: u64,
    /// Worker shards lost to panics.
    pub shards_lost: u64,
    /// Checkpoint files written to the durable store.
    pub checkpoints_written: u64,
    /// Checkpoint files loaded cleanly on resume (months skipped).
    pub checkpoints_loaded: u64,
    /// Damaged checkpoint files quarantined on resume (months
    /// recomputed).
    pub checkpoints_quarantined: u64,
    /// Generation-side template-cache hits (flights served by
    /// memcpy + patch).
    pub template_hits: u64,
    /// Generation-side template-cache misses (flights serialised in
    /// full and cached).
    pub template_misses: u64,
    /// Ingestion-side parse-cache hits (offers copied from cache).
    pub parse_cache_hits: u64,
    /// Ingestion-side parse-cache misses (hellos fully parsed and
    /// inserted).
    pub parse_cache_misses: u64,
    /// Parse-cache entries evicted by capacity pressure.
    pub parse_cache_evictions: u64,
}

fn rate(count: u64, nanos: u64) -> f64 {
    if nanos == 0 {
        0.0
    } else {
        count as f64 / (nanos as f64 / 1e9)
    }
}

fn scaled(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

impl MetricsSnapshot {
    /// Generator throughput in flows per CPU-second.
    pub fn gen_flows_per_sec(&self) -> f64 {
        rate(self.flows_generated, self.gen_nanos)
    }

    /// Ingestion throughput in flows per CPU-second.
    pub fn ingest_flows_per_sec(&self) -> f64 {
        rate(self.flows_ingested, self.ingest_nanos)
    }

    /// Flows dispatched but never processed (lost with panicked
    /// shards or dropped batches).
    pub fn flows_lost(&self) -> u64 {
        self.flows_dispatched.saturating_sub(self.flows_ingested)
    }

    /// The end-to-end flow-accounting invariant of the supervised
    /// pipeline: every dispatched flow is either ingested or
    /// quarantined (nothing silently vanishes).
    pub fn accounting_holds(&self) -> bool {
        self.flows_dispatched == self.flows_ingested + self.flows_quarantined
    }

    /// Multi-line terminal rendering of the per-stage accounting.
    pub fn render(&self) -> String {
        let mut out = String::from("pipeline metrics\n");
        out.push_str(&format!(
            "  generate   {:>12} flows  {:>10} bytes  {:>9.3}s cpu  {:>10} flows/s\n",
            self.flows_generated,
            scaled(self.bytes_generated as f64),
            self.gen_nanos as f64 / 1e9,
            scaled(self.gen_flows_per_sec()),
        ));
        out.push_str(&format!(
            "  ingest     {:>12} flows  {:>10} batches {:>8.3}s cpu  {:>10} flows/s\n",
            self.flows_ingested,
            self.batches_ingested,
            self.ingest_nanos as f64 / 1e9,
            scaled(self.ingest_flows_per_sec()),
        ));
        out.push_str(&format!(
            "  parse-fail {:>12} not-tls {:>9} garbled {:>9} salvaged\n",
            self.not_tls, self.garbled_client, self.flows_salvaged,
        ));
        out.push_str(&format!(
            "  tap        {:>12} outage-dropped {:>6} duplicated\n",
            self.flows_outage_dropped, self.flows_duplicated,
        ));
        out.push_str(&format!(
            "  recovery   {:>12} retries {:>9} respawns {:>8} quarantined\n",
            self.batch_retries, self.worker_respawns, self.flows_quarantined,
        ));
        out.push_str(&format!(
            "  merge      {:>12.3}s\n",
            self.merge_nanos as f64 / 1e9
        ));
        out.push_str(&format!(
            "  faults     {:>12} shards lost  {:>8} flows lost\n",
            self.shards_lost,
            self.flows_lost(),
        ));
        out.push_str(&format!(
            "  checkpoint {:>12} written {:>9} loaded {:>10} quarantined\n",
            self.checkpoints_written, self.checkpoints_loaded, self.checkpoints_quarantined,
        ));
        out.push_str(&format!(
            "  template   {:>12} hits {:>12} misses\n",
            self.template_hits, self.template_misses,
        ));
        out.push_str(&format!(
            "  parse-cache{:>12} hits {:>12} misses {:>8} evictions\n",
            self.parse_cache_hits, self.parse_cache_misses, self.parse_cache_evictions,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = PipelineMetrics::new();
        m.record_generated(120, Duration::from_nanos(500));
        m.record_generated(80, Duration::from_nanos(500));
        m.record_dispatched(2);
        m.record_batch(2, Duration::from_micros(3));
        m.record_parse_failures(1, 0);
        m.record_shard_lost();
        let s = m.snapshot();
        assert_eq!(s.flows_generated, 2);
        assert_eq!(s.bytes_generated, 200);
        assert_eq!(s.gen_nanos, 1000);
        assert_eq!(s.flows_ingested, 2);
        assert_eq!(s.batches_ingested, 1);
        assert_eq!(s.not_tls, 1);
        assert_eq!(s.shards_lost, 1);
        assert_eq!(s.flows_lost(), 0);
    }

    #[test]
    fn rates_and_render() {
        let m = PipelineMetrics::new();
        m.record_batch(1000, Duration::from_millis(100));
        m.record_dispatched(1200);
        let s = m.snapshot();
        assert!((s.ingest_flows_per_sec() - 10_000.0).abs() < 1.0);
        assert_eq!(s.flows_lost(), 200);
        let text = s.render();
        assert!(text.contains("ingest"));
        assert!(text.contains("flows lost"));
    }

    #[test]
    fn recovery_counters_accumulate_and_render() {
        let m = PipelineMetrics::new();
        m.record_dispatched(10);
        m.record_batch(7, Duration::from_micros(1));
        m.record_batch_retry();
        m.record_batch_retry();
        m.record_worker_respawn();
        m.record_quarantined(3);
        m.record_salvaged(2);
        m.record_outage_dropped(5);
        m.record_duplicated(1);
        m.record_checkpoint_written();
        m.record_checkpoint_written();
        m.record_checkpoints_loaded(4);
        m.record_checkpoints_quarantined(1);
        let s = m.snapshot();
        assert_eq!(s.checkpoints_written, 2);
        assert_eq!(s.checkpoints_loaded, 4);
        assert_eq!(s.checkpoints_quarantined, 1);
        assert_eq!(s.batch_retries, 2);
        assert_eq!(s.worker_respawns, 1);
        assert_eq!(s.flows_quarantined, 3);
        assert_eq!(s.flows_salvaged, 2);
        assert_eq!(s.flows_outage_dropped, 5);
        assert_eq!(s.flows_duplicated, 1);
        assert!(
            s.accounting_holds(),
            "10 dispatched = 7 ingested + 3 quarantined"
        );
        let text = s.render();
        for needle in [
            "retries",
            "respawns",
            "quarantined",
            "salvaged",
            "outage-dropped",
            "checkpoint",
        ] {
            assert!(text.contains(needle), "render missing {needle}: {text}");
        }
    }

    #[test]
    fn cache_counters_accumulate_and_render() {
        let m = PipelineMetrics::new();
        m.record_template(10, 2);
        m.record_template(5, 0);
        m.record_parse_cache(8, 3, 1);
        let s = m.snapshot();
        assert_eq!(s.template_hits, 15);
        assert_eq!(s.template_misses, 2);
        assert_eq!(s.parse_cache_hits, 8);
        assert_eq!(s.parse_cache_misses, 3);
        assert_eq!(s.parse_cache_evictions, 1);
        let text = s.render();
        assert!(text.contains("template"), "{text}");
        assert!(text.contains("parse-cache"), "{text}");
        assert!(text.contains("evictions"), "{text}");
    }

    #[test]
    fn shared_across_threads() {
        let m = PipelineMetrics::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        m.record_batch(1, Duration::from_nanos(10));
                    }
                });
            }
        });
        assert_eq!(m.snapshot().flows_ingested, 4000);
        assert_eq!(m.snapshot().batches_ingested, 4000);
    }
}
