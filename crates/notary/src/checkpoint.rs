//! Per-month checkpoint files for resumable studies.
//!
//! The Notary ran for six years; a crash four months into a long
//! replay must not force a restart from zero. The study runner
//! serializes each completed month's *partial* [`NotaryAggregate`] to
//! `<dir>/<YYYY-MM>.ckpt` and, on resume, reloads the partials and
//! skips the completed months. Because aggregate merging is
//! commutative and accumulation is integer-exact, the resumed final
//! aggregate is **bit-identical** (`PartialEq`) to an uninterrupted
//! run — an acceptance criterion, property-tested in the analysis
//! crate.
//!
//! Unlike the analysis store (`store.rs`), which deliberately drops
//! the data-dependent fingerprint state, a checkpoint must be
//! *lossless*: it carries the month counters (reusing the store's
//! month-line codec, which includes the raw `PositionMean`
//! accumulators), per-month fingerprint class flags, the
//! fingerprint coverage counts, sighting windows, and the
//! aggregate-level failure/salvage counters.
//!
//! Files are written atomically (temp file + rename) so an interrupt
//! mid-write leaves either no checkpoint or a complete one, never a
//! torn file; all sections are emitted in sorted order so identical
//! partials serialize to identical bytes. Since format v2 every file
//! carries an FNV-1a content-checksum footer ([`tlscope_durable`]), so
//! truncation and bit-rot are *detected* at load time; [`load_dir`]
//! quarantines damaged files (rename to `*.ckpt.bad`) and reports
//! their months as incomplete so the runner recomputes them, instead
//! of aborting the whole resume. The v1 format (no footer) is still
//! readable.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use tlscope_chron::{Date, Month};
use tlscope_fingerprint::Fingerprint;

use crate::aggregate::{FpClassFlags, NotaryAggregate};
use crate::store::{month_line, parse_month_line};

/// Legacy header: files without a checksum footer.
const HEADER_V1: &str = "# tlscope checkpoint v1";
/// Current header: body sealed with a `sum\tfnv1a:` footer.
const HEADER: &str = "# tlscope checkpoint v2";

/// Errors from checkpoint IO or parsing.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure (path carried for context).
    Io(PathBuf, std::io::Error),
    /// A checkpoint file failed to parse; carries path and 1-based line.
    Malformed(PathBuf, usize),
    /// A v2 checkpoint file failed its content-checksum check
    /// (truncated, torn, or bit-rotted on disk).
    Corrupt(PathBuf),
}

impl CheckpointError {
    /// True when the error describes a damaged *file* (recoverable by
    /// quarantining it and recomputing its month) rather than a
    /// filesystem failure that must abort the resume.
    pub fn is_damage(&self) -> bool {
        matches!(
            self,
            CheckpointError::Malformed(..) | CheckpointError::Corrupt(..)
        )
    }
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(p, e) => write!(f, "checkpoint io error at {}: {e}", p.display()),
            CheckpointError::Malformed(p, line) => {
                write!(f, "malformed checkpoint {} (line {line})", p.display())
            }
            CheckpointError::Corrupt(p) => {
                write!(f, "corrupt checkpoint {} (checksum failed)", p.display())
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

fn flags_to_bits(f: &FpClassFlags) -> u8 {
    (f.rc4 as u8)
        | (f.cbc as u8) << 1
        | (f.aead as u8) << 2
        | (f.des as u8) << 3
        | (f.tdes as u8) << 4
        | (f.null as u8) << 5
        | (f.anon as u8) << 6
}

fn flags_from_bits(bits: u8) -> FpClassFlags {
    FpClassFlags {
        rc4: bits & 1 != 0,
        cbc: bits & 2 != 0,
        aead: bits & 4 != 0,
        des: bits & 8 != 0,
        tdes: bits & 16 != 0,
        null: bits & 32 != 0,
        anon: bits & 64 != 0,
    }
}

/// Comma-join a list of wire ids; `-` marks the empty list (a bare
/// empty field would be ambiguous in a tab-split line).
fn join_ids<T: std::fmt::Display>(ids: &[T]) -> String {
    if ids.is_empty() {
        "-".to_string()
    } else {
        ids.iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }
}

fn split_ids<T: std::str::FromStr>(field: &str) -> Option<Vec<T>> {
    if field == "-" {
        return Some(Vec::new());
    }
    field.split(',').map(|p| p.parse().ok()).collect()
}

/// Serialize one partial aggregate to checkpoint text. Deterministic:
/// every section is sorted, so equal partials produce equal bytes.
pub fn to_text(partial: &NotaryAggregate) -> String {
    let mut out = String::from(HEADER);
    out.push('\n');
    for (month, stats) in partial.iter_months() {
        out.push_str("month\t");
        out.push_str(&month_line(month, stats));
        out.push('\n');
        // On-disk flag lines key on the stable content hash (id64), not
        // the run-local dense id — the v1 format is unchanged.
        let mut flags: Vec<(u64, &FpClassFlags)> = stats
            .fp_flags
            .iter()
            .map(|(id, f)| (partial.interner.id64_of(*id), f))
            .collect();
        flags.sort_by_key(|(id, _)| *id);
        for (id, f) in flags {
            out.push_str(&format!("flag\t{month}\t{id}\t{}\n", flags_to_bits(f)));
        }
    }
    let mut fps: Vec<(&Fingerprint, u64)> = partial.iter_fp_counts().collect();
    fps.sort();
    for (fp, count) in fps {
        out.push_str(&format!(
            "fp\t{count}\t{}\t{}\t{}\t{}\n",
            join_ids(&fp.ciphers),
            join_ids(&fp.extensions),
            join_ids(&fp.curves),
            join_ids(&fp.point_formats),
        ));
    }
    let mut sightings: Vec<_> = partial
        .sightings
        .iter_raw()
        .map(|(id, s)| (partial.interner.id64_of(*id), s))
        .collect();
    sightings.sort_by_key(|(id, _)| *id);
    for (id, s) in sightings {
        out.push_str(&format!(
            "sight\t{id}\t{}\t{}\t{}\n",
            s.first, s.last, s.connections
        ));
    }
    out.push_str(&format!(
        "fail\t{}\t{}\t{}\n",
        partial.not_tls, partial.garbled_client, partial.salvaged
    ));
    tlscope_durable::seal(out)
}

/// Parse checkpoint text back into a partial aggregate.
///
/// Accepts both the current sealed v2 format (checksum footer
/// verified; failure is [`CheckpointError::Corrupt`]) and the legacy
/// v1 format, which has no footer and is parsed as-is.
pub fn from_text(text: &str, path: &Path) -> Result<NotaryAggregate, CheckpointError> {
    let bad = |n: usize| CheckpointError::Malformed(path.to_path_buf(), n);
    let first = text.lines().next().unwrap_or("");
    let body = if first.starts_with(HEADER) {
        tlscope_durable::open_sealed(text)
            .map_err(|_| CheckpointError::Corrupt(path.to_path_buf()))?
    } else if first.starts_with(HEADER_V1) {
        text
    } else {
        return Err(bad(1));
    };
    let mut lines = body.lines().enumerate();
    lines.next(); // header, validated above
    let mut agg = NotaryAggregate::new();
    // Month stats are buffered so `flag` lines can attach to them in
    // any order relative to their `month` line. Flag and sight lines
    // key on id64 but the in-memory structures key on interned ids, so
    // they are buffered too and resolved once all `fp` lines (which
    // populate the interner) have been read.
    let mut months = BTreeMap::new();
    let mut pending_flags: Vec<(usize, Month, u64, FpClassFlags)> = Vec::new();
    let mut pending_sights: Vec<(usize, u64, Date, Date, u64)> = Vec::new();
    for (idx, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let n = idx + 1;
        let (tag, rest) = line.split_once('\t').ok_or(bad(n))?;
        match tag {
            "month" => {
                let (month, stats) = parse_month_line(rest).ok_or(bad(n))?;
                months.insert(month, stats);
            }
            "flag" => {
                let mut f = rest.split('\t');
                let month: Month = f.next().and_then(|v| v.parse().ok()).ok_or(bad(n))?;
                let id: u64 = f.next().and_then(|v| v.parse().ok()).ok_or(bad(n))?;
                let bits: u8 = f.next().and_then(|v| v.parse().ok()).ok_or(bad(n))?;
                if !months.contains_key(&month) {
                    return Err(bad(n));
                }
                pending_flags.push((n, month, id, flags_from_bits(bits)));
            }
            "fp" => {
                let mut f = rest.split('\t');
                let count: u64 = f.next().and_then(|v| v.parse().ok()).ok_or(bad(n))?;
                let ciphers = f.next().and_then(split_ids::<u16>).ok_or(bad(n))?;
                let extensions = f.next().and_then(split_ids::<u16>).ok_or(bad(n))?;
                let curves = f.next().and_then(split_ids::<u16>).ok_or(bad(n))?;
                let point_formats = f.next().and_then(split_ids::<u8>).ok_or(bad(n))?;
                let id = agg.interner.intern_owned(Fingerprint {
                    ciphers,
                    extensions,
                    curves,
                    point_formats,
                });
                if agg.fp_counts.len() <= id.index() {
                    agg.fp_counts.resize(id.index() + 1, 0);
                }
                agg.fp_counts[id.index()] = count;
            }
            "sight" => {
                let mut f = rest.split('\t');
                let id: u64 = f.next().and_then(|v| v.parse().ok()).ok_or(bad(n))?;
                let first: Date = f.next().and_then(|v| v.parse().ok()).ok_or(bad(n))?;
                let last: Date = f.next().and_then(|v| v.parse().ok()).ok_or(bad(n))?;
                let connections: u64 = f.next().and_then(|v| v.parse().ok()).ok_or(bad(n))?;
                pending_sights.push((n, id, first, last, connections));
            }
            "fail" => {
                let mut f = rest.split('\t');
                agg.not_tls = f.next().and_then(|v| v.parse().ok()).ok_or(bad(n))?;
                agg.garbled_client = f.next().and_then(|v| v.parse().ok()).ok_or(bad(n))?;
                agg.salvaged = f.next().and_then(|v| v.parse().ok()).ok_or(bad(n))?;
            }
            _ => return Err(bad(n)),
        }
    }
    // A flag or sight id64 with no matching `fp` line means the file
    // is internally inconsistent — reject it at that line.
    for (n, month, id64, flags) in pending_flags {
        let id = agg.interner.lookup_id64(id64).ok_or(bad(n))?;
        months
            .get_mut(&month)
            .ok_or(bad(n))?
            .fp_flags
            .insert(id, flags);
    }
    for (n, id64, first, last, connections) in pending_sights {
        let id = agg.interner.lookup_id64(id64).ok_or(bad(n))?;
        agg.sightings.observe(id, first, 0);
        agg.sightings.observe(id, last, connections);
    }
    for (month, stats) in months {
        agg.insert_month(month, stats);
    }
    Ok(agg)
}

fn month_path(dir: &Path, month: Month) -> PathBuf {
    dir.join(format!("{month}.ckpt"))
}

/// Atomically write the partial aggregate for one completed month.
///
/// The temp-then-rename dance guarantees a reader (or a resumed run)
/// never observes a torn checkpoint: the final path either does not
/// exist or holds a complete serialization.
pub fn write_month(
    dir: &Path,
    month: Month,
    partial: &NotaryAggregate,
) -> Result<(), CheckpointError> {
    let final_path = month_path(dir, month);
    tlscope_durable::write_atomic(dir, &format!("{month}.ckpt"), &to_text(partial))
        .map_err(|e| CheckpointError::Io(final_path, e))
}

/// Load one month's checkpoint file.
pub fn read_month(dir: &Path, month: Month) -> Result<NotaryAggregate, CheckpointError> {
    let path = month_path(dir, month);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        // Bit-rot can make a file invalid UTF-8; that is damage to the
        // file's content, not a filesystem failure.
        Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
            return Err(CheckpointError::Corrupt(path));
        }
        Err(e) => return Err(CheckpointError::Io(path, e)),
    };
    from_text(&text, &path)
}

/// Result of scanning a checkpoint directory with [`load_dir`].
#[derive(Debug)]
pub struct DirLoad {
    /// Merge of every intact month partial.
    pub aggregate: NotaryAggregate,
    /// Months whose checkpoints loaded cleanly (safe to skip).
    pub completed: BTreeSet<Month>,
    /// Quarantine paths (`*.ckpt.bad`) of damaged files that were
    /// moved aside; their months are *not* in `completed`, so the
    /// runner recomputes them.
    pub quarantined: Vec<PathBuf>,
}

/// Scan a checkpoint directory: merge every completed month's partial
/// into one aggregate and report which months are already done.
///
/// A missing directory is a valid cold start (empty aggregate, no
/// completed months). Leftover `.tmp` files from an interrupted write
/// are ignored — their month was not completed. A damaged file
/// (malformed, truncated, or failing its checksum) is quarantined —
/// renamed to `<month>.ckpt.bad` — and its month reported incomplete,
/// so a resume recomputes it instead of aborting; only filesystem
/// errors abort.
pub fn load_dir(dir: &Path) -> Result<DirLoad, CheckpointError> {
    let mut load = DirLoad {
        aggregate: NotaryAggregate::new(),
        completed: BTreeSet::new(),
        quarantined: Vec::new(),
    };
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(load),
        Err(e) => return Err(CheckpointError::Io(dir.to_path_buf(), e)),
    };
    let mut months = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| CheckpointError::Io(dir.to_path_buf(), e))?;
        let name = entry.file_name();
        let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(".ckpt")) else {
            continue;
        };
        if let Ok(month) = stem.parse::<Month>() {
            months.push(month);
        }
    }
    // Sorted merge order keeps loading deterministic (merging is
    // commutative anyway, but determinism should not depend on it).
    months.sort();
    for month in months {
        match read_month(dir, month) {
            Ok(partial) => {
                load.aggregate.merge(partial);
                load.completed.insert(month);
            }
            Err(e) if e.is_damage() => {
                let path = month_path(dir, month);
                let bad = tlscope_durable::quarantine(&path)
                    .map_err(|io| CheckpointError::Io(path, io))?;
                load.quarantined.push(bad);
            }
            Err(e) => return Err(e),
        }
    }
    Ok(load)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlscope_chron::Month;
    use tlscope_traffic::{FaultInjector, Generator, TrafficConfig};

    fn unique_dir(tag: &str) -> PathBuf {
        let pid = std::process::id();
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        std::env::temp_dir().join(format!("tlscope-ckpt-{tag}-{pid}-{t}"))
    }

    fn sample_partial(month: Month) -> NotaryAggregate {
        let g = Generator::new(TrafficConfig {
            seed: 77,
            connections_per_month: 250,
            faults: FaultInjector {
                truncate_prob: 0.05,
                corrupt_prob: 0.05,
                ..FaultInjector::none()
            },
        });
        let flows = g.stream_month(month).map(|ev| crate::TappedFlow {
            date: ev.date,
            port: ev.port,
            client: ev.client_flow,
            server: ev.server_flow,
        });
        crate::ingest_serial(flows)
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let partial = sample_partial(Month::ym(2015, 6));
        assert!(partial.sightings.len() > 0, "sample must exercise fps");
        assert!(partial.distinct_fingerprints() > 0);
        let text = to_text(&partial);
        assert!(text.starts_with(HEADER));
        let back = from_text(&text, Path::new("test")).unwrap();
        assert_eq!(partial, back, "checkpoint text must be lossless");
        // Serialization itself is deterministic.
        assert_eq!(text, to_text(&back));
    }

    #[test]
    fn v1_format_is_still_readable() {
        let partial = sample_partial(Month::ym(2016, 2));
        // Reconstruct what a v1 writer produced: same body, v1 header,
        // no checksum footer.
        let sealed = to_text(&partial);
        let body = tlscope_durable::open_sealed(&sealed).unwrap();
        let v1_text = body.replacen(HEADER, HEADER_V1, 1);
        assert!(v1_text.starts_with(HEADER_V1));
        let back = from_text(&v1_text, Path::new("legacy")).unwrap();
        assert_eq!(partial, back, "v1 checkpoints must stay lossless");
    }

    #[test]
    fn dir_roundtrip_merges_to_original() {
        let dir = unique_dir("dir");
        let m1 = Month::ym(2015, 6);
        let m2 = Month::ym(2015, 7);
        let p1 = sample_partial(m1);
        let p2 = sample_partial(m2);
        let mut whole = NotaryAggregate::new();
        whole.merge(sample_partial(m1));
        whole.merge(sample_partial(m2));
        write_month(&dir, m1, &p1).unwrap();
        write_month(&dir, m2, &p2).unwrap();
        // A leftover temp file from an interrupted write is ignored.
        std::fs::write(dir.join("2015-08.ckpt.tmp"), "torn").unwrap();
        let load = load_dir(&dir).unwrap();
        assert_eq!(load.aggregate, whole);
        assert_eq!(load.completed.into_iter().collect::<Vec<_>>(), vec![m1, m2]);
        assert!(load.quarantined.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_is_cold_start() {
        let load = load_dir(&unique_dir("absent")).unwrap();
        assert_eq!(load.aggregate, NotaryAggregate::new());
        assert!(load.completed.is_empty());
        assert!(load.quarantined.is_empty());
    }

    #[test]
    fn malformed_files_are_rejected() {
        let p = Path::new("x");
        assert!(matches!(
            from_text("", p),
            Err(CheckpointError::Malformed(_, 1))
        ));
        assert!(matches!(
            from_text("# tlscope checkpoint v1\nbogus\tline\n", p),
            Err(CheckpointError::Malformed(_, 2))
        ));
        assert!(matches!(
            from_text("# tlscope checkpoint v1\nflag\t2015-01\t5\t1\n", p),
            Err(CheckpointError::Malformed(_, 2)),
        ));
        // A sight line referencing an id64 with no fp line is
        // internally inconsistent.
        assert!(matches!(
            from_text(
                "# tlscope checkpoint v1\nsight\t99\t2015-01-01\t2015-01-02\t5\n",
                p
            ),
            Err(CheckpointError::Malformed(_, 2)),
        ));
        // A v2 header without a valid checksum footer is corrupt.
        assert!(matches!(
            from_text("# tlscope checkpoint v2\nfail\t0\t0\t0\n", p),
            Err(CheckpointError::Corrupt(_)),
        ));
        // Error values render.
        let err = from_text("", p).unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let err = from_text("# tlscope checkpoint v2\n", p).unwrap_err();
        assert!(err.to_string().contains("checksum"));
    }

    #[test]
    fn truncated_and_flipped_files_are_corrupt() {
        let partial = sample_partial(Month::ym(2015, 9));
        let text = to_text(&partial);
        let p = Path::new("x");
        // Truncation anywhere past the header is detected.
        let cut = text.len() / 2;
        assert!(matches!(
            from_text(&text[..cut], p),
            Err(CheckpointError::Corrupt(_)),
        ));
        // A single flipped bit is detected.
        let mut bytes = text.clone().into_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        let flipped = String::from_utf8_lossy(&bytes).into_owned();
        assert!(matches!(
            from_text(&flipped, p),
            Err(CheckpointError::Corrupt(_)),
        ));
    }

    #[test]
    fn damaged_files_are_quarantined_not_fatal() {
        let dir = unique_dir("quarantine");
        let m1 = Month::ym(2015, 6);
        let m2 = Month::ym(2015, 7);
        let m3 = Month::ym(2015, 8);
        write_month(&dir, m1, &sample_partial(m1)).unwrap();
        write_month(&dir, m2, &sample_partial(m2)).unwrap();
        write_month(&dir, m3, &sample_partial(m3)).unwrap();
        // Truncate m2's file and garble m3's outright.
        let p2 = dir.join(format!("{m2}.ckpt"));
        let text2 = std::fs::read_to_string(&p2).unwrap();
        std::fs::write(&p2, &text2[..text2.len() / 3]).unwrap();
        let p3 = dir.join(format!("{m3}.ckpt"));
        std::fs::write(&p3, b"not a checkpoint at all\xff\xfe").unwrap();
        let load = load_dir(&dir).unwrap();
        assert_eq!(load.aggregate, sample_partial(m1));
        assert_eq!(load.completed.into_iter().collect::<Vec<_>>(), vec![m1]);
        assert_eq!(
            load.quarantined,
            vec![
                dir.join(format!("{m2}.ckpt.bad")),
                dir.join(format!("{m3}.ckpt.bad"))
            ]
        );
        // The damaged bytes were preserved, and the live names freed.
        assert!(!p2.exists() && !p3.exists());
        assert!(load.quarantined.iter().all(|p| p.exists()));
        // A second load sees one intact month and no new damage.
        let again = load_dir(&dir).unwrap();
        assert_eq!(again.completed.len(), 1);
        assert!(again.quarantined.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flag_bits_roundtrip_all_combinations() {
        for bits in 0u8..128 {
            assert_eq!(flags_to_bits(&flags_from_bits(bits)), bits);
        }
    }
}
