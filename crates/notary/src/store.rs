//! Aggregate persistence: a plain-text, line-oriented store for the
//! monthly counters, so a long study run can be saved and re-analysed
//! without re-simulating.
//!
//! Format: one `month <k> <v> ...` record per TSV line, human-diffable
//! and dependency-free (the offline crate set has no serde format
//! crate, and this is 120 lines). Maps (curves, supported_versions,
//! extensions) are flattened as `key:value` pairs. Fingerprint-level
//! state (sightings, per-FP flags) is intentionally *not* persisted —
//! it is the one part of the aggregate whose size is data-dependent;
//! persist the study seed instead and regenerate.

use std::collections::HashMap;

use tlscope_chron::Month;

use crate::aggregate::{MonthlyStats, NotaryAggregate, PositionMean};

const SCALARS: &[&str] = &[
    "total",
    "sslv2",
    "rejected",
    "missing_server",
    "garbled_server",
    "answered",
    "v_ssl2",
    "v_ssl3",
    "v_tls10",
    "v_tls11",
    "v_tls12",
    "v_tls13",
    "v_other",
    "neg_rc4",
    "neg_cbc",
    "neg_aead",
    "neg_null",
    "neg_null_null",
    "neg_3des",
    "neg_des",
    "neg_export",
    "neg_anon",
    "neg_unoffered",
    "neg_fs",
    "kx_rsa",
    "kx_dhe",
    "kx_ecdhe",
    "kx_dh",
    "kx_ecdh",
    "kx_tls13",
    "kx_other",
    "na_128gcm",
    "na_256gcm",
    "na_chacha",
    "na_ccm",
    "na_other",
    "hb_neg",
    "adv_rc4",
    "adv_cbc",
    "adv_aead",
    "adv_des",
    "adv_3des",
    "adv_export",
    "adv_anon",
    "adv_null",
    "adv_fs",
    "adv_hb",
    "adv_tls13",
    "aa_128gcm",
    "aa_256gcm",
    "aa_chacha",
    "aa_ccm",
    "aa_other",
    // Raw PositionMean accumulators (micro-unit sum + sample count):
    // persisted losslessly so a reloaded aggregate is bit-identical —
    // required by the checkpoint/resume machinery, which reuses this
    // codec per month.
    "pa_sum",
    "pa_n",
    "pc_sum",
    "pc_n",
    "pr_sum",
    "pr_n",
    "pd_sum",
    "pd_n",
    "p3_sum",
    "p3_n",
];

fn scalar_values(s: &MonthlyStats) -> Vec<u64> {
    let v = s.neg_version;
    let k = s.neg_kx;
    let na = s.neg_aead_alg;
    let aa = s.adv_aead_alg;
    vec![
        s.total,
        s.sslv2,
        s.rejected,
        s.missing_server,
        s.garbled_server,
        s.answered,
        v.ssl2,
        v.ssl3,
        v.tls10,
        v.tls11,
        v.tls12,
        v.tls13,
        v.other,
        s.neg_rc4,
        s.neg_cbc,
        s.neg_aead,
        s.neg_null,
        s.neg_null_null,
        s.neg_3des,
        s.neg_des,
        s.neg_export,
        s.neg_anon,
        s.neg_unoffered,
        s.neg_fs,
        k.rsa,
        k.dhe,
        k.ecdhe,
        k.dh,
        k.ecdh,
        k.tls13,
        k.other,
        na.aes128gcm,
        na.aes256gcm,
        na.chacha,
        na.ccm,
        na.other,
        s.heartbeat_negotiated,
        s.adv_rc4,
        s.adv_cbc,
        s.adv_aead,
        s.adv_des,
        s.adv_3des,
        s.adv_export,
        s.adv_anon,
        s.adv_null,
        s.adv_fs,
        s.adv_heartbeat,
        s.adv_tls13,
        aa.aes128gcm,
        aa.aes256gcm,
        aa.chacha,
        aa.ccm,
        aa.other,
        s.pos_aead.raw_parts().0,
        s.pos_aead.raw_parts().1,
        s.pos_cbc.raw_parts().0,
        s.pos_cbc.raw_parts().1,
        s.pos_rc4.raw_parts().0,
        s.pos_rc4.raw_parts().1,
        s.pos_des.raw_parts().0,
        s.pos_des.raw_parts().1,
        s.pos_3des.raw_parts().0,
        s.pos_3des.raw_parts().1,
    ]
}

fn set_pos_sum(p: &mut PositionMean, val: u64) {
    *p = PositionMean::from_raw_parts(val, p.raw_parts().1);
}

fn set_pos_n(p: &mut PositionMean, val: u64) {
    *p = PositionMean::from_raw_parts(p.raw_parts().0, val);
}

fn apply_scalar(s: &mut MonthlyStats, key: &str, val: u64) {
    let v = &mut s.neg_version;
    let k = &mut s.neg_kx;
    match key {
        "total" => s.total = val,
        "sslv2" => s.sslv2 = val,
        "rejected" => s.rejected = val,
        "missing_server" => s.missing_server = val,
        "garbled_server" => s.garbled_server = val,
        "answered" => s.answered = val,
        "v_ssl2" => v.ssl2 = val,
        "v_ssl3" => v.ssl3 = val,
        "v_tls10" => v.tls10 = val,
        "v_tls11" => v.tls11 = val,
        "v_tls12" => v.tls12 = val,
        "v_tls13" => v.tls13 = val,
        "v_other" => v.other = val,
        "neg_rc4" => s.neg_rc4 = val,
        "neg_cbc" => s.neg_cbc = val,
        "neg_aead" => s.neg_aead = val,
        "neg_null" => s.neg_null = val,
        "neg_null_null" => s.neg_null_null = val,
        "neg_3des" => s.neg_3des = val,
        "neg_des" => s.neg_des = val,
        "neg_export" => s.neg_export = val,
        "neg_anon" => s.neg_anon = val,
        "neg_unoffered" => s.neg_unoffered = val,
        "neg_fs" => s.neg_fs = val,
        "kx_rsa" => k.rsa = val,
        "kx_dhe" => k.dhe = val,
        "kx_ecdhe" => k.ecdhe = val,
        "kx_dh" => k.dh = val,
        "kx_ecdh" => k.ecdh = val,
        "kx_tls13" => k.tls13 = val,
        "kx_other" => k.other = val,
        "na_128gcm" => s.neg_aead_alg.aes128gcm = val,
        "na_256gcm" => s.neg_aead_alg.aes256gcm = val,
        "na_chacha" => s.neg_aead_alg.chacha = val,
        "na_ccm" => s.neg_aead_alg.ccm = val,
        "na_other" => s.neg_aead_alg.other = val,
        "hb_neg" => s.heartbeat_negotiated = val,
        "adv_rc4" => s.adv_rc4 = val,
        "adv_cbc" => s.adv_cbc = val,
        "adv_aead" => s.adv_aead = val,
        "adv_des" => s.adv_des = val,
        "adv_3des" => s.adv_3des = val,
        "adv_export" => s.adv_export = val,
        "adv_anon" => s.adv_anon = val,
        "adv_null" => s.adv_null = val,
        "adv_fs" => s.adv_fs = val,
        "adv_hb" => s.adv_heartbeat = val,
        "adv_tls13" => s.adv_tls13 = val,
        "aa_128gcm" => s.adv_aead_alg.aes128gcm = val,
        "aa_256gcm" => s.adv_aead_alg.aes256gcm = val,
        "aa_chacha" => s.adv_aead_alg.chacha = val,
        "aa_ccm" => s.adv_aead_alg.ccm = val,
        "aa_other" => s.adv_aead_alg.other = val,
        "pa_sum" => set_pos_sum(&mut s.pos_aead, val),
        "pa_n" => set_pos_n(&mut s.pos_aead, val),
        "pc_sum" => set_pos_sum(&mut s.pos_cbc, val),
        "pc_n" => set_pos_n(&mut s.pos_cbc, val),
        "pr_sum" => set_pos_sum(&mut s.pos_rc4, val),
        "pr_n" => set_pos_n(&mut s.pos_rc4, val),
        "pd_sum" => set_pos_sum(&mut s.pos_des, val),
        "pd_n" => set_pos_n(&mut s.pos_des, val),
        "p3_sum" => set_pos_sum(&mut s.pos_3des, val),
        "p3_n" => set_pos_n(&mut s.pos_3des, val),
        _ => {}
    }
}

fn write_map(out: &mut String, tag: &str, map: &HashMap<u16, u64>) {
    let mut entries: Vec<_> = map.iter().collect();
    entries.sort();
    for (key, val) in entries {
        out.push_str(&format!("\t{tag}:{key}={val}"));
    }
}

/// One `month\t<k=v>...` record line (no trailing newline), shared
/// between the aggregate store and the per-month checkpoint files.
pub(crate) fn month_line(month: &Month, stats: &MonthlyStats) -> String {
    let mut out = month.to_string();
    for (key, val) in SCALARS.iter().zip(scalar_values(stats)) {
        out.push_str(&format!("\t{key}={val}"));
    }
    write_map(&mut out, "curve", &stats.curves);
    write_map(&mut out, "sv", &stats.supported_versions_values);
    write_map(&mut out, "ext", &stats.adv_extensions);
    out
}

/// Parse one [`month_line`] record. Unknown scalar keys are ignored
/// (forward compatibility); structural damage returns `None`.
/// `fp_flags` is not part of this codec — the checkpoint format
/// carries it on separate lines.
pub(crate) fn parse_month_line(line: &str) -> Option<(Month, MonthlyStats)> {
    let mut fields = line.split('\t');
    let month: Month = fields.next()?.parse().ok()?;
    let mut stats = MonthlyStats::default();
    for field in fields {
        let (key, val) = field.split_once('=')?;
        let val: u64 = val.parse().ok()?;
        if let Some((tag, map_key)) = key.split_once(':') {
            let map_key: u16 = map_key.parse().ok()?;
            let map = match tag {
                "curve" => &mut stats.curves,
                "sv" => &mut stats.supported_versions_values,
                "ext" => &mut stats.adv_extensions,
                _ => return None,
            };
            map.insert(map_key, val);
        } else {
            apply_scalar(&mut stats, key, val);
        }
    }
    Some((month, stats))
}

/// Serialise the monthly counters to the line-oriented text format.
pub fn to_text(agg: &NotaryAggregate) -> String {
    let mut out = String::from("# tlscope notary aggregate v1\n");
    for (month, stats) in agg.iter_months() {
        out.push_str(&month_line(month, stats));
        out.push('\n');
    }
    out
}

/// Errors from [`from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Missing or wrong header line.
    BadHeader,
    /// A line failed to parse; carries the 1-based line number.
    BadLine(usize),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::BadHeader => write!(f, "missing 'tlscope notary aggregate' header"),
            StoreError::BadLine(n) => write!(f, "malformed record on line {n}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Reload monthly counters from the text format.
///
/// Fingerprint-level state is not persisted; the returned aggregate has
/// empty sighting/coverage tables (see module docs).
pub fn from_text(text: &str) -> Result<NotaryAggregate, StoreError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, header)) if header.starts_with("# tlscope notary aggregate") => {}
        _ => return Err(StoreError::BadHeader),
    }
    let mut agg = NotaryAggregate::new();
    for (idx, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let (month, stats) = parse_month_line(line).ok_or(StoreError::BadLine(idx + 1))?;
        agg.insert_month(month, stats);
    }
    Ok(agg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlscope_chron::Month;
    use tlscope_traffic::{FaultInjector, Generator, TrafficConfig};

    fn sample_aggregate() -> NotaryAggregate {
        let g = Generator::new(TrafficConfig {
            seed: 21,
            connections_per_month: 300,
            faults: FaultInjector::none(),
        });
        let flows = g
            .months(Month::ym(2015, 1), Month::ym(2015, 3))
            .flat_map(|(_, evs)| evs.into_iter())
            // `TappedFlow::from` is unusable here: unit tests are a
            // separate compilation of this crate, and the traffic
            // crate's From impl targets the library build's type.
            .map(|ev| crate::TappedFlow {
                date: ev.date,
                port: ev.port,
                client: ev.client_flow,
                server: ev.server_flow,
            });
        crate::ingest_serial(flows)
    }

    #[test]
    fn roundtrip_preserves_every_counter() {
        let agg = sample_aggregate();
        let text = to_text(&agg);
        let back = from_text(&text).unwrap();
        assert_eq!(back.iter_months().count(), agg.iter_months().count());
        for ((ma, sa), (mb, sb)) in agg.iter_months().zip(back.iter_months()) {
            assert_eq!(ma, mb);
            assert_eq!(scalar_values(sa), scalar_values(sb), "{ma}");
            assert_eq!(sa.curves, sb.curves, "{ma}");
            assert_eq!(sa.supported_versions_values, sb.supported_versions_values);
            assert_eq!(sa.adv_extensions, sb.adv_extensions);
        }
        // And the reloaded aggregate drives figures identically.
        let text2 = to_text(&back);
        assert_eq!(text, text2);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(from_text("").unwrap_err(), StoreError::BadHeader);
        assert_eq!(from_text("nonsense\n").unwrap_err(), StoreError::BadHeader);
        let bad = "# tlscope notary aggregate v1\n2015-01\ttotal=x\n";
        assert_eq!(from_text(bad).unwrap_err(), StoreError::BadLine(2));
        let bad = "# tlscope notary aggregate v1\nnot-a-month\ttotal=1\n";
        assert_eq!(from_text(bad).unwrap_err(), StoreError::BadLine(2));
    }

    #[test]
    fn unknown_scalar_keys_are_ignored_for_forward_compat() {
        let text = "# tlscope notary aggregate v1\n2015-01\ttotal=5\tfuture_counter=9\n";
        let agg = from_text(text).unwrap();
        assert_eq!(agg.month(Month::ym(2015, 1)).unwrap().total, 5);
    }

    #[test]
    fn scalar_schema_is_complete() {
        // Every scalar named in SCALARS must be applied by apply_scalar:
        // writing a value of 7 for each key must reproduce on reload.
        let mut stats = MonthlyStats::default();
        for key in SCALARS {
            apply_scalar(&mut stats, key, 7);
        }
        assert!(scalar_values(&stats).iter().all(|v| *v == 7));
    }
}
