//! Flow-buffer recycling for the channel path.
//!
//! The fused study runner ingests borrowed bytes and never allocates
//! a flow buffer; but when flows cross the [`ingest_parallel`]
//! channel they must own their bytes. This module closes that gap:
//! flow byte buffers and the batch vectors that carry them are
//! recycled through bounded return channels held by a [`FlowPool`],
//! so the steady state of a pooled run performs no per-flow or
//! per-batch allocation — buffers are allocated once, then circulate
//! producer → worker → pool → producer for the rest of the run.
//!
//! Ownership model:
//! * the **producer** takes buffers from the pool (allocating only
//!   when the pool is dry), copies each source flow in, and sends
//!   filled [`PooledBatch`]es to the workers;
//! * a **worker** only ever borrows the batch's bytes — extraction
//!   goes through the same borrowed path as the fused runner — and
//!   then drops the batch;
//! * **drop recycles**: dropping a [`FlowBuf`] clears it and returns
//!   it to the pool's buffer channel, and dropping a [`PooledBatch`]
//!   first releases its flows' buffers, then returns the emptied
//!   vector itself. This holds on every path — merged batches,
//!   bisected retries, and quarantined poison flows alike — because
//!   the batch stays owned by the worker loop across the panic
//!   boundary.
//!
//! The return channels are bounded ([`FlowPool::for_config`] sizes
//! them to the pipeline's maximum in-flight population); if a return
//! ever finds the pool full the buffer is simply dropped and counted,
//! never blocked on.
//!
//! [`ingest_parallel`]: crate::pipeline::ingest_parallel

use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc, Mutex};

use tlscope_chron::Date;
use tlscope_durable::{install_quiet_panic_hook, quiet_thread_panics};

use crate::aggregate::NotaryAggregate;
use crate::metrics::PipelineMetrics;
use crate::pipeline::{
    ingest_borrowed, supervise_batch, PipelineConfig, TappedFlow, CHANNEL_DEPTH,
};

/// Shared recycling counters, updated with relaxed atomics (they are
/// diagnostics, not synchronization).
#[derive(Debug, Default)]
struct PoolCounters {
    bufs_created: AtomicU64,
    bufs_recycled: AtomicU64,
    bufs_dropped: AtomicU64,
    batches_created: AtomicU64,
    batches_recycled: AtomicU64,
    batches_dropped: AtomicU64,
}

/// A point-in-time copy of a pool's recycling counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Flow buffers allocated fresh because the pool was dry.
    pub bufs_created: u64,
    /// Flow buffers taken from the pool instead of allocated.
    pub bufs_recycled: u64,
    /// Flow buffers discarded because the return channel was full.
    pub bufs_dropped: u64,
    /// Batch vectors allocated fresh because the pool was dry.
    pub batches_created: u64,
    /// Batch vectors taken from the pool instead of allocated.
    pub batches_recycled: u64,
    /// Batch vectors discarded because the return channel was full.
    pub batches_dropped: u64,
}

impl PoolStats {
    /// Counter-wise difference to an earlier snapshot of the same
    /// pool: the activity between the two readings.
    pub fn delta_since(&self, before: &PoolStats) -> PoolStats {
        PoolStats {
            bufs_created: self.bufs_created.saturating_sub(before.bufs_created),
            bufs_recycled: self.bufs_recycled.saturating_sub(before.bufs_recycled),
            bufs_dropped: self.bufs_dropped.saturating_sub(before.bufs_dropped),
            batches_created: self.batches_created.saturating_sub(before.batches_created),
            batches_recycled: self
                .batches_recycled
                .saturating_sub(before.batches_recycled),
            batches_dropped: self.batches_dropped.saturating_sub(before.batches_dropped),
        }
    }
}

/// A recycling pool for flow byte buffers and batch vectors.
///
/// The pool is single-consumer: it lives with the producer, which is
/// the only side that *takes* buffers; workers return them from any
/// thread through the cloneable senders carried inside each handle.
#[derive(Debug)]
pub struct FlowPool {
    buf_rx: Receiver<Vec<u8>>,
    buf_tx: SyncSender<Vec<u8>>,
    batch_rx: Receiver<Vec<PooledFlow>>,
    batch_tx: SyncSender<Vec<PooledFlow>>,
    counters: Arc<PoolCounters>,
}

impl FlowPool {
    /// A pool whose return channels hold at most `buf_slots` byte
    /// buffers and `batch_slots` batch vectors.
    pub fn new(buf_slots: usize, batch_slots: usize) -> Self {
        let (buf_tx, buf_rx) = mpsc::sync_channel(buf_slots.max(1));
        let (batch_tx, batch_rx) = mpsc::sync_channel(batch_slots.max(1));
        FlowPool {
            buf_rx,
            buf_tx,
            batch_rx,
            batch_tx,
            counters: Arc::new(PoolCounters::default()),
        }
    }

    /// A pool sized for `cfg`'s maximum in-flight population: every
    /// buffer of every batch that can simultaneously sit in the
    /// dispatch channel, in the producer, and in each worker fits in
    /// the return channels, so a steady-state run never drops a
    /// returned buffer.
    pub fn for_config(cfg: &PipelineConfig) -> Self {
        let batches_in_flight = CHANNEL_DEPTH + cfg.workers() + 2;
        FlowPool::new(batches_in_flight * cfg.batch() * 2, batches_in_flight)
    }

    /// Take a buffer from the pool (or allocate a fresh one) and fill
    /// it with a copy of `bytes`.
    pub fn flow_buf(&self, bytes: &[u8]) -> FlowBuf {
        let buf = match self.buf_rx.try_recv() {
            Ok(b) => {
                self.counters.bufs_recycled.fetch_add(1, Ordering::Relaxed);
                b
            }
            Err(_) => {
                self.counters.bufs_created.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        };
        let mut fb = FlowBuf {
            buf,
            ret: self.buf_tx.clone(),
            counters: Arc::clone(&self.counters),
        };
        fb.fill(bytes);
        fb
    }

    /// Take an empty batch vector from the pool (or allocate one
    /// sized for `capacity` flows).
    pub fn batch(&self, capacity: usize) -> PooledBatch {
        let items = match self.batch_rx.try_recv() {
            Ok(v) => {
                self.counters
                    .batches_recycled
                    .fetch_add(1, Ordering::Relaxed);
                v
            }
            Err(_) => {
                self.counters
                    .batches_created
                    .fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(capacity)
            }
        };
        PooledBatch {
            items,
            ret: self.batch_tx.clone(),
            counters: Arc::clone(&self.counters),
        }
    }

    /// Current recycling counters.
    pub fn stats(&self) -> PoolStats {
        let c = &self.counters;
        PoolStats {
            bufs_created: c.bufs_created.load(Ordering::Relaxed),
            bufs_recycled: c.bufs_recycled.load(Ordering::Relaxed),
            bufs_dropped: c.bufs_dropped.load(Ordering::Relaxed),
            batches_created: c.batches_created.load(Ordering::Relaxed),
            batches_recycled: c.batches_recycled.load(Ordering::Relaxed),
            batches_dropped: c.batches_dropped.load(Ordering::Relaxed),
        }
    }
}

/// An owned, recyclable flow byte buffer: clears itself and returns
/// to its pool on drop, wherever that drop happens.
#[derive(Debug)]
pub struct FlowBuf {
    buf: Vec<u8>,
    ret: SyncSender<Vec<u8>>,
    counters: Arc<PoolCounters>,
}

impl FlowBuf {
    /// Replace the contents with a copy of `bytes`, reusing capacity.
    pub fn fill(&mut self, bytes: &[u8]) {
        self.buf.clear();
        self.buf.extend_from_slice(bytes);
    }
}

impl Deref for FlowBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl Drop for FlowBuf {
    fn drop(&mut self) {
        let mut buf = std::mem::take(&mut self.buf);
        buf.clear();
        if buf.capacity() > 0 && self.ret.try_send(buf).is_err() {
            self.counters.bufs_dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A flow whose byte buffers are pool-recycled.
#[derive(Debug)]
pub struct PooledFlow {
    /// Capture date.
    pub date: Date,
    /// Destination port.
    pub port: u16,
    /// Client-to-server bytes.
    pub client: FlowBuf,
    /// Server-to-client bytes, when captured.
    pub server: Option<FlowBuf>,
}

/// A recyclable batch: on drop it releases its flows' buffers back to
/// the pool and then returns the emptied vector itself for reuse.
#[derive(Debug)]
pub struct PooledBatch {
    items: Vec<PooledFlow>,
    ret: SyncSender<Vec<PooledFlow>>,
    counters: Arc<PoolCounters>,
}

impl PooledBatch {
    /// Append a flow to the batch.
    pub fn push(&mut self, flow: PooledFlow) {
        self.items.push(flow);
    }

    /// Flows currently in the batch.
    pub fn flows(&self) -> &[PooledFlow] {
        &self.items
    }

    /// Number of flows in the batch.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the batch holds no flows.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl Drop for PooledBatch {
    fn drop(&mut self) {
        let mut items = std::mem::take(&mut self.items);
        // Dropping the flows returns their FlowBufs to the pool; the
        // emptied vector keeps its capacity for the next batch.
        items.clear();
        if items.capacity() > 0 && self.ret.try_send(items).is_err() {
            self.counters
                .batches_dropped
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Extract one pooled flow and fold it into `agg` — the pooled
/// buffers are only borrowed, exactly like the fused fast path. Leaves
/// a flight-recorder breadcrumb per flow (this path runs under the
/// supervisor's panic boundary, so a poison flow's meta survives into
/// the postmortem report).
pub fn ingest_pooled_flow(agg: &mut NotaryAggregate, flow: &PooledFlow) {
    tlscope_obs::flight::record(
        "flow",
        flow.date.to_epoch_days() as u64,
        flow.port as u64,
        flow.client.len() as u64,
    );
    ingest_borrowed(
        agg,
        flow.date,
        flow.port,
        &flow.client,
        flow.server.as_deref(),
    );
}

/// Producer-side handle for feeding borrowed flows into the pooled
/// pipeline: each pushed flow is copied into recycled buffers,
/// batched into a recycled vector, and dispatched when the batch
/// fills.
pub struct PooledFeeder<'a> {
    pool: &'a FlowPool,
    tx: &'a SyncSender<PooledBatch>,
    metrics: &'a PipelineMetrics,
    batch: usize,
    cur: Option<PooledBatch>,
    stopped: bool,
}

impl PooledFeeder<'_> {
    /// Copy a borrowed flow into pooled buffers and enqueue it.
    pub fn push(&mut self, date: Date, port: u16, client: &[u8], server: Option<&[u8]>) {
        if self.stopped {
            return;
        }
        let flow = PooledFlow {
            date,
            port,
            client: self.pool.flow_buf(client),
            server: server.map(|s| self.pool.flow_buf(s)),
        };
        let batch = self.batch;
        let cur = self.cur.get_or_insert_with(|| self.pool.batch(batch));
        cur.push(flow);
        if cur.len() >= batch {
            self.flush();
        }
    }

    /// Dispatch the partially-filled batch, if any.
    fn flush(&mut self) {
        let Some(b) = self.cur.take() else { return };
        if b.is_empty() {
            return;
        }
        self.metrics.record_dispatched(b.len() as u64);
        if self.tx.send(b).is_err() {
            // Every worker is gone; stop producing.
            self.stopped = true;
        }
    }
}

/// The pool-recycled supervised pipeline, generic over the per-flow
/// processor (as [`ingest_supervised_with`]) and fed by a producer
/// callback instead of an iterator, so callers can push *borrowed*
/// flow bytes straight from generation scratch — the pool copy is the
/// only copy. Shares the batch supervision machinery with the owned
/// pipeline: panics bisect, poison flows quarantine, and
/// `dispatched = ingested + quarantined` holds exactly. Buffers of
/// quarantined flows are recycled like any other.
///
/// [`ingest_supervised_with`]: crate::pipeline::ingest_supervised_with
pub fn ingest_pooled_supervised<R, F>(
    pool: &FlowPool,
    cfg: &PipelineConfig,
    metrics: &PipelineMetrics,
    process: F,
    feed: impl FnOnce(&mut PooledFeeder<'_>) -> R,
) -> (NotaryAggregate, R)
where
    F: Fn(&mut NotaryAggregate, &PooledFlow) + Copy + Send + Sync,
{
    install_quiet_panic_hook();
    let stats_before = pool.stats();
    let (tx, rx) = mpsc::sync_channel::<PooledBatch>(CHANNEL_DEPTH);
    let rx = Arc::new(Mutex::new(rx));
    let mut result = NotaryAggregate::new();
    let mut fed = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.workers())
            .map(|_| {
                let rx = Arc::clone(&rx);
                scope.spawn(move || {
                    quiet_thread_panics(true);
                    let mut agg = NotaryAggregate::new();
                    loop {
                        let received = {
                            let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
                            guard.recv()
                        };
                        let Ok(batch) = received else { break };
                        supervise_batch(batch.flows(), 0, cfg, metrics, process, &mut agg);
                        // `batch` drops here: buffers and the vector
                        // go back to the pool.
                    }
                    agg
                })
            })
            .collect();
        drop(rx);
        let mut feeder = PooledFeeder {
            pool,
            tx: &tx,
            metrics,
            batch: cfg.batch(),
            cur: None,
            stopped: false,
        };
        fed = Some(feed(&mut feeder));
        feeder.flush();
        drop(tx);
        for h in handles {
            match h.join() {
                Ok(agg) => {
                    let started = std::time::Instant::now();
                    result.merge(agg);
                    metrics.record_merge(started.elapsed());
                }
                Err(_) => metrics.record_shard_lost(),
            }
        }
    });
    // Surface this run's pool activity (creates, recycles, and the
    // previously invisible full-channel drops) in the pipeline stats.
    metrics.record_pool(&pool.stats().delta_since(&stats_before));
    (result, fed.expect("feed ran inside the scope"))
}

/// Pooled supervised ingestion with the standard extraction
/// processor. The callback pushes borrowed flows; the result is
/// bit-identical to [`ingest_serial`] over the same sequence.
///
/// [`ingest_serial`]: crate::pipeline::ingest_serial
pub fn ingest_pooled_scope<R>(
    pool: &FlowPool,
    cfg: &PipelineConfig,
    metrics: &PipelineMetrics,
    feed: impl FnOnce(&mut PooledFeeder<'_>) -> R,
) -> (NotaryAggregate, R) {
    ingest_pooled_supervised(pool, cfg, metrics, ingest_pooled_flow, feed)
}

/// Pooled counterpart of [`ingest_batched`]: owned flows are copied
/// into pool buffers and ingested through the recycled channel path.
/// Exposed so equivalence tests can sweep worker and batch counts.
///
/// [`ingest_batched`]: crate::pipeline::ingest_batched
pub fn ingest_pooled(
    flows: impl IntoIterator<Item = TappedFlow>,
    workers: usize,
    batch: usize,
    metrics: &PipelineMetrics,
) -> NotaryAggregate {
    let cfg = PipelineConfig::clamped(workers, batch);
    let pool = FlowPool::for_config(&cfg);
    let (agg, ()) = ingest_pooled_scope(&pool, &cfg, metrics, |feeder| {
        for f in flows {
            feeder.push(f.date, f.port, &f.client, f.server.as_deref());
        }
    });
    agg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_flows(n: usize) -> Vec<TappedFlow> {
        (0..n)
            .map(|i| TappedFlow {
                date: Date::ymd(2016, 1, 1 + (i % 28) as u8),
                port: 443,
                client: vec![i as u8; 8 + i % 32],
                server: (i % 3 == 0).then(|| vec![0x15, i as u8]),
            })
            .collect()
    }

    #[test]
    fn buffers_circulate_through_the_pool() {
        let pool = FlowPool::new(4, 2);
        let b1 = pool.flow_buf(b"hello");
        assert_eq!(&*b1, b"hello");
        drop(b1);
        let b2 = pool.flow_buf(b"xy");
        assert_eq!(&*b2, b"xy");
        let s = pool.stats();
        assert_eq!(s.bufs_created, 1);
        assert_eq!(s.bufs_recycled, 1);
        assert_eq!(s.bufs_dropped, 0);
    }

    #[test]
    fn full_return_channel_drops_instead_of_blocking() {
        let pool = FlowPool::new(1, 1);
        let a = pool.flow_buf(b"a");
        let b = pool.flow_buf(b"b");
        drop(a); // fills the single return slot
        drop(b); // finds it full → dropped, not blocked
        let s = pool.stats();
        assert_eq!(s.bufs_dropped, 1);
    }

    #[test]
    fn empty_buffers_are_not_returned() {
        let pool = FlowPool::new(4, 2);
        drop(pool.flow_buf(b""));
        let s = pool.stats();
        // A capacity-0 Vec never hit the heap; returning it would just
        // occupy a slot with nothing to recycle.
        assert_eq!(s.bufs_dropped, 0);
        let refill = pool.flow_buf(b"z");
        assert_eq!(&*refill, b"z");
        assert_eq!(pool.stats().bufs_created, 2);
    }

    #[test]
    fn batch_drop_releases_flows_then_vector() {
        let pool = FlowPool::new(8, 2);
        let mut batch = pool.batch(4);
        batch.push(PooledFlow {
            date: Date::ymd(2016, 1, 1),
            port: 443,
            client: pool.flow_buf(b"client"),
            server: Some(pool.flow_buf(b"server")),
        });
        assert_eq!(batch.len(), 1);
        assert!(!batch.is_empty());
        drop(batch);
        let s = pool.stats();
        assert_eq!(s.bufs_created, 2);
        assert_eq!(s.bufs_dropped, 0);
        // Both buffers and the vector are back: the next batch and its
        // buffers come from the pool.
        let again = pool.batch(4);
        let buf = pool.flow_buf(b"re");
        assert_eq!(&*buf, b"re");
        let s = pool.stats();
        assert_eq!(s.batches_recycled, 1);
        assert_eq!(s.bufs_recycled, 1);
        drop((again, buf));
    }

    #[test]
    fn pooled_matches_serial_on_synthetic_flows() {
        let fs = synthetic_flows(700);
        let serial = crate::pipeline::ingest_serial(fs.clone());
        let metrics = PipelineMetrics::new();
        let pooled = ingest_pooled(fs, 3, 64, &metrics);
        assert_eq!(serial, pooled);
        let s = metrics.snapshot();
        assert_eq!(s.flows_dispatched, 700);
        assert_eq!(s.flows_ingested, 700);
        assert!(s.accounting_holds());
    }

    #[test]
    fn steady_state_reuses_buffers() {
        let cfg = PipelineConfig::clamped(2, 16);
        let pool = FlowPool::for_config(&cfg);
        let metrics = PipelineMetrics::new();
        // Enough flows that the producer outlives the channel's
        // in-flight population many times over: once the dispatch
        // channel fills, every further push runs against returning
        // buffers.
        let fs = synthetic_flows(20_000);
        let (_, ()) = ingest_pooled_scope(&pool, &cfg, &metrics, |feeder| {
            for f in &fs {
                feeder.push(f.date, f.port, &f.client, f.server.as_deref());
            }
        });
        let s = pool.stats();
        assert!(
            s.bufs_recycled > s.bufs_created,
            "steady state should be dominated by recycling: {s:?}"
        );
        assert_eq!(s.bufs_dropped, 0, "pool sized for the pipeline never drops");
        assert!(s.batches_recycled > 0);
    }

    #[test]
    fn quarantined_flows_return_their_buffers() {
        let fs = synthetic_flows(300);
        let poison_len = fs[150].client.len();
        let poison_byte = fs[150].client[0];
        let poison_count = fs
            .iter()
            .filter(|f| f.client.len() == poison_len && f.client[0] == poison_byte)
            .count() as u64;
        let cfg = PipelineConfig::clamped(2, 32);
        let pool = FlowPool::for_config(&cfg);
        let metrics = PipelineMetrics::new();
        let (agg, ()) = ingest_pooled_supervised(
            &pool,
            &cfg,
            &metrics,
            move |agg: &mut NotaryAggregate, flow: &PooledFlow| {
                if flow.client.len() == poison_len && flow.client[0] == poison_byte {
                    panic!("poisoned flow");
                }
                agg.not_tls += 1;
            },
            |feeder| {
                for f in &fs {
                    feeder.push(f.date, f.port, &f.client, f.server.as_deref());
                }
            },
        );
        let s = metrics.snapshot();
        assert_eq!(s.shards_lost, 0);
        assert_eq!(s.flows_quarantined, poison_count);
        assert_eq!(agg.not_tls, 300 - poison_count);
        assert!(s.accounting_holds());
        // Poisoned batches went through bisection; their buffers still
        // came home — nothing was dropped, and the pool hands back a
        // recycled buffer (not a fresh one) now that the run is over.
        let before = pool.stats();
        assert_eq!(before.bufs_dropped, 0);
        let reused = pool.flow_buf(b"post-run");
        assert_eq!(&*reused, b"post-run");
        assert_eq!(pool.stats().bufs_recycled, before.bufs_recycled + 1);
    }
}
