//! Supervised parallel ingestion pipeline.
//!
//! The real Notary fans captured flows out to parallel Bro workers; we
//! mirror that with a batched MPMC pipeline on scoped threads: one
//! producer chunks flows into batches of [`DEFAULT_BATCH`] and feeds
//! them over a bounded channel to N workers, each extracting and
//! aggregating locally, with the partial aggregates merged at the end.
//! Batching amortises channel synchronisation over hundreds of flows,
//! which is what lets throughput scale with workers instead of being
//! capped by per-flow send/recv overhead.
//!
//! Collection is best-effort, like the paper's (§3.1) — but unlike the
//! paper's cluster we *supervise* it: a processing panic no longer
//! loses the worker's whole shard. Each batch is processed into a
//! fresh partial aggregate behind a panic boundary; when a batch
//! panics, the worker's batch state is discarded and rebuilt (counted
//! as a respawn in [`PipelineMetrics`]) and the failed batch is
//! re-dispatched by **bisection** — halves retried recursively, with
//! optional backoff — until the individual poison flow(s) are isolated
//! and quarantined. The end-to-end accounting invariant
//! `dispatched = ingested + quarantined` is exact and tested.

use std::panic::AssertUnwindSafe;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tlscope_chron::Date;
use tlscope_durable::{install_quiet_panic_hook, quiet_thread_panics};

use crate::aggregate::NotaryAggregate;
use crate::conn::{extract_into, with_thread_scratch};
use crate::metrics::PipelineMetrics;

/// A flow handed to the monitor: everything a tap knows.
#[derive(Debug, Clone)]
pub struct TappedFlow {
    /// Capture date.
    pub date: Date,
    /// Destination port.
    pub port: u16,
    /// Client-to-server bytes.
    pub client: Vec<u8>,
    /// Server-to-client bytes, when captured.
    pub server: Option<Vec<u8>>,
}

/// Flows per channel batch: large enough to amortise channel
/// synchronisation, small enough to keep workers load-balanced.
pub const DEFAULT_BATCH: usize = 256;

/// Batches buffered in the producer→worker channel before the
/// producer blocks (bounds memory at roughly
/// `CHANNEL_DEPTH × batch × flow size`).
pub(crate) const CHANNEL_DEPTH: usize = 64;

/// Retry backoff is doubled per bisection level but never exceeds
/// this, so a deeply poisoned batch cannot stall a worker for long.
const MAX_BACKOFF: Duration = Duration::from_millis(100);

/// Invalid pipeline configuration (the documented, non-panicking
/// replacement for the old `assert!(workers > 0)` crash path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineConfigError {
    /// `workers` was zero.
    ZeroWorkers,
    /// `batch` was zero.
    ZeroBatch,
}

impl std::fmt::Display for PipelineConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineConfigError::ZeroWorkers => write!(f, "pipeline needs at least one worker"),
            PipelineConfigError::ZeroBatch => write!(f, "pipeline needs a positive batch size"),
        }
    }
}

impl std::error::Error for PipelineConfigError {}

/// Validated pipeline configuration.
///
/// Invariants (`workers ≥ 1`, `batch ≥ 1`) are enforced at
/// construction, so the pipeline itself has no panicking
/// precondition: a caller with a zero-worker config gets a
/// [`PipelineConfigError`] from [`PipelineConfig::new`] instead of a
/// crashed study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    workers: usize,
    batch: usize,
    retry_backoff: Duration,
}

impl Default for PipelineConfig {
    /// Four workers, [`DEFAULT_BATCH`] flows per batch, no backoff.
    fn default() -> Self {
        PipelineConfig {
            workers: 4,
            batch: DEFAULT_BATCH,
            retry_backoff: Duration::ZERO,
        }
    }
}

impl PipelineConfig {
    /// Checked constructor: rejects zero workers / zero batch.
    pub fn new(workers: usize, batch: usize) -> Result<Self, PipelineConfigError> {
        if workers == 0 {
            return Err(PipelineConfigError::ZeroWorkers);
        }
        if batch == 0 {
            return Err(PipelineConfigError::ZeroBatch);
        }
        Ok(PipelineConfig {
            workers,
            batch,
            retry_backoff: Duration::ZERO,
        })
    }

    /// Lenient constructor: zero values are clamped to 1 (documented
    /// alternative to the error path for best-effort callers).
    pub fn clamped(workers: usize, batch: usize) -> Self {
        PipelineConfig {
            workers: workers.max(1),
            batch: batch.max(1),
            retry_backoff: Duration::ZERO,
        }
    }

    /// Base delay before a failed batch's halves are re-dispatched
    /// (doubled per bisection level, capped at 100 ms). Zero — the
    /// default — retries immediately.
    pub fn with_retry_backoff(mut self, backoff: Duration) -> Self {
        self.retry_backoff = backoff;
        self
    }

    /// Worker thread count (≥ 1).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Flows per channel batch (≥ 1).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Configured base retry backoff.
    pub fn retry_backoff(&self) -> Duration {
        self.retry_backoff
    }
}

/// Extract one flow and fold it into `agg`.
///
/// Thin owned wrapper over [`ingest_borrowed`], with a flight-recorder
/// breadcrumb per flow: if this flow panics the extractor, the
/// supervisor's postmortem report shows exactly which flow died. (The
/// fused borrowed fast path skips the breadcrumb by design — it never
/// runs under a panic boundary.)
pub fn ingest_flow(agg: &mut NotaryAggregate, flow: &TappedFlow) {
    tlscope_obs::flight::record(
        "flow",
        flow.date.to_epoch_days() as u64,
        flow.port as u64,
        flow.client.len() as u64,
    );
    ingest_borrowed(
        agg,
        flow.date,
        flow.port,
        &flow.client,
        flow.server.as_deref(),
    );
}

/// Extract one borrowed flow and fold it into `agg` — the zero-copy
/// fast path. The connection record is refilled into this thread's
/// shared [`ExtractScratch`](crate::conn::ExtractScratch) slot and
/// aggregated by reference, so the steady state allocates neither
/// flow buffers nor record vectors. The fused study runner folds the
/// generator's scratch borrows straight through here.
pub fn ingest_borrowed(
    agg: &mut NotaryAggregate,
    date: Date,
    port: u16,
    client: &[u8],
    server: Option<&[u8]>,
) {
    with_thread_scratch(
        |scratch| match extract_into(date, port, client, server, scratch) {
            Ok(rec) => agg.ingest(rec),
            Err(e) => agg.ingest_failure(e),
        },
    )
}

/// Ingest a stream of flows on the current thread.
pub fn ingest_serial(flows: impl IntoIterator<Item = TappedFlow>) -> NotaryAggregate {
    let mut agg = NotaryAggregate::new();
    for flow in flows {
        ingest_flow(&mut agg, &flow);
    }
    agg
}

/// [`ingest_serial`] with pipeline accounting.
pub fn ingest_serial_metered(
    flows: impl IntoIterator<Item = TappedFlow>,
    metrics: &PipelineMetrics,
) -> NotaryAggregate {
    let mut agg = NotaryAggregate::new();
    let mut n = 0u64;
    let started = Instant::now();
    for flow in flows {
        ingest_flow(&mut agg, &flow);
        n += 1;
    }
    metrics.record_dispatched(n);
    metrics.record_batch(n, started.elapsed());
    metrics.record_parse_failures(agg.not_tls, agg.garbled_client);
    metrics.record_salvaged(agg.salvaged);
    crate::conn::flush_parse_cache_metrics(metrics);
    agg
}

/// Ingest a stream of flows on `workers` threads; the result is
/// identical to [`ingest_serial`] (aggregation is commutative).
/// `workers == 0` is clamped to 1.
pub fn ingest_parallel(
    flows: impl IntoIterator<Item = TappedFlow>,
    workers: usize,
) -> NotaryAggregate {
    ingest_parallel_metered(flows, workers, &PipelineMetrics::new())
}

/// [`ingest_parallel`] with pipeline accounting: batches, per-stage
/// wall-clock, parse-failure classes, and the supervised-recovery
/// counters (retries, respawns, quarantined flows).
pub fn ingest_parallel_metered(
    flows: impl IntoIterator<Item = TappedFlow>,
    workers: usize,
    metrics: &PipelineMetrics,
) -> NotaryAggregate {
    ingest_with(
        flows,
        &PipelineConfig::clamped(workers, DEFAULT_BATCH),
        metrics,
    )
}

/// [`ingest_parallel_metered`] with an explicit batch size — exposed
/// so equivalence tests can sweep batch sizes (any batch size must
/// produce a result identical to [`ingest_serial`]). Zero workers or
/// batch are clamped to 1 instead of panicking.
pub fn ingest_batched(
    flows: impl IntoIterator<Item = TappedFlow>,
    workers: usize,
    batch: usize,
    metrics: &PipelineMetrics,
) -> NotaryAggregate {
    ingest_with(flows, &PipelineConfig::clamped(workers, batch), metrics)
}

/// Ingest with a validated [`PipelineConfig`].
pub fn ingest_with(
    flows: impl IntoIterator<Item = TappedFlow>,
    cfg: &PipelineConfig,
    metrics: &PipelineMetrics,
) -> NotaryAggregate {
    ingest_supervised_with(flows, cfg, metrics, ingest_flow)
}

/// Process one slice behind a panic boundary into a fresh partial
/// aggregate, so a mid-flow panic can never leave half-ingested state
/// in the worker's running aggregate.
fn process_slice<T, F>(flows: &[T], process: F) -> std::thread::Result<NotaryAggregate>
where
    F: Fn(&mut NotaryAggregate, &T) + Copy,
{
    std::panic::catch_unwind(AssertUnwindSafe(|| {
        let mut agg = NotaryAggregate::new();
        for flow in flows {
            process(&mut agg, flow);
        }
        agg
    }))
}

/// Supervised processing of one batch: on success the partial is
/// merged and accounted; on panic the batch is bisected and both
/// halves re-dispatched (with capped exponential backoff) until the
/// poison flow(s) are isolated and quarantined. Generic over the flow
/// representation so the pool-recycled channel path shares the exact
/// recovery machinery.
pub(crate) fn supervise_batch<T, F>(
    batch: &[T],
    depth: u32,
    cfg: &PipelineConfig,
    metrics: &PipelineMetrics,
    process: F,
    agg: &mut NotaryAggregate,
) where
    F: Fn(&mut NotaryAggregate, &T) + Copy,
{
    // Process-unique batch id, purely for flight-recorder correlation.
    static BATCH_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let batch_id = BATCH_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    tlscope_obs::flight::record("batch", batch_id, batch.len() as u64, depth as u64);
    let started = Instant::now();
    match process_slice(batch, process) {
        Ok(partial) => {
            metrics.record_batch(batch.len() as u64, started.elapsed());
            metrics.record_parse_failures(partial.not_tls, partial.garbled_client);
            metrics.record_salvaged(partial.salvaged);
            crate::conn::flush_parse_cache_metrics(metrics);
            agg.merge(partial);
        }
        Err(_) => {
            // The worker's batch context died with the panic; it is
            // rebuilt from scratch for the retries below — that
            // discard-and-rebuild is the respawn.
            metrics.record_worker_respawn();
            if batch.len() == 1 {
                metrics.record_quarantined(1);
                tlscope_obs::flight::report(&format!(
                    "poison flow quarantined (batch {batch_id}, bisection depth {depth})"
                ));
                return;
            }
            if !cfg.retry_backoff.is_zero() {
                let backoff = cfg
                    .retry_backoff
                    .saturating_mul(1u32 << depth.min(10))
                    .min(MAX_BACKOFF);
                std::thread::sleep(backoff);
            }
            let mid = batch.len() / 2;
            for half in [&batch[..mid], &batch[mid..]] {
                metrics.record_batch_retry();
                supervise_batch(half, depth + 1, cfg, metrics, process, agg);
            }
        }
    }
}

/// The supervised batched worker pipeline, generic over the per-flow
/// processor so the recovery path is testable (and benchmarkable)
/// with a deliberately faulty processor.
///
/// Guarantees, all visible through `metrics`:
/// * no shard loss — worker panics are contained per batch
///   (`shards_lost` stays 0 unless something outside the processing
///   boundary fails);
/// * poison isolation — a flow that panics the processor is bisected
///   down to and quarantined alone; its batch neighbours are ingested;
/// * exact accounting — `dispatched = ingested + quarantined`.
pub fn ingest_supervised_with<T, F>(
    flows: impl IntoIterator<Item = T>,
    cfg: &PipelineConfig,
    metrics: &PipelineMetrics,
    process: F,
) -> NotaryAggregate
where
    T: Send,
    F: Fn(&mut NotaryAggregate, &T) + Copy + Send + Sync,
{
    install_quiet_panic_hook();
    let (workers, batch) = (cfg.workers(), cfg.batch());
    let (tx, rx) = mpsc::sync_channel::<Vec<T>>(CHANNEL_DEPTH);
    // Workers share the receiver through Arc so that if every worker
    // somehow died, the channel would disconnect and the producer
    // unblock with a send error instead of deadlocking.
    let rx = Arc::new(Mutex::new(rx));
    let mut result = NotaryAggregate::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                scope.spawn(move || {
                    quiet_thread_panics(true);
                    let mut agg = NotaryAggregate::new();
                    loop {
                        let received = {
                            let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
                            guard.recv()
                        };
                        let Ok(batch) = received else { break };
                        supervise_batch(&batch, 0, cfg, metrics, process, &mut agg);
                    }
                    agg
                })
            })
            .collect();
        drop(rx);
        let mut buf = Vec::with_capacity(batch);
        for flow in flows {
            buf.push(flow);
            if buf.len() == batch {
                metrics.record_dispatched(batch as u64);
                if tx
                    .send(std::mem::replace(&mut buf, Vec::with_capacity(batch)))
                    .is_err()
                {
                    // Every worker is gone; stop producing.
                    buf.clear();
                    break;
                }
            }
        }
        if !buf.is_empty() {
            metrics.record_dispatched(buf.len() as u64);
            let _ = tx.send(buf);
        }
        drop(tx);
        for h in handles {
            match h.join() {
                Ok(agg) => {
                    let started = Instant::now();
                    result.merge(agg);
                    metrics.record_merge(started.elapsed());
                }
                Err(_) => metrics.record_shard_lost(),
            }
        }
    });
    result
}

// Generator-driven equivalence tests live in `tests/pipeline.rs`: the
// traffic crate's `From<ConnectionEvent> for TappedFlow` impl targets
// the *library* build of this crate, which unit tests (a separate
// compilation of the same source) cannot name. Unit tests here cover
// the worker machinery itself with synthetic flows.
#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic non-TLS flows — the worker machinery doesn't care
    /// about flow contents; `ingest_flow` classifies these as not-TLS.
    fn synthetic_flows(n: usize) -> Vec<TappedFlow> {
        (0..n)
            .map(|i| TappedFlow {
                date: Date::ymd(2016, 1, 1 + (i % 28) as u8),
                port: 443,
                client: vec![i as u8; 8 + i % 32],
                server: None,
            })
            .collect()
    }

    /// A processor that counts every flow into the not-TLS bucket —
    /// cheap, deterministic, and visible through the public field.
    fn count_flow(agg: &mut NotaryAggregate, _flow: &TappedFlow) {
        agg.not_tls += 1;
    }

    #[test]
    fn config_rejects_zero_values() {
        assert_eq!(
            PipelineConfig::new(0, 64),
            Err(PipelineConfigError::ZeroWorkers)
        );
        assert_eq!(
            PipelineConfig::new(2, 0),
            Err(PipelineConfigError::ZeroBatch)
        );
        let cfg = PipelineConfig::new(2, 64).unwrap();
        assert_eq!((cfg.workers(), cfg.batch()), (2, 64));
        let clamped = PipelineConfig::clamped(0, 0);
        assert_eq!((clamped.workers(), clamped.batch()), (1, 1));
        assert!(!PipelineConfigError::ZeroWorkers.to_string().is_empty());
        assert!(!PipelineConfigError::ZeroBatch.to_string().is_empty());
    }

    #[test]
    fn zero_worker_request_no_longer_crashes() {
        // The old pipeline asserted on this; now it is clamped and the
        // run completes with full accounting.
        let metrics = PipelineMetrics::new();
        let agg = ingest_batched(synthetic_flows(100), 0, 0, &metrics);
        assert_eq!(agg.not_tls, 100);
        assert!(metrics.snapshot().accounting_holds());
    }

    #[test]
    fn batches_are_sized_and_metered() {
        let metrics = PipelineMetrics::new();
        // 700 flows at a 256-flow batch = ceil(700/256) = 3 batches.
        let agg = ingest_supervised_with(
            synthetic_flows(700),
            &PipelineConfig::new(3, DEFAULT_BATCH).unwrap(),
            &metrics,
            count_flow,
        );
        assert_eq!(agg.not_tls, 700);
        let s = metrics.snapshot();
        assert_eq!(s.flows_dispatched, 700);
        assert_eq!(s.flows_ingested, 700);
        assert_eq!(s.flows_lost(), 0);
        assert_eq!(s.batches_ingested, 3);
        assert_eq!(s.shards_lost, 0);
        assert!(s.ingest_nanos > 0);
    }

    #[test]
    fn parse_failures_are_metered_by_class() {
        let metrics = PipelineMetrics::new();
        let agg = ingest_parallel_metered(synthetic_flows(300), 2, &metrics);
        let s = metrics.snapshot();
        assert_eq!(s.not_tls, agg.not_tls);
        assert_eq!(s.garbled_client, agg.garbled_client);
        assert_eq!(s.not_tls + s.garbled_client, 300);
    }

    #[test]
    fn poison_flow_is_quarantined_alone() {
        // A processor that panics on one specific flow: with
        // supervision, exactly that flow is quarantined and every
        // other flow in its batch survives — no shard loss.
        let fs = synthetic_flows(900);
        let poison_len = fs[500].client.len();
        let poison_byte = fs[500].client[0];
        let poison_count = fs
            .iter()
            .filter(|f| f.client.len() == poison_len && f.client[0] == poison_byte)
            .count() as u64;
        let metrics = PipelineMetrics::new();
        let agg = ingest_supervised_with(
            fs,
            &PipelineConfig::new(4, 64).unwrap(),
            &metrics,
            move |agg: &mut NotaryAggregate, flow: &TappedFlow| {
                if flow.client.len() == poison_len && flow.client[0] == poison_byte {
                    panic!("poisoned flow");
                }
                count_flow(agg, flow);
            },
        );
        let s = metrics.snapshot();
        assert_eq!(s.shards_lost, 0, "supervision must prevent shard loss");
        assert_eq!(s.flows_quarantined, poison_count);
        assert_eq!(agg.not_tls, 900 - poison_count);
        assert_eq!(s.flows_dispatched, 900);
        assert_eq!(s.flows_ingested, 900 - poison_count);
        assert!(s.accounting_holds(), "dispatched = ingested + quarantined");
        assert!(s.worker_respawns >= 1, "each panic is a respawn");
        assert!(s.batch_retries >= 2, "bisection re-dispatches halves");
    }

    #[test]
    fn fully_poisoned_input_quarantines_everything() {
        let metrics = PipelineMetrics::new();
        let agg = ingest_supervised_with(
            synthetic_flows(2_000),
            &PipelineConfig::new(2, 16).unwrap(),
            &metrics,
            |_agg: &mut NotaryAggregate, _flow: &TappedFlow| panic!("always fails"),
        );
        assert_eq!(agg.total(), 0);
        let s = metrics.snapshot();
        assert_eq!(s.shards_lost, 0);
        assert_eq!(s.flows_quarantined, 2_000);
        assert_eq!(s.flows_ingested, 0);
        assert!(s.accounting_holds());
        // Bisecting a b-flow batch to singletons costs ~2b retries;
        // the supervisor must stay within that bound.
        assert!(s.batch_retries <= 2 * 2_000);
    }

    #[test]
    fn retry_backoff_is_applied_and_capped() {
        let fs = synthetic_flows(8);
        let metrics = PipelineMetrics::new();
        let cfg = PipelineConfig::new(1, 8)
            .unwrap()
            .with_retry_backoff(Duration::from_micros(50));
        assert_eq!(cfg.retry_backoff(), Duration::from_micros(50));
        let started = Instant::now();
        let _ = ingest_supervised_with(
            fs,
            &cfg,
            &metrics,
            |_agg: &mut NotaryAggregate, flow: &TappedFlow| {
                if flow.client.len() == 8 {
                    panic!("poison");
                }
            },
        );
        let s = metrics.snapshot();
        assert_eq!(s.flows_quarantined, 1);
        assert!(s.accounting_holds());
        // Backoff slept at least once but stayed well under the cap
        // even with doubling.
        assert!(started.elapsed() >= Duration::from_micros(50));
        assert!(started.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn tiny_batches_and_single_worker_still_exact() {
        let fs = synthetic_flows(150);
        let serial = ingest_serial(fs.clone());
        let metrics = PipelineMetrics::new();
        let batched = ingest_batched(fs, 1, 1, &metrics);
        assert_eq!(serial, batched);
        assert_eq!(metrics.snapshot().batches_ingested, 150);
    }
}
