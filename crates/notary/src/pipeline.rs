//! Parallel ingestion pipeline.
//!
//! The real Notary fans captured flows out to parallel Bro workers; we
//! mirror that with a batched MPMC pipeline on scoped threads: one
//! producer chunks flows into batches of [`DEFAULT_BATCH`] and feeds
//! them over a bounded channel to N workers, each extracting and
//! aggregating locally, with the partial aggregates merged at the end.
//! Batching amortises channel synchronisation over hundreds of flows,
//! which is what lets throughput scale with workers instead of being
//! capped by per-flow send/recv overhead.
//!
//! Collection is best-effort, like the paper's (§3.1): a worker panic
//! loses that worker's shard — counted in [`PipelineMetrics`] — but
//! the surviving partial aggregates are still merged and returned.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use tlscope_chron::Date;

use crate::aggregate::NotaryAggregate;
use crate::conn::extract;
use crate::metrics::PipelineMetrics;

/// A flow handed to the monitor: everything a tap knows.
#[derive(Debug, Clone)]
pub struct TappedFlow {
    /// Capture date.
    pub date: Date,
    /// Destination port.
    pub port: u16,
    /// Client-to-server bytes.
    pub client: Vec<u8>,
    /// Server-to-client bytes, when captured.
    pub server: Option<Vec<u8>>,
}

/// Flows per channel batch: large enough to amortise channel
/// synchronisation, small enough to keep workers load-balanced.
pub const DEFAULT_BATCH: usize = 256;

/// Batches buffered in the producer→worker channel before the
/// producer blocks (bounds memory at roughly
/// `CHANNEL_DEPTH × batch × flow size`).
const CHANNEL_DEPTH: usize = 64;

/// Extract one flow and fold it into `agg`.
pub fn ingest_flow(agg: &mut NotaryAggregate, flow: &TappedFlow) {
    match extract(flow.date, flow.port, &flow.client, flow.server.as_deref()) {
        Ok(rec) => agg.ingest(&rec),
        Err(e) => agg.ingest_failure(e),
    }
}

/// Ingest a stream of flows on the current thread.
pub fn ingest_serial(flows: impl IntoIterator<Item = TappedFlow>) -> NotaryAggregate {
    let mut agg = NotaryAggregate::new();
    for flow in flows {
        ingest_flow(&mut agg, &flow);
    }
    agg
}

/// [`ingest_serial`] with pipeline accounting.
pub fn ingest_serial_metered(
    flows: impl IntoIterator<Item = TappedFlow>,
    metrics: &PipelineMetrics,
) -> NotaryAggregate {
    let mut agg = NotaryAggregate::new();
    let mut n = 0u64;
    let started = Instant::now();
    for flow in flows {
        ingest_flow(&mut agg, &flow);
        n += 1;
    }
    metrics.record_dispatched(n);
    metrics.record_batch(n, started.elapsed());
    metrics.record_parse_failures(agg.not_tls, agg.garbled_client);
    agg
}

/// Ingest a stream of flows on `workers` threads; the result is
/// identical to [`ingest_serial`] (aggregation is commutative).
pub fn ingest_parallel(
    flows: impl IntoIterator<Item = TappedFlow>,
    workers: usize,
) -> NotaryAggregate {
    ingest_parallel_metered(flows, workers, &PipelineMetrics::new())
}

/// [`ingest_parallel`] with pipeline accounting: batches, per-stage
/// wall-clock, parse-failure classes, and shards lost to panics.
pub fn ingest_parallel_metered(
    flows: impl IntoIterator<Item = TappedFlow>,
    workers: usize,
    metrics: &PipelineMetrics,
) -> NotaryAggregate {
    run_batched(flows, workers, DEFAULT_BATCH, metrics, ingest_flow)
}

/// [`ingest_parallel_metered`] with an explicit batch size — exposed
/// so equivalence tests can sweep batch sizes (any batch size must
/// produce a result identical to [`ingest_serial`]).
pub fn ingest_batched(
    flows: impl IntoIterator<Item = TappedFlow>,
    workers: usize,
    batch: usize,
    metrics: &PipelineMetrics,
) -> NotaryAggregate {
    run_batched(flows, workers, batch, metrics, ingest_flow)
}

/// The batched worker pipeline, generic over the per-flow processor so
/// the panic-recovery path is testable with a deliberately faulty
/// processor.
pub(crate) fn run_batched<F>(
    flows: impl IntoIterator<Item = TappedFlow>,
    workers: usize,
    batch: usize,
    metrics: &PipelineMetrics,
    process: F,
) -> NotaryAggregate
where
    F: Fn(&mut NotaryAggregate, &TappedFlow) + Copy + Send + Sync,
{
    assert!(workers > 0, "need at least one worker");
    assert!(batch > 0, "need a positive batch size");
    let (tx, rx) = mpsc::sync_channel::<Vec<TappedFlow>>(CHANNEL_DEPTH);
    // Workers share the receiver through Arc so that when every worker
    // has died (all panicked), the channel disconnects and the producer
    // unblocks with a send error instead of deadlocking.
    let rx = Arc::new(Mutex::new(rx));
    let mut result = NotaryAggregate::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                scope.spawn(move || {
                    let mut agg = NotaryAggregate::new();
                    loop {
                        let received = {
                            let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
                            guard.recv()
                        };
                        let Ok(batch) = received else { break };
                        let started = Instant::now();
                        let flows = batch.len() as u64;
                        let fail0 = (agg.not_tls, agg.garbled_client);
                        for flow in &batch {
                            process(&mut agg, flow);
                        }
                        metrics.record_batch(flows, started.elapsed());
                        metrics.record_parse_failures(
                            agg.not_tls - fail0.0,
                            agg.garbled_client - fail0.1,
                        );
                    }
                    agg
                })
            })
            .collect();
        drop(rx);
        let mut buf = Vec::with_capacity(batch);
        for flow in flows {
            buf.push(flow);
            if buf.len() == batch {
                metrics.record_dispatched(batch as u64);
                if tx
                    .send(std::mem::replace(&mut buf, Vec::with_capacity(batch)))
                    .is_err()
                {
                    // Every worker is gone; stop producing.
                    buf.clear();
                    break;
                }
            }
        }
        if !buf.is_empty() {
            metrics.record_dispatched(buf.len() as u64);
            let _ = tx.send(buf);
        }
        drop(tx);
        for h in handles {
            match h.join() {
                Ok(agg) => {
                    let started = Instant::now();
                    result.merge(agg);
                    metrics.record_merge(started.elapsed());
                }
                Err(_) => metrics.record_shard_lost(),
            }
        }
    });
    result
}

// Generator-driven equivalence tests live in `tests/pipeline.rs`: the
// traffic crate's `From<ConnectionEvent> for TappedFlow` impl targets
// the *library* build of this crate, which unit tests (a separate
// compilation of the same source) cannot name. Unit tests here cover
// the worker machinery itself with synthetic flows.
#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic non-TLS flows — the worker machinery doesn't care
    /// about flow contents; `ingest_flow` classifies these as not-TLS.
    fn synthetic_flows(n: usize) -> Vec<TappedFlow> {
        (0..n)
            .map(|i| TappedFlow {
                date: Date::ymd(2016, 1, 1 + (i % 28) as u8),
                port: 443,
                client: vec![i as u8; 8 + i % 32],
                server: None,
            })
            .collect()
    }

    /// A processor that counts every flow into the not-TLS bucket —
    /// cheap, deterministic, and visible through the public field.
    fn count_flow(agg: &mut NotaryAggregate, _flow: &TappedFlow) {
        agg.not_tls += 1;
    }

    #[test]
    fn batches_are_sized_and_metered() {
        let metrics = PipelineMetrics::new();
        // 700 flows at a 256-flow batch = ceil(700/256) = 3 batches.
        let agg = run_batched(synthetic_flows(700), 3, DEFAULT_BATCH, &metrics, count_flow);
        assert_eq!(agg.not_tls, 700);
        let s = metrics.snapshot();
        assert_eq!(s.flows_dispatched, 700);
        assert_eq!(s.flows_ingested, 700);
        assert_eq!(s.flows_lost(), 0);
        assert_eq!(s.batches_ingested, 3);
        assert_eq!(s.shards_lost, 0);
        assert!(s.ingest_nanos > 0);
    }

    #[test]
    fn parse_failures_are_metered_by_class() {
        let metrics = PipelineMetrics::new();
        let agg = ingest_parallel_metered(synthetic_flows(300), 2, &metrics);
        let s = metrics.snapshot();
        assert_eq!(s.not_tls, agg.not_tls);
        assert_eq!(s.garbled_client, agg.garbled_client);
        assert_eq!(s.not_tls + s.garbled_client, 300);
    }

    #[test]
    fn worker_panics_lose_shards_not_everything() {
        // A processor that panics on one specific flow: the shard
        // handling that flow dies, the rest of the pipeline survives.
        let fs = synthetic_flows(900);
        let poison_len = fs[500].client.len();
        let poison_byte = fs[500].client[0];
        let metrics = PipelineMetrics::new();
        let agg = run_batched(
            fs,
            4,
            64,
            &metrics,
            move |agg: &mut NotaryAggregate, flow: &TappedFlow| {
                if flow.client.len() == poison_len && flow.client[0] == poison_byte {
                    panic!("poisoned flow");
                }
                count_flow(agg, flow);
            },
        );
        let s = metrics.snapshot();
        assert!(s.shards_lost >= 1, "a shard must be lost");
        assert!(s.shards_lost < 4, "not every shard may be lost");
        // The merged result still carries the surviving shards.
        assert!(agg.not_tls > 0);
        assert!(agg.not_tls < 900);
        assert_eq!(s.flows_dispatched, 900);
        assert!(s.flows_ingested < 900);
    }

    #[test]
    fn all_workers_panicking_does_not_deadlock() {
        let metrics = PipelineMetrics::new();
        let agg = run_batched(
            synthetic_flows(2_000),
            2,
            16,
            &metrics,
            |_agg: &mut NotaryAggregate, _flow: &TappedFlow| panic!("always fails"),
        );
        assert_eq!(agg.total(), 0);
        assert_eq!(metrics.snapshot().shards_lost, 2);
    }

    #[test]
    fn tiny_batches_and_single_worker_still_exact() {
        let fs = synthetic_flows(150);
        let serial = ingest_serial(fs.clone());
        let metrics = PipelineMetrics::new();
        let batched = run_batched(fs, 1, 1, &metrics, ingest_flow);
        assert_eq!(serial, batched);
        assert_eq!(metrics.snapshot().batches_ingested, 150);
    }
}
