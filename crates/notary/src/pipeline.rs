//! Parallel ingestion pipeline.
//!
//! The real Notary fans captured flows out to Bro workers; we mirror
//! that with a crossbeam scoped pipeline: one producer feeding flows
//! over a bounded channel to N workers, each extracting and aggregating
//! locally, with the partial aggregates merged at the end. This is also
//! one of DESIGN.md's ablation benchmarks (single-thread vs. workers).

use crossbeam::channel;
use tlscope_chron::Date;

use crate::aggregate::NotaryAggregate;
use crate::conn::extract;

/// A flow handed to the monitor: everything a tap knows.
#[derive(Debug, Clone)]
pub struct TappedFlow {
    /// Capture date.
    pub date: Date,
    /// Destination port.
    pub port: u16,
    /// Client-to-server bytes.
    pub client: Vec<u8>,
    /// Server-to-client bytes, when captured.
    pub server: Option<Vec<u8>>,
}

/// Ingest a stream of flows on the current thread.
pub fn ingest_serial(flows: impl IntoIterator<Item = TappedFlow>) -> NotaryAggregate {
    let mut agg = NotaryAggregate::new();
    for flow in flows {
        match extract(flow.date, flow.port, &flow.client, flow.server.as_deref()) {
            Ok(rec) => agg.ingest(&rec),
            Err(e) => agg.ingest_failure(e),
        }
    }
    agg
}

/// Ingest a stream of flows on `workers` threads; the result is
/// identical to [`ingest_serial`] (aggregation is commutative).
pub fn ingest_parallel(
    flows: impl IntoIterator<Item = TappedFlow>,
    workers: usize,
) -> NotaryAggregate {
    assert!(workers > 0, "need at least one worker");
    let (tx, rx) = channel::bounded::<TappedFlow>(4096);
    let mut result = NotaryAggregate::new();
    crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let rx = rx.clone();
                scope.spawn(move |_| {
                    let mut agg = NotaryAggregate::new();
                    for flow in rx.iter() {
                        match extract(flow.date, flow.port, &flow.client, flow.server.as_deref())
                        {
                            Ok(rec) => agg.ingest(&rec),
                            Err(e) => agg.ingest_failure(e),
                        }
                    }
                    agg
                })
            })
            .collect();
        drop(rx);
        for flow in flows {
            if tx.send(flow).is_err() {
                break;
            }
        }
        drop(tx);
        for h in handles {
            result.merge(h.join().expect("worker panicked"));
        }
    })
    .expect("pipeline scope failed");
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlscope_chron::Month;
    use tlscope_traffic::{FaultInjector, Generator, TrafficConfig};

    fn flows(month: Month, n: u32) -> Vec<TappedFlow> {
        let g = Generator::new(TrafficConfig {
            seed: 7,
            connections_per_month: n,
            faults: FaultInjector::none(),
        });
        g.month(month)
            .into_iter()
            .map(|ev| TappedFlow {
                date: ev.date,
                port: ev.port,
                client: ev.client_flow,
                server: ev.server_flow,
            })
            .collect()
    }

    #[test]
    fn serial_ingestion_counts_everything() {
        let agg = ingest_serial(flows(Month::ym(2016, 3), 400));
        let m = agg.month(Month::ym(2016, 3)).unwrap();
        assert_eq!(m.total, 400);
        assert!(m.answered > 350);
        assert!(m.neg_aead > 0);
    }

    #[test]
    fn parallel_matches_serial() {
        let fs = flows(Month::ym(2015, 9), 600);
        let serial = ingest_serial(fs.clone());
        let parallel = ingest_parallel(fs, 4);
        assert_eq!(serial.total(), parallel.total());
        let sm = serial.month(Month::ym(2015, 9)).unwrap();
        let pm = parallel.month(Month::ym(2015, 9)).unwrap();
        assert_eq!(sm.answered, pm.answered);
        assert_eq!(sm.adv_rc4, pm.adv_rc4);
        assert_eq!(sm.neg_rc4, pm.neg_rc4);
        assert_eq!(sm.neg_kx.ecdhe, pm.neg_kx.ecdhe);
        assert_eq!(sm.fp_flags.len(), pm.fp_flags.len());
        assert_eq!(serial.fp_counts, parallel.fp_counts);
        assert_eq!(serial.sightings.len(), parallel.sightings.len());
    }

    #[test]
    fn faulty_flows_are_tolerated() {
        let g = Generator::new(TrafficConfig {
            seed: 9,
            connections_per_month: 500,
            faults: FaultInjector {
                drop_prob: 0.0,
                truncate_prob: 0.3,
                corrupt_prob: 0.3,
            },
        });
        let fs: Vec<TappedFlow> = g
            .month(Month::ym(2016, 6))
            .into_iter()
            .map(|ev| TappedFlow {
                date: ev.date,
                port: ev.port,
                client: ev.client_flow,
                server: ev.server_flow,
            })
            .collect();
        let n = fs.len();
        let agg = ingest_serial(fs);
        // Nothing panics; damaged flows are counted, not lost.
        let m = agg.month(Month::ym(2016, 6)).unwrap();
        assert!(m.total as usize + agg.garbled_client as usize + agg.not_tls as usize == n);
        assert!(agg.garbled_client > 0);
    }
}
