//! Monthly aggregation: the counters behind every figure in the paper.
//!
//! [`NotaryAggregate`] ingests [`ConnectionRecord`]s and maintains, per
//! calendar month, exactly the statistics the paper plots:
//!
//! * negotiated protocol versions (Figure 1)
//! * negotiated cipher classes RC4/CBC/AEAD (Figure 2) and the
//!   DES/3DES/NULL/anon/export/GOST oddities (§5.5–§6.2)
//! * advertised cipher classes per connection (Figures 3, 6, 7, 10)
//! * per-fingerprint class support (Figure 4) and lifetimes (§4.1)
//! * first-offer relative positions (Figure 5)
//! * key-exchange classes and negotiated curves (Figure 8, §6.3.3)
//! * AEAD algorithm breakdowns (Figures 9, 10)
//! * heartbeat negotiation (§5.4) and TLS 1.3 advertisement /
//!   negotiation with the draft-version mix (§6.4)

use std::collections::{BTreeMap, HashMap};

use tlscope_chron::Month;
use tlscope_fingerprint::{Fingerprint, FpId, FpInterner, Sighting, SightingTracker};
use tlscope_wire::{AeadAlg, Kx, ProtocolVersion};

use crate::conn::{ClientOffer, ConnectionRecord, ServerOutcome};

/// The Notary gained the ClientHello fields needed for fingerprinting
/// in February 2014 (§4.0.1); fingerprint-level tracking ignores flows
/// before this date, exactly as the paper's does.
pub const FINGERPRINT_FIELDS_SINCE: tlscope_chron::Date = tlscope_chron::Date::ymd(2014, 2, 1);

/// Coarse negotiated-version buckets (Figure 1 series).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct VersionCounts {
    /// SSL 2 connections (client-side framing).
    pub ssl2: u64,
    /// SSL 3.
    pub ssl3: u64,
    /// TLS 1.0.
    pub tls10: u64,
    /// TLS 1.1.
    pub tls11: u64,
    /// TLS 1.2.
    pub tls12: u64,
    /// Any TLS 1.3 family member (final, draft, experiment).
    pub tls13: u64,
    /// Anything else.
    pub other: u64,
}

impl VersionCounts {
    fn bump(&mut self, v: ProtocolVersion) {
        match v {
            ProtocolVersion::Ssl2 => self.ssl2 += 1,
            ProtocolVersion::Ssl3 => self.ssl3 += 1,
            ProtocolVersion::Tls10 => self.tls10 += 1,
            ProtocolVersion::Tls11 => self.tls11 += 1,
            ProtocolVersion::Tls12 => self.tls12 += 1,
            v if v.is_tls13_family() => self.tls13 += 1,
            _ => self.other += 1,
        }
    }
}

/// Key-exchange buckets (Figure 8 series).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KxCounts {
    /// RSA key transport.
    pub rsa: u64,
    /// Finite-field ephemeral DH.
    pub dhe: u64,
    /// Elliptic-curve ephemeral DH.
    pub ecdhe: u64,
    /// Static DH.
    pub dh: u64,
    /// Static ECDH.
    pub ecdh: u64,
    /// TLS 1.3 (always ephemeral).
    pub tls13: u64,
    /// Everything else (PSK, SRP, Kerberos, GOST, ...).
    pub other: u64,
}

impl KxCounts {
    fn bump(&mut self, kx: Option<Kx>) {
        match kx {
            Some(Kx::Rsa) => self.rsa += 1,
            Some(Kx::Dhe) | Some(Kx::DhAnon) => self.dhe += 1,
            Some(Kx::Ecdhe) | Some(Kx::EcdhAnon) => self.ecdhe += 1,
            Some(Kx::Dh) => self.dh += 1,
            Some(Kx::Ecdh) => self.ecdh += 1,
            Some(Kx::Tls13) => self.tls13 += 1,
            _ => self.other += 1,
        }
    }
}

/// AEAD algorithm buckets (Figures 9 and 10).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AeadCounts {
    /// AES-128-GCM.
    pub aes128gcm: u64,
    /// AES-256-GCM.
    pub aes256gcm: u64,
    /// ChaCha20-Poly1305 (standard or pre-standard code points).
    pub chacha: u64,
    /// AES-CCM (all variants).
    pub ccm: u64,
    /// Camellia/ARIA GCM.
    pub other: u64,
}

impl AeadCounts {
    fn bump(&mut self, alg: AeadAlg) {
        match alg {
            AeadAlg::Aes128Gcm => self.aes128gcm += 1,
            AeadAlg::Aes256Gcm => self.aes256gcm += 1,
            AeadAlg::ChaCha20Poly1305 => self.chacha += 1,
            AeadAlg::AesCcm => self.ccm += 1,
            AeadAlg::Other => self.other += 1,
        }
    }

    /// Total AEAD count.
    pub fn total(&self) -> u64 {
        self.aes128gcm + self.aes256gcm + self.chacha + self.ccm + self.other
    }
}

/// Running mean of first-offer relative positions (Figure 5).
///
/// Positions are accumulated in integer micro-units (1e-6 of the
/// relative position) rather than as an `f64` sum: integer addition is
/// associative, so serial ingestion and any parallel sharding produce
/// byte-identical aggregates — an invariant the pipeline property
/// tests check exactly.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PositionMean {
    sum_micro: u64,
    n: u64,
}

impl PositionMean {
    fn add(&mut self, pos: Option<f64>) {
        if let Some(p) = pos {
            self.sum_micro += (p * 1e6).round() as u64;
            self.n += 1;
        }
    }

    /// Raw accumulator parts `(sum_micro, n)` — lossless, for exact
    /// serialization (checkpoints must round-trip bit-identically).
    pub fn raw_parts(&self) -> (u64, u64) {
        (self.sum_micro, self.n)
    }

    /// Rebuild from [`PositionMean::raw_parts`] output.
    pub fn from_raw_parts(sum_micro: u64, n: u64) -> Self {
        PositionMean { sum_micro, n }
    }

    /// Mean relative position in percent (0 = head of list).
    pub fn mean_pct(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(100.0 * (self.sum_micro as f64 / 1e6) / self.n as f64)
        }
    }
}

/// Class-support flags of one fingerprint (Figure 4 rows).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FpClassFlags {
    /// Offers at least one RC4 suite.
    pub rc4: bool,
    /// Offers at least one CBC suite.
    pub cbc: bool,
    /// Offers at least one AEAD suite.
    pub aead: bool,
    /// Offers single DES.
    pub des: bool,
    /// Offers 3DES.
    pub tdes: bool,
    /// Offers NULL encryption.
    pub null: bool,
    /// Offers anonymous suites.
    pub anon: bool,
}

impl FpClassFlags {
    fn from_offer(offer: &ClientOffer) -> Self {
        FpClassFlags {
            rc4: offer.offers(|c| c.is_rc4()),
            cbc: offer.offers(|c| c.is_cbc()),
            aead: offer.offers(|c| c.is_aead()),
            des: offer.offers(|c| c.is_des()),
            tdes: offer.offers(|c| c.is_3des()),
            null: offer.offers(|c| c.is_null_encryption()),
            anon: offer.offers(|c| c.is_anon()),
        }
    }
}

/// All per-month counters.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct MonthlyStats {
    /// Connections ingested this month.
    pub total: u64,
    /// SSLv2-framed connections.
    pub sslv2: u64,
    /// Server rejected with an alert.
    pub rejected: u64,
    /// Server flow missing from the tap.
    pub missing_server: u64,
    /// Server flow present but unparseable.
    pub garbled_server: u64,
    /// Successfully negotiated connections.
    pub answered: u64,

    /// Negotiated protocol versions.
    pub neg_version: VersionCounts,
    /// Negotiated cipher class counters.
    pub neg_rc4: u64,
    /// Negotiated CBC-mode.
    pub neg_cbc: u64,
    /// Negotiated AEAD.
    pub neg_aead: u64,
    /// Negotiated NULL encryption.
    pub neg_null: u64,
    /// Negotiated the fully-null suite.
    pub neg_null_null: u64,
    /// Negotiated 3DES.
    pub neg_3des: u64,
    /// Negotiated single DES.
    pub neg_des: u64,
    /// Negotiated an export-grade suite.
    pub neg_export: u64,
    /// Negotiated an anonymous suite.
    pub neg_anon: u64,
    /// Negotiated a suite the client did not offer (out-of-spec, §7.3).
    pub neg_unoffered: u64,
    /// Negotiated forward secrecy.
    pub neg_fs: u64,
    /// Negotiated key-exchange classes.
    pub neg_kx: KxCounts,
    /// Negotiated AEAD algorithms.
    pub neg_aead_alg: AeadCounts,
    /// Negotiated curve counts by wire id.
    pub curves: HashMap<u16, u64>,
    /// Heartbeat negotiated (offered + echoed, §5.4).
    pub heartbeat_negotiated: u64,

    /// Connections whose client offered RC4.
    pub adv_rc4: u64,
    /// ... CBC.
    pub adv_cbc: u64,
    /// ... AEAD.
    pub adv_aead: u64,
    /// ... single DES.
    pub adv_des: u64,
    /// ... 3DES.
    pub adv_3des: u64,
    /// ... export-grade suites.
    pub adv_export: u64,
    /// ... anonymous suites.
    pub adv_anon: u64,
    /// ... NULL encryption.
    pub adv_null: u64,
    /// ... forward-secret suites.
    pub adv_fs: u64,
    /// ... the heartbeat extension.
    pub adv_heartbeat: u64,
    /// ... any TLS 1.3 family version.
    pub adv_tls13: u64,
    /// Advertised AEAD algorithms (connection-weighted).
    pub adv_aead_alg: AeadCounts,
    /// supported_versions values seen (wire value → connections).
    pub supported_versions_values: HashMap<u16, u64>,
    /// Connections advertising each extension type (§9's RIE and
    /// Encrypt-then-MAC tracking, SNI/EMS adoption, ...).
    pub adv_extensions: HashMap<u16, u64>,

    /// Mean first-offer positions per class.
    pub pos_aead: PositionMean,
    /// CBC position mean.
    pub pos_cbc: PositionMean,
    /// RC4 position mean.
    pub pos_rc4: PositionMean,
    /// DES position mean.
    pub pos_des: PositionMean,
    /// 3DES position mean.
    pub pos_3des: PositionMean,

    /// Distinct fingerprints seen this month with their class flags,
    /// keyed by the owning aggregate's interned fingerprint id.
    pub fp_flags: HashMap<FpId, FpClassFlags>,
}

impl MonthlyStats {
    /// Percentage of monthly connections, given a counter.
    pub fn pct(&self, count: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * count as f64 / self.total as f64
        }
    }

    /// Percentage of *answered* connections.
    pub fn pct_answered(&self, count: u64) -> f64 {
        if self.answered == 0 {
            0.0
        } else {
            100.0 * count as f64 / self.answered as f64
        }
    }

    /// Percentage of this month's distinct fingerprints matching `f`.
    pub fn pct_fingerprints(&self, f: impl Fn(&FpClassFlags) -> bool) -> f64 {
        if self.fp_flags.is_empty() {
            return 0.0;
        }
        100.0 * self.fp_flags.values().filter(|v| f(v)).count() as f64 / self.fp_flags.len() as f64
    }

    /// Percentage of negotiated curves that are `group`.
    pub fn pct_curve(&self, group: u16) -> f64 {
        let total: u64 = self.curves.values().sum();
        if total == 0 {
            0.0
        } else {
            100.0 * *self.curves.get(&group).unwrap_or(&0) as f64 / total as f64
        }
    }
}

/// The full longitudinal aggregate.
///
/// Equality is exact: with [`PositionMean`]'s integer accumulation,
/// two aggregates built from the same flows — in any ingestion order
/// or sharding — compare equal. Fingerprint state is interned: the
/// dense [`FpId`] each shard assigns depends on its ingestion order,
/// so equality (and [`NotaryAggregate::merge`]) resolve ids through
/// the interner rather than comparing them raw.
#[derive(Debug, Default)]
pub struct NotaryAggregate {
    months: BTreeMap<Month, MonthlyStats>,
    /// Hash-consed fingerprint table: every distinct fingerprint is
    /// stored once; all per-fingerprint state keys on its dense id.
    pub(crate) interner: FpInterner,
    /// First/last-seen tracking per interned fingerprint (§4.1).
    pub sightings: SightingTracker<FpId>,
    /// Total connections per fingerprint, indexed by [`FpId`] (Table 2
    /// coverage input).
    pub(crate) fp_counts: Vec<u64>,
    /// Flows that were not SSL/TLS at all.
    pub not_tls: u64,
    /// Client flows too damaged to parse.
    pub garbled_client: u64,
    /// Connections recovered by prefix salvage after tap damage
    /// (ingested normally; this counter only sizes the degradation).
    pub salvaged: u64,
}

impl NotaryAggregate {
    /// Empty aggregate.
    pub fn new() -> Self {
        NotaryAggregate::default()
    }

    /// Ingest one extracted connection record.
    pub fn ingest(&mut self, rec: &ConnectionRecord) {
        if rec.salvaged {
            self.salvaged += 1;
        }
        let stats = self.months.entry(rec.month).or_default();
        stats.total += 1;
        if rec.sslv2 {
            stats.sslv2 += 1;
            stats.neg_version.ssl2 += 1;
        }

        if let Some(offer) = &rec.client {
            Self::ingest_offer(stats, offer);
            if rec.date >= FINGERPRINT_FIELDS_SINCE {
                // A repeat fingerprint is a hash of the id64 and a u32
                // table hit — the clone runs only on first sight. The
                // parse cache memoises the id64 alongside the offer,
                // so cached flows skip even the rehash.
                let id64 = offer.fp_id64.unwrap_or_else(|| offer.fingerprint.id64());
                let fp = self
                    .interner
                    .intern_hashed(id64, || offer.fingerprint.clone());
                self.sightings.observe(fp, rec.date, 1);
                if self.fp_counts.len() <= fp.index() {
                    self.fp_counts.resize(fp.index() + 1, 0);
                }
                self.fp_counts[fp.index()] += 1;
                stats
                    .fp_flags
                    .entry(fp)
                    .or_insert_with(|| FpClassFlags::from_offer(offer));
            }
        }

        match &rec.server {
            ServerOutcome::Missing => stats.missing_server += 1,
            ServerOutcome::Rejected { .. } => stats.rejected += 1,
            ServerOutcome::Garbled => stats.garbled_server += 1,
            ServerOutcome::Answered(ans) => {
                stats.answered += 1;
                stats.neg_version.bump(ans.version);
                let c = ans.cipher;
                if c.is_rc4() {
                    stats.neg_rc4 += 1;
                }
                if c.is_cbc() {
                    stats.neg_cbc += 1;
                }
                if c.is_aead() {
                    stats.neg_aead += 1;
                }
                if c.is_null_encryption() {
                    stats.neg_null += 1;
                }
                if c.is_null_null() {
                    stats.neg_null_null += 1;
                }
                if c.is_3des() {
                    stats.neg_3des += 1;
                }
                if c.is_des() {
                    stats.neg_des += 1;
                }
                if c.is_export() {
                    stats.neg_export += 1;
                }
                if c.is_anon() {
                    stats.neg_anon += 1;
                }
                if c.is_forward_secret() {
                    stats.neg_fs += 1;
                }
                stats.neg_kx.bump(c.kx());
                if let Some(alg) = c.aead_alg() {
                    stats.neg_aead_alg.bump(alg);
                }
                if let Some(curve) = ans.curve {
                    *stats.curves.entry(curve.0).or_insert(0) += 1;
                }
                if ans.heartbeat {
                    stats.heartbeat_negotiated += 1;
                }
                if let Some(offer) = &rec.client {
                    let offered = offer.suites.contains(&ans.cipher);
                    if !offered {
                        stats.neg_unoffered += 1;
                    }
                }
            }
        }
    }

    fn ingest_offer(stats: &mut MonthlyStats, offer: &ClientOffer) {
        // One fused pass over the suite list replaces the former
        // nine `offers()` scans, AEAD-algorithm scan, and five
        // `first_position` scans. Each suite is classified along every
        // axis with a single registry lookup (`classes()`); the
        // arithmetic matches those helpers exactly, so the fold stays
        // bit-identical to the multi-pass version.
        let mut any = tlscope_wire::SuiteClasses::default();
        let mut seen = [false; 5];
        // First-hit real index per position class: aead cbc rc4 des 3des.
        let mut pos_hit = [None::<usize>; 5];
        let mut real = 0usize;
        for c in offer.suites.iter().copied() {
            // `offers()` semantics: every suite, GREASE included
            // (GREASE/SCSV/unregistered values are in no class).
            let cl = c.classes();
            any.rc4 |= cl.rc4;
            any.cbc |= cl.cbc;
            any.aead |= cl.aead;
            any.des |= cl.des;
            any.tdes |= cl.tdes;
            any.export |= cl.export;
            any.anon |= cl.anon;
            any.null_enc |= cl.null_enc;
            any.forward_secret |= cl.forward_secret;
            // Connection-weighted advertised AEAD algorithms (one
            // count per algorithm present in the offer).
            if let Some(alg) = cl.aead_alg {
                let idx = match alg {
                    AeadAlg::Aes128Gcm => 0,
                    AeadAlg::Aes256Gcm => 1,
                    AeadAlg::ChaCha20Poly1305 => 2,
                    AeadAlg::AesCcm => 3,
                    AeadAlg::Other => 4,
                };
                if !seen[idx] {
                    seen[idx] = true;
                    stats.adv_aead_alg.bump(alg);
                }
            }
            // `first_position()` semantics: GREASE/SCSV entries count
            // for neither position nor the denominator.
            if tlscope_wire::is_grease(c.0) || c.is_signaling() {
                continue;
            }
            if pos_hit[0].is_none() && cl.aead {
                pos_hit[0] = Some(real);
            }
            if pos_hit[1].is_none() && cl.cbc {
                pos_hit[1] = Some(real);
            }
            if pos_hit[2].is_none() && cl.rc4 {
                pos_hit[2] = Some(real);
            }
            if pos_hit[3].is_none() && cl.des {
                pos_hit[3] = Some(real);
            }
            if pos_hit[4].is_none() && cl.tdes {
                pos_hit[4] = Some(real);
            }
            real += 1;
        }
        stats.adv_rc4 += u64::from(any.rc4);
        stats.adv_cbc += u64::from(any.cbc);
        stats.adv_aead += u64::from(any.aead);
        stats.adv_des += u64::from(any.des);
        stats.adv_3des += u64::from(any.tdes);
        stats.adv_export += u64::from(any.export);
        stats.adv_anon += u64::from(any.anon);
        stats.adv_null += u64::from(any.null_enc);
        stats.adv_fs += u64::from(any.forward_secret);
        if offer.heartbeat {
            stats.adv_heartbeat += 1;
        }
        if offer.versions.iter().any(|v| v.is_tls13_family()) {
            stats.adv_tls13 += 1;
        }
        for v in &offer.supported_versions_raw {
            *stats.supported_versions_values.entry(*v).or_insert(0) += 1;
        }
        for t in &offer.extension_types {
            *stats.adv_extensions.entry(*t).or_insert(0) += 1;
        }
        // Identical to `first_position`: `i as f64 / real as f64`,
        // `None` when no real suite exists.
        let frac = |hit: Option<usize>| {
            if real == 0 {
                None
            } else {
                hit.map(|i| i as f64 / real as f64)
            }
        };
        stats.pos_aead.add(frac(pos_hit[0]));
        stats.pos_cbc.add(frac(pos_hit[1]));
        stats.pos_rc4.add(frac(pos_hit[2]));
        stats.pos_des.add(frac(pos_hit[3]));
        stats.pos_3des.add(frac(pos_hit[4]));
    }

    /// Record a flow that failed extraction.
    pub fn ingest_failure(&mut self, err: crate::conn::ExtractError) {
        match err {
            crate::conn::ExtractError::NotTls => self.not_tls += 1,
            crate::conn::ExtractError::GarbledClient => self.garbled_client += 1,
        }
    }

    /// Stats for one month.
    pub fn month(&self, m: Month) -> Option<&MonthlyStats> {
        self.months.get(&m)
    }

    /// Insert a fully-built month record (used by the store loader).
    pub fn insert_month(&mut self, m: Month, stats: MonthlyStats) {
        self.months.insert(m, stats);
    }

    /// Iterate months in order.
    pub fn iter_months(&self) -> impl Iterator<Item = (&Month, &MonthlyStats)> {
        self.months.iter()
    }

    /// Total connections across all months.
    pub fn total(&self) -> u64 {
        self.months.values().map(|m| m.total).sum()
    }

    /// Number of distinct fingerprints interned.
    pub fn distinct_fingerprints(&self) -> usize {
        self.interner.len()
    }

    /// Iterate `(fingerprint, connection count)` pairs in interning
    /// order.
    pub fn iter_fp_counts(&self) -> impl Iterator<Item = (&Fingerprint, u64)> {
        self.interner
            .iter()
            .map(|(id, fp)| (fp, self.fp_counts.get(id.index()).copied().unwrap_or(0)))
    }

    /// Connection count for one fingerprint (0 when never seen).
    pub fn fp_count(&self, fp: &Fingerprint) -> u64 {
        self.interner
            .lookup_id64(fp.id64())
            .and_then(|id| self.fp_counts.get(id.index()).copied())
            .unwrap_or(0)
    }

    /// Sighting record for one fingerprint.
    pub fn sighting_of(&self, fp: &Fingerprint) -> Option<&Sighting> {
        let id = self.interner.lookup_id64(fp.id64())?;
        self.sightings.get(id)
    }

    /// Add `n` connections to a fingerprint id's count, growing the
    /// dense table as needed.
    pub(crate) fn bump_fp(&mut self, id: FpId, n: u64) {
        if self.fp_counts.len() <= id.index() {
            self.fp_counts.resize(id.index() + 1, 0);
        }
        self.fp_counts[id.index()] += n;
    }

    /// Merge another aggregate into this one (parallel ingestion).
    ///
    /// `other`'s dense fingerprint ids are meaningless here, so its
    /// interner is drained first into a remap table; every id-keyed
    /// structure is translated through it. The result is identical to
    /// having ingested `other`'s records into `self` directly.
    pub fn merge(&mut self, other: NotaryAggregate) {
        let remap: Vec<FpId> = other
            .interner
            .into_entries()
            .map(|(id64, fp)| self.interner.intern_hashed(id64, || fp))
            .collect();
        for (month, stats) in other.months {
            let mine = self.months.entry(month).or_default();
            mine.total += stats.total;
            mine.sslv2 += stats.sslv2;
            mine.rejected += stats.rejected;
            mine.missing_server += stats.missing_server;
            mine.garbled_server += stats.garbled_server;
            mine.answered += stats.answered;
            let v = &mut mine.neg_version;
            let o = stats.neg_version;
            v.ssl2 += o.ssl2;
            v.ssl3 += o.ssl3;
            v.tls10 += o.tls10;
            v.tls11 += o.tls11;
            v.tls12 += o.tls12;
            v.tls13 += o.tls13;
            v.other += o.other;
            mine.neg_rc4 += stats.neg_rc4;
            mine.neg_cbc += stats.neg_cbc;
            mine.neg_aead += stats.neg_aead;
            mine.neg_null += stats.neg_null;
            mine.neg_null_null += stats.neg_null_null;
            mine.neg_3des += stats.neg_3des;
            mine.neg_des += stats.neg_des;
            mine.neg_export += stats.neg_export;
            mine.neg_anon += stats.neg_anon;
            mine.neg_unoffered += stats.neg_unoffered;
            mine.neg_fs += stats.neg_fs;
            let k = &mut mine.neg_kx;
            let ok = stats.neg_kx;
            k.rsa += ok.rsa;
            k.dhe += ok.dhe;
            k.ecdhe += ok.ecdhe;
            k.dh += ok.dh;
            k.ecdh += ok.ecdh;
            k.tls13 += ok.tls13;
            k.other += ok.other;
            let a = &mut mine.neg_aead_alg;
            let oa = stats.neg_aead_alg;
            a.aes128gcm += oa.aes128gcm;
            a.aes256gcm += oa.aes256gcm;
            a.chacha += oa.chacha;
            a.ccm += oa.ccm;
            a.other += oa.other;
            for (curve, n) in stats.curves {
                *mine.curves.entry(curve).or_insert(0) += n;
            }
            mine.heartbeat_negotiated += stats.heartbeat_negotiated;
            mine.adv_rc4 += stats.adv_rc4;
            mine.adv_cbc += stats.adv_cbc;
            mine.adv_aead += stats.adv_aead;
            mine.adv_des += stats.adv_des;
            mine.adv_3des += stats.adv_3des;
            mine.adv_export += stats.adv_export;
            mine.adv_anon += stats.adv_anon;
            mine.adv_null += stats.adv_null;
            mine.adv_fs += stats.adv_fs;
            mine.adv_heartbeat += stats.adv_heartbeat;
            mine.adv_tls13 += stats.adv_tls13;
            let a = &mut mine.adv_aead_alg;
            let oa = stats.adv_aead_alg;
            a.aes128gcm += oa.aes128gcm;
            a.aes256gcm += oa.aes256gcm;
            a.chacha += oa.chacha;
            a.ccm += oa.ccm;
            a.other += oa.other;
            for (v, n) in stats.supported_versions_values {
                *mine.supported_versions_values.entry(v).or_insert(0) += n;
            }
            for (t, n) in stats.adv_extensions {
                *mine.adv_extensions.entry(t).or_insert(0) += n;
            }
            mine.pos_aead.sum_micro += stats.pos_aead.sum_micro;
            mine.pos_aead.n += stats.pos_aead.n;
            mine.pos_cbc.sum_micro += stats.pos_cbc.sum_micro;
            mine.pos_cbc.n += stats.pos_cbc.n;
            mine.pos_rc4.sum_micro += stats.pos_rc4.sum_micro;
            mine.pos_rc4.n += stats.pos_rc4.n;
            mine.pos_des.sum_micro += stats.pos_des.sum_micro;
            mine.pos_des.n += stats.pos_des.n;
            mine.pos_3des.sum_micro += stats.pos_3des.sum_micro;
            mine.pos_3des.n += stats.pos_3des.n;
            for (fp, flags) in stats.fp_flags {
                mine.fp_flags.entry(remap[fp.index()]).or_insert(flags);
            }
        }
        for (i, count) in other.fp_counts.into_iter().enumerate() {
            self.bump_fp(remap[i], count);
        }
        // Merge sighting windows.
        for (id, s) in other.sightings.iter_raw() {
            let id = remap[id.index()];
            self.sightings.observe(id, s.first, 0);
            self.sightings.observe(id, s.last, s.connections);
        }
        self.not_tls += other.not_tls;
        self.garbled_client += other.garbled_client;
        self.salvaged += other.salvaged;
    }
}

/// Id-order-independent equality: months, failure counters, and all
/// per-fingerprint state must agree, with dense ids resolved through
/// each side's interner (two shards that interned the same
/// fingerprints in different orders still compare equal).
impl PartialEq for NotaryAggregate {
    fn eq(&self, other: &Self) -> bool {
        if self.not_tls != other.not_tls
            || self.garbled_client != other.garbled_client
            || self.salvaged != other.salvaged
            || self.months.len() != other.months.len()
            || self.interner.len() != other.interner.len()
        {
            return false;
        }
        for ((ma, sa), (mb, sb)) in self.months.iter().zip(other.months.iter()) {
            if ma != mb {
                return false;
            }
            let fa: BTreeMap<u64, FpClassFlags> = sa
                .fp_flags
                .iter()
                .map(|(id, f)| (self.interner.id64_of(*id), *f))
                .collect();
            let fb: BTreeMap<u64, FpClassFlags> = sb
                .fp_flags
                .iter()
                .map(|(id, f)| (other.interner.id64_of(*id), *f))
                .collect();
            if fa != fb {
                return false;
            }
            let mut ca = sa.clone();
            let mut cb = sb.clone();
            ca.fp_flags.clear();
            cb.fp_flags.clear();
            if ca != cb {
                return false;
            }
        }
        let counts_a: BTreeMap<&Fingerprint, u64> = self.iter_fp_counts().collect();
        let counts_b: BTreeMap<&Fingerprint, u64> = other.iter_fp_counts().collect();
        if counts_a != counts_b {
            return false;
        }
        let sights_a: BTreeMap<u64, Sighting> = self
            .sightings
            .iter_raw()
            .map(|(id, s)| (self.interner.id64_of(*id), *s))
            .collect();
        let sights_b: BTreeMap<u64, Sighting> = other
            .sightings
            .iter_raw()
            .map(|(id, s)| (other.interner.id64_of(*id), *s))
            .collect();
        sights_a == sights_b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conn::{ClientOffer, ServerAnswer};
    use tlscope_chron::Date;
    use tlscope_wire::CipherSuite;

    fn offer(suites: &[u16]) -> ClientOffer {
        let cs: Vec<CipherSuite> = suites.iter().map(|&s| CipherSuite(s)).collect();
        ClientOffer {
            legacy_version: ProtocolVersion::Tls12,
            versions: vec![ProtocolVersion::Tls12],
            supported_versions_raw: vec![],
            heartbeat: false,
            extension_types: vec![],
            fingerprint: Fingerprint {
                ciphers: suites.to_vec(),
                extensions: vec![],
                curves: vec![],
                point_formats: vec![],
            },
            suites: cs,
            fp_id64: None,
        }
    }

    fn record(
        month_day: (i32, u8, u8),
        suites: &[u16],
        answer: Option<(u16, u16)>,
    ) -> ConnectionRecord {
        let date = Date::ymd(month_day.0, month_day.1, month_day.2);
        ConnectionRecord {
            date,
            month: date.month(),
            port: 443,
            sslv2: false,
            client: Some(offer(suites)),
            server: match answer {
                Some((cipher, version)) => ServerOutcome::Answered(ServerAnswer {
                    version: ProtocolVersion::from_wire(version),
                    cipher: CipherSuite(cipher),
                    curve: None,
                    heartbeat: false,
                }),
                None => ServerOutcome::Rejected { alert: None },
            },
            salvaged: false,
        }
    }

    #[test]
    fn counters_accumulate() {
        let mut agg = NotaryAggregate::new();
        agg.ingest(&record(
            (2015, 6, 1),
            &[0xc02f, 0x0005],
            Some((0xc02f, 0x0303)),
        ));
        agg.ingest(&record(
            (2015, 6, 2),
            &[0x0005, 0x000a],
            Some((0x0005, 0x0301)),
        ));
        agg.ingest(&record((2015, 6, 3), &[0xc02f], None));
        let m = agg.month(Month::ym(2015, 6)).unwrap();
        assert_eq!(m.total, 3);
        assert_eq!(m.answered, 2);
        assert_eq!(m.rejected, 1);
        assert_eq!(m.neg_aead, 1);
        assert_eq!(m.neg_rc4, 1);
        assert_eq!(m.adv_rc4, 2);
        assert_eq!(m.adv_aead, 2);
        assert_eq!(m.neg_version.tls12, 1);
        assert_eq!(m.neg_version.tls10, 1);
        assert!((m.pct(m.adv_rc4) - 66.666).abs() < 0.01);
        assert!((m.pct_answered(m.neg_rc4) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn unoffered_cipher_detected() {
        let mut agg = NotaryAggregate::new();
        // Server picks GOST which the client never offered (§7.3).
        agg.ingest(&record((2016, 1, 5), &[0xc02f], Some((0x0081, 0x0303))));
        let m = agg.month(Month::ym(2016, 1)).unwrap();
        assert_eq!(m.neg_unoffered, 1);
    }

    #[test]
    fn fingerprint_tracking() {
        let mut agg = NotaryAggregate::new();
        agg.ingest(&record(
            (2015, 6, 1),
            &[0xc02f, 0x0005],
            Some((0xc02f, 0x0303)),
        ));
        agg.ingest(&record(
            (2015, 6, 20),
            &[0xc02f, 0x0005],
            Some((0xc02f, 0x0303)),
        ));
        agg.ingest(&record((2015, 6, 2), &[0xc02f], Some((0xc02f, 0x0303))));
        let m = agg.month(Month::ym(2015, 6)).unwrap();
        assert_eq!(m.fp_flags.len(), 2);
        assert!((m.pct_fingerprints(|f| f.rc4) - 50.0).abs() < 1e-9);
        assert_eq!(agg.distinct_fingerprints(), 2);
        assert_eq!(agg.sightings.len(), 2);
        let fp = offer(&[0xc02f, 0x0005]).fingerprint;
        assert_eq!(agg.fp_count(&fp), 2);
        let s = agg.sighting_of(&fp).unwrap();
        assert_eq!(s.duration_days(), 20);
        assert_eq!(s.connections, 2);
    }

    #[test]
    fn merge_matches_sequential() {
        let recs: Vec<ConnectionRecord> = (0..50)
            .map(|i| {
                record(
                    (2016, 1 + (i % 3) as u8, 1 + (i % 27) as u8),
                    if i % 2 == 0 {
                        &[0xc02f, 0x0005]
                    } else {
                        &[0x002f]
                    },
                    if i % 5 == 0 {
                        None
                    } else {
                        Some((0xc02f, 0x0303))
                    },
                )
            })
            .collect();
        let mut seq = NotaryAggregate::new();
        for r in &recs {
            seq.ingest(r);
        }
        let mut a = NotaryAggregate::new();
        let mut b = NotaryAggregate::new();
        for (i, r) in recs.iter().enumerate() {
            if i % 2 == 0 {
                a.ingest(r);
            } else {
                b.ingest(r);
            }
        }
        a.merge(b);
        assert_eq!(a.total(), seq.total());
        for (m, s) in seq.iter_months() {
            let am = a.month(*m).unwrap();
            assert_eq!(am.total, s.total);
            assert_eq!(am.answered, s.answered);
            assert_eq!(am.adv_rc4, s.adv_rc4);
            assert_eq!(am.fp_flags.len(), s.fp_flags.len());
        }
        // Full id-order-independent equality: the merged shard interned
        // fingerprints in a different order than the serial pass.
        assert_eq!(a, seq);
    }

    #[test]
    fn equality_ignores_interning_order() {
        // Same records, opposite ingestion order → different dense ids
        // but equal aggregates.
        let r1 = record((2016, 3, 1), &[0xc02f, 0x0005], Some((0xc02f, 0x0303)));
        let r2 = record((2016, 3, 2), &[0x002f], Some((0x002f, 0x0303)));
        let mut a = NotaryAggregate::new();
        a.ingest(&r1);
        a.ingest(&r2);
        let mut b = NotaryAggregate::new();
        b.ingest(&r2);
        b.ingest(&r1);
        assert_ne!(
            a.interner
                .lookup_id64(offer(&[0xc02f, 0x0005]).fingerprint.id64()),
            b.interner
                .lookup_id64(offer(&[0xc02f, 0x0005]).fingerprint.id64()),
        );
        assert_eq!(a, b);
        // And a genuinely different count is still detected.
        b.ingest(&r1);
        assert_ne!(a, b);
    }

    #[test]
    fn pct_curve() {
        let mut m = MonthlyStats::default();
        m.curves.insert(23, 80);
        m.curves.insert(29, 20);
        assert!((m.pct_curve(23) - 80.0).abs() < 1e-9);
        assert!((m.pct_curve(29) - 20.0).abs() < 1e-9);
        assert_eq!(m.pct_curve(24), 0.0);
    }
}
