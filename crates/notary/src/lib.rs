//! # tlscope-notary
//!
//! The passive TLS monitoring pipeline — the reproduction's analogue of
//! the ICSI SSL Notary (§3.1 of *Coming of Age*, IMC 2018). It consumes
//! raw tapped flows (bytes only), extracts per-connection records with
//! the tolerant wire parsers, and aggregates them into the monthly
//! counters behind every figure of the paper. A batched worker
//! pipeline on scoped threads mirrors the real system's Bro worker
//! fan-out, with per-stage accounting in [`PipelineMetrics`].
//!
//! ```
//! use tlscope_notary::{ingest_serial, TappedFlow};
//! use tlscope_chron::Date;
//! use tlscope_wire::record::Record;
//! use tlscope_wire::{ClientHello, CipherSuite, ProtocolVersion};
//!
//! let hello = ClientHello {
//!     legacy_version: ProtocolVersion::Tls12,
//!     random: [0; 32],
//!     session_id: vec![],
//!     cipher_suites: vec![CipherSuite(0xc02f)],
//!     compression_methods: vec![0],
//!     extensions: None,
//! };
//! let flow = TappedFlow {
//!     date: Date::ymd(2016, 5, 1),
//!     port: 443,
//!     client: Record::wrap_handshake(ProtocolVersion::Tls10, &hello.to_handshake_bytes())
//!         .iter().flat_map(|r| r.to_bytes()).collect(),
//!     server: None,
//! };
//! let agg = ingest_serial([flow]);
//! assert_eq!(agg.total(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod checkpoint;
pub mod conn;
pub mod metrics;
pub mod pipeline;
pub mod pool;
pub mod store;

pub use aggregate::{
    AeadCounts, FpClassFlags, KxCounts, MonthlyStats, NotaryAggregate, PositionMean, VersionCounts,
};
pub use checkpoint::{CheckpointError, DirLoad};
pub use conn::{
    flush_parse_cache_metrics, parse_cache_set_capacity, parse_cache_stats, ClientOffer,
    ConnectionRecord, ExtractError, ExtractScratch, ParseCacheStats, ServerAnswer, ServerOutcome,
};
pub use metrics::{MetricsSnapshot, PipelineLatency, PipelineMetrics};
pub use pipeline::{
    ingest_batched, ingest_borrowed, ingest_flow, ingest_parallel, ingest_parallel_metered,
    ingest_serial, ingest_serial_metered, ingest_supervised_with, ingest_with, PipelineConfig,
    PipelineConfigError, TappedFlow, DEFAULT_BATCH,
};
pub use pool::{
    ingest_pooled, ingest_pooled_flow, ingest_pooled_scope, ingest_pooled_supervised, FlowBuf,
    FlowPool, PoolStats, PooledBatch, PooledFeeder, PooledFlow,
};
pub use store::{from_text, to_text, StoreError};
