//! Error types for wire-format parsing and serialisation.

use core::fmt;

/// Errors produced while decoding TLS/SSL wire data.
///
/// Variants are deliberately fine-grained: a passive monitor wants to
/// count *why* handshakes fail to parse, not just that they did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before a complete structure could be read.
    ///
    /// Carries the number of additional bytes that were needed at the
    /// point of failure (a lower bound).
    Truncated {
        /// Additional bytes required (lower bound).
        needed: usize,
    },
    /// A length prefix points past the end of its enclosing structure.
    LengthOverflow {
        /// The declared length.
        declared: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A vector length was not a multiple of its element size.
    RaggedVector {
        /// The declared byte length of the vector.
        len: usize,
        /// The element size it must be divisible by.
        element: usize,
    },
    /// A record or message carried an unknown/unsupported content type.
    UnknownContentType(u8),
    /// A handshake message carried an unexpected type for this parser.
    UnexpectedHandshakeType {
        /// The handshake type found on the wire.
        got: u8,
        /// The handshake type the caller asked for.
        want: u8,
    },
    /// A structurally invalid field value (e.g. zero-length cipher list
    /// in a ClientHello, or a session id longer than 32 bytes).
    InvalidField(&'static str),
    /// Trailing bytes remained after a complete parse where none are
    /// permitted.
    TrailingBytes(usize),
    /// The record looks like SSLv2 but is malformed.
    MalformedSslv2,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed } => {
                write!(f, "input truncated: at least {needed} more byte(s) needed")
            }
            WireError::LengthOverflow {
                declared,
                available,
            } => write!(
                f,
                "declared length {declared} exceeds available {available} byte(s)"
            ),
            WireError::RaggedVector { len, element } => write!(
                f,
                "vector length {len} is not a multiple of element size {element}"
            ),
            WireError::UnknownContentType(t) => write!(f, "unknown record content type {t:#04x}"),
            WireError::UnexpectedHandshakeType { got, want } => write!(
                f,
                "unexpected handshake type {got:#04x} (wanted {want:#04x})"
            ),
            WireError::InvalidField(which) => write!(f, "invalid field: {which}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after structure"),
            WireError::MalformedSslv2 => write!(f, "malformed SSLv2 record"),
        }
    }
}

impl std::error::Error for WireError {}

/// Convenience alias used throughout the wire crate.
pub type WireResult<T> = Result<T, WireError>;
