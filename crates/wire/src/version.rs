//! SSL/TLS protocol versions, including TLS 1.3 drafts and vendor
//! experimental variants.
//!
//! The paper's Table 1 (release dates) lives here, as do the TLS 1.3
//! draft version numbers observed in the wild (§6.4): IETF drafts use
//! `0x7f00 | draft`, and Google's experimental variants use the `0x7eXX`
//! space (`0x7e02` was the most commonly advertised value in the Notary
//! dataset, 82.3 % of connections carrying the extension).

use core::fmt;
use tlscope_chron::Date;

/// An SSL/TLS protocol version as it appears on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProtocolVersion {
    /// SSL 2.0 (wire 0x0002).
    Ssl2,
    /// SSL 3.0 (wire 0x0300).
    Ssl3,
    /// TLS 1.0 (wire 0x0301).
    Tls10,
    /// TLS 1.1 (wire 0x0302).
    Tls11,
    /// TLS 1.2 (wire 0x0303).
    Tls12,
    /// TLS 1.3 final (wire 0x0304).
    Tls13,
    /// A TLS 1.3 IETF draft, `0x7f00 | n`.
    Tls13Draft(u8),
    /// A Google experimental TLS 1.3 variant, `0x7eXX`.
    Tls13Experiment(u8),
    /// Anything else.
    Unknown(u16),
}

impl ProtocolVersion {
    /// The wire encoding of this version.
    pub fn to_wire(self) -> u16 {
        match self {
            ProtocolVersion::Ssl2 => 0x0002,
            ProtocolVersion::Ssl3 => 0x0300,
            ProtocolVersion::Tls10 => 0x0301,
            ProtocolVersion::Tls11 => 0x0302,
            ProtocolVersion::Tls12 => 0x0303,
            ProtocolVersion::Tls13 => 0x0304,
            ProtocolVersion::Tls13Draft(n) => 0x7f00 | n as u16,
            ProtocolVersion::Tls13Experiment(n) => 0x7e00 | n as u16,
            ProtocolVersion::Unknown(v) => v,
        }
    }

    /// Decode a wire version value.
    pub fn from_wire(v: u16) -> Self {
        match v {
            0x0002 => ProtocolVersion::Ssl2,
            0x0300 => ProtocolVersion::Ssl3,
            0x0301 => ProtocolVersion::Tls10,
            0x0302 => ProtocolVersion::Tls11,
            0x0303 => ProtocolVersion::Tls12,
            0x0304 => ProtocolVersion::Tls13,
            v if v & 0xff00 == 0x7f00 => ProtocolVersion::Tls13Draft((v & 0xff) as u8),
            v if v & 0xff00 == 0x7e00 => ProtocolVersion::Tls13Experiment((v & 0xff) as u8),
            v => ProtocolVersion::Unknown(v),
        }
    }

    /// True for TLS 1.3 final, any IETF draft, or a vendor experiment.
    pub fn is_tls13_family(self) -> bool {
        matches!(
            self,
            ProtocolVersion::Tls13
                | ProtocolVersion::Tls13Draft(_)
                | ProtocolVersion::Tls13Experiment(_)
        )
    }

    /// The release (or for drafts, publication-era) date, per Table 1.
    ///
    /// Returns `None` for unknown versions.
    pub fn release_date(self) -> Option<Date> {
        Some(match self {
            ProtocolVersion::Ssl2 => Date::ymd(1995, 2, 1),
            ProtocolVersion::Ssl3 => Date::ymd(1996, 11, 1),
            ProtocolVersion::Tls10 => Date::ymd(1999, 1, 1),
            ProtocolVersion::Tls11 => Date::ymd(2006, 4, 1),
            ProtocolVersion::Tls12 => Date::ymd(2008, 8, 1),
            ProtocolVersion::Tls13 => Date::ymd(2018, 8, 1),
            _ => return None,
        })
    }

    /// A canonical comparison rank: later-protocol is greater, with the
    /// TLS 1.3 family ranked above TLS 1.2 and drafts below final 1.3.
    pub fn rank(self) -> u32 {
        match self {
            ProtocolVersion::Ssl2 => 100,
            ProtocolVersion::Ssl3 => 200,
            ProtocolVersion::Tls10 => 300,
            ProtocolVersion::Tls11 => 400,
            ProtocolVersion::Tls12 => 500,
            ProtocolVersion::Tls13Experiment(n) => 580 + n as u32 % 10,
            ProtocolVersion::Tls13Draft(n) => 600 + n as u32,
            ProtocolVersion::Tls13 => 700,
            ProtocolVersion::Unknown(_) => 0,
        }
    }

    /// All released versions in chronological order (Table 1).
    pub fn released() -> [ProtocolVersion; 6] {
        [
            ProtocolVersion::Ssl2,
            ProtocolVersion::Ssl3,
            ProtocolVersion::Tls10,
            ProtocolVersion::Tls11,
            ProtocolVersion::Tls12,
            ProtocolVersion::Tls13,
        ]
    }
}

impl fmt::Display for ProtocolVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolVersion::Ssl2 => write!(f, "SSLv2"),
            ProtocolVersion::Ssl3 => write!(f, "SSLv3"),
            ProtocolVersion::Tls10 => write!(f, "TLSv1.0"),
            ProtocolVersion::Tls11 => write!(f, "TLSv1.1"),
            ProtocolVersion::Tls12 => write!(f, "TLSv1.2"),
            ProtocolVersion::Tls13 => write!(f, "TLSv1.3"),
            ProtocolVersion::Tls13Draft(n) => write!(f, "TLSv1.3-draft{n}"),
            ProtocolVersion::Tls13Experiment(n) => write!(f, "TLSv1.3-exp{n:02x}"),
            ProtocolVersion::Unknown(v) => write!(f, "unknown({v:#06x})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip() {
        for v in [
            ProtocolVersion::Ssl2,
            ProtocolVersion::Ssl3,
            ProtocolVersion::Tls10,
            ProtocolVersion::Tls11,
            ProtocolVersion::Tls12,
            ProtocolVersion::Tls13,
            ProtocolVersion::Tls13Draft(18),
            ProtocolVersion::Tls13Draft(28),
            ProtocolVersion::Tls13Experiment(2),
            ProtocolVersion::Unknown(0x1234),
        ] {
            assert_eq!(ProtocolVersion::from_wire(v.to_wire()), v);
        }
    }

    #[test]
    fn known_wire_values() {
        assert_eq!(ProtocolVersion::Tls12.to_wire(), 0x0303);
        assert_eq!(ProtocolVersion::Tls13Draft(18).to_wire(), 0x7f12);
        assert_eq!(ProtocolVersion::Tls13Draft(28).to_wire(), 0x7f1c);
        // The Google experimental variant the paper saw in 82.3 % of
        // supported_versions extensions.
        assert_eq!(ProtocolVersion::Tls13Experiment(2).to_wire(), 0x7e02);
    }

    #[test]
    fn tls13_family() {
        assert!(ProtocolVersion::Tls13.is_tls13_family());
        assert!(ProtocolVersion::Tls13Draft(18).is_tls13_family());
        assert!(ProtocolVersion::Tls13Experiment(2).is_tls13_family());
        assert!(!ProtocolVersion::Tls12.is_tls13_family());
    }

    #[test]
    fn release_dates_table1() {
        // Table 1 of the paper.
        assert_eq!(
            ProtocolVersion::Ssl2.release_date(),
            Some(Date::ymd(1995, 2, 1))
        );
        assert_eq!(
            ProtocolVersion::Tls10.release_date(),
            Some(Date::ymd(1999, 1, 1))
        );
        assert_eq!(
            ProtocolVersion::Tls13.release_date(),
            Some(Date::ymd(2018, 8, 1))
        );
        assert_eq!(ProtocolVersion::Tls13Draft(18).release_date(), None);
    }

    #[test]
    fn rank_ordering() {
        let mut prev = 0;
        for v in ProtocolVersion::released() {
            assert!(v.rank() > prev);
            prev = v.rank();
        }
        assert!(ProtocolVersion::Tls13Draft(18).rank() > ProtocolVersion::Tls12.rank());
        assert!(ProtocolVersion::Tls13.rank() > ProtocolVersion::Tls13Draft(28).rank());
    }

    #[test]
    fn display() {
        assert_eq!(ProtocolVersion::Tls12.to_string(), "TLSv1.2");
        assert_eq!(
            ProtocolVersion::Tls13Draft(18).to_string(),
            "TLSv1.3-draft18"
        );
    }
}
