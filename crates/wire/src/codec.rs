//! Byte-level reader/writer helpers for TLS vector encodings.
//!
//! TLS structures are built from fixed-width big-endian integers and
//! length-prefixed opaque vectors (`opaque foo<0..2^16-1>`). [`Reader`]
//! is a cursor over a borrowed byte slice; [`Writer`] appends to an owned
//! buffer and offers the standard 8/16/24-bit length-prefix idioms.

use crate::error::{WireError, WireResult};

/// A non-allocating cursor over a byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current offset from the start of the underlying slice.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Consume and return `n` bytes.
    pub fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n - self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Consume a single byte.
    pub fn u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Consume a big-endian u16.
    pub fn u16(&mut self) -> WireResult<u16> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Consume a big-endian 24-bit integer.
    pub fn u24(&mut self) -> WireResult<u32> {
        let b = self.take(3)?;
        Ok(u32::from_be_bytes([0, b[0], b[1], b[2]]))
    }

    /// Consume a big-endian u32.
    pub fn u32(&mut self) -> WireResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Consume a vector with an 8-bit length prefix and return a
    /// sub-reader over its body.
    pub fn vec8(&mut self) -> WireResult<Reader<'a>> {
        let len = self.u8()? as usize;
        Ok(Reader::new(self.take(len)?))
    }

    /// Consume a vector with a 16-bit length prefix and return a
    /// sub-reader over its body.
    pub fn vec16(&mut self) -> WireResult<Reader<'a>> {
        let len = self.u16()? as usize;
        if self.remaining() < len {
            return Err(WireError::LengthOverflow {
                declared: len,
                available: self.remaining(),
            });
        }
        Ok(Reader::new(self.take(len)?))
    }

    /// Consume a vector with a 24-bit length prefix and return a
    /// sub-reader over its body.
    pub fn vec24(&mut self) -> WireResult<Reader<'a>> {
        let len = self.u24()? as usize;
        if self.remaining() < len {
            return Err(WireError::LengthOverflow {
                declared: len,
                available: self.remaining(),
            });
        }
        Ok(Reader::new(self.take(len)?))
    }

    /// Read the rest of the buffer.
    pub fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    /// Drain this reader into a list of big-endian u16s.
    ///
    /// Fails with [`WireError::RaggedVector`] on odd lengths.
    pub fn u16_list(&mut self) -> WireResult<Vec<u16>> {
        if !self.remaining().is_multiple_of(2) {
            return Err(WireError::RaggedVector {
                len: self.remaining(),
                element: 2,
            });
        }
        let mut out = Vec::with_capacity(self.remaining() / 2);
        while !self.is_empty() {
            out.push(self.u16()?);
        }
        Ok(out)
    }

    /// Drain this reader into a list of bytes.
    pub fn u8_list(&mut self) -> Vec<u8> {
        self.rest().to_vec()
    }

    /// Require that the reader has been fully consumed.
    pub fn expect_empty(&self) -> WireResult<()> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.remaining()))
        }
    }
}

/// An appending writer with TLS length-prefix helpers.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// New empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// New writer with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(n),
        }
    }

    /// Wrap an existing buffer, appending after its current contents.
    ///
    /// Together with [`Writer::into_bytes`] this lets a hot loop reuse
    /// one allocation across serialisations: take the buffer out,
    /// write, put it back.
    pub fn from_vec(buf: Vec<u8>) -> Self {
        Writer { buf }
    }

    /// Finish and return the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append raw bytes.
    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(b);
        self
    }

    /// Append a byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a big-endian u16.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Append a big-endian 24-bit integer (high byte of `v` must be 0).
    pub fn u24(&mut self, v: u32) -> &mut Self {
        debug_assert!(v < 1 << 24, "u24 overflow");
        self.buf.extend_from_slice(&v.to_be_bytes()[1..]);
        self
    }

    /// Append a big-endian u32.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Append a list of big-endian u16s (no length prefix).
    pub fn u16_list(&mut self, vs: &[u16]) -> &mut Self {
        for v in vs {
            self.u16(*v);
        }
        self
    }

    /// Write a body via `f`, then prefix it with its 8-bit length.
    ///
    /// # Panics
    /// Panics if the body exceeds 255 bytes (a caller bug, not input
    /// dependent).
    pub fn vec8(&mut self, f: impl FnOnce(&mut Writer)) -> &mut Self {
        let mark = self.buf.len();
        self.buf.push(0);
        f(self);
        let len = self.buf.len() - mark - 1;
        assert!(len <= u8::MAX as usize, "vec8 body too long: {len}");
        self.buf[mark] = len as u8;
        self
    }

    /// Write a body via `f`, then prefix it with its 16-bit length.
    ///
    /// # Panics
    /// Panics if the body exceeds 65535 bytes.
    pub fn vec16(&mut self, f: impl FnOnce(&mut Writer)) -> &mut Self {
        let mark = self.buf.len();
        self.buf.extend_from_slice(&[0, 0]);
        f(self);
        let len = self.buf.len() - mark - 2;
        assert!(len <= u16::MAX as usize, "vec16 body too long: {len}");
        self.buf[mark..mark + 2].copy_from_slice(&(len as u16).to_be_bytes());
        self
    }

    /// Write a body via `f`, then prefix it with its 24-bit length.
    ///
    /// # Panics
    /// Panics if the body exceeds 2^24 - 1 bytes.
    pub fn vec24(&mut self, f: impl FnOnce(&mut Writer)) -> &mut Self {
        let mark = self.buf.len();
        self.buf.extend_from_slice(&[0, 0, 0]);
        f(self);
        let len = self.buf.len() - mark - 3;
        assert!(len < 1 << 24, "vec24 body too long: {len}");
        self.buf[mark..mark + 3].copy_from_slice(&(len as u32).to_be_bytes()[1..]);
        self
    }
}

/// Overwrite the big-endian u16 at `offset` in already-serialised
/// bytes. The patching half of a template cache: a serialised message
/// is reused and only its volatile slots (GREASE values, length-stable
/// fields) are rewritten in place.
///
/// # Panics
/// Panics if `offset + 2` exceeds `buf.len()` (a caller bug: patch
/// offsets are recorded at serialisation time from the same layout).
pub fn patch_u16(buf: &mut [u8], offset: usize, v: u16) {
    buf[offset..offset + 2].copy_from_slice(&v.to_be_bytes());
}

/// Overwrite `bytes.len()` bytes at `offset` in already-serialised
/// bytes — the fixed-width sibling of [`patch_u16`], used for the
/// 32-byte hello randoms.
///
/// # Panics
/// Panics if the target range exceeds `buf.len()`.
pub fn patch_bytes(buf: &mut [u8], offset: usize, bytes: &[u8]) {
    buf[offset..offset + bytes.len()].copy_from_slice(bytes);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_integers() {
        let mut r = Reader::new(&[0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a]);
        assert_eq!(r.u8().unwrap(), 0x01);
        assert_eq!(r.u16().unwrap(), 0x0203);
        assert_eq!(r.u24().unwrap(), 0x040506);
        assert_eq!(r.u32().unwrap(), 0x0708090a);
        assert!(r.is_empty());
        assert_eq!(r.u8(), Err(WireError::Truncated { needed: 1 }));
    }

    #[test]
    fn reader_vectors() {
        // vec8 of [0xaa, 0xbb], then vec16 of [0x01].
        let mut r = Reader::new(&[0x02, 0xaa, 0xbb, 0x00, 0x01, 0x01]);
        let mut inner = r.vec8().unwrap();
        assert_eq!(inner.rest(), &[0xaa, 0xbb]);
        let mut inner = r.vec16().unwrap();
        assert_eq!(inner.u8().unwrap(), 0x01);
        assert!(r.is_empty());
    }

    #[test]
    fn reader_vector_overflow() {
        let mut r = Reader::new(&[0x00, 0x05, 0x01]);
        assert!(matches!(
            r.vec16(),
            Err(WireError::LengthOverflow {
                declared: 5,
                available: 1
            })
        ));
    }

    #[test]
    fn reader_ragged_u16_list() {
        let mut r = Reader::new(&[0x00, 0x01, 0x02]);
        assert_eq!(
            r.u16_list(),
            Err(WireError::RaggedVector { len: 3, element: 2 })
        );
    }

    #[test]
    fn reader_u16_list() {
        let mut r = Reader::new(&[0xc0, 0x2b, 0x00, 0x9c]);
        assert_eq!(r.u16_list().unwrap(), vec![0xc02b, 0x009c]);
    }

    #[test]
    fn expect_empty() {
        let mut r = Reader::new(&[0x00]);
        assert_eq!(r.expect_empty(), Err(WireError::TrailingBytes(1)));
        r.u8().unwrap();
        assert_eq!(r.expect_empty(), Ok(()));
    }

    #[test]
    fn writer_roundtrip() {
        let mut w = Writer::new();
        w.u8(0x16).u16(0x0303).u24(0x123456).u32(0xdeadbeef);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0x16);
        assert_eq!(r.u16().unwrap(), 0x0303);
        assert_eq!(r.u24().unwrap(), 0x123456);
        assert_eq!(r.u32().unwrap(), 0xdeadbeef);
    }

    #[test]
    fn writer_nested_length_prefixes() {
        let mut w = Writer::new();
        w.vec16(|w| {
            w.vec8(|w| {
                w.bytes(&[1, 2, 3]);
            });
            w.u16(0xc02f);
        });
        assert_eq!(w.into_bytes(), vec![0x00, 0x06, 0x03, 1, 2, 3, 0xc0, 0x2f]);
    }

    #[test]
    fn writer_empty_vectors() {
        let mut w = Writer::new();
        w.vec8(|_| {}).vec16(|_| {}).vec24(|_| {});
        assert_eq!(w.into_bytes(), vec![0, 0, 0, 0, 0, 0]);
    }
}
