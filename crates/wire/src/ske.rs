//! Minimal ServerKeyExchange support.
//!
//! The Notary learns the negotiated curve (§6.3.3) from the
//! ServerKeyExchange message of (EC)DHE handshakes — the ServerHello
//! does not carry it. We model exactly the fields a passive monitor
//! reads: the ECParameters header (curve_type + named curve) of an
//! ECDHE SKE. Key material and signatures are opaque filler, as they
//! would be to a monitor that only logs parameters.

use crate::codec::{Reader, Writer};
use crate::error::{WireError, WireResult};
use crate::groups::NamedGroup;
use crate::handshake::handshake_type;

/// ECCurveType value for named curves.
pub const CURVE_TYPE_NAMED: u8 = 3;

/// Build a framed ECDHE ServerKeyExchange advertising `group`.
///
/// `pubkey_len` controls the size of the (opaque) ephemeral public key;
/// 65 bytes matches an uncompressed P-256 point.
pub fn ecdhe_ske(group: NamedGroup, pubkey_len: u8) -> Vec<u8> {
    let mut w = Writer::new();
    write_ecdhe_ske(&mut w, group, pubkey_len);
    w.into_bytes()
}

/// Append a framed ECDHE ServerKeyExchange to `w` — the
/// allocation-free form of [`ecdhe_ske`].
pub fn write_ecdhe_ske(w: &mut Writer, group: NamedGroup, pubkey_len: u8) {
    const POINT_FILLER: [u8; 255] = [0x04; 255];
    w.u8(handshake_type::SERVER_KEY_EXCHANGE);
    w.vec24(|w| {
        w.u8(CURVE_TYPE_NAMED);
        w.u16(group.0);
        w.vec8(|w| {
            // Opaque ephemeral point; a monitor does not interpret it.
            w.bytes(&POINT_FILLER[..pubkey_len as usize]);
        });
        // signature_algorithm + opaque signature (TLS 1.2 form).
        w.u16(0x0401);
        w.vec16(|w| {
            w.bytes(&[0u8; 64]);
        });
    });
}

/// Parse the named curve out of an ECDHE ServerKeyExchange *body*.
pub fn parse_ske_curve(body: &[u8]) -> WireResult<NamedGroup> {
    let mut r = Reader::new(body);
    let curve_type = r.u8()?;
    if curve_type != CURVE_TYPE_NAMED {
        return Err(WireError::InvalidField("explicit curve parameters"));
    }
    Ok(NamedGroup(r.u16()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handshake::read_handshake;

    #[test]
    fn ske_roundtrip() {
        let bytes = ecdhe_ske(NamedGroup::X25519, 32);
        let mut r = Reader::new(&bytes);
        let (typ, body) = read_handshake(&mut r).unwrap();
        assert_eq!(typ, handshake_type::SERVER_KEY_EXCHANGE);
        assert_eq!(parse_ske_curve(body).unwrap(), NamedGroup::X25519);
        assert!(r.is_empty());
    }

    #[test]
    fn explicit_curves_rejected() {
        let mut w = Writer::new();
        w.u8(1).u16(23);
        assert!(parse_ske_curve(&w.into_bytes()).is_err());
    }

    #[test]
    fn truncated_ske_rejected() {
        let bytes = ecdhe_ske(NamedGroup::SECP256R1, 65);
        let mut r = Reader::new(&bytes);
        let (_, body) = read_handshake(&mut r).unwrap();
        assert!(parse_ske_curve(&body[..1]).is_err());
    }
}
