//! TLS handshake messages: framing, ClientHello, ServerHello.
//!
//! These are the only two messages the study needs — they travel in the
//! clear and carry everything the paper measures (§2.1). Parsers accept
//! any structurally valid hello (unknown versions, unknown suites,
//! unknown extensions) because a passive monitor sees whatever the
//! Internet throws at it; classification happens later against the
//! registries.

use crate::codec::{Reader, Writer};
use crate::error::{WireError, WireResult};
use crate::exts::{ext_type, read_extensions, write_extensions, Extension};
use crate::suites::CipherSuite;
use crate::version::ProtocolVersion;

/// Handshake message type codes.
pub mod handshake_type {
    /// hello_request.
    pub const HELLO_REQUEST: u8 = 0;
    /// client_hello.
    pub const CLIENT_HELLO: u8 = 1;
    /// server_hello.
    pub const SERVER_HELLO: u8 = 2;
    /// certificate.
    pub const CERTIFICATE: u8 = 11;
    /// server_key_exchange.
    pub const SERVER_KEY_EXCHANGE: u8 = 12;
    /// server_hello_done.
    pub const SERVER_HELLO_DONE: u8 = 14;
    /// client_key_exchange.
    pub const CLIENT_KEY_EXCHANGE: u8 = 16;
    /// finished.
    pub const FINISHED: u8 = 20;
}

/// Wrap a handshake body in its 4-byte header (type + u24 length).
pub fn frame_handshake(typ: u8, body: &[u8]) -> Vec<u8> {
    let mut w = Writer::with_capacity(body.len() + 4);
    w.u8(typ);
    w.u24(body.len() as u32);
    w.bytes(body);
    w.into_bytes()
}

/// Split one handshake message off `r`: returns `(type, body)`.
pub fn read_handshake<'a>(r: &mut Reader<'a>) -> WireResult<(u8, &'a [u8])> {
    let typ = r.u8()?;
    let len = r.u24()? as usize;
    if r.remaining() < len {
        return Err(WireError::LengthOverflow {
            declared: len,
            available: r.remaining(),
        });
    }
    Ok((typ, r.take(len)?))
}

/// A parsed TLS/SSL3 ClientHello.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientHello {
    /// The legacy record-layer version field. For TLS 1.3 clients this
    /// stays at TLS 1.2; the true maximum lives in `supported_versions`.
    pub legacy_version: ProtocolVersion,
    /// 32 bytes of client randomness.
    pub random: [u8; 32],
    /// Session id (0–32 bytes).
    pub session_id: Vec<u8>,
    /// Offered cipher suites, in client preference order.
    pub cipher_suites: Vec<CipherSuite>,
    /// Offered compression methods.
    pub compression_methods: Vec<u8>,
    /// Extension block: `None` when absent entirely (pre-TLS-1.0
    /// clients), `Some` — possibly empty — when present. The distinction
    /// is itself a fingerprint feature.
    pub extensions: Option<Vec<Extension>>,
}

impl ClientHello {
    /// Extensions as a slice (empty when the block is absent).
    pub fn extensions(&self) -> &[Extension] {
        self.extensions.as_deref().unwrap_or(&[])
    }

    /// Find the first extension of a given type.
    pub fn find_extension(&self, typ: u16) -> Option<&Extension> {
        self.extensions().iter().find(|e| e.typ == typ)
    }

    /// The versions this client actually supports: the
    /// `supported_versions` list if present, otherwise everything from
    /// SSL 3 up to the legacy version field (the classic "maximum
    /// version" semantics).
    pub fn offered_versions(&self) -> Vec<ProtocolVersion> {
        if let Some(e) = self.find_extension(ext_type::SUPPORTED_VERSIONS) {
            if let Ok(vs) = e.parse_supported_versions() {
                return vs
                    .into_iter()
                    .filter(|v| !matches!(v, ProtocolVersion::Unknown(x) if crate::grease::is_grease(*x)))
                    .collect();
            }
        }
        let all = [
            ProtocolVersion::Ssl3,
            ProtocolVersion::Tls10,
            ProtocolVersion::Tls11,
            ProtocolVersion::Tls12,
        ];
        all.iter()
            .copied()
            .filter(|v| v.rank() <= self.legacy_version.rank())
            .collect()
    }

    /// True if the client advertises any TLS 1.3 (final, draft, or
    /// experimental) version.
    pub fn offers_tls13(&self) -> bool {
        self.offered_versions().iter().any(|v| v.is_tls13_family())
    }

    /// Append the handshake *body* (without the 4-byte header) to `w`.
    pub fn write_body(&self, w: &mut Writer) {
        w.u16(self.legacy_version.to_wire());
        w.bytes(&self.random);
        w.vec8(|w| {
            w.bytes(&self.session_id);
        });
        w.vec16(|w| {
            for c in &self.cipher_suites {
                w.u16(c.0);
            }
        });
        w.vec8(|w| {
            w.bytes(&self.compression_methods);
        });
        if let Some(exts) = &self.extensions {
            write_extensions(w, exts);
        }
    }

    /// Append the framed handshake message to `w`.
    pub fn write_handshake(&self, w: &mut Writer) {
        w.u8(handshake_type::CLIENT_HELLO);
        w.vec24(|w| self.write_body(w));
    }

    /// Serialise to the handshake *body* (without the 4-byte header).
    pub fn to_body(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(128);
        self.write_body(&mut w);
        w.into_bytes()
    }

    /// Serialise to a framed handshake message.
    pub fn to_handshake_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(160);
        self.write_handshake(&mut w);
        w.into_bytes()
    }

    /// Parse from a handshake body.
    pub fn parse_body(body: &[u8]) -> WireResult<Self> {
        let mut r = Reader::new(body);
        let legacy_version = ProtocolVersion::from_wire(r.u16()?);
        let mut random = [0u8; 32];
        random.copy_from_slice(r.take(32)?);
        let session_id = r.vec8()?.u8_list();
        if session_id.len() > 32 {
            return Err(WireError::InvalidField("session_id longer than 32 bytes"));
        }
        let suites = r.vec16()?.u16_list()?;
        if suites.is_empty() {
            return Err(WireError::InvalidField("empty cipher suite list"));
        }
        let compression_methods = r.vec8()?.u8_list();
        if compression_methods.is_empty() {
            return Err(WireError::InvalidField("empty compression list"));
        }
        let extensions = if r.is_empty() {
            None
        } else {
            let exts = read_extensions(&mut r)?;
            r.expect_empty()?;
            Some(exts)
        };
        Ok(ClientHello {
            legacy_version,
            random,
            session_id,
            cipher_suites: suites.into_iter().map(CipherSuite).collect(),
            compression_methods,
            extensions,
        })
    }

    /// Parse from a framed handshake message.
    pub fn parse_handshake(bytes: &[u8]) -> WireResult<Self> {
        let mut r = Reader::new(bytes);
        let (typ, body) = read_handshake(&mut r)?;
        if typ != handshake_type::CLIENT_HELLO {
            return Err(WireError::UnexpectedHandshakeType {
                got: typ,
                want: handshake_type::CLIENT_HELLO,
            });
        }
        r.expect_empty()?;
        Self::parse_body(body)
    }
}

/// A parsed TLS/SSL3 ServerHello.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerHello {
    /// The version field; for TLS 1.3 servers this is 1.2 with the real
    /// version in `supported_versions`.
    pub legacy_version: ProtocolVersion,
    /// 32 bytes of server randomness.
    pub random: [u8; 32],
    /// Echoed or fresh session id.
    pub session_id: Vec<u8>,
    /// The single selected cipher suite.
    pub cipher_suite: CipherSuite,
    /// The selected compression method.
    pub compression_method: u8,
    /// Extension block, if present.
    pub extensions: Option<Vec<Extension>>,
}

impl ServerHello {
    /// Extensions as a slice (empty when the block is absent).
    pub fn extensions(&self) -> &[Extension] {
        self.extensions.as_deref().unwrap_or(&[])
    }

    /// Find the first extension of a given type.
    pub fn find_extension(&self, typ: u16) -> Option<&Extension> {
        self.extensions().iter().find(|e| e.typ == typ)
    }

    /// The actually negotiated protocol version: the
    /// `supported_versions` selection if present (TLS 1.3 mechanism),
    /// otherwise the legacy version field.
    pub fn negotiated_version(&self) -> ProtocolVersion {
        if let Some(e) = self.find_extension(ext_type::SUPPORTED_VERSIONS) {
            if let Ok(v) = e.parse_selected_version() {
                return v;
            }
        }
        self.legacy_version
    }

    /// Append the handshake *body* (without the 4-byte header) to `w`.
    pub fn write_body(&self, w: &mut Writer) {
        w.u16(self.legacy_version.to_wire());
        w.bytes(&self.random);
        w.vec8(|w| {
            w.bytes(&self.session_id);
        });
        w.u16(self.cipher_suite.0);
        w.u8(self.compression_method);
        if let Some(exts) = &self.extensions {
            write_extensions(w, exts);
        }
    }

    /// Append the framed handshake message to `w`.
    pub fn write_handshake(&self, w: &mut Writer) {
        w.u8(handshake_type::SERVER_HELLO);
        w.vec24(|w| self.write_body(w));
    }

    /// Serialise to the handshake *body* (without the 4-byte header).
    pub fn to_body(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(96);
        self.write_body(&mut w);
        w.into_bytes()
    }

    /// Serialise to a framed handshake message.
    pub fn to_handshake_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(128);
        self.write_handshake(&mut w);
        w.into_bytes()
    }

    /// Parse from a handshake body.
    pub fn parse_body(body: &[u8]) -> WireResult<Self> {
        let mut r = Reader::new(body);
        let legacy_version = ProtocolVersion::from_wire(r.u16()?);
        let mut random = [0u8; 32];
        random.copy_from_slice(r.take(32)?);
        let session_id = r.vec8()?.u8_list();
        if session_id.len() > 32 {
            return Err(WireError::InvalidField("session_id longer than 32 bytes"));
        }
        let cipher_suite = CipherSuite(r.u16()?);
        let compression_method = r.u8()?;
        let extensions = if r.is_empty() {
            None
        } else {
            let exts = read_extensions(&mut r)?;
            r.expect_empty()?;
            Some(exts)
        };
        Ok(ServerHello {
            legacy_version,
            random,
            session_id,
            cipher_suite,
            compression_method,
            extensions,
        })
    }

    /// Parse from a framed handshake message.
    pub fn parse_handshake(bytes: &[u8]) -> WireResult<Self> {
        let mut r = Reader::new(bytes);
        let (typ, body) = read_handshake(&mut r)?;
        if typ != handshake_type::SERVER_HELLO {
            return Err(WireError::UnexpectedHandshakeType {
                got: typ,
                want: handshake_type::SERVER_HELLO,
            });
        }
        r.expect_empty()?;
        Self::parse_body(body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::NamedGroup;

    fn sample_client_hello() -> ClientHello {
        ClientHello {
            legacy_version: ProtocolVersion::Tls12,
            random: [7u8; 32],
            session_id: vec![1, 2, 3, 4],
            cipher_suites: vec![
                CipherSuite(0xc02b),
                CipherSuite(0xc02f),
                CipherSuite(0x009c),
                CipherSuite(0x002f),
                CipherSuite(0x000a),
            ],
            compression_methods: vec![0],
            extensions: Some(vec![
                Extension::server_name("example.org"),
                Extension::supported_groups(&[NamedGroup::X25519, NamedGroup::SECP256R1]),
                Extension::ec_point_formats(&[0]),
                Extension::renegotiation_info(),
            ]),
        }
    }

    #[test]
    fn client_hello_roundtrip() {
        let ch = sample_client_hello();
        let bytes = ch.to_handshake_bytes();
        let parsed = ClientHello::parse_handshake(&bytes).unwrap();
        assert_eq!(parsed, ch);
    }

    #[test]
    fn client_hello_without_extensions_roundtrip() {
        let mut ch = sample_client_hello();
        ch.extensions = None;
        ch.legacy_version = ProtocolVersion::Ssl3;
        let parsed = ClientHello::parse_handshake(&ch.to_handshake_bytes()).unwrap();
        assert_eq!(parsed, ch);
        assert!(parsed.extensions.is_none());
        assert_eq!(parsed.extensions(), &[]);
    }

    #[test]
    fn client_hello_empty_extension_block_is_distinct() {
        let mut ch = sample_client_hello();
        ch.extensions = Some(vec![]);
        let parsed = ClientHello::parse_handshake(&ch.to_handshake_bytes()).unwrap();
        assert_eq!(parsed.extensions, Some(vec![]));
    }

    #[test]
    fn offered_versions_classic_semantics() {
        let mut ch = sample_client_hello();
        ch.extensions = Some(vec![]);
        ch.legacy_version = ProtocolVersion::Tls10;
        assert_eq!(
            ch.offered_versions(),
            vec![ProtocolVersion::Ssl3, ProtocolVersion::Tls10]
        );
        assert!(!ch.offers_tls13());
    }

    #[test]
    fn offered_versions_tls13_mechanism() {
        let mut ch = sample_client_hello();
        // TLS 1.3 clients keep legacy_version at 1.2 (§6.4).
        ch.legacy_version = ProtocolVersion::Tls12;
        ch.extensions
            .as_mut()
            .unwrap()
            .push(Extension::supported_versions(&[
                ProtocolVersion::Tls13Experiment(2),
                ProtocolVersion::Tls13Draft(18),
                ProtocolVersion::Tls12,
                ProtocolVersion::Tls11,
            ]));
        assert!(ch.offers_tls13());
        let vs = ch.offered_versions();
        assert_eq!(vs.len(), 4);
        assert_eq!(vs[0], ProtocolVersion::Tls13Experiment(2));
    }

    #[test]
    fn server_hello_roundtrip() {
        let sh = ServerHello {
            legacy_version: ProtocolVersion::Tls12,
            random: [9u8; 32],
            session_id: vec![],
            cipher_suite: CipherSuite(0xc02f),
            compression_method: 0,
            extensions: Some(vec![Extension::renegotiation_info()]),
        };
        let parsed = ServerHello::parse_handshake(&sh.to_handshake_bytes()).unwrap();
        assert_eq!(parsed, sh);
        assert_eq!(parsed.negotiated_version(), ProtocolVersion::Tls12);
    }

    #[test]
    fn server_hello_tls13_version_negotiation() {
        let sh = ServerHello {
            legacy_version: ProtocolVersion::Tls12,
            random: [0u8; 32],
            session_id: vec![],
            cipher_suite: CipherSuite(0x1301),
            compression_method: 0,
            extensions: Some(vec![Extension::selected_version(
                ProtocolVersion::Tls13Draft(18),
            )]),
        };
        assert_eq!(sh.negotiated_version(), ProtocolVersion::Tls13Draft(18));
    }

    #[test]
    fn rejects_wrong_handshake_type() {
        let ch = sample_client_hello();
        let bytes = ch.to_handshake_bytes();
        assert!(matches!(
            ServerHello::parse_handshake(&bytes),
            Err(WireError::UnexpectedHandshakeType { got: 1, want: 2 })
        ));
    }

    #[test]
    fn rejects_empty_cipher_list() {
        let mut ch = sample_client_hello();
        ch.cipher_suites.clear();
        let bytes = ch.to_handshake_bytes();
        assert_eq!(
            ClientHello::parse_handshake(&bytes),
            Err(WireError::InvalidField("empty cipher suite list"))
        );
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let bytes = sample_client_hello().to_handshake_bytes();
        for cut in 0..bytes.len() {
            assert!(
                ClientHello::parse_handshake(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes unexpectedly parsed"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = sample_client_hello().to_handshake_bytes();
        bytes.push(0xde);
        assert!(ClientHello::parse_handshake(&bytes).is_err());
    }

    #[test]
    fn preserves_unknown_suites_and_extensions() {
        let mut ch = sample_client_hello();
        ch.cipher_suites.insert(0, CipherSuite(0x2a2a)); // GREASE
        ch.extensions
            .as_mut()
            .unwrap()
            .push(Extension::new(0x7777, vec![1, 2, 3]));
        let parsed = ClientHello::parse_handshake(&ch.to_handshake_bytes()).unwrap();
        assert_eq!(parsed, ch);
    }
}
