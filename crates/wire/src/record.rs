//! The TLS record layer, plus the incompatible SSLv2 record format.
//!
//! Passive monitors see records first: the distinction between an SSLv2
//! ClientHello (2-byte MSB-set length header, 3-byte cipher specs) and a
//! TLS record (content type + version + length) is how the paper can
//! count the residual SSL 2 connections of §5.1 at all.

use crate::codec::Reader;
use crate::error::{WireError, WireResult};
use crate::suites::CipherSuite;
use crate::version::ProtocolVersion;

/// Maximum TLSPlaintext fragment length (2^14).
pub const MAX_FRAGMENT: usize = 1 << 14;

/// TLS record content types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContentType {
    /// change_cipher_spec (20).
    ChangeCipherSpec,
    /// alert (21).
    Alert,
    /// handshake (22).
    Handshake,
    /// application_data (23).
    ApplicationData,
    /// heartbeat (24, RFC 6520).
    Heartbeat,
}

impl ContentType {
    /// Wire value.
    pub fn to_wire(self) -> u8 {
        match self {
            ContentType::ChangeCipherSpec => 20,
            ContentType::Alert => 21,
            ContentType::Handshake => 22,
            ContentType::ApplicationData => 23,
            ContentType::Heartbeat => 24,
        }
    }

    /// Decode a wire value.
    pub fn from_wire(v: u8) -> WireResult<Self> {
        Ok(match v {
            20 => ContentType::ChangeCipherSpec,
            21 => ContentType::Alert,
            22 => ContentType::Handshake,
            23 => ContentType::ApplicationData,
            24 => ContentType::Heartbeat,
            other => return Err(WireError::UnknownContentType(other)),
        })
    }
}

/// A borrowed view of one TLSPlaintext record: the zero-copy twin of
/// [`Record`]. The payload stays a slice into the captured flow, so
/// parsing a record stream performs no heap allocation at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordView<'a> {
    /// Content type.
    pub content_type: ContentType,
    /// Record-layer version (not authoritative for the connection).
    pub version: ProtocolVersion,
    /// Fragment payload, borrowed from the flow bytes.
    pub payload: &'a [u8],
}

impl<'a> RecordView<'a> {
    /// Parse one record off the front of `r` without copying the
    /// payload.
    pub fn read(r: &mut Reader<'a>) -> WireResult<RecordView<'a>> {
        let content_type = ContentType::from_wire(r.u8()?)?;
        let version = ProtocolVersion::from_wire(r.u16()?);
        let mut body = r.vec16()?;
        Ok(RecordView {
            content_type,
            version,
            payload: body.rest(),
        })
    }

    /// Append this record's wire encoding to `out`.
    pub fn write_into(&self, out: &mut Vec<u8>) {
        debug_assert!(self.payload.len() <= u16::MAX as usize, "record too long");
        out.push(self.content_type.to_wire());
        out.extend_from_slice(&self.version.to_wire().to_be_bytes());
        out.extend_from_slice(&(self.payload.len() as u16).to_be_bytes());
        out.extend_from_slice(self.payload);
    }

    /// Copy into an owned [`Record`].
    pub fn to_owned(&self) -> Record {
        Record {
            content_type: self.content_type,
            version: self.version,
            payload: self.payload.to_vec(),
        }
    }
}

/// One TLSPlaintext record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Content type.
    pub content_type: ContentType,
    /// Record-layer version (not authoritative for the connection).
    pub version: ProtocolVersion,
    /// Fragment payload.
    pub payload: Vec<u8>,
}

impl Record {
    /// Serialise this record.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload.len() + 5);
        self.view().write_into(&mut out);
        out
    }

    /// Borrow as a [`RecordView`].
    pub fn view(&self) -> RecordView<'_> {
        RecordView {
            content_type: self.content_type,
            version: self.version,
            payload: &self.payload,
        }
    }

    /// Parse one record off the front of `r`.
    pub fn read(r: &mut Reader<'_>) -> WireResult<Record> {
        Ok(RecordView::read(r)?.to_owned())
    }

    /// Parse every record in `bytes`.
    pub fn read_all(bytes: &[u8]) -> WireResult<Vec<Record>> {
        let mut r = Reader::new(bytes);
        let mut out = Vec::new();
        while !r.is_empty() {
            out.push(Record::read(&mut r)?);
        }
        Ok(out)
    }

    /// Wrap a handshake-message stream into records, fragmenting at
    /// [`MAX_FRAGMENT`].
    pub fn wrap_handshake(version: ProtocolVersion, handshake: &[u8]) -> Vec<Record> {
        handshake
            .chunks(MAX_FRAGMENT)
            .map(|chunk| Record {
                content_type: ContentType::Handshake,
                version,
                payload: chunk.to_vec(),
            })
            .collect()
    }

    /// Append the wire bytes of [`Record::wrap_handshake`] directly to
    /// `out`, skipping the intermediate record structs and payload
    /// copies. Byte-identical to serialising `wrap_handshake`'s result.
    pub fn wrap_handshake_into(version: ProtocolVersion, handshake: &[u8], out: &mut Vec<u8>) {
        for chunk in handshake.chunks(MAX_FRAGMENT) {
            RecordView {
                content_type: ContentType::Handshake,
                version,
                payload: chunk,
            }
            .write_into(out);
        }
    }

    /// Concatenate the payloads of consecutive handshake records (record
    /// fragmentation is transparent to the handshake layer).
    pub fn coalesce_handshake(records: &[Record]) -> WireResult<Vec<u8>> {
        let mut out = Vec::new();
        for rec in records {
            if rec.content_type != ContentType::Handshake {
                return Err(WireError::UnknownContentType(rec.content_type.to_wire()));
            }
            out.extend_from_slice(&rec.payload);
        }
        Ok(out)
    }
}

/// What the first bytes of a connection look like.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFlavor {
    /// A TLS/SSL3 record stream.
    Tls,
    /// An SSLv2 record (MSB-set short header).
    Sslv2,
    /// Neither — not SSL/TLS at all.
    Other,
}

/// Sniff the framing flavour from the first bytes of a client's flow.
pub fn sniff(bytes: &[u8]) -> WireFlavor {
    if bytes.len() >= 3 && bytes[0] & 0x80 != 0 && bytes[2] == 0x01 {
        // MSB-set 2-byte length followed by SSLv2 CLIENT-HELLO (1).
        return WireFlavor::Sslv2;
    }
    if bytes.len() >= 3 && ContentType::from_wire(bytes[0]).is_ok() && bytes[1] == 0x03 {
        return WireFlavor::Tls;
    }
    WireFlavor::Other
}

/// An SSLv2 CLIENT-HELLO (the only SSLv2 message we model).
///
/// SSLv2 cipher "kinds" are 24-bit values; the well-known ones are
/// exposed as constants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sslv2ClientHello {
    /// The version the client requests (SSLv2 clients can ask for SSL3+).
    pub version: ProtocolVersion,
    /// 24-bit cipher kinds in preference order.
    pub cipher_specs: Vec<u32>,
    /// Session id (0 or 16 bytes in practice).
    pub session_id: Vec<u8>,
    /// Challenge bytes. The protocol allows 16–32; every client we
    /// model (and every major SSLv2 stack) sent exactly 16, so the
    /// challenge lives inline — no per-hello heap allocation.
    pub challenge: [u8; 16],
}

/// Well-known SSLv2 cipher kinds.
pub mod sslv2_cipher {
    /// SSL_CK_RC4_128_WITH_MD5.
    pub const RC4_128_WITH_MD5: u32 = 0x01_00_80;
    /// SSL_CK_RC4_128_EXPORT40_WITH_MD5.
    pub const RC4_128_EXPORT40_WITH_MD5: u32 = 0x02_00_80;
    /// SSL_CK_RC2_128_CBC_WITH_MD5.
    pub const RC2_128_CBC_WITH_MD5: u32 = 0x03_00_80;
    /// SSL_CK_RC2_128_CBC_EXPORT40_WITH_MD5.
    pub const RC2_128_CBC_EXPORT40_WITH_MD5: u32 = 0x04_00_80;
    /// SSL_CK_IDEA_128_CBC_WITH_MD5.
    pub const IDEA_128_CBC_WITH_MD5: u32 = 0x05_00_80;
    /// SSL_CK_DES_64_CBC_WITH_MD5.
    pub const DES_64_CBC_WITH_MD5: u32 = 0x06_00_40;
    /// SSL_CK_DES_192_EDE3_CBC_WITH_MD5.
    pub const DES_192_EDE3_CBC_WITH_MD5: u32 = 0x07_00_c0;
}

impl Sslv2ClientHello {
    /// Serialise with the 2-byte MSB-set record header.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        Self::write_parts_into(
            self.version,
            &self.cipher_specs,
            &self.session_id,
            &self.challenge,
            &mut out,
        );
        out
    }

    /// Append the wire encoding of an SSLv2 CLIENT-HELLO assembled
    /// from borrowed parts, without building the struct. The body
    /// length is known up front (9 fixed bytes + 3 per cipher spec +
    /// session id + challenge), so this writes in a single pass —
    /// byte-identical to [`Sslv2ClientHello::to_bytes`] on the same
    /// field values.
    pub fn write_parts_into(
        version: ProtocolVersion,
        cipher_specs: &[u32],
        session_id: &[u8],
        challenge: &[u8; 16],
        out: &mut Vec<u8>,
    ) {
        let body_len = 9 + 3 * cipher_specs.len() + session_id.len() + challenge.len();
        out.reserve(body_len + 2);
        out.extend_from_slice(&(0x8000 | body_len as u16).to_be_bytes());
        out.push(0x01); // CLIENT-HELLO
        out.extend_from_slice(&version.to_wire().to_be_bytes());
        out.extend_from_slice(&((cipher_specs.len() * 3) as u16).to_be_bytes());
        out.extend_from_slice(&(session_id.len() as u16).to_be_bytes());
        out.extend_from_slice(&(challenge.len() as u16).to_be_bytes());
        for spec in cipher_specs {
            out.extend_from_slice(&spec.to_be_bytes()[1..]);
        }
        out.extend_from_slice(session_id);
        out.extend_from_slice(challenge);
    }

    /// Parse an SSLv2 CLIENT-HELLO (header included).
    pub fn parse(bytes: &[u8]) -> WireResult<Self> {
        let mut r = Reader::new(bytes);
        let header = r.u16()?;
        if header & 0x8000 == 0 {
            return Err(WireError::MalformedSslv2);
        }
        let len = (header & 0x7fff) as usize;
        if r.remaining() < len {
            return Err(WireError::Truncated {
                needed: len - r.remaining(),
            });
        }
        let mut b = Reader::new(r.take(len)?);
        if b.u8()? != 0x01 {
            return Err(WireError::MalformedSslv2);
        }
        let version = ProtocolVersion::from_wire(b.u16()?);
        let cipher_len = b.u16()? as usize;
        let sid_len = b.u16()? as usize;
        let challenge_len = b.u16()? as usize;
        if !cipher_len.is_multiple_of(3) {
            return Err(WireError::RaggedVector {
                len: cipher_len,
                element: 3,
            });
        }
        let mut specs = Vec::with_capacity(cipher_len / 3);
        let mut spec_bytes = Reader::new(b.take(cipher_len)?);
        while !spec_bytes.is_empty() {
            specs.push(spec_bytes.u24()?);
        }
        let session_id = b.take(sid_len)?.to_vec();
        // Every stack we model sent a 16-byte challenge; other lengths
        // are treated as malformed so the field can live inline.
        let challenge: [u8; 16] = b
            .take(challenge_len)?
            .try_into()
            .map_err(|_| WireError::MalformedSslv2)?;
        b.expect_empty()?;
        Ok(Sslv2ClientHello {
            version,
            cipher_specs: specs,
            session_id,
            challenge,
        })
    }
}

/// Map an SSLv2 cipher kind to the closest TLS-era classification, for
/// aggregation purposes.
pub fn sslv2_kind_as_suite(kind: u32) -> Option<CipherSuite> {
    match kind {
        sslv2_cipher::RC4_128_WITH_MD5 => Some(CipherSuite(0x0004)),
        sslv2_cipher::RC4_128_EXPORT40_WITH_MD5 => Some(CipherSuite(0x0003)),
        sslv2_cipher::RC2_128_CBC_EXPORT40_WITH_MD5 => Some(CipherSuite(0x0006)),
        sslv2_cipher::IDEA_128_CBC_WITH_MD5 => Some(CipherSuite(0x0007)),
        sslv2_cipher::DES_64_CBC_WITH_MD5 => Some(CipherSuite(0x0009)),
        sslv2_cipher::DES_192_EDE3_CBC_WITH_MD5 => Some(CipherSuite(0x000a)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip() {
        let rec = Record {
            content_type: ContentType::Handshake,
            version: ProtocolVersion::Tls10,
            payload: vec![1, 2, 3],
        };
        let bytes = rec.to_bytes();
        let parsed = Record::read_all(&bytes).unwrap();
        assert_eq!(parsed, vec![rec]);
    }

    #[test]
    fn record_fragmentation_and_coalescing() {
        let handshake: Vec<u8> = (0..40_000u32).map(|i| i as u8).collect();
        let records = Record::wrap_handshake(ProtocolVersion::Tls12, &handshake);
        assert_eq!(records.len(), 3);
        assert!(records.iter().all(|r| r.payload.len() <= MAX_FRAGMENT));
        let bytes: Vec<u8> = records.iter().flat_map(|r| r.to_bytes()).collect();
        let parsed = Record::read_all(&bytes).unwrap();
        assert_eq!(Record::coalesce_handshake(&parsed).unwrap(), handshake);
    }

    #[test]
    fn record_view_matches_owned_read() {
        let rec = Record {
            content_type: ContentType::Handshake,
            version: ProtocolVersion::Tls12,
            payload: vec![9, 8, 7, 6],
        };
        let bytes = rec.to_bytes();
        let mut r = Reader::new(&bytes);
        let view = RecordView::read(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(view.content_type, rec.content_type);
        assert_eq!(view.version, rec.version);
        assert_eq!(view.payload, &rec.payload[..]);
        assert_eq!(view.to_owned(), rec);
        let mut out = Vec::new();
        view.write_into(&mut out);
        assert_eq!(out, bytes);
    }

    #[test]
    fn wrap_handshake_into_matches_wrap_handshake() {
        for len in [0usize, 1, 100, MAX_FRAGMENT, MAX_FRAGMENT + 1, 40_000] {
            let handshake: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let records = Record::wrap_handshake(ProtocolVersion::Tls12, &handshake);
            let expect: Vec<u8> = records.iter().flat_map(|r| r.to_bytes()).collect();
            let mut got = Vec::new();
            Record::wrap_handshake_into(ProtocolVersion::Tls12, &handshake, &mut got);
            assert_eq!(got, expect, "len {len}");
        }
    }

    #[test]
    fn unknown_content_type_rejected() {
        let bytes = [99u8, 0x03, 0x03, 0x00, 0x01, 0x00];
        assert_eq!(
            Record::read_all(&bytes),
            Err(WireError::UnknownContentType(99))
        );
    }

    #[test]
    fn coalesce_rejects_non_handshake() {
        let rec = Record {
            content_type: ContentType::Alert,
            version: ProtocolVersion::Tls10,
            payload: vec![2, 40],
        };
        assert!(Record::coalesce_handshake(&[rec]).is_err());
    }

    #[test]
    fn sslv2_roundtrip() {
        let hello = Sslv2ClientHello {
            version: ProtocolVersion::Ssl2,
            cipher_specs: vec![
                sslv2_cipher::RC4_128_WITH_MD5,
                sslv2_cipher::DES_192_EDE3_CBC_WITH_MD5,
            ],
            session_id: vec![],
            challenge: [0xaa; 16],
        };
        let bytes = hello.to_bytes();
        assert_eq!(Sslv2ClientHello::parse(&bytes).unwrap(), hello);
    }

    #[test]
    fn sniffing() {
        let v2 = Sslv2ClientHello {
            version: ProtocolVersion::Ssl2,
            cipher_specs: vec![sslv2_cipher::RC4_128_WITH_MD5],
            session_id: vec![],
            challenge: [0; 16],
        }
        .to_bytes();
        assert_eq!(sniff(&v2), WireFlavor::Sslv2);

        let tls = Record {
            content_type: ContentType::Handshake,
            version: ProtocolVersion::Tls10,
            payload: vec![0],
        }
        .to_bytes();
        assert_eq!(sniff(&tls), WireFlavor::Tls);

        assert_eq!(sniff(b"GET / HTTP/1.1\r\n"), WireFlavor::Other);
        assert_eq!(sniff(&[]), WireFlavor::Other);
    }

    #[test]
    fn sslv2_truncation_rejected() {
        let bytes = Sslv2ClientHello {
            version: ProtocolVersion::Ssl2,
            cipher_specs: vec![sslv2_cipher::RC4_128_WITH_MD5],
            session_id: vec![],
            challenge: [0; 16],
        }
        .to_bytes();
        for cut in 0..bytes.len() {
            assert!(Sslv2ClientHello::parse(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn sslv2_write_parts_matches_to_bytes() {
        let hello = Sslv2ClientHello {
            version: ProtocolVersion::Ssl2,
            cipher_specs: vec![
                sslv2_cipher::RC4_128_WITH_MD5,
                sslv2_cipher::DES_192_EDE3_CBC_WITH_MD5,
            ],
            session_id: vec![7; 16],
            challenge: [0x5c; 16],
        };
        let mut out = vec![0xee]; // appends, never clears
        Sslv2ClientHello::write_parts_into(
            hello.version,
            &hello.cipher_specs,
            &hello.session_id,
            &hello.challenge,
            &mut out,
        );
        assert_eq!(out[0], 0xee);
        assert_eq!(&out[1..], &hello.to_bytes()[..]);
    }

    #[test]
    fn sslv2_non_16_byte_challenge_rejected() {
        // Hand-build a hello with a 20-byte challenge: structurally
        // valid SSLv2, but outside what the inline field accepts.
        let challenge_len = 20usize;
        let body_len = 9 + 3 + challenge_len;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(0x8000 | body_len as u16).to_be_bytes());
        bytes.push(0x01);
        bytes.extend_from_slice(&ProtocolVersion::Ssl2.to_wire().to_be_bytes());
        bytes.extend_from_slice(&3u16.to_be_bytes());
        bytes.extend_from_slice(&0u16.to_be_bytes());
        bytes.extend_from_slice(&(challenge_len as u16).to_be_bytes());
        bytes.extend_from_slice(&sslv2_cipher::RC4_128_WITH_MD5.to_be_bytes()[1..]);
        bytes.extend_from_slice(&[0xab; 20]);
        assert_eq!(
            Sslv2ClientHello::parse(&bytes),
            Err(WireError::MalformedSslv2)
        );
    }

    #[test]
    fn sslv2_kind_mapping() {
        let s = sslv2_kind_as_suite(sslv2_cipher::RC4_128_WITH_MD5).unwrap();
        assert!(s.is_rc4());
        let s = sslv2_kind_as_suite(sslv2_cipher::RC4_128_EXPORT40_WITH_MD5).unwrap();
        assert!(s.is_export());
        assert_eq!(sslv2_kind_as_suite(0xdead), None);
    }
}
