//! Borrowed, allocation-free views of the two hello messages.
//!
//! The owned [`ClientHello`](crate::ClientHello) /
//! [`ServerHello`](crate::ServerHello) parsers copy every vector field
//! onto the heap — a dozen allocations per hello. A passive monitor
//! digesting millions of connections only ever *reads* those fields
//! once, so these views keep every field a slice into the coalesced
//! handshake bytes. Validation is identical to the owned parsers: a
//! body accepted by one is accepted by the other, and rejected bodies
//! fail with the same error at the same field.

use crate::codec::Reader;
use crate::error::{WireError, WireResult};
use crate::exts::ext_type;
use crate::groups::NamedGroup;
use crate::handshake::{handshake_type, read_handshake};
use crate::suites::CipherSuite;
use crate::version::ProtocolVersion;

/// Iterator over the big-endian u16 items of an even-length slice.
#[derive(Debug, Clone, Copy)]
pub struct U16Items<'a> {
    buf: &'a [u8],
}

impl<'a> U16Items<'a> {
    /// Wrap an even-length slice (caller-validated).
    fn new(buf: &'a [u8]) -> Self {
        debug_assert!(buf.len().is_multiple_of(2));
        U16Items { buf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.buf.len() / 2
    }

    /// True when the list is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl Iterator for U16Items<'_> {
    type Item = u16;

    fn next(&mut self) -> Option<u16> {
        let (head, rest) = self.buf.split_first_chunk::<2>()?;
        self.buf = rest;
        Some(u16::from_be_bytes(*head))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.len(), Some(self.len()))
    }
}

impl ExactSizeIterator for U16Items<'_> {}

/// Validate a u16-list body (the raw item bytes, prefixes stripped).
fn u16_items(buf: &[u8]) -> WireResult<U16Items<'_>> {
    if !buf.len().is_multiple_of(2) {
        return Err(WireError::RaggedVector {
            len: buf.len(),
            element: 2,
        });
    }
    Ok(U16Items::new(buf))
}

/// A validated extension block: the raw list bytes (outer u16 length
/// prefix stripped). Construction walks the whole block, so iteration
/// never fails.
#[derive(Debug, Clone, Copy)]
pub struct ExtensionsView<'a> {
    block: &'a [u8],
}

impl<'a> ExtensionsView<'a> {
    /// Parse an extension block (with outer u16 length) off `r`,
    /// validating the same structure `read_extensions` does.
    pub fn read(r: &mut Reader<'a>) -> WireResult<ExtensionsView<'a>> {
        let mut list = r.vec16()?;
        let block = list.rest();
        let mut walk = Reader::new(block);
        while !walk.is_empty() {
            walk.u16()?;
            walk.vec16()?;
        }
        Ok(ExtensionsView { block })
    }

    /// Iterate `(type, body)` pairs.
    pub fn iter(&self) -> ExtIter<'a> {
        ExtIter {
            r: Reader::new(self.block),
        }
    }

    /// The body of the first extension of type `typ`.
    pub fn find(&self, typ: u16) -> Option<&'a [u8]> {
        self.iter().find(|(t, _)| *t == typ).map(|(_, b)| b)
    }

    /// True if an extension of type `typ` is present.
    pub fn has(&self, typ: u16) -> bool {
        self.find(typ).is_some()
    }
}

/// Iterator over a validated extension block.
#[derive(Debug, Clone)]
pub struct ExtIter<'a> {
    r: Reader<'a>,
}

impl<'a> Iterator for ExtIter<'a> {
    type Item = (u16, &'a [u8]);

    fn next(&mut self) -> Option<(u16, &'a [u8])> {
        if self.r.is_empty() {
            return None;
        }
        // The block was validated at construction; errors are unreachable.
        let typ = self.r.u16().ok()?;
        let mut body = self.r.vec16().ok()?;
        Some((typ, body.rest()))
    }
}

/// Borrowed decoders for the extension bodies the pipeline reads.
/// Validation matches the corresponding `Extension::parse_*` methods.
pub mod ext_view {
    use super::*;

    /// `supported_groups` body → wire group values.
    pub fn supported_groups(body: &[u8]) -> WireResult<U16Items<'_>> {
        let mut r = Reader::new(body);
        let mut list = r.vec16()?;
        let items = u16_items(list.rest())?;
        r.expect_empty()?;
        Ok(items)
    }

    /// `ec_point_formats` body → format bytes.
    pub fn ec_point_formats(body: &[u8]) -> WireResult<&[u8]> {
        let mut r = Reader::new(body);
        let mut list = r.vec8()?;
        let formats = list.rest();
        r.expect_empty()?;
        Ok(formats)
    }

    /// ClientHello `supported_versions` body → wire version values.
    pub fn supported_versions(body: &[u8]) -> WireResult<U16Items<'_>> {
        let mut r = Reader::new(body);
        let mut list = r.vec8()?;
        let items = u16_items(list.rest())?;
        r.expect_empty()?;
        Ok(items)
    }

    /// ServerHello `supported_versions` body → the selected version.
    pub fn selected_version(body: &[u8]) -> WireResult<ProtocolVersion> {
        let mut r = Reader::new(body);
        let v = r.u16()?;
        r.expect_empty()?;
        Ok(ProtocolVersion::from_wire(v))
    }

    /// ServerHello `key_share` body → the selected group.
    pub fn key_share_server(body: &[u8]) -> WireResult<NamedGroup> {
        let mut r = Reader::new(body);
        let g = r.u16()?;
        let mut key = r.vec16()?;
        let _ = key.rest();
        r.expect_empty()?;
        Ok(NamedGroup(g))
    }
}

/// A borrowed ClientHello: every field a slice into the handshake
/// bytes. Parses exactly the inputs [`crate::ClientHello::parse_body`]
/// parses.
#[derive(Debug, Clone, Copy)]
pub struct ClientHelloView<'a> {
    /// Legacy version field.
    pub legacy_version: ProtocolVersion,
    /// 32 bytes of client randomness.
    pub random: &'a [u8],
    /// Session id (0–32 bytes).
    pub session_id: &'a [u8],
    /// Raw cipher-suite list bytes (even length, non-empty).
    suites: &'a [u8],
    /// Offered compression methods (non-empty).
    pub compression_methods: &'a [u8],
    /// Extension block: `None` when absent entirely.
    pub extensions: Option<ExtensionsView<'a>>,
}

impl<'a> ClientHelloView<'a> {
    /// Parse from a handshake body.
    pub fn parse_body(body: &'a [u8]) -> WireResult<Self> {
        let mut r = Reader::new(body);
        let legacy_version = ProtocolVersion::from_wire(r.u16()?);
        let random = r.take(32)?;
        let mut sid = r.vec8()?;
        let session_id = sid.rest();
        if session_id.len() > 32 {
            return Err(WireError::InvalidField("session_id longer than 32 bytes"));
        }
        let mut suite_list = r.vec16()?;
        let suites = suite_list.rest();
        if !suites.len().is_multiple_of(2) {
            return Err(WireError::RaggedVector {
                len: suites.len(),
                element: 2,
            });
        }
        if suites.is_empty() {
            return Err(WireError::InvalidField("empty cipher suite list"));
        }
        let mut comp = r.vec8()?;
        let compression_methods = comp.rest();
        if compression_methods.is_empty() {
            return Err(WireError::InvalidField("empty compression list"));
        }
        let extensions = if r.is_empty() {
            None
        } else {
            let exts = ExtensionsView::read(&mut r)?;
            r.expect_empty()?;
            Some(exts)
        };
        Ok(ClientHelloView {
            legacy_version,
            random,
            session_id,
            suites,
            compression_methods,
            extensions,
        })
    }

    /// Parse from a framed handshake message (exactly one message).
    pub fn parse_handshake(bytes: &'a [u8]) -> WireResult<Self> {
        let mut r = Reader::new(bytes);
        let (typ, body) = read_handshake(&mut r)?;
        if typ != handshake_type::CLIENT_HELLO {
            return Err(WireError::UnexpectedHandshakeType {
                got: typ,
                want: handshake_type::CLIENT_HELLO,
            });
        }
        r.expect_empty()?;
        Self::parse_body(body)
    }

    /// Offered cipher suites in wire order (GREASE included).
    pub fn cipher_suites(&self) -> impl Iterator<Item = CipherSuite> + use<'a> {
        U16Items::new(self.suites).map(CipherSuite)
    }

    /// Number of offered suites.
    pub fn cipher_suite_count(&self) -> usize {
        self.suites.len() / 2
    }

    /// The body of the first extension of type `typ`.
    pub fn find_extension(&self, typ: u16) -> Option<&'a [u8]> {
        self.extensions.as_ref().and_then(|e| e.find(typ))
    }

    /// The versions this client actually supports — same semantics as
    /// [`crate::ClientHello::offered_versions`] (GREASE filtered;
    /// classic maximum-version fallback when the extension is absent).
    pub fn offered_versions(&self) -> Vec<ProtocolVersion> {
        let mut out = Vec::new();
        self.offered_versions_into(&mut out);
        out
    }

    /// [`Self::offered_versions`] into a caller-supplied vector, which
    /// is cleared first — steady-state callers reuse its capacity and
    /// perform no allocation.
    pub fn offered_versions_into(&self, out: &mut Vec<ProtocolVersion>) {
        out.clear();
        if let Some(body) = self.find_extension(ext_type::SUPPORTED_VERSIONS) {
            if let Ok(vs) = ext_view::supported_versions(body) {
                out.extend(
                    vs.filter(|v| !crate::grease::is_grease(*v))
                        .map(ProtocolVersion::from_wire),
                );
                return;
            }
        }
        let all = [
            ProtocolVersion::Ssl3,
            ProtocolVersion::Tls10,
            ProtocolVersion::Tls11,
            ProtocolVersion::Tls12,
        ];
        out.extend(
            all.iter()
                .copied()
                .filter(|v| v.rank() <= self.legacy_version.rank()),
        );
    }
}

/// A borrowed ServerHello. Parses exactly the inputs
/// [`crate::ServerHello::parse_body`] parses.
#[derive(Debug, Clone, Copy)]
pub struct ServerHelloView<'a> {
    /// Legacy version field.
    pub legacy_version: ProtocolVersion,
    /// 32 bytes of server randomness.
    pub random: &'a [u8],
    /// Echoed or fresh session id.
    pub session_id: &'a [u8],
    /// The single selected cipher suite.
    pub cipher_suite: CipherSuite,
    /// The selected compression method.
    pub compression_method: u8,
    /// Extension block, if present.
    pub extensions: Option<ExtensionsView<'a>>,
}

impl<'a> ServerHelloView<'a> {
    /// Parse from a handshake body.
    pub fn parse_body(body: &'a [u8]) -> WireResult<Self> {
        let mut r = Reader::new(body);
        let legacy_version = ProtocolVersion::from_wire(r.u16()?);
        let random = r.take(32)?;
        let mut sid = r.vec8()?;
        let session_id = sid.rest();
        if session_id.len() > 32 {
            return Err(WireError::InvalidField("session_id longer than 32 bytes"));
        }
        let cipher_suite = CipherSuite(r.u16()?);
        let compression_method = r.u8()?;
        let extensions = if r.is_empty() {
            None
        } else {
            let exts = ExtensionsView::read(&mut r)?;
            r.expect_empty()?;
            Some(exts)
        };
        Ok(ServerHelloView {
            legacy_version,
            random,
            session_id,
            cipher_suite,
            compression_method,
            extensions,
        })
    }

    /// The body of the first extension of type `typ`.
    pub fn find_extension(&self, typ: u16) -> Option<&'a [u8]> {
        self.extensions.as_ref().and_then(|e| e.find(typ))
    }

    /// The actually negotiated protocol version — same semantics as
    /// [`crate::ServerHello::negotiated_version`].
    pub fn negotiated_version(&self) -> ProtocolVersion {
        if let Some(body) = self.find_extension(ext_type::SUPPORTED_VERSIONS) {
            if let Ok(v) = ext_view::selected_version(body) {
                return v;
            }
        }
        self.legacy_version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClientHello, Extension, ServerHello};

    fn sample_hello() -> ClientHello {
        ClientHello {
            legacy_version: ProtocolVersion::Tls12,
            random: [7u8; 32],
            session_id: vec![1, 2, 3, 4],
            cipher_suites: vec![
                CipherSuite(0x2a2a), // GREASE
                CipherSuite(0xc02b),
                CipherSuite(0x009c),
                CipherSuite(0x00ff),
            ],
            compression_methods: vec![0],
            extensions: Some(vec![
                Extension::server_name("example.org"),
                Extension::supported_groups(&[NamedGroup::X25519, NamedGroup::SECP256R1]),
                Extension::ec_point_formats(&[0]),
                Extension::heartbeat(1),
                Extension::supported_versions(&[
                    ProtocolVersion::Tls13Draft(18),
                    ProtocolVersion::Tls12,
                ]),
                Extension::renegotiation_info(),
            ]),
        }
    }

    #[test]
    fn view_fields_match_owned_parse() {
        let ch = sample_hello();
        let bytes = ch.to_handshake_bytes();
        let owned = ClientHello::parse_handshake(&bytes).unwrap();
        let view = ClientHelloView::parse_handshake(&bytes).unwrap();
        assert_eq!(view.legacy_version, owned.legacy_version);
        assert_eq!(view.random, &owned.random[..]);
        assert_eq!(view.session_id, &owned.session_id[..]);
        assert_eq!(
            view.cipher_suites().collect::<Vec<_>>(),
            owned.cipher_suites
        );
        assert_eq!(view.compression_methods, &owned.compression_methods[..]);
        let view_exts: Vec<(u16, Vec<u8>)> = view
            .extensions
            .unwrap()
            .iter()
            .map(|(t, b)| (t, b.to_vec()))
            .collect();
        let owned_exts: Vec<(u16, Vec<u8>)> = owned
            .extensions()
            .iter()
            .map(|e| (e.typ, e.body.clone()))
            .collect();
        assert_eq!(view_exts, owned_exts);
        assert_eq!(view.offered_versions(), owned.offered_versions());
    }

    #[test]
    fn view_rejects_what_owned_rejects() {
        let bytes = sample_hello().to_handshake_bytes();
        for cut in 0..bytes.len() {
            assert_eq!(
                ClientHelloView::parse_handshake(&bytes[..cut]).is_err(),
                ClientHello::parse_handshake(&bytes[..cut]).is_err(),
                "divergence at prefix {cut}"
            );
        }
        let mut trailing = bytes.clone();
        trailing.push(0xde);
        assert!(ClientHelloView::parse_handshake(&trailing).is_err());

        let mut empty_suites = sample_hello();
        empty_suites.cipher_suites.clear();
        assert_eq!(
            ClientHelloView::parse_handshake(&empty_suites.to_handshake_bytes()).unwrap_err(),
            ClientHello::parse_handshake(&empty_suites.to_handshake_bytes()).unwrap_err(),
        );
    }

    #[test]
    fn ext_view_decoders_match_typed_decoders() {
        let groups = [
            NamedGroup(0x2a2a),
            NamedGroup::X25519,
            NamedGroup::SECP256R1,
        ];
        let e = Extension::supported_groups(&groups);
        assert_eq!(
            ext_view::supported_groups(&e.body)
                .unwrap()
                .map(NamedGroup)
                .collect::<Vec<_>>(),
            e.parse_supported_groups().unwrap()
        );

        let e = Extension::ec_point_formats(&[0, 1, 2]);
        assert_eq!(
            ext_view::ec_point_formats(&e.body).unwrap(),
            &e.parse_ec_point_formats().unwrap()[..]
        );

        let vs = [ProtocolVersion::Tls13Draft(22), ProtocolVersion::Tls12];
        let e = Extension::supported_versions(&vs);
        assert_eq!(
            ext_view::supported_versions(&e.body)
                .unwrap()
                .map(ProtocolVersion::from_wire)
                .collect::<Vec<_>>(),
            e.parse_supported_versions().unwrap()
        );

        let e = Extension::selected_version(ProtocolVersion::Tls13Experiment(2));
        assert_eq!(
            ext_view::selected_version(&e.body).unwrap(),
            e.parse_selected_version().unwrap()
        );

        let e = Extension::key_share_server(NamedGroup::X25519);
        assert_eq!(
            ext_view::key_share_server(&e.body).unwrap(),
            e.parse_key_share_server().unwrap()
        );

        // Malformed bodies fail in both.
        let ragged = [0x00u8, 0x03, 0x00, 0x1d, 0x99];
        assert!(ext_view::supported_groups(&ragged).is_err());
        assert!(Extension::new(ext_type::SUPPORTED_GROUPS, ragged.to_vec())
            .parse_supported_groups()
            .is_err());
    }

    #[test]
    fn server_view_matches_owned() {
        let sh = ServerHello {
            legacy_version: ProtocolVersion::Tls12,
            random: [9u8; 32],
            session_id: vec![5, 6],
            cipher_suite: CipherSuite(0x1301),
            compression_method: 0,
            extensions: Some(vec![
                Extension::selected_version(ProtocolVersion::Tls13Draft(23)),
                Extension::key_share_server(NamedGroup::X25519),
            ]),
        };
        let bytes = sh.to_handshake_bytes();
        let mut r = Reader::new(&bytes);
        let (typ, body) = read_handshake(&mut r).unwrap();
        assert_eq!(typ, handshake_type::SERVER_HELLO);
        let view = ServerHelloView::parse_body(body).unwrap();
        assert_eq!(view.cipher_suite, sh.cipher_suite);
        assert_eq!(view.negotiated_version(), sh.negotiated_version());
        assert_eq!(
            ext_view::key_share_server(view.find_extension(ext_type::KEY_SHARE).unwrap()).unwrap(),
            NamedGroup::X25519
        );
        for cut in 0..body.len() {
            assert_eq!(
                ServerHelloView::parse_body(&body[..cut]).is_err(),
                ServerHello::parse_body(&body[..cut]).is_err(),
                "divergence at prefix {cut}"
            );
        }
    }
}
