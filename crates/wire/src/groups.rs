//! Named groups (elliptic curves and finite-field DH groups).
//!
//! §6.3.3 of the paper breaks connections down by negotiated curve:
//! secp256r1 (84.4 %), secp384r1 (8.6 %), x25519 (6.7 %), sect571r1
//! (0.2 %), secp521r1 (0.1 %). The registry below is the IANA
//! "TLS Supported Groups" list as of 2018 (35 curve values, §4).

use core::fmt;

/// A named group code point from the `supported_groups` (née
/// `elliptic_curves`) extension.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NamedGroup(pub u16);

/// Registry record for a named group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupInfo {
    /// IANA code point.
    pub id: u16,
    /// IANA name.
    pub name: &'static str,
    /// Approximate security level in bits.
    pub security_bits: u16,
    /// True for finite-field (ffdhe) groups rather than curves.
    pub ffdhe: bool,
    /// True for curves free of NIST/NSA provenance concerns
    /// (the paper singles out Curve25519, §6.3.3).
    pub independent: bool,
}

const fn g(id: u16, name: &'static str, security_bits: u16) -> GroupInfo {
    GroupInfo {
        id,
        name,
        security_bits,
        ffdhe: false,
        independent: false,
    }
}

const fn f(id: u16, name: &'static str, security_bits: u16) -> GroupInfo {
    GroupInfo {
        id,
        name,
        security_bits,
        ffdhe: true,
        independent: false,
    }
}

const fn i(id: u16, name: &'static str, security_bits: u16) -> GroupInfo {
    GroupInfo {
        id,
        name,
        security_bits,
        ffdhe: false,
        independent: true,
    }
}

/// All registered named groups, sorted by id.
pub static GROUPS: &[GroupInfo] = &[
    g(1, "sect163k1", 80),
    g(2, "sect163r1", 80),
    g(3, "sect163r2", 80),
    g(4, "sect193r1", 96),
    g(5, "sect193r2", 96),
    g(6, "sect233k1", 112),
    g(7, "sect233r1", 112),
    g(8, "sect239k1", 112),
    g(9, "sect283k1", 128),
    g(10, "sect283r1", 128),
    g(11, "sect409k1", 192),
    g(12, "sect409r1", 192),
    g(13, "sect571k1", 256),
    g(14, "sect571r1", 256),
    g(15, "secp160k1", 80),
    g(16, "secp160r1", 80),
    g(17, "secp160r2", 80),
    g(18, "secp192k1", 96),
    g(19, "secp192r1", 96),
    g(20, "secp224k1", 112),
    g(21, "secp224r1", 112),
    g(22, "secp256k1", 128),
    g(23, "secp256r1", 128),
    g(24, "secp384r1", 192),
    g(25, "secp521r1", 256),
    g(26, "brainpoolP256r1", 128),
    g(27, "brainpoolP384r1", 192),
    g(28, "brainpoolP512r1", 256),
    i(29, "x25519", 128),
    i(30, "x448", 224),
    f(256, "ffdhe2048", 103),
    f(257, "ffdhe3072", 125),
    f(258, "ffdhe4096", 150),
    f(259, "ffdhe6144", 175),
    f(260, "ffdhe8192", 192),
    g(0xff01, "arbitrary_explicit_prime_curves", 0),
    g(0xff02, "arbitrary_explicit_char2_curves", 0),
];

impl NamedGroup {
    /// secp256r1 (P-256), the workhorse curve.
    pub const SECP256R1: NamedGroup = NamedGroup(23);
    /// secp384r1 (P-384).
    pub const SECP384R1: NamedGroup = NamedGroup(24);
    /// secp521r1 (P-521).
    pub const SECP521R1: NamedGroup = NamedGroup(25);
    /// x25519 (Curve25519).
    pub const X25519: NamedGroup = NamedGroup(29);
    /// sect571r1.
    pub const SECT571R1: NamedGroup = NamedGroup(14);

    /// Registry lookup.
    pub fn info(self) -> Option<&'static GroupInfo> {
        GROUPS
            .binary_search_by_key(&self.0, |g| g.id)
            .ok()
            .map(|idx| &GROUPS[idx])
    }

    /// IANA name, if registered.
    pub fn name(self) -> Option<&'static str> {
        self.info().map(|g| g.name)
    }

    /// True for finite-field DH groups.
    pub fn is_ffdhe(self) -> bool {
        self.info().map(|g| g.ffdhe).unwrap_or(false)
    }
}

impl fmt::Debug for NamedGroup {
    fn fmt(&self, fm: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.name() {
            Some(n) => write!(fm, "{n}"),
            None => write!(fm, "group({:#06x})", self.0),
        }
    }
}

impl fmt::Display for NamedGroup {
    fn fmt(&self, fm: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, fm)
    }
}

/// EC point formats (the fourth fingerprint feature).
pub mod point_format {
    /// Uncompressed points; the only format anyone uses.
    pub const UNCOMPRESSED: u8 = 0;
    /// ANSI X9.62 compressed prime.
    pub const COMPRESSED_PRIME: u8 = 1;
    /// ANSI X9.62 compressed char2.
    pub const COMPRESSED_CHAR2: u8 = 2;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_and_unique() {
        for w in GROUPS.windows(2) {
            assert!(w[0].id < w[1].id, "out of order near {}", w[1].name);
        }
    }

    #[test]
    fn curve_count_matches_iana() {
        // "35 elliptic curves values" (§4): 28 curves + x25519/x448 +
        // 5 ffdhe + 2 arbitrary markers = 37 registered code points of
        // which 35 predate x448's late registration; we carry them all.
        assert!(GROUPS.len() >= 35);
    }

    #[test]
    fn paper_top5_curves_resolve() {
        assert_eq!(NamedGroup::SECP256R1.name(), Some("secp256r1"));
        assert_eq!(NamedGroup::SECP384R1.name(), Some("secp384r1"));
        assert_eq!(NamedGroup::X25519.name(), Some("x25519"));
        assert_eq!(NamedGroup::SECT571R1.name(), Some("sect571r1"));
        assert_eq!(NamedGroup::SECP521R1.name(), Some("secp521r1"));
    }

    #[test]
    fn x25519_is_independent() {
        assert!(NamedGroup::X25519.info().unwrap().independent);
        assert!(!NamedGroup::SECP256R1.info().unwrap().independent);
    }

    #[test]
    fn ffdhe_flag() {
        assert!(NamedGroup(256).is_ffdhe());
        assert!(!NamedGroup(23).is_ffdhe());
        assert!(!NamedGroup(0x9999).is_ffdhe());
    }

    #[test]
    fn unknown_group_formats_as_hex() {
        assert_eq!(format!("{}", NamedGroup(0x1234)), "group(0x1234)");
        assert_eq!(format!("{}", NamedGroup(29)), "x25519");
    }
}
