//! # tlscope-wire
//!
//! TLS/SSL wire formats and IANA registries for the tlscope measurement
//! framework — the substrate under the reproduction of *Coming of Age:
//! A Longitudinal Study of TLS Deployment* (IMC 2018).
//!
//! What lives here:
//!
//! * **Record layer** ([`record`]): TLSPlaintext framing, fragmentation,
//!   the incompatible SSLv2 record format, and flavour sniffing.
//! * **Handshake messages** ([`handshake`]): ClientHello / ServerHello
//!   parsing and serialisation, tolerant of unknown versions, suites,
//!   and extensions — exactly what a passive monitor needs.
//! * **Registries**: cipher suites with security properties
//!   ([`suites`], [`suites_table`]), named groups ([`groups`]),
//!   extension types ([`exts`]), protocol versions incl. TLS 1.3 drafts
//!   ([`version`]).
//! * **GREASE** handling ([`grease`]).
//!
//! The registries answer every classification question the paper's
//! analysis asks: is this suite RC4/CBC/AEAD? export-grade? anonymous?
//! NULL? forward-secret? Sweet32-exposed? Which AEAD algorithm? Which
//! key exchange? Which curve?
//!
//! ```
//! use tlscope_wire::{ClientHello, CipherSuite, ProtocolVersion, Extension};
//!
//! let hello = ClientHello {
//!     legacy_version: ProtocolVersion::Tls12,
//!     random: [0; 32],
//!     session_id: vec![],
//!     cipher_suites: vec![CipherSuite(0xc02f), CipherSuite(0x000a)],
//!     compression_methods: vec![0],
//!     extensions: Some(vec![Extension::server_name("example.org")]),
//! };
//! let bytes = hello.to_handshake_bytes();
//! let parsed = ClientHello::parse_handshake(&bytes).unwrap();
//! assert!(parsed.cipher_suites[0].is_aead());
//! assert!(parsed.cipher_suites[1].is_3des());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alert;
pub mod codec;
pub mod error;
pub mod exts;
pub mod grease;
pub mod groups;
pub mod handshake;
pub mod record;
pub mod ske;
pub mod suites;
pub mod suites_table;
pub mod version;
pub mod view;

pub use alert::{Alert, AlertLevel};
pub use error::{WireError, WireResult};
pub use exts::{ext_type, Extension};
pub use grease::{is_grease, strip_grease};
pub use groups::NamedGroup;
pub use handshake::{ClientHello, ServerHello};
pub use record::{sniff, ContentType, Record, RecordView, Sslv2ClientHello, WireFlavor};
pub use suites::{AeadAlg, Auth, CipherSuite, Enc, EncMode, Kx, Mac, SuiteClasses, SuiteInfo};
pub use version::ProtocolVersion;
pub use view::{ClientHelloView, ExtensionsView, ServerHelloView};
