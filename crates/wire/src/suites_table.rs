//! The static IANA cipher-suite table.
//!
//! Sorted by code point; [`lookup`] does a binary search. Coverage: the
//! RFC 5246 / RFC 4492 / RFC 5288 / RFC 5289 / RFC 7905 / RFC 8446
//! registries plus the historical values the paper encounters in the
//! wild: GOST suites (§7.3), the pre-standard ChaCha20 code points used
//! by Chrome/Opera before RFC 7905, Camellia/ARIA/SEED national suites,
//! Kerberos, SRP, PSK families, and the two SCSVs.
//!
//! Names omit the `TLS_` prefix to keep rows short; `CipherSuite`'s
//! `Display` impl restores it.

use crate::suites::{Auth as A, Enc as E, Kx as K, Mac as M, SuiteInfo};

const fn s(id: u16, name: &'static str, kx: K, auth: A, enc: E, mac: M) -> SuiteInfo {
    SuiteInfo {
        id,
        name,
        kx,
        auth,
        enc,
        mac,
        export: false,
    }
}

const fn x(id: u16, name: &'static str, kx: K, auth: A, enc: E, mac: M) -> SuiteInfo {
    SuiteInfo {
        id,
        name,
        kx,
        auth,
        enc,
        mac,
        export: true,
    }
}

/// Every registered suite we know about, sorted by id.
pub static SUITES: &[SuiteInfo] = &[
    s(0x0000, "NULL_WITH_NULL_NULL", K::Null, A::Null, E::Null, M::Null),
    s(0x0001, "RSA_WITH_NULL_MD5", K::Rsa, A::Rsa, E::Null, M::Md5),
    s(0x0002, "RSA_WITH_NULL_SHA", K::Rsa, A::Rsa, E::Null, M::Sha1),
    x(0x0003, "RSA_EXPORT_WITH_RC4_40_MD5", K::Rsa, A::Rsa, E::Rc4_40, M::Md5),
    s(0x0004, "RSA_WITH_RC4_128_MD5", K::Rsa, A::Rsa, E::Rc4_128, M::Md5),
    s(0x0005, "RSA_WITH_RC4_128_SHA", K::Rsa, A::Rsa, E::Rc4_128, M::Sha1),
    x(0x0006, "RSA_EXPORT_WITH_RC2_CBC_40_MD5", K::Rsa, A::Rsa, E::Rc2Cbc40, M::Md5),
    s(0x0007, "RSA_WITH_IDEA_CBC_SHA", K::Rsa, A::Rsa, E::IdeaCbc, M::Sha1),
    x(0x0008, "RSA_EXPORT_WITH_DES40_CBC_SHA", K::Rsa, A::Rsa, E::Des40Cbc, M::Sha1),
    s(0x0009, "RSA_WITH_DES_CBC_SHA", K::Rsa, A::Rsa, E::DesCbc, M::Sha1),
    s(0x000a, "RSA_WITH_3DES_EDE_CBC_SHA", K::Rsa, A::Rsa, E::TripleDesCbc, M::Sha1),
    x(0x000b, "DH_DSS_EXPORT_WITH_DES40_CBC_SHA", K::Dh, A::Dss, E::Des40Cbc, M::Sha1),
    s(0x000c, "DH_DSS_WITH_DES_CBC_SHA", K::Dh, A::Dss, E::DesCbc, M::Sha1),
    s(0x000d, "DH_DSS_WITH_3DES_EDE_CBC_SHA", K::Dh, A::Dss, E::TripleDesCbc, M::Sha1),
    x(0x000e, "DH_RSA_EXPORT_WITH_DES40_CBC_SHA", K::Dh, A::Rsa, E::Des40Cbc, M::Sha1),
    s(0x000f, "DH_RSA_WITH_DES_CBC_SHA", K::Dh, A::Rsa, E::DesCbc, M::Sha1),
    s(0x0010, "DH_RSA_WITH_3DES_EDE_CBC_SHA", K::Dh, A::Rsa, E::TripleDesCbc, M::Sha1),
    x(0x0011, "DHE_DSS_EXPORT_WITH_DES40_CBC_SHA", K::Dhe, A::Dss, E::Des40Cbc, M::Sha1),
    s(0x0012, "DHE_DSS_WITH_DES_CBC_SHA", K::Dhe, A::Dss, E::DesCbc, M::Sha1),
    s(0x0013, "DHE_DSS_WITH_3DES_EDE_CBC_SHA", K::Dhe, A::Dss, E::TripleDesCbc, M::Sha1),
    x(0x0014, "DHE_RSA_EXPORT_WITH_DES40_CBC_SHA", K::Dhe, A::Rsa, E::Des40Cbc, M::Sha1),
    s(0x0015, "DHE_RSA_WITH_DES_CBC_SHA", K::Dhe, A::Rsa, E::DesCbc, M::Sha1),
    s(0x0016, "DHE_RSA_WITH_3DES_EDE_CBC_SHA", K::Dhe, A::Rsa, E::TripleDesCbc, M::Sha1),
    x(0x0017, "DH_anon_EXPORT_WITH_RC4_40_MD5", K::DhAnon, A::Anon, E::Rc4_40, M::Md5),
    s(0x0018, "DH_anon_WITH_RC4_128_MD5", K::DhAnon, A::Anon, E::Rc4_128, M::Md5),
    x(0x0019, "DH_anon_EXPORT_WITH_DES40_CBC_SHA", K::DhAnon, A::Anon, E::Des40Cbc, M::Sha1),
    s(0x001a, "DH_anon_WITH_DES_CBC_SHA", K::DhAnon, A::Anon, E::DesCbc, M::Sha1),
    s(0x001b, "DH_anon_WITH_3DES_EDE_CBC_SHA", K::DhAnon, A::Anon, E::TripleDesCbc, M::Sha1),
    s(0x001e, "KRB5_WITH_DES_CBC_SHA", K::Krb5, A::Krb5, E::DesCbc, M::Sha1),
    s(0x001f, "KRB5_WITH_3DES_EDE_CBC_SHA", K::Krb5, A::Krb5, E::TripleDesCbc, M::Sha1),
    s(0x0020, "KRB5_WITH_RC4_128_SHA", K::Krb5, A::Krb5, E::Rc4_128, M::Sha1),
    s(0x0021, "KRB5_WITH_IDEA_CBC_SHA", K::Krb5, A::Krb5, E::IdeaCbc, M::Sha1),
    s(0x0022, "KRB5_WITH_DES_CBC_MD5", K::Krb5, A::Krb5, E::DesCbc, M::Md5),
    s(0x0023, "KRB5_WITH_3DES_EDE_CBC_MD5", K::Krb5, A::Krb5, E::TripleDesCbc, M::Md5),
    s(0x0024, "KRB5_WITH_RC4_128_MD5", K::Krb5, A::Krb5, E::Rc4_128, M::Md5),
    s(0x0025, "KRB5_WITH_IDEA_CBC_MD5", K::Krb5, A::Krb5, E::IdeaCbc, M::Md5),
    x(0x0026, "KRB5_EXPORT_WITH_DES_CBC_40_SHA", K::Krb5, A::Krb5, E::Des40Cbc, M::Sha1),
    x(0x0027, "KRB5_EXPORT_WITH_RC2_CBC_40_SHA", K::Krb5, A::Krb5, E::Rc2Cbc40, M::Sha1),
    x(0x0028, "KRB5_EXPORT_WITH_RC4_40_SHA", K::Krb5, A::Krb5, E::Rc4_40, M::Sha1),
    x(0x0029, "KRB5_EXPORT_WITH_DES_CBC_40_MD5", K::Krb5, A::Krb5, E::Des40Cbc, M::Md5),
    x(0x002a, "KRB5_EXPORT_WITH_RC2_CBC_40_MD5", K::Krb5, A::Krb5, E::Rc2Cbc40, M::Md5),
    x(0x002b, "KRB5_EXPORT_WITH_RC4_40_MD5", K::Krb5, A::Krb5, E::Rc4_40, M::Md5),
    s(0x002c, "PSK_WITH_NULL_SHA", K::Psk, A::Psk, E::Null, M::Sha1),
    s(0x002d, "DHE_PSK_WITH_NULL_SHA", K::DhePsk, A::Psk, E::Null, M::Sha1),
    s(0x002e, "RSA_PSK_WITH_NULL_SHA", K::RsaPsk, A::Psk, E::Null, M::Sha1),
    s(0x002f, "RSA_WITH_AES_128_CBC_SHA", K::Rsa, A::Rsa, E::Aes128Cbc, M::Sha1),
    s(0x0030, "DH_DSS_WITH_AES_128_CBC_SHA", K::Dh, A::Dss, E::Aes128Cbc, M::Sha1),
    s(0x0031, "DH_RSA_WITH_AES_128_CBC_SHA", K::Dh, A::Rsa, E::Aes128Cbc, M::Sha1),
    s(0x0032, "DHE_DSS_WITH_AES_128_CBC_SHA", K::Dhe, A::Dss, E::Aes128Cbc, M::Sha1),
    s(0x0033, "DHE_RSA_WITH_AES_128_CBC_SHA", K::Dhe, A::Rsa, E::Aes128Cbc, M::Sha1),
    s(0x0034, "DH_anon_WITH_AES_128_CBC_SHA", K::DhAnon, A::Anon, E::Aes128Cbc, M::Sha1),
    s(0x0035, "RSA_WITH_AES_256_CBC_SHA", K::Rsa, A::Rsa, E::Aes256Cbc, M::Sha1),
    s(0x0036, "DH_DSS_WITH_AES_256_CBC_SHA", K::Dh, A::Dss, E::Aes256Cbc, M::Sha1),
    s(0x0037, "DH_RSA_WITH_AES_256_CBC_SHA", K::Dh, A::Rsa, E::Aes256Cbc, M::Sha1),
    s(0x0038, "DHE_DSS_WITH_AES_256_CBC_SHA", K::Dhe, A::Dss, E::Aes256Cbc, M::Sha1),
    s(0x0039, "DHE_RSA_WITH_AES_256_CBC_SHA", K::Dhe, A::Rsa, E::Aes256Cbc, M::Sha1),
    s(0x003a, "DH_anon_WITH_AES_256_CBC_SHA", K::DhAnon, A::Anon, E::Aes256Cbc, M::Sha1),
    s(0x003b, "RSA_WITH_NULL_SHA256", K::Rsa, A::Rsa, E::Null, M::Sha256),
    s(0x003c, "RSA_WITH_AES_128_CBC_SHA256", K::Rsa, A::Rsa, E::Aes128Cbc, M::Sha256),
    s(0x003d, "RSA_WITH_AES_256_CBC_SHA256", K::Rsa, A::Rsa, E::Aes256Cbc, M::Sha256),
    s(0x003e, "DH_DSS_WITH_AES_128_CBC_SHA256", K::Dh, A::Dss, E::Aes128Cbc, M::Sha256),
    s(0x003f, "DH_RSA_WITH_AES_128_CBC_SHA256", K::Dh, A::Rsa, E::Aes128Cbc, M::Sha256),
    s(0x0040, "DHE_DSS_WITH_AES_128_CBC_SHA256", K::Dhe, A::Dss, E::Aes128Cbc, M::Sha256),
    s(0x0041, "RSA_WITH_CAMELLIA_128_CBC_SHA", K::Rsa, A::Rsa, E::Camellia128Cbc, M::Sha1),
    s(0x0042, "DH_DSS_WITH_CAMELLIA_128_CBC_SHA", K::Dh, A::Dss, E::Camellia128Cbc, M::Sha1),
    s(0x0043, "DH_RSA_WITH_CAMELLIA_128_CBC_SHA", K::Dh, A::Rsa, E::Camellia128Cbc, M::Sha1),
    s(0x0044, "DHE_DSS_WITH_CAMELLIA_128_CBC_SHA", K::Dhe, A::Dss, E::Camellia128Cbc, M::Sha1),
    s(0x0045, "DHE_RSA_WITH_CAMELLIA_128_CBC_SHA", K::Dhe, A::Rsa, E::Camellia128Cbc, M::Sha1),
    s(0x0046, "DH_anon_WITH_CAMELLIA_128_CBC_SHA", K::DhAnon, A::Anon, E::Camellia128Cbc, M::Sha1),
    s(0x0066, "DHE_DSS_WITH_RC4_128_SHA", K::Dhe, A::Dss, E::Rc4_128, M::Sha1),
    s(0x0067, "DHE_RSA_WITH_AES_128_CBC_SHA256", K::Dhe, A::Rsa, E::Aes128Cbc, M::Sha256),
    s(0x0068, "DH_DSS_WITH_AES_256_CBC_SHA256", K::Dh, A::Dss, E::Aes256Cbc, M::Sha256),
    s(0x0069, "DH_RSA_WITH_AES_256_CBC_SHA256", K::Dh, A::Rsa, E::Aes256Cbc, M::Sha256),
    s(0x006a, "DHE_DSS_WITH_AES_256_CBC_SHA256", K::Dhe, A::Dss, E::Aes256Cbc, M::Sha256),
    s(0x006b, "DHE_RSA_WITH_AES_256_CBC_SHA256", K::Dhe, A::Rsa, E::Aes256Cbc, M::Sha256),
    s(0x006c, "DH_anon_WITH_AES_128_CBC_SHA256", K::DhAnon, A::Anon, E::Aes128Cbc, M::Sha256),
    s(0x006d, "DH_anon_WITH_AES_256_CBC_SHA256", K::DhAnon, A::Anon, E::Aes256Cbc, M::Sha256),
    s(0x0080, "GOSTR341094_WITH_28147_CNT_IMIT", K::Gost, A::Gost, E::Gost28147, M::GostImit),
    s(0x0081, "GOSTR341001_WITH_28147_CNT_IMIT", K::Gost, A::Gost, E::Gost28147, M::GostImit),
    s(0x0084, "RSA_WITH_CAMELLIA_256_CBC_SHA", K::Rsa, A::Rsa, E::Camellia256Cbc, M::Sha1),
    s(0x0085, "DH_DSS_WITH_CAMELLIA_256_CBC_SHA", K::Dh, A::Dss, E::Camellia256Cbc, M::Sha1),
    s(0x0086, "DH_RSA_WITH_CAMELLIA_256_CBC_SHA", K::Dh, A::Rsa, E::Camellia256Cbc, M::Sha1),
    s(0x0087, "DHE_DSS_WITH_CAMELLIA_256_CBC_SHA", K::Dhe, A::Dss, E::Camellia256Cbc, M::Sha1),
    s(0x0088, "DHE_RSA_WITH_CAMELLIA_256_CBC_SHA", K::Dhe, A::Rsa, E::Camellia256Cbc, M::Sha1),
    s(0x0089, "DH_anon_WITH_CAMELLIA_256_CBC_SHA", K::DhAnon, A::Anon, E::Camellia256Cbc, M::Sha1),
    s(0x008a, "PSK_WITH_RC4_128_SHA", K::Psk, A::Psk, E::Rc4_128, M::Sha1),
    s(0x008b, "PSK_WITH_3DES_EDE_CBC_SHA", K::Psk, A::Psk, E::TripleDesCbc, M::Sha1),
    s(0x008c, "PSK_WITH_AES_128_CBC_SHA", K::Psk, A::Psk, E::Aes128Cbc, M::Sha1),
    s(0x008d, "PSK_WITH_AES_256_CBC_SHA", K::Psk, A::Psk, E::Aes256Cbc, M::Sha1),
    s(0x008e, "DHE_PSK_WITH_RC4_128_SHA", K::DhePsk, A::Psk, E::Rc4_128, M::Sha1),
    s(0x008f, "DHE_PSK_WITH_3DES_EDE_CBC_SHA", K::DhePsk, A::Psk, E::TripleDesCbc, M::Sha1),
    s(0x0090, "DHE_PSK_WITH_AES_128_CBC_SHA", K::DhePsk, A::Psk, E::Aes128Cbc, M::Sha1),
    s(0x0091, "DHE_PSK_WITH_AES_256_CBC_SHA", K::DhePsk, A::Psk, E::Aes256Cbc, M::Sha1),
    s(0x0092, "RSA_PSK_WITH_RC4_128_SHA", K::RsaPsk, A::Psk, E::Rc4_128, M::Sha1),
    s(0x0093, "RSA_PSK_WITH_3DES_EDE_CBC_SHA", K::RsaPsk, A::Psk, E::TripleDesCbc, M::Sha1),
    s(0x0094, "RSA_PSK_WITH_AES_128_CBC_SHA", K::RsaPsk, A::Psk, E::Aes128Cbc, M::Sha1),
    s(0x0095, "RSA_PSK_WITH_AES_256_CBC_SHA", K::RsaPsk, A::Psk, E::Aes256Cbc, M::Sha1),
    s(0x0096, "RSA_WITH_SEED_CBC_SHA", K::Rsa, A::Rsa, E::SeedCbc, M::Sha1),
    s(0x0097, "DH_DSS_WITH_SEED_CBC_SHA", K::Dh, A::Dss, E::SeedCbc, M::Sha1),
    s(0x0098, "DH_RSA_WITH_SEED_CBC_SHA", K::Dh, A::Rsa, E::SeedCbc, M::Sha1),
    s(0x0099, "DHE_DSS_WITH_SEED_CBC_SHA", K::Dhe, A::Dss, E::SeedCbc, M::Sha1),
    s(0x009a, "DHE_RSA_WITH_SEED_CBC_SHA", K::Dhe, A::Rsa, E::SeedCbc, M::Sha1),
    s(0x009b, "DH_anon_WITH_SEED_CBC_SHA", K::DhAnon, A::Anon, E::SeedCbc, M::Sha1),
    s(0x009c, "RSA_WITH_AES_128_GCM_SHA256", K::Rsa, A::Rsa, E::Aes128Gcm, M::Aead),
    s(0x009d, "RSA_WITH_AES_256_GCM_SHA384", K::Rsa, A::Rsa, E::Aes256Gcm, M::Aead),
    s(0x009e, "DHE_RSA_WITH_AES_128_GCM_SHA256", K::Dhe, A::Rsa, E::Aes128Gcm, M::Aead),
    s(0x009f, "DHE_RSA_WITH_AES_256_GCM_SHA384", K::Dhe, A::Rsa, E::Aes256Gcm, M::Aead),
    s(0x00a0, "DH_RSA_WITH_AES_128_GCM_SHA256", K::Dh, A::Rsa, E::Aes128Gcm, M::Aead),
    s(0x00a1, "DH_RSA_WITH_AES_256_GCM_SHA384", K::Dh, A::Rsa, E::Aes256Gcm, M::Aead),
    s(0x00a2, "DHE_DSS_WITH_AES_128_GCM_SHA256", K::Dhe, A::Dss, E::Aes128Gcm, M::Aead),
    s(0x00a3, "DHE_DSS_WITH_AES_256_GCM_SHA384", K::Dhe, A::Dss, E::Aes256Gcm, M::Aead),
    s(0x00a4, "DH_DSS_WITH_AES_128_GCM_SHA256", K::Dh, A::Dss, E::Aes128Gcm, M::Aead),
    s(0x00a5, "DH_DSS_WITH_AES_256_GCM_SHA384", K::Dh, A::Dss, E::Aes256Gcm, M::Aead),
    s(0x00a6, "DH_anon_WITH_AES_128_GCM_SHA256", K::DhAnon, A::Anon, E::Aes128Gcm, M::Aead),
    s(0x00a7, "DH_anon_WITH_AES_256_GCM_SHA384", K::DhAnon, A::Anon, E::Aes256Gcm, M::Aead),
    s(0x00a8, "PSK_WITH_AES_128_GCM_SHA256", K::Psk, A::Psk, E::Aes128Gcm, M::Aead),
    s(0x00a9, "PSK_WITH_AES_256_GCM_SHA384", K::Psk, A::Psk, E::Aes256Gcm, M::Aead),
    s(0x00aa, "DHE_PSK_WITH_AES_128_GCM_SHA256", K::DhePsk, A::Psk, E::Aes128Gcm, M::Aead),
    s(0x00ab, "DHE_PSK_WITH_AES_256_GCM_SHA384", K::DhePsk, A::Psk, E::Aes256Gcm, M::Aead),
    s(0x00ac, "RSA_PSK_WITH_AES_128_GCM_SHA256", K::RsaPsk, A::Psk, E::Aes128Gcm, M::Aead),
    s(0x00ad, "RSA_PSK_WITH_AES_256_GCM_SHA384", K::RsaPsk, A::Psk, E::Aes256Gcm, M::Aead),
    s(0x00ae, "PSK_WITH_AES_128_CBC_SHA256", K::Psk, A::Psk, E::Aes128Cbc, M::Sha256),
    s(0x00af, "PSK_WITH_AES_256_CBC_SHA384", K::Psk, A::Psk, E::Aes256Cbc, M::Sha384),
    s(0x00b0, "PSK_WITH_NULL_SHA256", K::Psk, A::Psk, E::Null, M::Sha256),
    s(0x00b1, "PSK_WITH_NULL_SHA384", K::Psk, A::Psk, E::Null, M::Sha384),
    s(0x00b2, "DHE_PSK_WITH_AES_128_CBC_SHA256", K::DhePsk, A::Psk, E::Aes128Cbc, M::Sha256),
    s(0x00b3, "DHE_PSK_WITH_AES_256_CBC_SHA384", K::DhePsk, A::Psk, E::Aes256Cbc, M::Sha384),
    s(0x00b4, "DHE_PSK_WITH_NULL_SHA256", K::DhePsk, A::Psk, E::Null, M::Sha256),
    s(0x00b5, "DHE_PSK_WITH_NULL_SHA384", K::DhePsk, A::Psk, E::Null, M::Sha384),
    s(0x00b6, "RSA_PSK_WITH_AES_128_CBC_SHA256", K::RsaPsk, A::Psk, E::Aes128Cbc, M::Sha256),
    s(0x00b7, "RSA_PSK_WITH_AES_256_CBC_SHA384", K::RsaPsk, A::Psk, E::Aes256Cbc, M::Sha384),
    s(0x00b8, "RSA_PSK_WITH_NULL_SHA256", K::RsaPsk, A::Psk, E::Null, M::Sha256),
    s(0x00b9, "RSA_PSK_WITH_NULL_SHA384", K::RsaPsk, A::Psk, E::Null, M::Sha384),
    s(0x00ba, "RSA_WITH_CAMELLIA_128_CBC_SHA256", K::Rsa, A::Rsa, E::Camellia128Cbc, M::Sha256),
    s(0x00bb, "DH_DSS_WITH_CAMELLIA_128_CBC_SHA256", K::Dh, A::Dss, E::Camellia128Cbc, M::Sha256),
    s(0x00bc, "DH_RSA_WITH_CAMELLIA_128_CBC_SHA256", K::Dh, A::Rsa, E::Camellia128Cbc, M::Sha256),
    s(0x00bd, "DHE_DSS_WITH_CAMELLIA_128_CBC_SHA256", K::Dhe, A::Dss, E::Camellia128Cbc, M::Sha256),
    s(0x00be, "DHE_RSA_WITH_CAMELLIA_128_CBC_SHA256", K::Dhe, A::Rsa, E::Camellia128Cbc, M::Sha256),
    s(0x00bf, "DH_anon_WITH_CAMELLIA_128_CBC_SHA256", K::DhAnon, A::Anon, E::Camellia128Cbc, M::Sha256),
    s(0x00c0, "RSA_WITH_CAMELLIA_256_CBC_SHA256", K::Rsa, A::Rsa, E::Camellia256Cbc, M::Sha256),
    s(0x00c1, "DH_DSS_WITH_CAMELLIA_256_CBC_SHA256", K::Dh, A::Dss, E::Camellia256Cbc, M::Sha256),
    s(0x00c2, "DH_RSA_WITH_CAMELLIA_256_CBC_SHA256", K::Dh, A::Rsa, E::Camellia256Cbc, M::Sha256),
    s(0x00c3, "DHE_DSS_WITH_CAMELLIA_256_CBC_SHA256", K::Dhe, A::Dss, E::Camellia256Cbc, M::Sha256),
    s(0x00c4, "DHE_RSA_WITH_CAMELLIA_256_CBC_SHA256", K::Dhe, A::Rsa, E::Camellia256Cbc, M::Sha256),
    s(0x00c5, "DH_anon_WITH_CAMELLIA_256_CBC_SHA256", K::DhAnon, A::Anon, E::Camellia256Cbc, M::Sha256),
    s(0x00ff, "EMPTY_RENEGOTIATION_INFO_SCSV", K::Scsv, A::Null, E::Null, M::Null),
    s(0x1301, "AES_128_GCM_SHA256", K::Tls13, A::Tls13, E::Aes128Gcm, M::Aead),
    s(0x1302, "AES_256_GCM_SHA384", K::Tls13, A::Tls13, E::Aes256Gcm, M::Aead),
    s(0x1303, "CHACHA20_POLY1305_SHA256", K::Tls13, A::Tls13, E::ChaCha20Poly1305, M::Aead),
    s(0x1304, "AES_128_CCM_SHA256", K::Tls13, A::Tls13, E::Aes128Ccm, M::Aead),
    s(0x1305, "AES_128_CCM_8_SHA256", K::Tls13, A::Tls13, E::Aes128Ccm8, M::Aead),
    s(0x5600, "FALLBACK_SCSV", K::Scsv, A::Null, E::Null, M::Null),
    s(0xc001, "ECDH_ECDSA_WITH_NULL_SHA", K::Ecdh, A::Ecdsa, E::Null, M::Sha1),
    s(0xc002, "ECDH_ECDSA_WITH_RC4_128_SHA", K::Ecdh, A::Ecdsa, E::Rc4_128, M::Sha1),
    s(0xc003, "ECDH_ECDSA_WITH_3DES_EDE_CBC_SHA", K::Ecdh, A::Ecdsa, E::TripleDesCbc, M::Sha1),
    s(0xc004, "ECDH_ECDSA_WITH_AES_128_CBC_SHA", K::Ecdh, A::Ecdsa, E::Aes128Cbc, M::Sha1),
    s(0xc005, "ECDH_ECDSA_WITH_AES_256_CBC_SHA", K::Ecdh, A::Ecdsa, E::Aes256Cbc, M::Sha1),
    s(0xc006, "ECDHE_ECDSA_WITH_NULL_SHA", K::Ecdhe, A::Ecdsa, E::Null, M::Sha1),
    s(0xc007, "ECDHE_ECDSA_WITH_RC4_128_SHA", K::Ecdhe, A::Ecdsa, E::Rc4_128, M::Sha1),
    s(0xc008, "ECDHE_ECDSA_WITH_3DES_EDE_CBC_SHA", K::Ecdhe, A::Ecdsa, E::TripleDesCbc, M::Sha1),
    s(0xc009, "ECDHE_ECDSA_WITH_AES_128_CBC_SHA", K::Ecdhe, A::Ecdsa, E::Aes128Cbc, M::Sha1),
    s(0xc00a, "ECDHE_ECDSA_WITH_AES_256_CBC_SHA", K::Ecdhe, A::Ecdsa, E::Aes256Cbc, M::Sha1),
    s(0xc00b, "ECDH_RSA_WITH_NULL_SHA", K::Ecdh, A::Rsa, E::Null, M::Sha1),
    s(0xc00c, "ECDH_RSA_WITH_RC4_128_SHA", K::Ecdh, A::Rsa, E::Rc4_128, M::Sha1),
    s(0xc00d, "ECDH_RSA_WITH_3DES_EDE_CBC_SHA", K::Ecdh, A::Rsa, E::TripleDesCbc, M::Sha1),
    s(0xc00e, "ECDH_RSA_WITH_AES_128_CBC_SHA", K::Ecdh, A::Rsa, E::Aes128Cbc, M::Sha1),
    s(0xc00f, "ECDH_RSA_WITH_AES_256_CBC_SHA", K::Ecdh, A::Rsa, E::Aes256Cbc, M::Sha1),
    s(0xc010, "ECDHE_RSA_WITH_NULL_SHA", K::Ecdhe, A::Rsa, E::Null, M::Sha1),
    s(0xc011, "ECDHE_RSA_WITH_RC4_128_SHA", K::Ecdhe, A::Rsa, E::Rc4_128, M::Sha1),
    s(0xc012, "ECDHE_RSA_WITH_3DES_EDE_CBC_SHA", K::Ecdhe, A::Rsa, E::TripleDesCbc, M::Sha1),
    s(0xc013, "ECDHE_RSA_WITH_AES_128_CBC_SHA", K::Ecdhe, A::Rsa, E::Aes128Cbc, M::Sha1),
    s(0xc014, "ECDHE_RSA_WITH_AES_256_CBC_SHA", K::Ecdhe, A::Rsa, E::Aes256Cbc, M::Sha1),
    s(0xc015, "ECDH_anon_WITH_NULL_SHA", K::EcdhAnon, A::Anon, E::Null, M::Sha1),
    s(0xc016, "ECDH_anon_WITH_RC4_128_SHA", K::EcdhAnon, A::Anon, E::Rc4_128, M::Sha1),
    s(0xc017, "ECDH_anon_WITH_3DES_EDE_CBC_SHA", K::EcdhAnon, A::Anon, E::TripleDesCbc, M::Sha1),
    s(0xc018, "ECDH_anon_WITH_AES_128_CBC_SHA", K::EcdhAnon, A::Anon, E::Aes128Cbc, M::Sha1),
    s(0xc019, "ECDH_anon_WITH_AES_256_CBC_SHA", K::EcdhAnon, A::Anon, E::Aes256Cbc, M::Sha1),
    s(0xc01a, "SRP_SHA_WITH_3DES_EDE_CBC_SHA", K::Srp, A::Srp, E::TripleDesCbc, M::Sha1),
    s(0xc01b, "SRP_SHA_RSA_WITH_3DES_EDE_CBC_SHA", K::Srp, A::Rsa, E::TripleDesCbc, M::Sha1),
    s(0xc01c, "SRP_SHA_DSS_WITH_3DES_EDE_CBC_SHA", K::Srp, A::Dss, E::TripleDesCbc, M::Sha1),
    s(0xc01d, "SRP_SHA_WITH_AES_128_CBC_SHA", K::Srp, A::Srp, E::Aes128Cbc, M::Sha1),
    s(0xc01e, "SRP_SHA_RSA_WITH_AES_128_CBC_SHA", K::Srp, A::Rsa, E::Aes128Cbc, M::Sha1),
    s(0xc01f, "SRP_SHA_DSS_WITH_AES_128_CBC_SHA", K::Srp, A::Dss, E::Aes128Cbc, M::Sha1),
    s(0xc020, "SRP_SHA_WITH_AES_256_CBC_SHA", K::Srp, A::Srp, E::Aes256Cbc, M::Sha1),
    s(0xc021, "SRP_SHA_RSA_WITH_AES_256_CBC_SHA", K::Srp, A::Rsa, E::Aes256Cbc, M::Sha1),
    s(0xc022, "SRP_SHA_DSS_WITH_AES_256_CBC_SHA", K::Srp, A::Dss, E::Aes256Cbc, M::Sha1),
    s(0xc023, "ECDHE_ECDSA_WITH_AES_128_CBC_SHA256", K::Ecdhe, A::Ecdsa, E::Aes128Cbc, M::Sha256),
    s(0xc024, "ECDHE_ECDSA_WITH_AES_256_CBC_SHA384", K::Ecdhe, A::Ecdsa, E::Aes256Cbc, M::Sha384),
    s(0xc025, "ECDH_ECDSA_WITH_AES_128_CBC_SHA256", K::Ecdh, A::Ecdsa, E::Aes128Cbc, M::Sha256),
    s(0xc026, "ECDH_ECDSA_WITH_AES_256_CBC_SHA384", K::Ecdh, A::Ecdsa, E::Aes256Cbc, M::Sha384),
    s(0xc027, "ECDHE_RSA_WITH_AES_128_CBC_SHA256", K::Ecdhe, A::Rsa, E::Aes128Cbc, M::Sha256),
    s(0xc028, "ECDHE_RSA_WITH_AES_256_CBC_SHA384", K::Ecdhe, A::Rsa, E::Aes256Cbc, M::Sha384),
    s(0xc029, "ECDH_RSA_WITH_AES_128_CBC_SHA256", K::Ecdh, A::Rsa, E::Aes128Cbc, M::Sha256),
    s(0xc02a, "ECDH_RSA_WITH_AES_256_CBC_SHA384", K::Ecdh, A::Rsa, E::Aes256Cbc, M::Sha384),
    s(0xc02b, "ECDHE_ECDSA_WITH_AES_128_GCM_SHA256", K::Ecdhe, A::Ecdsa, E::Aes128Gcm, M::Aead),
    s(0xc02c, "ECDHE_ECDSA_WITH_AES_256_GCM_SHA384", K::Ecdhe, A::Ecdsa, E::Aes256Gcm, M::Aead),
    s(0xc02d, "ECDH_ECDSA_WITH_AES_128_GCM_SHA256", K::Ecdh, A::Ecdsa, E::Aes128Gcm, M::Aead),
    s(0xc02e, "ECDH_ECDSA_WITH_AES_256_GCM_SHA384", K::Ecdh, A::Ecdsa, E::Aes256Gcm, M::Aead),
    s(0xc02f, "ECDHE_RSA_WITH_AES_128_GCM_SHA256", K::Ecdhe, A::Rsa, E::Aes128Gcm, M::Aead),
    s(0xc030, "ECDHE_RSA_WITH_AES_256_GCM_SHA384", K::Ecdhe, A::Rsa, E::Aes256Gcm, M::Aead),
    s(0xc031, "ECDH_RSA_WITH_AES_128_GCM_SHA256", K::Ecdh, A::Rsa, E::Aes128Gcm, M::Aead),
    s(0xc032, "ECDH_RSA_WITH_AES_256_GCM_SHA384", K::Ecdh, A::Rsa, E::Aes256Gcm, M::Aead),
    s(0xc033, "ECDHE_PSK_WITH_RC4_128_SHA", K::EcdhePsk, A::Psk, E::Rc4_128, M::Sha1),
    s(0xc034, "ECDHE_PSK_WITH_3DES_EDE_CBC_SHA", K::EcdhePsk, A::Psk, E::TripleDesCbc, M::Sha1),
    s(0xc035, "ECDHE_PSK_WITH_AES_128_CBC_SHA", K::EcdhePsk, A::Psk, E::Aes128Cbc, M::Sha1),
    s(0xc036, "ECDHE_PSK_WITH_AES_256_CBC_SHA", K::EcdhePsk, A::Psk, E::Aes256Cbc, M::Sha1),
    s(0xc037, "ECDHE_PSK_WITH_AES_128_CBC_SHA256", K::EcdhePsk, A::Psk, E::Aes128Cbc, M::Sha256),
    s(0xc038, "ECDHE_PSK_WITH_AES_256_CBC_SHA384", K::EcdhePsk, A::Psk, E::Aes256Cbc, M::Sha384),
    s(0xc039, "ECDHE_PSK_WITH_NULL_SHA", K::EcdhePsk, A::Psk, E::Null, M::Sha1),
    s(0xc03a, "ECDHE_PSK_WITH_NULL_SHA256", K::EcdhePsk, A::Psk, E::Null, M::Sha256),
    s(0xc03b, "ECDHE_PSK_WITH_NULL_SHA384", K::EcdhePsk, A::Psk, E::Null, M::Sha384),
    s(0xc050, "RSA_WITH_ARIA_128_GCM_SHA256", K::Rsa, A::Rsa, E::Aria128Gcm, M::Aead),
    s(0xc051, "RSA_WITH_ARIA_256_GCM_SHA384", K::Rsa, A::Rsa, E::Aria256Gcm, M::Aead),
    s(0xc052, "DHE_RSA_WITH_ARIA_128_GCM_SHA256", K::Dhe, A::Rsa, E::Aria128Gcm, M::Aead),
    s(0xc053, "DHE_RSA_WITH_ARIA_256_GCM_SHA384", K::Dhe, A::Rsa, E::Aria256Gcm, M::Aead),
    s(0xc05c, "ECDHE_ECDSA_WITH_ARIA_128_GCM_SHA256", K::Ecdhe, A::Ecdsa, E::Aria128Gcm, M::Aead),
    s(0xc05d, "ECDHE_ECDSA_WITH_ARIA_256_GCM_SHA384", K::Ecdhe, A::Ecdsa, E::Aria256Gcm, M::Aead),
    s(0xc060, "ECDHE_RSA_WITH_ARIA_128_GCM_SHA256", K::Ecdhe, A::Rsa, E::Aria128Gcm, M::Aead),
    s(0xc061, "ECDHE_RSA_WITH_ARIA_256_GCM_SHA384", K::Ecdhe, A::Rsa, E::Aria256Gcm, M::Aead),
    s(0xc072, "ECDHE_ECDSA_WITH_CAMELLIA_128_CBC_SHA256", K::Ecdhe, A::Ecdsa, E::Camellia128Cbc, M::Sha256),
    s(0xc073, "ECDHE_ECDSA_WITH_CAMELLIA_256_CBC_SHA384", K::Ecdhe, A::Ecdsa, E::Camellia256Cbc, M::Sha384),
    s(0xc076, "ECDHE_RSA_WITH_CAMELLIA_128_CBC_SHA256", K::Ecdhe, A::Rsa, E::Camellia128Cbc, M::Sha256),
    s(0xc077, "ECDHE_RSA_WITH_CAMELLIA_256_CBC_SHA384", K::Ecdhe, A::Rsa, E::Camellia256Cbc, M::Sha384),
    s(0xc07a, "RSA_WITH_CAMELLIA_128_GCM_SHA256", K::Rsa, A::Rsa, E::Camellia128Gcm, M::Aead),
    s(0xc07b, "RSA_WITH_CAMELLIA_256_GCM_SHA384", K::Rsa, A::Rsa, E::Camellia256Gcm, M::Aead),
    s(0xc07c, "DHE_RSA_WITH_CAMELLIA_128_GCM_SHA256", K::Dhe, A::Rsa, E::Camellia128Gcm, M::Aead),
    s(0xc07d, "DHE_RSA_WITH_CAMELLIA_256_GCM_SHA384", K::Dhe, A::Rsa, E::Camellia256Gcm, M::Aead),
    s(0xc086, "ECDHE_ECDSA_WITH_CAMELLIA_128_GCM_SHA256", K::Ecdhe, A::Ecdsa, E::Camellia128Gcm, M::Aead),
    s(0xc087, "ECDHE_ECDSA_WITH_CAMELLIA_256_GCM_SHA384", K::Ecdhe, A::Ecdsa, E::Camellia256Gcm, M::Aead),
    s(0xc08a, "ECDHE_RSA_WITH_CAMELLIA_128_GCM_SHA256", K::Ecdhe, A::Rsa, E::Camellia128Gcm, M::Aead),
    s(0xc08b, "ECDHE_RSA_WITH_CAMELLIA_256_GCM_SHA384", K::Ecdhe, A::Rsa, E::Camellia256Gcm, M::Aead),
    s(0xc09c, "RSA_WITH_AES_128_CCM", K::Rsa, A::Rsa, E::Aes128Ccm, M::Aead),
    s(0xc09d, "RSA_WITH_AES_256_CCM", K::Rsa, A::Rsa, E::Aes256Ccm, M::Aead),
    s(0xc09e, "DHE_RSA_WITH_AES_128_CCM", K::Dhe, A::Rsa, E::Aes128Ccm, M::Aead),
    s(0xc09f, "DHE_RSA_WITH_AES_256_CCM", K::Dhe, A::Rsa, E::Aes256Ccm, M::Aead),
    s(0xc0a0, "RSA_WITH_AES_128_CCM_8", K::Rsa, A::Rsa, E::Aes128Ccm8, M::Aead),
    s(0xc0a1, "RSA_WITH_AES_256_CCM_8", K::Rsa, A::Rsa, E::Aes256Ccm8, M::Aead),
    s(0xc0a2, "DHE_RSA_WITH_AES_128_CCM_8", K::Dhe, A::Rsa, E::Aes128Ccm8, M::Aead),
    s(0xc0a3, "DHE_RSA_WITH_AES_256_CCM_8", K::Dhe, A::Rsa, E::Aes256Ccm8, M::Aead),
    s(0xc0a4, "PSK_WITH_AES_128_CCM", K::Psk, A::Psk, E::Aes128Ccm, M::Aead),
    s(0xc0a5, "PSK_WITH_AES_256_CCM", K::Psk, A::Psk, E::Aes256Ccm, M::Aead),
    s(0xc0a8, "PSK_WITH_AES_128_CCM_8", K::Psk, A::Psk, E::Aes128Ccm8, M::Aead),
    s(0xc0ac, "ECDHE_ECDSA_WITH_AES_128_CCM", K::Ecdhe, A::Ecdsa, E::Aes128Ccm, M::Aead),
    s(0xc0ad, "ECDHE_ECDSA_WITH_AES_256_CCM", K::Ecdhe, A::Ecdsa, E::Aes256Ccm, M::Aead),
    s(0xc0ae, "ECDHE_ECDSA_WITH_AES_128_CCM_8", K::Ecdhe, A::Ecdsa, E::Aes128Ccm8, M::Aead),
    s(0xc0af, "ECDHE_ECDSA_WITH_AES_256_CCM_8", K::Ecdhe, A::Ecdsa, E::Aes256Ccm8, M::Aead),
    s(0xcc13, "ECDHE_RSA_WITH_CHACHA20_POLY1305_OLD", K::Ecdhe, A::Rsa, E::ChaCha20Poly1305, M::Aead),
    s(0xcc14, "ECDHE_ECDSA_WITH_CHACHA20_POLY1305_OLD", K::Ecdhe, A::Ecdsa, E::ChaCha20Poly1305, M::Aead),
    s(0xcc15, "DHE_RSA_WITH_CHACHA20_POLY1305_OLD", K::Dhe, A::Rsa, E::ChaCha20Poly1305, M::Aead),
    s(0xcca8, "ECDHE_RSA_WITH_CHACHA20_POLY1305_SHA256", K::Ecdhe, A::Rsa, E::ChaCha20Poly1305, M::Aead),
    s(0xcca9, "ECDHE_ECDSA_WITH_CHACHA20_POLY1305_SHA256", K::Ecdhe, A::Ecdsa, E::ChaCha20Poly1305, M::Aead),
    s(0xccaa, "DHE_RSA_WITH_CHACHA20_POLY1305_SHA256", K::Dhe, A::Rsa, E::ChaCha20Poly1305, M::Aead),
    s(0xccab, "PSK_WITH_CHACHA20_POLY1305_SHA256", K::Psk, A::Psk, E::ChaCha20Poly1305, M::Aead),
    s(0xccac, "ECDHE_PSK_WITH_CHACHA20_POLY1305_SHA256", K::EcdhePsk, A::Psk, E::ChaCha20Poly1305, M::Aead),
    s(0xccad, "DHE_PSK_WITH_CHACHA20_POLY1305_SHA256", K::DhePsk, A::Psk, E::ChaCha20Poly1305, M::Aead),
    s(0xccae, "RSA_PSK_WITH_CHACHA20_POLY1305_SHA256", K::RsaPsk, A::Psk, E::ChaCha20Poly1305, M::Aead),
];

/// Binary-search lookup by code point.
pub fn lookup(id: u16) -> Option<&'static SuiteInfo> {
    SUITES
        .binary_search_by_key(&id, |i| i.id)
        .ok()
        .map(|idx| &SUITES[idx])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites::{AeadAlg, CipherSuite};

    #[test]
    fn table_is_sorted_and_unique() {
        for w in SUITES.windows(2) {
            assert!(
                w[0].id < w[1].id,
                "table out of order near {:#06x} ({})",
                w[1].id,
                w[1].name
            );
        }
    }

    #[test]
    fn table_size_matches_iana_scale() {
        // IANA had registered "almost 200 cipher suites" as of May 2018
        // (§4); we carry those plus historical/vendor values.
        assert!(SUITES.len() >= 200, "only {} suites", SUITES.len());
    }

    #[test]
    fn lookup_hits_and_misses() {
        assert_eq!(lookup(0xc02f).unwrap().name, "ECDHE_RSA_WITH_AES_128_GCM_SHA256");
        assert_eq!(lookup(0x0000).unwrap().name, "NULL_WITH_NULL_NULL");
        assert!(lookup(0x0a0a).is_none()); // GREASE
        assert!(lookup(0xffff).is_none());
    }

    #[test]
    fn classification_spot_checks() {
        // The export RC4 suite from the paper's Interwise anecdote (§5.5).
        let exp = CipherSuite(0x0003);
        assert!(exp.is_export() && exp.is_rc4());
        assert!(!exp.is_forward_secret());

        // RSA_WITH_RC4_128_SHA: the suite Interwise clients offered.
        let rc4 = CipherSuite(0x0005);
        assert!(rc4.is_rc4() && !rc4.is_export() && !rc4.is_cbc());

        // Modern default: ECDHE-RSA-AES128-GCM.
        let gcm = CipherSuite(0xc02f);
        assert!(gcm.is_aead() && gcm.is_forward_secret() && !gcm.is_cbc());
        assert_eq!(gcm.aead_alg(), Some(AeadAlg::Aes128Gcm));

        // 3DES "cipher of last resort" (§5.6).
        let tdes = CipherSuite(0x000a);
        assert!(tdes.is_3des() && tdes.is_cbc() && tdes.is_small_block());
        assert!(!tdes.is_des());

        // Single DES is DES but not 3DES.
        let des = CipherSuite(0x0009);
        assert!(des.is_des() && !des.is_3des());

        // Anonymous DH (§6.2).
        let anon = CipherSuite(0x0018);
        assert!(anon.is_anon());
        // Anonymous and forward-secret are orthogonal: DH_anon is ephemeral.
        assert!(anon.is_forward_secret());

        // NULL cipher (§6.1) provides integrity only.
        let null = CipherSuite(0x0001);
        assert!(null.is_null_encryption() && !null.is_null_null());
        assert!(CipherSuite(0x0000).is_null_null());

        // GOST suites chosen by out-of-spec servers (§7.3).
        let gost = CipherSuite(0x0081);
        assert_eq!(gost.name(), Some("GOSTR341001_WITH_28147_CNT_IMIT"));

        // TLS 1.3 suites are AEAD + forward secret.
        let t13 = CipherSuite(0x1301);
        assert!(t13.is_tls13() && t13.is_aead() && t13.is_forward_secret());
    }

    #[test]
    fn scsvs_are_signaling_not_ciphers() {
        for id in [0x00ffu16, 0x5600] {
            let s = CipherSuite(id);
            assert!(s.is_signaling());
            assert!(!s.is_null_encryption());
            assert!(!s.is_rc4() && !s.is_cbc() && !s.is_aead());
            assert!(!s.is_forward_secret());
        }
    }

    #[test]
    fn anon_suite_census() {
        // §6.2: "There are 19 such cipher suites, all identifiable by the
        // keyword Anon in their name."  Our registry carries the full
        // DH_anon/ECDH_anon families including the two export-grade and
        // the SHA-256 Camellia variants the paper's count excluded,
        // hence 21 rather than 19.
        let anon: Vec<_> = SUITES
            .iter()
            .filter(|i| CipherSuite(i.id).is_anon())
            .collect();
        assert_eq!(anon.len(), 21, "{anon:#?}");
        for i in &anon {
            assert!(i.name.contains("anon"), "{}", i.name);
        }
    }

    #[test]
    fn export_suites_are_weak() {
        for i in SUITES.iter().filter(|i| i.export) {
            assert!(i.enc.key_bits() <= 56, "{} has {} bits", i.name, i.enc.key_bits());
            assert!(i.name.contains("EXPORT"), "{}", i.name);
        }
        // And the EXPORT keyword implies the flag.
        for i in SUITES.iter().filter(|i| i.name.contains("EXPORT")) {
            assert!(i.export, "{} not flagged export", i.name);
        }
    }

    #[test]
    fn aead_iff_mac_aead() {
        use crate::suites::{EncMode, Kx, Mac};
        for i in SUITES.iter().filter(|i| i.kx != Kx::Scsv) {
            assert_eq!(
                i.enc.mode() == EncMode::Aead,
                i.mac == Mac::Aead,
                "{} mac/enc mismatch",
                i.name
            );
        }
    }

    #[test]
    fn name_der_grammar_spot_checks() {
        // GCM always implies AEAD mode, CBC names imply CBC mode, RC4
        // names imply stream mode.
        use crate::suites::EncMode;
        for i in SUITES.iter() {
            if i.name.contains("_GCM_") {
                assert_eq!(i.enc.mode(), EncMode::Aead, "{}", i.name);
            }
            if i.name.contains("RC4") {
                assert_eq!(i.enc.mode(), EncMode::Stream, "{}", i.name);
            }
            if i.name.contains("_CBC_") {
                assert_eq!(i.enc.mode(), EncMode::Cbc, "{}", i.name);
            }
        }
    }
}
