//! GREASE (RFC 8701) value handling.
//!
//! Google clients inject reserved values into the cipher-suite list,
//! extension list, named-group list, and version list so that intolerant
//! servers get flushed out early. The paper strips these before
//! fingerprinting (§4): two Chrome handshakes that differ only in their
//! random GREASE draws must map to the same fingerprint.
//!
//! GREASE 16-bit values follow the pattern `0xRaRa` where `R` is any
//! nibble: `0x0a0a, 0x1a1a, …, 0xfafa`.

/// The sixteen 16-bit GREASE values.
pub const GREASE_VALUES: [u16; 16] = [
    0x0a0a, 0x1a1a, 0x2a2a, 0x3a3a, 0x4a4a, 0x5a5a, 0x6a6a, 0x7a7a, 0x8a8a, 0x9a9a, 0xaaaa, 0xbaba,
    0xcaca, 0xdada, 0xeaea, 0xfafa,
];

/// True if `v` is a GREASE value.
pub fn is_grease(v: u16) -> bool {
    v & 0x0f0f == 0x0a0a && (v >> 12) == ((v >> 4) & 0x0f)
}

/// The `n`-th GREASE value (`n` taken modulo 16); used by hello builders
/// that randomise their draw like Chrome does.
pub fn grease_value(n: u8) -> u16 {
    GREASE_VALUES[(n & 0x0f) as usize]
}

/// Remove all GREASE values from a list, preserving order.
pub fn strip_grease(values: &[u16]) -> Vec<u16> {
    values.iter().copied().filter(|v| !is_grease(*v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recognises_all_sixteen() {
        for v in GREASE_VALUES {
            assert!(is_grease(v), "{v:#06x}");
        }
    }

    #[test]
    fn rejects_near_misses() {
        for v in [0x0a0bu16, 0x0b0a, 0x1a2a, 0xa0a0, 0x0303, 0xc02f, 0x00ff] {
            assert!(!is_grease(v), "{v:#06x}");
        }
    }

    #[test]
    fn exhaustive_against_pattern() {
        let mut count = 0u32;
        for v in 0..=u16::MAX {
            if is_grease(v) {
                assert!(GREASE_VALUES.contains(&v));
                count += 1;
            }
        }
        assert_eq!(count, 16);
    }

    #[test]
    fn strip_preserves_order() {
        let list = [0x1301u16, 0x2a2a, 0xc02f, 0xfafa, 0x000a];
        assert_eq!(strip_grease(&list), vec![0x1301, 0xc02f, 0x000a]);
    }

    #[test]
    fn grease_value_wraps() {
        assert_eq!(grease_value(0), 0x0a0a);
        assert_eq!(grease_value(15), 0xfafa);
        assert_eq!(grease_value(16), 0x0a0a);
        assert_eq!(grease_value(0x1f), 0xfafa);
    }
}
